/**
 * @file
 * tensorir-lint: static-analysis CLI over the Table 1 workload suite.
 * Lowers each workload (with storage-sync insertion, like the real
 * pipeline), runs the race/bounds analysis (TIR-R / TIR-B codes) and
 * the dataflow lints (TIR-L001 use-before-init, TIR-L002 dead store,
 * TIR-L003 redundant barrier), and prints every finding with its
 * stable code and severity. Exit status is the CI contract: nonzero
 * iff any error-severity diagnostic was reported.
 *
 * Usage:
 *   tensorir-lint [--suite small|full] [--demo] [name...]
 *
 *   --suite small   lint the small-shape suite (default; CI uses this)
 *   --suite full    lint the paper-shape suite
 *   --demo          also lint a built-in demo function with known
 *                   TIR-L001/L002/L003 findings (exercises the nonzero
 *                   exit path; demo errors still fail the run)
 *   name...         restrict to workloads with these names (GMM, C2D, …)
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lower/lower.h"
#include "tir/analysis/analysis.h"
#include "tir/analysis/dataflow.h"
#include "tir/verify.h"
#include "workloads/workloads.h"

namespace {

using tir::analysis::AnalysisReport;
using tir::analysis::Diagnostic;
using tir::analysis::Severity;

struct LintTotals
{
    int errors = 0;
    int warnings = 0;
};

void
printReport(const std::string& subject, const AnalysisReport& report,
            LintTotals* totals)
{
    for (const Diagnostic& diag : report.diagnostics) {
        if (diag.severity == Severity::kError) {
            ++totals->errors;
        } else {
            ++totals->warnings;
        }
        std::printf("%s: %s\n", subject.c_str(),
                    diag.message().c_str());
    }
}

/** Lint one function: thread validation, region cover, race/bounds
 *  analysis on the sync-inserted lowering, then the dataflow lints. */
void
lintFunction(const std::string& name, const tir::PrimFunc& func,
             LintTotals* totals)
{
    tir::VerifyResult threads = tir::verifyThreadBindings(func);
    if (!threads.ok) {
        AnalysisReport report;
        report.diagnostics = threads.diagnostics;
        printReport(name, report, totals);
    }
    // Region cover is defined over scheduled (root-block) functions;
    // already-lowered input skips straight to the lowered analyses.
    if (func->body->kind == tir::StmtKind::kBlockRealize) {
        tir::VerifyResult cover = tir::verifyRegionCover(func);
        if (!cover.ok) {
            AnalysisReport report;
            report.diagnostics = cover.diagnostics;
            printReport(name, report, totals);
        }
    }

    tir::LowerOptions lower_opts;
    lower_opts.insert_storage_sync = true;
    tir::PrimFunc lowered = tir::lowerWithOptions(func, lower_opts);
    printReport(name, tir::analysis::analyzeFunc(lowered), totals);
    printReport(name, tir::analysis::lintFunc(lowered), totals);
}

/** A function with one of each dataflow finding: a read of T before
 *  any write (TIR-L001), a store to T nothing reads afterwards
 *  (TIR-L002), and a barrier between per-thread-disjoint shared
 *  accesses (TIR-L003). */
tir::PrimFunc
demoFunction()
{
    using namespace tir;
    Buffer a = makeBuffer("A", {8}, DataType::f32());
    Buffer b = makeBuffer("B", {8}, DataType::f32());
    Buffer t = makeBuffer("T", {8}, DataType::f32(), "global");
    Buffer s = makeBuffer("S", {8}, DataType::f32(), "shared");
    Var tx = var("tx");
    Stmt body = seq({
        // TIR-L001: T read before anything wrote it.
        bufferStore(b, bufferLoad(t, {tx}), {tx}),
        // Per-thread staging: S[tx] = A[tx]; barrier; B[tx] += S[tx].
        // The footprints are disjoint per thread, so the barrier
        // orders nothing (TIR-L003).
        bufferStore(s, bufferLoad(a, {tx}), {tx}),
        storageSync(),
        bufferStore(b,
                    bufferLoad(b, {tx}) + bufferLoad(s, {tx}),
                    {tx}),
        // TIR-L002: T written last, never read again.
        bufferStore(t, bufferLoad(a, {tx}), {tx}),
    });
    Stmt launch =
        makeFor(tx, intImm(0), intImm(8), std::move(body),
                ForKind::kThreadBinding, "threadIdx.x");
    return makeFunc("lint_demo", {a, b}, std::move(launch));
}

} // namespace

int
main(int argc, char** argv)
{
    bool full_suite = false;
    bool demo = false;
    std::vector<std::string> only;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--suite") && i + 1 < argc) {
            full_suite = !std::strcmp(argv[++i], "full");
        } else if (!std::strcmp(argv[i], "--demo")) {
            demo = true;
        } else if (!std::strcmp(argv[i], "--help")) {
            std::printf("usage: tensorir-lint [--suite small|full] "
                        "[--demo] [name...]\n");
            return 0;
        } else {
            only.emplace_back(argv[i]);
        }
    }

    std::vector<tir::workloads::OpSpec> suite =
        full_suite ? tir::workloads::gpuSuite()
                   : tir::workloads::gpuSuiteSmall();
    LintTotals totals;
    int linted = 0;
    for (const tir::workloads::OpSpec& op : suite) {
        if (!only.empty() &&
            std::find(only.begin(), only.end(), op.name) ==
                only.end()) {
            continue;
        }
        ++linted;
        lintFunction(op.name, op.func, &totals);
    }
    if (demo) {
        ++linted;
        lintFunction("demo", demoFunction(), &totals);
    }

    std::printf("tensorir-lint: %d function(s), %d error(s), "
                "%d warning(s)\n",
                linted, totals.errors, totals.warnings);
    return totals.errors > 0 ? 1 : 0;
}
