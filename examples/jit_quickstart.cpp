/**
 * @file
 * The native execution tier end to end: schedule a matmul, JIT-compile
 * it (C codegen -> system compiler -> dlopen), verify the native run
 * against the tree-walking oracle bit for bit, and print measured
 * wall-clock for all three engines — tree-walker, bytecode VM, native
 * — on the same inputs. The engine contract behind this example is
 * documented in docs/EXECUTION.md.
 */
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "runtime/jit.h"
#include "runtime/vm.h"
#include "te/te.h"
#include "tir/schedule.h"

using namespace tir;

namespace {

PrimFunc
matmul(int64_t n)
{
    te::Builder builder;
    Buffer a = builder.placeholder("A", {n, n});
    Buffer b = builder.placeholder("B", {n, n});
    Buffer c = builder.sumReduce(
        "C", {n, n}, {n},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return bufferLoad(a, {s[0], r[0]}) *
                   bufferLoad(b, {r[0], s[1]});
        });
    return builder.build("matmul", {c});
}

std::vector<runtime::NDArray>
randomArgs(const PrimFunc& func)
{
    Rng rng(42);
    std::vector<runtime::NDArray> args;
    for (const Buffer& p : func->params) {
        std::vector<int64_t> shape;
        for (size_t d = 0; d < p->ndim(); ++d) {
            shape.push_back(p->shapeInt(d));
        }
        args.emplace_back(p->dtype, shape);
        args.back().fillRandom(rng);
    }
    return args;
}

std::vector<runtime::NDArray*>
ptrs(std::vector<runtime::NDArray>& args)
{
    std::vector<runtime::NDArray*> out;
    for (runtime::NDArray& a : args) out.push_back(&a);
    return out;
}

double
secondsOf(int repeats, const std::function<void()>& fn)
{
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < repeats; ++i) fn();
    std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - start;
    return dt.count() / repeats;
}

} // namespace

int
main()
{
    const int64_t n = 128;
    PrimFunc original = matmul(n);
    // A simple tiled schedule, as the tuner would produce.
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    std::vector<Var> i_split = sch.split(loops[0], {-1, 8});
    std::vector<Var> j_split = sch.split(loops[1], {-1, 8});
    sch.reorder({i_split[0], j_split[0], i_split[1], j_split[1]});
    PrimFunc func = sch.func();

    if (!runtime::jitAvailable()) {
        std::printf("no working C compiler (set TENSORIR_CC); the JIT "
                    "tier would fall back to the VM here\n");
        return 0;
    }

    // Compile once; the object lands in the on-disk cache keyed by
    // structural hash + compiler identity.
    auto compile_start = std::chrono::steady_clock::now();
    std::shared_ptr<const runtime::JitModule> mod =
        runtime::jitCompile(func);
    std::chrono::duration<double> compile_dt =
        std::chrono::steady_clock::now() - compile_start;
    if (!mod) {
        std::printf("JIT compilation failed\n");
        return 1;
    }
    std::printf("jit-compiled %s in %.0f ms -> %s\n",
                func->name.c_str(), compile_dt.count() * 1e3,
                mod->objectPath().c_str());

    // Correctness first: native output must equal the oracle's bit for
    // bit on this machine (docs/EXECUTION.md scopes that claim).
    std::vector<runtime::NDArray> jit_args = randomArgs(func);
    std::vector<runtime::NDArray> tw_args = randomArgs(func);
    std::vector<runtime::NDArray*> jit_ptrs = ptrs(jit_args);
    std::vector<runtime::NDArray*> tw_ptrs = ptrs(tw_args);
    mod->run(jit_ptrs);
    runtime::Interpreter interp;
    interp.run(func, tw_ptrs);
    double diff = jit_args.back().maxAbsDiff(tw_args.back());
    std::printf("max |native - oracle| = %g (%s)\n", diff,
                diff == 0.0 ? "bit-exact" : "DIVERGED");
    if (diff != 0.0) return 1;

    // Wall-clock, same inputs, one engine at a time. The compiled
    // artifacts are reused across repeats, as a repeated caller (the
    // tuner's numeric check) would hold them.
    runtime::CompiledFunc compiled = runtime::compile(func);
    runtime::VirtualMachine vm;
    double tw_s = secondsOf(1, [&] {
        runtime::Interpreter i2;
        i2.run(func, jit_ptrs);
    });
    double vm_s = secondsOf(5, [&] { vm.run(compiled, jit_ptrs); });
    double jit_s = secondsOf(50, [&] { mod->run(jit_ptrs); });

    std::printf("tree-walker: %9.3f ms\n", tw_s * 1e3);
    std::printf("bytecode VM: %9.3f ms  (%.1fx vs oracle)\n",
                vm_s * 1e3, tw_s / vm_s);
    std::printf("native JIT : %9.3f ms  (%.1fx vs VM, %.0fx vs "
                "oracle)\n",
                jit_s * 1e3, vm_s / jit_s, tw_s / jit_s);
    return 0;
}
