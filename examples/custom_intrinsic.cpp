/**
 * @file
 * Bringing a new hardware primitive to the system (§4.1 / §5.3's "we use
 * the same framework by providing the new description"). Declares a
 * hypothetical 8x8x8 bf16-style accelerator instruction as a
 * TensorIntrin — one call for the description + implementation, one
 * lambda for the simulator semantics — and lets the unchanged
 * auto-scheduler use it on a batched matmul.
 */
#include <cstdio>

#include "intrin/tensor_intrin.h"
#include "meta/search.h"
#include "runtime/interpreter.h"
#include "workloads/workloads.h"

using namespace tir;

int
main()
{
    registerBuiltinIntrinsics();

    // 1. Declare the new primitive: semantics (an 8x8x8 matmul over
    //    fp32 tiles) and the opaque call implementing it.
    TensorIntrin custom = makeMatmulIntrin(
        "npu_mma_8x8x8", 8, 8, 8, DataType::f32(), DataType::f32(),
        "any", "any", "any", "npu.mma_8x8x8", "dot4", "thread");
    TensorIntrin::registerIntrin(custom);

    // 2. Give the functional simulator its semantics.
    runtime::Interpreter::registerIntrinsic(
        "npu.mma_8x8x8",
        [](runtime::ExecContext& interp, const CallNode& call) {
            runtime::BufferRef c = interp.resolvePtr(call.args[0]);
            runtime::BufferRef a = interp.resolvePtr(call.args[1]);
            runtime::BufferRef b = interp.resolvePtr(call.args[2]);
            int64_t sc = c.buffer->shapeInt(c.buffer->ndim() - 1);
            int64_t sa = a.buffer->shapeInt(a.buffer->ndim() - 1);
            int64_t sb = b.buffer->shapeInt(b.buffer->ndim() - 1);
            for (int64_t i = 0; i < 8; ++i) {
                for (int64_t j = 0; j < 8; ++j) {
                    double acc = 0;
                    for (int64_t k = 0; k < 8; ++k) {
                        acc += a.array->at(a.offset + i * sa + k) *
                               b.array->at(b.offset + k * sb + j);
                    }
                    c.array->at(c.offset + i * sc + j) += acc;
                }
            }
        });

    // 3. The unchanged pipeline now targets it: candidate generation
    //    classifies the batched matmul's iterators (batch joins all
    //    three operands), and the sketch tensorizes the inner tile.
    workloads::OpSpec op = workloads::batchMatmul(
        4, 32, 32, 64, DataType::f32(), DataType::f32());
    hwsim::GpuDevice gpu;
    meta::TuneTask task{op.func, op.einsum_block, "gpu",
                        {"npu_mma_8x8x8"}};
    meta::TuneOptions options;
    options.population = 8;
    options.generations = 3;
    meta::TuneResult tuned =
        meta::autoTune(task, gpu, options, meta::TunerStyle::kTensorIR);
    std::printf("tuned batched matmul with npu_mma_8x8x8: %.1f us\n",
                tuned.best_latency_us);

    // 4. And the result is still numerically exact.
    Rng rng(17);
    std::vector<runtime::NDArray> ref_args;
    std::vector<runtime::NDArray> got_args;
    for (const Buffer& param : op.func->params) {
        std::vector<int64_t> shape;
        for (size_t dim = 0; dim < param->ndim(); ++dim) {
            shape.push_back(param->shapeInt(dim));
        }
        runtime::NDArray array(param->dtype, shape);
        array.fillRandom(rng);
        ref_args.push_back(array);
        got_args.push_back(array);
    }
    std::vector<runtime::NDArray*> ref_ptrs;
    std::vector<runtime::NDArray*> got_ptrs;
    for (auto& arr : ref_args) ref_ptrs.push_back(&arr);
    for (auto& arr : got_args) got_ptrs.push_back(&arr);
    runtime::Interpreter interp;
    interp.run(op.func, ref_ptrs);
    interp.run(tuned.best_func, got_ptrs);
    std::printf("max |difference| vs reference: %g\n",
                ref_args.back().maxAbsDiff(got_args.back()));
    return 0;
}
