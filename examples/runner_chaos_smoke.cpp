/**
 * @file
 * CI chaos check for the process-isolated measurement runner: run a
 * tiny fixed-seed tune with measure_backend="jit" while failpoints
 * kill and wedge measurement workers (runner.crash aborts the worker,
 * runner.hang parks it until the hard timeout SIGKILLs it), then
 * demand that (1) the tune completed anyway, (2) both crash_filtered
 * and hang_filtered are nonzero — the classifications actually
 * happened and were counted, not swallowed — and (3) a journal resume
 * reproduces the chaos run byte for byte, because classifications are
 * journaled alongside committed latencies.
 *
 * Skips (exit 0 with a message) when fork isolation or a native
 * toolchain is unavailable: without workers there is nothing to kill.
 *
 * Usage: runner_chaos_smoke <journal-path>
 * Exits nonzero on any mismatch.
 */
#include <cmath>
#include <cstdio>
#include <string>

#include "ir/printer.h"
#include "meta/journal.h"
#include "meta/runner.h"
#include "meta/search.h"
#include "meta/sketch.h"
#include "runtime/jit.h"
#include "support/failpoint.h"
#include "workloads/workloads.h"

using namespace tir;

namespace {

int failures = 0;

void
check(bool ok, const char* what)
{
    if (!ok) {
        std::fprintf(stderr, "runner_chaos_smoke: MISMATCH: %s\n",
                     what);
        ++failures;
    }
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <journal-path>\n", argv[0]);
        return 2;
    }
    if (!meta::MeasureRunner::available() || !runtime::jitAvailable()) {
        std::printf("runner_chaos_smoke: skipped (needs fork isolation "
                    "and a native toolchain)\n");
        return 0;
    }
    const std::string journal = argv[1];
    meta::resetJournal(journal);

    workloads::OpSpec op =
        workloads::gmm(16, 16, 16, DataType::f32(), DataType::f32());
    hwsim::CpuDevice cpu;
    meta::SketchApplier sketch =
        meta::makeLoopSketchApplier(op.einsum_block, /*gpu=*/false);

    meta::TuneOptions options;
    options.population = 4;
    options.generations = 2;
    options.children_per_generation = 8;
    options.measured_per_generation = 3;
    options.seed = 91;
    options.parallelism = 1;
    options.measure_backend = "jit";
    options.measure_warmup = 0;
    options.measure_repeats_real = 1;
    options.journal_path = journal;
    options.journal_label = "runner_chaos_smoke";

    // Data-keyed chaos: some candidates abort their worker, others
    // wedge it until the hard timeout SIGKILLs it (the ambient
    // TENSORIR_MEASURE_TIMEOUT_MS — ci.sh sets it short). Keyed by
    // structural hash, so the same candidates die in every run and on
    // every resume.
    failpoint::ScopedFailpoints chaos(
        "seed=23; runner.crash=error(0.3); runner.hang=error(0.4)");

    meta::TuneResult wall =
        meta::evolutionarySearch(op.func, sketch, cpu, options);
    std::printf("chaos run: trials=%d valid=%d invalid=%d crashes=%d "
                "hangs=%d best=%.3f us\n",
                wall.trials_measured, wall.measured_valid,
                wall.measured_invalid, wall.crash_filtered,
                wall.hang_filtered, wall.best_latency_us);

    check(wall.crash_filtered > 0,
          "no worker crash was classified (crash_filtered == 0)");
    check(wall.hang_filtered > 0,
          "no worker hang was classified (hang_filtered == 0)");
    check(wall.trials_measured ==
              wall.measured_valid + wall.measured_invalid,
          "trials_measured != measured_valid + measured_invalid");
    check(wall.trials_measured > 0,
          "chaos starved the tune of every measurement");
    check(std::isfinite(wall.best_latency_us),
          "chaos run found no valid candidate");

    meta::TuneOptions resume_options = options;
    resume_options.resume = true;
    meta::TuneResult replay =
        meta::evolutionarySearch(op.func, sketch, cpu, resume_options);
    std::printf(
        "journal replay: generations_replayed=%d crashes=%d hangs=%d "
        "best=%.3f us\n",
        replay.generations_replayed, replay.crash_filtered,
        replay.hang_filtered, replay.best_latency_us);

    check(replay.generations_replayed == options.generations + 1,
          "replay re-ran generations instead of restoring them");
    check(replay.crash_filtered == wall.crash_filtered,
          "crash_filtered");
    check(replay.hang_filtered == wall.hang_filtered, "hang_filtered");
    check(replay.best_latency_us == wall.best_latency_us,
          "best_latency_us");
    check(replay.history == wall.history, "history");
    check(replay.trials_measured == wall.trials_measured,
          "trials_measured");
    check(replay.measured_valid == wall.measured_valid,
          "measured_valid");
    check(replay.measured_invalid == wall.measured_invalid,
          "measured_invalid");
    check(replay.compile_timeout_filtered ==
              wall.compile_timeout_filtered,
          "compile_timeout_filtered");
    check(replay.tuning_cost_us == wall.tuning_cost_us,
          "tuning_cost_us");
    check(funcToString(replay.best_func) ==
              funcToString(wall.best_func),
          "best_func");

    if (failures != 0) {
        std::fprintf(stderr,
                     "runner_chaos_smoke: FAILED (%d mismatches)\n",
                     failures);
        return 1;
    }
    std::printf("runner_chaos_smoke: crashed and hung workers were "
                "classified, counted, and replayed byte-identically\n");
    return 0;
}
