/**
 * @file
 * End-to-end model compilation (§5.2): extract the unique layers of
 * MobileNet-V2, auto-tune each one on the simulated GPU, and report the
 * per-layer and total latencies next to the PyTorch and TensorRT
 * personas — the workflow behind Figure 12.
 */
#include <cstdio>

#include "graph/executor.h"

using namespace tir;

int
main()
{
    graph::ModelSpec model = graph::mobilenetV2Gpu();
    hwsim::GpuDevice gpu;
    hwsim::CpuDevice cpu;
    std::vector<std::string> intrins = {"wmma_16x16x16_f16"};

    std::printf("model: %s (%zu unique layers, %.1f GMACs)\n",
                model.name.c_str(), model.layers.size(),
                model.totalMacs() / 1e9);

    // Tune each unique layer and print a per-layer table.
    meta::TuneOptions options;
    options.population = 8;
    options.generations = 3;
    double total_us = 0;
    double tuning_minutes = 0;
    std::printf("%-6s %-14s %-8s %-12s %-10s\n", "layer", "kind",
                "count", "latency(us)", "GMACs/s");
    uint64_t seed = 100;
    for (size_t i = 0; i < model.layers.size(); ++i) {
        const graph::Layer& layer = model.layers[i];
        meta::TuneTask task{layer.op.func, layer.op.einsum_block, "gpu",
                            intrins};
        meta::TuneOptions opts = options;
        opts.seed = seed++;
        meta::TuneResult tuned = meta::autoTune(
            task, gpu, opts, meta::TunerStyle::kTensorIR);
        total_us += tuned.best_latency_us * layer.count;
        tuning_minutes += tuned.tuning_cost_us / 60e6;
        std::printf("%-6zu %-14s %-8d %-12.1f %-10.1f\n", i,
                    layer.op.name.c_str(), layer.count,
                    tuned.best_latency_us,
                    layer.op.macs / tuned.best_latency_us / 1e3);
    }
    std::printf("\nTensorIR total: %.1f us (tuning cost: %.1f simulated "
                "minutes)\n",
                total_us, tuning_minutes);

    graph::ModelResult pytorch = graph::runModelLibrary(
        model, baselines::Library::kPyTorchCuda, gpu, cpu, true, 12);
    graph::ModelResult trt = graph::runModelLibrary(
        model, baselines::Library::kTensorRT, gpu, cpu, true, 0);
    std::printf("PyTorch persona:  %.1f us (%.2fx)\n",
                pytorch.latency_us, pytorch.latency_us / total_us);
    std::printf("TensorRT persona: %.1f us (%.2fx)\n", trt.latency_us,
                trt.latency_us / total_us);
    return 0;
}
