/**
 * @file
 * Companion to docs/ARCHITECTURE.md: regenerates every IR listing and
 * number quoted in the walkthrough, stage by stage, so the document can
 * be checked against the actual printer output at any time:
 *
 *   TENSORIR_PARALLELISM=1 build/examples/example_architecture_walkthrough
 *
 * (Pinning the parallelism only silences thread-count variation in the
 * timing printout; tuning results are byte-identical either way.)
 */
#include <cstdio>

#include "hwsim/device.h"
#include "hwsim/stats.h"
#include "ir/printer.h"
#include "lower/lower.h"
#include "meta/auto_tensorize.h"
#include "meta/search.h"
#include "meta/sketch.h"
#include "te/te.h"
#include "tir/schedule.h"

using namespace tir;

int
main()
{
    // Stage 1 — tensor-expression front end (src/te/): describe the
    // computation, get a TensorIR function made of blocks.
    te::Builder builder;
    Buffer a = builder.placeholder("A", {64, 64}, DataType::f16());
    Buffer b = builder.placeholder("B", {64, 64}, DataType::f16());
    Buffer c = builder.sumReduce(
        "C", {64, 64}, {64},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) -> Expr {
            return bufferLoad(a, {s[0], r[0]}) *
                   bufferLoad(b, {r[0], s[1]});
        },
        DataType::f16());
    PrimFunc matmul = builder.build("matmul", {c});
    std::printf("==== stage 1: te build ====\n%s\n",
                funcToString(matmul).c_str());

    // Stage 2 — auto-tensorization candidates (src/meta/): match the
    // einsum block against registered tensor intrinsics (§4.2).
    std::vector<meta::TensorizeCandidate> candidates =
        meta::generateTensorizeCandidates(matmul, "C",
                                          {"wmma_16x16x16_f16"});
    std::printf("==== stage 2: candidates ====\n");
    for (const meta::TensorizeCandidate& cand : candidates) {
        std::printf("candidate: intrin=%s padding_waste=%.3f\n",
                    cand.intrin.c_str(), cand.padding_waste);
    }

    // Stage 3 — sketch application (src/meta/sketch.*): one sampled
    // point of the tensorized search space, as a schedule rewrite.
    meta::SketchOptions sketch_options;
    meta::SketchApplier applier = meta::makeTensorSketchApplier(
        candidates[meta::selectTensorizeCandidate(candidates)],
        /*gpu=*/true, sketch_options);
    Schedule sch(matmul, /*seed=*/7);
    applier(sch);
    std::printf("==== stage 3: sketch ====\n%s\ndecisions: %zu\n",
                funcToString(sch.func()).c_str(),
                sch.decisions().size());

    // Stage 4 — lowering (src/lower/): erase blocks, leaving the plain
    // loop nest handed to code generation.
    PrimFunc lowered = lowerToLoops(sch.func());
    std::printf("==== stage 4: lowered ====\n%s\n",
                funcToString(lowered).c_str());

    // Stage 5 — performance model (src/hwsim/): static event counts
    // feed the analytical device estimate.
    hwsim::GpuDevice gpu;
    hwsim::ProgramStats stats = hwsim::extractStats(sch.func());
    hwsim::RunEstimate estimate = gpu.estimate(stats);
    std::printf("==== stage 5: hwsim ====\n"
                "scalar_ops=%.0f intrin_macs=%.0f latency=%.2fus "
                "violation=%s\n",
                stats.scalar_ops, stats.totalIntrinMacs(),
                estimate.latency_us,
                estimate.violation.empty() ? "-"
                                           : estimate.violation.c_str());

    // Stage 6 — evolutionary search (src/meta/search.*): the full
    // auto-tuner over both sketch families.
    meta::TuneOptions options;
    options.population = 8;
    options.generations = 4;
    options.children_per_generation = 16;
    options.measured_per_generation = 6;
    options.seed = 91;
    meta::TuneTask task{matmul, "C", "gpu", {"wmma_16x16x16_f16"}};
    meta::TuneResult tuned =
        meta::autoTune(task, gpu, options, meta::TunerStyle::kTensorIR);
    std::printf("==== stage 6: search ====\n"
                "best=%.2fus sketch=%s trials=%d memo_hits=%d\n",
                tuned.best_latency_us, tuned.best_sketch.c_str(),
                tuned.trials_measured, tuned.memo_hits);
    return 0;
}
