/**
 * @file
 * Automatic tensorization of a 2D convolution (the paper's running
 * example, §4.2 / Figure 9). Shows the candidate-generation machinery:
 * characteristic-vector classification of the convolution's iterators,
 * the ReIndex + layout rewrite that lowers it onto a 16x16x16 tensor
 * core intrinsic, and the full auto-scheduler run with the evolutionary
 * search — then checks the winner against the reference numerically.
 */
#include <cstdio>

#include "meta/search.h"
#include "runtime/interpreter.h"
#include "workloads/workloads.h"

using namespace tir;

int
main()
{
    // A small NHWC convolution so the numeric check is quick.
    workloads::OpSpec op =
        workloads::conv2d(2, 14, 14, 32, 32, 3, 1, 1, 1,
                          DataType::f16(), DataType::f16());

    // --- Candidate generation (§4.2) ---------------------------------
    std::vector<meta::TensorizeCandidate> candidates =
        meta::generateTensorizeCandidates(op.func, op.einsum_block,
                                          {"wmma_16x16x16_f16"});
    std::printf("tensorization candidates: %zu\n", candidates.size());
    for (const meta::TensorizeCandidate& cand : candidates) {
        std::printf("  intrinsic %s: iterator groups (x | y | k sizes):",
                    cand.intrin.c_str());
        for (size_t g = 0; g < cand.groups.size(); ++g) {
            std::printf(" %zu->%lld", cand.groups[g].size(),
                        static_cast<long long>(cand.padded[g]));
        }
        std::printf(", padding waste %.2fx\n", cand.padding_waste);
    }

    // --- Full auto-scheduling run (§4.3-4.4) ---------------------------
    hwsim::GpuDevice gpu;
    meta::TuneTask task{op.func, op.einsum_block, "gpu",
                        {"wmma_16x16x16_f16"}};
    meta::TuneOptions options;
    options.population = 8;
    options.generations = 3;
    meta::TuneResult tensorized = meta::autoTune(
        task, gpu, options, meta::TunerStyle::kTensorIR);
    meta::TuneResult loop_only = meta::autoTune(
        task, gpu, options, meta::TunerStyle::kLoopOnly);
    std::printf("tuned latency: %.1f us tensorized vs %.1f us "
                "loop-only (%.2fx)\n",
                tensorized.best_latency_us, loop_only.best_latency_us,
                loop_only.best_latency_us / tensorized.best_latency_us);
    std::printf("measured trials: %d (+%d filtered before reaching "
                "hardware)\n",
                tensorized.trials_measured, tensorized.invalid_filtered);

    // --- Numeric check of the winning schedule -------------------------
    Rng rng(9);
    std::vector<runtime::NDArray> ref_args;
    std::vector<runtime::NDArray> got_args;
    for (const Buffer& param : op.func->params) {
        std::vector<int64_t> shape;
        for (size_t dim = 0; dim < param->ndim(); ++dim) {
            shape.push_back(param->shapeInt(dim));
        }
        runtime::NDArray array(param->dtype, shape);
        array.fillRandom(rng);
        ref_args.push_back(array);
        got_args.push_back(array);
    }
    std::vector<runtime::NDArray*> ref_ptrs;
    std::vector<runtime::NDArray*> got_ptrs;
    for (auto& arr : ref_args) ref_ptrs.push_back(&arr);
    for (auto& arr : got_args) got_ptrs.push_back(&arr);
    runtime::Interpreter interp;
    interp.run(op.func, ref_ptrs);
    interp.run(tensorized.best_func, got_ptrs);
    std::printf("max |difference| vs reference: %g\n",
                ref_args.back().maxAbsDiff(got_args.back()));
    return 0;
}
