/**
 * @file
 * Traced tuning demo: one small end-to-end session that exercises
 * every instrumented subsystem — the evolutionary search (generation
 * and candidate spans, memo/filter counters), the GBDT cost model
 * (retrain spans, loss gauges), the static analysis filter, and the
 * functional interpreter running the winning schedule.
 *
 * Two ways to capture the trace:
 *
 *   TENSORIR_TRACE=trace.json ./examples/example_tune_trace_demo
 *   ./examples/example_tune_trace_demo trace.json
 *
 * The first opens a process-wide session (flushed at exit); the second
 * opens it explicitly from main via trace::SessionGuard. Either way
 * the output is Chrome trace-event JSON — open it at ui.perfetto.dev,
 * or validate its structure with scripts/check_trace.py (CI does).
 */
#include <cstdio>

#include "hwsim/device.h"
#include "meta/search.h"
#include "runtime/interpreter.h"
#include "support/trace.h"
#include "workloads/workloads.h"

using namespace tir;

int
main(int argc, char** argv)
{
    // With a path argument this guard owns the session; with
    // TENSORIR_TRACE set instead, the env session is already active
    // and the guard is a no-op (outermost owner wins).
    trace::SessionGuard session(argc > 1 ? argv[1] : "");

    workloads::OpSpec op = workloads::gmm(256, 256, 256);
    hwsim::GpuDevice gpu;
    meta::TuneTask task{op.func, op.einsum_block, "gpu",
                        {"wmma_16x16x16_f16"}};
    meta::TuneOptions options;
    options.population = 8;
    options.generations = 3;
    options.children_per_generation = 16;
    options.measured_per_generation = 8;
    options.seed = 7;

    meta::TuneResult result =
        meta::autoTune(task, gpu, options, meta::TunerStyle::kTensorIR);
    std::printf("tuned %s: best %.1f us (%s sketch), %d trials, "
                "%d/%d/%d filtered (structure/race/bounds)\n",
                op.name.c_str(), result.best_latency_us,
                result.best_sketch.c_str(), result.trials_measured,
                result.invalid_filtered, result.race_filtered,
                result.bounds_filtered);

    // Run the winner through the interpreter so the trace also shows
    // an execution span, not just the search.
    Rng rng(1);
    runtime::NDArray a(DataType::f16(), {256, 256});
    runtime::NDArray b(DataType::f16(), {256, 256});
    runtime::NDArray c(DataType::f16(), {256, 256});
    a.fillRandom(rng);
    b.fillRandom(rng);
    runtime::Interpreter interp;
    interp.run(result.best_func, {&a, &b, &c});
    std::printf("executed winner through the interpreter\n");

    if (trace::enabled()) {
        std::printf("\n%s", trace::summaryText().c_str());
    } else {
        std::printf("(no trace session: set TENSORIR_TRACE=<path> or "
                    "pass a path argument)\n");
    }
    return 0;
}
