/**
 * @file
 * Code generation end to end: auto-tune an int8 matmul for the ARM
 * persona, lower the winner (erasing blocks), emit a standalone C
 * program, compile it with the system C compiler, run it, and check the
 * checksum against the functional interpreter. This is the full
 * schedule -> validate -> lower -> codegen pipeline on real output.
 */
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "codegen/c_codegen.h"
#include "lower/lower.h"
#include "meta/search.h"
#include "runtime/interpreter.h"
#include "workloads/workloads.h"

using namespace tir;

int
main()
{
    workloads::OpSpec op = workloads::gmm(64, 64, 64, DataType::i8(),
                                          DataType::i32());
    hwsim::CpuDevice cpu;
    meta::TuneTask task{op.func, "C", "cpu",
                        {"arm_sdot_1x1x4", "arm_gemm_8x12x4"}};
    meta::TuneOptions options;
    options.population = 6;
    options.generations = 2;
    meta::TuneResult tuned =
        meta::autoTune(task, cpu, options, meta::TunerStyle::kTensorIR);
    std::printf("tuned int8 GMM: %.1f simulated us (sketch: %s)\n",
                tuned.best_latency_us, tuned.best_sketch.c_str());

    PrimFunc lowered = lowerToLoops(tuned.best_func);
    std::printf("lowered: block-free = %s\n",
                isBlockFree(lowered->body) ? "yes" : "no");

    std::string code = codegen::emitStandaloneC(tuned.best_func, 1);
    std::string src = "/tmp/tensorir_generated_gmm.c";
    std::string bin = "/tmp/tensorir_generated_gmm";
    {
        std::ofstream out(src);
        out << code;
    }
    std::printf("emitted %zu bytes of C to %s\n", code.size(),
                src.c_str());

    std::string compile = "cc -O2 -o " + bin + " " + src + " -lm";
    if (std::system(compile.c_str()) != 0) {
        std::printf("compilation failed\n");
        return 1;
    }
    FILE* pipe = popen(bin.c_str(), "r");
    double compiled_sum = 0;
    if (!pipe || fscanf(pipe, "%lf", &compiled_sum) != 1) {
        std::printf("running the generated binary failed\n");
        return 1;
    }
    pclose(pipe);

    // Interpreter reference with the same deterministic inputs.
    std::vector<runtime::NDArray> args;
    for (const Buffer& p : op.func->params) {
        std::vector<int64_t> shape;
        for (size_t d = 0; d < p->ndim(); ++d) {
            shape.push_back(p->shapeInt(d));
        }
        args.emplace_back(p->dtype, shape);
    }
    for (size_t i = 0; i + 1 < args.size(); ++i) {
        for (int64_t e = 0; e < args[i].numel(); ++e) {
            args[i].at(e) = static_cast<double>((e % 7) - 3);
        }
    }
    std::vector<runtime::NDArray*> ptrs;
    for (auto& a : args) ptrs.push_back(&a);
    runtime::Interpreter interp;
    interp.run(op.func, ptrs);
    double expect = 0;
    for (int64_t e = 0; e < args.back().numel(); ++e) {
        expect += args.back().at(e);
    }
    std::printf("checksum: compiled %.6e vs interpreter %.6e (%s)\n",
                compiled_sum, expect,
                std::abs(compiled_sum - expect) < 1e-3 ? "MATCH"
                                                       : "MISMATCH");
    return std::abs(compiled_sum - expect) < 1e-3 ? 0 : 1;
}
