/**
 * @file
 * CI smoke check for the wall-clock measurement backend: run a tiny
 * fixed-seed tune with measure_backend="jit" journaled to a file, then
 * resume from the (complete) journal and demand the replay reproduce
 * the wall-clock run byte for byte. Wall-clock latencies are not
 * reproducible across runs — the journal is; this binary proves that
 * contract end to end on a real toolchain (and degrades to hwsim
 * fallbacks, still byte-identical, when no compiler is available).
 *
 * Usage: measure_jit_smoke <journal-path>
 * Exits nonzero on any mismatch.
 */
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>

#include "ir/printer.h"
#include "meta/journal.h"
#include "meta/search.h"
#include "meta/sketch.h"
#include "workloads/workloads.h"

using namespace tir;

namespace {

int failures = 0;

void
check(bool ok, const char* what)
{
    if (!ok) {
        std::fprintf(stderr, "measure_jit_smoke: MISMATCH: %s\n", what);
        ++failures;
    }
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <journal-path>\n", argv[0]);
        return 2;
    }
    const std::string journal = argv[1];
    meta::resetJournal(journal);

    workloads::OpSpec op =
        workloads::gmm(16, 16, 16, DataType::f32(), DataType::f32());
    hwsim::CpuDevice cpu;
    meta::SketchApplier sketch =
        meta::makeLoopSketchApplier(op.einsum_block, /*gpu=*/false);

    meta::TuneOptions options;
    options.population = 4;
    options.generations = 2;
    options.children_per_generation = 8;
    options.measured_per_generation = 3;
    options.seed = 91;
    options.measure_backend = "jit";
    options.measure_warmup = 1;
    options.measure_repeats_real = 3;
    options.journal_path = journal;
    options.journal_label = "measure_jit_smoke";

    meta::TuneResult wall =
        meta::evolutionarySearch(op.func, sketch, cpu, options);
    std::printf("wall-clock run: trials=%d valid=%d invalid=%d "
                "fallbacks=%d best=%.3f us\n",
                wall.trials_measured, wall.measured_valid,
                wall.measured_invalid, wall.measure_fallbacks,
                wall.best_latency_us);

    check(wall.trials_measured ==
              wall.measured_valid + wall.measured_invalid,
          "trials_measured != measured_valid + measured_invalid");
    check(std::isfinite(wall.best_latency_us),
          "wall-clock run found no valid candidate");

    meta::TuneOptions resume_options = options;
    resume_options.resume = true;
    meta::TuneResult replay =
        meta::evolutionarySearch(op.func, sketch, cpu, resume_options);
    std::printf("journal replay: generations_replayed=%d best=%.3f us\n",
                replay.generations_replayed, replay.best_latency_us);

    check(replay.generations_replayed == options.generations + 1,
          "replay re-ran generations instead of restoring them");
    // Byte-identical means bit-identical doubles, not approximately
    // equal: the journal stores IEEE-754 bit patterns.
    check(replay.best_latency_us == wall.best_latency_us,
          "best_latency_us");
    check(replay.history == wall.history, "history");
    check(replay.trials_measured == wall.trials_measured,
          "trials_measured");
    check(replay.measured_valid == wall.measured_valid,
          "measured_valid");
    check(replay.measured_invalid == wall.measured_invalid,
          "measured_invalid");
    check(replay.compile_timeout_filtered ==
              wall.compile_timeout_filtered,
          "compile_timeout_filtered");
    check(replay.measure_fallbacks == wall.measure_fallbacks,
          "measure_fallbacks");
    check(replay.tuning_cost_us == wall.tuning_cost_us,
          "tuning_cost_us");
    check(funcToString(replay.best_func) == funcToString(wall.best_func),
          "best_func");

    if (failures != 0) {
        std::fprintf(stderr, "measure_jit_smoke: FAILED (%d mismatches)\n",
                     failures);
        return 1;
    }
    std::printf("measure_jit_smoke: journaled wall-clock run resumed "
                "byte-identically\n");
    return 0;
}
