/**
 * @file
 * Quickstart: the library in five steps.
 *  1. Describe a workload (matmul + ReLU) with the tensor-expression
 *     builder — this generates a TensorIR program whose stages are
 *     blocks with full signatures (Figure 4).
 *  2. Print the program at any stage (the paper's debugging workflow).
 *  3. Schedule it manually with the §3.2 primitives: tile, reorder,
 *     decompose the reduction, blockize the inner tile (Figure 7), and
 *     tensorize it with the synthetic 4x4x4 dot-product accelerator
 *     from Figure 8.
 *  4. Validate the quasi-affine iterator bindings (§3.3).
 *  5. Execute both versions with the functional interpreter and check
 *     they agree, then compare their simulated-GPU latencies.
 */
#include <cstdio>

#include "hwsim/device.h"
#include "intrin/tensor_intrin.h"
#include "ir/printer.h"
#include "runtime/interpreter.h"
#include "te/te.h"
#include "tir/schedule.h"

using namespace tir;

int
main()
{
    registerBuiltinIntrinsics();

    // 1. Describe the workload: D = relu(A x B), 64x64x64 fp32.
    te::Builder builder;
    Buffer a = builder.placeholder("A", {64, 64});
    Buffer b = builder.placeholder("B", {64, 64});
    Buffer c = builder.sumReduce(
        "C", {64, 64}, {64},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return bufferLoad(a, {s[0], r[0]}) *
                   bufferLoad(b, {r[0], s[1]});
        });
    Buffer d = builder.compute(
        "D", {64, 64},
        [&](const std::vector<Var>& v) {
            return maxExpr(bufferLoad(c, {v[0], v[1]}), floatImm(0.0));
        });
    PrimFunc original = builder.build("matmul_relu", {d});

    // 2. Inspect the generated TensorIR.
    std::printf("--- generated program ---\n%s\n",
                funcToString(original).c_str());

    // 3. Schedule: tile to the intrinsic shape and tensorize.
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    std::vector<Var> i_split = sch.split(loops[0], {-1, 4});
    std::vector<Var> j_split = sch.split(loops[1], {-1, 4});
    std::vector<Var> k_split = sch.split(loops[2], {-1, 4});
    sch.reorder({i_split[0], j_split[0], k_split[0], i_split[1],
                 j_split[1], k_split[1]});
    sch.decomposeReduction("C", k_split[0]);
    std::string outer = sch.blockize(i_split[1]);
    sch.tensorize(outer, "accel_dot_4x4x4");
    // Fuse the ReLU epilogue into the tile loop.
    sch.reverseComputeAt("D", j_split[0]);

    // 4. Loop-nest validation (§3.3) over the transformed program.
    sch.validateAffineBindings();
    std::printf("--- scheduled program ---\n%s\n",
                funcToString(sch.func()).c_str());

    // 5. Execute both and compare.
    Rng rng(1);
    runtime::NDArray a_data(DataType::f32(), {64, 64});
    runtime::NDArray b_data(DataType::f32(), {64, 64});
    runtime::NDArray ref(DataType::f32(), {64, 64});
    runtime::NDArray got(DataType::f32(), {64, 64});
    a_data.fillRandom(rng);
    b_data.fillRandom(rng);
    runtime::Interpreter interp;
    interp.run(original, {&a_data, &b_data, &ref});
    interp.run(sch.func(), {&a_data, &b_data, &got});
    std::printf("max |difference| after scheduling: %g\n",
                ref.maxAbsDiff(got));

    hwsim::GpuDevice gpu;
    std::printf("simulated latency: %.1f us (naive) -> %.1f us "
                "(tensorized)\n",
                gpu.run(original).latency_us,
                gpu.run(sch.func()).latency_us);
    return 0;
}
