/**
 * @file
 * Schedule serving in four steps (serve/server.h):
 *  1. Start a ScheduleServer — a long-lived answerer for "best
 *     schedule for (workload, shape, target)" backed by the sharded
 *     tuning database with a mutex-free hot cache in front.
 *  2. Query a workload it has never seen: the miss coalesces into one
 *     background autoTune job and returns a PendingTune handle
 *     immediately; the first usable schedule streams out after the
 *     search's initial population, long before tuning finishes.
 *  3. Query again: now it is a cache hit — one atomic load on the hot
 *     path, the §5.2 record-caching idea turned into a service.
 *  4. Shut down cleanly: every background tune drains, and the
 *     database snapshots atomically to disk for the next process
 *     (re-running this example warm-starts from the snapshot).
 */
#include <chrono>
#include <cstdio>

#include "intrin/tensor_intrin.h"
#include "serve/server.h"
#include "workloads/workloads.h"

using namespace tir;

int
main()
{
    registerBuiltinIntrinsics();

    // 1. A server with two background tune workers and a small search
    // budget per miss. The snapshot prefix makes shutdown persist the
    // database — delete /tmp/tensorir_serve_quickstart.gpu.db to see
    // the cold path again.
    serve::ServeOptions options;
    options.tune_workers = 2;
    options.tune.population = 4;
    options.tune.generations = 2;
    options.tune.children_per_generation = 8;
    options.tune.parallelism = 1;
    options.snapshot_prefix = "/tmp/tensorir_serve_quickstart";
    serve::ScheduleServer server(options);

    workloads::OpSpec op = workloads::gmm(128, 128, 128);
    meta::TuneTask task{op.func, op.einsum_block, "gpu",
                        {"wmma_16x16x16_f16"}};

    // 2. First query. On a cold cache this is a miss: the server
    // starts one background tune and hands back a PendingTune.
    serve::ScheduleServer::Response first = server.query(task);
    if (first.record) {
        std::printf("warm start: %s served at %.2f us (%s)\n",
                    first.record->workload_name.c_str(),
                    first.record->latency_us,
                    first.from_hot_cache ? "hot cache" : "database");
    } else {
        std::printf("miss: tuning in the background...\n");
        auto streamed =
            first.pending->waitFirst(std::chrono::minutes(2));
        if (streamed) {
            std::printf("  first streamed schedule: %.2f us "
                        "(after the initial population)\n",
                        streamed->latency_us);
        }
        auto final_record =
            first.pending->waitFinal(std::chrono::minutes(2));
        if (final_record) {
            std::printf("  final schedule:          %.2f us "
                        "(%d updates streamed)\n",
                        final_record->latency_us,
                        first.pending->updates());
        }
    }

    // 3. Second query: a hit, served without any locking on the hot
    // path.
    serve::ScheduleServer::Response again = server.query(task);
    std::printf("repeat query: %.2f us schedule via %s, final=%s\n",
                again.record ? again.record->latency_us : -1.0,
                again.from_hot_cache ? "hot cache" : "database",
                again.final ? "yes" : "no");

    // 4. Clean shutdown: drain tunes, snapshot the database.
    server.shutdown();
    serve::ServerStats stats = server.stats();
    std::printf("stats: queries=%llu hits=%llu misses=%llu "
                "tunes=%llu streamed=%llu\n",
                (unsigned long long)stats.queries,
                (unsigned long long)(stats.hot_hits + stats.shard_hits),
                (unsigned long long)stats.misses,
                (unsigned long long)stats.tunes_started,
                (unsigned long long)stats.records_streamed);
    std::printf("snapshot saved to %s.gpu.db\n",
                options.snapshot_prefix.c_str());
    return 0;
}
