/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses: standard
 * tuning configurations and aligned-column table printing.
 */
#ifndef TENSORIR_BENCH_BENCH_UTIL_H
#define TENSORIR_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <vector>

#include "graph/executor.h"
#include "meta/search.h"
#include "workloads/workloads.h"

namespace bench {

/** Standard search budget for single-operator experiments. */
inline tir::meta::TuneOptions
singleOpOptions(uint64_t seed)
{
    tir::meta::TuneOptions options;
    options.population = 16;
    options.generations = 5;
    options.children_per_generation = 32;
    options.measured_per_generation = 10;
    options.seed = seed;
    return options;
}

/** Reduced budget for end-to-end models (many tasks). The per-trial
 *  measurement overhead is scaled up so the *totals* land in the
 *  paper's Table 1 magnitude: our ~45 simulated trials per task stand
 *  in for the ~2000 profiling rounds a real tuning run performs. */
inline tir::meta::TuneOptions
endToEndOptions(uint64_t seed)
{
    tir::meta::TuneOptions options;
    options.population = 8;
    options.generations = 3;
    options.children_per_generation = 16;
    options.measured_per_generation = 6;
    options.measure_overhead_us = 13.5e6;
    options.measure_repeats = 4500;
    options.seed = seed;
    return options;
}

/** Print an aligned table row. */
inline void
printRow(const std::vector<std::string>& cells, int width = 14)
{
    for (const std::string& cell : cells) {
        std::printf("%-*s", width, cell.c_str());
    }
    std::printf("\n");
}

inline std::string
fmt(double value, const char* pattern = "%.1f")
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), pattern, value);
    return buf;
}

inline void
printHeader(const std::string& title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

} // namespace bench

#endif // TENSORIR_BENCH_BENCH_UTIL_H
