/**
 * @file
 * Measures the analysis-driven lowering passes (lower/optimize.cpp):
 *
 *  1. Barrier elision on staged shared-memory GMM schedules. Two
 *     staging variants bracket the analysis precision: staging the
 *     operand whose footprint is shared across the thread axis keeps
 *     its barrier (it really orders a cross-thread RAW), while staging
 *     the per-thread-disjoint operand yields a barrier the dataflow
 *     framework proves redundant (TIR-L003). Reports barrier counts
 *     before/after and the hwsim GPU latency delta from the
 *     sync_stall_cycles term.
 *
 *  2. Dead-store elimination on a staging cascade (T1 <- A, T2 <- T1,
 *     nothing reads T2): the fixpoint kills the chain back-to-front
 *     over two rounds. Reports store counts and, when a native
 *     toolchain is present, the JIT wall-clock delta.
 *
 * Feeds the "Analysis-driven lowering passes" section of
 * EXPERIMENTS.md. Interpreter parity of every optimized/unoptimized
 * pair is asserted by tests/test_dataflow.cpp; this harness only
 * reports costs.
 */
#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "hwsim/device.h"
#include "lower/lower.h"
#include "runtime/jit.h"
#include "runtime/ndarray.h"
#include "support/rng.h"
#include "tir/analysis/access_extract.h"
#include "tir/schedule.h"

namespace {

using namespace tir;

int
countSyncs(const PrimFunc& func)
{
    return static_cast<int>(
        analysis::extractAccesses(func->body).syncs.size());
}

int
countStores(const PrimFunc& func)
{
    int stores = 0;
    for (const analysis::AccessSite& site :
         analysis::extractAccesses(func->body).sites) {
        if (site.is_write && !site.opaque) ++stores;
    }
    return stores;
}

/** GMM with block/thread bindings and one operand staged through
 *  shared memory at the reduction loop. `read_index` 0 stages A
 *  (footprint shared across threadIdx -> barrier load-bearing),
 *  1 stages B (per-thread disjoint -> barrier redundant). */
PrimFunc
stagedGmm(int64_t n, int64_t m, int64_t k, int read_index)
{
    Schedule sch(workloads::gmm(n, m, k).func);
    std::vector<Var> loops = sch.getLoops("C");
    sch.bind(loops[0], "blockIdx.x");
    sch.bind(loops[1], "threadIdx.x");
    std::string copy = sch.cacheRead("C", read_index, "shared");
    sch.computeAt(copy, loops[2]);
    return sch.func();
}

/** GPU latency of a *lowered* function. extractStats' live-tile
 *  heuristic for shared allocations keys on Block nodes, which
 *  lowering strips — it would charge the whole trip-weighted write
 *  volume as shared allocation. Substitute the static byte size of
 *  the shared buffers (exact for these unpartitioned staging
 *  schedules) before estimating. */
double
loweredGpuLatency(const PrimFunc& lowered)
{
    hwsim::ProgramStats stats = hwsim::extractStats(lowered);
    double shared_bytes = 0;
    std::set<const BufferNode*> seen;
    for (const analysis::AccessSite& site :
         analysis::extractAccesses(lowered->body).sites) {
        if (site.buffer->scope != "shared" ||
            !seen.insert(site.buffer.get()).second) {
            continue;
        }
        double numel = 1;
        for (size_t d = 0; d < site.buffer->ndim(); ++d) {
            numel *= static_cast<double>(site.buffer->shapeInt(d));
        }
        shared_bytes += numel * site.buffer->dtype.bytes();
    }
    stats.shared_alloc_bytes = shared_bytes;
    return hwsim::GpuDevice().estimate(stats).latency_us;
}

void
syncElisionRow(const std::string& label, const PrimFunc& scheduled)
{
    LowerOptions base;
    base.insert_storage_sync = true;
    PrimFunc before = lowerWithOptions(scheduled, base);

    LowerOptions opt = base;
    opt.elide_redundant_sync = true;
    LowerStats stats;
    PrimFunc after = lowerWithOptions(scheduled, opt, &stats);

    double us_before = loweredGpuLatency(before);
    double us_after = loweredGpuLatency(after);
    double delta_pct =
        us_before > 0 ? 100.0 * (us_before - us_after) / us_before : 0;
    bench::printRow({label, bench::fmt(countSyncs(before), "%.0f"),
                     bench::fmt(countSyncs(after), "%.0f"),
                     bench::fmt(stats.syncs_elided, "%.0f"),
                     bench::fmt(us_before, "%.2f"),
                     bench::fmt(us_after, "%.2f"),
                     bench::fmt(delta_pct, "%.1f%%")},
                    16);
}

/** Staging cascade over `n` elements: two shared-nothing temporaries
 *  feed each other and then nothing, alongside the live output
 *  B[i] = A[i] * A[i]. DSE removes the T2 store (round 1), which
 *  frees the T1 store (round 2). */
PrimFunc
deadStoreCascade(int64_t n)
{
    Buffer a = makeBuffer("A", {n}, DataType::f32());
    Buffer b = makeBuffer("B", {n}, DataType::f32());
    Buffer t1 = makeBuffer("T1", {n}, DataType::f32(), "global");
    Buffer t2 = makeBuffer("T2", {n}, DataType::f32(), "global");
    Var i = var("i");
    Stmt body = seq({
        bufferStore(t1, bufferLoad(a, {i}) * floatImm(2.0, DataType::f32()),
                    {i}),
        bufferStore(t2, bufferLoad(t1, {i}) + floatImm(1.0, DataType::f32()),
                    {i}),
        bufferStore(b, bufferLoad(a, {i}) * bufferLoad(a, {i}), {i}),
    });
    Stmt loop =
        makeFor(i, intImm(0), intImm(n), std::move(body), ForKind::kSerial);
    return makeFunc("dse_cascade", {a, b}, std::move(loop));
}

/** Median-of-repeats JIT wall clock in microseconds; negative when the
 *  function fails to compile. */
double
jitMicros(const PrimFunc& func, int repeats)
{
    std::shared_ptr<const runtime::JitModule> mod =
        runtime::jitCompile(func);
    if (!mod) return -1.0;
    Rng rng(7);
    std::vector<runtime::NDArray> arrays;
    for (const Buffer& param : func->params) {
        std::vector<int64_t> shape;
        for (size_t d = 0; d < param->ndim(); ++d) {
            shape.push_back(param->shapeInt(d));
        }
        arrays.emplace_back(param->dtype, shape);
        arrays.back().fillRandom(rng);
    }
    std::vector<runtime::NDArray*> ptrs;
    for (runtime::NDArray& array : arrays) ptrs.push_back(&array);

    std::vector<double> samples;
    mod->run(ptrs); // warm-up
    for (int r = 0; r < repeats; ++r) {
        auto start = std::chrono::steady_clock::now();
        mod->run(ptrs);
        auto stop = std::chrono::steady_clock::now();
        samples.push_back(
            std::chrono::duration<double, std::micro>(stop - start)
                .count());
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

} // namespace

int
main()
{
    bench::printHeader(
        "Barrier elision (staged shared-memory GMM, sim-gpu)");
    bench::printRow({"schedule", "syncs", "syncs-opt", "elided",
                     "us", "us-opt", "delta"},
                    16);
    for (int64_t dim : {32, 64, 128}) {
        std::string shape = std::to_string(dim);
        // Staging A: footprint constant along threadIdx.x, so the
        // barrier orders a real cross-thread RAW and must survive.
        syncElisionRow("GMM-" + shape + "-stageA",
                       stagedGmm(dim, dim, dim, 0));
        // Staging B: each thread stages and consumes its own column;
        // the barrier orders nothing (TIR-L003) and is elided.
        syncElisionRow("GMM-" + shape + "-stageB",
                       stagedGmm(dim, dim, dim, 1));
    }

    bench::printHeader("Dead-store elimination (staging cascade)");
    bench::printRow({"n", "stores", "stores-opt", "removed", "jit-us",
                     "jit-us-opt", "delta"});
    for (int64_t n : {1 << 16, 1 << 18, 1 << 20}) {
        PrimFunc before = deadStoreCascade(n);
        LowerStats stats;
        PrimFunc after = eliminateDeadStores(before, &stats);
        std::string jit_before = "n/a";
        std::string jit_after = "n/a";
        std::string delta = "n/a";
        if (runtime::jitAvailable()) {
            double us_before = jitMicros(before, 9);
            double us_after = jitMicros(after, 9);
            if (us_before > 0 && us_after > 0) {
                jit_before = bench::fmt(us_before, "%.1f");
                jit_after = bench::fmt(us_after, "%.1f");
                delta = bench::fmt(
                    100.0 * (us_before - us_after) / us_before,
                    "%.1f%%");
            }
        }
        bench::printRow({std::to_string(n),
                         bench::fmt(countStores(before), "%.0f"),
                         bench::fmt(countStores(after), "%.0f"),
                         bench::fmt(stats.stores_eliminated, "%.0f"),
                         jit_before, jit_after, delta});
    }
    return 0;
}
