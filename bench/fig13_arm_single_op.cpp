/**
 * @file
 * Figure 13 reproduction: single-operator evaluation on the simulated
 * ARM CPU with the int8 `sdot` intrinsic. Expected shape: TensorIR is
 * up to ~12.5x faster than TVM (which has no sdot path) and reaches
 * 85-105% of ArmComputeLib.
 */
#include "bench_util.h"

using namespace tir;

int
main()
{
    hwsim::CpuDevice cpu;
    hwsim::GpuDevice gpu;
    std::vector<std::string> intrins = {"arm_sdot_1x1x4", "arm_gemm_8x12x4"};

    bench::printHeader(
        "Figure 13: ARM single-op (simulated Graviton2, int8)");
    bench::printRow({"op", "TVM(us)", "ACL(us)", "TensorIR(us)",
                     "vs TVM", "vs ACL"});

    for (const workloads::OpSpec& op : workloads::armSuite()) {
        meta::TuneTask task{op.func, op.einsum_block, "cpu", intrins};
        meta::TuneResult tvm = meta::autoTune(
            task, cpu, bench::singleOpOptions(51),
            meta::TunerStyle::kLoopOnly);
        meta::TuneResult tensorir = meta::autoTune(
            task, cpu, bench::singleOpOptions(52),
            meta::TunerStyle::kTensorIR);
        auto acl = baselines::libraryLatencyUsCpu(
            baselines::Library::kArmComputeLib, op, cpu);
        bench::printRow(
            {op.name, bench::fmt(tvm.best_latency_us),
             acl ? bench::fmt(*acl) : "n/a",
             bench::fmt(tensorir.best_latency_us),
             bench::fmt(tvm.best_latency_us / tensorir.best_latency_us,
                        "%.2fx"),
             acl ? bench::fmt(*acl / tensorir.best_latency_us, "%.2fx")
                 : "-"});
    }
    std::printf("\n(paper: up to 12.5x over TVM; 85%%-105%% of "
                "ArmComputeLib)\n");
    return 0;
}
