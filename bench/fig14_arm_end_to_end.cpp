/**
 * @file
 * Figure 14 reproduction: end-to-end quantized models on the simulated
 * ARM CPU. PyTorch runs on a QNNPACK persona that predates `sdot` (the
 * paper's maintenance-cost observation), TVM is the loop-only tuner.
 * Expected shape: TensorIR outperforms both by ~1.2-2.5x.
 */
#include "bench_util.h"

using namespace tir;

int
main()
{
    hwsim::CpuDevice cpu;
    hwsim::GpuDevice gpu;
    std::vector<std::string> intrins = {"arm_sdot_1x1x4", "arm_gemm_8x12x4"};

    bench::printHeader(
        "Figure 14: ARM end-to-end quantized models (latency us)");
    bench::printRow({"model", "PyTorch", "TVM", "TensorIR", "vs PyTorch",
                     "vs TVM"});

    std::vector<graph::ModelSpec> models = {graph::resnet50Arm(),
                                            graph::mobilenetV2Arm(),
                                            graph::bertBaseArm()};
    for (const graph::ModelSpec& model : models) {
        graph::ModelResult pytorch = graph::runModelLibrary(
            model, baselines::Library::kPyTorchQnnpack, gpu, cpu, false,
            /*per_op_overhead_us=*/20);
        graph::ModelResult tvm = graph::runModelTuned(
            model, cpu, "cpu", intrins, meta::TunerStyle::kLoopOnly,
            bench::endToEndOptions(61));
        graph::ModelResult tensorir = graph::runModelTuned(
            model, cpu, "cpu", intrins, meta::TunerStyle::kTensorIR,
            bench::endToEndOptions(62));
        bench::printRow(
            {model.name, bench::fmt(pytorch.latency_us),
             bench::fmt(tvm.latency_us),
             bench::fmt(tensorir.latency_us),
             bench::fmt(pytorch.latency_us / tensorir.latency_us,
                        "%.2fx"),
             bench::fmt(tvm.latency_us / tensorir.latency_us, "%.2fx")});
    }
    std::printf("\n(paper: 1.2x-2.5x over PyTorch and TVM)\n");
    return 0;
}
