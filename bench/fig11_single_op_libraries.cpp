/**
 * @file
 * Figure 11 reproduction: single-operator comparison against platform-
 * specific libraries (CUTLASS, TensorRT personas) on the simulated GPU.
 * Expected shape per the paper: CUTLASS has no DEP/GRP/T2D kernels;
 * TensorIR wins on C1D, C2D, DEP, T2D, DIL (up to ~13.9x) and reaches
 * >= 75% of the best library on C3D, GMM and GRP.
 */
#include "bench_util.h"

using namespace tir;

int
main()
{
    hwsim::GpuDevice gpu;
    hwsim::CpuDevice cpu;
    std::vector<std::string> intrins = {"wmma_16x16x16_f16"};

    bench::printHeader(
        "Figure 11: single-op vs vendor libraries (simulated RTX 3080)");
    bench::printRow({"op", "CUTLASS(us)", "TensorRT(us)", "TensorIR(us)",
                     "vs best lib"});

    for (const workloads::OpSpec& op : workloads::gpuSuite()) {
        meta::TuneTask task{op.func, op.einsum_block, "gpu", intrins};
        meta::TuneResult tensorir = meta::autoTune(
            task, gpu, bench::singleOpOptions(21),
            meta::TunerStyle::kTensorIR);
        auto cutlass = baselines::libraryLatencyUs(
            baselines::Library::kCutlass, op, gpu);
        auto trt = baselines::libraryLatencyUs(
            baselines::Library::kTensorRT, op, gpu);
        double best_lib = std::numeric_limits<double>::infinity();
        if (cutlass) best_lib = std::min(best_lib, *cutlass);
        if (trt) best_lib = std::min(best_lib, *trt);
        bench::printRow(
            {op.name, cutlass ? bench::fmt(*cutlass) : "n/a",
             trt ? bench::fmt(*trt) : "n/a",
             bench::fmt(tensorir.best_latency_us),
             bench::fmt(best_lib / tensorir.best_latency_us, "%.2fx")});
    }
    std::printf("\n(>1x: TensorIR faster than the best library; the "
                "paper reports wins on C1D/C2D/DEP/T2D/DIL and >=0.75x "
                "on C3D/GMM/GRP)\n");
    return 0;
}
