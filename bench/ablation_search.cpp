/**
 * @file
 * Ablation: search components (§4.4). Compares the evolutionary search
 * with and without the learned cost model (pure random screening), and
 * reports the validation filter's work: how many mutated candidates the
 * §3.3 validators rejected before they could waste a measurement.
 */
#include "bench_util.h"

using namespace tir;

int
main()
{
    hwsim::GpuDevice gpu;
    std::vector<std::string> intrins = {"wmma_16x16x16_f16"};
    bench::printHeader("Ablation: cost model and validation filtering");
    bench::printRow({"op", "with-model", "random", "model gain",
                     "invalid/meas", "trials"}, 16);

    for (const workloads::OpSpec& op :
         {workloads::gmm(1024, 1024, 1024),
          workloads::conv2d(8, 28, 28, 128, 128, 3, 1, 1),
          workloads::transposedConv2d(8, 14, 14, 256, 128, 4, 2)}) {
        meta::TuneTask task{op.func, op.einsum_block, "gpu", intrins};
        meta::TuneOptions with_model = bench::singleOpOptions(81);
        meta::TuneResult guided = meta::autoTune(
            task, gpu, with_model, meta::TunerStyle::kTensorIR);
        meta::TuneOptions no_model = bench::singleOpOptions(82);
        no_model.use_cost_model = false;
        meta::TuneResult random = meta::autoTune(
            task, gpu, no_model, meta::TunerStyle::kTensorIR);
        bench::printRow(
            {op.name, bench::fmt(guided.best_latency_us),
             bench::fmt(random.best_latency_us),
             bench::fmt(random.best_latency_us /
                            guided.best_latency_us,
                        "%.2fx"),
             bench::fmt(static_cast<double>(guided.invalid_filtered),
                        "%.0f"),
             bench::fmt(static_cast<double>(guided.trials_measured),
                        "%.0f")},
            16);
    }
    std::printf("\n(invalid/meas: candidates rejected by the §3.3 "
                "validators or device constraints, which never reach "
                "the simulated hardware)\n");
    return 0;
}
