/**
 * @file
 * Load generator for the schedule-serving layer (serve/server.h):
 * replays a Zipf-distributed request stream — a few hot workloads
 * dominate, a long tail misses — from C concurrent client threads
 * against a ScheduleServer, and reports
 *
 *   - p50 / p99 query (lookup) latency, hot path included,
 *   - miss-to-first-schedule latency (query miss -> first record
 *     streamed from the background tune's initial population),
 *   - the server's activity counters.
 *
 * With --check it doubles as the CI smoke gate (scripts/ci.sh,
 * serve-smoke job): nonzero cache hits, exactly-once tuning per unique
 * workload, every tune completed, and a clean shutdown with no leaked
 * pool tasks — violations exit nonzero.
 *
 * Usage: serve_load [--requests N] [--clients C] [--workloads M]
 *                   [--seed S] [--check]
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "ir/structural_hash.h"
#include "serve/server.h"
#include "support/rng.h"
#include "workloads/workloads.h"

namespace {

using Clock = std::chrono::steady_clock;

double
toMicros(Clock::duration d)
{
    return std::chrono::duration<double, std::micro>(d).count();
}

double
percentile(std::vector<double>& values, double p)
{
    if (values.empty()) return 0;
    std::sort(values.begin(), values.end());
    size_t idx = static_cast<size_t>(p * (values.size() - 1) + 0.5);
    return values[std::min(idx, values.size() - 1)];
}

struct Args
{
    int requests = 400;
    int clients = 4;
    int workloads = 12;
    uint64_t seed = 1;
    bool check = false;
};

Args
parseArgs(int argc, char** argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        auto intArg = [&](const char* flag, int* out) {
            if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
                *out = std::atoi(argv[++i]);
                return true;
            }
            return false;
        };
        if (intArg("--requests", &args.requests)) continue;
        if (intArg("--clients", &args.clients)) continue;
        if (intArg("--workloads", &args.workloads)) continue;
        if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            args.seed = std::strtoull(argv[++i], nullptr, 10);
            continue;
        }
        if (std::strcmp(argv[i], "--check") == 0) {
            args.check = true;
            continue;
        }
        std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
        std::exit(2);
    }
    return args;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace tir;
    Args args = parseArgs(argc, argv);

    // The workload universe: distinct GEMM shapes, rank-ordered by
    // popularity. Shapes grow with rank so the hottest workloads are
    // also the cheapest to tune.
    std::vector<meta::TuneTask> tasks;
    for (int r = 0; r < args.workloads; ++r) {
        int n = 64 + 16 * (r % 8);
        int m = 64 + 16 * ((r / 2) % 8);
        int k = 64 + 64 * (r / 16);
        workloads::OpSpec op = workloads::gmm(n, m, k);
        tasks.push_back(
            meta::TuneTask{op.func, op.einsum_block, "gpu",
                           {"wmma_16x16x16_f16"}});
    }
    std::vector<uint64_t> task_hashes;
    for (const auto& task : tasks) {
        task_hashes.push_back(structuralHash(task.func));
    }

    // Zipf(s = 1.0) popularity over ranks: weight(r) = 1 / (r + 1).
    std::vector<double> cumulative(tasks.size());
    double total = 0;
    for (size_t r = 0; r < tasks.size(); ++r) {
        total += 1.0 / static_cast<double>(r + 1);
        cumulative[r] = total;
    }

    serve::ServeOptions options;
    options.tune_workers =
        std::max(2, support::ThreadPool::hardwareParallelism() / 2);
    options.tune.population = 4;
    options.tune.generations = 2;
    options.tune.children_per_generation = 8;
    options.tune.measured_per_generation = 3;
    options.tune.parallelism = 1;
    options.tune.seed = args.seed;
    serve::ScheduleServer server(options);

    std::vector<std::vector<double>> query_us(args.clients);
    std::vector<std::vector<double>> miss_to_first_us(args.clients);
    std::atomic<int> wait_failures{0};

    auto start = Clock::now();
    std::vector<std::thread> clients;
    for (int c = 0; c < args.clients; ++c) {
        clients.emplace_back([&, c] {
            Rng rng(Rng::mixSeed(
                args.seed, static_cast<uint64_t>(c)));
            int budget = args.requests / args.clients +
                         (c < args.requests % args.clients ? 1 : 0);
            for (int i = 0; i < budget; ++i) {
                double draw = rng.randDouble() * total;
                size_t rank = static_cast<size_t>(
                    std::lower_bound(cumulative.begin(),
                                     cumulative.end(), draw) -
                    cumulative.begin());
                rank = std::min(rank, tasks.size() - 1);

                auto t0 = Clock::now();
                serve::ScheduleServer::Response resp =
                    server.query(tasks[rank]);
                query_us[c].push_back(toMicros(Clock::now() - t0));

                if (!resp.record && resp.pending) {
                    // Cold miss: wait for the first streamed schedule
                    // (the initial population's best), the latency a
                    // client actually experiences on a miss.
                    auto got = resp.pending->waitFirst(
                        std::chrono::minutes(5));
                    if (got.has_value()) {
                        miss_to_first_us[c].push_back(
                            toMicros(Clock::now() - t0));
                    } else {
                        wait_failures.fetch_add(1);
                    }
                }
            }
        });
    }
    for (auto& th : clients) th.join();
    double wall_s =
        std::chrono::duration<double>(Clock::now() - start).count();

    server.shutdown();
    serve::ServerStats stats = server.stats();
    size_t leaked = server.pendingPoolTasks();

    std::vector<double> all_query;
    std::vector<double> all_miss;
    for (int c = 0; c < args.clients; ++c) {
        all_query.insert(all_query.end(), query_us[c].begin(),
                         query_us[c].end());
        all_miss.insert(all_miss.end(), miss_to_first_us[c].begin(),
                        miss_to_first_us[c].end());
    }

    uint64_t hits = stats.hot_hits + stats.shard_hits;

    std::printf("serve_load: %d requests, %d clients, %zu workloads "
                "(Zipf s=1.0), %d tune workers\n",
                args.requests, args.clients, tasks.size(),
                options.tune_workers);
    std::printf("  wall time              %8.2f s (%.0f req/s)\n",
                wall_s, args.requests / wall_s);
    std::printf("  query latency p50      %8.2f us\n",
                percentile(all_query, 0.50));
    std::printf("  query latency p99      %8.2f us\n",
                percentile(all_query, 0.99));
    std::printf("  miss->first schedule p50 %6.1f ms (%zu misses waited)\n",
                percentile(all_miss, 0.50) / 1000.0, all_miss.size());
    std::printf("  miss->first schedule p99 %6.1f ms\n",
                percentile(all_miss, 0.99) / 1000.0);
    std::printf("  queries=%llu hot_hits=%llu shard_hits=%llu "
                "misses=%llu coalesced=%llu\n",
                (unsigned long long)stats.queries,
                (unsigned long long)stats.hot_hits,
                (unsigned long long)stats.shard_hits,
                (unsigned long long)stats.misses,
                (unsigned long long)stats.coalesced);
    std::printf("  tunes started=%llu completed=%llu failed=%llu "
                "records_streamed=%llu leaked_tasks=%zu\n",
                (unsigned long long)stats.tunes_started,
                (unsigned long long)stats.tunes_completed,
                (unsigned long long)stats.tunes_failed,
                (unsigned long long)stats.records_streamed, leaked);

    if (!args.check) return 0;

    // --- CI smoke assertions -------------------------------------
    int failures = 0;
    auto expect = [&](bool ok, const char* what) {
        if (!ok) {
            std::fprintf(stderr, "serve-smoke FAILED: %s\n", what);
            ++failures;
        }
    };
    expect(stats.queries == static_cast<uint64_t>(args.requests),
           "every request reaches the server");
    expect(hits > 0, "nonzero cache hits under a Zipf stream");
    expect(stats.hot_hits > 0,
           "the mutex-free hot cache serves repeat queries");
    expect(stats.tunes_started <=
               static_cast<uint64_t>(tasks.size()),
           "at most one tune per unique workload (single-flight)");
    expect(stats.tunes_started >= 1, "cold misses trigger tuning");
    expect(stats.tunes_completed == stats.tunes_started,
           "every started tune completes before shutdown returns");
    expect(stats.tunes_failed == 0, "no tune failed");
    expect(wait_failures.load() == 0,
           "every waited miss received a schedule");
    expect(leaked == 0, "no leaked pool tasks after shutdown");
    expect(server.pendingTunes() == 0,
           "no tune left registered in flight");
    // Exactly-once per unique workload: each tune commits exactly one
    // workload, so a double-tuned workload would make tunes_started
    // exceed the number of distinct records in the database.
    expect(server.target("gpu").database().size() ==
               stats.tunes_started,
           "exactly one tune per unique tuned workload");
    // And every tuned workload is one we actually requested.
    size_t resolvable = 0;
    for (uint64_t hash : task_hashes) {
        if (server.target("gpu").database().lookup(hash).has_value()) {
            ++resolvable;
        }
    }
    expect(resolvable == stats.tunes_started,
           "every database record maps back to a requested workload");
    if (failures == 0) {
        std::printf("serve-smoke OK\n");
        return 0;
    }
    return 1;
}
