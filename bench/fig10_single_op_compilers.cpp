/**
 * @file
 * Figure 10 reproduction: single-operator comparison against machine
 * learning compilers on the simulated GPU. TVM is the loop-only tuner
 * (no tensorization), AMOS tensorizes with a fixed data-movement policy,
 * TensorIR is the full system. The paper's expected shape: TensorIR
 * wins everywhere; the gap is largest on compute-heavy ops (C2D, C3D,
 * GMM — up to ~7.5x) and smallest on DEP, where scalar code is already
 * memory-bound.
 */
#include "bench_util.h"

using namespace tir;

int
main()
{
    hwsim::GpuDevice gpu;
    std::vector<std::string> intrins = {"wmma_16x16x16_f16"};

    bench::printHeader(
        "Figure 10: single-op vs ML compilers (simulated RTX 3080, fp16)");
    bench::printRow({"op", "TVM(us)", "AMOS(us)", "TensorIR(us)",
                     "vs TVM", "vs AMOS", "TIR GMACs/s"});

    double worst_tvm = 0;
    for (const workloads::OpSpec& op : workloads::gpuSuite()) {
        meta::TuneTask task{op.func, op.einsum_block, "gpu", intrins};
        meta::TuneResult tvm = meta::autoTune(
            task, gpu, bench::singleOpOptions(11),
            meta::TunerStyle::kLoopOnly);
        meta::TuneResult amos = meta::autoTune(
            task, gpu, bench::singleOpOptions(12),
            meta::TunerStyle::kAmosLike);
        meta::TuneResult tensorir = meta::autoTune(
            task, gpu, bench::singleOpOptions(13),
            meta::TunerStyle::kTensorIR);
        double vs_tvm = tvm.best_latency_us / tensorir.best_latency_us;
        double vs_amos = amos.best_latency_us / tensorir.best_latency_us;
        worst_tvm = std::max(worst_tvm, vs_tvm);
        bench::printRow({op.name, bench::fmt(tvm.best_latency_us),
                         bench::fmt(amos.best_latency_us),
                         bench::fmt(tensorir.best_latency_us),
                         bench::fmt(vs_tvm, "%.2fx"),
                         bench::fmt(vs_amos, "%.2fx"),
                         bench::fmt(op.macs /
                                    tensorir.best_latency_us / 1e3)});
    }
    std::printf("\nmax speedup over TVM: %.1fx (paper: up to 7.5x)\n",
                worst_tvm);
    return 0;
}
