/**
 * @file
 * Table 1 reproduction: end-to-end tuning time (simulated wall clock,
 * dominated by hardware profiling) for TVM vs TensorIR. Expected shape:
 * TensorIR tunes ~1.1-2.2x faster because (a) its candidates run faster,
 * so each profiling round costs less, and (b) tensorization shrinks the
 * outer-loop search space, so fewer trials are needed.
 */
#include "bench_util.h"

#include "meta/database.h"

using namespace tir;

int
main()
{
    hwsim::GpuDevice gpu;
    std::vector<std::string> intrins = {"wmma_16x16x16_f16"};

    bench::printHeader(
        "Table 1: tuning time, simulated minutes (profiling-dominated)");
    bench::printRow({"model", "TVM(min)", "TensorIR(min)", "speedup"});

    std::vector<graph::ModelSpec> models = {
        graph::resnet50Gpu(), graph::mobilenetV2Gpu(),
        graph::bertLargeGpu(), graph::vitGpu()};
    for (const graph::ModelSpec& model : models) {
        graph::ModelResult tvm = graph::runModelTuned(
            model, gpu, "gpu", intrins, meta::TunerStyle::kLoopOnly,
            bench::endToEndOptions(41));
        graph::ModelResult tensorir = graph::runModelTuned(
            model, gpu, "gpu", intrins, meta::TunerStyle::kTensorIR,
            bench::endToEndOptions(42));
        bench::printRow({model.name, bench::fmt(tvm.tuning_minutes),
                         bench::fmt(tensorir.tuning_minutes),
                         bench::fmt(tvm.tuning_minutes /
                                        tensorir.tuning_minutes,
                                    "%.2fx")});
    }
    std::printf("\n(paper: ResNet-50 308 -> 156, MobileNet-V2 292 -> "
                "261, BERT 410 -> 189, ViT 247 -> 145 minutes)\n");

    // §5.2's further claim: cached search records eliminate the search
    // entirely for operators already tuned.
    meta::TuningDatabase db;
    graph::ModelSpec resnet = graph::resnet50Gpu();
    double cold_minutes = 0;
    double warm_minutes = 0;
    uint64_t seed = 500;
    for (int pass = 0; pass < 2; ++pass) {
        double total = 0;
        for (const graph::Layer& layer : resnet.layers) {
            meta::TuneTask task{layer.op.func, layer.op.einsum_block,
                                "gpu", intrins};
            meta::TuneOptions opts = bench::endToEndOptions(seed++);
            meta::TuneResult tuned =
                meta::autoTune(task, gpu, opts,
                               meta::TunerStyle::kTensorIR, &db);
            total += tuned.tuning_cost_us / 60e6;
        }
        (pass == 0 ? cold_minutes : warm_minutes) = total;
    }
    std::printf("\nrecord caching (ResNet-50): cold tune %.1f min, "
                "re-tune from database %.2f min (%.0fx less)\n",
                cold_minutes, warm_minutes,
                cold_minutes / warm_minutes);
    return 0;
}
