/**
 * @file
 * Table 1 reproduction: end-to-end tuning time (simulated wall clock,
 * dominated by hardware profiling) for TVM vs TensorIR. Expected shape:
 * TensorIR tunes ~1.1-2.2x faster because (a) its candidates run faster,
 * so each profiling round costs less, and (b) tensorization shrinks the
 * outer-loop search space, so fewer trials are needed.
 */
#include "bench_util.h"

#include "meta/database.h"
#include "meta/sketch.h"

#include <chrono>

using namespace tir;

int
main()
{
    hwsim::GpuDevice gpu;
    std::vector<std::string> intrins = {"wmma_16x16x16_f16"};
    auto wall_start = std::chrono::steady_clock::now();

    bench::printHeader(
        "Table 1: tuning time, simulated minutes (profiling-dominated)");
    bench::printRow({"model", "TVM(min)", "TensorIR(min)", "speedup"});

    // Our ~45-trial budget stands in for the ~2000 profiling rounds of
    // a real tuning run, so a single search trajectory is noisy (the
    // per-model speedup swings roughly 1.05-3.7x with the seed).
    // Average a few replications to recover the expected shape.
    constexpr int kReplications = 3;
    std::vector<graph::ModelSpec> models = {
        graph::resnet50Gpu(), graph::mobilenetV2Gpu(),
        graph::bertLargeGpu(), graph::vitGpu()};
    struct FilterTotals
    {
        int invalid = 0;
        int race = 0;
        int bounds = 0;
        int lint = 0;
        int crash = 0;
        int hang = 0;
    };
    std::vector<FilterTotals> filters(models.size());
    for (size_t m = 0; m < models.size(); ++m) {
        const graph::ModelSpec& model = models[m];
        double tvm_minutes = 0;
        double tensorir_minutes = 0;
        for (int rep = 0; rep < kReplications; ++rep) {
            graph::ModelResult tvm = graph::runModelTuned(
                model, gpu, "gpu", intrins, meta::TunerStyle::kLoopOnly,
                bench::endToEndOptions(41 + 100 * rep));
            graph::ModelResult tensorir = graph::runModelTuned(
                model, gpu, "gpu", intrins,
                meta::TunerStyle::kTensorIR,
                bench::endToEndOptions(42 + 100 * rep));
            tvm_minutes += tvm.tuning_minutes / kReplications;
            tensorir_minutes += tensorir.tuning_minutes / kReplications;
            filters[m].invalid +=
                tvm.invalid_filtered + tensorir.invalid_filtered;
            filters[m].race +=
                tvm.race_filtered + tensorir.race_filtered;
            filters[m].bounds +=
                tvm.bounds_filtered + tensorir.bounds_filtered;
            filters[m].lint +=
                tvm.lint_filtered + tensorir.lint_filtered;
            filters[m].crash +=
                tvm.crash_filtered + tensorir.crash_filtered;
            filters[m].hang +=
                tvm.hang_filtered + tensorir.hang_filtered;
        }
        bench::printRow({model.name, bench::fmt(tvm_minutes),
                         bench::fmt(tensorir_minutes),
                         bench::fmt(tvm_minutes / tensorir_minutes,
                                    "%.2fx")});
    }
    std::printf("\n(paper: ResNet-50 308 -> 156, MobileNet-V2 292 -> "
                "261, BERT 410 -> 189, ViT 247 -> 145 minutes)\n");

    // Candidates the validators discarded before any measurement, per
    // workload (both personas, all replications): structural rejects
    // (failed sketch instantiation / thread-binding rules), the
    // static-analysis rejects (provable races / out-of-bounds / lint),
    // and the isolated-measurement rejects (worker crashes and
    // timeout-killed hangs; zero here because this bench tunes on the
    // analytical backend, but the columns keep the report shape stable
    // for measure_backend="jit" runs).
    std::printf("\ncandidate filter counts (structural / race / "
                "out-of-bounds / lint / crash / hang):\n");
    for (size_t m = 0; m < models.size(); ++m) {
        std::printf("  %-14s %5d / %3d / %3d / %3d / %3d / %3d\n",
                    models[m].name.c_str(), filters[m].invalid,
                    filters[m].race, filters[m].bounds,
                    filters[m].lint, filters[m].crash,
                    filters[m].hang);
    }

    // §5.2's further claim: cached search records eliminate the search
    // entirely for operators already tuned.
    meta::TuningDatabase db;
    graph::ModelSpec resnet = graph::resnet50Gpu();
    double cold_minutes = 0;
    double warm_minutes = 0;
    uint64_t seed = 500;
    for (int pass = 0; pass < 2; ++pass) {
        double total = 0;
        for (const graph::Layer& layer : resnet.layers) {
            meta::TuneTask task{layer.op.func, layer.op.einsum_block,
                                "gpu", intrins};
            meta::TuneOptions opts = bench::endToEndOptions(seed++);
            meta::TuneResult tuned =
                meta::autoTune(task, gpu, opts,
                               meta::TunerStyle::kTensorIR, &db);
            total += tuned.tuning_cost_us / 60e6;
        }
        (pass == 0 ? cold_minutes : warm_minutes) = total;
    }
    std::printf("\nrecord caching (ResNet-50): cold tune %.1f min, "
                "re-tune from database %.2f min (%.0fx less)\n",
                cold_minutes, warm_minutes,
                cold_minutes / warm_minutes);

    // Real (not simulated) cost of running the search pipeline itself,
    // with the per-stage breakdown recorded by TuneResult::timings.
    // Thread count follows TENSORIR_PARALLELISM when set (see the
    // "tuning-time speedup" table in EXPERIMENTS.md).
    meta::TuneResult::StageTimings stages;
    int parallelism = 0;
    int memo_hits = 0;
    int memo_measure_hits = 0;
    std::string trace_summary;
    for (const graph::Layer& layer : resnet.layers) {
        meta::TuneTask task{layer.op.func, layer.op.einsum_block, "gpu",
                            intrins};
        meta::TuneResult tuned =
            meta::autoTune(task, gpu, bench::endToEndOptions(seed++),
                           meta::TunerStyle::kTensorIR);
        stages.generate_s += tuned.timings.generate_s;
        stages.evaluate_s += tuned.timings.evaluate_s;
        stages.model_s += tuned.timings.model_s;
        stages.reduce_s += tuned.timings.reduce_s;
        stages.total_s += tuned.timings.total_s;
        parallelism = tuned.parallelism_used;
        memo_hits += tuned.memo_hits;
        memo_measure_hits += tuned.memo_measure_hits;
        if (!tuned.trace_summary.empty()) {
            trace_summary = tuned.trace_summary;
        }
    }
    double wall_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
    std::printf("\npipeline wall-clock (ResNet-50 re-tune, %d threads): "
                "%.2f s total — generate %.2f s, evaluate %.2f s, "
                "model %.2f s, reduce %.2f s; memo hits %d "
                "(%d measurements skipped)\n",
                parallelism, stages.total_s, stages.generate_s,
                stages.evaluate_s, stages.model_s, stages.reduce_s,
                memo_hits, memo_measure_hits);
    std::printf("whole-benchmark wall-clock: %.2f s\n", wall_s);

    // Real vs simulated measurement: the same search, once scored by
    // the hwsim analytical model and once by wall-clock timing of the
    // JIT-compiled candidates (measure_backend="jit"). CPU target —
    // thread-bound GPU candidates cannot be natively compiled, so this
    // is the apples-to-apples comparison the JIT tier supports. The
    // trajectories differ candidate-by-candidate (the model and the
    // host disagree on rankings) but both must descend; without a host
    // toolchain every jit measurement falls back to hwsim and the two
    // rows coincide (fallbacks == trials).
    bench::printHeader(
        "real vs simulated measurement (CPU target, wall-clock JIT)");
    bench::printRow({"workload", "backend", "trials", "fallback",
                     "best(us)", "wall(s)", "trajectory"},
                    10);
    std::vector<workloads::OpSpec> cpu_ops = {
        workloads::gmm(64, 64, 64, DataType::f32(), DataType::f32()),
        workloads::conv2d(1, 14, 14, 32, 32, 3, 1, 1, 1,
                          DataType::f32(), DataType::f32())};
    hwsim::CpuDevice cpu;
    for (const workloads::OpSpec& op : cpu_ops) {
        for (const char* backend : {"hwsim", "jit"}) {
            meta::TuneOptions opts;
            opts.population = 8;
            opts.generations = 3;
            opts.children_per_generation = 16;
            opts.measured_per_generation = 6;
            opts.seed = 77;
            opts.measure_backend = backend;
            opts.measure_warmup = 1;
            opts.measure_repeats_real = 3;
            meta::SketchApplier sketch =
                meta::makeLoopSketchApplier(op.einsum_block,
                                            /*gpu=*/false);
            auto start = std::chrono::steady_clock::now();
            meta::TuneResult tuned =
                meta::evolutionarySearch(op.func, sketch, cpu, opts);
            double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
            std::string trajectory;
            for (double best : tuned.history) {
                if (!trajectory.empty()) trajectory += " > ";
                trajectory += bench::fmt(best, "%.2f");
            }
            bench::printRow(
                {op.name, backend, std::to_string(tuned.trials_measured),
                 std::to_string(tuned.measure_fallbacks),
                 bench::fmt(tuned.best_latency_us, "%.2f"),
                 bench::fmt(secs, "%.2f"), trajectory},
                10);
        }
    }
    // With TENSORIR_TRACE set, the last task's in-session aggregate
    // (per-span totals, counters, gauges) rides along with the table.
    if (!trace_summary.empty()) {
        std::printf("\ntrace summary (last re-tuned task):\n%s",
                    trace_summary.c_str());
    }
    return 0;
}
