/**
 * @file
 * google-benchmark microbenchmarks of the compiler infrastructure
 * itself: schedule-primitive throughput, validation cost, sketch
 * instantiation rate, and simulated-measurement cost. These bound the
 * search throughput reported by the tuning-time experiment (Table 1).
 */
#include <benchmark/benchmark.h>

#include <filesystem>

#include "hwsim/device.h"
#include "meta/search.h"
#include "runtime/jit.h"
#include "runtime/vm.h"
#include "te/te.h"
#include "tir/schedule.h"
#include "workloads/workloads.h"

using namespace tir;

namespace {

PrimFunc
gmmFunc()
{
    static PrimFunc func = workloads::gmm(1024, 1024, 1024).func;
    return func;
}

void
BM_SplitReorder(benchmark::State& state)
{
    for (auto _ : state) {
        Schedule sch(gmmFunc());
        std::vector<Var> loops = sch.getLoops("C");
        std::vector<Var> i_split = sch.split(loops[0], {16, 4, 16});
        std::vector<Var> j_split = sch.split(loops[1], {16, 4, 16});
        sch.reorder({i_split[0], j_split[0], i_split[1], j_split[1]});
        benchmark::DoNotOptimize(sch.func());
    }
}
BENCHMARK(BM_SplitReorder);

void
BM_AffineValidation(benchmark::State& state)
{
    Schedule sch(gmmFunc());
    std::vector<Var> loops = sch.getLoops("C");
    sch.split(loops[0], {16, 4, 16});
    sch.split(loops[1], {16, 4, 16});
    for (auto _ : state) {
        sch.validateAffineBindings();
    }
}
BENCHMARK(BM_AffineValidation);

void
BM_TensorSketchInstantiation(benchmark::State& state)
{
    workloads::OpSpec op = workloads::gmm(1024, 1024, 1024);
    auto candidates = meta::generateTensorizeCandidates(
        op.func, "C", {"wmma_16x16x16_f16"});
    uint64_t seed = 0;
    for (auto _ : state) {
        Schedule sch(op.func, seed++);
        try {
            meta::ReindexBlocks rb =
                meta::applyReindexAndLayout(sch, candidates[0]);
            meta::applyGpuTensorSketch(sch, candidates[0], rb, {});
        } catch (const FatalError&) {
            // invalid samples are part of the workload
        }
        benchmark::DoNotOptimize(sch.func());
    }
}
BENCHMARK(BM_TensorSketchInstantiation);

void
BM_SimulatedMeasurement(benchmark::State& state)
{
    workloads::OpSpec op = workloads::gmm(1024, 1024, 1024);
    auto candidates = meta::generateTensorizeCandidates(
        op.func, "C", {"wmma_16x16x16_f16"});
    Schedule sch(op.func, 3);
    meta::ReindexBlocks rb =
        meta::applyReindexAndLayout(sch, candidates[0]);
    meta::applyGpuTensorSketch(sch, candidates[0], rb, {});
    hwsim::GpuDevice gpu;
    for (auto _ : state) {
        benchmark::DoNotOptimize(gpu.run(sch.func()).latency_us);
    }
}
BENCHMARK(BM_SimulatedMeasurement);

void
BM_FeatureExtraction(benchmark::State& state)
{
    workloads::OpSpec op = workloads::gmm(1024, 1024, 1024);
    auto candidates = meta::generateTensorizeCandidates(
        op.func, "C", {"wmma_16x16x16_f16"});
    Schedule sch(op.func, 3);
    meta::ReindexBlocks rb =
        meta::applyReindexAndLayout(sch, candidates[0]);
    meta::applyGpuTensorSketch(sch, candidates[0], rb, {});
    for (auto _ : state) {
        benchmark::DoNotOptimize(meta::extractFeatures(sch.func()));
    }
}
BENCHMARK(BM_FeatureExtraction);

// --- Numeric execution: bytecode VM vs tree-walking oracle ------------
//
// The search's numeric spot-check (TuneOptions::numeric_check_topk)
// re-executes a candidate and compares it against a reference run; the
// validation flow below reproduces that cost on a Table 1 matmul. The
// VM case is the default runtime::execute engine, the tree-walk case
// is the TENSORIR_FORCE_TREEWALK oracle.

std::vector<runtime::NDArray>
numericArgs(const PrimFunc& func, uint64_t seed)
{
    Rng rng(seed);
    std::vector<runtime::NDArray> arrays;
    for (const Buffer& param : func->params) {
        std::vector<int64_t> shape;
        for (size_t d = 0; d < param->ndim(); ++d) {
            shape.push_back(param->shapeInt(d));
        }
        runtime::NDArray array(param->dtype, shape);
        if (param->dtype.isInt()) {
            array.fillRandom(rng, -4, 4);
        } else {
            array.fillRandom(rng);
        }
        arrays.push_back(std::move(array));
    }
    return arrays;
}

std::vector<runtime::NDArray*>
numericPtrs(std::vector<runtime::NDArray>& arrays)
{
    std::vector<runtime::NDArray*> out;
    for (runtime::NDArray& a : arrays) out.push_back(&a);
    return out;
}

PrimFunc
numericMatmul()
{
    static PrimFunc func = workloads::gmm(64, 64, 64).func;
    return func;
}

/** Candidate-vs-reference validation round on the tree-walker. */
void
BM_NumericValidationTreeWalk(benchmark::State& state)
{
    PrimFunc func = numericMatmul();
    for (auto _ : state) {
        std::vector<runtime::NDArray> cand = numericArgs(func, 5);
        std::vector<runtime::NDArray> ref = numericArgs(func, 5);
        std::vector<runtime::NDArray*> cand_ptrs = numericPtrs(cand);
        std::vector<runtime::NDArray*> ref_ptrs = numericPtrs(ref);
        runtime::Interpreter interp;
        interp.run(func, cand_ptrs);
        interp.run(func, ref_ptrs);
        double diff = 0;
        for (size_t i = 0; i < cand.size(); ++i) {
            diff = std::max(diff, cand[i].maxAbsDiff(ref[i]));
        }
        benchmark::DoNotOptimize(diff);
    }
}
BENCHMARK(BM_NumericValidationTreeWalk)->Unit(benchmark::kMillisecond);

/** The same validation round on the bytecode VM. */
void
BM_NumericValidationVm(benchmark::State& state)
{
    PrimFunc func = numericMatmul();
    runtime::CompiledFunc compiled = runtime::compile(func);
    for (auto _ : state) {
        std::vector<runtime::NDArray> cand = numericArgs(func, 5);
        std::vector<runtime::NDArray> ref = numericArgs(func, 5);
        std::vector<runtime::NDArray*> cand_ptrs = numericPtrs(cand);
        std::vector<runtime::NDArray*> ref_ptrs = numericPtrs(ref);
        runtime::VirtualMachine vm;
        vm.run(compiled, cand_ptrs);
        vm.run(compiled, ref_ptrs);
        double diff = 0;
        for (size_t i = 0; i < cand.size(); ++i) {
            diff = std::max(diff, cand[i].maxAbsDiff(ref[i]));
        }
        benchmark::DoNotOptimize(diff);
    }
}
BENCHMARK(BM_NumericValidationVm)->Unit(benchmark::kMillisecond);

/** One-pass bytecode compilation cost on its own. */
void
BM_VmCompile(benchmark::State& state)
{
    PrimFunc func = numericMatmul();
    for (auto _ : state) {
        benchmark::DoNotOptimize(runtime::compile(func));
    }
}
BENCHMARK(BM_VmCompile);

/** Per-workload execution across the Table 1 small suite. */
void
BM_VmTable1Execution(benchmark::State& state)
{
    std::vector<workloads::OpSpec> suite = workloads::gpuSuiteSmall();
    const workloads::OpSpec& spec =
        suite[static_cast<size_t>(state.range(0))];
    runtime::CompiledFunc compiled = runtime::compile(spec.func);
    std::vector<runtime::NDArray> args = numericArgs(spec.func, 5);
    std::vector<runtime::NDArray*> arg_ptrs = numericPtrs(args);
    for (auto _ : state) {
        runtime::VirtualMachine vm;
        vm.run(compiled, arg_ptrs);
    }
    state.SetLabel(spec.name);
}
BENCHMARK(BM_VmTable1Execution)->DenseRange(0, 7);

void
BM_TreeWalkTable1Execution(benchmark::State& state)
{
    std::vector<workloads::OpSpec> suite = workloads::gpuSuiteSmall();
    const workloads::OpSpec& spec =
        suite[static_cast<size_t>(state.range(0))];
    std::vector<runtime::NDArray> args = numericArgs(spec.func, 5);
    std::vector<runtime::NDArray*> arg_ptrs = numericPtrs(args);
    for (auto _ : state) {
        runtime::Interpreter interp;
        interp.run(spec.func, arg_ptrs);
    }
    state.SetLabel(spec.name);
}
BENCHMARK(BM_TreeWalkTable1Execution)->DenseRange(0, 7);

// --- Native JIT tier (see docs/EXECUTION.md) --------------------------

/** The same validation round as BM_NumericValidationVm, on native
 *  code. The module is compiled once outside the loop, the way the
 *  tuner's numeric check holds it across candidates. */
void
BM_NumericValidationJit(benchmark::State& state)
{
    if (!runtime::jitAvailable()) {
        state.SkipWithError("no working C compiler for the JIT tier");
        return;
    }
    PrimFunc func = numericMatmul();
    std::shared_ptr<const runtime::JitModule> mod =
        runtime::jitCompile(func);
    if (!mod) {
        state.SkipWithError("JIT compilation failed");
        return;
    }
    for (auto _ : state) {
        std::vector<runtime::NDArray> cand = numericArgs(func, 5);
        std::vector<runtime::NDArray> ref = numericArgs(func, 5);
        std::vector<runtime::NDArray*> cand_ptrs = numericPtrs(cand);
        std::vector<runtime::NDArray*> ref_ptrs = numericPtrs(ref);
        mod->run(cand_ptrs);
        mod->run(ref_ptrs);
        double diff = 0;
        for (size_t i = 0; i < cand.size(); ++i) {
            diff = std::max(diff, cand[i].maxAbsDiff(ref[i]));
        }
        benchmark::DoNotOptimize(diff);
    }
}
BENCHMARK(BM_NumericValidationJit)->Unit(benchmark::kMillisecond);

/** Cold-path cost of the tier: emit + system compiler + dlopen (the
 *  in-memory and on-disk caches are cleared every iteration, so each
 *  round pays the full compile). */
void
BM_JitCompile(benchmark::State& state)
{
    if (!runtime::jitAvailable()) {
        state.SkipWithError("no working C compiler for the JIT tier");
        return;
    }
    PrimFunc func = numericMatmul();
    for (auto _ : state) {
        runtime::jitResetForTesting();
        std::error_code ec;
        std::filesystem::remove(runtime::jitObjectPathFor(func), ec);
        benchmark::DoNotOptimize(runtime::jitCompile(func));
    }
}
BENCHMARK(BM_JitCompile)->Unit(benchmark::kMillisecond);

/** Per-workload native execution across the Table 1 small suite —
 *  the JIT row matching BM_VmTable1Execution / BM_TreeWalkTable1Execution. */
void
BM_JitTable1Execution(benchmark::State& state)
{
    if (!runtime::jitAvailable()) {
        state.SkipWithError("no working C compiler for the JIT tier");
        return;
    }
    std::vector<workloads::OpSpec> suite = workloads::gpuSuiteSmall();
    const workloads::OpSpec& spec =
        suite[static_cast<size_t>(state.range(0))];
    std::shared_ptr<const runtime::JitModule> mod =
        runtime::jitCompile(spec.func);
    if (!mod) {
        state.SkipWithError("JIT compilation failed");
        return;
    }
    std::vector<runtime::NDArray> args = numericArgs(spec.func, 5);
    std::vector<runtime::NDArray*> arg_ptrs = numericPtrs(args);
    for (auto _ : state) {
        mod->run(arg_ptrs);
    }
    state.SetLabel(spec.name);
}
BENCHMARK(BM_JitTable1Execution)->DenseRange(0, 7);

} // namespace

BENCHMARK_MAIN();
