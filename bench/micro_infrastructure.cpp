/**
 * @file
 * google-benchmark microbenchmarks of the compiler infrastructure
 * itself: schedule-primitive throughput, validation cost, sketch
 * instantiation rate, and simulated-measurement cost. These bound the
 * search throughput reported by the tuning-time experiment (Table 1).
 */
#include <benchmark/benchmark.h>

#include "hwsim/device.h"
#include "meta/search.h"
#include "te/te.h"
#include "tir/schedule.h"
#include "workloads/workloads.h"

using namespace tir;

namespace {

PrimFunc
gmmFunc()
{
    static PrimFunc func = workloads::gmm(1024, 1024, 1024).func;
    return func;
}

void
BM_SplitReorder(benchmark::State& state)
{
    for (auto _ : state) {
        Schedule sch(gmmFunc());
        std::vector<Var> loops = sch.getLoops("C");
        std::vector<Var> i_split = sch.split(loops[0], {16, 4, 16});
        std::vector<Var> j_split = sch.split(loops[1], {16, 4, 16});
        sch.reorder({i_split[0], j_split[0], i_split[1], j_split[1]});
        benchmark::DoNotOptimize(sch.func());
    }
}
BENCHMARK(BM_SplitReorder);

void
BM_AffineValidation(benchmark::State& state)
{
    Schedule sch(gmmFunc());
    std::vector<Var> loops = sch.getLoops("C");
    sch.split(loops[0], {16, 4, 16});
    sch.split(loops[1], {16, 4, 16});
    for (auto _ : state) {
        sch.validateAffineBindings();
    }
}
BENCHMARK(BM_AffineValidation);

void
BM_TensorSketchInstantiation(benchmark::State& state)
{
    workloads::OpSpec op = workloads::gmm(1024, 1024, 1024);
    auto candidates = meta::generateTensorizeCandidates(
        op.func, "C", {"wmma_16x16x16_f16"});
    uint64_t seed = 0;
    for (auto _ : state) {
        Schedule sch(op.func, seed++);
        try {
            meta::ReindexBlocks rb =
                meta::applyReindexAndLayout(sch, candidates[0]);
            meta::applyGpuTensorSketch(sch, candidates[0], rb, {});
        } catch (const FatalError&) {
            // invalid samples are part of the workload
        }
        benchmark::DoNotOptimize(sch.func());
    }
}
BENCHMARK(BM_TensorSketchInstantiation);

void
BM_SimulatedMeasurement(benchmark::State& state)
{
    workloads::OpSpec op = workloads::gmm(1024, 1024, 1024);
    auto candidates = meta::generateTensorizeCandidates(
        op.func, "C", {"wmma_16x16x16_f16"});
    Schedule sch(op.func, 3);
    meta::ReindexBlocks rb =
        meta::applyReindexAndLayout(sch, candidates[0]);
    meta::applyGpuTensorSketch(sch, candidates[0], rb, {});
    hwsim::GpuDevice gpu;
    for (auto _ : state) {
        benchmark::DoNotOptimize(gpu.run(sch.func()).latency_us);
    }
}
BENCHMARK(BM_SimulatedMeasurement);

void
BM_FeatureExtraction(benchmark::State& state)
{
    workloads::OpSpec op = workloads::gmm(1024, 1024, 1024);
    auto candidates = meta::generateTensorizeCandidates(
        op.func, "C", {"wmma_16x16x16_f16"});
    Schedule sch(op.func, 3);
    meta::ReindexBlocks rb =
        meta::applyReindexAndLayout(sch, candidates[0]);
    meta::applyGpuTensorSketch(sch, candidates[0], rb, {});
    for (auto _ : state) {
        benchmark::DoNotOptimize(meta::extractFeatures(sch.func()));
    }
}
BENCHMARK(BM_FeatureExtraction);

} // namespace

BENCHMARK_MAIN();
