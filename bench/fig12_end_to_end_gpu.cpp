/**
 * @file
 * Figure 12 reproduction: end-to-end model latency on the simulated GPU
 * for PyTorch, TVM (loop-only tuner), AMOS, TensorRT and TensorIR.
 * Expected shape: TensorIR outperforms PyTorch/TVM/AMOS by ~1.2-8.8x,
 * beats TensorRT on MobileNet-V2 (~1.3x), is within 88-100% of TensorRT
 * on ResNet-50 and BERT-large, and supports ViT where TensorRT cannot.
 */
#include "bench_util.h"

using namespace tir;

int
main()
{
    hwsim::GpuDevice gpu;
    hwsim::CpuDevice cpu;
    std::vector<std::string> intrins = {"wmma_16x16x16_f16"};

    bench::printHeader(
        "Figure 12: end-to-end models (simulated RTX 3080, latency us)");
    bench::printRow({"model", "PyTorch", "TVM", "AMOS", "TensorRT",
                     "TensorIR", "vs TRT"});

    std::vector<graph::ModelSpec> models = {
        graph::resnet50Gpu(), graph::mobilenetV2Gpu(),
        graph::bertLargeGpu(), graph::vitGpu()};
    for (const graph::ModelSpec& model : models) {
        graph::ModelResult pytorch = graph::runModelLibrary(
            model, baselines::Library::kPyTorchCuda, gpu, cpu, true,
            /*per_op_overhead_us=*/12);
        graph::ModelResult tvm = graph::runModelTuned(
            model, gpu, "gpu", intrins, meta::TunerStyle::kLoopOnly,
            bench::endToEndOptions(31));
        graph::ModelResult amos = graph::runModelTuned(
            model, gpu, "gpu", intrins, meta::TunerStyle::kAmosLike,
            bench::endToEndOptions(32));
        graph::ModelResult trt = graph::runModelLibrary(
            model, baselines::Library::kTensorRT, gpu, cpu, true, 0);
        graph::ModelResult tensorir = graph::runModelTuned(
            model, gpu, "gpu", intrins, meta::TunerStyle::kTensorIR,
            bench::endToEndOptions(33));
        bench::printRow(
            {model.name, bench::fmt(pytorch.latency_us),
             bench::fmt(tvm.latency_us), bench::fmt(amos.latency_us),
             trt.supported ? bench::fmt(trt.latency_us) : "unsupported",
             bench::fmt(tensorir.latency_us),
             trt.supported
                 ? bench::fmt(trt.latency_us / tensorir.latency_us,
                              "%.2fx")
                 : "-"});
    }
    return 0;
}
