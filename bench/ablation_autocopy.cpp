/**
 * @file
 * Ablation: data movement as a first-class citizen (§4.3). Runs the
 * tensorized tuner on GMM and C2D with the AutoCopy machinery degraded:
 * (a) full system, (b) no vectorized copies, (c) no shared-memory
 * staging, (d) neither. The gap between (a) and (d) is the contribution
 * the paper attributes to first-class data movement scheduling.
 */
#include "bench_util.h"

using namespace tir;

namespace {

double
tuneWith(const workloads::OpSpec& op, const hwsim::GpuDevice& gpu,
         bool shared, bool vectorized, uint64_t seed)
{
    auto candidates = meta::generateTensorizeCandidates(
        op.func, op.einsum_block, {"wmma_16x16x16_f16"});
    TIR_CHECK(!candidates.empty());
    meta::TensorizeCandidate cand = candidates.front();
    meta::SketchOptions sketch_options;
    sketch_options.use_shared_staging = shared;
    sketch_options.vectorize_copies = vectorized;
    meta::SketchApplier applier = [cand,
                                   sketch_options](Schedule& sch) {
        meta::ReindexBlocks rb = meta::applyReindexAndLayout(sch, cand);
        meta::applyGpuTensorSketch(sch, cand, rb, sketch_options);
    };
    meta::TuneResult result = meta::evolutionarySearch(
        op.func, applier, gpu, bench::singleOpOptions(seed));
    return result.best_latency_us;
}

} // namespace

int
main()
{
    hwsim::GpuDevice gpu;
    bench::printHeader(
        "Ablation: AutoCopy data-movement scheduling (simulated GPU)");
    bench::printRow({"op", "full(us)", "-vector(us)", "-shared(us)",
                     "-both(us)", "full vs -both"});
    std::vector<workloads::OpSpec> ops = {
        workloads::gmm(1024, 1024, 1024),
        workloads::conv2d(8, 28, 28, 128, 128, 3, 1, 1),
    };
    for (const workloads::OpSpec& op : ops) {
        double full = tuneWith(op, gpu, true, true, 71);
        double novec = tuneWith(op, gpu, true, false, 72);
        double noshared = tuneWith(op, gpu, false, true, 73);
        double neither = tuneWith(op, gpu, false, false, 74);
        bench::printRow({op.name, bench::fmt(full), bench::fmt(novec),
                         bench::fmt(noshared), bench::fmt(neither),
                         bench::fmt(neither / full, "%.2fx")});
    }
    return 0;
}
