/**
 * @file
 * Tensor-expression front end. This is the paper's "import from high-level
 * operators" path (§3.4): users describe computations as einsum-style
 * expressions and the builder generates a TensorIR PrimFunc whose stages
 * are blocks with complete signatures (iterator domains + access regions).
 */
#ifndef TENSORIR_TE_TE_H
#define TENSORIR_TE_TE_H

#include <functional>

#include "ir/stmt.h"

namespace tir {
namespace te {

/** Builds a PrimFunc out of placeholder/compute/reduce stages. */
class Builder
{
  public:
    /** Declare an input buffer (becomes a function parameter). */
    Buffer placeholder(const std::string& name,
                       const std::vector<int64_t>& shape,
                       DataType dtype = DataType::f32());

    /**
     * Spatial compute stage: out[i...] = fn(i...). Creates one block named
     * after the buffer.
     */
    Buffer compute(const std::string& name,
                   const std::vector<int64_t>& shape,
                   const std::function<Expr(const std::vector<Var>&)>& fn,
                   DataType dtype = DataType::f32());

    /**
     * Sum-reduction stage: out[s...] (+)= fn(s..., r...) with a zero init.
     * Creates a reduction block with an init statement.
     */
    Buffer sumReduce(
        const std::string& name, const std::vector<int64_t>& shape,
        const std::vector<int64_t>& reduce_extents,
        const std::function<Expr(const std::vector<Var>&,
                                 const std::vector<Var>&)>& fn,
        DataType dtype = DataType::f32());

    /** Max-reduction stage (used by pooling / softmax). */
    Buffer maxReduce(
        const std::string& name, const std::vector<int64_t>& shape,
        const std::vector<int64_t>& reduce_extents,
        const std::function<Expr(const std::vector<Var>&,
                                 const std::vector<Var>&)>& fn,
        DataType dtype = DataType::f32());

    /**
     * Finalize: buffers in `outputs` become output parameters, remaining
     * intermediates become root-block allocations.
     */
    PrimFunc build(const std::string& func_name,
                   const std::vector<Buffer>& outputs);

  private:
    Buffer reduceStage(
        const std::string& name, const std::vector<int64_t>& shape,
        const std::vector<int64_t>& reduce_extents,
        const std::function<Expr(const std::vector<Var>&,
                                 const std::vector<Var>&)>& fn,
        DataType dtype, bool is_max);

    std::vector<Buffer> params_;
    std::vector<Buffer> intermediates_;
    std::vector<Stmt> stages_;
};

} // namespace te
} // namespace tir

#endif // TENSORIR_TE_TE_H
