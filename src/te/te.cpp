#include "te/te.h"

#include "arith/region.h"
#include "ir/transform.h"

namespace tir {
namespace te {

namespace {

/** Wrap a block realize in a serial loop nest binding one var per axis. */
Stmt
wrapLoops(Stmt body, const std::vector<Var>& loop_vars,
          const std::vector<int64_t>& extents)
{
    for (size_t i = loop_vars.size(); i > 0; --i) {
        body = makeFor(loop_vars[i - 1], intImm(0),
                       intImm(extents[i - 1]), body);
    }
    return body;
}

/** Compute signature regions of a block body over its iterator vars. */
void
detectSignature(const Stmt& body, const Stmt& init, const Buffer& output,
                std::vector<BufferRegion>* reads,
                std::vector<BufferRegion>* writes)
{
    arith::AccessRegions regions =
        arith::detectRegions(init ? seq({init, body}) : body, {});
    // The output store is a write; drop it from reads if the reduction
    // reads its own output (C[i] += ...), as TVM does for update blocks.
    for (const BufferRegion& br : regions.reads) {
        if (br.buffer == output) continue;
        reads->push_back(br);
    }
    *writes = regions.writes;
}

} // namespace

Buffer
Builder::placeholder(const std::string& name,
                     const std::vector<int64_t>& shape, DataType dtype)
{
    Buffer buf = makeBuffer(name, shape, dtype);
    params_.push_back(buf);
    return buf;
}

Buffer
Builder::compute(const std::string& name,
                 const std::vector<int64_t>& shape,
                 const std::function<Expr(const std::vector<Var>&)>& fn,
                 DataType dtype)
{
    Buffer out = makeBuffer(name, shape, dtype);
    intermediates_.push_back(out);

    std::vector<Var> loop_vars;
    std::vector<Var> block_vars;
    std::vector<IterVar> iter_vars;
    std::vector<Expr> bindings;
    std::vector<Expr> store_indices;
    for (size_t i = 0; i < shape.size(); ++i) {
        Var lv = var("i" + std::to_string(i));
        Var bv = var("v" + std::to_string(i));
        loop_vars.push_back(lv);
        block_vars.push_back(bv);
        iter_vars.emplace_back(bv, Range::fromExtent(shape[i]),
                               IterType::kSpatial);
        bindings.push_back(lv);
        store_indices.push_back(bv);
    }
    Expr value = fn(block_vars);
    Stmt store = bufferStore(out, value, store_indices);
    std::vector<BufferRegion> reads;
    std::vector<BufferRegion> writes;
    detectSignature(store, nullptr, out, &reads, &writes);
    BlockPtr block = makeBlock(name, iter_vars, std::move(reads),
                               std::move(writes), store);
    Stmt realize = blockRealize(bindings, intImm(1, DataType::boolean()),
                                block);
    stages_.push_back(wrapLoops(realize, loop_vars, shape));
    return out;
}

Buffer
Builder::sumReduce(
    const std::string& name, const std::vector<int64_t>& shape,
    const std::vector<int64_t>& reduce_extents,
    const std::function<Expr(const std::vector<Var>&,
                             const std::vector<Var>&)>& fn,
    DataType dtype)
{
    return reduceStage(name, shape, reduce_extents, fn, dtype, false);
}

Buffer
Builder::maxReduce(
    const std::string& name, const std::vector<int64_t>& shape,
    const std::vector<int64_t>& reduce_extents,
    const std::function<Expr(const std::vector<Var>&,
                             const std::vector<Var>&)>& fn,
    DataType dtype)
{
    return reduceStage(name, shape, reduce_extents, fn, dtype, true);
}

Buffer
Builder::reduceStage(
    const std::string& name, const std::vector<int64_t>& shape,
    const std::vector<int64_t>& reduce_extents,
    const std::function<Expr(const std::vector<Var>&,
                             const std::vector<Var>&)>& fn,
    DataType dtype, bool is_max)
{
    Buffer out = makeBuffer(name, shape, dtype);
    intermediates_.push_back(out);

    std::vector<Var> loop_vars;
    std::vector<Var> spatial_vars;
    std::vector<Var> reduce_vars;
    std::vector<IterVar> iter_vars;
    std::vector<Expr> bindings;
    std::vector<Expr> store_indices;
    std::vector<int64_t> all_extents;
    for (size_t i = 0; i < shape.size(); ++i) {
        Var lv = var("i" + std::to_string(i));
        Var bv = var("v" + std::to_string(i));
        loop_vars.push_back(lv);
        spatial_vars.push_back(bv);
        iter_vars.emplace_back(bv, Range::fromExtent(shape[i]),
                               IterType::kSpatial);
        bindings.push_back(lv);
        store_indices.push_back(bv);
        all_extents.push_back(shape[i]);
    }
    for (size_t i = 0; i < reduce_extents.size(); ++i) {
        Var lv = var("r" + std::to_string(i));
        Var bv = var("vr" + std::to_string(i));
        loop_vars.push_back(lv);
        reduce_vars.push_back(bv);
        iter_vars.emplace_back(bv, Range::fromExtent(reduce_extents[i]),
                               IterType::kReduce);
        bindings.push_back(lv);
        all_extents.push_back(reduce_extents[i]);
    }

    Expr rhs = fn(spatial_vars, reduce_vars);
    Expr current = bufferLoad(out, store_indices);
    Expr combined = is_max ? maxExpr(current, rhs) : current + rhs;
    Stmt update = bufferStore(out, combined, store_indices);
    Expr identity = is_max ? floatImm(-1e30, dtype)
                           : (dtype.isFloat()
                                  ? floatImm(0.0, dtype)
                                  : intImm(0, dtype));
    Stmt init = bufferStore(out, identity, store_indices);

    std::vector<BufferRegion> reads;
    std::vector<BufferRegion> writes;
    detectSignature(update, init, out, &reads, &writes);
    BlockPtr block = makeBlock(name, iter_vars, std::move(reads),
                               std::move(writes), update, init);
    Stmt realize = blockRealize(bindings, intImm(1, DataType::boolean()),
                                block);
    stages_.push_back(wrapLoops(realize, loop_vars, all_extents));
    return out;
}

PrimFunc
Builder::build(const std::string& func_name,
               const std::vector<Buffer>& outputs)
{
    TIR_CHECK(!stages_.empty()) << "no compute stages defined";
    std::vector<Buffer> params = params_;
    std::vector<Buffer> allocs;
    for (const Buffer& buf : intermediates_) {
        bool is_output = false;
        for (const Buffer& out : outputs) is_output |= (out == buf);
        if (is_output) {
            params.push_back(buf);
        } else {
            allocs.push_back(buf);
        }
    }
    Stmt body = makeRootBlock(seq(stages_), std::move(allocs));
    return makeFunc(func_name, std::move(params), body);
}

} // namespace te
} // namespace tir
