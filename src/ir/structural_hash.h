/**
 * @file
 * Structural hashing of TensorIR fragments, consistent with structural
 * (alpha-) equality: equal programs hash equally regardless of variable
 * and buffer names. Used as the workload key of the tuning database.
 */
#ifndef TENSORIR_IR_STRUCTURAL_HASH_H
#define TENSORIR_IR_STRUCTURAL_HASH_H

#include <cstdint>

#include "ir/stmt.h"

namespace tir {

/** Structural hash of an expression. */
uint64_t structuralHash(const Expr& expr);
/** Structural hash of a statement. */
uint64_t structuralHash(const Stmt& stmt);
/** Structural hash of a function (params + body). */
uint64_t structuralHash(const PrimFunc& func);

} // namespace tir

#endif // TENSORIR_IR_STRUCTURAL_HASH_H
