#include "ir/printer.h"

#include <sstream>

#include "ir/functor.h"

namespace tir {

namespace {

const char*
binaryOpName(ExprKind kind)
{
    switch (kind) {
      case ExprKind::kAdd: return "+";
      case ExprKind::kSub: return "-";
      case ExprKind::kMul: return "*";
      case ExprKind::kDiv: return "/";
      case ExprKind::kEQ: return "==";
      case ExprKind::kNE: return "!=";
      case ExprKind::kLT: return "<";
      case ExprKind::kLE: return "<=";
      case ExprKind::kGT: return ">";
      case ExprKind::kGE: return ">=";
      case ExprKind::kAnd: return "and";
      case ExprKind::kOr: return "or";
      default: return nullptr;
    }
}

void
printExpr(std::ostream& os, const Expr& e)
{
    switch (e->kind) {
      case ExprKind::kIntImm:
        os << static_cast<const IntImmNode&>(*e).value;
        return;
      case ExprKind::kFloatImm:
        os << static_cast<const FloatImmNode&>(*e).value;
        return;
      case ExprKind::kStringImm:
        os << '"' << static_cast<const StringImmNode&>(*e).value << '"';
        return;
      case ExprKind::kVar:
        os << static_cast<const VarNode&>(*e).name;
        return;
      case ExprKind::kNot: {
        os << "not (";
        printExpr(os, static_cast<const NotNode&>(*e).a);
        os << ")";
        return;
      }
      case ExprKind::kSelect: {
        const auto& n = static_cast<const SelectNode&>(*e);
        os << "select(";
        printExpr(os, n.cond);
        os << ", ";
        printExpr(os, n.tval);
        os << ", ";
        printExpr(os, n.fval);
        os << ")";
        return;
      }
      case ExprKind::kCast: {
        const auto& n = static_cast<const CastNode&>(*e);
        os << n.dtype.str() << "(";
        printExpr(os, n.value);
        os << ")";
        return;
      }
      case ExprKind::kBufferLoad:
      case ExprKind::kBufferPtr: {
        const Buffer* buf;
        const std::vector<Expr>* idx;
        if (e->kind == ExprKind::kBufferLoad) {
            const auto& n = static_cast<const BufferLoadNode&>(*e);
            buf = &n.buffer;
            idx = &n.indices;
        } else {
            const auto& n = static_cast<const BufferPtrNode&>(*e);
            os << "addr_of ";
            buf = &n.buffer;
            idx = &n.indices;
        }
        os << (*buf)->name << "[";
        for (size_t i = 0; i < idx->size(); ++i) {
            if (i) os << ", ";
            printExpr(os, (*idx)[i]);
        }
        os << "]";
        return;
      }
      case ExprKind::kCall: {
        const auto& n = static_cast<const CallNode&>(*e);
        os << n.op << "(";
        for (size_t i = 0; i < n.args.size(); ++i) {
            if (i) os << ", ";
            printExpr(os, n.args[i]);
        }
        os << ")";
        return;
      }
      case ExprKind::kFloorDiv:
      case ExprKind::kFloorMod:
      case ExprKind::kMin:
      case ExprKind::kMax: {
        const auto& n = static_cast<const BinaryNode&>(*e);
        const char* name = e->kind == ExprKind::kFloorDiv ? "floordiv"
                           : e->kind == ExprKind::kFloorMod ? "floormod"
                           : e->kind == ExprKind::kMin ? "min"
                                                       : "max";
        os << name << "(";
        printExpr(os, n.a);
        os << ", ";
        printExpr(os, n.b);
        os << ")";
        return;
      }
      default: {
        const auto& n = static_cast<const BinaryNode&>(*e);
        os << "(";
        printExpr(os, n.a);
        os << " " << binaryOpName(e->kind) << " ";
        printExpr(os, n.b);
        os << ")";
        return;
      }
    }
}

class StmtPrinter
{
  public:
    StmtPrinter(std::ostream& os, int indent) : os_(os), indent_(indent) {}

    void
    print(const Stmt& s)
    {
        switch (s->kind) {
          case StmtKind::kBufferStore: {
            const auto& n = static_cast<const BufferStoreNode&>(*s);
            line() << n.buffer->name << "[" << indices(n.indices)
                   << "] = " << exprToString(n.value) << "\n";
            return;
          }
          case StmtKind::kEvaluate: {
            const auto& n = static_cast<const EvaluateNode&>(*s);
            line() << exprToString(n.value) << "\n";
            return;
          }
          case StmtKind::kSeq: {
            for (const Stmt& sub :
                 static_cast<const SeqStmtNode&>(*s).seq) {
                print(sub);
            }
            return;
          }
          case StmtKind::kIfThenElse: {
            const auto& n = static_cast<const IfThenElseNode&>(*s);
            line() << "if " << exprToString(n.cond) << ":\n";
            indented([&] { print(n.then_case); });
            if (n.else_case) {
                line() << "else:\n";
                indented([&] { print(n.else_case); });
            }
            return;
          }
          case StmtKind::kFor: {
            const auto& n = static_cast<const ForNode&>(*s);
            auto& out = line();
            out << "for " << n.loop_var->name << " in ";
            switch (n.for_kind) {
              case ForKind::kSerial: out << "range("; break;
              case ForKind::kParallel: out << "parallel("; break;
              case ForKind::kVectorized: out << "vectorized("; break;
              case ForKind::kUnrolled: out << "unrolled("; break;
              case ForKind::kThreadBinding:
                out << "thread_binding(\"" << n.thread_tag << "\", ";
                break;
            }
            int64_t min_v = 0;
            if (!isConstInt(n.min, &min_v) || min_v != 0) {
                out << exprToString(n.min) << ", ";
            }
            out << exprToString(n.extent) << ")";
            for (const auto& [key, value] : n.annotations) {
                out << " # " << key << "=" << exprToString(value);
            }
            out << ":\n";
            indented([&] { print(n.body); });
            return;
          }
          case StmtKind::kBlock: {
            printBlock(static_cast<const BlockNode&>(*s), nullptr);
            return;
          }
          case StmtKind::kBlockRealize: {
            const auto& n = static_cast<const BlockRealizeNode&>(*s);
            printBlock(*n.block, &n);
            return;
          }
        }
    }

  private:
    std::ostream&
    line()
    {
        for (int i = 0; i < indent_; ++i) os_ << "    ";
        return os_;
    }

    template <typename Fn>
    void
    indented(Fn fn)
    {
        ++indent_;
        fn();
        --indent_;
    }

    std::string
    indices(const std::vector<Expr>& idx)
    {
        std::string result;
        for (size_t i = 0; i < idx.size(); ++i) {
            if (i) result += ", ";
            result += exprToString(idx[i]);
        }
        return result;
    }

    std::string
    regionToString(const BufferRegion& br)
    {
        std::string result = br.buffer->name + "[";
        for (size_t i = 0; i < br.region.size(); ++i) {
            if (i) result += ", ";
            const Range& r = br.region[i];
            int64_t extent = 0;
            if (isConstInt(r.extent, &extent) && extent == 1) {
                result += exprToString(r.min);
            } else {
                result += exprToString(r.min) + " : " +
                          exprToString(r.min + r.extent);
            }
        }
        return result + "]";
    }

    void
    printBlock(const BlockNode& block, const BlockRealizeNode* realize)
    {
        line() << "with block(\"" << block.name << "\"):\n";
        indented([&] {
            for (size_t i = 0; i < block.iter_vars.size(); ++i) {
                const IterVar& iv = block.iter_vars[i];
                const char* kind =
                    iv.type == IterType::kSpatial ? "spatial"
                    : iv.type == IterType::kReduce ? "reduce"
                                                   : "opaque";
                auto& out = line();
                out << iv.var->name << " = " << kind << "("
                    << exprToString(iv.dom.extent);
                if (realize) {
                    out << ", bind=" <<
                        exprToString(realize->iter_values[i]);
                }
                out << ")\n";
            }
            if (realize) {
                int64_t pred = 0;
                if (!isConstInt(realize->predicate, &pred) || pred != 1) {
                    line() << "where "
                           << exprToString(realize->predicate) << "\n";
                }
            }
            for (const BufferRegion& br : block.reads) {
                line() << "reads " << regionToString(br) << "\n";
            }
            for (const BufferRegion& br : block.writes) {
                line() << "writes " << regionToString(br) << "\n";
            }
            for (const auto& [key, value] : block.annotations) {
                line() << "annot " << key << " = " << exprToString(value)
                       << "\n";
            }
            for (const Buffer& buf : block.alloc_buffers) {
                auto& out = line();
                out << buf->name << " = alloc_buffer((";
                for (size_t i = 0; i < buf->shape.size(); ++i) {
                    if (i) out << ", ";
                    out << exprToString(buf->shape[i]);
                }
                out << "), \"" << buf->dtype.str() << "\", scope=\""
                    << buf->scope << "\")\n";
            }
            if (block.init) {
                line() << "with init():\n";
                indented([&] { print(block.init); });
            }
            print(block.body);
        });
    }

    std::ostream& os_;
    int indent_;
};

} // namespace

std::string
exprToString(const Expr& expr)
{
    std::ostringstream os;
    printExpr(os, expr);
    return os.str();
}

std::string
stmtToString(const Stmt& stmt, int indent)
{
    std::ostringstream os;
    StmtPrinter printer(os, indent);
    printer.print(stmt);
    return os.str();
}

std::string
funcToString(const PrimFunc& func)
{
    std::ostringstream os;
    os << "def " << func->name << "(";
    for (size_t i = 0; i < func->params.size(); ++i) {
        if (i) os << ", ";
        const Buffer& buf = func->params[i];
        os << buf->name << ": Buffer[(";
        for (size_t j = 0; j < buf->shape.size(); ++j) {
            if (j) os << ", ";
            os << exprToString(buf->shape[j]);
        }
        os << "), \"" << buf->dtype.str() << "\"]";
    }
    os << "):\n";
    StmtPrinter printer(os, 1);
    printer.print(func->body);
    return os.str();
}

} // namespace tir
