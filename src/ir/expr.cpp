#include "ir/expr.h"

namespace tir {

int64_t
BufferNode::numel() const
{
    int64_t total = 1;
    for (size_t i = 0; i < shape.size(); ++i) total *= shapeInt(i);
    return total;
}

int64_t
BufferNode::shapeInt(size_t i) const
{
    TIR_ICHECK(i < shape.size());
    int64_t value = 0;
    TIR_CHECK(isConstInt(shape[i], &value))
        << "buffer " << name << " has symbolic extent in dim " << i;
    return value;
}

Expr
intImm(int64_t value, DataType dtype)
{
    return std::make_shared<IntImmNode>(value, dtype);
}

Expr
floatImm(double value, DataType dtype)
{
    return std::make_shared<FloatImmNode>(value, dtype);
}

Expr
stringImm(std::string value)
{
    return std::make_shared<StringImmNode>(std::move(value));
}

Var
var(std::string name, DataType dtype)
{
    return std::make_shared<VarNode>(std::move(name), dtype);
}

namespace {

bool
isCompare(ExprKind k)
{
    switch (k) {
      case ExprKind::kEQ:
      case ExprKind::kNE:
      case ExprKind::kLT:
      case ExprKind::kLE:
      case ExprKind::kGT:
      case ExprKind::kGE:
      case ExprKind::kAnd:
      case ExprKind::kOr:
        return true;
      default:
        return false;
    }
}

} // namespace

Expr
binary(ExprKind kind, Expr a, Expr b)
{
    TIR_ICHECK(a && b) << "binary operands must be non-null";
    DataType dtype = isCompare(kind) ? DataType::boolean() : a->dtype;
    return std::make_shared<BinaryNode>(kind, dtype, std::move(a),
                                        std::move(b));
}

Expr
notExpr(Expr a)
{
    return std::make_shared<NotNode>(std::move(a));
}

Expr
select(Expr cond, Expr tval, Expr fval)
{
    return std::make_shared<SelectNode>(std::move(cond), std::move(tval),
                                        std::move(fval));
}

Expr
cast(DataType dtype, Expr value)
{
    if (value->dtype == dtype) return value;
    return std::make_shared<CastNode>(dtype, std::move(value));
}

Buffer
makeBuffer(std::string name, std::vector<int64_t> shape, DataType dtype,
           std::string scope)
{
    std::vector<Expr> shape_expr;
    shape_expr.reserve(shape.size());
    for (int64_t dim : shape) shape_expr.push_back(intImm(dim));
    return std::make_shared<BufferNode>(std::move(name), dtype,
                                        std::move(shape_expr),
                                        std::move(scope));
}

Buffer
makeBufferE(std::string name, std::vector<Expr> shape, DataType dtype,
            std::string scope)
{
    return std::make_shared<BufferNode>(std::move(name), dtype,
                                        std::move(shape), std::move(scope));
}

Expr
bufferLoad(Buffer buffer, std::vector<Expr> indices)
{
    TIR_ICHECK(buffer->ndim() == indices.size())
        << "load of " << buffer->name << ": " << indices.size()
        << " indices for " << buffer->ndim() << " dims";
    return std::make_shared<BufferLoadNode>(std::move(buffer),
                                            std::move(indices));
}

Expr
bufferPtr(Buffer buffer, std::vector<Expr> indices)
{
    TIR_ICHECK(buffer->ndim() == indices.size());
    return std::make_shared<BufferPtrNode>(std::move(buffer),
                                           std::move(indices));
}

Expr
call(DataType dtype, std::string op, std::vector<Expr> args)
{
    return std::make_shared<CallNode>(dtype, std::move(op), std::move(args));
}

Expr operator+(const Expr& a, const Expr& b)
{ return binary(ExprKind::kAdd, a, b); }
Expr operator-(const Expr& a, const Expr& b)
{ return binary(ExprKind::kSub, a, b); }
Expr operator*(const Expr& a, const Expr& b)
{ return binary(ExprKind::kMul, a, b); }
Expr operator+(const Expr& a, int64_t b)
{ return a + intImm(b, a->dtype); }
Expr operator-(const Expr& a, int64_t b)
{ return a - intImm(b, a->dtype); }
Expr operator*(const Expr& a, int64_t b)
{ return a * intImm(b, a->dtype); }
Expr floordiv(const Expr& a, const Expr& b)
{ return binary(ExprKind::kFloorDiv, a, b); }
Expr floormod(const Expr& a, const Expr& b)
{ return binary(ExprKind::kFloorMod, a, b); }
Expr floordiv(const Expr& a, int64_t b)
{ return floordiv(a, intImm(b, a->dtype)); }
Expr floormod(const Expr& a, int64_t b)
{ return floormod(a, intImm(b, a->dtype)); }
Expr div(const Expr& a, const Expr& b)
{ return binary(ExprKind::kDiv, a, b); }
Expr minExpr(const Expr& a, const Expr& b)
{ return binary(ExprKind::kMin, a, b); }
Expr maxExpr(const Expr& a, const Expr& b)
{ return binary(ExprKind::kMax, a, b); }
Expr eq(const Expr& a, const Expr& b)
{ return binary(ExprKind::kEQ, a, b); }
Expr ne(const Expr& a, const Expr& b)
{ return binary(ExprKind::kNE, a, b); }
Expr lt(const Expr& a, const Expr& b)
{ return binary(ExprKind::kLT, a, b); }
Expr le(const Expr& a, const Expr& b)
{ return binary(ExprKind::kLE, a, b); }
Expr gt(const Expr& a, const Expr& b)
{ return binary(ExprKind::kGT, a, b); }
Expr ge(const Expr& a, const Expr& b)
{ return binary(ExprKind::kGE, a, b); }
Expr land(const Expr& a, const Expr& b)
{ return binary(ExprKind::kAnd, a, b); }
Expr lor(const Expr& a, const Expr& b)
{ return binary(ExprKind::kOr, a, b); }

bool
isConstInt(const Expr& e, int64_t* out)
{
    if (e && e->kind == ExprKind::kIntImm) {
        if (out) *out = static_cast<const IntImmNode*>(e.get())->value;
        return true;
    }
    return false;
}

int64_t
constIntOr(const Expr& e, int64_t fallback)
{
    int64_t value = 0;
    return isConstInt(e, &value) ? value : fallback;
}

} // namespace tir
