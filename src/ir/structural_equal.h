/**
 * @file
 * Structural (alpha-) equivalence of TensorIR fragments. Two fragments are
 * equal when they have identical structure modulo a consistent renaming of
 * variables and buffers. Used by tensorize's description matching (§4.1)
 * and by tests.
 */
#ifndef TENSORIR_IR_STRUCTURAL_EQUAL_H
#define TENSORIR_IR_STRUCTURAL_EQUAL_H

#include <unordered_map>

#include "ir/stmt.h"

namespace tir {

/** Stateful structural comparator with a var/buffer correspondence map. */
class StructuralComparator
{
  public:
    /** Compare expressions, extending the correspondence maps. */
    bool equal(const Expr& a, const Expr& b);
    /** Compare statements, extending the correspondence maps. */
    bool equal(const Stmt& a, const Stmt& b);

    /** The buffer correspondence discovered during comparison (a -> b). */
    const std::unordered_map<const BufferNode*, Buffer>&
    bufferMap() const
    {
        return buffer_map_;
    }
    /** The var correspondence discovered during comparison (a -> b). */
    const std::unordered_map<const VarNode*, Var>&
    varMap() const
    {
        return var_map_;
    }

  private:
    bool equalBuffer(const Buffer& a, const Buffer& b);
    bool equalRegions(const std::vector<BufferRegion>& a,
                      const std::vector<BufferRegion>& b);

    std::unordered_map<const VarNode*, Var> var_map_;
    std::unordered_map<const BufferNode*, Buffer> buffer_map_;
};

/**
 * Strict deep equality: identical structure with pointer-identical
 * variables and buffers (no alpha renaming). Used for term merging in the
 * simplifier.
 */
bool exprDeepEqual(const Expr& a, const Expr& b);

/** One-shot structural equality of expressions. */
bool structuralEqual(const Expr& a, const Expr& b);
/** One-shot structural equality of statements. */
bool structuralEqual(const Stmt& a, const Stmt& b);
/** One-shot structural equality of functions (params matched in order). */
bool structuralEqual(const PrimFunc& a, const PrimFunc& b);

} // namespace tir

#endif // TENSORIR_IR_STRUCTURAL_EQUAL_H
