#include "ir/structural_equal.h"

namespace tir {

bool
StructuralComparator::equalBuffer(const Buffer& a, const Buffer& b)
{
    auto it = buffer_map_.find(a.get());
    if (it != buffer_map_.end()) return it->second == b;
    if (a->dtype != b->dtype || a->ndim() != b->ndim()) return false;
    for (size_t i = 0; i < a->ndim(); ++i) {
        if (!equal(a->shape[i], b->shape[i])) return false;
    }
    if (a->scope != b->scope) return false;
    buffer_map_[a.get()] = b;
    return true;
}

bool
StructuralComparator::equal(const Expr& a, const Expr& b)
{
    if (a == b) return true;
    if (!a || !b) return false;
    if (a->kind != b->kind) return false;
    if (a->dtype != b->dtype) return false;
    switch (a->kind) {
      case ExprKind::kIntImm:
        return static_cast<const IntImmNode&>(*a).value ==
               static_cast<const IntImmNode&>(*b).value;
      case ExprKind::kFloatImm:
        return static_cast<const FloatImmNode&>(*a).value ==
               static_cast<const FloatImmNode&>(*b).value;
      case ExprKind::kStringImm:
        return static_cast<const StringImmNode&>(*a).value ==
               static_cast<const StringImmNode&>(*b).value;
      case ExprKind::kVar: {
        const auto* va = static_cast<const VarNode*>(a.get());
        const auto* vb = static_cast<const VarNode*>(b.get());
        auto it = var_map_.find(va);
        if (it != var_map_.end()) return it->second.get() == vb;
        var_map_[va] = std::static_pointer_cast<const VarNode>(b);
        return true;
      }
      case ExprKind::kNot:
        return equal(static_cast<const NotNode&>(*a).a,
                     static_cast<const NotNode&>(*b).a);
      case ExprKind::kSelect: {
        const auto& na = static_cast<const SelectNode&>(*a);
        const auto& nb = static_cast<const SelectNode&>(*b);
        return equal(na.cond, nb.cond) && equal(na.tval, nb.tval) &&
               equal(na.fval, nb.fval);
      }
      case ExprKind::kCast:
        return equal(static_cast<const CastNode&>(*a).value,
                     static_cast<const CastNode&>(*b).value);
      case ExprKind::kBufferLoad:
      case ExprKind::kBufferPtr: {
        const Buffer* buf_a;
        const Buffer* buf_b;
        const std::vector<Expr>* idx_a;
        const std::vector<Expr>* idx_b;
        if (a->kind == ExprKind::kBufferLoad) {
            const auto& na = static_cast<const BufferLoadNode&>(*a);
            const auto& nb = static_cast<const BufferLoadNode&>(*b);
            buf_a = &na.buffer; buf_b = &nb.buffer;
            idx_a = &na.indices; idx_b = &nb.indices;
        } else {
            const auto& na = static_cast<const BufferPtrNode&>(*a);
            const auto& nb = static_cast<const BufferPtrNode&>(*b);
            buf_a = &na.buffer; buf_b = &nb.buffer;
            idx_a = &na.indices; idx_b = &nb.indices;
        }
        if (!equalBuffer(*buf_a, *buf_b)) return false;
        if (idx_a->size() != idx_b->size()) return false;
        for (size_t i = 0; i < idx_a->size(); ++i) {
            if (!equal((*idx_a)[i], (*idx_b)[i])) return false;
        }
        return true;
      }
      case ExprKind::kCall: {
        const auto& na = static_cast<const CallNode&>(*a);
        const auto& nb = static_cast<const CallNode&>(*b);
        if (na.op != nb.op || na.args.size() != nb.args.size()) {
            return false;
        }
        for (size_t i = 0; i < na.args.size(); ++i) {
            if (!equal(na.args[i], nb.args[i])) return false;
        }
        return true;
      }
      default: {
        const auto& na = static_cast<const BinaryNode&>(*a);
        const auto& nb = static_cast<const BinaryNode&>(*b);
        return equal(na.a, nb.a) && equal(na.b, nb.b);
      }
    }
}

bool
StructuralComparator::equalRegions(const std::vector<BufferRegion>& a,
                                   const std::vector<BufferRegion>& b)
{
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (!equalBuffer(a[i].buffer, b[i].buffer)) return false;
        if (a[i].region.size() != b[i].region.size()) return false;
        for (size_t j = 0; j < a[i].region.size(); ++j) {
            if (!equal(a[i].region[j].min, b[i].region[j].min) ||
                !equal(a[i].region[j].extent, b[i].region[j].extent)) {
                return false;
            }
        }
    }
    return true;
}

bool
StructuralComparator::equal(const Stmt& a, const Stmt& b)
{
    if (a == b) return true;
    if (!a || !b) return false;
    if (a->kind != b->kind) return false;
    switch (a->kind) {
      case StmtKind::kBufferStore: {
        const auto& na = static_cast<const BufferStoreNode&>(*a);
        const auto& nb = static_cast<const BufferStoreNode&>(*b);
        if (!equalBuffer(na.buffer, nb.buffer)) return false;
        if (!equal(na.value, nb.value)) return false;
        if (na.indices.size() != nb.indices.size()) return false;
        for (size_t i = 0; i < na.indices.size(); ++i) {
            if (!equal(na.indices[i], nb.indices[i])) return false;
        }
        return true;
      }
      case StmtKind::kEvaluate:
        return equal(static_cast<const EvaluateNode&>(*a).value,
                     static_cast<const EvaluateNode&>(*b).value);
      case StmtKind::kSeq: {
        const auto& na = static_cast<const SeqStmtNode&>(*a);
        const auto& nb = static_cast<const SeqStmtNode&>(*b);
        if (na.seq.size() != nb.seq.size()) return false;
        for (size_t i = 0; i < na.seq.size(); ++i) {
            if (!equal(na.seq[i], nb.seq[i])) return false;
        }
        return true;
      }
      case StmtKind::kIfThenElse: {
        const auto& na = static_cast<const IfThenElseNode&>(*a);
        const auto& nb = static_cast<const IfThenElseNode&>(*b);
        if (!equal(na.cond, nb.cond)) return false;
        if (!equal(na.then_case, nb.then_case)) return false;
        if (static_cast<bool>(na.else_case) !=
            static_cast<bool>(nb.else_case)) {
            return false;
        }
        return !na.else_case || equal(na.else_case, nb.else_case);
      }
      case StmtKind::kFor: {
        const auto& na = static_cast<const ForNode&>(*a);
        const auto& nb = static_cast<const ForNode&>(*b);
        if (na.for_kind != nb.for_kind || na.thread_tag != nb.thread_tag) {
            return false;
        }
        var_map_[na.loop_var.get()] = nb.loop_var;
        return equal(na.min, nb.min) && equal(na.extent, nb.extent) &&
               equal(na.body, nb.body);
      }
      case StmtKind::kBlock: {
        const auto& na = static_cast<const BlockNode&>(*a);
        const auto& nb = static_cast<const BlockNode&>(*b);
        if (na.iter_vars.size() != nb.iter_vars.size()) return false;
        for (size_t i = 0; i < na.iter_vars.size(); ++i) {
            const IterVar& iva = na.iter_vars[i];
            const IterVar& ivb = nb.iter_vars[i];
            if (iva.type != ivb.type) return false;
            if (!equal(iva.dom.min, ivb.dom.min) ||
                !equal(iva.dom.extent, ivb.dom.extent)) {
                return false;
            }
            var_map_[iva.var.get()] = ivb.var;
        }
        if (!equalRegions(na.reads, nb.reads)) return false;
        if (!equalRegions(na.writes, nb.writes)) return false;
        if (static_cast<bool>(na.init) != static_cast<bool>(nb.init)) {
            return false;
        }
        if (na.init && !equal(na.init, nb.init)) return false;
        return equal(na.body, nb.body);
      }
      case StmtKind::kBlockRealize: {
        const auto& na = static_cast<const BlockRealizeNode&>(*a);
        const auto& nb = static_cast<const BlockRealizeNode&>(*b);
        if (na.iter_values.size() != nb.iter_values.size()) return false;
        for (size_t i = 0; i < na.iter_values.size(); ++i) {
            if (!equal(na.iter_values[i], nb.iter_values[i])) return false;
        }
        if (!equal(na.predicate, nb.predicate)) return false;
        return equal(Stmt(na.block), Stmt(nb.block));
      }
    }
    TIR_PANIC << "unreachable stmt kind";
}

bool
exprDeepEqual(const Expr& a, const Expr& b)
{
    if (a == b) return true;
    if (!a || !b || a->kind != b->kind || a->dtype != b->dtype) {
        return false;
    }
    switch (a->kind) {
      case ExprKind::kIntImm:
        return static_cast<const IntImmNode&>(*a).value ==
               static_cast<const IntImmNode&>(*b).value;
      case ExprKind::kFloatImm:
        return static_cast<const FloatImmNode&>(*a).value ==
               static_cast<const FloatImmNode&>(*b).value;
      case ExprKind::kStringImm:
        return static_cast<const StringImmNode&>(*a).value ==
               static_cast<const StringImmNode&>(*b).value;
      case ExprKind::kVar:
        return false; // pointer-distinct vars are different
      case ExprKind::kNot:
        return exprDeepEqual(static_cast<const NotNode&>(*a).a,
                             static_cast<const NotNode&>(*b).a);
      case ExprKind::kSelect: {
        const auto& na = static_cast<const SelectNode&>(*a);
        const auto& nb = static_cast<const SelectNode&>(*b);
        return exprDeepEqual(na.cond, nb.cond) &&
               exprDeepEqual(na.tval, nb.tval) &&
               exprDeepEqual(na.fval, nb.fval);
      }
      case ExprKind::kCast:
        return exprDeepEqual(static_cast<const CastNode&>(*a).value,
                             static_cast<const CastNode&>(*b).value);
      case ExprKind::kBufferLoad: {
        const auto& na = static_cast<const BufferLoadNode&>(*a);
        const auto& nb = static_cast<const BufferLoadNode&>(*b);
        if (na.buffer != nb.buffer ||
            na.indices.size() != nb.indices.size()) {
            return false;
        }
        for (size_t i = 0; i < na.indices.size(); ++i) {
            if (!exprDeepEqual(na.indices[i], nb.indices[i])) return false;
        }
        return true;
      }
      case ExprKind::kBufferPtr: {
        const auto& na = static_cast<const BufferPtrNode&>(*a);
        const auto& nb = static_cast<const BufferPtrNode&>(*b);
        if (na.buffer != nb.buffer ||
            na.indices.size() != nb.indices.size()) {
            return false;
        }
        for (size_t i = 0; i < na.indices.size(); ++i) {
            if (!exprDeepEqual(na.indices[i], nb.indices[i])) return false;
        }
        return true;
      }
      case ExprKind::kCall: {
        const auto& na = static_cast<const CallNode&>(*a);
        const auto& nb = static_cast<const CallNode&>(*b);
        if (na.op != nb.op || na.args.size() != nb.args.size()) {
            return false;
        }
        for (size_t i = 0; i < na.args.size(); ++i) {
            if (!exprDeepEqual(na.args[i], nb.args[i])) return false;
        }
        return true;
      }
      default: {
        const auto& na = static_cast<const BinaryNode&>(*a);
        const auto& nb = static_cast<const BinaryNode&>(*b);
        return exprDeepEqual(na.a, nb.a) && exprDeepEqual(na.b, nb.b);
      }
    }
}

bool
structuralEqual(const Expr& a, const Expr& b)
{
    StructuralComparator cmp;
    return cmp.equal(a, b);
}

bool
structuralEqual(const Stmt& a, const Stmt& b)
{
    StructuralComparator cmp;
    return cmp.equal(a, b);
}

bool
structuralEqual(const PrimFunc& a, const PrimFunc& b)
{
    if (a->params.size() != b->params.size()) return false;
    StructuralComparator cmp;
    // Parameters correspond positionally; shapes must match structurally.
    for (size_t i = 0; i < a->params.size(); ++i) {
        const Buffer& pa = a->params[i];
        const Buffer& pb = b->params[i];
        if (pa->dtype != pb->dtype || pa->ndim() != pb->ndim()) {
            return false;
        }
        Expr la = bufferLoad(pa, std::vector<Expr>(pa->ndim(), intImm(0)));
        Expr lb = bufferLoad(pb, std::vector<Expr>(pb->ndim(), intImm(0)));
        if (!cmp.equal(la, lb)) return false;
    }
    return cmp.equal(a->body, b->body);
}

} // namespace tir
