/**
 * @file
 * Visitor and mutator infrastructure over the TensorIR AST. Mutators
 * preserve sharing: a node is rebuilt only when a child changed.
 */
#ifndef TENSORIR_IR_FUNCTOR_H
#define TENSORIR_IR_FUNCTOR_H

#include "ir/stmt.h"

namespace tir {

/** Read-only traversal over expressions. */
class ExprVisitor
{
  public:
    virtual ~ExprVisitor() = default;

    /** Dispatch on the expression kind. */
    virtual void
    visitExpr(const Expr& e)
    {
        TIR_ICHECK(e) << "null expression";
        switch (e->kind) {
          case ExprKind::kIntImm:
          case ExprKind::kFloatImm:
          case ExprKind::kStringImm:
            return;
          case ExprKind::kVar:
            visitVar(static_cast<const VarNode&>(*e));
            return;
          case ExprKind::kNot:
            visitExpr(static_cast<const NotNode&>(*e).a);
            return;
          case ExprKind::kSelect: {
            const auto& n = static_cast<const SelectNode&>(*e);
            visitExpr(n.cond);
            visitExpr(n.tval);
            visitExpr(n.fval);
            return;
          }
          case ExprKind::kCast:
            visitExpr(static_cast<const CastNode&>(*e).value);
            return;
          case ExprKind::kBufferLoad:
            visitBufferLoad(static_cast<const BufferLoadNode&>(*e));
            return;
          case ExprKind::kBufferPtr:
            visitBufferPtr(static_cast<const BufferPtrNode&>(*e));
            return;
          case ExprKind::kCall:
            visitCall(static_cast<const CallNode&>(*e));
            return;
          default:
            visitBinary(static_cast<const BinaryNode&>(*e));
            return;
        }
    }

  protected:
    virtual void visitVar(const VarNode& node) {}
    virtual void
    visitBinary(const BinaryNode& node)
    {
        visitExpr(node.a);
        visitExpr(node.b);
    }
    virtual void
    visitBufferLoad(const BufferLoadNode& node)
    {
        for (const Expr& idx : node.indices) visitExpr(idx);
    }
    virtual void
    visitBufferPtr(const BufferPtrNode& node)
    {
        for (const Expr& idx : node.indices) visitExpr(idx);
    }
    virtual void
    visitCall(const CallNode& node)
    {
        for (const Expr& arg : node.args) visitExpr(arg);
    }
};

/** Read-only traversal over statements (and contained expressions). */
class StmtExprVisitor : public ExprVisitor
{
  public:
    /** Dispatch on the statement kind. */
    virtual void
    visitStmt(const Stmt& s)
    {
        TIR_ICHECK(s) << "null statement";
        switch (s->kind) {
          case StmtKind::kBufferStore:
            visitBufferStore(static_cast<const BufferStoreNode&>(*s));
            return;
          case StmtKind::kEvaluate:
            visitExpr(static_cast<const EvaluateNode&>(*s).value);
            return;
          case StmtKind::kSeq:
            for (const Stmt& sub :
                 static_cast<const SeqStmtNode&>(*s).seq) {
                visitStmt(sub);
            }
            return;
          case StmtKind::kIfThenElse: {
            const auto& n = static_cast<const IfThenElseNode&>(*s);
            visitExpr(n.cond);
            visitStmt(n.then_case);
            if (n.else_case) visitStmt(n.else_case);
            return;
          }
          case StmtKind::kFor:
            visitFor(static_cast<const ForNode&>(*s));
            return;
          case StmtKind::kBlock:
            visitBlock(static_cast<const BlockNode&>(*s));
            return;
          case StmtKind::kBlockRealize:
            visitBlockRealize(static_cast<const BlockRealizeNode&>(*s));
            return;
        }
    }

  protected:
    virtual void
    visitBufferStore(const BufferStoreNode& node)
    {
        visitExpr(node.value);
        for (const Expr& idx : node.indices) visitExpr(idx);
    }
    virtual void
    visitFor(const ForNode& node)
    {
        visitExpr(node.min);
        visitExpr(node.extent);
        visitStmt(node.body);
    }
    virtual void
    visitBlock(const BlockNode& node)
    {
        for (const IterVar& iv : node.iter_vars) {
            visitExpr(iv.dom.min);
            visitExpr(iv.dom.extent);
        }
        auto visit_regions = [&](const std::vector<BufferRegion>& regions) {
            for (const BufferRegion& br : regions) {
                for (const Range& r : br.region) {
                    visitExpr(r.min);
                    visitExpr(r.extent);
                }
            }
        };
        visit_regions(node.reads);
        visit_regions(node.writes);
        if (node.init) visitStmt(node.init);
        visitStmt(node.body);
    }
    virtual void
    visitBlockRealize(const BlockRealizeNode& node)
    {
        for (const Expr& v : node.iter_values) visitExpr(v);
        visitExpr(node.predicate);
        Stmt block = node.block;
        visitStmt(block);
    }
};

/** Rewriting traversal over expressions. */
class ExprMutator
{
  public:
    virtual ~ExprMutator() = default;

    /** Dispatch on the expression kind; returns the (possibly new) expr. */
    virtual Expr
    mutateExpr(const Expr& e)
    {
        TIR_ICHECK(e) << "null expression";
        switch (e->kind) {
          case ExprKind::kIntImm:
          case ExprKind::kFloatImm:
          case ExprKind::kStringImm:
            return e;
          case ExprKind::kVar:
            return mutateVar(e);
          case ExprKind::kNot: {
            const auto& n = static_cast<const NotNode&>(*e);
            Expr a = mutateExpr(n.a);
            return a == n.a ? e : notExpr(a);
          }
          case ExprKind::kSelect: {
            const auto& n = static_cast<const SelectNode&>(*e);
            Expr c = mutateExpr(n.cond);
            Expr t = mutateExpr(n.tval);
            Expr f = mutateExpr(n.fval);
            if (c == n.cond && t == n.tval && f == n.fval) return e;
            return select(c, t, f);
          }
          case ExprKind::kCast: {
            const auto& n = static_cast<const CastNode&>(*e);
            Expr v = mutateExpr(n.value);
            return v == n.value ? e
                                : std::make_shared<CastNode>(n.dtype, v);
          }
          case ExprKind::kBufferLoad:
            return mutateBufferLoad(e);
          case ExprKind::kBufferPtr:
            return mutateBufferPtr(e);
          case ExprKind::kCall: {
            const auto& n = static_cast<const CallNode&>(*e);
            bool changed = false;
            std::vector<Expr> args = mutateAll(n.args, &changed);
            return changed ? call(n.dtype, n.op, std::move(args)) : e;
          }
          default:
            return mutateBinary(e);
        }
    }

  protected:
    /** Hook: remap a buffer reference (identity by default). */
    virtual Buffer mutateBuffer(const Buffer& b) { return b; }

    virtual Expr mutateVar(const Expr& e) { return e; }

    virtual Expr
    mutateBinary(const Expr& e)
    {
        const auto& n = static_cast<const BinaryNode&>(*e);
        Expr a = mutateExpr(n.a);
        Expr b = mutateExpr(n.b);
        if (a == n.a && b == n.b) return e;
        return binary(n.kind, a, b);
    }

    virtual Expr
    mutateBufferLoad(const Expr& e)
    {
        const auto& n = static_cast<const BufferLoadNode&>(*e);
        bool changed = false;
        std::vector<Expr> idx = mutateAll(n.indices, &changed);
        Buffer buf = mutateBuffer(n.buffer);
        if (!changed && buf == n.buffer) return e;
        return bufferLoad(buf, std::move(idx));
    }

    virtual Expr
    mutateBufferPtr(const Expr& e)
    {
        const auto& n = static_cast<const BufferPtrNode&>(*e);
        bool changed = false;
        std::vector<Expr> idx = mutateAll(n.indices, &changed);
        Buffer buf = mutateBuffer(n.buffer);
        if (!changed && buf == n.buffer) return e;
        return bufferPtr(buf, std::move(idx));
    }

    /** Mutate each element; sets *changed if any element changed. */
    std::vector<Expr>
    mutateAll(const std::vector<Expr>& exprs, bool* changed)
    {
        std::vector<Expr> result;
        result.reserve(exprs.size());
        for (const Expr& e : exprs) {
            Expr m = mutateExpr(e);
            if (m != e) *changed = true;
            result.push_back(std::move(m));
        }
        return result;
    }
};

/** Rewriting traversal over statements (and contained expressions). */
class StmtExprMutator : public ExprMutator
{
  public:
    /** Dispatch on the statement kind; returns the (possibly new) stmt. */
    virtual Stmt
    mutateStmt(const Stmt& s)
    {
        TIR_ICHECK(s) << "null statement";
        switch (s->kind) {
          case StmtKind::kBufferStore:
            return mutateBufferStore(s);
          case StmtKind::kEvaluate: {
            const auto& n = static_cast<const EvaluateNode&>(*s);
            Expr v = mutateExpr(n.value);
            return v == n.value ? s : evaluate(v);
          }
          case StmtKind::kSeq: {
            const auto& n = static_cast<const SeqStmtNode&>(*s);
            bool changed = false;
            std::vector<Stmt> stmts;
            stmts.reserve(n.seq.size());
            for (const Stmt& sub : n.seq) {
                Stmt m = mutateStmt(sub);
                if (m != sub) changed = true;
                if (m) stmts.push_back(std::move(m));
            }
            if (!changed) return s;
            if (stmts.empty()) return nullptr;
            return seq(std::move(stmts));
          }
          case StmtKind::kIfThenElse: {
            const auto& n = static_cast<const IfThenElseNode&>(*s);
            Expr c = mutateExpr(n.cond);
            Stmt t = mutateStmt(n.then_case);
            Stmt e = n.else_case ? mutateStmt(n.else_case) : nullptr;
            if (c == n.cond && t == n.then_case && e == n.else_case) {
                return s;
            }
            return ifThenElse(c, t, e);
          }
          case StmtKind::kFor:
            return mutateFor(s);
          case StmtKind::kBlock: {
            const auto& n = static_cast<const BlockNode&>(*s);
            BlockPtr result = mutateBlockNode(
                std::static_pointer_cast<const BlockNode>(s));
            return result.get() == &n ? s : Stmt(result);
          }
          case StmtKind::kBlockRealize:
            return mutateBlockRealize(s);
        }
        TIR_PANIC << "unreachable stmt kind";
    }

  protected:
    virtual Stmt
    mutateBufferStore(const Stmt& s)
    {
        const auto& n = static_cast<const BufferStoreNode&>(*s);
        Expr v = mutateExpr(n.value);
        bool changed = false;
        std::vector<Expr> idx = mutateAll(n.indices, &changed);
        Buffer buf = mutateBuffer(n.buffer);
        if (v == n.value && !changed && buf == n.buffer) return s;
        return bufferStore(buf, v, std::move(idx));
    }

    virtual Stmt
    mutateFor(const Stmt& s)
    {
        const auto& n = static_cast<const ForNode&>(*s);
        Expr mn = mutateExpr(n.min);
        Expr ext = mutateExpr(n.extent);
        Stmt body = mutateStmt(n.body);
        if (mn == n.min && ext == n.extent && body == n.body) return s;
        return makeFor(n.loop_var, mn, ext, body, n.for_kind, n.thread_tag,
                       n.annotations);
    }

    virtual BlockPtr
    mutateBlockNode(const BlockPtr& block)
    {
        const BlockNode& n = *block;
        bool changed = false;
        std::vector<IterVar> iters;
        iters.reserve(n.iter_vars.size());
        for (const IterVar& iv : n.iter_vars) {
            Expr mn = mutateExpr(iv.dom.min);
            Expr ext = mutateExpr(iv.dom.extent);
            if (mn != iv.dom.min || ext != iv.dom.extent) changed = true;
            iters.emplace_back(iv.var, Range(mn, ext), iv.type);
        }
        auto mutate_regions = [&](const std::vector<BufferRegion>& regions) {
            std::vector<BufferRegion> result;
            result.reserve(regions.size());
            for (const BufferRegion& br : regions) {
                std::vector<Range> ranges;
                ranges.reserve(br.region.size());
                for (const Range& r : br.region) {
                    Expr mn = mutateExpr(r.min);
                    Expr ext = mutateExpr(r.extent);
                    if (mn != r.min || ext != r.extent) changed = true;
                    ranges.emplace_back(mn, ext);
                }
                Buffer buf = mutateBuffer(br.buffer);
                if (buf != br.buffer) changed = true;
                result.emplace_back(buf, std::move(ranges));
            }
            return result;
        };
        std::vector<BufferRegion> reads = mutate_regions(n.reads);
        std::vector<BufferRegion> writes = mutate_regions(n.writes);
        Stmt init = n.init ? mutateStmt(n.init) : nullptr;
        if (init != n.init) changed = true;
        Stmt body = mutateStmt(n.body);
        if (body != n.body) changed = true;
        std::vector<Buffer> allocs;
        allocs.reserve(n.alloc_buffers.size());
        for (const Buffer& b : n.alloc_buffers) {
            Buffer nb = mutateBuffer(b);
            if (nb != b) changed = true;
            allocs.push_back(std::move(nb));
        }
        if (!changed) return block;
        return makeBlock(n.name, std::move(iters), std::move(reads),
                         std::move(writes), body, init, std::move(allocs),
                         n.annotations);
    }

    virtual Stmt
    mutateBlockRealize(const Stmt& s)
    {
        const auto& n = static_cast<const BlockRealizeNode&>(*s);
        bool changed = false;
        std::vector<Expr> values = mutateAll(n.iter_values, &changed);
        Expr pred = mutateExpr(n.predicate);
        BlockPtr block = mutateBlockNode(n.block);
        if (!changed && pred == n.predicate && block == n.block) return s;
        return blockRealize(std::move(values), pred, block);
    }
};

} // namespace tir

#endif // TENSORIR_IR_FUNCTOR_H
