/**
 * @file
 * TensorIR statement AST: loop nests, blocks (the paper's key abstraction),
 * block realizations, functions and modules.
 */
#ifndef TENSORIR_IR_STMT_H
#define TENSORIR_IR_STMT_H

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ir/expr.h"

namespace tir {

/** Half-open integer range [min, min + extent). */
struct Range
{
    Expr min;
    Expr extent;

    Range() = default;
    Range(Expr m, Expr e) : min(std::move(m)), extent(std::move(e)) {}
    /** Convenience: [0, extent). */
    static Range fromExtent(int64_t extent)
    {
        return {intImm(0), intImm(extent)};
    }
};

/** A rectangular sub-region of a buffer (one Range per dimension). */
struct BufferRegion
{
    Buffer buffer;
    std::vector<Range> region;

    BufferRegion() = default;
    BufferRegion(Buffer b, std::vector<Range> r)
        : buffer(std::move(b)), region(std::move(r))
    {}
    /** Region covering the whole buffer. */
    static BufferRegion full(const Buffer& b);
};

/** Classification of a block iterator (the paper's spatial/reduce axes). */
enum class IterType : uint8_t { kSpatial, kReduce, kOpaque };

/** A block iterator variable with its domain and classification. */
struct IterVar
{
    Var var;
    Range dom;
    IterType type = IterType::kSpatial;

    IterVar() = default;
    IterVar(Var v, Range d, IterType t)
        : var(std::move(v)), dom(std::move(d)), type(t)
    {}
};

/** Discriminator for every statement node. */
enum class StmtKind : uint8_t {
    kBufferStore,
    kEvaluate,
    kSeq,
    kIfThenElse,
    kFor,
    kBlock,
    kBlockRealize,
};

class StmtNode;
/** Shared immutable statement handle. */
using Stmt = std::shared_ptr<const StmtNode>;

/** Base class of all statement nodes. */
class StmtNode
{
  public:
    const StmtKind kind;
    virtual ~StmtNode() = default;

  protected:
    explicit StmtNode(StmtKind k) : kind(k) {}
};

/** Scalar store into a multi-dimensional buffer. */
class BufferStoreNode : public StmtNode
{
  public:
    const Buffer buffer;
    const Expr value;
    const std::vector<Expr> indices;
    BufferStoreNode(Buffer buf, Expr val, std::vector<Expr> idx)
        : StmtNode(StmtKind::kBufferStore), buffer(std::move(buf)),
          value(std::move(val)), indices(std::move(idx))
    {}
};

/** Evaluate an expression for side effects (opaque intrinsic calls). */
class EvaluateNode : public StmtNode
{
  public:
    const Expr value;
    explicit EvaluateNode(Expr v)
        : StmtNode(StmtKind::kEvaluate), value(std::move(v))
    {}
};

/** Sequence of statements executed in order. */
class SeqStmtNode : public StmtNode
{
  public:
    const std::vector<Stmt> seq;
    explicit SeqStmtNode(std::vector<Stmt> s)
        : StmtNode(StmtKind::kSeq), seq(std::move(s))
    {}
};

/** Conditional; else_case may be null. */
class IfThenElseNode : public StmtNode
{
  public:
    const Expr cond;
    const Stmt then_case;
    const Stmt else_case;
    IfThenElseNode(Expr c, Stmt t, Stmt e)
        : StmtNode(StmtKind::kIfThenElse), cond(std::move(c)),
          then_case(std::move(t)), else_case(std::move(e))
    {}
};

/** Execution strategy of a For loop. */
enum class ForKind : uint8_t {
    kSerial,
    kParallel,
    kVectorized,
    kUnrolled,
    kThreadBinding,
};

/** A single loop over [min, min + extent). */
class ForNode : public StmtNode
{
  public:
    const Var loop_var;
    const Expr min;
    const Expr extent;
    const ForKind for_kind;
    /** Thread axis tag for kThreadBinding, e.g. "blockIdx.x". */
    const std::string thread_tag;
    const std::map<std::string, Expr> annotations;
    const Stmt body;

    ForNode(Var v, Expr mn, Expr ext, ForKind fk, Stmt b,
            std::string tag = "", std::map<std::string, Expr> ann = {})
        : StmtNode(StmtKind::kFor), loop_var(std::move(v)),
          min(std::move(mn)), extent(std::move(ext)), for_kind(fk),
          thread_tag(std::move(tag)), annotations(std::move(ann)),
          body(std::move(b))
    {}
};

class BlockNode;
/** Shared handle to a block node. */
using BlockPtr = std::shared_ptr<const BlockNode>;

/**
 * The paper's central abstraction: a block isolates a (possibly tensorized)
 * computation on buffer sub-regions behind a signature of iterator domains
 * and read/write regions. Outer transformations rely solely on this
 * signature and never inspect the body.
 */
class BlockNode : public StmtNode
{
  public:
    const std::string name;
    /** Block iterator variables with domains and spatial/reduce types. */
    const std::vector<IterVar> iter_vars;
    /** Regions read by one block instance (part of the signature). */
    const std::vector<BufferRegion> reads;
    /** Regions written by one block instance (part of the signature). */
    const std::vector<BufferRegion> writes;
    /** Optional reduction-initialization statement. */
    const Stmt init;
    const Stmt body;
    /** Buffers whose lifetime is scoped to this block. */
    const std::vector<Buffer> alloc_buffers;
    const std::map<std::string, Expr> annotations;

    BlockNode(std::string n, std::vector<IterVar> iters,
              std::vector<BufferRegion> r, std::vector<BufferRegion> w,
              Stmt ini, Stmt b, std::vector<Buffer> allocs = {},
              std::map<std::string, Expr> ann = {})
        : StmtNode(StmtKind::kBlock), name(std::move(n)),
          iter_vars(std::move(iters)), reads(std::move(r)),
          writes(std::move(w)), init(std::move(ini)), body(std::move(b)),
          alloc_buffers(std::move(allocs)), annotations(std::move(ann))
    {}
};

/**
 * Binds the iterators of a block to values of the surrounding loop vars
 * (the paper's "binding values"), optionally guarded by a predicate.
 */
class BlockRealizeNode : public StmtNode
{
  public:
    const std::vector<Expr> iter_values;
    const Expr predicate;
    const BlockPtr block;

    BlockRealizeNode(std::vector<Expr> values, Expr pred, BlockPtr blk)
        : StmtNode(StmtKind::kBlockRealize), iter_values(std::move(values)),
          predicate(std::move(pred)), block(std::move(blk))
    {
        TIR_ICHECK(block->iter_vars.size() == iter_values.size())
            << "block " << block->name << " expects "
            << block->iter_vars.size() << " bindings, got "
            << iter_values.size();
    }
};

/** A schedulable function: parameters (buffers) plus a root block body. */
class PrimFuncNode
{
  public:
    const std::string name;
    const std::vector<Buffer> params;
    const Stmt body;
    const std::map<std::string, Expr> attrs;

    PrimFuncNode(std::string n, std::vector<Buffer> p, Stmt b,
                 std::map<std::string, Expr> a = {})
        : name(std::move(n)), params(std::move(p)), body(std::move(b)),
          attrs(std::move(a))
    {}
};
/** Shared function handle. */
using PrimFunc = std::shared_ptr<const PrimFuncNode>;

/** A collection of PrimFuncs keyed by name. */
class IRModule
{
  public:
    IRModule() = default;
    explicit IRModule(std::map<std::string, PrimFunc> funcs)
        : functions_(std::move(funcs))
    {}

    const std::map<std::string, PrimFunc>& functions() const
    {
        return functions_;
    }
    PrimFunc
    lookup(const std::string& name) const
    {
        auto it = functions_.find(name);
        TIR_CHECK(it != functions_.end()) << "no function named " << name;
        return it->second;
    }
    void update(const PrimFunc& func) { functions_[func->name] = func; }

  private:
    std::map<std::string, PrimFunc> functions_;
};

// --- Constructors -----------------------------------------------------

Stmt bufferStore(Buffer buffer, Expr value, std::vector<Expr> indices);
Stmt evaluate(Expr value);
/** Sequence; flattens nested SeqStmt and collapses singletons. */
Stmt seq(std::vector<Stmt> stmts);
Stmt ifThenElse(Expr cond, Stmt then_case, Stmt else_case = nullptr);
Stmt makeFor(Var loop_var, Expr min, Expr extent, Stmt body,
             ForKind kind = ForKind::kSerial, std::string thread_tag = "",
             std::map<std::string, Expr> annotations = {});
BlockPtr makeBlock(std::string name, std::vector<IterVar> iter_vars,
                   std::vector<BufferRegion> reads,
                   std::vector<BufferRegion> writes, Stmt body,
                   Stmt init = nullptr, std::vector<Buffer> allocs = {},
                   std::map<std::string, Expr> annotations = {});
Stmt blockRealize(std::vector<Expr> iter_values, Expr predicate,
                  BlockPtr block);
PrimFunc makeFunc(std::string name, std::vector<Buffer> params, Stmt body,
                  std::map<std::string, Expr> attrs = {});

/** Wrap `body` in the canonical argument-less root block + realize. */
Stmt makeRootBlock(Stmt body, std::vector<Buffer> allocs = {});

/** Intrinsic name of the cross-thread storage barrier (CUDA's
 *  __syncthreads analogue). Represented as Evaluate(Call(handle,
 *  kStorageSyncOp, {StringImm(scope)})); a no-op on the sequential
 *  interpreter but load-bearing for the static race analysis. */
inline constexpr const char kStorageSyncOp[] = "tir.storage_sync";

/** Barrier statement synchronizing all threads of a launch on the
 *  given storage scope. */
Stmt storageSync(std::string scope = "shared");

/** The synchronized scope when `stmt` is a storage-sync barrier,
 *  std::nullopt otherwise. */
std::optional<std::string> asStorageSync(const StmtNode& stmt);

/** The Block of a statement that must be a BlockRealize. */
const BlockNode* asBlockRealize(const Stmt& stmt, std::vector<Expr>* values =
                                nullptr);

} // namespace tir

#endif // TENSORIR_IR_STMT_H
