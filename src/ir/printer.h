/**
 * @file
 * Script-dialect printer for TensorIR, matching the paper's Figure 4 style.
 * Printing works at any transformation stage, which is the debugging
 * workflow §3.2 advocates.
 */
#ifndef TENSORIR_IR_PRINTER_H
#define TENSORIR_IR_PRINTER_H

#include <string>

#include "ir/stmt.h"

namespace tir {

/** Render an expression as script text. */
std::string exprToString(const Expr& expr);
/** Render a statement as script text. */
std::string stmtToString(const Stmt& stmt, int indent = 0);
/** Render a full function as script text. */
std::string funcToString(const PrimFunc& func);

} // namespace tir

#endif // TENSORIR_IR_PRINTER_H
