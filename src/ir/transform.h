/**
 * @file
 * Common AST manipulation helpers: variable substitution, buffer remapping,
 * fresh-variable cloning, and collectors used by schedule analysis.
 */
#ifndef TENSORIR_IR_TRANSFORM_H
#define TENSORIR_IR_TRANSFORM_H

#include <functional>
#include <set>
#include <unordered_map>

#include "ir/functor.h"

namespace tir {

/** Mapping from variables to replacement expressions. */
using VarMap = std::unordered_map<const VarNode*, Expr>;
/** Mapping from buffers to replacement buffers. */
using BufferMap = std::unordered_map<const BufferNode*, Buffer>;

/** Substitute variables in an expression. */
Expr substitute(const Expr& expr, const VarMap& vmap);
/** Substitute variables in a statement. */
Stmt substitute(const Stmt& stmt, const VarMap& vmap);
/** Replace buffer references in a statement (regions included). */
Stmt substituteBuffers(const Stmt& stmt, const BufferMap& bmap);
/** Substitute both variables and buffers in one pass. */
Stmt substitute(const Stmt& stmt, const VarMap& vmap,
                const BufferMap& bmap);

/**
 * Deep-copy a statement, giving fresh identities to every variable defined
 * inside (loop vars, block iter vars). Used when instantiating tensor
 * intrinsic bodies and duplicating blocks.
 */
Stmt copyWithFreshVars(const Stmt& stmt, const std::string& suffix = "");

/** Collect free variables of an expression. */
std::set<const VarNode*> collectVars(const Expr& expr);
/** True when `expr` references `v`. */
bool usesVar(const Expr& expr, const VarNode* v);

/** All blocks in a statement, pre-order. */
std::vector<BlockPtr> collectBlocks(const Stmt& stmt);
/** The BlockRealize nodes in a statement, pre-order. */
std::vector<Stmt> collectBlockRealizes(const Stmt& stmt);
/** Find the (unique) block named `name`; fatal when absent. */
BlockPtr findBlock(const Stmt& stmt, const std::string& name);
/** Whether a block with the given name exists. */
bool hasBlock(const Stmt& stmt, const std::string& name);

/** Buffers loaded from within a statement (body-level, not signature). */
std::set<const BufferNode*> buffersRead(const Stmt& stmt);
/** Buffers stored to within a statement (body-level, not signature). */
std::set<const BufferNode*> buffersWritten(const Stmt& stmt);

/** Apply `fn` to each statement node, pre-order. */
void preOrderVisit(const Stmt& stmt,
                   const std::function<void(const StmtNode*)>& fn);

} // namespace tir

#endif // TENSORIR_IR_TRANSFORM_H
