/**
 * @file
 * TensorIR expression AST: scalar expressions, variables, buffer loads and
 * opaque intrinsic calls. Nodes are immutable and shared; Var and Buffer
 * identity is pointer identity.
 */
#ifndef TENSORIR_IR_EXPR_H
#define TENSORIR_IR_EXPR_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/type.h"
#include "support/logging.h"

namespace tir {

/** Discriminator for every expression node. */
enum class ExprKind : uint8_t {
    kIntImm,
    kFloatImm,
    kStringImm,
    kVar,
    // Binary arithmetic / comparison / logic (all share BinaryNode).
    kAdd,
    kSub,
    kMul,
    kDiv, // floating-point division
    kFloorDiv,
    kFloorMod,
    kMin,
    kMax,
    kEQ,
    kNE,
    kLT,
    kLE,
    kGT,
    kGE,
    kAnd,
    kOr,
    kNot,
    kSelect,
    kCast,
    kBufferLoad,
    kBufferPtr,
    kCall,
};

class ExprNode;
/** Shared immutable expression handle. */
using Expr = std::shared_ptr<const ExprNode>;

/** Base class of all expression nodes. */
class ExprNode
{
  public:
    const ExprKind kind;
    const DataType dtype;

    virtual ~ExprNode() = default;

  protected:
    ExprNode(ExprKind k, DataType t) : kind(k), dtype(t) {}
};

/** Integer immediate. */
class IntImmNode : public ExprNode
{
  public:
    const int64_t value;
    IntImmNode(int64_t v, DataType t) : ExprNode(ExprKind::kIntImm, t),
        value(v)
    {}
};

/** Floating-point immediate. */
class FloatImmNode : public ExprNode
{
  public:
    const double value;
    FloatImmNode(double v, DataType t) : ExprNode(ExprKind::kFloatImm, t),
        value(v)
    {}
};

/** String immediate (used for annotations and intrinsic arguments). */
class StringImmNode : public ExprNode
{
  public:
    const std::string value;
    explicit StringImmNode(std::string v)
        : ExprNode(ExprKind::kStringImm, DataType::handle()),
          value(std::move(v))
    {}
};

/** A named scalar variable; identity is pointer identity. */
class VarNode : public ExprNode
{
  public:
    const std::string name;
    VarNode(std::string n, DataType t) : ExprNode(ExprKind::kVar, t),
        name(std::move(n))
    {}
};
/** Shared variable handle (pointer identity). */
using Var = std::shared_ptr<const VarNode>;

/** All binary operations; `kind` distinguishes the operator. */
class BinaryNode : public ExprNode
{
  public:
    const Expr a;
    const Expr b;
    BinaryNode(ExprKind k, DataType t, Expr lhs, Expr rhs)
        : ExprNode(k, t), a(std::move(lhs)), b(std::move(rhs))
    {}
};

/** Logical negation. */
class NotNode : public ExprNode
{
  public:
    const Expr a;
    explicit NotNode(Expr e)
        : ExprNode(ExprKind::kNot, DataType::boolean()), a(std::move(e))
    {}
};

/** Ternary select: cond ? tval : fval (both sides evaluated semantics). */
class SelectNode : public ExprNode
{
  public:
    const Expr cond;
    const Expr tval;
    const Expr fval;
    SelectNode(Expr c, Expr t, Expr f)
        : ExprNode(ExprKind::kSelect, t->dtype), cond(std::move(c)),
          tval(std::move(t)), fval(std::move(f))
    {}
};

/** Type conversion. */
class CastNode : public ExprNode
{
  public:
    const Expr value;
    CastNode(DataType t, Expr v) : ExprNode(ExprKind::kCast, t),
        value(std::move(v))
    {}
};

/**
 * A multi-dimensional buffer (the paper's first-class multi-dimensional
 * buffer element). Identity is pointer identity; schedule primitives that
 * re-layout data create new Buffer objects.
 */
class BufferNode
{
  public:
    const std::string name;
    const DataType dtype;
    /** Per-dimension extents (usually IntImm). */
    const std::vector<Expr> shape;
    /** Storage scope: "global", "shared", "local", "wmma.matrix_a", ... */
    const std::string scope;

    BufferNode(std::string n, DataType t, std::vector<Expr> s,
               std::string sc)
        : name(std::move(n)), dtype(t), shape(std::move(s)),
          scope(std::move(sc))
    {}

    /** Number of dimensions. */
    size_t ndim() const { return shape.size(); }

    /** Total number of elements; requires a constant shape. */
    int64_t numel() const;

    /** Constant extent of dimension i. */
    int64_t shapeInt(size_t i) const;
};
/** Shared buffer handle (pointer identity). */
using Buffer = std::shared_ptr<const BufferNode>;

/** Scalar load from a multi-dimensional buffer. */
class BufferLoadNode : public ExprNode
{
  public:
    const Buffer buffer;
    const std::vector<Expr> indices;
    BufferLoadNode(Buffer buf, std::vector<Expr> idx)
        : ExprNode(ExprKind::kBufferLoad, buf->dtype),
          buffer(std::move(buf)), indices(std::move(idx))
    {}
};

/**
 * Address of a buffer element, passed to opaque tensor-intrinsic calls
 * (e.g. wmma::mma_sync receives tile base addresses).
 */
class BufferPtrNode : public ExprNode
{
  public:
    const Buffer buffer;
    const std::vector<Expr> indices;
    BufferPtrNode(Buffer buf, std::vector<Expr> idx)
        : ExprNode(ExprKind::kBufferPtr, DataType::handle()),
          buffer(std::move(buf)), indices(std::move(idx))
    {}
};

/** Call to a named pure function or opaque hardware intrinsic. */
class CallNode : public ExprNode
{
  public:
    const std::string op;
    const std::vector<Expr> args;
    CallNode(DataType t, std::string o, std::vector<Expr> a)
        : ExprNode(ExprKind::kCall, t), op(std::move(o)), args(std::move(a))
    {}
};

// --- Constructors -----------------------------------------------------

Expr intImm(int64_t value, DataType dtype = DataType::i32());
Expr floatImm(double value, DataType dtype = DataType::f32());
Expr stringImm(std::string value);
Var var(std::string name, DataType dtype = DataType::i32());
Expr binary(ExprKind kind, Expr a, Expr b);
Expr notExpr(Expr a);
Expr select(Expr cond, Expr tval, Expr fval);
Expr cast(DataType dtype, Expr value);
Buffer makeBuffer(std::string name, std::vector<int64_t> shape,
                  DataType dtype = DataType::f32(),
                  std::string scope = "global");
Buffer makeBufferE(std::string name, std::vector<Expr> shape,
                   DataType dtype = DataType::f32(),
                   std::string scope = "global");
Expr bufferLoad(Buffer buffer, std::vector<Expr> indices);
Expr bufferPtr(Buffer buffer, std::vector<Expr> indices);
Expr call(DataType dtype, std::string op, std::vector<Expr> args);

// --- Operator sugar (constant folding happens in arith, not here) -----

Expr operator+(const Expr& a, const Expr& b);
Expr operator-(const Expr& a, const Expr& b);
Expr operator*(const Expr& a, const Expr& b);
Expr operator+(const Expr& a, int64_t b);
Expr operator-(const Expr& a, int64_t b);
Expr operator*(const Expr& a, int64_t b);
Expr floordiv(const Expr& a, const Expr& b);
Expr floormod(const Expr& a, const Expr& b);
Expr floordiv(const Expr& a, int64_t b);
Expr floormod(const Expr& a, int64_t b);
Expr div(const Expr& a, const Expr& b);
Expr minExpr(const Expr& a, const Expr& b);
Expr maxExpr(const Expr& a, const Expr& b);
Expr eq(const Expr& a, const Expr& b);
Expr ne(const Expr& a, const Expr& b);
Expr lt(const Expr& a, const Expr& b);
Expr le(const Expr& a, const Expr& b);
Expr gt(const Expr& a, const Expr& b);
Expr ge(const Expr& a, const Expr& b);
Expr land(const Expr& a, const Expr& b);
Expr lor(const Expr& a, const Expr& b);

/** True if `e` is an IntImm; writes the value to `out` when non-null. */
bool isConstInt(const Expr& e, int64_t* out = nullptr);
/** Constant extent of `e` or -1 when symbolic. */
int64_t constIntOr(const Expr& e, int64_t fallback);

} // namespace tir

#endif // TENSORIR_IR_EXPR_H
