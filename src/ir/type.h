/**
 * @file
 * Scalar data types carried by every TensorIR expression and buffer.
 */
#ifndef TENSORIR_IR_TYPE_H
#define TENSORIR_IR_TYPE_H

#include <cstdint>
#include <string>

#include "support/logging.h"

namespace tir {

/** Type-code portion of a DataType. */
enum class DTypeCode : uint8_t { kInt, kUInt, kFloat, kBool, kHandle };

/**
 * A scalar data type: code + bit width. Mirrors the paper's buffer dtypes
 * ("float16", "float32", "int8", ...).
 */
class DataType
{
  public:
    constexpr DataType() : code_(DTypeCode::kInt), bits_(32) {}
    constexpr DataType(DTypeCode code, int bits) : code_(code), bits_(bits) {}

    static constexpr DataType f16() { return {DTypeCode::kFloat, 16}; }
    static constexpr DataType f32() { return {DTypeCode::kFloat, 32}; }
    static constexpr DataType f64() { return {DTypeCode::kFloat, 64}; }
    static constexpr DataType i8() { return {DTypeCode::kInt, 8}; }
    static constexpr DataType u8() { return {DTypeCode::kUInt, 8}; }
    static constexpr DataType i32() { return {DTypeCode::kInt, 32}; }
    static constexpr DataType i64() { return {DTypeCode::kInt, 64}; }
    static constexpr DataType boolean() { return {DTypeCode::kBool, 1}; }
    static constexpr DataType handle() { return {DTypeCode::kHandle, 64}; }

    constexpr DTypeCode code() const { return code_; }
    constexpr int bits() const { return bits_; }
    /** Storage size in bytes (bool counts as one byte). */
    constexpr int bytes() const { return bits_ <= 8 ? 1 : bits_ / 8; }

    constexpr bool isFloat() const { return code_ == DTypeCode::kFloat; }
    constexpr bool
    isInt() const
    {
        return code_ == DTypeCode::kInt || code_ == DTypeCode::kUInt;
    }
    constexpr bool isBool() const { return code_ == DTypeCode::kBool; }
    constexpr bool isHandle() const { return code_ == DTypeCode::kHandle; }

    constexpr bool
    operator==(const DataType& other) const
    {
        return code_ == other.code_ && bits_ == other.bits_;
    }
    constexpr bool
    operator!=(const DataType& other) const
    {
        return !(*this == other);
    }

    /** Render as e.g. "float32" / "int8" / "bool". */
    std::string
    str() const
    {
        switch (code_) {
          case DTypeCode::kInt:
            return "int" + std::to_string(bits_);
          case DTypeCode::kUInt:
            return "uint" + std::to_string(bits_);
          case DTypeCode::kFloat:
            return "float" + std::to_string(bits_);
          case DTypeCode::kBool:
            return "bool";
          case DTypeCode::kHandle:
            return "handle";
        }
        TIR_PANIC << "unreachable dtype code";
    }

    /** Parse "float32"-style strings. */
    static DataType
    parse(const std::string& s)
    {
        if (s == "bool") return boolean();
        if (s == "handle") return handle();
        auto take = [&](const std::string& prefix, DTypeCode code,
                        DataType* out) {
            if (s.rfind(prefix, 0) == 0) {
                *out = DataType(code, std::stoi(s.substr(prefix.size())));
                return true;
            }
            return false;
        };
        DataType result;
        if (take("uint", DTypeCode::kUInt, &result)) return result;
        if (take("int", DTypeCode::kInt, &result)) return result;
        if (take("float", DTypeCode::kFloat, &result)) return result;
        TIR_FATAL << "cannot parse dtype: " << s;
    }

  private:
    DTypeCode code_;
    int bits_;
};

} // namespace tir

#endif // TENSORIR_IR_TYPE_H
