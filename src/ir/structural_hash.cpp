#include "ir/structural_hash.h"

#include <unordered_map>

namespace tir {

namespace {

/** FNV-1a style combiner. */
uint64_t
combine(uint64_t seed, uint64_t value)
{
    seed ^= value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
    return seed;
}

/** Hashes with de-Bruijn-style variable/buffer numbering. */
class Hasher
{
  public:
    uint64_t
    hashExpr(const Expr& e)
    {
        uint64_t h = combine(0x45d9f3b, static_cast<uint64_t>(e->kind));
        h = combine(h, static_cast<uint64_t>(e->dtype.code()));
        h = combine(h, static_cast<uint64_t>(e->dtype.bits()));
        switch (e->kind) {
          case ExprKind::kIntImm:
            return combine(h, static_cast<uint64_t>(
                                  static_cast<const IntImmNode&>(*e)
                                      .value));
          case ExprKind::kFloatImm: {
            double v = static_cast<const FloatImmNode&>(*e).value;
            uint64_t bits;
            static_assert(sizeof(bits) == sizeof(v));
            __builtin_memcpy(&bits, &v, sizeof(bits));
            return combine(h, bits);
          }
          case ExprKind::kStringImm: {
            const std::string& s =
                static_cast<const StringImmNode&>(*e).value;
            for (char c : s) h = combine(h, static_cast<uint64_t>(c));
            return h;
          }
          case ExprKind::kVar:
            return combine(
                h, varId(static_cast<const VarNode*>(e.get())));
          case ExprKind::kNot:
            return combine(h,
                           hashExpr(static_cast<const NotNode&>(*e).a));
          case ExprKind::kSelect: {
            const auto& n = static_cast<const SelectNode&>(*e);
            h = combine(h, hashExpr(n.cond));
            h = combine(h, hashExpr(n.tval));
            return combine(h, hashExpr(n.fval));
          }
          case ExprKind::kCast:
            return combine(
                h, hashExpr(static_cast<const CastNode&>(*e).value));
          case ExprKind::kBufferLoad: {
            const auto& n = static_cast<const BufferLoadNode&>(*e);
            h = combine(h, bufferId(n.buffer));
            for (const Expr& idx : n.indices) {
                h = combine(h, hashExpr(idx));
            }
            return h;
          }
          case ExprKind::kBufferPtr: {
            const auto& n = static_cast<const BufferPtrNode&>(*e);
            h = combine(h, bufferId(n.buffer));
            for (const Expr& idx : n.indices) {
                h = combine(h, hashExpr(idx));
            }
            return h;
          }
          case ExprKind::kCall: {
            const auto& n = static_cast<const CallNode&>(*e);
            for (char c : n.op) h = combine(h, static_cast<uint64_t>(c));
            for (const Expr& arg : n.args) {
                h = combine(h, hashExpr(arg));
            }
            return h;
          }
          default: {
            const auto& n = static_cast<const BinaryNode&>(*e);
            h = combine(h, hashExpr(n.a));
            return combine(h, hashExpr(n.b));
          }
        }
    }

    uint64_t
    hashStmt(const Stmt& s)
    {
        uint64_t h = combine(0x2545F491,
                             static_cast<uint64_t>(s->kind));
        switch (s->kind) {
          case StmtKind::kBufferStore: {
            const auto& n = static_cast<const BufferStoreNode&>(*s);
            h = combine(h, bufferId(n.buffer));
            h = combine(h, hashExpr(n.value));
            for (const Expr& idx : n.indices) {
                h = combine(h, hashExpr(idx));
            }
            return h;
          }
          case StmtKind::kEvaluate:
            return combine(
                h, hashExpr(static_cast<const EvaluateNode&>(*s).value));
          case StmtKind::kSeq: {
            for (const Stmt& sub :
                 static_cast<const SeqStmtNode&>(*s).seq) {
                h = combine(h, hashStmt(sub));
            }
            return h;
          }
          case StmtKind::kIfThenElse: {
            const auto& n = static_cast<const IfThenElseNode&>(*s);
            h = combine(h, hashExpr(n.cond));
            h = combine(h, hashStmt(n.then_case));
            if (n.else_case) h = combine(h, hashStmt(n.else_case));
            return h;
          }
          case StmtKind::kFor: {
            const auto& n = static_cast<const ForNode&>(*s);
            h = combine(h, static_cast<uint64_t>(n.for_kind));
            for (char c : n.thread_tag) {
                h = combine(h, static_cast<uint64_t>(c));
            }
            defineVar(n.loop_var.get());
            h = combine(h, hashExpr(n.min));
            h = combine(h, hashExpr(n.extent));
            return combine(h, hashStmt(n.body));
          }
          case StmtKind::kBlock:
            return combine(
                h, hashBlock(static_cast<const BlockNode&>(*s)));
          case StmtKind::kBlockRealize: {
            const auto& n = static_cast<const BlockRealizeNode&>(*s);
            // Define block iterators before hashing bindings so the
            // ordering matches comparison semantics.
            for (const IterVar& iv : n.block->iter_vars) {
                defineVar(iv.var.get());
            }
            for (const Expr& v : n.iter_values) {
                h = combine(h, hashExpr(v));
            }
            h = combine(h, hashExpr(n.predicate));
            return combine(h, hashBlock(*n.block));
          }
        }
        TIR_PANIC << "unreachable stmt kind";
    }

    uint64_t
    hashBlock(const BlockNode& block)
    {
        uint64_t h = 0x1000193;
        for (const IterVar& iv : block.iter_vars) {
            defineVar(iv.var.get());
            h = combine(h, static_cast<uint64_t>(iv.type));
            h = combine(h, hashExpr(iv.dom.min));
            h = combine(h, hashExpr(iv.dom.extent));
        }
        auto hash_regions = [&](const std::vector<BufferRegion>& regions) {
            for (const BufferRegion& br : regions) {
                h = combine(h, bufferId(br.buffer));
                for (const Range& r : br.region) {
                    h = combine(h, hashExpr(r.min));
                    h = combine(h, hashExpr(r.extent));
                }
            }
        };
        hash_regions(block.reads);
        hash_regions(block.writes);
        for (const Buffer& alloc : block.alloc_buffers) {
            h = combine(h, bufferId(alloc));
        }
        if (block.init) h = combine(h, hashStmt(block.init));
        return combine(h, hashStmt(block.body));
    }

    uint64_t
    bufferId(const Buffer& buffer)
    {
        auto it = buffer_ids_.find(buffer.get());
        uint64_t id;
        if (it != buffer_ids_.end()) {
            id = it->second;
        } else {
            id = buffer_ids_.size();
            buffer_ids_[buffer.get()] = id;
        }
        uint64_t h = combine(0x811c9dc5, id);
        h = combine(h, static_cast<uint64_t>(buffer->dtype.code()));
        h = combine(h, static_cast<uint64_t>(buffer->dtype.bits()));
        for (const Expr& dim : buffer->shape) {
            h = combine(h, static_cast<uint64_t>(constIntOr(dim, -1)));
        }
        for (char c : buffer->scope) {
            h = combine(h, static_cast<uint64_t>(c));
        }
        return h;
    }

    void
    defineVar(const VarNode* v)
    {
        if (!var_ids_.count(v)) var_ids_[v] = var_ids_.size();
    }

    uint64_t
    varId(const VarNode* v)
    {
        defineVar(v); // free vars get ids in first-use order
        return var_ids_[v];
    }

  private:
    std::unordered_map<const VarNode*, uint64_t> var_ids_;
    std::unordered_map<const BufferNode*, uint64_t> buffer_ids_;
};

} // namespace

uint64_t
structuralHash(const Expr& expr)
{
    Hasher hasher;
    return hasher.hashExpr(expr);
}

uint64_t
structuralHash(const Stmt& stmt)
{
    Hasher hasher;
    return hasher.hashStmt(stmt);
}

uint64_t
structuralHash(const PrimFunc& func)
{
    Hasher hasher;
    uint64_t h = 0x6a09e667;
    for (const Buffer& param : func->params) {
        h = combine(h, hasher.bufferId(param));
    }
    return combine(h, hasher.hashStmt(func->body));
}

} // namespace tir
