#include "ir/stmt.h"

namespace tir {

BufferRegion
BufferRegion::full(const Buffer& b)
{
    std::vector<Range> region;
    region.reserve(b->ndim());
    for (const Expr& dim : b->shape) region.emplace_back(intImm(0), dim);
    return {b, std::move(region)};
}

Stmt
bufferStore(Buffer buffer, Expr value, std::vector<Expr> indices)
{
    TIR_ICHECK(buffer->ndim() == indices.size())
        << "store to " << buffer->name << ": " << indices.size()
        << " indices for " << buffer->ndim() << " dims";
    return std::make_shared<BufferStoreNode>(std::move(buffer),
                                             std::move(value),
                                             std::move(indices));
}

Stmt
evaluate(Expr value)
{
    return std::make_shared<EvaluateNode>(std::move(value));
}

Stmt
seq(std::vector<Stmt> stmts)
{
    std::vector<Stmt> flat;
    for (Stmt& s : stmts) {
        if (!s) continue;
        if (s->kind == StmtKind::kSeq) {
            const auto* inner = static_cast<const SeqStmtNode*>(s.get());
            flat.insert(flat.end(), inner->seq.begin(), inner->seq.end());
        } else {
            flat.push_back(std::move(s));
        }
    }
    TIR_ICHECK(!flat.empty()) << "empty statement sequence";
    if (flat.size() == 1) return flat[0];
    return std::make_shared<SeqStmtNode>(std::move(flat));
}

Stmt
ifThenElse(Expr cond, Stmt then_case, Stmt else_case)
{
    return std::make_shared<IfThenElseNode>(std::move(cond),
                                            std::move(then_case),
                                            std::move(else_case));
}

Stmt
makeFor(Var loop_var, Expr min, Expr extent, Stmt body, ForKind kind,
        std::string thread_tag, std::map<std::string, Expr> annotations)
{
    return std::make_shared<ForNode>(std::move(loop_var), std::move(min),
                                     std::move(extent), kind,
                                     std::move(body), std::move(thread_tag),
                                     std::move(annotations));
}

BlockPtr
makeBlock(std::string name, std::vector<IterVar> iter_vars,
          std::vector<BufferRegion> reads, std::vector<BufferRegion> writes,
          Stmt body, Stmt init, std::vector<Buffer> allocs,
          std::map<std::string, Expr> annotations)
{
    return std::make_shared<BlockNode>(std::move(name),
                                       std::move(iter_vars),
                                       std::move(reads), std::move(writes),
                                       std::move(init), std::move(body),
                                       std::move(allocs),
                                       std::move(annotations));
}

Stmt
blockRealize(std::vector<Expr> iter_values, Expr predicate, BlockPtr block)
{
    return std::make_shared<BlockRealizeNode>(std::move(iter_values),
                                              std::move(predicate),
                                              std::move(block));
}

PrimFunc
makeFunc(std::string name, std::vector<Buffer> params, Stmt body,
         std::map<std::string, Expr> attrs)
{
    return std::make_shared<PrimFuncNode>(std::move(name),
                                          std::move(params),
                                          std::move(body),
                                          std::move(attrs));
}

Stmt
makeRootBlock(Stmt body, std::vector<Buffer> allocs)
{
    BlockPtr root = makeBlock("root", {}, {}, {}, std::move(body), nullptr,
                              std::move(allocs));
    return blockRealize({}, intImm(1, DataType::boolean()), std::move(root));
}

Stmt
storageSync(std::string scope)
{
    return evaluate(call(DataType::handle(), kStorageSyncOp,
                         {stringImm(std::move(scope))}));
}

std::optional<std::string>
asStorageSync(const StmtNode& stmt)
{
    if (stmt.kind != StmtKind::kEvaluate) return std::nullopt;
    const Expr& value = static_cast<const EvaluateNode&>(stmt).value;
    if (value->kind != ExprKind::kCall) return std::nullopt;
    const auto& callee = static_cast<const CallNode&>(*value);
    if (callee.op != kStorageSyncOp) return std::nullopt;
    if (callee.args.size() == 1 &&
        callee.args[0]->kind == ExprKind::kStringImm) {
        return static_cast<const StringImmNode&>(*callee.args[0]).value;
    }
    return std::string("shared");
}

const BlockNode*
asBlockRealize(const Stmt& stmt, std::vector<Expr>* values)
{
    TIR_ICHECK(stmt && stmt->kind == StmtKind::kBlockRealize)
        << "expected BlockRealize";
    const auto* realize = static_cast<const BlockRealizeNode*>(stmt.get());
    if (values) *values = realize->iter_values;
    return realize->block.get();
}

} // namespace tir
