#include "ir/transform.h"

namespace tir {

namespace {

/** Substitutes vars and remaps buffers via the functor hooks. */
class Substituter : public StmtExprMutator
{
  public:
    Substituter(const VarMap* vmap, const BufferMap* bmap)
        : vmap_(vmap), bmap_(bmap)
    {}

  protected:
    Expr
    mutateVar(const Expr& e) override
    {
        if (!vmap_) return e;
        auto it = vmap_->find(static_cast<const VarNode*>(e.get()));
        return it == vmap_->end() ? e : it->second;
    }

    Buffer
    mutateBuffer(const Buffer& b) override
    {
        if (!bmap_) return b;
        auto it = bmap_->find(b.get());
        return it == bmap_->end() ? b : it->second;
    }

  private:
    const VarMap* vmap_;
    const BufferMap* bmap_;
};

/** Deep copy that freshens every bound variable. */
class FreshCopier : public StmtExprMutator
{
  public:
    explicit FreshCopier(std::string suffix) : suffix_(std::move(suffix)) {}

    Expr
    mutateVar(const Expr& e) override
    {
        auto it = remap_.find(static_cast<const VarNode*>(e.get()));
        return it == remap_.end() ? e : Expr(it->second);
    }

  protected:
    Stmt
    mutateFor(const Stmt& s) override
    {
        const auto& n = static_cast<const ForNode&>(*s);
        Var fresh = var(n.loop_var->name + suffix_, n.loop_var->dtype);
        remap_[n.loop_var.get()] = fresh;
        Expr mn = mutateExpr(n.min);
        Expr ext = mutateExpr(n.extent);
        Stmt body = mutateStmt(n.body);
        return makeFor(fresh, mn, ext, body, n.for_kind, n.thread_tag,
                       n.annotations);
    }

    BlockPtr
    mutateBlockNode(const BlockPtr& block) override
    {
        for (const IterVar& iv : block->iter_vars) {
            remap_[iv.var.get()] =
                var(iv.var->name + suffix_, iv.var->dtype);
        }
        BlockPtr copied = StmtExprMutator::mutateBlockNode(block);
        // Force a rebuild with the fresh iterator vars even if nothing in
        // the ranges changed.
        std::vector<IterVar> iters;
        iters.reserve(copied->iter_vars.size());
        for (size_t i = 0; i < copied->iter_vars.size(); ++i) {
            const IterVar& iv = copied->iter_vars[i];
            Var fresh = remap_.at(block->iter_vars[i].var.get());
            iters.emplace_back(fresh, iv.dom, iv.type);
        }
        return makeBlock(copied->name, std::move(iters), copied->reads,
                         copied->writes, copied->body, copied->init,
                         copied->alloc_buffers, copied->annotations);
    }

  private:
    std::string suffix_;
    std::unordered_map<const VarNode*, Var> remap_;
};

class VarCollector : public StmtExprVisitor
{
  public:
    std::set<const VarNode*> vars;

  protected:
    void
    visitVar(const VarNode& node) override
    {
        vars.insert(&node);
    }
};

class BlockCollector : public StmtExprVisitor
{
  public:
    std::vector<BlockPtr> blocks;
    std::vector<Stmt> realizes;

    void collectFrom(const Stmt& s) { visitStmt(s); }

  protected:
    void
    visitBlockRealize(const BlockRealizeNode& node) override
    {
        blocks.push_back(node.block);
        StmtExprVisitor::visitBlockRealize(node);
    }
};

class RealizeCollector : public StmtExprVisitor
{
  public:
    std::vector<Stmt> realizes;
    const Stmt* current = nullptr;

    void
    visitStmt(const Stmt& s) override
    {
        if (s->kind == StmtKind::kBlockRealize) realizes.push_back(s);
        StmtExprVisitor::visitStmt(s);
    }
};

class AccessCollector : public StmtExprVisitor
{
  public:
    std::set<const BufferNode*> reads;
    std::set<const BufferNode*> writes;

  protected:
    void
    visitBufferLoad(const BufferLoadNode& node) override
    {
        reads.insert(node.buffer.get());
        StmtExprVisitor::visitBufferLoad(node);
    }
    void
    visitBufferStore(const BufferStoreNode& node) override
    {
        writes.insert(node.buffer.get());
        StmtExprVisitor::visitBufferStore(node);
    }
};

} // namespace

Expr
substitute(const Expr& expr, const VarMap& vmap)
{
    Substituter sub(&vmap, nullptr);
    return sub.mutateExpr(expr);
}

Stmt
substitute(const Stmt& stmt, const VarMap& vmap)
{
    Substituter sub(&vmap, nullptr);
    return sub.mutateStmt(stmt);
}

Stmt
substituteBuffers(const Stmt& stmt, const BufferMap& bmap)
{
    Substituter sub(nullptr, &bmap);
    return sub.mutateStmt(stmt);
}

Stmt
substitute(const Stmt& stmt, const VarMap& vmap, const BufferMap& bmap)
{
    Substituter sub(&vmap, &bmap);
    return sub.mutateStmt(stmt);
}

Stmt
copyWithFreshVars(const Stmt& stmt, const std::string& suffix)
{
    FreshCopier copier(suffix);
    return copier.mutateStmt(stmt);
}

std::set<const VarNode*>
collectVars(const Expr& expr)
{
    VarCollector collector;
    collector.visitExpr(expr);
    return std::move(collector.vars);
}

bool
usesVar(const Expr& expr, const VarNode* v)
{
    return collectVars(expr).count(v) > 0;
}

std::vector<BlockPtr>
collectBlocks(const Stmt& stmt)
{
    BlockCollector collector;
    collector.collectFrom(stmt);
    return std::move(collector.blocks);
}

std::vector<Stmt>
collectBlockRealizes(const Stmt& stmt)
{
    RealizeCollector collector;
    collector.visitStmt(stmt);
    return std::move(collector.realizes);
}

BlockPtr
findBlock(const Stmt& stmt, const std::string& name)
{
    for (const BlockPtr& block : collectBlocks(stmt)) {
        if (block->name == name) return block;
    }
    TIR_FATAL << "no block named '" << name << "'";
}

bool
hasBlock(const Stmt& stmt, const std::string& name)
{
    for (const BlockPtr& block : collectBlocks(stmt)) {
        if (block->name == name) return true;
    }
    return false;
}

std::set<const BufferNode*>
buffersRead(const Stmt& stmt)
{
    AccessCollector collector;
    collector.visitStmt(stmt);
    return std::move(collector.reads);
}

std::set<const BufferNode*>
buffersWritten(const Stmt& stmt)
{
    AccessCollector collector;
    collector.visitStmt(stmt);
    return std::move(collector.writes);
}

namespace {

class PreOrder : public StmtExprVisitor
{
  public:
    explicit PreOrder(const std::function<void(const StmtNode*)>& fn)
        : fn_(fn)
    {}

    void
    visitStmt(const Stmt& s) override
    {
        fn_(s.get());
        StmtExprVisitor::visitStmt(s);
    }

  private:
    const std::function<void(const StmtNode*)>& fn_;
};

} // namespace

void
preOrderVisit(const Stmt& stmt,
              const std::function<void(const StmtNode*)>& fn)
{
    PreOrder visitor(fn);
    visitor.visitStmt(stmt);
}

} // namespace tir
