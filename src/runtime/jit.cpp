#include "runtime/jit.h"

#include <dlfcn.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <algorithm>
#include <cctype>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "ir/structural_hash.h"
#include "runtime/vm.h"
#include "support/env.h"
#include "support/failpoint.h"
#include "support/trace.h"
#include "tir/analysis/analysis.h"

namespace tir {
namespace runtime {

namespace fs = std::filesystem;

namespace {

/** Bumped whenever emitJitC changes the meaning of cached objects;
 *  part of the cache key so stale .so files from an older emitter are
 *  never loaded. */
constexpr uint64_t kEmitterVersion = 1;

constexpr const char* kCompileFlags =
    "-O2 -fPIC -shared -ffp-contract=off";

struct AtomicStats
{
    std::atomic<uint64_t> memory_hits{0};
    std::atomic<uint64_t> disk_hits{0};
    std::atomic<uint64_t> compiles{0};
    std::atomic<uint64_t> compile_failures{0};
    std::atomic<uint64_t> recompiles{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> vm_fallbacks{0};
};

/** Process-wide JIT state: module/failure caches, single-flight
 *  bookkeeping, per-compiler probe and identity caches. */
struct JitState
{
    std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<uint64_t, std::shared_ptr<const JitModule>>
        modules;
    std::unordered_set<uint64_t> failed;
    std::unordered_set<uint64_t> inflight;
    std::unordered_map<std::string, bool> probe;
    std::unordered_map<std::string, std::string> identity;
    AtomicStats stats;
};

JitState&
state()
{
    static JitState* s = new JitState();
    return *s;
}

std::optional<Engine>&
engineOverrideSlot()
{
    // Thread-local: a ScopedEngine installed by one tuning session
    // must not leak into another running concurrently on a different
    // thread (the schedule server runs background autoTune jobs in
    // parallel). Every runtime::execute in a search happens on the
    // thread that owns the session — the sequential measurement fold —
    // so per-thread scoping is exactly per-session scoping.
    static thread_local std::optional<Engine> value;
    return value;
}

/** Shell-quote `s` for /bin/sh (single quotes, ' escaped). */
std::string
shellQuote(const std::string& s)
{
    std::string out = "'";
    for (char c : s) {
        if (c == '\'') {
            out += "'\\''";
        } else {
            out += c;
        }
    }
    out += "'";
    return out;
}

std::string
compilerPath()
{
    const char* env = std::getenv("TENSORIR_CC");
    return (env && *env) ? env : "cc";
}

/** First line of `cc --version`, cached per path; the path itself when
 *  the compiler cannot be queried. Part of the cache key so switching
 *  compilers (or upgrading one) invalidates cached objects. */
std::string
compilerIdentity(const std::string& cc)
{
    JitState& st = state();
    {
        std::lock_guard<std::mutex> lk(st.mu);
        auto it = st.identity.find(cc);
        if (it != st.identity.end()) return it->second;
    }
    std::string line;
    std::string cmd = shellQuote(cc) + " --version 2>/dev/null";
    if (FILE* pipe = popen(cmd.c_str(), "r")) {
        char buf[256];
        if (fgets(buf, sizeof(buf), pipe)) {
            line = buf;
            while (!line.empty() &&
                   (line.back() == '\n' || line.back() == '\r')) {
                line.pop_back();
            }
        }
        pclose(pipe);
    }
    if (line.empty()) line = cc;
    std::lock_guard<std::mutex> lk(st.mu);
    st.identity.emplace(cc, line);
    return line;
}

uint64_t
fnv1a(const std::string& s)
{
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

uint64_t
mix(uint64_t h, uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 12) + (h >> 4);
    return h;
}

/** Cache key: structural hash of the function mixed with everything
 *  that changes the produced machine code. */
uint64_t
cacheKeyFor(const PrimFunc& func)
{
    std::string cc = compilerPath();
    uint64_t h = structuralHash(func);
    h = mix(h, fnv1a(cc));
    h = mix(h, fnv1a(compilerIdentity(cc)));
    h = mix(h, fnv1a(kCompileFlags));
    h = mix(h, kEmitterVersion);
    return h;
}

std::string
hexKey(uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

uint64_t
cacheCapBytes()
{
    // Strict parsing via support::envUint (garbage, a sign character,
    // or ERANGE raise FatalError — std::strtoull alone would wrap
    // "-1" to a huge positive cap); a large-but-parseable megabyte
    // count that would overflow the byte multiply clamps to
    // UINT64_MAX instead of wrapping.
    uint64_t mb = support::envUint("TENSORIR_JIT_CACHE_MB", 64);
    constexpr uint64_t kMaxMb =
        std::numeric_limits<uint64_t>::max() / (1024ull * 1024ull);
    if (mb > kMaxMb) return std::numeric_limits<uint64_t>::max();
    return mb * 1024 * 1024;
}

/** flock-based cross-process lock; best effort (a failure to open the
 *  lock file degrades to in-process locking only).
 *
 *  Fork-safety (audited for the measurement runner, meta/runner.h):
 *  an flock lock belongs to the *open file description*, which fork
 *  shares — a child forked while this lock is held co-owns it, and the
 *  parent's explicit LOCK_UN below still releases it for both (the
 *  lock does not leak even if the child keeps its copy of the fd).
 *  The runner avoids even that aliasing: measurement workers close
 *  every inherited descriptor except their pipes on startup, and
 *  worker forks never happen from inside jitCompile (compilation is
 *  parent-side; the fork-server spawns before measurement begins and
 *  respawns only from the search's sequential measurement fold). */
class FileLock
{
  public:
    explicit FileLock(const fs::path& path)
    {
        fd_ = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
        if (fd_ >= 0) ::flock(fd_, LOCK_EX);
    }
    ~FileLock()
    {
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
        }
    }
    FileLock(const FileLock&) = delete;
    FileLock& operator=(const FileLock&) = delete;

  private:
    int fd_ = -1;
};

bool
writeFileAtomic(const fs::path& target, const std::string& contents)
{
    fs::path tmp = target;
    tmp += ".tmp." + std::to_string(static_cast<long>(::getpid()));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) return false;
        out.write(contents.data(),
                  static_cast<std::streamsize>(contents.size()));
        if (!out) return false;
    }
    std::error_code ec;
    fs::rename(tmp, target, ec);
    if (ec) fs::remove(tmp, ec);
    return !ec;
}

/** Run the compiler on an already-written source file, publishing the
 *  object atomically (compile to .so.tmp.<pid>, rename). stderr goes
 *  to a .log file next to the object, kept only on failure. */
bool
runCompiler(const fs::path& csrc, const fs::path& so,
            const std::string& func_name)
{
    trace::Span span("jit.compile", trace::arg("func", func_name));
    // Simulated toolchain breakage for the fallback tests.
    if (failpoint::inject("jit.compile")) return false;
    fs::path tmp = so;
    tmp += ".tmp." + std::to_string(static_cast<long>(::getpid()));
    fs::path log = so;
    log.replace_extension(".log");
    std::string cmd = shellQuote(compilerPath()) + " " + kCompileFlags +
                      " -o " + shellQuote(tmp.string()) + " " +
                      shellQuote(csrc.string()) + " -lm 2>" +
                      shellQuote(log.string());
    int rc = std::system(cmd.c_str());
    std::error_code ec;
    if (rc != 0) {
        fs::remove(tmp, ec);
        return false;
    }
    fs::rename(tmp, so, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    fs::remove(log, ec);
    return true;
}

/** Oldest-mtime-first eviction down to TENSORIR_JIT_CACHE_MB, never
 *  touching the object just produced. Unlinking a dlopened .so is safe
 *  on POSIX (the mapping keeps the inode alive). */
void
evictCache(const fs::path& dir, const fs::path& keep)
{
    const uint64_t cap = cacheCapBytes();
    struct Entry
    {
        fs::path so;
        fs::file_time_type mtime;
        uint64_t bytes = 0;
    };
    std::vector<Entry> entries;
    uint64_t total = 0;
    std::error_code ec;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
        const fs::path& p = it->path();
        std::string name = p.filename().string();
        if (name.rfind("tir_", 0) != 0) continue;
        uint64_t sz = static_cast<uint64_t>(fs::file_size(p, ec));
        if (ec) {
            ec.clear();
            continue;
        }
        total += sz;
        if (p.extension() == ".so") {
            Entry e;
            e.so = p;
            e.mtime = fs::last_write_time(p, ec);
            ec.clear();
            // Companion source/log files are evicted with the object.
            e.bytes = sz;
            for (const char* ext : {".c", ".log"}) {
                fs::path side = p;
                side.replace_extension(ext);
                uint64_t ssz =
                    static_cast<uint64_t>(fs::file_size(side, ec));
                if (!ec) e.bytes += ssz;
                ec.clear();
            }
            entries.push_back(std::move(e));
        }
    }
    if (total <= cap) return;
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                  return a.mtime < b.mtime;
              });
    for (const Entry& e : entries) {
        if (total <= cap) break;
        if (e.so == keep) continue;
        for (const char* ext : {".so", ".c", ".log", ".lock"}) {
            fs::path victim = e.so;
            victim.replace_extension(ext);
            fs::remove(victim, ec);
            ec.clear();
        }
        total -= std::min(total, e.bytes);
        state().stats.evictions.fetch_add(1,
                                          std::memory_order_relaxed);
        trace::counterAdd("jit.cache.evict", 1);
    }
}

bool
probeToolchain(const std::string& cc)
{
    trace::Span span("jit.probe", trace::arg("cc", cc));
    std::error_code ec;
    fs::path dir = jitCacheDir();
    fs::create_directories(dir, ec);
    if (ec) return false;
    std::string tag = std::to_string(static_cast<long>(::getpid()));
    fs::path csrc = dir / ("probe_" + tag + ".c");
    fs::path so = dir / ("probe_" + tag + ".so");
    bool ok = false;
    if (writeFileAtomic(csrc,
                        "int tir_probe(void) { return 42; }\n")) {
        std::string cmd = shellQuote(cc) + " " + kCompileFlags +
                          " -o " + shellQuote(so.string()) + " " +
                          shellQuote(csrc.string()) +
                          " 2>/dev/null";
        if (std::system(cmd.c_str()) == 0) {
            if (void* h = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL)) {
                using ProbeFn = int (*)(void);
                auto* fn = reinterpret_cast<ProbeFn>(
                    dlsym(h, "tir_probe"));
                ok = fn && fn() == 42;
                dlclose(h);
            }
        }
    }
    fs::remove(csrc, ec);
    fs::remove(so, ec);
    return ok;
}

/** Emit, compile (or reuse the disk cache), dlopen, resolve the entry.
 *  nullptr on any failure — the caller records it and the engine falls
 *  back to the VM. Corrupt cached objects are deleted and recompiled
 *  once before giving up. */
std::shared_ptr<const JitModule>
buildModule(uint64_t key, const PrimFunc& func)
{
    JitState& st = state();
    if (!jitAvailable()) return nullptr;

    codegen::JitSource src;
    try {
        src = codegen::emitJitC(func);
    } catch (const std::exception& e) {
        trace::instant("jit.unsupported",
                       trace::arg("func", func->name));
        return nullptr;
    }

    std::error_code ec;
    fs::path dir = jitCacheDir();
    fs::create_directories(dir, ec);
    if (ec) return nullptr;
    std::string base = "tir_" + hexKey(key);
    fs::path so = dir / (base + ".so");
    fs::path csrc = dir / (base + ".c");
    // Cross-process single-flight: tuning workers racing on one kernel
    // serialise here, and the losers find the winner's object.
    FileLock lock(dir / (base + ".lock"));

    bool have_so = fs::exists(so, ec);
    ec.clear();
    for (int attempt = 0; attempt < 2; ++attempt) {
        bool compiled_now = false;
        if (!have_so) {
            st.stats.compiles.fetch_add(1, std::memory_order_relaxed);
            if (!writeFileAtomic(csrc, src.code) ||
                !runCompiler(csrc, so, func->name)) {
                st.stats.compile_failures.fetch_add(
                    1, std::memory_order_relaxed);
                return nullptr;
            }
            compiled_now = true;
        }
        void* handle = nullptr;
        // Simulated loader breakage for the fallback tests.
        if (!failpoint::inject("jit.dlopen")) {
            handle = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
        }
        if (handle) {
            void* sym = dlsym(handle, src.entry_symbol.c_str());
            if (sym) {
                if (!compiled_now) {
                    st.stats.disk_hits.fetch_add(
                        1, std::memory_order_relaxed);
                    trace::counterAdd("jit.cache.hit.disk", 1);
                    // Refresh the mtime so the LRU eviction treats
                    // reuse as recency.
                    fs::last_write_time(
                        so, fs::file_time_type::clock::now(), ec);
                    ec.clear();
                }
                evictCache(dir, so);
                return std::make_shared<JitModule>(
                    func, std::move(src), handle, so.string());
            }
            dlclose(handle);
            handle = nullptr;
        }
        // dlopen/dlsym failed: a truncated or corrupt cached object
        // (crash mid-write, bit rot, chaos schedule). Delete it and
        // recompile once.
        fs::remove(so, ec);
        ec.clear();
        if (attempt == 0 && !compiled_now) {
            st.stats.recompiles.fetch_add(1,
                                          std::memory_order_relaxed);
            trace::instant("jit.recover",
                           trace::arg("object", so.string()));
        }
        have_so = false;
        if (compiled_now) return nullptr;
    }
    return nullptr;
}

} // namespace

const char*
engineName(Engine engine)
{
    switch (engine) {
      case Engine::kTreeWalk: return "treewalk";
      case Engine::kVm: return "vm";
      case Engine::kJit: return "jit";
    }
    return "?";
}

std::optional<Engine>
parseEngineName(const std::string& name)
{
    if (name == "treewalk") return Engine::kTreeWalk;
    if (name == "vm") return Engine::kVm;
    if (name == "jit") return Engine::kJit;
    return std::nullopt;
}

Engine
selectedEngine()
{
    if (forceTreeWalk()) return Engine::kTreeWalk;
    if (engineOverrideSlot()) return *engineOverrideSlot();
    const char* env = std::getenv("TENSORIR_ENGINE");
    if (env && *env) {
        std::optional<Engine> parsed = parseEngineName(env);
        TIR_CHECK(parsed.has_value())
            << "TENSORIR_ENGINE=\"" << env
            << "\" is not an engine name (expected treewalk, vm or "
               "jit)";
        return *parsed;
    }
    return Engine::kVm;
}

void
setEngine(std::optional<Engine> engine)
{
    engineOverrideSlot() = engine;
}

std::optional<Engine>
engineOverride()
{
    return engineOverrideSlot();
}

JitModule::JitModule(PrimFunc func, codegen::JitSource source,
                     void* handle, std::string object_path)
    : func_(std::move(func)), buffers_(std::move(source.buffers)),
      num_params_(source.num_params), handle_(handle),
      entry_symbol_(std::move(source.entry_symbol)),
      object_path_(std::move(object_path))
{
    entry_ = reinterpret_cast<EntryFn>(
        dlsym(handle_, entry_symbol_.c_str()));
    TIR_CHECK(entry_ != nullptr)
        << "JIT object " << object_path_ << " lacks entry symbol "
        << entry_symbol_;
}

JitModule::~JitModule()
{
    if (handle_) dlclose(handle_);
}

void
JitModule::run(const std::vector<NDArray*>& args,
               std::optional<uint64_t> step_limit) const
{
    validateArguments(func_, args);
    trace::Span span("jit.run", trace::arg("func", func_->name));
    // Same failpoint site as the tree-walker and the VM so chaos
    // schedules exercise all three engines identically.
    if (failpoint::inject("interp.run")) {
        throw EvalError("injected interpreter fault (failpoint "
                        "interp.run) in " +
                        func_->name);
    }
    if (Interpreter::debugChecksEnabled()) {
        analysis::AnalysisReport report = analysis::analyzeFunc(func_);
        TIR_CHECK(report.ok())
            << "static memory analysis failed for " << func_->name
            << " before execution:\n"
            << report.summary();
    }
    const uint64_t limit =
        step_limit ? *step_limit : Interpreter::defaultStepLimit();

    std::vector<std::unique_ptr<NDArray>> locals;
    std::vector<double*> bufs(buffers_.size(), nullptr);
    for (size_t s = 0; s < buffers_.size(); ++s) {
        if (s < num_params_) {
            bufs[s] = args[s]->data();
        } else {
            const Buffer& b = buffers_[s];
            std::vector<int64_t> shape;
            shape.reserve(b->ndim());
            for (size_t d = 0; d < b->ndim(); ++d) {
                shape.push_back(b->shapeInt(d));
            }
            locals.push_back(
                std::make_unique<NDArray>(b->dtype, std::move(shape)));
            bufs[s] = locals.back()->data();
        }
    }
    int64_t rc = entry_(bufs.data(), static_cast<int64_t>(limit));
    if (rc != 0) {
        throw EvalError("interpreter step limit of " +
                        std::to_string(limit) +
                        " statements exceeded (runaway program?)");
    }
}

std::shared_ptr<const JitModule>
jitCompile(const PrimFunc& func)
{
    const uint64_t key = cacheKeyFor(func);
    JitState& st = state();
    std::unique_lock<std::mutex> lk(st.mu);
    for (;;) {
        auto it = st.modules.find(key);
        if (it != st.modules.end()) {
            st.stats.memory_hits.fetch_add(1,
                                           std::memory_order_relaxed);
            trace::counterAdd("jit.cache.hit.memory", 1);
            return it->second;
        }
        if (st.failed.count(key)) return nullptr;
        if (!st.inflight.count(key)) {
            st.inflight.insert(key);
            break;
        }
        // Single-flight: somebody else is compiling this key; wait for
        // the result instead of racing the compiler.
        st.cv.wait(lk);
    }
    lk.unlock();

    std::shared_ptr<const JitModule> mod;
    try {
        mod = buildModule(key, func);
    } catch (...) {
        lk.lock();
        st.inflight.erase(key);
        st.cv.notify_all();
        throw;
    }

    lk.lock();
    if (mod) {
        st.modules.emplace(key, mod);
    } else {
        st.failed.insert(key);
    }
    st.inflight.erase(key);
    st.cv.notify_all();
    return mod;
}

bool
jitAvailable()
{
    std::string cc = compilerPath();
    JitState& st = state();
    {
        std::lock_guard<std::mutex> lk(st.mu);
        auto it = st.probe.find(cc);
        if (it != st.probe.end()) return it->second;
    }
    bool ok = probeToolchain(cc);
    std::lock_guard<std::mutex> lk(st.mu);
    st.probe.emplace(cc, ok);
    return ok;
}

bool
jitTryRun(const PrimFunc& func, const std::vector<NDArray*>& args)
{
    std::shared_ptr<const JitModule> mod = jitCompile(func);
    if (!mod) {
        state().stats.vm_fallbacks.fetch_add(
            1, std::memory_order_relaxed);
        trace::counterAdd("jit.fallback", 1);
        return false;
    }
    mod->run(args);
    return true;
}

JitStats
jitStats()
{
    const AtomicStats& s = state().stats;
    JitStats out;
    out.memory_hits = s.memory_hits.load(std::memory_order_relaxed);
    out.disk_hits = s.disk_hits.load(std::memory_order_relaxed);
    out.compiles = s.compiles.load(std::memory_order_relaxed);
    out.compile_failures =
        s.compile_failures.load(std::memory_order_relaxed);
    out.recompiles = s.recompiles.load(std::memory_order_relaxed);
    out.evictions = s.evictions.load(std::memory_order_relaxed);
    out.vm_fallbacks = s.vm_fallbacks.load(std::memory_order_relaxed);
    return out;
}

uint64_t
jitCacheCapBytes()
{
    return cacheCapBytes();
}

std::string
jitCacheDir()
{
    const char* env = std::getenv("TENSORIR_JIT_CACHE");
    if (env && *env) return env;
    return "/tmp/tensorir-jit-cache-" +
           std::to_string(static_cast<long>(::getuid()));
}

std::string
jitObjectPathFor(const PrimFunc& func)
{
    fs::path dir = jitCacheDir();
    return (dir / ("tir_" + hexKey(cacheKeyFor(func)) + ".so"))
        .string();
}

void
jitResetForTesting()
{
    JitState& st = state();
    std::lock_guard<std::mutex> lk(st.mu);
    st.modules.clear();
    st.failed.clear();
    st.probe.clear();
    st.identity.clear();
    st.stats.memory_hits = 0;
    st.stats.disk_hits = 0;
    st.stats.compiles = 0;
    st.stats.compile_failures = 0;
    st.stats.recompiles = 0;
    st.stats.evictions = 0;
    st.stats.vm_fallbacks = 0;
}

} // namespace runtime
} // namespace tir
