/**
 * @file
 * Bytecode format for the TensorIR numeric virtual machine (runtime/vm.h).
 *
 * A lowered PrimFunc is flattened into a linear stream of fixed-size
 * register instructions. The register file is untyped storage
 * (int64/double union); the *opcode* carries the type, mirroring the
 * tree-walking interpreter's two evaluation domains (`evalInt` /
 * `evalValue`) so the VM reproduces its results bit for bit:
 *
 *  - Loop variables and block iterator bindings are register slots
 *    assigned at compile time — variable lookup costs nothing at
 *    runtime (the tree-walker pays a hash-map probe per reference).
 *  - Buffer access offsets compile to integer register arithmetic in
 *    row-major Horner form with constant folding: a fully constant
 *    index vector collapses into one preloaded constant register, a
 *    loop-varying one becomes a short base+stride mul/add chain (the
 *    generic fallback is the same instruction stream, just longer).
 *  - Constants are pooled: each distinct int64/double literal gets one
 *    register, initialized by a prelude executed once per run.
 *  - `Evaluate`-d opaque tensor intrinsics are resolved against the
 *    intrinsic registry snapshot at *compile* time; their arguments
 *    (buffer pointers, scalars) are pre-computed into registers and the
 *    kIntrin instruction dispatches straight through a function pointer
 *    table (runtime::CompiledFunc::intrins).
 */
#ifndef TENSORIR_RUNTIME_BYTECODE_H
#define TENSORIR_RUNTIME_BYTECODE_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ir/stmt.h"
#include "runtime/interpreter.h"

namespace tir {
namespace runtime {

/**
 * Operation codes. Suffix convention: `I` operates on the int64 view of
 * the register file, `F` on the double view. Operand fields per opcode
 * are documented inline as (dst, a, b | imm).
 */
enum class Op : uint8_t {
    /** End of program. */
    kHalt,
    /** Statement boundary: charge one unit of fuel; throws EvalError
     *  when the step limit is exceeded (same accounting points as
     *  Interpreter::exec, which counts one step per statement). */
    kStep,

    // --- Constants and moves -----------------------------------------
    /** regs[dst].i = imm. */
    kConstI,
    /** regs[dst].f = bit_cast<double>(imm). */
    kConstF,
    /** regs[dst].i = regs[a].i. */
    kMovI,
    /** regs[dst].f = regs[a].f. */
    kMovF,

    // --- Conversions (the interpreter's domain crossings) -------------
    /** regs[dst].f = double(regs[a].i). */
    kItoF,
    /** regs[dst].i = int64(trunc(regs[a].f))  (float -> int cast). */
    kFtoI,
    /** regs[dst].f = trunc(regs[a].f)  (float value cast to int dtype,
     *  staying in the value domain). */
    kTruncF,
    /** regs[dst].i = (regs[a].f != 0.0)  (float condition test). */
    kFNonzero,

    // --- Integer ALU (dst, a, b) ---------------------------------------
    kAddI,
    kSubI,
    kMulI,
    /** arith::floorDivInt — identical semantics to the tree-walker. */
    kFloorDivI,
    /** arith::floorModInt. */
    kFloorModI,
    kMinI,
    kMaxI,
    kEqI,
    kNeI,
    kLtI,
    kLeI,
    kGtI,
    kGeI,
    kAndI,
    kOrI,
    /** regs[dst].i = regs[a].i ? 0 : 1. */
    kNotI,

    // --- Float ALU (dst, a, b) -----------------------------------------
    kAddF,
    kSubF,
    kMulF,
    kDivF,
    kMinF,
    kMaxF,
    /** regs[dst].f = (regs[a].f == 0.0) ? 1.0 : 0.0. */
    kNotF,
    /** regs[dst].f = mathfn[fn](regs[a].f)  (exp/sqrt/tanh/erf/
     *  sigmoid/abs/log — the interpreter's pure-call table). */
    kCallF,

    // --- Memory (b = buffer slot, a = offset register) -----------------
    /** regs[dst].f = buffer[b][regs[a].i]  (raw double load). */
    kLoadF,
    /** regs[dst].i = int64(buffer[b][regs[a].i])  (int-domain load:
     *  truncating cast, as evalInt does on kBufferLoad). */
    kLoadI,
    /** buffer[b][regs[a].i] = regs[dst].f. */
    kStoreF,

    // --- Control flow (imm = absolute target pc) ------------------------
    kJump,
    /** if (regs[a].i == 0) pc = imm. */
    kJumpIfZero,
    /** if (regs[a].i >= regs[b].i) pc = imm  (loop exit test). */
    kJumpIfGeI,
    /** regs[a].i += 1; pc = imm  (fused loop back-edge). */
    kIncJump,

    // --- Fused multiply-add (peephole superinstructions) ---------------
    /** regs[dst].i = regs[a].i * regs[b].i + regs[imm].i. Integer + is
     *  commutative, so no operand-order flag is needed. */
    kFmaI,
    /** Two-rounding multiply-add (NOT a hardware fma — the product
     *  rounds before the add, exactly like the separate kMulF/kAddF
     *  pair it replaces). fn = 0: regs[dst].f = regs[a].f * regs[b].f
     *  + regs[imm].f; fn = 1: regs[dst].f = regs[imm].f + regs[a].f *
     *  regs[b].f (operand order of the original add is preserved for
     *  NaN-payload exactness). */
    kFmaF,

    /** Opaque tensor intrinsic call: imm indexes
     *  CompiledFunc::intrins; argument registers were computed by the
     *  preceding instructions. */
    kIntrin,
};

/** Math-function ids for kCallF. */
enum class MathFn : uint8_t {
    kExp,
    kSqrt,
    kTanh,
    kErf,
    kSigmoid,
    kAbs,
    kLog,
};

/** One fixed-size instruction. Field use depends on the opcode (see Op);
 *  unused fields are zero. */
struct Instr
{
    Op op = Op::kHalt;
    /** Math-function id for kCallF. */
    uint8_t fn = 0;
    /** First source register. */
    uint16_t a = 0;
    /** Second source register, or buffer slot for memory ops. */
    uint16_t b = 0;
    /** Destination register (value source for kStoreF). */
    uint16_t dst = 0;
    /** Immediate: constant value, jump target, or intrinsic index. */
    int64_t imm = 0;
};

/** A pre-resolved argument of an opaque intrinsic call. */
struct IntrinArg
{
    enum class Kind : uint8_t {
        /** BufferPtr: buffer `slot` + element offset in `reg`. */
        kPtr,
        /** Integer scalar in `reg`. */
        kInt,
        /** Float scalar in `reg`. */
        kFloat,
        /** Not evaluable ahead of time (StringImm / handle); callbacks
         *  inspect the expression node directly. */
        kOpaque,
    };
    Kind kind = Kind::kOpaque;
    /** Buffer slot (kPtr only). */
    uint16_t slot = 0;
    /** Register holding the offset (kPtr) or scalar value. */
    uint16_t reg = 0;
    /** Identity of the argument expression: the ExecContext handed to
     *  the callback matches evalInt/resolvePtr queries against it. */
    const ExprNode* expr = nullptr;
    /** Keeps the pointee buffer alive (kPtr only). */
    Buffer buffer;
};

/** An opaque intrinsic call site, resolved at compile time. */
struct IntrinCall
{
    /** The call expression (callbacks receive it verbatim). */
    const CallNode* call = nullptr;
    /** Runtime semantics, copied out of the registry snapshot. */
    IntrinsicImpl impl;
    std::vector<IntrinArg> args;
};

/** A PrimFunc compiled to bytecode. Immutable after compile(); one
 *  CompiledFunc may be executed concurrently by multiple VMs (each run
 *  owns its registers and intermediate storage). */
struct CompiledFunc
{
    /** Source function (for argument validation and diagnostics). */
    PrimFunc func;
    std::vector<Instr> code;
    uint32_t num_regs = 0;
    /** Buffer slot table: parameters first (in signature order), then
     *  every intermediate buffer the program references. */
    std::vector<Buffer> buffers;
    size_t num_params = 0;
    /** Buffer -> slot reverse map (intrinsic callbacks use it to
     *  resolve getArray queries). */
    std::unordered_map<const BufferNode*, uint16_t> slot_of;
    /** Intrinsic call sites indexed by kIntrin's imm. */
    std::vector<IntrinCall> intrins;
    /** Registry snapshot the intrinsics were resolved from (keeps the
     *  callbacks alive for the lifetime of the compiled program). */
    std::shared_ptr<const IntrinsicRegistry> registry;
};

} // namespace runtime
} // namespace tir

#endif // TENSORIR_RUNTIME_BYTECODE_H
