/**
 * @file
 * Functional interpreter for TensorIR programs. Executes any stage of the
 * schedule pipeline — including thread-binding loops and opaque tensor
 * intrinsic calls — so tests can check numerically that every schedule
 * transformation preserves semantics, which is the guarantee the paper's
 * validation machinery (§3.3) provides.
 *
 * The tree-walking `Interpreter` is the *reference oracle*: simple enough
 * to audit, slow enough that it should not sit on a hot path. Production
 * numeric execution goes through `runtime::execute` (runtime/vm.h),
 * which picks the bytecode VM by default or the native JIT tier
 * (runtime/jit.h) on request; both preserve this interpreter's
 * observable contract (fuel limit -> EvalError, `interp.run` failpoint
 * site, debug analysis gate) and are differential-tested against it.
 * The full three-engine contract is documented in docs/EXECUTION.md.
 */
#ifndef TENSORIR_RUNTIME_INTERPRETER_H
#define TENSORIR_RUNTIME_INTERPRETER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "ir/stmt.h"
#include "runtime/ndarray.h"

namespace tir {
namespace runtime {

/**
 * Structured evaluation failure: the step budget ran out (a pathological
 * program that would otherwise spin forever) or an injected interpreter
 * fault fired. A std::runtime_error — not a FatalError — so the tuning
 * pipeline's per-candidate containment rejects the candidate instead of
 * aborting the session.
 */
class EvalError : public std::runtime_error
{
  public:
    explicit EvalError(const std::string& msg) : std::runtime_error(msg)
    {
    }
};

/** Resolved buffer address: backing array + linear element offset. */
struct BufferRef
{
    NDArray* array = nullptr;
    int64_t offset = 0;
    const BufferNode* buffer = nullptr;
};

/**
 * Execution context handed to opaque-intrinsic callbacks. Both engines —
 * the tree-walking Interpreter and the bytecode VM — implement it, so one
 * registered intrinsic semantics serves both. Callbacks may only query
 * the direct arguments of the call they were invoked for (the VM resolves
 * those ahead of time; arbitrary expressions have no runtime environment
 * there).
 */
class ExecContext
{
  public:
    virtual ~ExecContext() = default;
    /** Evaluate a scalar expression of the current call. */
    virtual double evalValue(const Expr& expr) = 0;
    /** Evaluate an integer expression of the current call. */
    virtual int64_t evalInt(const Expr& expr) = 0;
    /** Resolve a BufferPtr argument to array + linear offset. */
    virtual BufferRef resolvePtr(const Expr& expr) = 0;
    /** Backing storage for a buffer of the executing function. */
    virtual NDArray* getArray(const Buffer& buffer) = 0;
};

/** Semantics callback for an opaque intrinsic call. */
using IntrinsicImpl = std::function<void(ExecContext&, const CallNode&)>;

/** Immutable name -> semantics table (see Interpreter::intrinsicSnapshot). */
using IntrinsicRegistry = std::unordered_map<std::string, IntrinsicImpl>;

/** Tree-walking evaluator for PrimFuncs (the reference oracle). */
class Interpreter final : public ExecContext
{
  public:
    /**
     * Execute `func` with `args` bound to its parameters in order.
     * Thread-binding and parallel loops run sequentially (valid programs
     * are race-free, so semantics are preserved). Arguments must match
     * the parameter buffers dimension by dimension, not just in total
     * element count.
     */
    void run(const PrimFunc& func, const std::vector<NDArray*>& args);

    /** Evaluate a scalar expression in the current environment. */
    double evalValue(const Expr& expr) override;
    /** Evaluate an integer expression (indices, predicates, bounds). */
    int64_t evalInt(const Expr& expr) override;
    /** Resolve a BufferPtr expression to array + offset. */
    BufferRef resolvePtr(const Expr& expr) override;
    /** Backing storage for a buffer, allocating lazily. */
    NDArray* getArray(const Buffer& buffer) override;

    /**
     * Fuel budget for this interpreter: the maximum number of statements
     * one run() may execute before it aborts with EvalError. 0 means
     * unlimited. Overrides the process-wide default for this instance.
     */
    void setStepLimit(uint64_t limit) { step_limit_ = limit; }

    /** Process-wide default step limit for interpreters without an
     *  explicit setStepLimit (0 = unlimited). */
    static void setDefaultStepLimit(uint64_t limit);
    /** Fall back to the TENSORIR_STEP_LIMIT environment variable. */
    static void clearDefaultStepLimit();
    /** Effective default: an explicit setDefaultStepLimit wins,
     *  otherwise TENSORIR_STEP_LIMIT, otherwise 0 (unlimited). A
     *  non-numeric TENSORIR_STEP_LIMIT value raises FatalError instead
     *  of silently meaning "unlimited". */
    static uint64_t defaultStepLimit();

    /**
     * Register the runtime semantics of an opaque intrinsic. Thread-safe
     * against concurrent registration and concurrent execution:
     * registration builds a new immutable registry snapshot and publishes
     * it atomically, so running interpreters/VMs keep reading the
     * snapshot they started with.
     */
    static void registerIntrinsic(const std::string& name,
                                  IntrinsicImpl impl);
    /** Whether an intrinsic implementation is registered. */
    static bool hasIntrinsic(const std::string& name);
    /** Current immutable registry snapshot (shared with the VM compiler,
     *  which resolves intrinsic callbacks at compile time). */
    static std::shared_ptr<const IntrinsicRegistry> intrinsicSnapshot();

    /** Force the pre-execution static memory analysis on or off for
     *  every subsequent run() (overrides the environment). */
    static void setDebugChecks(bool enabled);
    /** Whether run() asserts the static memory analysis before
     *  executing: an explicit setDebugChecks wins, otherwise the
     *  TENSORIR_DEBUG_CHECKS environment variable (any non-empty value
     *  other than "0"). Off by default — the analysis re-lowers the
     *  function, which is wasted work in tight test loops. */
    static bool debugChecksEnabled();

  private:
    void exec(const Stmt& stmt);
    int64_t linearOffset(const Buffer& buffer,
                         const std::vector<Expr>& indices);

    /** Instance override of the default step limit (unset = default). */
    std::optional<uint64_t> step_limit_;
    /** Budget resolved at run() entry (0 = unlimited) and fuel used. */
    uint64_t active_limit_ = 0;
    uint64_t steps_ = 0;

    std::unordered_map<const VarNode*, int64_t> env_;
    std::unordered_map<const BufferNode*, std::unique_ptr<NDArray>>
        storage_;
    std::unordered_map<const BufferNode*, NDArray*> bound_;
    /** Registry snapshot acquired at run() entry (snapshot-after-init:
     *  intrinsics registered mid-run become visible on the next run). */
    std::shared_ptr<const IntrinsicRegistry> registry_;
};

/** Check `args` against `func`'s parameter buffers: count, and shape
 *  dimension by dimension (a 2x6 array must not bind to a 3x4 param).
 *  Shared by the tree-walker and the VM entry point. */
void validateArguments(const PrimFunc& func,
                       const std::vector<NDArray*>& args);

/** RAII override of the default step limit (restores the previous
 *  default on destruction). The tuner installs one for the duration of
 *  autoTune from TuneOptions::eval_step_limit. Per-thread, like the
 *  engine override (runtime/jit.h): concurrent tuning sessions budget
 *  their fuel independently. */
class ScopedStepLimit
{
  public:
    explicit ScopedStepLimit(uint64_t limit);
    ~ScopedStepLimit();
    ScopedStepLimit(const ScopedStepLimit&) = delete;
    ScopedStepLimit& operator=(const ScopedStepLimit&) = delete;

  private:
    std::optional<uint64_t> saved_;
};

} // namespace runtime
} // namespace tir

#endif // TENSORIR_RUNTIME_INTERPRETER_H
