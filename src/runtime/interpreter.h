/**
 * @file
 * Functional interpreter for TensorIR programs. Executes any stage of the
 * schedule pipeline — including thread-binding loops and opaque tensor
 * intrinsic calls — so tests can check numerically that every schedule
 * transformation preserves semantics, which is the guarantee the paper's
 * validation machinery (§3.3) provides.
 */
#ifndef TENSORIR_RUNTIME_INTERPRETER_H
#define TENSORIR_RUNTIME_INTERPRETER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "ir/stmt.h"
#include "runtime/ndarray.h"

namespace tir {
namespace runtime {

class Interpreter;

/**
 * Structured evaluation failure: the step budget ran out (a pathological
 * program that would otherwise spin forever) or an injected interpreter
 * fault fired. A std::runtime_error — not a FatalError — so the tuning
 * pipeline's per-candidate containment rejects the candidate instead of
 * aborting the session.
 */
class EvalError : public std::runtime_error
{
  public:
    explicit EvalError(const std::string& msg) : std::runtime_error(msg)
    {
    }
};

/** Semantics callback for an opaque intrinsic call. */
using IntrinsicImpl =
    std::function<void(Interpreter&, const CallNode&)>;

/** Resolved buffer address: backing array + linear element offset. */
struct BufferRef
{
    NDArray* array = nullptr;
    int64_t offset = 0;
    const BufferNode* buffer = nullptr;
};

/** Tree-walking evaluator for PrimFuncs. */
class Interpreter
{
  public:
    /**
     * Execute `func` with `args` bound to its parameters in order.
     * Thread-binding and parallel loops run sequentially (valid programs
     * are race-free, so semantics are preserved).
     */
    void run(const PrimFunc& func, const std::vector<NDArray*>& args);

    /** Evaluate a scalar expression in the current environment. */
    double evalValue(const Expr& expr);
    /** Evaluate an integer expression (indices, predicates, bounds). */
    int64_t evalInt(const Expr& expr);
    /** Resolve a BufferPtr expression to array + offset. */
    BufferRef resolvePtr(const Expr& expr);
    /** Backing storage for a buffer, allocating lazily. */
    NDArray* getArray(const Buffer& buffer);

    /**
     * Fuel budget for this interpreter: the maximum number of statements
     * one run() may execute before it aborts with EvalError. 0 means
     * unlimited. Overrides the process-wide default for this instance.
     */
    void setStepLimit(uint64_t limit) { step_limit_ = limit; }

    /** Process-wide default step limit for interpreters without an
     *  explicit setStepLimit (0 = unlimited). */
    static void setDefaultStepLimit(uint64_t limit);
    /** Fall back to the TENSORIR_STEP_LIMIT environment variable. */
    static void clearDefaultStepLimit();
    /** Effective default: an explicit setDefaultStepLimit wins,
     *  otherwise TENSORIR_STEP_LIMIT, otherwise 0 (unlimited). */
    static uint64_t defaultStepLimit();

    /** Register the runtime semantics of an opaque intrinsic. */
    static void registerIntrinsic(const std::string& name,
                                  IntrinsicImpl impl);
    /** Whether an intrinsic implementation is registered. */
    static bool hasIntrinsic(const std::string& name);

    /** Force the pre-execution static memory analysis on or off for
     *  every subsequent run() (overrides the environment). */
    static void setDebugChecks(bool enabled);
    /** Whether run() asserts the static memory analysis before
     *  executing: an explicit setDebugChecks wins, otherwise the
     *  TENSORIR_DEBUG_CHECKS environment variable (any non-empty value
     *  other than "0"). Off by default — the analysis re-lowers the
     *  function, which is wasted work in tight test loops. */
    static bool debugChecksEnabled();

  private:
    void exec(const Stmt& stmt);
    int64_t linearOffset(const Buffer& buffer,
                         const std::vector<Expr>& indices);

    /** Instance override of the default step limit (unset = default). */
    std::optional<uint64_t> step_limit_;
    /** Budget resolved at run() entry (0 = unlimited) and fuel used. */
    uint64_t active_limit_ = 0;
    uint64_t steps_ = 0;

    std::unordered_map<const VarNode*, int64_t> env_;
    std::unordered_map<const BufferNode*, std::unique_ptr<NDArray>>
        storage_;
    std::unordered_map<const BufferNode*, NDArray*> bound_;

    static std::unordered_map<std::string, IntrinsicImpl>& registry();
};

/** RAII override of the process-wide default step limit (restores the
 *  previous default on destruction). The tuner installs one for the
 *  duration of autoTune from TuneOptions::eval_step_limit. */
class ScopedStepLimit
{
  public:
    explicit ScopedStepLimit(uint64_t limit);
    ~ScopedStepLimit();
    ScopedStepLimit(const ScopedStepLimit&) = delete;
    ScopedStepLimit& operator=(const ScopedStepLimit&) = delete;

  private:
    std::optional<uint64_t> saved_;
};

} // namespace runtime
} // namespace tir

#endif // TENSORIR_RUNTIME_INTERPRETER_H
