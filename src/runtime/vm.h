/**
 * @file
 * Bytecode virtual machine for lowered TensorIR numeric execution.
 *
 * The tree-walking `runtime::Interpreter` stays as the reference oracle;
 * this VM is the production path for everything numeric (test
 * validation helpers, the tuner's `numeric_check_topk` spot checks,
 * benchmarks). It preserves the interpreter's observable contract —
 * step/fuel limit -> EvalError, the `interp.run` failpoint site, a trace
 * span per run, the TENSORIR_DEBUG_CHECKS static-analysis gate — and is
 * differential-tested against the oracle for bit-identical outputs
 * (tests/test_properties.cpp).
 *
 * Entry points:
 *  - `execute(func, args)`: compile + run behind the engine-selection
 *    contract of docs/EXECUTION.md — the VM by default, the
 *    tree-walker when TENSORIR_FORCE_TREEWALK=1 (or setForceTreeWalk)
 *    is in effect, and the native JIT tier (runtime/jit.h) under
 *    TENSORIR_ENGINE=jit / setEngine(Engine::kJit), with graceful
 *    VM fallback when native compilation is not possible.
 *  - `compile(func)` + `VirtualMachine::run` for callers that reuse the
 *    compiled program across many runs (benchmarks, repeated numeric
 *    checks against fresh inputs).
 */
#ifndef TENSORIR_RUNTIME_VM_H
#define TENSORIR_RUNTIME_VM_H

#include <optional>

#include "runtime/bytecode.h"

namespace tir {
namespace runtime {

/** Compile a lowered PrimFunc to bytecode. Resolves opaque intrinsics
 *  against the current registry snapshot; raises FatalError on
 *  constructs the VM cannot execute (same class of error the
 *  tree-walker raises at runtime). */
CompiledFunc compile(const PrimFunc& func);

/** Executes CompiledFuncs. Stateless between runs apart from the
 *  configured step limit; one instance may run many programs. */
class VirtualMachine
{
  public:
    /** Fuel budget per run() (maximum statement executions before
     *  EvalError), overriding the process default. 0 = unlimited. Uses
     *  the same statement-boundary accounting as the interpreter, so a
     *  program exhausts the same budget at the same statement. */
    void setStepLimit(uint64_t limit) { step_limit_ = limit; }

    /** Execute with `args` bound to the function parameters in order.
     *  Validates arguments per dimension (see validateArguments);
     *  intermediate buffers are freshly allocated per run. */
    void run(const CompiledFunc& compiled,
             const std::vector<NDArray*>& args);

  private:
    std::optional<uint64_t> step_limit_;
};

/** True when numeric execution must use the tree-walking oracle:
 *  an explicit setForceTreeWalk override wins, otherwise the
 *  TENSORIR_FORCE_TREEWALK environment variable (any non-empty value
 *  other than "0"). */
bool forceTreeWalk();

/** Override the engine choice for this process (std::nullopt returns
 *  to the environment variable). Tests use this to compare engines. */
void setForceTreeWalk(std::optional<bool> force);

/** Execute `func` numerically on the engine `selectedEngine()`
 *  (runtime/jit.h) resolves: bytecode VM by default, tree-walking
 *  interpreter under forceTreeWalk(), native JIT code under
 *  TENSORIR_ENGINE=jit / setEngine — degrading to the VM when no
 *  native module can be built. All three engines share argument
 *  validation, fuel semantics, the `interp.run` failpoint site, and
 *  the debug-checks gate (the full contract is docs/EXECUTION.md). */
void execute(const PrimFunc& func, const std::vector<NDArray*>& args);

} // namespace runtime
} // namespace tir

#endif // TENSORIR_RUNTIME_VM_H
