#include "runtime/vm.h"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "arith/interval.h"
#include "runtime/jit.h"
#include "support/failpoint.h"
#include "support/trace.h"
#include "tir/analysis/analysis.h"

namespace tir {
namespace runtime {

namespace {

/**
 * One-pass bytecode compiler. The recursion mirrors the tree-walking
 * interpreter case for case — `compileInt` is the static image of
 * `Interpreter::evalInt`, `compileValue` of `evalValue`, `compileStmt`
 * of `exec` — which is what makes the two engines bit-identical: the
 * same arithmetic happens in the same domains in the same order, only
 * resolved at compile time instead of per evaluation.
 *
 * Constant subexpressions fold at compile time using the exact runtime
 * operations (same floorDivInt, same double arithmetic). Folding never
 * *skips* runtime work that the interpreter would perform: operands of
 * a partially-constant binary op are still compiled (their loads still
 * bounds-check), and floor div/mod by a constant zero is left to the
 * runtime so both engines fail identically.
 */
class Compiler
{
  public:
    explicit Compiler(const PrimFunc& func)
    {
        out_.func = func;
        out_.registry = Interpreter::intrinsicSnapshot();
        for (const Buffer& param : func->params) {
            slotOf(param);
        }
        out_.num_params = func->params.size();
    }

    CompiledFunc
    compile()
    {
        compileStmt(out_.func->body);
        body_.push_back({Op::kHalt, 0, 0, 0, 0, 0});
        // Link: the constant-pool prelude runs first, so body-relative
        // jump targets shift by its length.
        const int64_t base = static_cast<int64_t>(prelude_.size());
        for (Instr& in : body_) {
            if (in.op == Op::kJump || in.op == Op::kJumpIfZero ||
                in.op == Op::kJumpIfGeI || in.op == Op::kIncJump) {
                in.imm += base;
            }
        }
        out_.code = std::move(prelude_);
        out_.code.insert(out_.code.end(), body_.begin(), body_.end());
        out_.num_regs = next_reg_;
        return std::move(out_);
    }

  private:
    /** Compile-time view of an integer expression: a constant, or a
     *  register holding the runtime value. */
    struct IVal
    {
        bool is_const = false;
        int64_t imm = 0;
        uint16_t reg = 0;
    };
    /** Same for the float (value) domain. */
    struct FVal
    {
        bool is_const = false;
        double imm = 0;
        uint16_t reg = 0;
    };

    uint16_t
    newReg()
    {
        TIR_CHECK(next_reg_ < 65535)
            << "bytecode compiler ran out of registers in "
            << out_.func->name;
        return static_cast<uint16_t>(next_reg_++);
    }

    /** Pooled register preloaded with an int constant. */
    uint16_t
    constI(int64_t v)
    {
        auto it = int_pool_.find(v);
        if (it != int_pool_.end()) return it->second;
        uint16_t r = newReg();
        prelude_.push_back({Op::kConstI, 0, 0, 0, r, v});
        int_pool_[v] = r;
        return r;
    }

    /** Pooled register preloaded with a float constant. */
    uint16_t
    constF(double v)
    {
        int64_t bits = std::bit_cast<int64_t>(v);
        auto it = float_pool_.find(bits);
        if (it != float_pool_.end()) return it->second;
        uint16_t r = newReg();
        prelude_.push_back({Op::kConstF, 0, 0, 0, r, bits});
        float_pool_[bits] = r;
        return r;
    }

    uint16_t
    regOf(const IVal& v)
    {
        return v.is_const ? constI(v.imm) : v.reg;
    }
    uint16_t
    regOf(const FVal& v)
    {
        return v.is_const ? constF(v.imm) : v.reg;
    }

    size_t
    emit(Instr in)
    {
        body_.push_back(in);
        return body_.size() - 1;
    }

    /** Retarget a forward jump at `pc` to the next emitted instruction. */
    void
    patchHere(size_t pc)
    {
        body_[pc].imm = static_cast<int64_t>(body_.size());
    }

    IVal
    emitIntBinary(ExprKind kind, const IVal& a, const IVal& b)
    {
        if (a.is_const && b.is_const) {
            // Fold with the same operations the runtime uses — except
            // division by a constant zero, which must keep failing at
            // run time exactly like the tree-walker.
            bool div = kind == ExprKind::kFloorDiv ||
                       kind == ExprKind::kFloorMod;
            if (!div || b.imm != 0) {
                return {true, foldInt(kind, a.imm, b.imm), 0};
            }
        }
        if (kind == ExprKind::kAdd && !body_.empty() &&
            body_.back().op == Op::kMulI &&
            !pinned_.count(body_.back().dst)) {
            // Peephole: fold the just-emitted multiply into a fused
            // multiply-add. Every expression temp has exactly one
            // reader, so the multiply's destination can only be read
            // again if it was pinned as a variable binding — checked
            // above. Integer + is commutative, so operand order of the
            // add does not matter.
            uint16_t ra = regOf(a);
            uint16_t rb = regOf(b);
            uint16_t md = body_.back().dst;
            if (md == ra || md == rb) {
                Instr mul = body_.back();
                body_.pop_back();
                uint16_t dst = newReg();
                emit({Op::kFmaI, 0, mul.a, mul.b, dst,
                      static_cast<int64_t>(md == ra ? rb : ra)});
                return {false, 0, dst};
            }
        }
        Op op;
        switch (kind) {
          case ExprKind::kAdd: op = Op::kAddI; break;
          case ExprKind::kSub: op = Op::kSubI; break;
          case ExprKind::kMul: op = Op::kMulI; break;
          case ExprKind::kFloorDiv: op = Op::kFloorDivI; break;
          case ExprKind::kFloorMod: op = Op::kFloorModI; break;
          case ExprKind::kMin: op = Op::kMinI; break;
          case ExprKind::kMax: op = Op::kMaxI; break;
          case ExprKind::kEQ: op = Op::kEqI; break;
          case ExprKind::kNE: op = Op::kNeI; break;
          case ExprKind::kLT: op = Op::kLtI; break;
          case ExprKind::kLE: op = Op::kLeI; break;
          case ExprKind::kGT: op = Op::kGtI; break;
          case ExprKind::kGE: op = Op::kGeI; break;
          case ExprKind::kAnd: op = Op::kAndI; break;
          case ExprKind::kOr: op = Op::kOrI; break;
          default:
            TIR_PANIC << "cannot integer-evaluate expression kind";
        }
        uint16_t dst = newReg();
        emit({op, 0, regOf(a), regOf(b), dst, 0});
        return {false, 0, dst};
    }

    static int64_t
    foldInt(ExprKind kind, int64_t a, int64_t b)
    {
        switch (kind) {
          case ExprKind::kAdd: return a + b;
          case ExprKind::kSub: return a - b;
          case ExprKind::kMul: return a * b;
          case ExprKind::kFloorDiv: return arith::floorDivInt(a, b);
          case ExprKind::kFloorMod: return arith::floorModInt(a, b);
          case ExprKind::kMin: return std::min(a, b);
          case ExprKind::kMax: return std::max(a, b);
          case ExprKind::kEQ: return a == b;
          case ExprKind::kNE: return a != b;
          case ExprKind::kLT: return a < b;
          case ExprKind::kLE: return a <= b;
          case ExprKind::kGT: return a > b;
          case ExprKind::kGE: return a >= b;
          case ExprKind::kAnd: return a && b;
          case ExprKind::kOr: return a || b;
          default:
            TIR_PANIC << "cannot integer-evaluate expression kind";
        }
    }

    /** Mirrors Interpreter::evalInt. */
    IVal
    compileInt(const Expr& expr)
    {
        switch (expr->kind) {
          case ExprKind::kIntImm:
            return {true, static_cast<const IntImmNode&>(*expr).value, 0};
          case ExprKind::kFloatImm:
            return {true,
                    static_cast<int64_t>(
                        static_cast<const FloatImmNode&>(*expr).value),
                    0};
          case ExprKind::kVar: {
            auto it = var_reg_.find(static_cast<const VarNode*>(expr.get()));
            TIR_ICHECK(it != var_reg_.end())
                << "unbound variable "
                << static_cast<const VarNode&>(*expr).name;
            return {false, 0, it->second};
          }
          case ExprKind::kCast: {
            const Expr& inner = static_cast<const CastNode&>(*expr).value;
            if (inner->dtype.isFloat()) {
                FVal v = compileValue(inner);
                if (v.is_const) {
                    return {true, static_cast<int64_t>(std::trunc(v.imm)),
                            0};
                }
                uint16_t dst = newReg();
                emit({Op::kFtoI, 0, v.reg, 0, dst, 0});
                return {false, 0, dst};
            }
            return compileInt(inner);
          }
          case ExprKind::kBufferLoad: {
            const auto& n = static_cast<const BufferLoadNode&>(*expr);
            IVal off = compileOffset(n.buffer, n.indices);
            uint16_t dst = newReg();
            emit({Op::kLoadI, 0, regOf(off), slotOf(n.buffer), dst, 0});
            return {false, 0, dst};
          }
          case ExprKind::kNot: {
            IVal a = compileInt(static_cast<const NotNode&>(*expr).a);
            if (a.is_const) return {true, a.imm ? 0 : 1, 0};
            uint16_t dst = newReg();
            emit({Op::kNotI, 0, a.reg, 0, dst, 0});
            return {false, 0, dst};
          }
          case ExprKind::kSelect: {
            const auto& n = static_cast<const SelectNode&>(*expr);
            IVal c = compileInt(n.cond);
            // Lazy, like the interpreter: only the taken side runs.
            if (c.is_const) {
                return compileInt(c.imm ? n.tval : n.fval);
            }
            uint16_t dst = newReg();
            size_t jz = emit({Op::kJumpIfZero, 0, c.reg, 0, 0, 0});
            IVal t = compileInt(n.tval);
            emit({Op::kMovI, 0, regOf(t), 0, dst, 0});
            size_t jend = emit({Op::kJump, 0, 0, 0, 0, 0});
            patchHere(jz);
            IVal f = compileInt(n.fval);
            emit({Op::kMovI, 0, regOf(f), 0, dst, 0});
            patchHere(jend);
            return {false, 0, dst};
          }
          default: {
            const auto& n = static_cast<const BinaryNode&>(*expr);
            IVal a = compileInt(n.a);
            IVal b = compileInt(n.b);
            return emitIntBinary(expr->kind, a, b);
          }
        }
    }

    /** Mirrors Interpreter::evalValue. */
    FVal
    compileValue(const Expr& expr)
    {
        switch (expr->kind) {
          case ExprKind::kIntImm:
            return {true,
                    static_cast<double>(
                        static_cast<const IntImmNode&>(*expr).value),
                    0};
          case ExprKind::kFloatImm:
            return {true, static_cast<const FloatImmNode&>(*expr).value,
                    0};
          case ExprKind::kVar: {
            IVal v = compileInt(expr);
            uint16_t dst = newReg();
            emit({Op::kItoF, 0, regOf(v), 0, dst, 0});
            return {false, 0, dst};
          }
          case ExprKind::kCast: {
            const auto& n = static_cast<const CastNode&>(*expr);
            FVal v = compileValue(n.value);
            if (n.dtype.isInt() || n.dtype.isBool()) {
                if (v.is_const) return {true, std::trunc(v.imm), 0};
                uint16_t dst = newReg();
                emit({Op::kTruncF, 0, v.reg, 0, dst, 0});
                return {false, 0, dst};
            }
            return v;
          }
          case ExprKind::kNot: {
            FVal a = compileValue(static_cast<const NotNode&>(*expr).a);
            if (a.is_const) return {true, a.imm == 0.0 ? 1.0 : 0.0, 0};
            uint16_t dst = newReg();
            emit({Op::kNotF, 0, a.reg, 0, dst, 0});
            return {false, 0, dst};
          }
          case ExprKind::kSelect: {
            const auto& n = static_cast<const SelectNode&>(*expr);
            FVal c = compileValue(n.cond);
            if (c.is_const) {
                return compileValue(c.imm != 0.0 ? n.tval : n.fval);
            }
            uint16_t cond = newReg();
            emit({Op::kFNonzero, 0, c.reg, 0, cond, 0});
            uint16_t dst = newReg();
            size_t jz = emit({Op::kJumpIfZero, 0, cond, 0, 0, 0});
            FVal t = compileValue(n.tval);
            emit({Op::kMovF, 0, regOf(t), 0, dst, 0});
            size_t jend = emit({Op::kJump, 0, 0, 0, 0, 0});
            patchHere(jz);
            FVal f = compileValue(n.fval);
            emit({Op::kMovF, 0, regOf(f), 0, dst, 0});
            patchHere(jend);
            return {false, 0, dst};
          }
          case ExprKind::kBufferLoad: {
            const auto& n = static_cast<const BufferLoadNode&>(*expr);
            IVal off = compileOffset(n.buffer, n.indices);
            uint16_t dst = newReg();
            emit({Op::kLoadF, 0, regOf(off), slotOf(n.buffer), dst, 0});
            return {false, 0, dst};
          }
          case ExprKind::kBufferPtr:
            TIR_PANIC << "BufferPtr evaluated as a value";
          case ExprKind::kCall: {
            const auto& n = static_cast<const CallNode&>(*expr);
            MathFn fn;
            if (n.op == "exp") fn = MathFn::kExp;
            else if (n.op == "sqrt") fn = MathFn::kSqrt;
            else if (n.op == "tanh") fn = MathFn::kTanh;
            else if (n.op == "erf") fn = MathFn::kErf;
            else if (n.op == "sigmoid") fn = MathFn::kSigmoid;
            else if (n.op == "abs") fn = MathFn::kAbs;
            else if (n.op == "log") fn = MathFn::kLog;
            else
                TIR_FATAL << "unknown pure call in value position: "
                          << n.op;
            FVal a = compileValue(n.args[0]);
            uint16_t dst = newReg();
            emit({Op::kCallF, static_cast<uint8_t>(fn), regOf(a), 0, dst,
                  0});
            return {false, 0, dst};
          }
          default: {
            if (!expr->dtype.isFloat()) {
                // evalValue falls back to evalInt on the whole
                // expression for non-float binaries.
                IVal v = compileInt(expr);
                if (v.is_const) {
                    return {true, static_cast<double>(v.imm), 0};
                }
                uint16_t dst = newReg();
                emit({Op::kItoF, 0, v.reg, 0, dst, 0});
                return {false, 0, dst};
            }
            const auto& n = static_cast<const BinaryNode&>(*expr);
            FVal a = compileValue(n.a);
            FVal b = compileValue(n.b);
            if (a.is_const && b.is_const) {
                return {true, foldFloat(expr->kind, a.imm, b.imm), 0};
            }
            if (expr->kind == ExprKind::kAdd && !body_.empty() &&
                body_.back().op == Op::kMulF &&
                !pinned_.count(body_.back().dst)) {
                // Same peephole as the integer domain. fn records which
                // side of the add held the product, so NaN-payload
                // operand selection matches the unfused kAddF exactly.
                uint16_t ra = regOf(a);
                uint16_t rb = regOf(b);
                uint16_t md = body_.back().dst;
                if (md == ra || md == rb) {
                    Instr mul = body_.back();
                    body_.pop_back();
                    uint16_t dst = newReg();
                    emit({Op::kFmaF,
                          static_cast<uint8_t>(md == ra ? 0 : 1), mul.a,
                          mul.b, dst,
                          static_cast<int64_t>(md == ra ? rb : ra)});
                    return FVal{false, 0, dst};
                }
            }
            Op op;
            switch (expr->kind) {
              case ExprKind::kAdd: op = Op::kAddF; break;
              case ExprKind::kSub: op = Op::kSubF; break;
              case ExprKind::kMul: op = Op::kMulF; break;
              case ExprKind::kDiv: op = Op::kDivF; break;
              case ExprKind::kMin: op = Op::kMinF; break;
              case ExprKind::kMax: op = Op::kMaxF; break;
              default:
                TIR_PANIC << "cannot value-evaluate expression kind";
            }
            uint16_t dst = newReg();
            emit({op, 0, regOf(a), regOf(b), dst, 0});
            return {false, 0, dst};
          }
        }
    }

    static double
    foldFloat(ExprKind kind, double a, double b)
    {
        switch (kind) {
          case ExprKind::kAdd: return a + b;
          case ExprKind::kSub: return a - b;
          case ExprKind::kMul: return a * b;
          case ExprKind::kDiv: return a / b;
          case ExprKind::kMin: return std::min(a, b);
          case ExprKind::kMax: return std::max(a, b);
          default:
            TIR_PANIC << "cannot value-evaluate expression kind";
        }
    }

    /** Mirrors Interpreter::linearOffset (row-major Horner form). The
     *  constant part folds away; loop-varying indices leave a short
     *  mul/add chain over the index registers. */
    IVal
    compileOffset(const Buffer& buffer, const std::vector<Expr>& indices)
    {
        TIR_ICHECK(indices.size() == buffer->ndim())
            << "buffer " << buffer->name << " has rank " << buffer->ndim()
            << " but the access supplies " << indices.size()
            << " indices";
        IVal offset = {true, 0, 0};
        for (size_t d = 0; d < indices.size(); ++d) {
            IVal scaled = emitIntBinary(
                ExprKind::kMul, offset, {true, buffer->shapeInt(d), 0});
            offset = emitIntBinary(ExprKind::kAdd, scaled,
                                   compileInt(indices[d]));
        }
        return offset;
    }

    uint16_t
    slotOf(const Buffer& buffer)
    {
        auto it = out_.slot_of.find(buffer.get());
        if (it != out_.slot_of.end()) return it->second;
        TIR_CHECK(out_.buffers.size() < 65535)
            << "bytecode compiler ran out of buffer slots";
        uint16_t slot = static_cast<uint16_t>(out_.buffers.size());
        out_.buffers.push_back(buffer);
        out_.slot_of[buffer.get()] = slot;
        return slot;
    }

    void
    compileIntrin(const CallNode& call)
    {
        auto impl_it = out_.registry->find(call.op);
        TIR_CHECK(impl_it != out_.registry->end())
            << "no runtime semantics registered for intrinsic "
            << call.op;
        IntrinCall ic;
        ic.call = &call;
        ic.impl = impl_it->second;
        ic.args.reserve(call.args.size());
        for (const Expr& arg : call.args) {
            IntrinArg desc;
            desc.expr = arg.get();
            if (arg->kind == ExprKind::kBufferPtr) {
                const auto& ptr = static_cast<const BufferPtrNode&>(*arg);
                desc.kind = IntrinArg::Kind::kPtr;
                desc.slot = slotOf(ptr.buffer);
                desc.reg = regOf(compileOffset(ptr.buffer, ptr.indices));
                desc.buffer = ptr.buffer;
            } else if (arg->kind == ExprKind::kStringImm ||
                       arg->dtype.isHandle()) {
                desc.kind = IntrinArg::Kind::kOpaque;
            } else if (arg->dtype.isFloat()) {
                desc.kind = IntrinArg::Kind::kFloat;
                desc.reg = regOf(compileValue(arg));
            } else {
                desc.kind = IntrinArg::Kind::kInt;
                desc.reg = regOf(compileInt(arg));
            }
            ic.args.push_back(std::move(desc));
        }
        int64_t index = static_cast<int64_t>(out_.intrins.size());
        out_.intrins.push_back(std::move(ic));
        emit({Op::kIntrin, 0, 0, 0, 0, index});
    }

    /** Mirrors Interpreter::exec, including its fuel accounting: one
     *  kStep per statement, at the point the statement starts. */
    void
    compileStmt(const Stmt& stmt)
    {
        emit({Op::kStep, 0, 0, 0, 0, 0});
        switch (stmt->kind) {
          case StmtKind::kBufferStore: {
            const auto& n = static_cast<const BufferStoreNode&>(*stmt);
            FVal value;
            if (n.value->dtype.isFloat()) {
                value = compileValue(n.value);
            } else {
                IVal iv = compileInt(n.value);
                if (iv.is_const) {
                    value = {true, static_cast<double>(iv.imm), 0};
                } else {
                    uint16_t dst = newReg();
                    emit({Op::kItoF, 0, iv.reg, 0, dst, 0});
                    value = {false, 0, dst};
                }
            }
            IVal off = compileOffset(n.buffer, n.indices);
            emit({Op::kStoreF, 0, regOf(off), slotOf(n.buffer),
                  regOf(value), 0});
            return;
          }
          case StmtKind::kEvaluate: {
            // Storage barriers are no-ops on sequential engines (the
            // step above is still charged, as in the tree-walker).
            if (asStorageSync(*stmt)) return;
            const auto& n = static_cast<const EvaluateNode&>(*stmt);
            TIR_ICHECK(n.value->kind == ExprKind::kCall)
                << "Evaluate expects an intrinsic call";
            compileIntrin(static_cast<const CallNode&>(*n.value));
            return;
          }
          case StmtKind::kSeq: {
            for (const Stmt& s :
                 static_cast<const SeqStmtNode&>(*stmt).seq) {
                compileStmt(s);
            }
            return;
          }
          case StmtKind::kIfThenElse: {
            const auto& n = static_cast<const IfThenElseNode&>(*stmt);
            IVal c = compileInt(n.cond);
            if (c.is_const) {
                if (c.imm) {
                    compileStmt(n.then_case);
                } else if (n.else_case) {
                    compileStmt(n.else_case);
                }
                return;
            }
            size_t jz = emit({Op::kJumpIfZero, 0, c.reg, 0, 0, 0});
            compileStmt(n.then_case);
            if (n.else_case) {
                size_t jend = emit({Op::kJump, 0, 0, 0, 0, 0});
                patchHere(jz);
                compileStmt(n.else_case);
                patchHere(jend);
            } else {
                patchHere(jz);
            }
            return;
          }
          case StmtKind::kFor: {
            const auto& n = static_cast<const ForNode&>(*stmt);
            IVal mn = compileInt(n.min);
            IVal ext = compileInt(n.extent);
            if (ext.is_const && ext.imm <= 0) return;
            // The loop variable gets a dedicated register; an outer
            // binding of the same VarNode is shadowed for the body and
            // restored after (compile-time image of the interpreter's
            // save/restore).
            uint16_t vr = newReg();
            auto saved = saveBinding(n.loop_var.get(), vr);
            emit({Op::kMovI, 0, regOf(mn), 0, vr, 0});
            IVal end = emitIntBinary(ExprKind::kAdd, mn, ext);
            uint16_t er = regOf(end);
            size_t head = body_.size();
            size_t exit = emit({Op::kJumpIfGeI, 0, vr, er, 0, 0});
            compileStmt(n.body);
            emit({Op::kIncJump, 0, vr, 0, 0,
                  static_cast<int64_t>(head)});
            patchHere(exit);
            restoreBinding(n.loop_var.get(), saved);
            return;
          }
          case StmtKind::kBlock:
            TIR_PANIC << "bare Block outside BlockRealize";
          case StmtKind::kBlockRealize: {
            const auto& n = static_cast<const BlockRealizeNode&>(*stmt);
            IVal p = compileInt(n.predicate);
            if (p.is_const && !p.imm) return;
            size_t skip = 0;
            bool has_skip = false;
            if (!p.is_const) {
                skip = emit({Op::kJumpIfZero, 0, p.reg, 0, 0, 0});
                has_skip = true;
            }
            const BlockNode& block = *n.block;
            for (const Buffer& b : block.alloc_buffers) slotOf(b);
            // Sequential iter binding — value i is computed with iters
            // 0..i-1 already bound, and each reduce iter's dom.min is
            // evaluated right after its own binding, matching the
            // interpreter's loop.
            std::vector<std::optional<uint16_t>> saved(
                block.iter_vars.size());
            bool start_const_false = false;
            std::optional<uint16_t> start_flag;
            for (size_t i = 0; i < block.iter_vars.size(); ++i) {
                const IterVar& iv = block.iter_vars[i];
                IVal value = compileInt(n.iter_values[i]);
                uint16_t vr = regOf(value);
                saved[i] = saveBinding(iv.var.get(), vr);
                if (iv.type != IterType::kReduce) continue;
                IVal m = compileInt(iv.dom.min);
                if (value.is_const && m.is_const) {
                    if (value.imm != m.imm) start_const_false = true;
                    continue;
                }
                IVal eq = emitIntBinary(ExprKind::kEQ, value, m);
                if (!start_flag) {
                    start_flag = regOf(eq);
                } else {
                    IVal combined = emitIntBinary(
                        ExprKind::kAnd, IVal{false, 0, *start_flag}, eq);
                    start_flag = regOf(combined);
                }
            }
            if (block.init && !start_const_false) {
                if (!start_flag) {
                    compileStmt(block.init);
                } else {
                    size_t jz = emit(
                        {Op::kJumpIfZero, 0, *start_flag, 0, 0, 0});
                    compileStmt(block.init);
                    patchHere(jz);
                }
            }
            compileStmt(block.body);
            for (size_t i = block.iter_vars.size(); i-- > 0;) {
                restoreBinding(block.iter_vars[i].var.get(), saved[i]);
            }
            if (has_skip) patchHere(skip);
            return;
          }
        }
    }

    /** Bind `var` to `reg`, returning the shadowed register if any.
     *  The register is pinned permanently: a bound register has more
     *  than one reader, so the fused-multiply-add peephole must never
     *  swallow the instruction that produces it. */
    std::optional<uint16_t>
    saveBinding(const VarNode* var, uint16_t reg)
    {
        pinned_.insert(reg);
        std::optional<uint16_t> prev;
        if (auto it = var_reg_.find(var); it != var_reg_.end()) {
            prev = it->second;
        }
        var_reg_[var] = reg;
        return prev;
    }

    void
    restoreBinding(const VarNode* var, std::optional<uint16_t> prev)
    {
        if (prev) {
            var_reg_[var] = *prev;
        } else {
            var_reg_.erase(var);
        }
    }

    CompiledFunc out_;
    uint32_t next_reg_ = 0;
    std::vector<Instr> prelude_;
    std::vector<Instr> body_;
    std::unordered_map<int64_t, uint16_t> int_pool_;
    std::unordered_map<int64_t, uint16_t> float_pool_;
    std::unordered_map<const VarNode*, uint16_t> var_reg_;
    /** Registers with more than one reader (variable bindings); the
     *  mul-add peephole must not consume their producers. */
    std::unordered_set<uint16_t> pinned_;
};

/** Untyped VM register. */
union Value
{
    int64_t i;
    double f;
};

/** Cached view of one buffer slot's backing storage. */
struct Mem
{
    double* data = nullptr;
    int64_t n = 0;
};

/**
 * ExecContext handed to intrinsic callbacks running under the VM. The
 * callback queries are matched against the pre-resolved call arguments
 * by expression node identity; anything else has no runtime
 * environment in compiled code and is a contract violation.
 */
class VmIntrinContext final : public ExecContext
{
  public:
    VmIntrinContext(const CompiledFunc& cf, const IntrinCall& ic,
                    Value* regs, NDArray** arrays)
        : cf_(cf), ic_(ic), regs_(regs), arrays_(arrays)
    {
    }

    double
    evalValue(const Expr& expr) override
    {
        if (const IntrinArg* a = find(expr)) {
            switch (a->kind) {
              case IntrinArg::Kind::kFloat: return regs_[a->reg].f;
              case IntrinArg::Kind::kInt:
                return static_cast<double>(regs_[a->reg].i);
              default: break;
            }
        }
        if (expr->kind == ExprKind::kIntImm) {
            return static_cast<double>(
                static_cast<const IntImmNode&>(*expr).value);
        }
        if (expr->kind == ExprKind::kFloatImm) {
            return static_cast<const FloatImmNode&>(*expr).value;
        }
        TIR_PANIC << "VM intrinsic context can only evaluate direct "
                     "arguments of the call";
    }

    int64_t
    evalInt(const Expr& expr) override
    {
        if (const IntrinArg* a = find(expr)) {
            switch (a->kind) {
              case IntrinArg::Kind::kInt: return regs_[a->reg].i;
              case IntrinArg::Kind::kFloat:
                return static_cast<int64_t>(regs_[a->reg].f);
              default: break;
            }
        }
        if (expr->kind == ExprKind::kIntImm) {
            return static_cast<const IntImmNode&>(*expr).value;
        }
        TIR_PANIC << "VM intrinsic context can only evaluate direct "
                     "arguments of the call";
    }

    BufferRef
    resolvePtr(const Expr& expr) override
    {
        TIR_ICHECK(expr->kind == ExprKind::kBufferPtr)
            << "intrinsic argument is not a buffer pointer";
        const IntrinArg* a = find(expr);
        TIR_ICHECK(a && a->kind == IntrinArg::Kind::kPtr)
            << "VM intrinsic context can only resolve direct "
               "arguments of the call";
        return {arrays_[a->slot], regs_[a->reg].i, a->buffer.get()};
    }

    NDArray*
    getArray(const Buffer& buffer) override
    {
        auto it = cf_.slot_of.find(buffer.get());
        TIR_ICHECK(it != cf_.slot_of.end())
            << "buffer " << buffer->name
            << " is not part of the compiled program";
        return arrays_[it->second];
    }

  private:
    const IntrinArg*
    find(const Expr& expr) const
    {
        for (const IntrinArg& a : ic_.args) {
            if (a.expr == expr.get()) return &a;
        }
        return nullptr;
    }

    const CompiledFunc& cf_;
    const IntrinCall& ic_;
    Value* regs_;
    NDArray** arrays_;
};

std::optional<bool>&
forceTreeWalkOverride()
{
    static std::optional<bool> value;
    return value;
}

} // namespace

CompiledFunc
compile(const PrimFunc& func)
{
    return Compiler(func).compile();
}

void
VirtualMachine::run(const CompiledFunc& compiled,
                    const std::vector<NDArray*>& args)
{
    const PrimFunc& func = compiled.func;
    validateArguments(func, args);
    trace::Span span("vm.run", trace::arg("func", func->name));
    // Same failpoint site as the tree-walker so the tuner's sandbox and
    // the chaos schedules exercise both engines identically.
    if (failpoint::inject("interp.run")) {
        throw EvalError("injected interpreter fault (failpoint "
                        "interp.run) in " +
                        func->name);
    }
    if (Interpreter::debugChecksEnabled()) {
        analysis::AnalysisReport report = analysis::analyzeFunc(func);
        TIR_CHECK(report.ok())
            << "static memory analysis failed for " << func->name
            << " before execution:\n"
            << report.summary();
    }
    const uint64_t limit =
        step_limit_ ? *step_limit_ : Interpreter::defaultStepLimit();
    uint64_t steps = 0;

    std::vector<Value> regs(compiled.num_regs, Value{0});
    std::vector<std::unique_ptr<NDArray>> locals;
    std::vector<NDArray*> arrays(compiled.buffers.size(), nullptr);
    std::vector<Mem> mem(compiled.buffers.size());
    for (size_t s = 0; s < compiled.buffers.size(); ++s) {
        if (s < compiled.num_params) {
            arrays[s] = args[s];
        } else {
            const Buffer& b = compiled.buffers[s];
            std::vector<int64_t> shape;
            shape.reserve(b->ndim());
            for (size_t d = 0; d < b->ndim(); ++d) {
                shape.push_back(b->shapeInt(d));
            }
            locals.push_back(
                std::make_unique<NDArray>(b->dtype, std::move(shape)));
            arrays[s] = locals.back().get();
        }
        mem[s] = {arrays[s]->data(), arrays[s]->numel()};
    }

    // Raw pointers keep the dispatch loop free of vector-indexing
    // reloads: a buffer store could otherwise alias the register file
    // or the mem table as far as the optimizer can prove, forcing both
    // base pointers back from memory on every instruction.
    const Instr* code = compiled.code.data();
    Value* const r = regs.data();
    const Mem* const mems = mem.data();
    size_t pc = 0;
    for (;;) {
        const Instr& in = code[pc];
        switch (in.op) {
          case Op::kHalt:
            return;
          case Op::kStep:
            if (limit != 0 && ++steps > limit) {
                throw EvalError("interpreter step limit of " +
                                std::to_string(limit) +
                                " statements exceeded (runaway "
                                "program?)");
            }
            break;
          case Op::kConstI: r[in.dst].i = in.imm; break;
          case Op::kConstF:
            r[in.dst].f = std::bit_cast<double>(in.imm);
            break;
          case Op::kMovI: r[in.dst].i = r[in.a].i; break;
          case Op::kMovF: r[in.dst].f = r[in.a].f; break;
          case Op::kItoF:
            r[in.dst].f = static_cast<double>(r[in.a].i);
            break;
          case Op::kFtoI:
            r[in.dst].i =
                static_cast<int64_t>(std::trunc(r[in.a].f));
            break;
          case Op::kTruncF:
            r[in.dst].f = std::trunc(r[in.a].f);
            break;
          case Op::kFNonzero:
            r[in.dst].i = r[in.a].f != 0.0;
            break;
          case Op::kAddI:
            r[in.dst].i = r[in.a].i + r[in.b].i;
            break;
          case Op::kSubI:
            r[in.dst].i = r[in.a].i - r[in.b].i;
            break;
          case Op::kMulI:
            r[in.dst].i = r[in.a].i * r[in.b].i;
            break;
          case Op::kFloorDivI:
            r[in.dst].i =
                arith::floorDivInt(r[in.a].i, r[in.b].i);
            break;
          case Op::kFloorModI:
            r[in.dst].i =
                arith::floorModInt(r[in.a].i, r[in.b].i);
            break;
          case Op::kMinI:
            r[in.dst].i = std::min(r[in.a].i, r[in.b].i);
            break;
          case Op::kMaxI:
            r[in.dst].i = std::max(r[in.a].i, r[in.b].i);
            break;
          case Op::kEqI:
            r[in.dst].i = r[in.a].i == r[in.b].i;
            break;
          case Op::kNeI:
            r[in.dst].i = r[in.a].i != r[in.b].i;
            break;
          case Op::kLtI:
            r[in.dst].i = r[in.a].i < r[in.b].i;
            break;
          case Op::kLeI:
            r[in.dst].i = r[in.a].i <= r[in.b].i;
            break;
          case Op::kGtI:
            r[in.dst].i = r[in.a].i > r[in.b].i;
            break;
          case Op::kGeI:
            r[in.dst].i = r[in.a].i >= r[in.b].i;
            break;
          case Op::kAndI:
            r[in.dst].i = r[in.a].i && r[in.b].i;
            break;
          case Op::kOrI:
            r[in.dst].i = r[in.a].i || r[in.b].i;
            break;
          case Op::kNotI:
            r[in.dst].i = r[in.a].i ? 0 : 1;
            break;
          case Op::kAddF:
            r[in.dst].f = r[in.a].f + r[in.b].f;
            break;
          case Op::kSubF:
            r[in.dst].f = r[in.a].f - r[in.b].f;
            break;
          case Op::kMulF:
            r[in.dst].f = r[in.a].f * r[in.b].f;
            break;
          case Op::kDivF:
            r[in.dst].f = r[in.a].f / r[in.b].f;
            break;
          case Op::kMinF:
            r[in.dst].f = std::min(r[in.a].f, r[in.b].f);
            break;
          case Op::kMaxF:
            r[in.dst].f = std::max(r[in.a].f, r[in.b].f);
            break;
          case Op::kNotF:
            r[in.dst].f = r[in.a].f == 0.0 ? 1.0 : 0.0;
            break;
          case Op::kCallF: {
            double x = r[in.a].f;
            double y;
            switch (static_cast<MathFn>(in.fn)) {
              case MathFn::kExp: y = std::exp(x); break;
              case MathFn::kSqrt: y = std::sqrt(x); break;
              case MathFn::kTanh: y = std::tanh(x); break;
              case MathFn::kErf: y = std::erf(x); break;
              case MathFn::kSigmoid:
                y = 1.0 / (1.0 + std::exp(-x));
                break;
              case MathFn::kAbs: y = std::fabs(x); break;
              case MathFn::kLog: y = std::log(x); break;
              default: TIR_PANIC << "bad math-function id";
            }
            r[in.dst].f = y;
            break;
          }
          case Op::kLoadF: {
            int64_t off = r[in.a].i;
            const Mem& m = mems[in.b];
            TIR_ICHECK(off >= 0 && off < m.n)
                << "NDArray access out of range: " << off << " of "
                << m.n;
            r[in.dst].f = m.data[off];
            break;
          }
          case Op::kLoadI: {
            int64_t off = r[in.a].i;
            const Mem& m = mems[in.b];
            TIR_ICHECK(off >= 0 && off < m.n)
                << "NDArray access out of range: " << off << " of "
                << m.n;
            r[in.dst].i = static_cast<int64_t>(m.data[off]);
            break;
          }
          case Op::kStoreF: {
            int64_t off = r[in.a].i;
            const Mem& m = mems[in.b];
            TIR_ICHECK(off >= 0 && off < m.n)
                << "NDArray access out of range: " << off << " of "
                << m.n;
            m.data[off] = r[in.dst].f;
            break;
          }
          case Op::kJump:
            pc = static_cast<size_t>(in.imm);
            continue;
          case Op::kJumpIfZero:
            if (r[in.a].i == 0) {
                pc = static_cast<size_t>(in.imm);
                continue;
            }
            break;
          case Op::kJumpIfGeI:
            if (r[in.a].i >= r[in.b].i) {
                pc = static_cast<size_t>(in.imm);
                continue;
            }
            break;
          case Op::kIncJump:
            r[in.a].i += 1;
            pc = static_cast<size_t>(in.imm);
            continue;
          case Op::kFmaI:
            r[in.dst].i =
                r[in.a].i * r[in.b].i +
                r[static_cast<uint16_t>(in.imm)].i;
            break;
          case Op::kFmaF: {
            // Two separate roundings (the baseline is -O3 without
            // -march, so no hardware contraction either): bit-identical
            // to the kMulF/kAddF pair this replaced.
            double p = r[in.a].f * r[in.b].f;
            double o = r[static_cast<uint16_t>(in.imm)].f;
            r[in.dst].f = in.fn == 0 ? p + o : o + p;
            break;
          }
          case Op::kIntrin: {
            const IntrinCall& ic =
                compiled.intrins[static_cast<size_t>(in.imm)];
            VmIntrinContext ctx(compiled, ic, r,
                                arrays.data());
            ic.impl(ctx, *ic.call);
            break;
          }
        }
        ++pc;
    }
}

bool
forceTreeWalk()
{
    if (forceTreeWalkOverride()) return *forceTreeWalkOverride();
    const char* env = std::getenv("TENSORIR_FORCE_TREEWALK");
    return env && *env && std::string(env) != "0";
}

void
setForceTreeWalk(std::optional<bool> force)
{
    forceTreeWalkOverride() = force;
}

void
execute(const PrimFunc& func, const std::vector<NDArray*>& args)
{
    switch (selectedEngine()) {
      case Engine::kTreeWalk: {
        Interpreter interp;
        interp.run(func, args);
        return;
      }
      case Engine::kJit:
        if (jitTryRun(func, args)) return;
        // No native module (toolchain missing, compile/dlopen failure,
        // unsupported construct): degrade to the VM.
        break;
      case Engine::kVm:
        break;
    }
    VirtualMachine vm;
    vm.run(compile(func), args);
}

} // namespace runtime
} // namespace tir
