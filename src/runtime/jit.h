/**
 * @file
 * Native JIT execution tier: C codegen -> system compiler -> dlopen.
 *
 * The third engine behind `runtime::execute`. For a lowered PrimFunc it
 * emits a C translation unit (codegen::emitJitC), shells out to the
 * system compiler (`cc`, overridable with TENSORIR_CC), dlopens the
 * resulting shared object and calls the exported entry point directly
 * over the NDArray storage. Compiled objects are cached twice:
 *
 *  - **In memory**: one dlopened JitModule per structural key for the
 *    life of the process, so repeated `execute` calls on the same
 *    function (the tuner's numeric checks, benchmark loops) pay the
 *    compiler exactly once.
 *  - **On disk**: `.so` files under jitCacheDir() (TENSORIR_JIT_CACHE,
 *    default /tmp/tensorir-jit-cache-<uid>), keyed by structural hash
 *    mixed with compiler identity, flags, and the emitter version —
 *    so a compiler upgrade or emitter change invalidates stale
 *    objects. The cache is size-bounded (TENSORIR_JIT_CACHE_MB,
 *    default 64) with oldest-mtime-first eviction, and corrupt
 *    objects are deleted and recompiled transparently.
 *
 * Compilation is single-flight: an in-process mutex + condition
 * variable collapses concurrent requests for one key, and an flock'd
 * lock file serialises compilations of the same key across processes,
 * so concurrent tuning workers compile each kernel once.
 *
 * The tier preserves the engine contract documented in
 * docs/EXECUTION.md: argument validation, EvalError on fuel
 * exhaustion, the `interp.run` failpoint site, the debug-checks gate,
 * and a trace span per run. Anything that prevents native execution —
 * no toolchain, compiler failure (failpoint `jit.compile`), dlopen
 * failure (failpoint `jit.dlopen`), unsupported constructs — degrades
 * gracefully: jitCompile returns nullptr and `execute` falls back to
 * the bytecode VM.
 */
#ifndef TENSORIR_RUNTIME_JIT_H
#define TENSORIR_RUNTIME_JIT_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "codegen/c_codegen.h"
#include "runtime/interpreter.h"

namespace tir {
namespace runtime {

/** The three numeric execution engines behind runtime::execute. */
enum class Engine
{
    kTreeWalk, ///< tree-walking Interpreter (the reference oracle)
    kVm,       ///< bytecode VirtualMachine (the default)
    kJit       ///< native code via the C backend (falls back to kVm)
};

/** Stable lower-case name of an engine ("treewalk", "vm", "jit"). */
const char* engineName(Engine engine);

/** Parse an engine name as accepted by TENSORIR_ENGINE; nullopt for
 *  anything that is not exactly "treewalk", "vm" or "jit". */
std::optional<Engine> parseEngineName(const std::string& name);

/**
 * The engine `execute` will use next, resolved in priority order:
 *  1. forceTreeWalk() — setForceTreeWalk or TENSORIR_FORCE_TREEWALK —
 *     always wins (it is the CI escape hatch and must override
 *     everything, including a tuner-requested JIT);
 *  2. an explicit setEngine()/ScopedEngine override;
 *  3. the TENSORIR_ENGINE environment variable (FatalError on names
 *     other than treewalk/vm/jit — a typo must not silently fall back);
 *  4. the default: the bytecode VM.
 * Note kJit means "attempt native execution": per-function compile
 * failures still degrade to the VM at run time.
 */
Engine selectedEngine();

/** Per-thread engine override (std::nullopt returns to the
 *  environment). The tuner installs one from TuneOptions::engine.
 *  Thread-local so concurrent tuning sessions — the schedule server
 *  runs background autoTune jobs on pool workers — select engines
 *  independently; install it on the thread that executes. */
void setEngine(std::optional<Engine> engine);

/** Current value of the setEngine override (not the resolved engine —
 *  see selectedEngine for the full priority order). */
std::optional<Engine> engineOverride();

/** RAII engine override: installs `engine` (or clears the override
 *  with nullopt), restores the previous override on destruction. */
class ScopedEngine
{
  public:
    explicit ScopedEngine(std::optional<Engine> engine)
        : saved_(engineOverride())
    {
        setEngine(engine);
    }
    ~ScopedEngine() { setEngine(saved_); }
    ScopedEngine(const ScopedEngine&) = delete;
    ScopedEngine& operator=(const ScopedEngine&) = delete;

  private:
    std::optional<Engine> saved_;
};

/**
 * A compiled-and-loaded native kernel. Holds the dlopen handle for its
 * lifetime; constructed by jitCompile (which shares instances through
 * the in-memory cache) and safe to run from multiple threads
 * concurrently — each run() binds its own intermediate buffers.
 */
class JitModule
{
  public:
    /** Takes ownership of `handle` (dlclosed on destruction). Used by
     *  jitCompile; not meant to be constructed directly. */
    JitModule(PrimFunc func, codegen::JitSource source, void* handle,
              std::string object_path);
    ~JitModule();
    JitModule(const JitModule&) = delete;
    JitModule& operator=(const JitModule&) = delete;

    /**
     * Execute natively with `args` bound to the function parameters in
     * order. Same observable contract as Interpreter::run and
     * VirtualMachine::run: per-dimension argument validation, the
     * `interp.run` failpoint site, the TENSORIR_DEBUG_CHECKS analysis
     * gate, a `jit.run` trace span, and EvalError when the statement
     * budget runs out (`step_limit` overrides
     * Interpreter::defaultStepLimit; 0 = unlimited). Fuel is charged
     * on the *lowered* statement stream — see docs/EXECUTION.md for
     * how that compares to the other engines.
     */
    void run(const std::vector<NDArray*>& args,
             std::optional<uint64_t> step_limit = std::nullopt) const;

    /** The function this module was compiled from. */
    const PrimFunc& func() const { return func_; }
    /** Path of the cached shared object backing this module. */
    const std::string& objectPath() const { return object_path_; }
    /** Exported entry symbol in the shared object. Together with
     *  objectPath/buffers/numParams this is what the process-isolated
     *  measurement runner (meta/runner.h) ships to a worker, which
     *  dlopens the object itself instead of sharing this handle. */
    const std::string& entrySymbol() const { return entry_symbol_; }
    /** Buffer slot table: parameters first, then intermediates that
     *  run() allocates per call. */
    const std::vector<Buffer>& buffers() const { return buffers_; }
    /** Leading buffers() slots bound to function parameters. */
    size_t numParams() const { return num_params_; }

  private:
    using EntryFn = int64_t (*)(double**, int64_t);

    PrimFunc func_;
    std::vector<Buffer> buffers_;
    size_t num_params_ = 0;
    void* handle_ = nullptr;
    EntryFn entry_ = nullptr;
    std::string entry_symbol_;
    std::string object_path_;
};

/**
 * Compile `func` for native execution, hitting the in-memory module
 * cache, then the on-disk `.so` cache, then the system compiler.
 * Returns nullptr when native execution is not possible — missing
 * toolchain, compiler/dlopen failure, or a construct the C backend
 * cannot express — in which case the caller should use the VM.
 * Failures are cached per key (cleared by jitResetForTesting), so a
 * broken kernel does not re-invoke the compiler on every execute.
 * Thread-safe; concurrent calls for one function compile it once.
 */
std::shared_ptr<const JitModule> jitCompile(const PrimFunc& func);

/** Whether the configured compiler can produce a loadable shared
 *  object (probed once per compiler path with a trivial TU; cached). */
bool jitAvailable();

/** Run `func` natively if possible. Returns false — after recording a
 *  `jit.fallback` trace counter — when no module could be built; the
 *  caller (runtime::execute) then runs the VM. Execution errors
 *  (EvalError, injected faults) propagate, they are not fallbacks. */
bool jitTryRun(const PrimFunc& func, const std::vector<NDArray*>& args);

/** Monotonic counters describing cache effectiveness since process
 *  start (or the last jitResetForTesting). */
struct JitStats
{
    uint64_t memory_hits = 0;      ///< served from the in-memory cache
    uint64_t disk_hits = 0;        ///< dlopened a previously cached .so
    uint64_t compiles = 0;         ///< compiler invocations attempted
    uint64_t compile_failures = 0; ///< compiler invocations that failed
    uint64_t recompiles = 0;       ///< corrupt/stale .so recoveries
    uint64_t evictions = 0;        ///< .so files evicted for size
    uint64_t vm_fallbacks = 0;     ///< jitTryRun handed off to the VM
};
JitStats jitStats();

/** The on-disk cache directory (TENSORIR_JIT_CACHE, default
 *  /tmp/tensorir-jit-cache-<uid>). Not created until first use. */
std::string jitCacheDir();

/** The on-disk cache size bound in bytes, resolved from
 *  TENSORIR_JIT_CACHE_MB (default 64 MB). Strictly parsed: garbage, a
 *  sign character, or an out-of-range value raise FatalError, and a
 *  megabyte count too large for the byte multiply clamps to
 *  UINT64_MAX. Exposed for the env-parsing regression tests. */
uint64_t jitCacheCapBytes();

/** The `.so` path `func` caches to under the current compiler/flags —
 *  the file the corruption-recovery tests overwrite. */
std::string jitObjectPathFor(const PrimFunc& func);

/** Drop the in-memory module cache, cached failures, toolchain probe
 *  results and statistics. The on-disk cache is left alone (tests use
 *  it to exercise the disk-hit and corruption paths). */
void jitResetForTesting();

} // namespace runtime
} // namespace tir

#endif // TENSORIR_RUNTIME_JIT_H
