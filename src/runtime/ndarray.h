/**
 * @file
 * Dense host tensors used by the functional interpreter and tests. Values
 * are stored as doubles regardless of the logical dtype, which holds every
 * dtype we simulate (fp16/fp32 and int8/int32) exactly for the value
 * ranges the test workloads use.
 */
#ifndef TENSORIR_RUNTIME_NDARRAY_H
#define TENSORIR_RUNTIME_NDARRAY_H

#include <cmath>
#include <vector>

#include "ir/type.h"
#include "support/logging.h"
#include "support/rng.h"

namespace tir {
namespace runtime {

/** A dense row-major tensor. */
class NDArray
{
  public:
    NDArray(DataType dtype, std::vector<int64_t> shape)
        : dtype_(dtype), shape_(std::move(shape))
    {
        int64_t total = 1;
        for (int64_t dim : shape_) total *= dim;
        data_.assign(static_cast<size_t>(total), 0.0);
    }

    DataType dtype() const { return dtype_; }
    const std::vector<int64_t>& shape() const { return shape_; }
    int64_t numel() const { return static_cast<int64_t>(data_.size()); }

    double&
    at(int64_t offset)
    {
        TIR_ICHECK(offset >= 0 && offset < numel())
            << "NDArray access out of range: " << offset << " of "
            << numel();
        return data_[static_cast<size_t>(offset)];
    }
    double
    at(int64_t offset) const
    {
        TIR_ICHECK(offset >= 0 && offset < numel());
        return data_[static_cast<size_t>(offset)];
    }

    double* data() { return data_.data(); }
    const double* data() const { return data_.data(); }

    /** Fill with uniform values; integers when the dtype is integral. */
    void
    fillRandom(Rng& rng, double lo = -1.0, double hi = 1.0)
    {
        for (double& v : data_) {
            double r = lo + (hi - lo) * rng.randDouble();
            v = dtype_.isInt() ? std::floor(r) : r;
        }
    }

    void fillZero() { data_.assign(data_.size(), 0.0); }

    /** Max absolute elementwise difference against another array. */
    double
    maxAbsDiff(const NDArray& other) const
    {
        TIR_ICHECK(numel() == other.numel());
        double worst = 0;
        for (size_t i = 0; i < data_.size(); ++i) {
            worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
        }
        return worst;
    }

  private:
    DataType dtype_;
    std::vector<int64_t> shape_;
    std::vector<double> data_;
};

} // namespace runtime
} // namespace tir

#endif // TENSORIR_RUNTIME_NDARRAY_H
