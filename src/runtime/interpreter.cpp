#include "runtime/interpreter.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <optional>

#include "arith/interval.h"
#include "support/failpoint.h"
#include "support/trace.h"
#include "tir/analysis/analysis.h"

namespace tir {
namespace runtime {

namespace {

/** Explicit setDebugChecks override; unset falls through to the env. */
std::optional<bool>&
debugChecksOverride()
{
    static std::optional<bool> value;
    return value;
}

/** Explicit setDefaultStepLimit override; unset falls to the env.
 *  Thread-local for the same reason as the engine override (jit.cpp):
 *  concurrent tuning sessions install their fuel budgets per thread,
 *  and all execution of a session happens on its own thread. */
std::optional<uint64_t>&
stepLimitOverride()
{
    static thread_local std::optional<uint64_t> value;
    return value;
}

/**
 * The intrinsic registry is written once per registration and read from
 * concurrent search workers (every candidate evaluation resolves its
 * intrinsic calls). Copy-on-write: writers rebuild an immutable map
 * under a mutex and publish it through an atomic shared_ptr; readers
 * take one atomic snapshot and never observe a map mid-mutation.
 */
std::mutex&
registryWriteMutex()
{
    static std::mutex m;
    return m;
}

std::atomic<std::shared_ptr<const IntrinsicRegistry>>&
registrySlot()
{
    static std::atomic<std::shared_ptr<const IntrinsicRegistry>> slot{
        std::make_shared<const IntrinsicRegistry>()};
    return slot;
}

} // namespace

std::shared_ptr<const IntrinsicRegistry>
Interpreter::intrinsicSnapshot()
{
    return registrySlot().load(std::memory_order_acquire);
}

void
Interpreter::registerIntrinsic(const std::string& name, IntrinsicImpl impl)
{
    std::lock_guard<std::mutex> lock(registryWriteMutex());
    auto next = std::make_shared<IntrinsicRegistry>(
        *registrySlot().load(std::memory_order_acquire));
    (*next)[name] = std::move(impl);
    registrySlot().store(std::move(next), std::memory_order_release);
}

bool
Interpreter::hasIntrinsic(const std::string& name)
{
    return intrinsicSnapshot()->count(name) > 0;
}

void
Interpreter::setDebugChecks(bool enabled)
{
    debugChecksOverride() = enabled;
}

bool
Interpreter::debugChecksEnabled()
{
    if (debugChecksOverride()) return *debugChecksOverride();
    const char* env = std::getenv("TENSORIR_DEBUG_CHECKS");
    return env && *env && std::string(env) != "0";
}

void
Interpreter::setDefaultStepLimit(uint64_t limit)
{
    stepLimitOverride() = limit;
}

void
Interpreter::clearDefaultStepLimit()
{
    stepLimitOverride().reset();
}

uint64_t
Interpreter::defaultStepLimit()
{
    if (stepLimitOverride()) return *stepLimitOverride();
    if (const char* env = std::getenv("TENSORIR_STEP_LIMIT")) {
        // strtoull would map garbage ("abc", "10x", "-1") to 0 or a
        // wrapped value; 0 means *unlimited* fuel, so a typo silently
        // disarming the budget is the worst possible failure mode.
        const char* p = env;
        TIR_CHECK(*p != '\0' &&
                  std::all_of(p, p + std::string(env).size(),
                              [](unsigned char c) {
                                  return std::isdigit(c) != 0;
                              }))
            << "TENSORIR_STEP_LIMIT must be a non-negative integer, "
               "got \""
            << env << "\"";
        errno = 0;
        char* end = nullptr;
        uint64_t value = std::strtoull(env, &end, 10);
        TIR_CHECK(errno != ERANGE && end && *end == '\0')
            << "TENSORIR_STEP_LIMIT out of range: \"" << env << "\"";
        return value;
    }
    return 0;
}

ScopedStepLimit::ScopedStepLimit(uint64_t limit)
    : saved_(stepLimitOverride())
{
    Interpreter::setDefaultStepLimit(limit);
}

ScopedStepLimit::~ScopedStepLimit()
{
    stepLimitOverride() = saved_;
}

void
validateArguments(const PrimFunc& func, const std::vector<NDArray*>& args)
{
    TIR_CHECK(args.size() == func->params.size())
        << func->name << " expects " << func->params.size()
        << " arguments, got " << args.size();
    for (size_t i = 0; i < args.size(); ++i) {
        const Buffer& param = func->params[i];
        const std::vector<int64_t>& shape = args[i]->shape();
        // Per-dimension equality, not numel(): a 2x6 array must not
        // silently bind to a 3x4 parameter even though both hold 12
        // elements — every strided access would read the wrong cell.
        TIR_CHECK(shape.size() == param->ndim())
            << "argument " << i << " of " << func->name << " has rank "
            << shape.size() << ", parameter " << param->name
            << " expects rank " << param->ndim();
        for (size_t d = 0; d < shape.size(); ++d) {
            TIR_CHECK(shape[d] == param->shapeInt(d))
                << "argument " << i << " of " << func->name
                << " has extent " << shape[d] << " in dimension " << d
                << ", parameter " << param->name << " expects "
                << param->shapeInt(d);
        }
    }
}

void
Interpreter::run(const PrimFunc& func, const std::vector<NDArray*>& args)
{
    validateArguments(func, args);
    trace::Span span("interp.run", trace::arg("func", func->name));
    if (failpoint::inject("interp.run")) {
        throw EvalError("injected interpreter fault (failpoint "
                        "interp.run) in " +
                        func->name);
    }
    steps_ = 0;
    active_limit_ = step_limit_ ? *step_limit_ : defaultStepLimit();
    env_.clear();
    storage_.clear();
    bound_.clear();
    registry_ = intrinsicSnapshot();
    for (size_t i = 0; i < args.size(); ++i) {
        bound_[func->params[i].get()] = args[i];
    }
    if (debugChecksEnabled()) {
        analysis::AnalysisReport report = analysis::analyzeFunc(func);
        TIR_CHECK(report.ok())
            << "static memory analysis failed for " << func->name
            << " before execution:\n"
            << report.summary();
    }
    exec(func->body);
}

NDArray*
Interpreter::getArray(const Buffer& buffer)
{
    auto bound_it = bound_.find(buffer.get());
    if (bound_it != bound_.end()) return bound_it->second;
    auto it = storage_.find(buffer.get());
    if (it != storage_.end()) return it->second.get();
    std::vector<int64_t> shape;
    shape.reserve(buffer->ndim());
    for (size_t d = 0; d < buffer->ndim(); ++d) {
        shape.push_back(buffer->shapeInt(d));
    }
    auto array = std::make_unique<NDArray>(buffer->dtype, shape);
    NDArray* raw = array.get();
    storage_[buffer.get()] = std::move(array);
    return raw;
}

int64_t
Interpreter::linearOffset(const Buffer& buffer,
                          const std::vector<Expr>& indices)
{
    // An under-indexed access would quietly compute an offset into the
    // leading dimensions and read the wrong element.
    TIR_ICHECK(indices.size() == buffer->ndim())
        << "buffer " << buffer->name << " has rank " << buffer->ndim()
        << " but the access supplies " << indices.size() << " indices";
    int64_t offset = 0;
    for (size_t d = 0; d < indices.size(); ++d) {
        offset = offset * buffer->shapeInt(d) + evalInt(indices[d]);
    }
    return offset;
}

int64_t
Interpreter::evalInt(const Expr& expr)
{
    switch (expr->kind) {
      case ExprKind::kIntImm:
        return static_cast<const IntImmNode&>(*expr).value;
      case ExprKind::kFloatImm:
        return static_cast<int64_t>(
            static_cast<const FloatImmNode&>(*expr).value);
      case ExprKind::kVar: {
        auto it = env_.find(static_cast<const VarNode*>(expr.get()));
        TIR_ICHECK(it != env_.end())
            << "unbound variable "
            << static_cast<const VarNode&>(*expr).name;
        return it->second;
      }
      case ExprKind::kCast: {
        const Expr& inner = static_cast<const CastNode&>(*expr).value;
        if (inner->dtype.isFloat()) {
            return static_cast<int64_t>(std::trunc(evalValue(inner)));
        }
        return evalInt(inner);
      }
      case ExprKind::kBufferLoad: {
        const auto& n = static_cast<const BufferLoadNode&>(*expr);
        return static_cast<int64_t>(
            getArray(n.buffer)->at(linearOffset(n.buffer, n.indices)));
      }
      case ExprKind::kNot:
        return evalInt(static_cast<const NotNode&>(*expr).a) ? 0 : 1;
      case ExprKind::kSelect: {
        const auto& n = static_cast<const SelectNode&>(*expr);
        return evalInt(n.cond) ? evalInt(n.tval) : evalInt(n.fval);
      }
      default: {
        const auto& n = static_cast<const BinaryNode&>(*expr);
        int64_t a = evalInt(n.a);
        int64_t b = evalInt(n.b);
        switch (expr->kind) {
          case ExprKind::kAdd: return a + b;
          case ExprKind::kSub: return a - b;
          case ExprKind::kMul: return a * b;
          case ExprKind::kFloorDiv: return arith::floorDivInt(a, b);
          case ExprKind::kFloorMod: return arith::floorModInt(a, b);
          case ExprKind::kMin: return std::min(a, b);
          case ExprKind::kMax: return std::max(a, b);
          case ExprKind::kEQ: return a == b;
          case ExprKind::kNE: return a != b;
          case ExprKind::kLT: return a < b;
          case ExprKind::kLE: return a <= b;
          case ExprKind::kGT: return a > b;
          case ExprKind::kGE: return a >= b;
          case ExprKind::kAnd: return a && b;
          case ExprKind::kOr: return a || b;
          default:
            TIR_PANIC << "cannot integer-evaluate expression kind";
        }
      }
    }
}

double
Interpreter::evalValue(const Expr& expr)
{
    switch (expr->kind) {
      case ExprKind::kIntImm:
        return static_cast<double>(
            static_cast<const IntImmNode&>(*expr).value);
      case ExprKind::kFloatImm:
        return static_cast<const FloatImmNode&>(*expr).value;
      case ExprKind::kVar:
        return static_cast<double>(evalInt(expr));
      case ExprKind::kCast: {
        const auto& n = static_cast<const CastNode&>(*expr);
        double v = evalValue(n.value);
        if (n.dtype.isInt() || n.dtype.isBool()) return std::trunc(v);
        return v;
      }
      case ExprKind::kNot:
        return evalValue(static_cast<const NotNode&>(*expr).a) == 0.0;
      case ExprKind::kSelect: {
        const auto& n = static_cast<const SelectNode&>(*expr);
        return evalValue(n.cond) != 0.0 ? evalValue(n.tval)
                                        : evalValue(n.fval);
      }
      case ExprKind::kBufferLoad: {
        const auto& n = static_cast<const BufferLoadNode&>(*expr);
        return getArray(n.buffer)->at(linearOffset(n.buffer, n.indices));
      }
      case ExprKind::kBufferPtr:
        TIR_PANIC << "BufferPtr evaluated as a value";
      case ExprKind::kCall: {
        const auto& n = static_cast<const CallNode&>(*expr);
        if (n.op == "exp") return std::exp(evalValue(n.args[0]));
        if (n.op == "sqrt") return std::sqrt(evalValue(n.args[0]));
        if (n.op == "tanh") return std::tanh(evalValue(n.args[0]));
        if (n.op == "erf") return std::erf(evalValue(n.args[0]));
        if (n.op == "sigmoid") {
            return 1.0 / (1.0 + std::exp(-evalValue(n.args[0])));
        }
        if (n.op == "abs") return std::fabs(evalValue(n.args[0]));
        if (n.op == "log") return std::log(evalValue(n.args[0]));
        TIR_FATAL << "unknown pure call in value position: " << n.op;
      }
      default: {
        const auto& n = static_cast<const BinaryNode&>(*expr);
        if (!expr->dtype.isFloat()) {
            return static_cast<double>(evalInt(expr));
        }
        double a = evalValue(n.a);
        double b = evalValue(n.b);
        switch (expr->kind) {
          case ExprKind::kAdd: return a + b;
          case ExprKind::kSub: return a - b;
          case ExprKind::kMul: return a * b;
          case ExprKind::kDiv: return a / b;
          case ExprKind::kMin: return std::min(a, b);
          case ExprKind::kMax: return std::max(a, b);
          default:
            TIR_PANIC << "cannot value-evaluate expression kind";
        }
      }
    }
}

BufferRef
Interpreter::resolvePtr(const Expr& expr)
{
    TIR_ICHECK(expr->kind == ExprKind::kBufferPtr)
        << "intrinsic argument is not a buffer pointer";
    const auto& n = static_cast<const BufferPtrNode&>(*expr);
    return {getArray(n.buffer), linearOffset(n.buffer, n.indices),
            n.buffer.get()};
}

void
Interpreter::exec(const Stmt& stmt)
{
    // Fuel accounting: statements are the loop carriers, so counting
    // them bounds every runaway program (an infinite loop executes its
    // body statements forever) without taxing expression evaluation.
    if (active_limit_ != 0 && ++steps_ > active_limit_) {
        throw EvalError("interpreter step limit of " +
                        std::to_string(active_limit_) +
                        " statements exceeded (runaway program?)");
    }
    switch (stmt->kind) {
      case StmtKind::kBufferStore: {
        const auto& n = static_cast<const BufferStoreNode&>(*stmt);
        double value = n.value->dtype.isFloat()
                           ? evalValue(n.value)
                           : static_cast<double>(evalInt(n.value));
        getArray(n.buffer)->at(linearOffset(n.buffer, n.indices)) = value;
        return;
      }
      case StmtKind::kEvaluate: {
        // Storage barriers order threads on real hardware; sequential
        // execution is already ordered, so they are no-ops here.
        if (asStorageSync(*stmt)) return;
        const auto& n = static_cast<const EvaluateNode&>(*stmt);
        TIR_ICHECK(n.value->kind == ExprKind::kCall)
            << "Evaluate expects an intrinsic call";
        const auto& c = static_cast<const CallNode&>(*n.value);
        auto it = registry_->find(c.op);
        TIR_CHECK(it != registry_->end())
            << "no runtime semantics registered for intrinsic " << c.op;
        it->second(*this, c);
        return;
      }
      case StmtKind::kSeq: {
        for (const Stmt& s : static_cast<const SeqStmtNode&>(*stmt).seq) {
            exec(s);
        }
        return;
      }
      case StmtKind::kIfThenElse: {
        const auto& n = static_cast<const IfThenElseNode&>(*stmt);
        if (evalInt(n.cond)) {
            exec(n.then_case);
        } else if (n.else_case) {
            exec(n.else_case);
        }
        return;
      }
      case StmtKind::kFor: {
        const auto& n = static_cast<const ForNode&>(*stmt);
        int64_t min_v = evalInt(n.min);
        int64_t extent = evalInt(n.extent);
        // Save a shadowed outer binding of the same VarNode: erasing
        // unconditionally after the loop would destroy it and any
        // later use of the outer variable would fault as unbound.
        std::optional<int64_t> shadowed;
        if (auto it = env_.find(n.loop_var.get()); it != env_.end()) {
            shadowed = it->second;
        }
        for (int64_t i = 0; i < extent; ++i) {
            env_[n.loop_var.get()] = min_v + i;
            exec(n.body);
        }
        if (shadowed) {
            env_[n.loop_var.get()] = *shadowed;
        } else {
            env_.erase(n.loop_var.get());
        }
        return;
      }
      case StmtKind::kBlock:
        TIR_PANIC << "bare Block outside BlockRealize";
      case StmtKind::kBlockRealize: {
        const auto& n = static_cast<const BlockRealizeNode&>(*stmt);
        if (!evalInt(n.predicate)) return;
        const BlockNode& block = *n.block;
        bool at_reduction_start = true;
        // Same save/restore discipline as kFor: a block iter var may
        // shadow an outer binding of the same VarNode.
        std::vector<std::optional<int64_t>> shadowed(
            block.iter_vars.size());
        for (size_t i = 0; i < block.iter_vars.size(); ++i) {
            const IterVar& iv = block.iter_vars[i];
            int64_t value = evalInt(n.iter_values[i]);
            if (auto it = env_.find(iv.var.get()); it != env_.end()) {
                shadowed[i] = it->second;
            }
            env_[iv.var.get()] = value;
            if (iv.type == IterType::kReduce &&
                value != evalInt(iv.dom.min)) {
                at_reduction_start = false;
            }
        }
        if (block.init && at_reduction_start) exec(block.init);
        exec(block.body);
        // Restore in reverse so a VarNode appearing twice in iter_vars
        // unwinds to the outermost shadowed value.
        for (size_t i = block.iter_vars.size(); i-- > 0;) {
            const IterVar& iv = block.iter_vars[i];
            if (shadowed[i]) {
                env_[iv.var.get()] = *shadowed[i];
            } else {
                env_.erase(iv.var.get());
            }
        }
        return;
      }
    }
}

} // namespace runtime
} // namespace tir
