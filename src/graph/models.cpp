#include "graph/models.h"

namespace tir {
namespace graph {

namespace {

using workloads::batchMatmul;
using workloads::conv2d;
using workloads::depthwiseConv2d;
using workloads::gmm;

/** Shorthand for a conv2d layer. */
Layer
conv(int64_t n, int64_t hw, int64_t ci, int64_t co, int64_t k,
     int64_t stride, int64_t pad, int count, DataType in_dtype,
     DataType acc)
{
    return {conv2d(n, hw, hw, ci, co, k, stride, pad, 1, in_dtype, acc),
            count};
}

Layer
dep(int64_t n, int64_t hw, int64_t c, int64_t stride, int count,
    DataType in_dtype, DataType acc)
{
    return {depthwiseConv2d(n, hw, hw, c, 3, stride, 1, in_dtype, acc),
            count};
}

} // namespace

ModelSpec
resnet50Gpu()
{
    DataType f16 = DataType::f16();
    ModelSpec model;
    model.name = "ResNet-50";
    // Representative unique bottleneck layers (batch 1, NHWC).
    model.layers = {
        conv(1, 224, 4, 64, 7, 2, 3, 1, f16, f16), // stem (3->4 padded)
        conv(1, 56, 64, 64, 1, 1, 0, 3, f16, f16),
        conv(1, 56, 64, 64, 3, 1, 1, 3, f16, f16),
        conv(1, 56, 64, 256, 1, 1, 0, 3, f16, f16),
        conv(1, 56, 256, 64, 1, 1, 0, 2, f16, f16),
        conv(1, 56, 256, 128, 1, 2, 0, 1, f16, f16),
        conv(1, 28, 128, 128, 3, 1, 1, 4, f16, f16),
        conv(1, 28, 128, 512, 1, 1, 0, 4, f16, f16),
        conv(1, 28, 512, 128, 1, 1, 0, 3, f16, f16),
        conv(1, 28, 512, 256, 1, 2, 0, 1, f16, f16),
        conv(1, 14, 256, 256, 3, 1, 1, 6, f16, f16),
        conv(1, 14, 256, 1024, 1, 1, 0, 6, f16, f16),
        conv(1, 14, 1024, 256, 1, 1, 0, 5, f16, f16),
        conv(1, 14, 1024, 512, 1, 2, 0, 1, f16, f16),
        conv(1, 7, 512, 512, 3, 1, 1, 3, f16, f16),
        conv(1, 7, 512, 2048, 1, 1, 0, 3, f16, f16),
        conv(1, 7, 2048, 512, 1, 1, 0, 2, f16, f16),
        {gmm(16, 1000, 2048, f16, f16), 1}, // padded-batch classifier
    };
    model.framework_extra_ops = 70; // bn/relu/add per bottleneck
    return model;
}

ModelSpec
mobilenetV2Gpu()
{
    DataType f16 = DataType::f16();
    ModelSpec model;
    model.name = "MobileNet-V2";
    model.layers = {
        conv(1, 224, 4, 32, 3, 2, 1, 1, f16, f16),
        dep(1, 112, 32, 1, 1, f16, f16),
        conv(1, 112, 32, 16, 1, 1, 0, 1, f16, f16),
        conv(1, 112, 16, 96, 1, 1, 0, 1, f16, f16),
        dep(1, 112, 96, 2, 1, f16, f16),
        conv(1, 56, 96, 24, 1, 1, 0, 1, f16, f16),
        conv(1, 56, 24, 144, 1, 1, 0, 2, f16, f16),
        dep(1, 56, 144, 1, 1, f16, f16),
        dep(1, 56, 144, 2, 1, f16, f16),
        conv(1, 56, 144, 24, 1, 1, 0, 1, f16, f16),
        conv(1, 28, 144, 32, 1, 1, 0, 1, f16, f16),
        conv(1, 28, 32, 192, 1, 1, 0, 3, f16, f16),
        dep(1, 28, 192, 1, 2, f16, f16),
        dep(1, 28, 192, 2, 1, f16, f16),
        conv(1, 28, 192, 32, 1, 1, 0, 2, f16, f16),
        conv(1, 14, 192, 64, 1, 1, 0, 1, f16, f16),
        conv(1, 14, 64, 384, 1, 1, 0, 4, f16, f16),
        dep(1, 14, 384, 1, 4, f16, f16),
        conv(1, 14, 384, 64, 1, 1, 0, 3, f16, f16),
        conv(1, 14, 384, 96, 1, 1, 0, 1, f16, f16),
        conv(1, 14, 96, 576, 1, 1, 0, 3, f16, f16),
        dep(1, 14, 576, 1, 2, f16, f16),
        dep(1, 14, 576, 2, 1, f16, f16),
        conv(1, 14, 576, 96, 1, 1, 0, 2, f16, f16),
        conv(1, 7, 576, 160, 1, 1, 0, 1, f16, f16),
        conv(1, 7, 160, 960, 1, 1, 0, 3, f16, f16),
        dep(1, 7, 960, 1, 3, f16, f16),
        conv(1, 7, 960, 160, 1, 1, 0, 2, f16, f16),
        conv(1, 7, 960, 320, 1, 1, 0, 1, f16, f16),
        conv(1, 7, 320, 1280, 1, 1, 0, 1, f16, f16),
        {gmm(16, 1000, 1280, f16, f16), 1},
    };
    model.framework_extra_ops = 105;
    return model;
}

ModelSpec
bertLargeGpu()
{
    DataType f16 = DataType::f16();
    ModelSpec model;
    model.name = "BERT-large";
    const int layers = 24;
    const int64_t seq = 384;
    const int64_t hidden = 1024;
    const int heads = 16;
    const int64_t head_dim = hidden / heads;
    model.layers = {
        {gmm(seq, 3 * hidden, hidden, f16, f16), layers},     // QKV
        {batchMatmul(heads, seq, seq, head_dim, f16, f16), layers},
        {batchMatmul(heads, seq, head_dim, seq, f16, f16), layers},
        {gmm(seq, hidden, hidden, f16, f16), layers},         // proj
        {gmm(seq, 4 * hidden, hidden, f16, f16), layers},     // FFN in
        {gmm(seq, hidden, 4 * hidden, f16, f16), layers},     // FFN out
    };
    model.framework_extra_ops = layers * 8; // layernorm/softmax/gelu/add
    return model;
}

ModelSpec
vitGpu()
{
    DataType f16 = DataType::f16();
    ModelSpec model;
    model.name = "ViT";
    const int layers = 12;
    const int64_t seq = 256;
    const int64_t hidden = 768;
    const int heads = 12;
    const int64_t head_dim = hidden / heads;
    model.layers = {
        conv(1, 224, 4, hidden, 16, 16, 0, 1, f16, f16), // patch embed
        {gmm(seq, 3 * hidden, hidden, f16, f16), layers},
        {batchMatmul(heads, seq, seq, head_dim, f16, f16), layers},
        {batchMatmul(heads, seq, head_dim, seq, f16, f16), layers},
        {gmm(seq, hidden, hidden, f16, f16), layers},
        {gmm(seq, 4 * hidden, hidden, f16, f16), layers},
        {gmm(seq, hidden, 4 * hidden, f16, f16), layers},
    };
    model.framework_extra_ops = layers * 8;
    // The paper's §5.2: TensorRT does not yet support this emerging
    // model family.
    model.tensorrt_unsupported = true;
    return model;
}

namespace {

ModelSpec
quantize(const ModelSpec& base, const std::string& suffix)
{
    // Rebuild every layer with int8 inputs and int32 accumulators.
    ModelSpec model;
    model.name = base.name + suffix;
    model.framework_extra_ops = base.framework_extra_ops;
    for (const Layer& layer : base.layers) {
        // The workload generators capture shapes; reconstruct from the
        // function signature would be heavyweight, so quantized models
        // are built directly below instead.
        (void)layer;
    }
    return model;
}

} // namespace

ModelSpec
resnet50Arm()
{
    DataType i8 = DataType::i8();
    DataType i32 = DataType::i32();
    ModelSpec model;
    model.name = "ResNet-50-int8";
    model.layers = {
        conv(1, 56, 64, 64, 3, 1, 1, 6, i8, i32),
        conv(1, 56, 64, 256, 1, 1, 0, 4, i8, i32),
        conv(1, 28, 128, 128, 3, 1, 1, 4, i8, i32),
        conv(1, 28, 128, 512, 1, 1, 0, 6, i8, i32),
        conv(1, 14, 256, 256, 3, 1, 1, 6, i8, i32),
        conv(1, 14, 256, 1024, 1, 1, 0, 8, i8, i32),
        conv(1, 7, 512, 512, 3, 1, 1, 3, i8, i32),
        conv(1, 7, 512, 2048, 1, 1, 0, 5, i8, i32),
        {gmm(16, 1000, 2048, i8, i32), 1},
    };
    model.framework_extra_ops = 70;
    (void)quantize; // documented alternative path
    return model;
}

ModelSpec
mobilenetV2Arm()
{
    DataType i8 = DataType::i8();
    DataType i32 = DataType::i32();
    ModelSpec model;
    model.name = "MobileNet-V2-int8";
    model.layers = {
        conv(1, 112, 32, 16, 1, 1, 0, 1, i8, i32),
        dep(1, 112, 96, 2, 2, i8, i32),
        conv(1, 56, 96, 24, 1, 1, 0, 2, i8, i32),
        dep(1, 56, 144, 1, 2, i8, i32),
        conv(1, 28, 144, 32, 1, 1, 0, 3, i8, i32),
        dep(1, 28, 192, 1, 3, i8, i32),
        conv(1, 14, 192, 64, 1, 1, 0, 4, i8, i32),
        dep(1, 14, 384, 1, 4, i8, i32),
        conv(1, 14, 384, 96, 1, 1, 0, 3, i8, i32),
        dep(1, 14, 576, 1, 3, i8, i32),
        conv(1, 7, 576, 160, 1, 1, 0, 3, i8, i32),
        conv(1, 7, 960, 320, 1, 1, 0, 2, i8, i32),
        {gmm(16, 1000, 1280, i8, i32), 1},
    };
    model.framework_extra_ops = 105;
    return model;
}

ModelSpec
bertBaseArm()
{
    DataType i8 = DataType::i8();
    DataType i32 = DataType::i32();
    ModelSpec model;
    model.name = "BERT-base-int8";
    const int layers = 12;
    const int64_t seq = 128;
    const int64_t hidden = 768;
    model.layers = {
        {gmm(seq, 3 * hidden, hidden, i8, i32), layers},
        {gmm(seq, hidden, hidden, i8, i32), layers},
        {gmm(seq, 4 * hidden, hidden, i8, i32), layers},
        {gmm(seq, hidden, 4 * hidden, i8, i32), layers},
    };
    model.framework_extra_ops = layers * 8;
    return model;
}

} // namespace graph
} // namespace tir
