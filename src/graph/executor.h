/**
 * @file
 * End-to-end graph execution estimates: tune every unique layer of a
 * model with a given tuner persona, sum per-layer latencies (weighted by
 * occurrence count), and account the simulated tuning cost — the inputs
 * to Figure 12/14 and Table 1.
 */
#ifndef TENSORIR_GRAPH_EXECUTOR_H
#define TENSORIR_GRAPH_EXECUTOR_H

#include "baselines/libraries.h"
#include "graph/models.h"
#include "meta/search.h"

namespace tir {
namespace graph {

/** Result of compiling + timing a model with one system. */
struct ModelResult
{
    std::string system;
    double latency_us = 0;
    /** Simulated wall-clock time spent tuning (profiling-dominated). */
    double tuning_minutes = 0;
    bool supported = true;
    /** Candidate-filter totals summed over all tuned layers: structural
     *  rejects, provable-race rejects, and provable-out-of-bounds
     *  rejects (TuneResult's invalid/race/bounds counters). */
    int invalid_filtered = 0;
    int race_filtered = 0;
    int bounds_filtered = 0;
    int lint_filtered = 0;
    /** Isolated-measurement rejects (TuneResult's crash/hang
     *  counters): workers killed by the candidate's own kernel or by
     *  the hard wall-clock timeout. Zero for the analytical backend. */
    int crash_filtered = 0;
    int hang_filtered = 0;
};

/** Tune a model with one of our tuner personas and sum layer times. */
ModelResult runModelTuned(const ModelSpec& model,
                          const hwsim::DeviceModel& device,
                          const std::string& target,
                          const std::vector<std::string>& intrins,
                          meta::TunerStyle style,
                          const meta::TuneOptions& options);

/** Estimate a model under a vendor library / framework persona. */
ModelResult runModelLibrary(const ModelSpec& model,
                            baselines::Library library,
                            const hwsim::GpuDevice& gpu,
                            const hwsim::CpuDevice& cpu, bool is_gpu,
                            double per_op_overhead_us);

} // namespace graph
} // namespace tir

#endif // TENSORIR_GRAPH_EXECUTOR_H
