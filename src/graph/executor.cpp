#include "graph/executor.h"

#include "support/trace.h"

namespace tir {
namespace graph {

ModelResult
runModelTuned(const ModelSpec& model, const hwsim::DeviceModel& device,
              const std::string& target,
              const std::vector<std::string>& intrins,
              meta::TunerStyle style, const meta::TuneOptions& options)
{
    // Owns the trace session for the whole model when per-task autoTune
    // calls would otherwise each open and close their own.
    trace::SessionGuard trace_session(options.trace_path);
    trace::Span model_span("graph.run_model",
                           trace::arg("model", model.name));
    ModelResult result;
    switch (style) {
      case meta::TunerStyle::kTensorIR: result.system = "TensorIR"; break;
      case meta::TunerStyle::kLoopOnly: result.system = "TVM"; break;
      case meta::TunerStyle::kAmosLike: result.system = "AMOS"; break;
    }
    uint64_t seed = options.seed;
    for (const Layer& layer : model.layers) {
        trace::Span layer_span("graph.layer");
        layer_span.addArg(trace::arg("func", layer.op.func->name));
        layer_span.addArg(
            trace::arg("count", static_cast<int64_t>(layer.count)));
        meta::TuneTask task{layer.op.func, layer.op.einsum_block, target,
                            intrins};
        meta::TuneOptions opts = options;
        opts.seed = seed++;
        if (style == meta::TunerStyle::kLoopOnly) {
            // The paper's Table 1 observation: without tensorization the
            // search space is larger, so the baseline spends more trials
            // per task to converge.
            opts.generations = options.generations +
                               (options.generations + 1) / 2;
        }
        meta::TuneResult tuned =
            meta::autoTune(task, device, opts, style);
        result.latency_us += tuned.best_latency_us * layer.count;
        result.tuning_minutes += tuned.tuning_cost_us / 60e6;
        result.invalid_filtered += tuned.invalid_filtered;
        result.race_filtered += tuned.race_filtered;
        result.bounds_filtered += tuned.bounds_filtered;
        result.lint_filtered += tuned.lint_filtered;
        result.crash_filtered += tuned.crash_filtered;
        result.hang_filtered += tuned.hang_filtered;
    }
    return result;
}

ModelResult
runModelLibrary(const ModelSpec& model, baselines::Library library,
                const hwsim::GpuDevice& gpu, const hwsim::CpuDevice& cpu,
                bool is_gpu, double per_op_overhead_us)
{
    ModelResult result;
    result.system = baselines::libraryName(library);
    if (is_gpu && library == baselines::Library::kTensorRT &&
        model.tensorrt_unsupported) {
        result.supported = false;
        return result;
    }
    for (const Layer& layer : model.layers) {
        std::optional<double> latency =
            is_gpu ? baselines::libraryLatencyUs(library, layer.op, gpu)
                   : baselines::libraryLatencyUsCpu(library, layer.op,
                                                    cpu);
        if (!latency) {
            result.supported = false;
            return result;
        }
        result.latency_us += *latency * layer.count;
    }
    // Eager frameworks pay per-op dispatch for the elementwise glue that
    // compilers fuse away.
    result.latency_us += model.framework_extra_ops * per_op_overhead_us;
    return result;
}

} // namespace graph
} // namespace tir
