/**
 * @file
 * Operator-graph model zoo for the end-to-end evaluation (§5.2, §5.3):
 * ResNet-50, MobileNet-V2, BERT-large and ViT as lists of unique layer
 * workloads with occurrence counts (task extraction is by construction:
 * identical layers share one tuning task).
 */
#ifndef TENSORIR_GRAPH_MODELS_H
#define TENSORIR_GRAPH_MODELS_H

#include <string>
#include <vector>

#include "workloads/workloads.h"

namespace tir {
namespace graph {

/** One unique layer and how many times the model runs it. */
struct Layer
{
    workloads::OpSpec op;
    int count = 1;
};

/** A model as a bag of unique layers. */
struct ModelSpec
{
    std::string name;
    std::vector<Layer> layers;
    /** Elementwise/normalization ops fused away by compilers but paid
     *  per-op by eager frameworks. */
    int framework_extra_ops = 0;
    /** True when TensorRT has no kernel coverage for the model (ViT). */
    bool tensorrt_unsupported = false;

    double
    totalMacs() const
    {
        double total = 0;
        for (const Layer& l : layers) total += l.op.macs * l.count;
        return total;
    }
};

/** ResNet-50, batch 1, fp16 (representative unique-layer set). */
ModelSpec resnet50Gpu();
/** MobileNet-V2, batch 1, fp16. */
ModelSpec mobilenetV2Gpu();
/** BERT-large, sequence 384, fp16. */
ModelSpec bertLargeGpu();
/** ViT-Base, 256 tokens, fp16 (TensorRT-unsupported per §5.2). */
ModelSpec vitGpu();

/** Quantized int8 models for the ARM evaluation (§5.3). */
ModelSpec resnet50Arm();
ModelSpec mobilenetV2Arm();
ModelSpec bertBaseArm();

} // namespace graph
} // namespace tir

#endif // TENSORIR_GRAPH_MODELS_H
