/**
 * @file
 * Static memory analysis of lowered TensorIR (the §3.3 correctness
 * story carried past structural validation): a cross-thread race
 * detector and an out-of-bounds access checker built on the access-site
 * extractor (access_extract.h). The analysis is three-valued — a
 * hazard is reported as an *error* only when it is provable on every
 * (or some concrete) execution, as a *warning* when it is possible but
 * unproven, and not at all when the accesses are provably safe — so
 * the evolutionary search can reject candidates on errors without ever
 * discarding a correct-but-hard-to-prove schedule.
 *
 * Known approximations, documented rather than hidden:
 *  - Disjointness across thread coordinates is proven per axis with
 *    the other axes held equal (the mixed-radix layouts produced by
 *    split/fuse are exactly provable this way; cross-axis aliasing
 *    like X[t + u] is excluded upstream by the quasi-affine binding
 *    validation).
 *  - Loop-carried shared-memory WAR hazards (double-buffering) are not
 *    modeled; insertStorageSync places the loop-top barrier for them.
 */
#ifndef TENSORIR_TIR_ANALYSIS_ANALYSIS_H
#define TENSORIR_TIR_ANALYSIS_ANALYSIS_H

#include <string>
#include <vector>

#include "ir/stmt.h"

namespace tir {
namespace analysis {

/** What a diagnostic is about. Every kind has a stable code (see
 *  diagCode) so tools, CI gates, and suppression lists can match on
 *  identity rather than message text. */
enum class DiagKind : uint8_t {
    /** TIR-R001: two writes from distinct thread coordinates hit one
     *  location. */
    kWriteRace,
    /** TIR-R002: cross-thread read-after-write on a shared-scope buffer
     *  with no intervening storage-sync barrier. */
    kRawNoSync,
    /** TIR-B001: access index provably (error) or possibly (warning)
     *  outside the declared buffer shape. */
    kOutOfBounds,
    /** TIR-R003: storage-sync barrier under thread-divergent control
     *  flow. */
    kDivergentSync,
    /** TIR-V001: thread-binding structure violation
     *  (verifyThreadBindings). */
    kThreadBinding,
    /** TIR-V002: producer regions fail to cover a consumer read
     *  (verifyRegionCover). */
    kRegionCover,
    /** TIR-L001: read of an intermediate buffer no write can have
     *  reached first (dataflow.h). */
    kUseBeforeInit,
    /** TIR-L002: store to an intermediate buffer no later (or
     *  loop-carried) read can observe (dataflow.h). */
    kDeadStore,
    /** TIR-L003: storage-sync barrier whose protected pair set is
     *  empty — every access pair it separates is provably ordered or
     *  disjoint without it (dataflow.h). */
    kRedundantSync,
};

/** Stable diagnostic code ("TIR-R001", "TIR-L002", ...). */
const char* diagCode(DiagKind kind);

/** How certain the analysis is. */
enum class Severity : uint8_t {
    /** Provable on the program's actual executions. */
    kError,
    /** Possible but not proven (or proven only non-exactly). */
    kWarning,
};

/** One finding, with enough context to act on it. */
struct Diagnostic
{
    DiagKind kind;
    Severity severity = Severity::kError;
    /** Offending buffer. */
    std::string buffer;
    /** Thread axis the hazard crosses (races), empty otherwise. */
    std::string axis;
    /** Loop nest of the (first) offending access. */
    std::string loop_path;
    /** Regions / index expression / derived interval, rendered. */
    std::string detail;

    /** Stable code of `kind` ("TIR-R001", ...). */
    const char* code() const { return diagCode(kind); }
    /** One-line human-readable rendering (includes the code). */
    std::string message() const;
};

/** Result of analyzing one function. */
struct AnalysisReport
{
    std::vector<Diagnostic> diagnostics;

    /** No error-severity findings (warnings allowed). */
    bool ok() const;
    /** Number of error-severity findings of `kind`. */
    int errorCount(DiagKind kind) const;
    /** True when an error-severity finding of `kind` exists. */
    bool hasError(DiagKind kind) const;
    /** All findings rendered one per line (empty string when clean). */
    std::string summary() const;
};

/** Tuning knobs of the analysis. */
struct AnalysisOptions
{
    /** Budget of concrete thread-coordinate pairs enumerated per axis
     *  when symbolic proofs are inconclusive (catches value-reversal
     *  hazards like S[E-1-t] against S[t]); 0 disables enumeration.
     *  The search filter runs with 0: enumeration is for tests and
     *  debug assertions, where extents are small. */
    int64_t exhaustive_pair_limit = 4096;
    /** Treat CPU kParallel loops as racing concurrency axes. */
    bool check_parallel_loops = true;
    /** Cap on reported diagnostics (further findings are dropped). */
    int max_diagnostics = 32;
};

/**
 * Analyze a function for cross-thread races and out-of-bounds
 * accesses. Accepts scheduled or lowered functions; block-containing
 * bodies are lowered internally first.
 */
AnalysisReport analyzeFunc(const PrimFunc& func,
                           const AnalysisOptions& options = {});

/**
 * analyzeFunc through a process-wide cache keyed by the structural
 * hash of `func` plus the option fields that influence the verdicts.
 * The evolutionary search instantiates many structurally identical
 * candidates (duplicate decision traces), and re-extracting their
 * access regions per filter invocation is pure waste; the cached entry
 * returns the identical report (diagnostics reference buffer names and
 * rendered expressions, not node pointers, so reports transfer between
 * structurally equal functions). Thread-safe (pool workers share it);
 * hit/miss totals are exposed as the trace counters
 * `analysis.cache_hit` / `analysis.cache_miss`.
 */
AnalysisReport analyzeFuncCached(const PrimFunc& func,
                                 const AnalysisOptions& options = {});

/** Drop every cached analysis report (tests use this to pin the
 *  cold-path/hot-path identity). Clears the lint cache too. */
void clearAnalysisCache();

/** @private Shared report-cache plumbing for analyzeFuncCached and
 *  lintFuncCached (dataflow.cpp). `family` discriminates the producing
 *  analysis; lookups bump the `analysis.cache_hit` / `_miss` trace
 *  counters. Not part of the public surface. */
bool cachedReportLookup(uint64_t func_hash, int family,
                        const AnalysisOptions& options,
                        AnalysisReport* out);
/** @private Counterpart of cachedReportLookup. */
void cachedReportStore(uint64_t func_hash, int family,
                       const AnalysisOptions& options,
                       const AnalysisReport& report);

struct AccessSite;
struct FuncAccesses;

/**
 * True when a storage-sync barrier between `earlier` and `later`
 * (program order) would be load-bearing: both sites touch the same
 * shared-scope buffer, at least one writes, and cross-thread overlap
 * between distinct coordinates of some concurrency axis cannot be
 * ruled out by the per-axis proofs of the race analysis. For the
 * write→read direction the full RAW verdict applies (disjointness,
 * pinned coordinates, uniform cooperative copies); for read→write and
 * write→write only order-independence proofs (disjointness, pinned
 * equality, uniform same-byte writes) count. False means removing the
 * barrier cannot introduce cross-thread data flow between the pair.
 */
bool barrierLoadBearing(const AccessSite& earlier,
                        const AccessSite& later, const FuncAccesses& fa,
                        const AnalysisOptions& options = {});

/** A rectangular access piece of one pipeline stage, in program
 *  order, used by the per-region producer-consumer cover check. */
struct RegionPiece
{
    BufferRegion region;
    bool is_write = false;
    /** Bounds are exact and unconditional: every cell of the region is
     *  touched on every execution. Guarded or widened accesses are
     *  inexact and fall back to the conservative hull check. */
    bool exact = false;
};

/**
 * Per-access regions of one pipeline stage (a root-level statement of
 * a scheduled function), thread and serial loops both widened away.
 * Blocks are erased internally. Opaque BufferPtr accesses appear as
 * inexact whole-buffer pieces.
 */
std::vector<RegionPiece> stageRegionPieces(const Stmt& stage);

} // namespace analysis
} // namespace tir

#endif // TENSORIR_TIR_ANALYSIS_ANALYSIS_H
