#include "tir/analysis/analysis.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <tuple>

#include "arith/interval.h"
#include "ir/printer.h"
#include "ir/structural_hash.h"
#include "ir/transform.h"
#include "lower/lower.h"
#include "support/trace.h"
#include "tir/analysis/access_extract.h"

namespace tir {
namespace analysis {

namespace {

const char*
kindName(DiagKind kind)
{
    switch (kind) {
      case DiagKind::kWriteRace: return "write-write race";
      case DiagKind::kRawNoSync: return "read-after-write without sync";
      case DiagKind::kOutOfBounds: return "out-of-bounds access";
      case DiagKind::kDivergentSync: return "thread-divergent barrier";
      case DiagKind::kThreadBinding: return "thread-binding violation";
      case DiagKind::kRegionCover: return "region cover violation";
      case DiagKind::kUseBeforeInit: return "use before initialization";
      case DiagKind::kDeadStore: return "dead store";
      case DiagKind::kRedundantSync: return "redundant barrier";
    }
    return "unknown";
}

// --- small proof helpers over the shared analyzer -------------------

/** expr provably <= 0 under the analyzer's variable bounds. */
bool
proveLeq0(const Expr& expr, const arith::Analyzer& analyzer)
{
    return analyzer.evalInterval(analyzer.simplify(expr)).hi <= 0;
}

/** expr provably >= value. */
bool
proveGeq(const Expr& expr, int64_t value,
         const arith::Analyzer& analyzer)
{
    return analyzer.evalInterval(analyzer.simplify(expr)).lo >= value;
}

/** Substitute t := t + 1. */
Expr
shiftByOne(const Expr& expr, const Var& t)
{
    VarMap vmap;
    vmap[t.get()] = Expr(t) + 1;
    return substitute(expr, vmap);
}

/** Substitute t := constant. */
Expr
substConst(const Expr& expr, const Var& t, int64_t value)
{
    VarMap vmap;
    vmap[t.get()] = intImm(value);
    return substitute(expr, vmap);
}

/** Every dimension has interval-expressible bounds. */
bool
boundsKnown(const AccessSite& site)
{
    if (site.opaque) return false;
    for (const arith::SymBound& b : site.bounds) {
        if (!b.lo || !b.hi) return false;
    }
    return true;
}

/** Bounds exact and unconditional: the footprint is touched on every
 *  execution, corner cells included. */
bool
siteExact(const AccessSite& site)
{
    if (site.opaque || site.opaque_guard || !site.guards.empty()) {
        return false;
    }
    for (const arith::SymBound& b : site.bounds) {
        if (!b.lo || !b.hi || !b.exact) return false;
    }
    return true;
}

/** Whether any footprint bound of `site` mentions the axis var. */
bool
footprintUsesAxis(const AccessSite& site, const Var& t)
{
    for (const arith::SymBound& b : site.bounds) {
        if (b.lo && usesVar(b.lo, t.get())) return true;
        if (b.hi && usesVar(b.hi, t.get())) return true;
    }
    return false;
}

/** Coordinate of `t` pinned by an equality guard, if any. */
std::optional<int64_t>
pinnedCoord(const AccessSite& site, const Var& t)
{
    for (const GuardConstraint& g : site.guards) {
        if (g.rel != ExprKind::kEQ) continue;
        int64_t value = 0;
        if (g.lhs.get() == static_cast<const ExprNode*>(t.get()) &&
            isConstInt(g.rhs, &value)) {
            return value;
        }
        if (g.rhs.get() == static_cast<const ExprNode*>(t.get()) &&
            isConstInt(g.lhs, &value)) {
            return value;
        }
    }
    return std::nullopt;
}

/** Buffers loaded anywhere inside an expression. */
void
collectLoadedBuffers(const Expr& expr,
                     std::set<const BufferNode*>* out);

class LoadCollector : public ExprVisitor
{
  public:
    explicit LoadCollector(std::set<const BufferNode*>* out) : out_(out)
    {}

  protected:
    void
    visitBufferLoad(const BufferLoadNode& node) override
    {
        out_->insert(node.buffer.get());
        ExprVisitor::visitBufferLoad(node);
    }

  private:
    std::set<const BufferNode*>* out_;
};

void
collectLoadedBuffers(const Expr& expr, std::set<const BufferNode*>* out)
{
    LoadCollector collector(out);
    collector.visitExpr(expr);
}

/** Render a footprint like `S[0..7, tx..tx]`. */
std::string
renderFootprint(const AccessSite& site,
                const arith::Analyzer& analyzer)
{
    std::string text = site.buffer->name + "[";
    for (size_t d = 0; d < site.bounds.size(); ++d) {
        if (d) text += ", ";
        const arith::SymBound& b = site.bounds[d];
        text += b.lo ? exprToString(analyzer.simplify(b.lo)) : "?";
        text += "..";
        text += b.hi ? exprToString(analyzer.simplify(b.hi)) : "?";
    }
    return text + "]";
}

// --- per-axis race verdicts -----------------------------------------

enum class AxisVerdict : uint8_t { kSafe, kOverlap, kUnknown };

/** Per-launch view the pair checks operate on. */
struct LaunchSites
{
    /** Buffers written anywhere in the launch, with all write sites. */
    std::map<const BufferNode*, std::vector<const AccessSite*>> writes;
};

/**
 * A write is *uniform* along `t` when its footprint and stored value
 * are independent of `t` and the value reads only launch-stable data
 * (buffers not written in the launch, or written purely uniformly).
 * Every coordinate then stores identical bytes — the cooperative-copy
 * pattern where each thread redundantly materializes a whole staged
 * tile.
 */
bool
writeUniform(const AccessSite& site, const Var& t,
             const LaunchSites& launch)
{
    if (site.opaque || !site.is_write || !site.value) return false;
    if (footprintUsesAxis(site, t)) return false;
    if (usesVar(site.value, t.get())) return false;
    for (const Expr& idx : site.indices) {
        if (usesVar(idx, t.get())) return false;
    }
    std::set<const BufferNode*> loaded;
    collectLoadedBuffers(site.value, &loaded);
    for (const BufferNode* buffer : loaded) {
        auto it = launch.writes.find(buffer);
        if (it == launch.writes.end()) continue;
        for (const AccessSite* w : it->second) {
            if (w == &site) continue;
            if (w->opaque || footprintUsesAxis(*w, t) ||
                (w->value && usesVar(w->value, t.get()))) {
                return false;
            }
        }
    }
    return true;
}

/**
 * Prove footprints of A(c) and B(c') disjoint for every pair of
 * distinct coordinates c != c' of axis `t` (other axes held equal):
 * along some dimension all four bound expressions are monotone in `t`
 * and adjacent coordinates are separated by at least one element, in
 * both pair orderings.
 */
bool
separatedAlongAxis(const AccessSite& a, const AccessSite& b,
                   const ThreadAxis& axis,
                   const arith::Analyzer& base)
{
    const Var& t = axis.var;
    arith::Analyzer analyzer = base;
    analyzer.bind(t, arith::Interval(0, axis.extent - 2));
    auto monotone = [&](const Expr& e, bool increasing) {
        Expr delta = shiftByOne(e, t) - e;
        return increasing ? proveGeq(delta, 0, analyzer)
                          : proveLeq0(delta, analyzer);
    };
    for (size_t d = 0; d < a.bounds.size(); ++d) {
        const arith::SymBound& ba = a.bounds[d];
        const arith::SymBound& bb = b.bounds[d];
        const Expr exprs[4] = {ba.lo, ba.hi, bb.lo, bb.hi};
        auto all_monotone = [&](bool increasing) {
            for (const Expr& e : exprs) {
                if (!monotone(e, increasing)) return false;
            }
            return true;
        };
        // Increasing along t: footprints of higher coordinates start
        // past where lower coordinates end, in both orderings.
        if (all_monotone(true) &&
            proveGeq(shiftByOne(bb.lo, t) - ba.hi, 1, analyzer) &&
            proveGeq(shiftByOne(ba.lo, t) - bb.hi, 1, analyzer)) {
            return true;
        }
        if (all_monotone(false) &&
            proveGeq(bb.lo - shiftByOne(ba.hi, t), 1, analyzer) &&
            proveGeq(ba.lo - shiftByOne(bb.hi, t), 1, analyzer)) {
            return true;
        }
    }
    return false;
}

/** Concrete per-dimension point footprint of `site` with t := value,
 *  or nullopt when a dimension does not collapse to one constant. */
std::optional<std::vector<int64_t>>
concretePoint(const AccessSite& site, const Var& t, int64_t value,
              const arith::Analyzer& analyzer)
{
    std::vector<int64_t> point;
    point.reserve(site.bounds.size());
    for (const arith::SymBound& b : site.bounds) {
        Expr lo = analyzer.simplify(substConst(b.lo, t, value));
        Expr hi = analyzer.simplify(substConst(b.hi, t, value));
        int64_t lo_c = 0;
        int64_t hi_c = 0;
        if (!isConstInt(lo, &lo_c) || !isConstInt(hi, &hi_c) ||
            lo_c != hi_c) {
            return std::nullopt;
        }
        point.push_back(lo_c);
    }
    return point;
}

/**
 * Enumerate concrete coordinate pairs of one axis looking for two
 * distinct coordinates provably touching the same cell. Only applies
 * to exact point accesses whose footprints collapse to constants once
 * `t` is fixed (e.g. S[t] vs S[E-1-t]); returns the colliding pair.
 */
std::optional<std::pair<int64_t, int64_t>>
enumerateCollision(const AccessSite& a, const AccessSite& b,
                   const ThreadAxis& axis,
                   const arith::Analyzer& analyzer, int64_t budget)
{
    if (axis.extent < 2 || axis.extent * axis.extent > budget) {
        return std::nullopt;
    }
    if (!siteExact(a) || !siteExact(b)) return std::nullopt;
    std::vector<std::vector<int64_t>> points_a;
    std::vector<std::vector<int64_t>> points_b;
    points_a.reserve(axis.extent);
    points_b.reserve(axis.extent);
    for (int64_t c = 0; c < axis.extent; ++c) {
        auto pa = concretePoint(a, axis.var, c, analyzer);
        auto pb = concretePoint(b, axis.var, c, analyzer);
        if (!pa || !pb) return std::nullopt;
        points_a.push_back(std::move(*pa));
        points_b.push_back(std::move(*pb));
    }
    for (int64_t ca = 0; ca < axis.extent; ++ca) {
        for (int64_t cb = 0; cb < axis.extent; ++cb) {
            if (ca == cb) continue;
            if (points_a[ca] == points_b[cb]) return {{ca, cb}};
        }
    }
    return std::nullopt;
}

struct PairContext
{
    const FuncAccesses& fa;
    const AnalysisOptions& opts;
    const LaunchSites& launch;
};

/** Verdict for one concurrency axis of a write-write pair. */
AxisVerdict
writePairAxisVerdict(const AccessSite& a, const AccessSite& b,
                     const ThreadAxis& axis, const PairContext& ctx,
                     std::string* detail)
{
    const Var& t = axis.var;
    if (axis.extent >= 0 && axis.extent <= 1) return AxisVerdict::kSafe;

    auto pin_a = pinnedCoord(a, t);
    auto pin_b = pinnedCoord(b, t);
    if (pin_a && pin_b) {
        if (*pin_a == *pin_b) return AxisVerdict::kSafe;
        if (boundsKnown(a) && boundsKnown(b)) {
            // Two fixed, different coordinates: disjoint when some
            // dimension separates the substituted footprints.
            for (size_t d = 0; d < a.bounds.size(); ++d) {
                Expr hi_a = substConst(a.bounds[d].hi, t, *pin_a);
                Expr lo_b = substConst(b.bounds[d].lo, t, *pin_b);
                Expr hi_b = substConst(b.bounds[d].hi, t, *pin_b);
                Expr lo_a = substConst(a.bounds[d].lo, t, *pin_a);
                if (proveLeq0(hi_a - lo_b + 1, ctx.fa.full) ||
                    proveLeq0(hi_b - lo_a + 1, ctx.fa.full)) {
                    return AxisVerdict::kSafe;
                }
            }
        }
        return AxisVerdict::kUnknown;
    }

    if (axis.extent < 0 || !boundsKnown(a) || !boundsKnown(b)) {
        return AxisVerdict::kUnknown;
    }

    if (separatedAlongAxis(a, b, axis, ctx.fa.full)) {
        return AxisVerdict::kSafe;
    }

    bool a_uses = footprintUsesAxis(a, t);
    bool b_uses = footprintUsesAxis(b, t);
    if (!a_uses && !b_uses) {
        if (&a == &b) {
            // Every coordinate writes the same footprint: benign only
            // when all of them store identical bytes.
            if (writeUniform(a, t, ctx.launch)) {
                return AxisVerdict::kSafe;
            }
            if (siteExact(a)) {
                *detail = "every coordinate of " + axis.tag +
                          " writes " +
                          renderFootprint(a, ctx.fa.full) +
                          " with a coordinate-dependent value";
                return AxisVerdict::kOverlap;
            }
            return AxisVerdict::kUnknown;
        }
        // Distinct sites, both with coordinate-independent footprints:
        // a provably shared corner cell makes the clash definite.
        if (siteExact(a) && siteExact(b)) {
            bool corner_equal = true;
            for (size_t d = 0; d < a.bounds.size(); ++d) {
                if (!ctx.fa.full.provablyEqual(a.bounds[d].lo,
                                               b.bounds[d].lo)) {
                    corner_equal = false;
                    break;
                }
            }
            if (corner_equal) {
                *detail = "write regions " +
                          renderFootprint(a, ctx.fa.full) + " and " +
                          renderFootprint(b, ctx.fa.full) +
                          " collide for distinct " + axis.tag +
                          " coordinates";
                return AxisVerdict::kOverlap;
            }
        }
        return AxisVerdict::kUnknown;
    }

    if (auto collision = enumerateCollision(
            a, b, axis, ctx.fa.full, ctx.opts.exhaustive_pair_limit)) {
        *detail = axis.tag + "=" + std::to_string(collision->first) +
                  " and " + axis.tag + "=" +
                  std::to_string(collision->second) +
                  " both write cell " +
                  renderFootprint(a, ctx.fa.full);
        return AxisVerdict::kOverlap;
    }
    return AxisVerdict::kUnknown;
}

/** Verdict for one concurrency axis of a (write, later read) pair on
 *  a shared-scope buffer with no barrier in between. */
AxisVerdict
rawPairAxisVerdict(const AccessSite& write, const AccessSite& read,
                   const ThreadAxis& axis, const PairContext& ctx,
                   std::string* detail)
{
    const Var& t = axis.var;
    if (axis.extent >= 0 && axis.extent <= 1) return AxisVerdict::kSafe;

    auto pin_w = pinnedCoord(write, t);
    auto pin_r = pinnedCoord(read, t);
    if (pin_w && pin_r && *pin_w == *pin_r) return AxisVerdict::kSafe;

    if (axis.extent < 0 || !boundsKnown(write) || !boundsKnown(read)) {
        return AxisVerdict::kUnknown;
    }

    // No cross-coordinate flow at all: each coordinate reads only what
    // it wrote itself.
    if (separatedAlongAxis(write, read, axis, ctx.fa.full)) {
        return AxisVerdict::kSafe;
    }

    // Cooperative-copy pattern: the write is uniform along the axis
    // and the reader's own (identical) copy covers the read region.
    if (writeUniform(write, t, ctx.launch)) {
        bool covered = true;
        for (size_t d = 0; d < read.bounds.size(); ++d) {
            if (!proveGeq(read.bounds[d].lo - write.bounds[d].lo, 0,
                          ctx.fa.full) ||
                !proveLeq0(read.bounds[d].hi - write.bounds[d].hi,
                           ctx.fa.full)) {
                covered = false;
                break;
            }
        }
        if (covered) return AxisVerdict::kSafe;
    }

    if (auto collision = enumerateCollision(
            write, read, axis, ctx.fa.full,
            ctx.opts.exhaustive_pair_limit)) {
        *detail = axis.tag + "=" + std::to_string(collision->second) +
                  " reads cell " +
                  renderFootprint(read, ctx.fa.full) + " written by " +
                  axis.tag + "=" + std::to_string(collision->first) +
                  " with no storage_sync in between";
        return AxisVerdict::kOverlap;
    }
    return AxisVerdict::kUnknown;
}

// --- race detection driver ------------------------------------------

bool
scopeParticipates(const std::string& scope)
{
    // local and wmma fragments are per-thread/per-warp private.
    return scope == "global" || scope == "shared";
}

bool
axisRelevant(const ThreadAxis& axis, const std::string& scope,
             const AnalysisOptions& opts)
{
    if (!opts.check_parallel_loops &&
        axis.tag.rfind("parallel:", 0) == 0) {
        return false;
    }
    if (scope == "shared") return !axis.isBlockAxis();
    return true;
}

/** Union of the concurrency axes of two sites, filtered by scope. */
std::vector<ThreadAxis>
relevantAxes(const AccessSite& a, const AccessSite& b,
             const std::string& scope, const AnalysisOptions& opts)
{
    std::vector<ThreadAxis> axes;
    std::set<std::string> seen;
    for (const std::vector<ThreadAxis>* list : {&a.threads, &b.threads}) {
        for (const ThreadAxis& axis : *list) {
            if (!axisRelevant(axis, scope, opts)) continue;
            if (!seen.insert(axis.tag).second) continue;
            axes.push_back(axis);
        }
    }
    return axes;
}

class DiagnosticSink
{
  public:
    explicit DiagnosticSink(const AnalysisOptions& opts,
                            std::vector<Diagnostic>* out)
        : opts_(opts), out_(out)
    {}

    void
    emit(Diagnostic diag)
    {
        std::string key = std::to_string(static_cast<int>(diag.kind)) +
                          "|" +
                          std::to_string(static_cast<int>(diag.severity)) +
                          "|" + diag.buffer + "|" + diag.axis + "|" +
                          diag.loop_path;
        if (!seen_.insert(key).second) return;
        if (static_cast<int>(out_->size()) >= opts_.max_diagnostics) {
            return;
        }
        out_->push_back(std::move(diag));
    }

  private:
    const AnalysisOptions& opts_;
    std::vector<Diagnostic>* out_;
    std::set<std::string> seen_;
};

void
checkPair(const AccessSite& a, const AccessSite& b, bool raw_pair,
          const PairContext& ctx, DiagnosticSink* sink)
{
    const std::string& scope = a.buffer->scope;
    std::vector<ThreadAxis> axes = relevantAxes(a, b, scope, ctx.opts);
    bool unknown = false;
    std::string unknown_axis;
    for (const ThreadAxis& axis : axes) {
        std::string detail;
        AxisVerdict verdict =
            raw_pair
                ? rawPairAxisVerdict(a, b, axis, ctx, &detail)
                : writePairAxisVerdict(a, b, axis, ctx, &detail);
        if (verdict == AxisVerdict::kOverlap) {
            Diagnostic diag;
            diag.kind = raw_pair ? DiagKind::kRawNoSync
                                 : DiagKind::kWriteRace;
            diag.severity = Severity::kError;
            diag.buffer = a.buffer->name;
            diag.axis = axis.tag;
            diag.loop_path = a.loop_path;
            diag.detail = detail;
            sink->emit(std::move(diag));
            return;
        }
        if (verdict == AxisVerdict::kUnknown) {
            unknown = true;
            if (unknown_axis.empty()) unknown_axis = axis.tag;
        }
    }
    if (unknown) {
        Diagnostic diag;
        diag.kind =
            raw_pair ? DiagKind::kRawNoSync : DiagKind::kWriteRace;
        diag.severity = Severity::kWarning;
        diag.buffer = a.buffer->name;
        diag.axis = unknown_axis;
        diag.loop_path = a.loop_path;
        diag.detail =
            "possible hazard between " +
            renderFootprint(a, ctx.fa.full) + " and " +
            renderFootprint(b, ctx.fa.full) +
            " (disjointness not provable)";
        sink->emit(std::move(diag));
    }
}

void
checkRaces(const FuncAccesses& fa, const AnalysisOptions& opts,
           DiagnosticSink* sink)
{
    for (int launch = 0; launch < fa.num_launches; ++launch) {
        std::map<const BufferNode*, std::vector<const AccessSite*>>
            by_buffer;
        LaunchSites launch_sites;
        for (const AccessSite& site : fa.sites) {
            if (site.launch != launch) continue;
            if (!scopeParticipates(site.buffer->scope)) continue;
            by_buffer[site.buffer.get()].push_back(&site);
            if (site.is_write) {
                launch_sites.writes[site.buffer.get()].push_back(&site);
            }
        }
        PairContext ctx{fa, opts, launch_sites};
        for (const auto& [buffer, sites] : by_buffer) {
            std::vector<const AccessSite*> writes;
            std::vector<const AccessSite*> reads;
            for (const AccessSite* site : sites) {
                if (site->is_write) writes.push_back(site);
                // Opaque accesses count in both directions.
                if (!site->is_write || site->opaque) {
                    reads.push_back(site);
                }
            }
            for (size_t i = 0; i < writes.size(); ++i) {
                for (size_t j = i; j < writes.size(); ++j) {
                    checkPair(*writes[i], *writes[j],
                              /*raw_pair=*/false, ctx, sink);
                }
            }
            if (buffer->scope != "shared") continue;
            for (const AccessSite* write : writes) {
                for (const AccessSite* read : reads) {
                    if (read->seq <= write->seq) continue;
                    if (read->sync_epoch > write->sync_epoch) continue;
                    checkPair(*write, *read, /*raw_pair=*/true, ctx,
                              sink);
                }
            }
        }
    }
    for (const SyncSite& sync : fa.syncs) {
        if (!sync.divergent) continue;
        Diagnostic diag;
        diag.kind = DiagKind::kDivergentSync;
        diag.severity = Severity::kWarning;
        diag.loop_path = sync.loop_path;
        diag.detail = "storage_sync under a thread-dependent "
                      "conditional: part of the block never reaches "
                      "the barrier";
        sink->emit(std::move(diag));
    }
}

// --- out-of-bounds checking -----------------------------------------

/**
 * Affine expression in which every variable occurs at most once (plus
 * floordiv by a positive constant): interval evaluation is then tight
 * and both interval endpoints are attained by real executions.
 */
bool
affineTightRec(const Expr& expr, std::set<const VarNode*>* used)
{
    switch (expr->kind) {
      case ExprKind::kIntImm:
        return true;
      case ExprKind::kVar:
        return used->insert(static_cast<const VarNode*>(expr.get()))
            .second;
      case ExprKind::kAdd:
      case ExprKind::kSub: {
        const auto& n = static_cast<const BinaryNode&>(*expr);
        return affineTightRec(n.a, used) && affineTightRec(n.b, used);
      }
      case ExprKind::kMul: {
        const auto& n = static_cast<const BinaryNode&>(*expr);
        if (isConstInt(n.a)) return affineTightRec(n.b, used);
        if (isConstInt(n.b)) return affineTightRec(n.a, used);
        return false;
      }
      case ExprKind::kFloorDiv: {
        const auto& n = static_cast<const BinaryNode&>(*expr);
        int64_t divisor = 0;
        return isConstInt(n.b, &divisor) && divisor > 0 &&
               affineTightRec(n.a, used);
      }
      case ExprKind::kCast:
        return affineTightRec(
            static_cast<const CastNode&>(*expr).value, used);
      default:
        return false;
    }
}

bool
affineTight(const Expr& expr)
{
    std::set<const VarNode*> used;
    return affineTightRec(expr, &used);
}

/** Prove `goal <= 0` from the site's guard constraints: each guard
 *  normalizes to facts `f <= 0`, and goal - f <= 0 by intervals
 *  closes the implication. */
bool
guardsProveLeq0(const AccessSite& site, const Expr& goal,
                const arith::Analyzer& analyzer)
{
    std::vector<Expr> facts;
    for (const GuardConstraint& g : site.guards) {
        switch (g.rel) {
          case ExprKind::kLT:
            facts.push_back(g.lhs - g.rhs + 1);
            break;
          case ExprKind::kLE:
            facts.push_back(g.lhs - g.rhs);
            break;
          case ExprKind::kGT:
            facts.push_back(g.rhs - g.lhs + 1);
            break;
          case ExprKind::kGE:
            facts.push_back(g.rhs - g.lhs);
            break;
          case ExprKind::kEQ:
            facts.push_back(g.lhs - g.rhs);
            facts.push_back(g.rhs - g.lhs);
            break;
          default:
            break;
        }
    }
    for (const Expr& fact : facts) {
        if (proveLeq0(goal - fact, analyzer)) return true;
    }
    return false;
}

void
checkBounds(const FuncAccesses& fa, const AnalysisOptions& opts,
            DiagnosticSink* sink)
{
    (void)opts;
    for (const AccessSite& site : fa.sites) {
        if (site.opaque) continue;
        if (site.indices.size() != site.buffer->shape.size()) continue;
        for (size_t d = 0; d < site.indices.size(); ++d) {
            const Expr& index = site.indices[d];
            const Expr& shape = site.buffer->shape[d];
            Expr simplified = fa.full.simplify(index);
            arith::Interval interval =
                fa.full.evalInterval(simplified);
            int64_t shape_c = -1;
            bool shape_const = isConstInt(shape, &shape_c);

            bool low_ok = interval.lo >= 0;
            if (!low_ok) {
                low_ok = guardsProveLeq0(site, intImm(0) - index,
                                         fa.full);
            }
            bool high_ok =
                shape_const ? interval.hi <= shape_c - 1
                            : proveLeq0(index - shape + 1, fa.full);
            if (!high_ok) {
                high_ok = guardsProveLeq0(site, index - shape + 1,
                                          fa.full);
            }
            if (low_ok && high_ok) continue;

            bool attained = site.guards.empty() &&
                            !site.opaque_guard &&
                            affineTight(simplified);
            bool low_definite = !low_ok && attained &&
                                interval.lo > arith::Interval::kNegInf &&
                                interval.lo < 0;
            bool high_definite = !high_ok && attained && shape_const &&
                                 interval.hi <
                                     arith::Interval::kPosInf &&
                                 interval.hi > shape_c - 1;
            bool low_possible = !low_ok &&
                                interval.lo > arith::Interval::kNegInf &&
                                interval.lo < 0;
            bool high_possible =
                !high_ok && shape_const &&
                interval.hi < arith::Interval::kPosInf &&
                interval.hi > shape_c - 1;
            if (!low_definite && !high_definite && !low_possible &&
                !high_possible) {
                // Unbounded data-dependent index: nothing useful to
                // report (gather patterns would drown the output).
                continue;
            }
            Diagnostic diag;
            diag.kind = DiagKind::kOutOfBounds;
            diag.severity = (low_definite || high_definite)
                                ? Severity::kError
                                : Severity::kWarning;
            diag.buffer = site.buffer->name;
            diag.loop_path = site.loop_path;
            diag.detail =
                std::string(site.is_write ? "write" : "read") +
                " index " + exprToString(simplified) + " in dim " +
                std::to_string(d) + " has range [" +
                std::to_string(interval.lo) + ", " +
                std::to_string(interval.hi) + "] but the extent is " +
                exprToString(shape);
            sink->emit(std::move(diag));
        }
    }
}

} // namespace

// --- public API ------------------------------------------------------

const char*
diagCode(DiagKind kind)
{
    switch (kind) {
      case DiagKind::kWriteRace: return "TIR-R001";
      case DiagKind::kRawNoSync: return "TIR-R002";
      case DiagKind::kDivergentSync: return "TIR-R003";
      case DiagKind::kOutOfBounds: return "TIR-B001";
      case DiagKind::kThreadBinding: return "TIR-V001";
      case DiagKind::kRegionCover: return "TIR-V002";
      case DiagKind::kUseBeforeInit: return "TIR-L001";
      case DiagKind::kDeadStore: return "TIR-L002";
      case DiagKind::kRedundantSync: return "TIR-L003";
    }
    return "TIR-X000";
}

std::string
Diagnostic::message() const
{
    std::string text = severity == Severity::kError ? "[error] "
                                                    : "[warning] ";
    text += diagCode(kind);
    text += " ";
    text += kindName(kind);
    if (!buffer.empty()) text += " on buffer '" + buffer + "'";
    if (!axis.empty()) text += " across " + axis;
    if (!loop_path.empty()) text += " at " + loop_path;
    if (!detail.empty()) text += ": " + detail;
    return text;
}

bool
AnalysisReport::ok() const
{
    for (const Diagnostic& diag : diagnostics) {
        if (diag.severity == Severity::kError) return false;
    }
    return true;
}

int
AnalysisReport::errorCount(DiagKind kind) const
{
    int count = 0;
    for (const Diagnostic& diag : diagnostics) {
        if (diag.kind == kind && diag.severity == Severity::kError) {
            ++count;
        }
    }
    return count;
}

bool
AnalysisReport::hasError(DiagKind kind) const
{
    return errorCount(kind) > 0;
}

std::string
AnalysisReport::summary() const
{
    std::string text;
    for (const Diagnostic& diag : diagnostics) {
        if (!text.empty()) text += "\n";
        text += diag.message();
    }
    return text;
}

AnalysisReport
analyzeFunc(const PrimFunc& func, const AnalysisOptions& options)
{
    trace::Span span("analysis.analyze_func",
                     trace::arg("func", func->name));
    PrimFunc lowered =
        isBlockFree(func->body) ? func : lowerToLoops(func);
    FuncAccesses fa = extractAccesses(lowered->body,
                                      /*widen_threads=*/false);
    AnalysisReport report;
    DiagnosticSink sink(options, &report.diagnostics);
    checkRaces(fa, options, &sink);
    checkBounds(fa, options, &sink);
    // Errors first so truncated renderings stay actionable.
    std::stable_sort(report.diagnostics.begin(),
                     report.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                         return static_cast<int>(a.severity) <
                                static_cast<int>(b.severity);
                     });
    return report;
}

namespace {

/** Distinct coordinates of `axis` provably touch disjoint cells
 *  (order-independence without any value reasoning): trivial axis,
 *  both coordinates pinned equal, or footprints separated along the
 *  axis. The direction-agnostic core shared by the WAR/WAW legs of
 *  barrierLoadBearing. */
bool
axisCrossDisjoint(const AccessSite& a, const AccessSite& b,
                  const ThreadAxis& axis, const arith::Analyzer& full)
{
    const Var& t = axis.var;
    if (axis.extent >= 0 && axis.extent <= 1) return true;
    auto pin_a = pinnedCoord(a, t);
    auto pin_b = pinnedCoord(b, t);
    if (pin_a && pin_b && *pin_a == *pin_b) return true;
    if (axis.extent < 0 || !boundsKnown(a) || !boundsKnown(b)) {
        return false;
    }
    return separatedAlongAxis(a, b, axis, full);
}

} // namespace

bool
barrierLoadBearing(const AccessSite& earlier, const AccessSite& later,
                   const FuncAccesses& fa,
                   const AnalysisOptions& options)
{
    if (earlier.buffer.get() != later.buffer.get()) return false;
    if (earlier.buffer->scope != "shared") return false;
    if (earlier.launch != later.launch || earlier.launch < 0) {
        return false;
    }
    bool e_write = earlier.is_write || earlier.opaque;
    bool l_write = later.is_write || later.opaque;
    if (!e_write && !l_write) return false;
    bool e_read = !earlier.is_write || earlier.opaque;
    bool l_read = !later.is_write || later.opaque;

    // Uniform-write proofs need the launch's write map (the stored
    // value must read only launch-stable data).
    LaunchSites launch;
    for (const AccessSite& site : fa.sites) {
        if (site.launch == earlier.launch && site.is_write &&
            scopeParticipates(site.buffer->scope)) {
            launch.writes[site.buffer.get()].push_back(&site);
        }
    }
    PairContext ctx{fa, options, launch};
    std::vector<ThreadAxis> axes =
        relevantAxes(earlier, later, "shared", options);
    for (const ThreadAxis& axis : axes) {
        std::string detail;
        // RAW leg: the earlier write flows into the later read unless
        // the full race-analysis verdict proves the axis safe.
        if (e_write && l_read &&
            rawPairAxisVerdict(earlier, later, axis, ctx, &detail) !=
                AxisVerdict::kSafe) {
            return true;
        }
        // WAR leg: the later write may clobber what the earlier read
        // still consumes; only disjointness proofs apply (a uniform
        // overwrite still changes the bytes under the reader).
        if (e_read && l_write &&
            !axisCrossDisjoint(earlier, later, axis, fa.full)) {
            return true;
        }
        // WAW leg: order matters unless disjoint or same-byte uniform.
        if (e_write && l_write &&
            writePairAxisVerdict(earlier, later, axis, ctx, &detail) !=
                AxisVerdict::kSafe) {
            return true;
        }
    }
    return false;
}

// --- cached analysis (the search-filter fast path) --------------------

namespace {

using AnalysisCacheKey = std::tuple<uint64_t, int, int64_t, bool, int>;

struct AnalysisCache
{
    std::mutex mutex;
    std::map<AnalysisCacheKey, AnalysisReport> entries;
};

AnalysisCache&
analysisCache()
{
    static AnalysisCache cache;
    return cache;
}

/** Entry bound: past this the cache is dropped wholesale. Search runs
 *  see far fewer distinct structures than this, so eviction never
 *  perturbs them; the bound only stops pathological growth. */
constexpr size_t kAnalysisCacheMaxEntries = 8192;

AnalysisCacheKey
cacheKey(uint64_t func_hash, int family, const AnalysisOptions& options)
{
    return {func_hash, family, options.exhaustive_pair_limit,
            options.check_parallel_loops, options.max_diagnostics};
}

} // namespace

bool
cachedReportLookup(uint64_t func_hash, int family,
                   const AnalysisOptions& options, AnalysisReport* out)
{
    AnalysisCache& cache = analysisCache();
    {
        std::lock_guard<std::mutex> lock(cache.mutex);
        auto it =
            cache.entries.find(cacheKey(func_hash, family, options));
        if (it != cache.entries.end()) {
            trace::counterAdd("analysis.cache_hit", 1);
            *out = it->second;
            return true;
        }
    }
    trace::counterAdd("analysis.cache_miss", 1);
    return false;
}

void
cachedReportStore(uint64_t func_hash, int family,
                  const AnalysisOptions& options,
                  const AnalysisReport& report)
{
    AnalysisCache& cache = analysisCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    if (cache.entries.size() >= kAnalysisCacheMaxEntries) {
        cache.entries.clear();
    }
    cache.entries.emplace(cacheKey(func_hash, family, options), report);
}

AnalysisReport
analyzeFuncCached(const PrimFunc& func, const AnalysisOptions& options)
{
    uint64_t hash = structuralHash(func);
    AnalysisReport report;
    if (cachedReportLookup(hash, /*family=*/0, options, &report)) {
        return report;
    }
    // Analyze outside the lock: workers with distinct candidates must
    // not serialize on each other's proofs.
    report = analyzeFunc(func, options);
    cachedReportStore(hash, /*family=*/0, options, report);
    return report;
}

void
clearAnalysisCache()
{
    AnalysisCache& cache = analysisCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    cache.entries.clear();
}

std::vector<RegionPiece>
stageRegionPieces(const Stmt& stage)
{
    Stmt lowered = isBlockFree(stage) ? stage : eraseBlocks(stage);
    FuncAccesses fa =
        extractAccesses(lowered, /*widen_threads=*/true);
    std::vector<RegionPiece> pieces;
    pieces.reserve(fa.sites.size());
    for (const AccessSite& site : fa.sites) {
        if (site.opaque || !boundsKnown(site)) {
            RegionPiece piece;
            piece.region = BufferRegion::full(site.buffer);
            piece.exact = false;
            piece.is_write = site.is_write;
            pieces.push_back(piece);
            if (site.opaque) {
                // Opaque pointers read and write; emit the read twin.
                piece.is_write = false;
                pieces.push_back(std::move(piece));
            }
            continue;
        }
        std::vector<Range> ranges;
        ranges.reserve(site.bounds.size());
        for (const arith::SymBound& b : site.bounds) {
            Expr lo = fa.full.simplify(b.lo);
            Expr extent = fa.full.simplify(b.hi - b.lo + 1);
            ranges.emplace_back(std::move(lo), std::move(extent));
        }
        RegionPiece piece;
        piece.region = BufferRegion(site.buffer, std::move(ranges));
        piece.exact = siteExact(site);
        piece.is_write = site.is_write;
        pieces.push_back(std::move(piece));
    }
    return pieces;
}

} // namespace analysis
} // namespace tir
