#include "tir/analysis/dataflow.h"

#include <algorithm>
#include <set>
#include <string>

#include "ir/printer.h"
#include "ir/structural_hash.h"
#include "ir/transform.h"
#include "lower/lower.h"
#include "support/trace.h"

namespace tir {
namespace analysis {

namespace {

/** Whole-function site budget: beyond this the dataflow pass reports
 *  `truncated` and proves nothing (lowered Table 1 kernels sit two
 *  orders of magnitude below it). */
constexpr size_t kMaxDataflowSites = 4096;

/** Per-launch shared-site budget for the sync-protection analysis
 *  (it enumerates site pairs per sync): past this every sync of the
 *  launch is conservatively kept. */
constexpr size_t kMaxSyncAnalysisSites = 160;

/** Cap on recorded protected pairs per sync (diagnostic payload; the
 *  elision decision only needs emptiness). */
constexpr size_t kMaxProtectedPairs = 8;

std::string
renderSite(const AccessSite& site, const arith::Analyzer& analyzer)
{
    if (site.opaque) return site.buffer->name + "[<opaque>]";
    std::string text = site.buffer->name + "[";
    for (size_t d = 0; d < site.bounds.size(); ++d) {
        if (d) text += ", ";
        const arith::SymBound& b = site.bounds[d];
        text += b.lo ? exprToString(analyzer.simplify(b.lo)) : "?";
        text += "..";
        text += b.hi ? exprToString(analyzer.simplify(b.hi)) : "?";
    }
    return text + "]";
}

/** Innermost serial loop enclosing both sites, or null. Serial-loop
 *  stacks are root paths in one tree, so the common loops of two sites
 *  are exactly the shared elements; the deepest one in `a`'s stack is
 *  the innermost. */
const ForNode*
innermostCommonLoop(const std::vector<const ForNode*>& a,
                    const std::vector<const ForNode*>& b)
{
    std::set<const ForNode*> in_b(b.begin(), b.end());
    for (auto it = a.rbegin(); it != a.rend(); ++it) {
        if (in_b.count(*it)) return *it;
    }
    return nullptr;
}

/** The happens-before skeleton: an instance of `d` may execute before
 *  an instance of `u` — straight-line order, or a loop-carried edge
 *  through a common enclosing serial loop (d@i before u@i+1). */
bool
mayPrecede(const AccessSite* d, const AccessSite* u)
{
    if (d->seq < u->seq) return true;
    return innermostCommonLoop(d->serial_loops, u->serial_loops) !=
           nullptr;
}

bool
positiveConstExtent(const ForNode* loop)
{
    return constIntOr(loop->extent, -1) > 0;
}

/** Under-approximation: `sync` provably executes between every
 *  instance of `a` and every later instance of `b` in straight-line
 *  order. Loops enclosing the sync but not both sites must provably
 *  run (zero-trip inner loops skip the barrier), and a conditional
 *  barrier may be skipped entirely. */
bool
separatesLinear(const SyncSite& sync, const AccessSite* a,
                const AccessSite* b)
{
    if (sync.conditional) return false;
    if (sync.launch != a->launch) return false;
    if (!(a->seq < sync.seq && sync.seq < b->seq)) return false;
    std::set<const ForNode*> common;
    std::set<const ForNode*> in_b(b->serial_loops.begin(),
                                  b->serial_loops.end());
    for (const ForNode* loop : a->serial_loops) {
        if (in_b.count(loop)) common.insert(loop);
    }
    for (const ForNode* loop : sync.serial_loops) {
        if (!common.count(loop) && !positiveConstExtent(loop)) {
            return false;
        }
    }
    return true;
}

/** Under-approximation for loop-carried pairs: `sync` provably
 *  executes between `p`'s instance in iteration i of `carry` and `q`'s
 *  instance in iteration i+1. The sync must live inside the carrying
 *  loop, run unconditionally with provably positive deeper trip
 *  counts, and sit after p (same iteration) or before q (next). */
bool
separatesCarried(const SyncSite& sync, const AccessSite* p,
                 const AccessSite* q, const ForNode* carry)
{
    if (sync.conditional) return false;
    if (sync.launch != p->launch) return false;
    if (!(sync.seq > p->seq || sync.seq < q->seq)) return false;
    bool inside = false;
    for (const ForNode* loop : sync.serial_loops) {
        if (loop == carry) {
            inside = true;
            continue;
        }
        // Loops deeper than the carrying loop must provably run;
        // ancestors of `carry` enclose both sites and are irrelevant.
        if (inside && !positiveConstExtent(loop)) return false;
    }
    return inside;
}

/** Over-approximation: some instance of `sync` may execute between an
 *  instance of `p` in iteration i of `carry` and `q` in iteration
 *  i+1 — the pairs a sync could possibly be protecting. */
bool
mayProtectCarried(const SyncSite& sync, const AccessSite* p,
                  const AccessSite* q, const ForNode* carry)
{
    if (sync.launch != p->launch) return false;
    bool inside = std::find(sync.serial_loops.begin(),
                            sync.serial_loops.end(),
                            carry) != sync.serial_loops.end();
    if (!inside) return false;
    return sync.seq > p->seq || sync.seq < q->seq;
}

/** All serial loops enclosing both sites, outermost first. */
std::vector<const ForNode*>
commonLoops(const AccessSite* a, const AccessSite* b)
{
    std::set<const ForNode*> in_b(b->serial_loops.begin(),
                                  b->serial_loops.end());
    std::vector<const ForNode*> out;
    for (const ForNode* loop : a->serial_loops) {
        if (in_b.count(loop)) out.push_back(loop);
    }
    return out;
}

/** Shared-scope sites of one launch, in program order. */
std::vector<const AccessSite*>
sharedSitesOfLaunch(const FuncAccesses& fa, int launch)
{
    std::vector<const AccessSite*> out;
    for (const AccessSite& site : fa.sites) {
        if (site.launch == launch && site.buffer->scope == "shared") {
            out.push_back(&site);
        }
    }
    return out;
}

/** Greedy left-to-right sync classification. A sync is elidable when
 *  every conflicting pair it may protect is either provably hazard-free
 *  (barrierLoadBearing false) or still separated by a barrier marked
 *  kept. Scanning in program order and consulting only kept barriers
 *  makes the result self-consistent: the kept set alone orders every
 *  load-bearing pair, so the elision pass may drop exactly the
 *  elidable set in one shot. */
void
classifySyncs(DataflowInfo* info, const AnalysisOptions& options)
{
    const FuncAccesses& fa = info->accesses;
    info->syncs.reserve(fa.syncs.size());
    std::vector<bool> kept(fa.syncs.size(), true);

    // Launches whose shared-site count exceeds the pair-enumeration
    // budget: keep their barriers untouched.
    std::map<int, std::vector<const AccessSite*>> shared_by_launch;
    std::set<int> over_budget;
    for (int launch = 0; launch < fa.num_launches; ++launch) {
        std::vector<const AccessSite*> sites =
            sharedSitesOfLaunch(fa, launch);
        if (sites.size() > kMaxSyncAnalysisSites) {
            over_budget.insert(launch);
            info->truncated = true;
        }
        shared_by_launch.emplace(launch, std::move(sites));
    }

    for (size_t si = 0; si < fa.syncs.size(); ++si) {
        const SyncSite& s = fa.syncs[si];
        SyncDataflow df;
        df.site = &s;

        // A barrier outside any concurrency scope orders nothing.
        if (s.launch < 0) {
            df.elidable = true;
            kept[si] = false;
            info->syncs.push_back(std::move(df));
            continue;
        }
        if (over_budget.count(s.launch)) {
            info->syncs.push_back(std::move(df));
            continue;
        }

        const std::vector<const AccessSite*>& sites =
            shared_by_launch[s.launch];
        auto coveredElsewhere = [&](auto&& separates) {
            for (size_t sj = 0; sj < fa.syncs.size(); ++sj) {
                if (sj == si || !kept[sj]) continue;
                if (separates(fa.syncs[sj])) return true;
            }
            return false;
        };
        auto addPair = [&](const AccessSite* x, const AccessSite* y) {
            if (df.protected_pairs.size() < kMaxProtectedPairs) {
                df.protected_pairs.emplace_back(x, y);
            }
        };

        // Straight-line pairs spanning the barrier.
        for (const AccessSite* a : sites) {
            if (a->seq > s.seq) break;
            for (const AccessSite* b : sites) {
                if (b->seq < s.seq) continue;
                bool writes = a->is_write || a->opaque ||
                              b->is_write || b->opaque;
                if (!writes) continue;
                if (coveredElsewhere([&](const SyncSite& other) {
                        return separatesLinear(other, a, b);
                    })) {
                    continue;
                }
                if (barrierLoadBearing(*a, *b, fa, options)) {
                    addPair(a, b);
                }
            }
            if (df.protected_pairs.size() >= kMaxProtectedPairs) break;
        }

        // Loop-carried pairs: p in iteration i, q in iteration i+1 of
        // a common serial loop the barrier lives in.
        for (const AccessSite* p : sites) {
            if (df.protected_pairs.size() >= kMaxProtectedPairs) break;
            for (const AccessSite* q : sites) {
                bool writes = p->is_write || p->opaque ||
                              q->is_write || q->opaque;
                if (!writes) continue;
                for (const ForNode* carry : commonLoops(p, q)) {
                    if (!mayProtectCarried(s, p, q, carry)) continue;
                    if (coveredElsewhere([&](const SyncSite& other) {
                            return separatesCarried(other, p, q,
                                                    carry);
                        })) {
                        continue;
                    }
                    if (barrierLoadBearing(*p, *q, fa, options)) {
                        addPair(p, q);
                        break;
                    }
                }
                if (df.protected_pairs.size() >= kMaxProtectedPairs) {
                    break;
                }
            }
        }

        if (df.protected_pairs.empty()) {
            df.elidable = true;
            kept[si] = false;
        }
        info->syncs.push_back(std::move(df));
    }
}

/** Minimal local mirror of the analysis.cpp diagnostic sink: dedup on
 *  (kind, severity, buffer, axis, loop_path), capped. */
class LintSink
{
  public:
    LintSink(const AnalysisOptions& opts, std::vector<Diagnostic>* out)
        : opts_(opts), out_(out)
    {}

    void
    emit(Diagnostic diag)
    {
        std::string key =
            std::to_string(static_cast<int>(diag.kind)) + "|" +
            std::to_string(static_cast<int>(diag.severity)) + "|" +
            diag.buffer + "|" + diag.axis + "|" + diag.loop_path;
        if (!seen_.insert(key).second) return;
        if (static_cast<int>(out_->size()) >= opts_.max_diagnostics) {
            return;
        }
        out_->push_back(std::move(diag));
    }

  private:
    const AnalysisOptions& opts_;
    std::vector<Diagnostic>* out_;
    std::set<std::string> seen_;
};

/** Every enclosing serial loop provably runs at least once — required
 *  before claiming a site's hazard fires on actual executions. */
bool
loopsProvablyRun(const AccessSite& site)
{
    for (const ForNode* loop : site.serial_loops) {
        if (!positiveConstExtent(loop)) return false;
    }
    return true;
}

} // namespace

DataflowInfo
computeDataflow(const PrimFunc& func, const AnalysisOptions& options)
{
    trace::Span span("analysis.dataflow",
                     trace::arg("func", func->name));
    DataflowInfo info;
    info.func = isBlockFree(func->body) ? func : lowerToLoops(func);
    info.accesses =
        extractAccesses(info.func->body, /*widen_threads=*/false);
    const FuncAccesses& fa = info.accesses;
    if (fa.sites.size() > kMaxDataflowSites) {
        info.truncated = true;
        return info;
    }

    std::set<const BufferNode*> params;
    for (const Buffer& p : info.func->params) params.insert(p.get());

    for (const AccessSite& site : fa.sites) {
        BufferChain& chain = info.chains[site.buffer.get()];
        if (!chain.buffer.get()) {
            chain.buffer = site.buffer;
            chain.is_param = params.count(site.buffer.get()) > 0;
        }
        if (site.is_write || site.opaque) chain.defs.push_back(&site);
        if (!site.is_write || site.opaque) chain.uses.push_back(&site);
    }

    for (const auto& [buf, chain] : info.chains) {
        (void)buf;
        if (chain.is_param) continue;
        // Dead stores: no use (forward or loop-carried) may observe
        // the value. Opaque defs have unknown semantics — never dead.
        for (const AccessSite* d : chain.defs) {
            if (d->opaque) continue;
            bool live = false;
            for (const AccessSite* u : chain.uses) {
                if (mayPrecede(d, u)) {
                    live = true;
                    break;
                }
            }
            if (!live) info.dead_stores.push_back(d);
        }
        // Use-before-init: no def may precede the read. Loop-carried
        // defs count as preceding (they feed iterations past the
        // first), keeping the error claim conservative.
        for (const AccessSite* u : chain.uses) {
            bool initialized = false;
            for (const AccessSite* d : chain.defs) {
                if (d == u) continue;
                if (mayPrecede(d, u)) {
                    initialized = true;
                    break;
                }
            }
            if (!initialized) info.uninit_reads.push_back(u);
        }
    }
    auto bySeq = [](const AccessSite* a, const AccessSite* b) {
        return a->seq < b->seq;
    };
    std::sort(info.dead_stores.begin(), info.dead_stores.end(), bySeq);
    std::sort(info.uninit_reads.begin(), info.uninit_reads.end(), bySeq);

    classifySyncs(&info, options);
    return info;
}

AnalysisReport
lintFunc(const PrimFunc& func, const AnalysisOptions& options)
{
    DataflowInfo info = computeDataflow(func, options);
    AnalysisReport report;
    LintSink sink(options, &report.diagnostics);
    const arith::Analyzer& full = info.accesses.full;

    for (const AccessSite* u : info.uninit_reads) {
        Diagnostic diag;
        diag.kind = DiagKind::kUseBeforeInit;
        // Error only when the read provably executes (no guards, no
        // possibly-zero-trip loops); otherwise a warning.
        bool provable = u->guards.empty() && !u->opaque_guard &&
                        !u->opaque && loopsProvablyRun(*u);
        diag.severity =
            provable ? Severity::kError : Severity::kWarning;
        diag.buffer = u->buffer->name;
        diag.loop_path = u->loop_path;
        diag.detail = "read " + renderSite(*u, full) +
                      " has no preceding write to '" +
                      u->buffer->name + "'; the load observes "
                      "uninitialized memory";
        sink.emit(std::move(diag));
    }
    for (const AccessSite* d : info.dead_stores) {
        Diagnostic diag;
        diag.kind = DiagKind::kDeadStore;
        diag.severity = Severity::kWarning;
        diag.buffer = d->buffer->name;
        diag.loop_path = d->loop_path;
        diag.detail = "store " + renderSite(*d, full) +
                      " is observed by no later or loop-carried "
                      "read; the store is dead";
        sink.emit(std::move(diag));
    }
    for (const SyncDataflow& sync : info.syncs) {
        if (!sync.elidable) continue;
        Diagnostic diag;
        diag.kind = DiagKind::kRedundantSync;
        diag.severity = Severity::kWarning;
        diag.loop_path = sync.site->loop_path;
        diag.detail =
            "storage_sync separates no conflicting shared-memory "
            "access pair (every spanned pair is provably ordered, "
            "disjoint, or covered by another barrier)";
        sink.emit(std::move(diag));
    }

    std::stable_sort(report.diagnostics.begin(),
                     report.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                         return static_cast<int>(a.severity) <
                                static_cast<int>(b.severity);
                     });
    return report;
}

AnalysisReport
lintFuncCached(const PrimFunc& func, const AnalysisOptions& options)
{
    uint64_t hash = structuralHash(func);
    AnalysisReport report;
    if (cachedReportLookup(hash, /*family=*/1, options, &report)) {
        return report;
    }
    report = lintFunc(func, options);
    cachedReportStore(hash, /*family=*/1, options, report);
    return report;
}

} // namespace analysis
} // namespace tir
