#include "tir/analysis/access_extract.h"

#include "arith/iter_map.h"
#include "ir/functor.h"
#include "ir/transform.h"

namespace tir {
namespace analysis {

namespace {

/** Flip a comparison for `!(a REL b)`; kNE → kEQ is not produced. */
bool
negateRel(ExprKind rel, ExprKind* out)
{
    switch (rel) {
      case ExprKind::kLT: *out = ExprKind::kGE; return true;
      case ExprKind::kLE: *out = ExprKind::kGT; return true;
      case ExprKind::kGT: *out = ExprKind::kLE; return true;
      case ExprKind::kGE: *out = ExprKind::kLT; return true;
      case ExprKind::kNE: *out = ExprKind::kEQ; return true;
      default: return false;
    }
}

bool
isComparison(ExprKind kind)
{
    switch (kind) {
      case ExprKind::kLT:
      case ExprKind::kLE:
      case ExprKind::kGT:
      case ExprKind::kGE:
      case ExprKind::kEQ:
        return true;
      default:
        return false;
    }
}

class AccessExtractor : public StmtExprVisitor
{
  public:
    explicit AccessExtractor(bool widen_threads)
        : widen_threads_(widen_threads)
    {}

    FuncAccesses out;

    void
    visitStmt(const Stmt& s) override
    {
        current_stmt_ = s.get();
        if (asStorageSync(*s)) {
            SyncSite sync;
            sync.launch = launch_;
            sync.seq = seq_++;
            sync.divergent = guard_thread_depth_ > 0;
            sync.conditional = guard_thread_depth_ > 0 ||
                               opaque_guard_depth_ > 0 ||
                               !guards_.empty();
            sync.loop_path = joinPath();
            sync.serial_loops = serial_stack_;
            sync.stmt = s.get();
            out.syncs.push_back(std::move(sync));
            if (concurrency_depth_ > 0) ++sync_epoch_;
            return;
        }
        if (s->kind == StmtKind::kIfThenElse) {
            visitIf(static_cast<const IfThenElseNode&>(*s));
            return;
        }
        StmtExprVisitor::visitStmt(s);
    }

    void
    visitExpr(const Expr& e) override
    {
        // select(cond, tval, fval) guards its branches the same way an
        // if guards its cases — the padding idiom
        // select(lo <= i && i < hi, A[i - lo], 0) reads A only when
        // the condition holds, and the bounds proof needs that fact.
        if (e->kind == ExprKind::kSelect) {
            const auto& sel = static_cast<const SelectNode&>(*e);
            visitExpr(sel.cond);

            size_t guard_mark = guards_.size();
            int opaque_added = 0;
            std::vector<Expr> conjuncts =
                arith::splitConjunction(sel.cond);
            for (const Expr& c : conjuncts) {
                if (!pushConstraint(c, /*negated=*/false)) ++opaque_added;
            }
            opaque_guard_depth_ += opaque_added;
            visitExpr(sel.tval);
            opaque_guard_depth_ -= opaque_added;
            guards_.resize(guard_mark);

            bool parsed_negation =
                conjuncts.size() == 1 &&
                pushConstraint(conjuncts[0], /*negated=*/true);
            if (!parsed_negation) ++opaque_guard_depth_;
            visitExpr(sel.fval);
            if (!parsed_negation) --opaque_guard_depth_;
            guards_.resize(guard_mark);
            return;
        }
        StmtExprVisitor::visitExpr(e);
    }

  protected:
    void
    visitFor(const ForNode& node) override
    {
        bool concurrent = node.for_kind == ForKind::kThreadBinding ||
                          node.for_kind == ForKind::kParallel;
        if (!concurrent) {
            env_[node.loop_var.get()] = Range(node.min, node.extent);
            out.full.bind(node.loop_var, Range(node.min, node.extent));
            path_.push_back(node.loop_var->name);
            serial_stack_.push_back(&node);
            visitStmt(node.body);
            serial_stack_.pop_back();
            path_.pop_back();
            env_.erase(node.loop_var.get());
            return;
        }

        std::string tag = node.for_kind == ForKind::kThreadBinding
                              ? node.thread_tag
                              : "parallel:" + node.loop_var->name;
        bool launch_root = concurrency_depth_ == 0;
        if (launch_root) {
            launch_ = out.num_launches++;
            launch_axes_.clear();
            sync_epoch_ = 0;
        }
        ++concurrency_depth_;

        int64_t extent = constIntOr(node.extent, -1);
        if (constIntOr(node.min, 0) != 0) extent = -1;
        bool remapped = false;
        auto it = launch_axes_.find(tag);
        if (it == launch_axes_.end()) {
            ThreadAxis axis;
            axis.var = node.loop_var;
            axis.tag = tag;
            axis.extent = extent;
            launch_axes_.emplace(tag, axis);
            thread_stack_.push_back(axis);
            out.full.bind(node.loop_var, Range(node.min, node.extent));
        } else {
            // Sibling loop re-binding an already-seen tag: canonicalize
            // onto the first variable so footprints of both loops live
            // in one coordinate space.
            if (it->second.extent != extent) it->second.extent = -1;
            thread_remap_[node.loop_var.get()] = it->second.var;
            thread_stack_.push_back(it->second);
            remapped = true;
        }
        if (widen_threads_) {
            const Var& canonical = thread_stack_.back().var;
            env_.emplace(canonical.get(), Range(node.min, node.extent));
        }

        path_.push_back(tag);
        visitStmt(node.body);
        path_.pop_back();

        if (widen_threads_) env_.erase(thread_stack_.back().var.get());
        if (remapped) thread_remap_.erase(node.loop_var.get());
        thread_stack_.pop_back();
        --concurrency_depth_;
        if (launch_root) launch_axes_.clear();
    }

    void
    visitBufferStore(const BufferStoreNode& node) override
    {
        visitExpr(node.value);
        for (const Expr& idx : node.indices) visitExpr(idx);
        record(node.buffer, node.indices, /*is_write=*/true,
               node.value, /*opaque=*/false);
    }

    void
    visitBufferLoad(const BufferLoadNode& node) override
    {
        for (const Expr& idx : node.indices) visitExpr(idx);
        record(node.buffer, node.indices, /*is_write=*/false, nullptr,
               /*opaque=*/false);
    }

    void
    visitBufferPtr(const BufferPtrNode& node) override
    {
        for (const Expr& idx : node.indices) visitExpr(idx);
        record(node.buffer, node.indices, /*is_write=*/true, nullptr,
               /*opaque=*/true);
    }

    void
    visitBlock(const BlockNode&) override
    {
        TIR_PANIC << "access extraction expects a lowered, block-free "
                     "statement";
    }

  private:
    void
    visitIf(const IfThenElseNode& node)
    {
        visitExpr(node.cond); // record loads inside the condition
        bool thread_cond = condUsesThread(node.cond);

        size_t guard_mark = guards_.size();
        int opaque_added = 0;
        std::vector<Expr> conjuncts = arith::splitConjunction(node.cond);
        for (const Expr& c : conjuncts) {
            if (!pushConstraint(c, /*negated=*/false)) ++opaque_added;
        }
        opaque_guard_depth_ += opaque_added;
        if (thread_cond) ++guard_thread_depth_;
        visitStmt(node.then_case);
        opaque_guard_depth_ -= opaque_added;
        guards_.resize(guard_mark);

        if (node.else_case) {
            bool parsed_negation =
                conjuncts.size() == 1 &&
                pushConstraint(conjuncts[0], /*negated=*/true);
            if (!parsed_negation) ++opaque_guard_depth_;
            visitStmt(node.else_case);
            if (!parsed_negation) --opaque_guard_depth_;
            guards_.resize(guard_mark);
        }
        if (thread_cond) --guard_thread_depth_;
    }

    /** Parse one conjunct into a GuardConstraint; false when the shape
     *  is unsupported (the caller then marks the scope opaque). */
    bool
    pushConstraint(const Expr& cond, bool negated)
    {
        if (!isComparison(cond->kind) && cond->kind != ExprKind::kNE) {
            return false;
        }
        const auto& cmp = static_cast<const BinaryNode&>(*cond);
        ExprKind rel = cond->kind;
        if (negated && !negateRel(rel, &rel)) return false;
        if (!negated && rel == ExprKind::kNE) return false;
        GuardConstraint guard;
        guard.lhs = remap(cmp.a);
        guard.rhs = remap(cmp.b);
        guard.rel = rel;
        guards_.push_back(std::move(guard));
        return true;
    }

    bool
    condUsesThread(const Expr& cond)
    {
        for (const VarNode* v : collectVars(remap(cond))) {
            for (const ThreadAxis& axis : thread_stack_) {
                if (axis.var.get() == v) return true;
            }
        }
        return false;
    }

    Expr
    remap(const Expr& e) const
    {
        return thread_remap_.empty() ? e : substitute(e, thread_remap_);
    }

    void
    record(const Buffer& buffer, const std::vector<Expr>& indices,
           bool is_write, const Expr& value, bool opaque)
    {
        AccessSite site;
        site.buffer = buffer;
        site.is_write = is_write;
        site.opaque = opaque;
        site.indices.reserve(indices.size());
        for (const Expr& idx : indices) {
            site.indices.push_back(remap(idx));
        }
        if (!opaque) {
            site.bounds.reserve(indices.size());
            for (const Expr& idx : site.indices) {
                site.bounds.push_back(
                    arith::evalSymBound(idx, env_, out.full));
            }
        }
        if (value) site.value = remap(value);
        site.threads = thread_stack_;
        site.guards = guards_;
        site.opaque_guard = opaque_guard_depth_ > 0;
        site.launch = concurrency_depth_ > 0 ? launch_ : -1;
        site.sync_epoch = sync_epoch_;
        site.seq = seq_++;
        site.loop_path = joinPath();
        site.serial_loops = serial_stack_;
        site.stmt = current_stmt_;
        out.sites.push_back(std::move(site));
    }

    std::string
    joinPath() const
    {
        std::string path;
        for (const std::string& p : path_) {
            if (!path.empty()) path += "/";
            path += p;
        }
        return path.empty() ? "<top>" : path;
    }

    bool widen_threads_;
    arith::RangeEnv env_;
    VarMap thread_remap_;
    std::vector<ThreadAxis> thread_stack_;
    std::vector<const ForNode*> serial_stack_;
    const StmtNode* current_stmt_ = nullptr;
    std::map<std::string, ThreadAxis> launch_axes_;
    std::vector<GuardConstraint> guards_;
    std::vector<std::string> path_;
    int concurrency_depth_ = 0;
    int opaque_guard_depth_ = 0;
    int guard_thread_depth_ = 0;
    int launch_ = -1;
    int sync_epoch_ = 0;
    int seq_ = 0;
};

} // namespace

FuncAccesses
extractAccesses(const Stmt& body, bool widen_threads)
{
    AccessExtractor extractor(widen_threads);
    extractor.visitStmt(body);
    return std::move(extractor.out);
}

} // namespace analysis
} // namespace tir
