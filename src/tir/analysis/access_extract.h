/**
 * @file
 * Access-site extraction for lowered TensorIR. Walks a block-free
 * statement tree and records every buffer access together with the
 * symbolic per-dimension footprint it touches, the thread axes live at
 * the site, the guard constraints implied by enclosing conditionals,
 * and its position relative to storage-sync barriers. This is the raw
 * material of the race detector and the out-of-bounds checker
 * (tir/analysis/analysis.h) and of the per-region producer-consumer
 * cover check (tir/verify.h).
 */
#ifndef TENSORIR_TIR_ANALYSIS_ACCESS_EXTRACT_H
#define TENSORIR_TIR_ANALYSIS_ACCESS_EXTRACT_H

#include <map>

#include "arith/analyzer.h"
#include "arith/region.h"
#include "ir/stmt.h"

namespace tir {
namespace analysis {

/** A concurrency axis live at an access site: a GPU thread binding or
 *  a CPU parallel loop. */
struct ThreadAxis
{
    /** Canonical variable of this axis within its launch. Sibling loops
     *  re-binding the same tag are remapped onto the first one seen. */
    Var var;
    /** "blockIdx.x", "threadIdx.y", ... or "parallel:<name>" for CPU
     *  parallel loops. */
    std::string tag;
    /** Constant trip count, or -1 when symbolic / inconsistent between
     *  sibling bindings (axis then proves nothing). */
    int64_t extent = 1;

    bool isBlockAxis() const { return tag.rfind("blockIdx", 0) == 0; }
};

/** One guard constraint `lhs REL rhs` (REL in {<, <=, >, >=, ==})
 *  contributed by an enclosing IfThenElse. */
struct GuardConstraint
{
    Expr lhs;
    Expr rhs;
    ExprKind rel;
};

/** One buffer access in a lowered function. */
struct AccessSite
{
    Buffer buffer;
    bool is_write = false;
    /** BufferPtr handed to an opaque intrinsic: unknown footprint,
     *  counts as both read and write. */
    bool opaque = false;
    /** Index expressions with sibling thread vars canonicalized; serial
     *  loop vars appear as-is (they are bound in FuncAccesses::env). */
    std::vector<Expr> indices;
    /** Per-dimension inclusive symbolic footprint with serial loop vars
     *  widened away; only thread-axis vars remain symbolic. Null lo/hi
     *  for dimensions the interval machinery cannot express. */
    std::vector<arith::SymBound> bounds;
    /** Stored value (writes only). */
    Expr value;
    /** Concurrency axes enclosing the site, outermost first. */
    std::vector<ThreadAxis> threads;
    /** Parsed guard constraints of enclosing conditionals. */
    std::vector<GuardConstraint> guards;
    /** Some enclosing condition could not be parsed into constraints
     *  (negated branches, non-comparison predicates). */
    bool opaque_guard = false;
    /** Kernel-launch ordinal (outermost concurrency scope); sites from
     *  different launches are separated by an implicit device sync. */
    int launch = -1;
    /** Barriers executed before this site within its launch. */
    int sync_epoch = 0;
    /** Program-order sequence number across the whole function. */
    int seq = 0;
    /** Human-readable loop nest, e.g. "blockIdx.x/threadIdx.x/k". */
    std::string loop_path;
    /** Enclosing *serial* loops, outermost first. Pointer identity is
     *  the loop identity: two sites share an enclosing loop exactly
     *  when their stacks share an element. The dataflow framework uses
     *  this for cyclic (loop-carried) happens-before reasoning. */
    std::vector<const ForNode*> serial_loops;
    /** Statement the access belongs to: the BufferStore itself for
     *  writes, the innermost enclosing statement for reads/opaque
     *  accesses. Valid while the walked tree is alive; rewriting
     *  passes use it to map analysis results back onto AST nodes. */
    const StmtNode* stmt = nullptr;
};

/** A storage-sync barrier site. */
struct SyncSite
{
    int launch = -1;
    int seq = 0;
    /** Barrier sits under thread-divergent control flow: only part of
     *  the block reaches it (deadlock on real hardware). */
    bool divergent = false;
    /** Barrier sits under *any* conditional (thread-divergent or not):
     *  it may not execute on every path, so it cannot be relied on to
     *  order accesses outside the conditional. */
    bool conditional = false;
    std::string loop_path;
    /** Enclosing serial loops, outermost first (see AccessSite). */
    std::vector<const ForNode*> serial_loops;
    /** The Evaluate statement holding the barrier call. */
    const StmtNode* stmt = nullptr;
};

/** All accesses of one lowered function. */
struct FuncAccesses
{
    std::vector<AccessSite> sites;
    std::vector<SyncSite> syncs;
    int num_launches = 0;
    /** Analyzer with every loop variable of the function bound to its
     *  range (serial vars and canonical thread vars alike). Shared by
     *  the checks; variable identity is unique per loop. */
    arith::Analyzer full;
};

/**
 * Extract the access sites of a lowered (block-free) statement.
 * When `widen_threads` is set, thread-axis variables are widened over
 * their ranges like serial loops (footprints then contain no loop vars
 * at all) — the mode the stage-cover check uses; race analysis keeps
 * them symbolic.
 */
FuncAccesses extractAccesses(const Stmt& body, bool widen_threads = false);

} // namespace analysis
} // namespace tir

#endif // TENSORIR_TIR_ANALYSIS_ACCESS_EXTRACT_H
