/**
 * @file
 * Dataflow analysis framework over lowered TensorIR: per-buffer
 * def/use chains and region-level liveness computed on a CFG-like walk
 * of the statement tree (the access-site extractor provides the walk:
 * program-order sequence numbers, serial-loop stacks for loop-carried
 * edges, launches and sync epochs for concurrency structure). Where
 * the race analysis (analysis.h) only *rejects* programs, this layer
 * *explains* them — which write feeds which read, which store no read
 * can observe, which barrier orders nothing — so optimization passes
 * (lower/lower.h: elideRedundantSync, eliminateDeadStores) can emit
 * rewrites the framework proves safe, and the `tensorir-lint` tool can
 * report the findings as stable-coded diagnostics:
 *
 *   TIR-L001  use-before-init read  (error when no write can precede)
 *   TIR-L002  provably dead store   (warning; removable for free)
 *   TIR-L003  redundant barrier     (warning; protected pair set empty)
 *
 * The happens-before model is deliberately simple and conservative:
 * access x may precede access y iff x.seq < y.seq (straight-line
 * order) or x and y share an enclosing serial loop (x's instance in
 * iteration i precedes y's in iteration i+1). Everything downstream —
 * liveness, initialization, barrier protection — is phrased over that
 * relation plus the per-axis disjointness proofs of the race analysis.
 */
#ifndef TENSORIR_TIR_ANALYSIS_DATAFLOW_H
#define TENSORIR_TIR_ANALYSIS_DATAFLOW_H

#include <map>
#include <vector>

#include "tir/analysis/access_extract.h"
#include "tir/analysis/analysis.h"

namespace tir {
namespace analysis {

/** Def/use chain of one buffer across the whole function, in program
 *  order. Opaque (BufferPtr) sites appear in both lists. */
struct BufferChain
{
    Buffer buffer;
    /** Buffer is a function parameter: externally observable, so its
     *  stores are always live and its contents arrive initialized. */
    bool is_param = false;
    /** Write sites, program order (pointers into DataflowInfo's
     *  FuncAccesses::sites). */
    std::vector<const AccessSite*> defs;
    /** Read sites, program order. */
    std::vector<const AccessSite*> uses;
};

/** One storage-sync barrier with the pairs it actually orders. */
struct SyncDataflow
{
    const SyncSite* site = nullptr;
    /** Access pairs (in execution order, loop-carried pairs included)
     *  for which this barrier is the sole remaining orderer of a
     *  possible cross-thread conflict. Empty ⇒ the barrier is
     *  redundant (TIR-L003). Capped at 8 pairs per sync — enough for
     *  a diagnostic, and the elision decision only needs emptiness. */
    std::vector<std::pair<const AccessSite*, const AccessSite*>>
        protected_pairs;
    /** Empty protected set under the greedy left-to-right elision
     *  order: this barrier can be removed while every barrier still
     *  marked kept stays. The elision pass removes exactly these. */
    bool elidable = false;
};

/** Whole-function dataflow summary. */
struct DataflowInfo
{
    /** The analyzed (lowered) function — owns every node the site
     *  pointers below reference. */
    PrimFunc func;
    /** Raw access sites (race-analysis mode: thread vars symbolic). */
    FuncAccesses accesses;
    /** Def/use chains keyed by buffer identity. */
    std::map<const BufferNode*, BufferChain> chains;
    /** Writes no use can observe (forward or loop-carried): provably
     *  dead stores, in program order. Opaque sites and parameter
     *  buffers are never listed. */
    std::vector<const AccessSite*> dead_stores;
    /** Reads of intermediate buffers that no write can precede:
     *  use-before-init, in program order. */
    std::vector<const AccessSite*> uninit_reads;
    /** Per-barrier protection info, in program order. */
    std::vector<SyncDataflow> syncs;
    /** Analysis was skipped (site count beyond the budget); all result
     *  sets are empty and nothing may be optimized. */
    bool truncated = false;
};

/**
 * Compute the dataflow summary of a function. Accepts scheduled or
 * lowered functions; block-containing bodies are lowered internally
 * first (like analyzeFunc). `options` feeds the disjointness proofs
 * used by barrier protection (exhaustive_pair_limit et al.).
 */
DataflowInfo computeDataflow(const PrimFunc& func,
                             const AnalysisOptions& options = {});

/**
 * Lint a function: render the dataflow findings as structured
 * diagnostics (TIR-L001 use-before-init as errors, TIR-L002 dead
 * stores and TIR-L003 redundant barriers as warnings), deduplicated
 * and capped like analyzeFunc diagnostics.
 */
AnalysisReport lintFunc(const PrimFunc& func,
                        const AnalysisOptions& options = {});

/** lintFunc through the same structural-hash cache discipline as
 *  analyzeFuncCached (shared hit/miss trace counters; cleared by
 *  clearAnalysisCache). */
AnalysisReport lintFuncCached(const PrimFunc& func,
                              const AnalysisOptions& options = {});

} // namespace analysis
} // namespace tir

#endif // TENSORIR_TIR_ANALYSIS_DATAFLOW_H
