/**
 * @file
 * Block-level primitives: blockize (Figure 7) isolates a loop subtree
 * into a new sub-block; tensorize matches a blockized computation against
 * a TensorIntrin description and swaps in the opaque implementation,
 * checking dtype and storage-scope constraints (§4.1).
 */
#include "arith/region.h"
#include "intrin/tensor_intrin.h"
#include "ir/printer.h"
#include "ir/structural_equal.h"
#include "ir/transform.h"
#include "tir/schedule.h"

namespace tir {

namespace {

/** Collect the single For chain from `root` down to one BlockRealize. */
bool
collectChain(const Stmt& root, std::vector<const ForNode*>* loops,
             Stmt* realize)
{
    Stmt cursor = root;
    while (cursor->kind == StmtKind::kFor) {
        const auto* f = static_cast<const ForNode*>(cursor.get());
        loops->push_back(f);
        cursor = f->body;
    }
    if (cursor->kind != StmtKind::kBlockRealize) return false;
    *realize = cursor;
    return true;
}

} // namespace

std::string
Schedule::blockize(const Var& loop)
{
    const ForNode* top = findLoop(loop);
    std::vector<const ForNode*> inner_loops;
    Stmt realize_stmt;
    // Hold the subtree alive via a fresh handle.
    Stmt top_stmt = makeFor(top->loop_var, top->min, top->extent,
                            top->body, top->for_kind, top->thread_tag,
                            top->annotations);
    TIR_CHECK(collectChain(top_stmt, &inner_loops, &realize_stmt))
        << "blockize: subtree under " << loop->name
        << " is not a plain loop nest over a single block";
    const auto& realize =
        static_cast<const BlockRealizeNode&>(*realize_stmt);
    const BlockNode& b = *realize.block;
    TIR_CHECK(!b.init)
        << "blockize: decompose the reduction before blockizing";
    TIR_CHECK(constIntOr(realize.predicate, 0) == 1)
        << "blockize: predicated blocks are not supported";

    arith::Analyzer analyzer;
    std::unordered_map<const VarNode*, Expr> inner_zero;
    std::set<const VarNode*> inner_vars;
    for (const ForNode* f : inner_loops) {
        analyzer.bind(f->loop_var, Range(f->min, f->extent));
        inner_zero[f->loop_var.get()] = f->min;
        inner_vars.insert(f->loop_var.get());
    }

    std::vector<IterVar> outer_iters;
    std::vector<Expr> outer_bindings;
    std::vector<IterVar> new_inner_iters;
    std::vector<Expr> inner_bindings;
    VarMap body_remap; // old block iter -> vo * c + vi'
    for (size_t i = 0; i < b.iter_vars.size(); ++i) {
        const IterVar& iv = b.iter_vars[i];
        int64_t dom_extent = constIntOr(iv.dom.extent, -1);
        TIR_CHECK(dom_extent > 0 && constIntOr(iv.dom.min, -1) == 0)
            << "blockize: iterator domains must be constant [0, n)";
        Expr binding = analyzer.simplify(realize.iter_values[i]);
        Expr outer_part = analyzer.simplify(
            substitute(binding, VarMap(inner_zero.begin(),
                                       inner_zero.end())));
        Expr delta = analyzer.simplify(binding - outer_part);
        for (const VarNode* v : collectVars(delta)) {
            TIR_CHECK(inner_vars.count(v))
                << "blockize: binding of " << iv.var->name
                << " does not separate into outer + inner parts";
        }
        for (const VarNode* v : collectVars(outer_part)) {
            TIR_CHECK(!inner_vars.count(v))
                << "blockize: outer part of " << iv.var->name
                << " references inner loops";
        }
        arith::Interval delta_range = analyzer.evalInterval(delta);
        TIR_CHECK(delta_range.lo == 0)
            << "blockize: inner extent of " << iv.var->name
            << " does not start at 0";
        int64_t c = delta_range.hi + 1;
        TIR_CHECK(dom_extent % c == 0)
            << "blockize: tile size " << c << " does not divide domain "
            << dom_extent << " of " << iv.var->name;
        Expr outer_div = analyzer.simplify(floordiv(outer_part, c));
        TIR_CHECK(constIntOr(
                      analyzer.simplify(outer_div * c - outer_part), -1) ==
                  0)
            << "blockize: outer part of " << iv.var->name
            << " is not aligned to the tile size " << c;

        Var vo = var(iv.var->name + "_o", iv.var->dtype);
        Var vi = var(iv.var->name + "_i", iv.var->dtype);
        outer_iters.emplace_back(vo, Range::fromExtent(dom_extent / c),
                                 iv.type);
        outer_bindings.push_back(outer_div);
        new_inner_iters.emplace_back(vi, Range::fromExtent(c), iv.type);
        inner_bindings.push_back(delta);
        // Keep the uniform vo*c + vi shape (even for c == 1) so that
        // tensorize's offset extraction sees base + tile-iterator terms.
        body_remap[iv.var.get()] = Expr(vo) * c + vi;
    }

    // Rebuild the inner block with remapped iterators.
    Stmt new_body = substitute(b.body, body_remap);
    std::vector<BufferRegion> new_reads;
    std::vector<BufferRegion> new_writes;
    auto remap_regions = [&](const std::vector<BufferRegion>& regions,
                             std::vector<BufferRegion>* out) {
        for (const BufferRegion& br : regions) {
            std::vector<Range> ranges;
            for (const Range& r : br.region) {
                ranges.emplace_back(
                    analyzer.simplify(substitute(r.min, body_remap)),
                    analyzer.simplify(substitute(r.extent, body_remap)));
            }
            out->push_back(BufferRegion(br.buffer, std::move(ranges)));
        }
    };
    remap_regions(b.reads, &new_reads);
    remap_regions(b.writes, &new_writes);
    BlockPtr inner_block =
        makeBlock(b.name, new_inner_iters, new_reads, new_writes,
                  new_body, nullptr, b.alloc_buffers, b.annotations);
    Stmt inner_realize = blockRealize(inner_bindings,
                                      intImm(1, DataType::boolean()),
                                      inner_block);
    Stmt inner_nest = inner_realize;
    for (size_t i = inner_loops.size(); i > 0; --i) {
        const ForNode* f = inner_loops[i - 1];
        inner_nest = makeFor(f->loop_var, f->min, f->extent, inner_nest,
                             f->for_kind, f->thread_tag, f->annotations);
    }

    // Outer block signature from the rebuilt inner subtree.
    arith::AccessRegions outer_regions =
        arith::detectRegions(inner_nest, {});
    std::string outer_name = uniqueName(b.name + "_o");
    BlockPtr outer_block =
        makeBlock(outer_name, outer_iters, outer_regions.reads,
                  outer_regions.writes, inner_nest);
    Stmt outer_realize = blockRealize(outer_bindings,
                                      intImm(1, DataType::boolean()),
                                      outer_block);
    replaceNode(top, outer_realize);
    return outer_name;
}

namespace {

/**
 * Structural matcher between a target computation and an intrinsic
 * description, tolerant to constant base offsets in buffer indices.
 * Records the desc-param -> actual-buffer mapping and per-dim offsets.
 */
class TensorizeComparator
{
  public:
    std::string error;
    std::unordered_map<const BufferNode*, Buffer> param_map;
    std::unordered_map<const BufferNode*, std::vector<Expr>> offsets;

    bool
    match(const Stmt& target, const Stmt& desc)
    {
        if (target->kind != desc->kind) {
            error = "statement kind mismatch";
            return false;
        }
        switch (desc->kind) {
          case StmtKind::kFor: {
            const auto& t = static_cast<const ForNode&>(*target);
            const auto& d = static_cast<const ForNode&>(*desc);
            if (constIntOr(t.extent, -1) != constIntOr(d.extent, -2)) {
                error = "loop extent mismatch";
                return false;
            }
            var_map_[d.loop_var.get()] = t.loop_var;
            mapped_targets_.insert(t.loop_var.get());
            analyzer_.bind(t.loop_var, Range(t.min, t.extent));
            return match(t.body, d.body);
          }
          case StmtKind::kBlockRealize: {
            const auto& t = static_cast<const BlockRealizeNode&>(*target);
            const auto& d = static_cast<const BlockRealizeNode&>(*desc);
            if (constIntOr(t.predicate, 0) != 1) {
                error = "target block is predicated";
                return false;
            }
            const BlockNode& tb = *t.block;
            const BlockNode& db = *d.block;
            if (tb.iter_vars.size() < db.iter_vars.size()) {
                error = "iterator count mismatch";
                return false;
            }
            // Extra leading target iterators (e.g. a batch axis) must be
            // degenerate; they fold to constants during comparison.
            size_t extra = tb.iter_vars.size() - db.iter_vars.size();
            for (size_t i = 0; i < extra; ++i) {
                const IterVar& ti = tb.iter_vars[i];
                if (constIntOr(ti.dom.extent, -1) != 1) {
                    error = "iterator count mismatch (non-degenerate "
                            "extra iterator " +
                            ti.var->name + ")";
                    return false;
                }
                analyzer_.bind(ti.var, ti.dom);
            }
            for (size_t i = 0; i < db.iter_vars.size(); ++i) {
                const IterVar& ti = tb.iter_vars[extra + i];
                const IterVar& di = db.iter_vars[i];
                if (ti.type != di.type ||
                    constIntOr(ti.dom.extent, -1) !=
                        constIntOr(di.dom.extent, -2)) {
                    error = "iterator domain mismatch for " +
                            ti.var->name;
                    return false;
                }
                var_map_[di.var.get()] = ti.var;
                mapped_targets_.insert(ti.var.get());
                analyzer_.bind(ti.var, ti.dom);
            }
            for (size_t i = 0; i < db.iter_vars.size(); ++i) {
                // Bindings must be semantically equal (extent-1 loops
                // may have been folded to constants by simplification).
                Expr diff = analyzer_.simplify(binary(
                    ExprKind::kSub, t.iter_values[extra + i],
                    substituteDescVars(d.iter_values[i])));
                if (constIntOr(diff, -1) != 0) {
                    error = "iterator binding mismatch for " +
                            tb.iter_vars[extra + i].var->name;
                    return false;
                }
            }
            if (static_cast<bool>(tb.init) != static_cast<bool>(db.init)) {
                error = "init statement mismatch";
                return false;
            }
            return match(tb.body, db.body);
          }
          case StmtKind::kBufferStore: {
            const auto& t = static_cast<const BufferStoreNode&>(*target);
            const auto& d = static_cast<const BufferStoreNode&>(*desc);
            if (!matchBuffer(t.buffer, d.buffer)) return false;
            if (!matchIndices(t.indices, d.indices, d.buffer)) {
                return false;
            }
            return matchExpr(t.value, d.value);
          }
          case StmtKind::kSeq: {
            const auto& t = static_cast<const SeqStmtNode&>(*target);
            const auto& d = static_cast<const SeqStmtNode&>(*desc);
            if (t.seq.size() != d.seq.size()) {
                error = "sequence length mismatch";
                return false;
            }
            for (size_t i = 0; i < t.seq.size(); ++i) {
                if (!match(t.seq[i], d.seq[i])) return false;
            }
            return true;
          }
          default:
            error = "unsupported statement in description";
            return false;
        }
    }

  private:
    bool
    matchBuffer(const Buffer& target, const Buffer& desc_param)
    {
        auto it = param_map.find(desc_param.get());
        if (it != param_map.end()) {
            if (it->second != target) {
                error = "inconsistent buffer mapping for " +
                        desc_param->name;
                return false;
            }
            return true;
        }
        if (target->dtype != desc_param->dtype) {
            error = "dtype mismatch: " + target->name + " is " +
                    target->dtype.str() + ", intrinsic wants " +
                    desc_param->dtype.str();
            return false;
        }
        if (desc_param->scope != "any" &&
            target->scope != desc_param->scope) {
            error = "storage scope mismatch: " + target->name +
                    " lives in '" + target->scope +
                    "', intrinsic requires '" + desc_param->scope + "'";
            return false;
        }
        if (target->ndim() < desc_param->ndim()) {
            error = "rank mismatch for " + target->name;
            return false;
        }
        param_map[desc_param.get()] = target;
        return true;
    }

    bool
    matchIndices(const std::vector<Expr>& target,
                 const std::vector<Expr>& desc, const Buffer& desc_param)
    {
        // The target may carry extra *leading* dimensions (e.g. a batch
        // axis); those must be tile-invariant and become pure offsets.
        if (target.size() < desc.size()) {
            error = "index rank mismatch";
            return false;
        }
        size_t lead = target.size() - desc.size();
        std::vector<Expr>& base = offsets[desc_param.get()];
        bool first = base.empty();
        for (size_t d = 0; d < target.size(); ++d) {
            Expr diff;
            if (d < lead) {
                diff = analyzer_.simplify(target[d]);
            } else {
                Expr mapped = substituteDescVars(desc[d - lead]);
                diff = analyzer_.simplify(
                    binary(ExprKind::kSub, target[d], mapped));
            }
            for (const VarNode* v : collectVars(diff)) {
                if (mapped_targets_.count(v)) {
                    error = "index offset depends on tile iterators";
                    return false;
                }
            }
            if (first) {
                base.push_back(diff);
            } else if (!exprDeepEqual(base[d], diff)) {
                error = "inconsistent base offset for " +
                        desc_param->name;
                return false;
            }
        }
        return true;
    }

    Expr
    substituteDescVars(const Expr& e)
    {
        VarMap vmap;
        for (const auto& [desc_var, target_var] : var_map_) {
            vmap[desc_var] = target_var;
        }
        return substitute(e, vmap);
    }

    bool
    matchExpr(const Expr& target, const Expr& desc)
    {
        if (desc->kind == ExprKind::kVar) {
            auto it = var_map_.find(
                static_cast<const VarNode*>(desc.get()));
            if (it == var_map_.end()) {
                error = "unmapped description variable";
                return false;
            }
            if (target->kind != ExprKind::kVar ||
                target.get() != it->second.get()) {
                error = "variable mismatch";
                return false;
            }
            return true;
        }
        if (target->kind != desc->kind) {
            error = "expression kind mismatch: " + exprToString(target) +
                    " vs " + exprToString(desc);
            return false;
        }
        switch (desc->kind) {
          case ExprKind::kIntImm:
            return static_cast<const IntImmNode&>(*target).value ==
                   static_cast<const IntImmNode&>(*desc).value;
          case ExprKind::kFloatImm:
            return static_cast<const FloatImmNode&>(*target).value ==
                   static_cast<const FloatImmNode&>(*desc).value;
          case ExprKind::kCast: {
            const auto& t = static_cast<const CastNode&>(*target);
            const auto& d = static_cast<const CastNode&>(*desc);
            if (t.dtype != d.dtype) {
                error = "cast dtype mismatch";
                return false;
            }
            return matchExpr(t.value, d.value);
          }
          case ExprKind::kBufferLoad: {
            const auto& t = static_cast<const BufferLoadNode&>(*target);
            const auto& d = static_cast<const BufferLoadNode&>(*desc);
            if (!matchBuffer(t.buffer, d.buffer)) return false;
            return matchIndices(t.indices, d.indices, d.buffer);
          }
          default: {
            if (target->dtype != desc->dtype) {
                error = "dtype mismatch";
                return false;
            }
            const auto& t = static_cast<const BinaryNode&>(*target);
            const auto& d = static_cast<const BinaryNode&>(*desc);
            return matchExpr(t.a, d.a) && matchExpr(t.b, d.b);
          }
        }
    }

    std::unordered_map<const VarNode*, Var> var_map_;
    std::set<const VarNode*> mapped_targets_;
    arith::Analyzer analyzer_;
};

/** Instantiate an intrinsic implementation onto matched buffers. */
class ImplInstantiator : public StmtExprMutator
{
  public:
    ImplInstantiator(
        const std::unordered_map<const BufferNode*, Buffer>* param_map,
        const std::unordered_map<const BufferNode*, std::vector<Expr>>*
            offsets)
        : param_map_(param_map), offsets_(offsets)
    {}

  protected:
    Buffer
    mutateBuffer(const Buffer& b) override
    {
        auto it = param_map_->find(b.get());
        return it == param_map_->end() ? b : it->second;
    }

    Expr
    mutateBufferPtr(const Expr& e) override
    {
        const auto& n = static_cast<const BufferPtrNode&>(*e);
        return bufferPtr(mutateBuffer(n.buffer),
                         shifted(n.buffer, n.indices));
    }

    Expr
    mutateBufferLoad(const Expr& e) override
    {
        const auto& n = static_cast<const BufferLoadNode&>(*e);
        return bufferLoad(mutateBuffer(n.buffer),
                          shifted(n.buffer, n.indices));
    }

    Stmt
    mutateBufferStore(const Stmt& s) override
    {
        const auto& n = static_cast<const BufferStoreNode&>(*s);
        return bufferStore(mutateBuffer(n.buffer),
                           mutateExpr(n.value),
                           shifted(n.buffer, n.indices));
    }

  private:
    std::vector<Expr>
    shifted(const Buffer& param, const std::vector<Expr>& indices)
    {
        auto it = offsets_->find(param.get());
        arith::Analyzer analyzer;
        if (it == offsets_->end()) {
            std::vector<Expr> result;
            for (const Expr& idx : indices) {
                result.push_back(mutateExpr(idx));
            }
            return result;
        }
        // The matched buffer may have extra leading dimensions: the
        // recorded offsets have the actual rank, the impl indices the
        // intrinsic-parameter rank.
        const std::vector<Expr>& base = it->second;
        TIR_ICHECK(base.size() >= indices.size());
        size_t lead = base.size() - indices.size();
        std::vector<Expr> result;
        result.reserve(base.size());
        for (size_t d = 0; d < base.size(); ++d) {
            if (d < lead) {
                result.push_back(base[d]);
            } else {
                Expr idx = mutateExpr(indices[d - lead]);
                result.push_back(analyzer.simplify(idx + base[d]));
            }
        }
        return result;
    }

    const std::unordered_map<const BufferNode*, Buffer>* param_map_;
    const std::unordered_map<const BufferNode*, std::vector<Expr>>*
        offsets_;
};

} // namespace

void
Schedule::tensorize(const std::string& block, const std::string& intrin)
{
    const TensorIntrin& ti = TensorIntrin::get(intrin);
    BlockSite site = findSite(block);
    const BlockNode* b = asBlockRealize(site.realize);

    TensorizeComparator comparator;
    TIR_CHECK(comparator.match(b->body, ti.desc))
        << "tensorize: block '" << block
        << "' does not match intrinsic '" << intrin
        << "': " << comparator.error;

    Stmt impl = copyWithFreshVars(ti.impl, "_" + block);
    ImplInstantiator instantiator(&comparator.param_map,
                                  &comparator.offsets);
    Stmt new_body = instantiator.mutateStmt(impl);

    std::map<std::string, Expr> annotations = b->annotations;
    annotations["tensor_intrin"] = stringImm(intrin);
    BlockPtr updated =
        makeBlock(b->name, b->iter_vars, b->reads, b->writes, new_body,
                  b->init, b->alloc_buffers, std::move(annotations));
    const auto& realize =
        static_cast<const BlockRealizeNode&>(*site.realize);
    replaceNode(site.realize.get(),
                blockRealize(realize.iter_values, realize.predicate,
                             updated));
}

} // namespace tir
