/**
 * @file
 * Data staging primitives: cache_read / cache_write introduce copy blocks
 * through faster memory scopes, and reindexFused / transformBlockLayout
 * implement the paper's §4.2 ReIndex + layout-rewrite + iterator-fusion
 * pipeline (with padding to divisible shapes).
 */
#include "arith/region.h"
#include "ir/structural_equal.h"
#include "ir/functor.h"
#include "ir/transform.h"
#include "tir/schedule.h"

namespace tir {

namespace {

/** Sanitize a memory scope for use inside identifiers. */
std::string
scopeTag(const std::string& scope)
{
    std::string tag = scope;
    for (char& c : tag) {
        if (c == '.') c = '_';
    }
    return tag;
}

/** Recompute a block's signature regions from its body and init. */
BlockPtr
refreshRegions(const BlockNode& block)
{
    Stmt probe = block.init ? seq({block.init, block.body}) : block.body;
    arith::AccessRegions regions = arith::detectRegions(probe, {});
    std::vector<BufferRegion> reads;
    for (const BufferRegion& br : regions.reads) {
        if (block.init) {
            bool self = false;
            for (const BufferRegion& w : regions.writes) {
                self |= (w.buffer == br.buffer);
            }
            if (self) continue;
        }
        reads.push_back(br);
    }
    return makeBlock(block.name, block.iter_vars, std::move(reads),
                     regions.writes, block.body, block.init,
                     block.alloc_buffers, block.annotations);
}

/** Build an identity copy block src -> dst over the full shape. */
Stmt
buildCopyNest(const std::string& name, const Buffer& src,
              const Buffer& dst)
{
    TIR_ICHECK(src->ndim() == dst->ndim());
    std::vector<Var> loop_vars;
    std::vector<IterVar> iters;
    std::vector<Expr> bindings;
    std::vector<Expr> indices;
    for (size_t d = 0; d < src->ndim(); ++d) {
        Var lv = var("c" + std::to_string(d));
        Var bv = var("v" + std::to_string(d));
        loop_vars.push_back(lv);
        iters.emplace_back(bv, Range(intImm(0), src->shape[d]),
                           IterType::kSpatial);
        bindings.push_back(lv);
        indices.push_back(bv);
    }
    Stmt store = bufferStore(dst, bufferLoad(src, indices), indices);
    std::vector<Range> point;
    for (const Expr& idx : indices) point.emplace_back(idx, intImm(1));
    BlockPtr block = makeBlock(name, iters,
                               {BufferRegion(src, point)},
                               {BufferRegion(dst, point)}, store);
    Stmt body = blockRealize(bindings, intImm(1, DataType::boolean()),
                             block);
    for (size_t d = src->ndim(); d > 0; --d) {
        body = makeFor(loop_vars[d - 1], intImm(0), src->shape[d - 1],
                       body);
    }
    return body;
}

/** The subtree root of a block: its own private loop chain. */
Stmt
privateNest(const Schedule::BlockSite& site)
{
    Stmt subtree = site.realize;
    for (size_t i = site.loops.size(); i > 0; --i) {
        const auto& loop = static_cast<const ForNode&>(*site.loops[i - 1]);
        if (loop.body == subtree) {
            subtree = site.loops[i - 1];
        } else {
            break;
        }
    }
    return subtree;
}

/** Mixed-radix fuse expression over iters with the given extents. */
Expr
fuseExpr(const std::vector<Var>& iters,
         const std::vector<int64_t>& extents)
{
    TIR_ICHECK(!iters.empty());
    Expr result = iters[0];
    for (size_t j = 1; j < iters.size(); ++j) {
        result = result * intImm(extents[j], iters[0]->dtype) + iters[j];
    }
    return result;
}

} // namespace

std::string
Schedule::cacheRead(const std::string& block, int read_index,
                    const std::string& scope)
{
    BlockSite site = findSite(block);
    const BlockNode* b = asBlockRealize(site.realize);
    TIR_CHECK(read_index >= 0 &&
              read_index < static_cast<int>(b->reads.size()))
        << "cache_read: read index " << read_index << " out of range";
    const Buffer src = b->reads[read_index].buffer;

    Buffer cache = makeBufferE(src->name + "_" + scopeTag(scope),
                               src->shape, src->dtype, scope);
    std::string copy_name = uniqueName(src->name + "_" + scopeTag(scope));
    Stmt copy_nest = buildCopyNest(copy_name, src, cache);

    // Rewrite the consumer to read from the cache.
    BufferMap bmap;
    bmap[src.get()] = cache;
    const auto& realize =
        static_cast<const BlockRealizeNode&>(*site.realize);
    Stmt new_body = substituteBuffers(b->body, bmap);
    std::vector<BufferRegion> reads = b->reads;
    reads[read_index] = BufferRegion(cache, reads[read_index].region);
    BlockPtr updated =
        makeBlock(b->name, b->iter_vars, std::move(reads), b->writes,
                  new_body, b->init, b->alloc_buffers, b->annotations);
    replaceNode(site.realize.get(),
                blockRealize(realize.iter_values, realize.predicate,
                             updated));

    // Insert the copy nest directly before the consumer's private nest.
    BlockSite new_site = findSite(block);
    Stmt nest = privateNest(new_site);
    replaceNode(nest.get(), seq({copy_nest, nest}));
    addRootAlloc(cache);
    return copy_name;
}

std::string
Schedule::cacheWrite(const std::string& block, const std::string& scope)
{
    BlockSite site = findSite(block);
    const BlockNode* b = asBlockRealize(site.realize);
    TIR_CHECK(b->writes.size() == 1)
        << "cache_write expects a single-output block";
    const Buffer out = b->writes[0].buffer;

    Buffer cache = makeBufferE(out->name + "_" + scopeTag(scope),
                               out->shape, out->dtype, scope);
    std::string copy_name = uniqueName(out->name + "_" + scopeTag(scope));
    Stmt copy_nest = buildCopyNest(copy_name, cache, out);

    // Redirect the producer (stores and self-reads) to the cache.
    BufferMap bmap;
    bmap[out.get()] = cache;
    const auto& realize =
        static_cast<const BlockRealizeNode&>(*site.realize);
    Stmt new_body = substituteBuffers(b->body, bmap);
    Stmt new_init = b->init ? substituteBuffers(b->init, bmap) : nullptr;
    std::vector<BufferRegion> writes = b->writes;
    writes[0] = BufferRegion(cache, writes[0].region);
    BlockPtr updated =
        makeBlock(b->name, b->iter_vars, b->reads, std::move(writes),
                  new_body, new_init, b->alloc_buffers, b->annotations);
    replaceNode(site.realize.get(),
                blockRealize(realize.iter_values, realize.predicate,
                             updated));

    BlockSite new_site = findSite(block);
    Stmt nest = privateNest(new_site);
    replaceNode(nest.get(), seq({nest, copy_nest}));
    addRootAlloc(cache);
    return copy_name;
}

namespace {

/** All loads of `buffer` in a statement. */
class LoadFinder : public StmtExprVisitor
{
  public:
    explicit LoadFinder(const Buffer& buffer) : buffer_(buffer) {}
    std::vector<const BufferLoadNode*> loads;

  protected:
    void
    visitBufferLoad(const BufferLoadNode& node) override
    {
        if (node.buffer == buffer_) loads.push_back(&node);
        StmtExprVisitor::visitBufferLoad(node);
    }

  private:
    const Buffer& buffer_;
};

/** Replace loads of one buffer with a load of another at fixed indices. */
class LoadSwapper : public StmtExprMutator
{
  public:
    LoadSwapper(const Buffer& from, Buffer to, std::vector<Expr> indices)
        : from_(from), to_(std::move(to)), indices_(std::move(indices))
    {}

  protected:
    Expr
    mutateBufferLoad(const Expr& e) override
    {
        const auto& n = static_cast<const BufferLoadNode&>(*e);
        if (n.buffer == from_) return bufferLoad(to_, indices_);
        return StmtExprMutator::mutateBufferLoad(e);
    }

  private:
    const Buffer& from_;
    Buffer to_;
    std::vector<Expr> indices_;
};

} // namespace

std::string
Schedule::reindexFused(const std::string& block, int operand,
                       const std::vector<std::vector<int>>& groups,
                       const std::vector<int64_t>& padded_extents,
                       const std::vector<int>& operand_groups)
{
    BlockSite site = findSite(block);
    const BlockNode* b = asBlockRealize(site.realize);
    TIR_ICHECK(groups.size() == padded_extents.size());
    const bool is_output = (operand < 0);
    TIR_CHECK(is_output || operand < static_cast<int>(b->reads.size()))
        << "reindexFused: operand out of range";
    const Buffer src = is_output ? b->writes[0].buffer
                                 : b->reads[operand].buffer;

    // The operand's access expression inside the block body.
    std::vector<Expr> access;
    if (is_output) {
        TIR_CHECK(b->body->kind == StmtKind::kBufferStore)
            << "reindexFused expects a single-store einsum block";
        access = static_cast<const BufferStoreNode&>(*b->body).indices;
    } else {
        LoadFinder finder(src);
        finder.visitStmt(b->body);
        TIR_CHECK(!finder.loads.empty())
            << "reindexFused: block does not read " << src->name;
        access = finder.loads[0]->indices;
        for (const BufferLoadNode* load : finder.loads) {
            TIR_CHECK(load->indices.size() == access.size());
            for (size_t d = 0; d < access.size(); ++d) {
                TIR_CHECK(exprDeepEqual(load->indices[d], access[d]))
                    << "reindexFused: multiple access patterns for "
                    << src->name;
            }
        }
    }

    // Which groups index this operand: those whose iters appear in the
    // access expression (the characteristic-vector criterion of §4.2).
    std::set<const VarNode*> access_vars;
    for (const Expr& idx : access) {
        for (const VarNode* v : collectVars(idx)) access_vars.insert(v);
    }
    std::vector<int> applicable;
    for (size_t g = 0; g < groups.size(); ++g) {
        bool any = false;
        bool all = true;
        for (int iter_index : groups[g]) {
            bool used = access_vars.count(
                b->iter_vars[iter_index].var.get());
            any |= used;
            all &= used;
        }
        TIR_CHECK(any == all)
            << "reindexFused: group " << g
            << " is partially used by operand " << src->name
            << " (characteristic vectors are inconsistent)";
        if (any) applicable.push_back(static_cast<int>(g));
    }
    TIR_CHECK(!applicable.empty())
        << "reindexFused: operand uses no iterator group";
    if (!operand_groups.empty()) {
        // Caller-specified dimension order (e.g. B laid out [k, y] for a
        // matmul intrinsic). Must cover exactly the applicable groups.
        std::set<int> want(operand_groups.begin(), operand_groups.end());
        std::set<int> have(applicable.begin(), applicable.end());
        TIR_CHECK(want == have)
            << "reindexFused: operand group order does not match the "
               "groups this operand uses";
        applicable = operand_groups;
    }

    // Fused buffer, one dim per applicable group (padded extent).
    std::vector<int64_t> shape;
    for (int g : applicable) shape.push_back(padded_extents[g]);
    Buffer fused = makeBuffer(src->name + "_t", shape, src->dtype,
                              "global");

    // Copy block: iterate the padded fused space, extract digit
    // iterators, and gather from the source (zero outside bounds).
    std::vector<Var> copy_loop_vars;
    std::vector<IterVar> copy_iters;
    std::vector<Expr> copy_bindings;
    std::vector<Expr> fused_indices;
    VarMap digit_map; // original block iter -> digit expression
    Expr in_bounds = intImm(1, DataType::boolean());
    arith::Analyzer analyzer;
    for (size_t a = 0; a < applicable.size(); ++a) {
        int g = applicable[a];
        Var lv = var("u" + std::to_string(a));
        Var bv = var("vu" + std::to_string(a));
        copy_loop_vars.push_back(lv);
        copy_iters.emplace_back(
            bv, Range::fromExtent(padded_extents[g]), IterType::kSpatial);
        copy_bindings.push_back(lv);
        fused_indices.push_back(bv);
        analyzer.bind(bv, Range::fromExtent(padded_extents[g]));
        // Digits, last iterator fastest.
        int64_t original = 1;
        const std::vector<int>& group = groups[g];
        std::vector<int64_t> extents;
        for (int iter_index : group) {
            int64_t e = constIntOr(
                b->iter_vars[iter_index].dom.extent, -1);
            TIR_CHECK(e > 0) << "reindexFused: symbolic iterator extent";
            extents.push_back(e);
            original *= e;
        }
        int64_t stride = 1;
        for (size_t j = group.size(); j > 0; --j) {
            Expr digit = stride == 1 ? Expr(bv)
                                     : floordiv(Expr(bv), stride);
            if (j != 1) digit = floormod(digit, extents[j - 1]);
            digit_map[b->iter_vars[group[j - 1]].var.get()] =
                analyzer.simplify(digit);
            stride *= extents[j - 1];
        }
        if (original < padded_extents[g]) {
            in_bounds = land(in_bounds,
                             lt(bv, intImm(original, bv->dtype)));
        }
    }
    in_bounds = analyzer.simplify(in_bounds);

    std::vector<Expr> gather_indices;
    for (const Expr& idx : access) {
        gather_indices.push_back(
            analyzer.simplify(substitute(idx, digit_map)));
    }

    std::string copy_name;
    Stmt copy_body;
    if (is_output) {
        // Write-back: iterate the ORIGINAL space; no padding involved.
        copy_name = uniqueName(src->name + "_t_writeback");
        std::vector<Var> wb_loop_vars;
        std::vector<IterVar> wb_iters;
        std::vector<Expr> wb_bindings;
        VarMap wb_map; // original block iter -> writeback iter
        for (size_t i = 0; i < b->iter_vars.size(); ++i) {
            const IterVar& iv = b->iter_vars[i];
            if (!access_vars.count(iv.var.get())) continue;
            Var lv = var("w" + std::to_string(i));
            Var bv = var("vw" + std::to_string(i));
            wb_loop_vars.push_back(lv);
            wb_iters.emplace_back(bv, iv.dom, IterType::kSpatial);
            wb_bindings.push_back(lv);
            wb_map[iv.var.get()] = bv;
        }
        // Destination indices: original access; source: fused indices.
        std::vector<Expr> dst_indices;
        for (const Expr& idx : access) {
            dst_indices.push_back(substitute(idx, wb_map));
        }
        std::vector<Expr> src_indices;
        for (int g : applicable) {
            std::vector<Var> group_iters;
            std::vector<int64_t> extents;
            for (int iter_index : groups[g]) {
                const IterVar& iv = b->iter_vars[iter_index];
                group_iters.push_back(std::static_pointer_cast<
                                      const VarNode>(
                    substitute(Expr(iv.var), wb_map)));
                extents.push_back(constIntOr(iv.dom.extent, -1));
            }
            src_indices.push_back(fuseExpr(group_iters, extents));
        }
        Stmt store = bufferStore(src, bufferLoad(fused, src_indices),
                                 dst_indices);
        arith::AccessRegions regions = arith::detectRegions(store, {});
        BlockPtr wb_block = makeBlock(copy_name, wb_iters, regions.reads,
                                      regions.writes, store);
        copy_body = blockRealize(wb_bindings,
                                 intImm(1, DataType::boolean()), wb_block);
        for (size_t i = wb_loop_vars.size(); i > 0; --i) {
            copy_body = makeFor(wb_loop_vars[i - 1], intImm(0),
                                wb_iters[i - 1].dom.extent, copy_body);
        }
    } else {
        copy_name = uniqueName(src->name + "_t");
        Stmt gather = bufferStore(fused, bufferLoad(src, gather_indices),
                                  fused_indices);
        Stmt zero = bufferStore(
            fused,
            src->dtype.isFloat() ? floatImm(0.0, src->dtype)
                                 : intImm(0, src->dtype),
            fused_indices);
        int64_t truth = constIntOr(in_bounds, 0);
        Stmt body = truth == 1 ? gather
                               : ifThenElse(in_bounds, gather, zero);
        arith::AccessRegions regions = arith::detectRegions(body, {});
        BlockPtr copy_block = makeBlock(copy_name, copy_iters,
                                        regions.reads, regions.writes,
                                        body);
        copy_body = blockRealize(copy_bindings,
                                 intImm(1, DataType::boolean()),
                                 copy_block);
        for (size_t i = copy_loop_vars.size(); i > 0; --i) {
            copy_body = makeFor(copy_loop_vars[i - 1], intImm(0),
                                copy_iters[i - 1].dom.extent, copy_body);
        }
    }

    // Rewrite the einsum block to address the fused buffer.
    std::vector<Expr> block_fused_indices;
    for (int g : applicable) {
        std::vector<Var> group_iters;
        std::vector<int64_t> extents;
        for (int iter_index : groups[g]) {
            group_iters.push_back(b->iter_vars[iter_index].var);
            extents.push_back(
                constIntOr(b->iter_vars[iter_index].dom.extent, -1));
        }
        block_fused_indices.push_back(fuseExpr(group_iters, extents));
    }
    Stmt new_body = b->body;
    Stmt new_init = b->init;
    if (is_output) {
        const auto& store = static_cast<const BufferStoreNode&>(*b->body);
        Expr new_value =
            LoadSwapper(src, fused, block_fused_indices)
                .mutateExpr(store.value);
        new_body = bufferStore(fused, new_value, block_fused_indices);
        if (new_init) {
            const auto& istore =
                static_cast<const BufferStoreNode&>(*b->init);
            new_init = bufferStore(fused, istore.value,
                                   block_fused_indices);
        }
    } else {
        LoadSwapper swapper(src, fused, block_fused_indices);
        new_body = swapper.mutateStmt(b->body);
    }
    BlockPtr updated = refreshRegions(
        *makeBlock(b->name, b->iter_vars, {}, {}, new_body, new_init,
                   b->alloc_buffers, b->annotations));
    const auto& realize =
        static_cast<const BlockRealizeNode&>(*site.realize);
    replaceNode(site.realize.get(),
                blockRealize(realize.iter_values, realize.predicate,
                             updated));

    // Insert the copy nest before (input) or after (output) the block.
    BlockSite new_site = findSite(block);
    Stmt nest = privateNest(new_site);
    if (is_output) {
        replaceNode(nest.get(), seq({nest, copy_body}));
    } else {
        replaceNode(nest.get(), seq({copy_body, nest}));
    }
    addRootAlloc(fused);
    return copy_name;
}

void
Schedule::transformBlockLayout(const std::string& block,
                               const std::vector<std::vector<int>>& groups,
                               const std::vector<int64_t>& padded_extents)
{
    BlockSite site = findSite(block);
    const BlockNode* b = asBlockRealize(site.realize);
    const auto& realize =
        static_cast<const BlockRealizeNode&>(*site.realize);

    // Old loops must bind iterators one-to-one.
    TIR_CHECK(site.loops.size() >= b->iter_vars.size())
        << "transformBlockLayout: loops were already restructured";
    size_t loop_base = site.loops.size() - b->iter_vars.size();
    for (size_t i = 0; i < b->iter_vars.size(); ++i) {
        const auto& loop = static_cast<const ForNode&>(
            *site.loops[loop_base + i]);
        TIR_CHECK(realize.iter_values[i]->kind == ExprKind::kVar &&
                  realize.iter_values[i].get() == loop.loop_var.get())
            << "transformBlockLayout expects trivial loop bindings";
    }

    // Build fused iterators, replacement expressions, and new loops.
    std::vector<IterVar> new_iters;
    std::vector<Var> new_loop_vars;
    std::vector<Expr> new_bindings;
    std::vector<std::pair<Expr, Var>> replacements;
    for (size_t g = 0; g < groups.size(); ++g) {
        IterType type = b->iter_vars[groups[g][0]].type;
        std::vector<Var> group_iters;
        std::vector<int64_t> extents;
        for (int iter_index : groups[g]) {
            TIR_CHECK(b->iter_vars[iter_index].type == type)
                << "transformBlockLayout: mixed iterator types in group";
            group_iters.push_back(b->iter_vars[iter_index].var);
            extents.push_back(
                constIntOr(b->iter_vars[iter_index].dom.extent, -1));
        }
        Var fused_iter = var("vg" + std::to_string(g));
        Var fused_loop = var("g" + std::to_string(g));
        new_iters.emplace_back(fused_iter,
                               Range::fromExtent(padded_extents[g]), type);
        new_loop_vars.push_back(fused_loop);
        new_bindings.push_back(fused_loop);
        replacements.emplace_back(fuseExpr(group_iters, extents),
                                  fused_iter);
    }

    // Replace fuse expressions (and lone iterator vars) in the body.
    struct FuseReplacer : public StmtExprMutator
    {
        const std::vector<std::pair<Expr, Var>>* replacements;
        Expr
        mutateExpr(const Expr& e) override
        {
            for (const auto& [pattern, fused] : *replacements) {
                if (exprDeepEqual(e, pattern)) return fused;
            }
            return StmtExprMutator::mutateExpr(e);
        }
    } replacer;
    replacer.replacements = &replacements;
    Stmt new_body = replacer.mutateStmt(b->body);
    Stmt new_init = b->init ? replacer.mutateStmt(b->init) : nullptr;

    // Validation: no original iterator may survive the rewrite.
    std::set<const VarNode*> old_iters;
    for (const IterVar& iv : b->iter_vars) old_iters.insert(iv.var.get());
    Stmt probe = new_init ? seq({new_init, new_body}) : new_body;
    arith::AccessRegions probe_regions = arith::detectRegions(probe, {});
    auto contains_old = [&](const Expr& e) {
        for (const VarNode* v : collectVars(e)) {
            if (old_iters.count(v)) return true;
        }
        return false;
    };
    for (const auto& regions :
         {probe_regions.reads, probe_regions.writes}) {
        for (const BufferRegion& br : regions) {
            for (const Range& r : br.region) {
                TIR_CHECK(!contains_old(r.min) && !contains_old(r.extent))
                    << "transformBlockLayout: body is not expressible in "
                       "the fused iterators";
            }
        }
    }

    BlockPtr updated = refreshRegions(
        *makeBlock(b->name, new_iters, {}, {}, new_body, new_init,
                   b->alloc_buffers, b->annotations));
    Stmt new_realize = blockRealize(new_bindings,
                                    intImm(1, DataType::boolean()),
                                    updated);
    Stmt nest = new_realize;
    for (size_t g = groups.size(); g > 0; --g) {
        nest = makeFor(new_loop_vars[g - 1], intImm(0),
                       intImm(padded_extents[g - 1]), nest);
    }
    // Replace the original loop nest (outermost iterator loop).
    replaceNode(site.loops[loop_base].get(), nest);
}

} // namespace tir
