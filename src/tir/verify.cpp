#include "tir/verify.h"

#include <map>
#include <set>

#include "arith/region.h"
#include "intrin/tensor_intrin.h"
#include "ir/functor.h"
#include "ir/printer.h"
#include "tir/analysis/analysis.h"

namespace tir {

namespace {

/** Walks launches and checks thread-binding structure. */
class ThreadChecker : public StmtExprVisitor
{
  public:
    explicit ThreadChecker(int64_t max_threads)
        : max_threads_(max_threads)
    {}

    VerifyResult result = VerifyResult::pass();

  protected:
    void
    visitFor(const ForNode& node) override
    {
        if (!result.ok) return;
        if (node.for_kind != ForKind::kThreadBinding) {
            StmtExprVisitor::visitFor(node);
            return;
        }
        bool launch_root = active_tags_.empty();
        if (launch_root) thread_product_ = 1;
        bool is_block_axis = node.thread_tag.rfind("blockIdx", 0) == 0;
        if (active_tags_.count(node.thread_tag)) {
            result = VerifyResult::fail(
                analysis::DiagKind::kThreadBinding,
                "thread tag " + node.thread_tag +
                " bound twice in one launch");
            return;
        }
        if (is_block_axis && saw_thread_axis_) {
            result = VerifyResult::fail(
                analysis::DiagKind::kThreadBinding,
                "blockIdx binding nested inside threadIdx scope");
            return;
        }
        bool saved_thread_axis = saw_thread_axis_;
        if (!is_block_axis) {
            saw_thread_axis_ = true;
            thread_product_ *= constIntOr(node.extent, 1);
            if (thread_product_ > max_threads_) {
                result = VerifyResult::fail(
                analysis::DiagKind::kThreadBinding,
                    "thread block exceeds " +
                    std::to_string(max_threads_) + " threads");
                return;
            }
        }
        active_tags_.insert(node.thread_tag);
        StmtExprVisitor::visitFor(node);
        active_tags_.erase(node.thread_tag);
        saw_thread_axis_ = saved_thread_axis;
        if (!is_block_axis && !result.ok) return;
        if (launch_root) thread_product_ = 1;
    }

    void
    visitBlock(const BlockNode& node) override
    {
        if (!result.ok) return;
        // Cooperative fetches must not claim more threads than the
        // enclosing launch provides (32 lanes per warp are implicit).
        auto coop = node.annotations.find("cooperative_fetch");
        if (coop != node.annotations.end()) {
            int64_t claimed = constIntOr(coop->second, 1);
            int64_t available = thread_product_ * 32;
            if (active_tags_.empty()) {
                result = VerifyResult::fail(
                analysis::DiagKind::kThreadBinding,
                    "cooperative fetch outside any thread launch");
                return;
            }
            if (claimed > available) {
                result = VerifyResult::fail(
                analysis::DiagKind::kThreadBinding,
                    "cooperative fetch claims " +
                    std::to_string(claimed) + " threads but only " +
                    std::to_string(available) + " are launched");
                return;
            }
        }
        auto it = node.annotations.find("tensor_intrin");
        if (it != node.annotations.end() &&
            it->second->kind == ExprKind::kStringImm) {
            const std::string& name =
                static_cast<const StringImmNode&>(*it->second).value;
            if (TensorIntrin::exists(name)) {
                const TensorIntrin& ti = TensorIntrin::get(name);
                if (ti.exec_scope == "warp" && active_tags_.empty()) {
                    result = VerifyResult::fail(
                analysis::DiagKind::kThreadBinding,
                        "warp-scope intrinsic " + name +
                        " outside any GPU thread launch");
                    return;
                }
            }
        }
        StmtExprVisitor::visitBlock(node);
    }

  private:
    int64_t max_threads_;
    std::set<std::string> active_tags_;
    bool saw_thread_axis_ = false;
    int64_t thread_product_ = 1;
};

} // namespace

VerifyResult
verifyThreadBindings(const PrimFunc& func, int64_t max_threads_per_block)
{
    ThreadChecker checker(max_threads_per_block);
    checker.visitStmt(func->body);
    return checker.result;
}

namespace {

std::string
renderRegion(const BufferRegion& region, const arith::Analyzer& analyzer)
{
    std::string text = region.buffer->name + "[";
    for (size_t d = 0; d < region.region.size(); ++d) {
        if (d) text += ", ";
        text += exprToString(analyzer.simplify(region.region[d].min));
        text += "..";
        text += exprToString(analyzer.simplify(
            region.region[d].min + region.region[d].extent - 1));
    }
    return text + "]";
}

/**
 * Stage-ordered cover check over root-level statements. Producer
 * coverage is tracked at two granularities: the exact per-access pieces
 * of the new region extractor (tir/analysis), and the conservative
 * per-buffer union hull the old check used. The precise pieces are
 * authoritative whenever both the read and every write of the buffer
 * are exact — catching gap reads the hull hides (writes [0..3] and
 * [8..11] never cover a read at [5]); anything inexact (guards, opaque
 * intrinsics, non-affine bounds) falls back to the hull check, so this
 * is never accidentally stricter on programs we cannot reason about.
 */
class CoverChecker
{
  public:
    VerifyResult
    check(const PrimFunc& func)
    {
        const auto& realize =
            static_cast<const BlockRealizeNode&>(*func->body);
        const BlockNode& root = *realize.block;
        std::set<const BufferNode*> params;
        for (const Buffer& p : func->params) params.insert(p.get());

        // Walk top-level stages in order; track per-buffer coverage.
        std::vector<Stmt> stages;
        if (root.body->kind == StmtKind::kSeq) {
            stages = static_cast<const SeqStmtNode&>(*root.body).seq;
        } else {
            stages = {root.body};
        }
        for (const Stmt& stage : stages) {
            std::vector<analysis::RegionPiece> pieces =
                analysis::stageRegionPieces(stage);
            // Register this stage's writes first: staging copies moved
            // inside a consumer's loop nest (compute_at) produce within
            // the same stage, before their consumers.
            for (const analysis::RegionPiece& piece : pieces) {
                if (piece.is_write) registerWrite(piece);
            }
            for (const analysis::RegionPiece& piece : pieces) {
                if (piece.is_write) continue;
                if (params.count(piece.region.buffer.get())) continue;
                VerifyResult result = checkRead(piece);
                if (!result.ok) return result;
            }
        }
        return VerifyResult::pass();
    }

  private:
    struct BufferCover
    {
        BufferRegion hull;
        std::vector<BufferRegion> exact_pieces;
        bool all_exact = true;
    };

    void
    registerWrite(const analysis::RegionPiece& piece)
    {
        auto it = written_.find(piece.region.buffer.get());
        if (it == written_.end()) {
            BufferCover cover;
            cover.hull = piece.region;
            it = written_.emplace(piece.region.buffer.get(),
                                  std::move(cover))
                     .first;
        } else {
            it->second.hull = arith::regionUnion(it->second.hull,
                                                 piece.region,
                                                 analyzer_);
        }
        if (piece.exact) {
            it->second.exact_pieces.push_back(piece.region);
        } else {
            it->second.all_exact = false;
        }
    }

    VerifyResult
    checkRead(const analysis::RegionPiece& piece)
    {
        const Buffer& buffer = piece.region.buffer;
        auto it = written_.find(buffer.get());
        if (it == written_.end()) {
            return VerifyResult::fail(
                analysis::DiagKind::kRegionCover,
                "buffer " + buffer->name +
                " is read before any producer wrote it",
                buffer->name);
        }
        const BufferCover& cover = it->second;
        // Conservative index analysis may widen gather regions past
        // the buffer: actual accesses are in bounds, so clamp before
        // comparing.
        BufferRegion clamped = clampToShape(piece.region);
        for (const BufferRegion& write : cover.exact_pieces) {
            if (arith::regionCovers(write, clamped, analyzer_)) {
                return VerifyResult::pass();
            }
        }
        std::vector<BufferRegion> stitched =
            stitchPieces(cover.exact_pieces);
        for (const BufferRegion& write : stitched) {
            if (arith::regionCovers(write, clamped, analyzer_)) {
                return VerifyResult::pass();
            }
        }
        if (piece.exact && cover.all_exact) {
            // Every producer footprint is exactly known and none of
            // them (nor their rectangular unions) contains the read:
            // a real coverage gap, even when the hull hides it.
            std::string writes;
            for (const BufferRegion& write : cover.exact_pieces) {
                if (!writes.empty()) writes += ", ";
                writes += renderRegion(write, analyzer_);
            }
            return VerifyResult::fail(
                analysis::DiagKind::kRegionCover,
                "producers of " + buffer->name +
                " do not cover a consumer's read region: read " +
                renderRegion(clamped, analyzer_) + " vs written " +
                    writes,
                buffer->name);
        }
        if (!arith::regionCovers(cover.hull, clamped, analyzer_)) {
            return VerifyResult::fail(
                analysis::DiagKind::kRegionCover,
                "producers of " + buffer->name +
                " do not cover a consumer's read region",
                buffer->name);
        }
        return VerifyResult::pass();
    }

    BufferRegion
    clampToShape(const BufferRegion& read) const
    {
        std::vector<Range> ranges;
        ranges.reserve(read.region.size());
        for (size_t d = 0; d < read.region.size(); ++d) {
            Expr lo = analyzer_.simplify(
                maxExpr(read.region[d].min, intImm(0)));
            Expr hi = analyzer_.simplify(
                minExpr(read.region[d].min + read.region[d].extent,
                        read.buffer->shape[d]));
            ranges.emplace_back(lo, analyzer_.simplify(hi - lo));
        }
        return BufferRegion(read.buffer, std::move(ranges));
    }

    /** Whether `a` and `b` agree on every dimension except at most one,
     *  and along that one are adjacent or overlapping; merge then. */
    bool
    tryMerge(const BufferRegion& a, const BufferRegion& b,
             BufferRegion* merged) const
    {
        int differing = -1;
        for (size_t d = 0; d < a.region.size(); ++d) {
            bool same =
                analyzer_.provablyEqual(a.region[d].min,
                                        b.region[d].min) &&
                analyzer_.provablyEqual(a.region[d].extent,
                                        b.region[d].extent);
            if (same) continue;
            if (differing >= 0) return false;
            differing = static_cast<int>(d);
        }
        if (differing < 0) {
            *merged = a;
            return true;
        }
        const Range& ra = a.region[differing];
        const Range& rb = b.region[differing];
        // Touching or overlapping intervals: b starts no later than a
        // ends and vice versa.
        Expr a_end = ra.min + ra.extent;
        Expr b_end = rb.min + rb.extent;
        if (!analyzer_.provablyLE(
                analyzer_.simplify(rb.min - a_end), 0) ||
            !analyzer_.provablyLE(
                analyzer_.simplify(ra.min - b_end), 0)) {
            return false;
        }
        std::vector<Range> ranges = a.region;
        Expr lo = analyzer_.simplify(minExpr(ra.min, rb.min));
        Expr hi = analyzer_.simplify(maxExpr(a_end, b_end));
        ranges[differing] = Range(lo, analyzer_.simplify(hi - lo));
        *merged = BufferRegion(a.buffer, std::move(ranges));
        return true;
    }

    /** Greedily merge exact pieces that line up along one dimension
     *  into larger rectangles (the 1-D stitching of split producers). */
    std::vector<BufferRegion>
    stitchPieces(const std::vector<BufferRegion>& pieces) const
    {
        std::vector<BufferRegion> merged = pieces;
        bool changed = merged.size() > 1;
        while (changed) {
            changed = false;
            for (size_t i = 0; i < merged.size() && !changed; ++i) {
                for (size_t j = i + 1; j < merged.size(); ++j) {
                    BufferRegion combined;
                    if (!tryMerge(merged[i], merged[j], &combined)) {
                        continue;
                    }
                    merged[i] = std::move(combined);
                    merged.erase(merged.begin() +
                                 static_cast<ptrdiff_t>(j));
                    changed = true;
                    break;
                }
            }
        }
        return merged;
    }

    arith::Analyzer analyzer_;
    std::map<const BufferNode*, BufferCover> written_;
};

} // namespace

VerifyResult
verifyRegionCover(const PrimFunc& func)
{
    TIR_CHECK(func->body->kind == StmtKind::kBlockRealize)
        << "verifyRegionCover expects a root-block function";
    CoverChecker checker;
    return checker.check(func);
}

} // namespace tir
