#include "tir/verify.h"

#include <map>
#include <set>

#include "arith/region.h"
#include "intrin/tensor_intrin.h"
#include "ir/functor.h"

namespace tir {

namespace {

/** Walks launches and checks thread-binding structure. */
class ThreadChecker : public StmtExprVisitor
{
  public:
    explicit ThreadChecker(int64_t max_threads)
        : max_threads_(max_threads)
    {}

    VerifyResult result = VerifyResult::pass();

  protected:
    void
    visitFor(const ForNode& node) override
    {
        if (!result.ok) return;
        if (node.for_kind != ForKind::kThreadBinding) {
            StmtExprVisitor::visitFor(node);
            return;
        }
        bool launch_root = active_tags_.empty();
        if (launch_root) thread_product_ = 1;
        bool is_block_axis = node.thread_tag.rfind("blockIdx", 0) == 0;
        if (active_tags_.count(node.thread_tag)) {
            result = VerifyResult::fail(
                "thread tag " + node.thread_tag +
                " bound twice in one launch");
            return;
        }
        if (is_block_axis && saw_thread_axis_) {
            result = VerifyResult::fail(
                "blockIdx binding nested inside threadIdx scope");
            return;
        }
        bool saved_thread_axis = saw_thread_axis_;
        if (!is_block_axis) {
            saw_thread_axis_ = true;
            thread_product_ *= constIntOr(node.extent, 1);
            if (thread_product_ > max_threads_) {
                result = VerifyResult::fail(
                    "thread block exceeds " +
                    std::to_string(max_threads_) + " threads");
                return;
            }
        }
        active_tags_.insert(node.thread_tag);
        StmtExprVisitor::visitFor(node);
        active_tags_.erase(node.thread_tag);
        saw_thread_axis_ = saved_thread_axis;
        if (!is_block_axis && !result.ok) return;
        if (launch_root) thread_product_ = 1;
    }

    void
    visitBlock(const BlockNode& node) override
    {
        if (!result.ok) return;
        // Cooperative fetches must not claim more threads than the
        // enclosing launch provides (32 lanes per warp are implicit).
        auto coop = node.annotations.find("cooperative_fetch");
        if (coop != node.annotations.end()) {
            int64_t claimed = constIntOr(coop->second, 1);
            int64_t available = thread_product_ * 32;
            if (active_tags_.empty()) {
                result = VerifyResult::fail(
                    "cooperative fetch outside any thread launch");
                return;
            }
            if (claimed > available) {
                result = VerifyResult::fail(
                    "cooperative fetch claims " +
                    std::to_string(claimed) + " threads but only " +
                    std::to_string(available) + " are launched");
                return;
            }
        }
        auto it = node.annotations.find("tensor_intrin");
        if (it != node.annotations.end() &&
            it->second->kind == ExprKind::kStringImm) {
            const std::string& name =
                static_cast<const StringImmNode&>(*it->second).value;
            if (TensorIntrin::exists(name)) {
                const TensorIntrin& ti = TensorIntrin::get(name);
                if (ti.exec_scope == "warp" && active_tags_.empty()) {
                    result = VerifyResult::fail(
                        "warp-scope intrinsic " + name +
                        " outside any GPU thread launch");
                    return;
                }
            }
        }
        StmtExprVisitor::visitBlock(node);
    }

  private:
    int64_t max_threads_;
    std::set<std::string> active_tags_;
    bool saw_thread_axis_ = false;
    int64_t thread_product_ = 1;
};

} // namespace

VerifyResult
verifyThreadBindings(const PrimFunc& func, int64_t max_threads_per_block)
{
    ThreadChecker checker(max_threads_per_block);
    checker.visitStmt(func->body);
    return checker.result;
}

namespace {

/** Stage-ordered cover check over root-level statements. */
class CoverChecker
{
  public:
    VerifyResult
    check(const PrimFunc& func)
    {
        const auto& realize =
            static_cast<const BlockRealizeNode&>(*func->body);
        const BlockNode& root = *realize.block;
        std::set<const BufferNode*> params;
        for (const Buffer& p : func->params) params.insert(p.get());

        // Walk top-level stages in order; track per-buffer coverage.
        std::vector<Stmt> stages;
        if (root.body->kind == StmtKind::kSeq) {
            stages = static_cast<const SeqStmtNode&>(*root.body).seq;
        } else {
            stages = {root.body};
        }
        arith::Analyzer analyzer;
        std::map<const BufferNode*, BufferRegion> written;
        for (const Stmt& stage : stages) {
            arith::AccessRegions regions =
                arith::detectRegions(stage, {});
            // Register this stage's writes first: staging copies moved
            // inside a consumer's loop nest (compute_at) produce within
            // the same stage, before their consumers.
            for (const BufferRegion& write : regions.writes) {
                auto it = written.find(write.buffer.get());
                if (it == written.end()) {
                    written.emplace(write.buffer.get(), write);
                } else {
                    it->second = arith::regionUnion(it->second, write,
                                                    analyzer);
                }
            }
            for (const BufferRegion& read : regions.reads) {
                if (params.count(read.buffer.get())) continue;
                auto it = written.find(read.buffer.get());
                if (it == written.end()) {
                    return VerifyResult::fail(
                        "buffer " + read.buffer->name +
                        " is read before any producer wrote it");
                }
                // Conservative index analysis may widen gather regions
                // past the buffer: actual accesses are in bounds, so
                // clamp before comparing.
                BufferRegion clamped = read;
                std::vector<Range> ranges;
                for (size_t d = 0; d < read.region.size(); ++d) {
                    Expr lo = analyzer.simplify(
                        maxExpr(read.region[d].min, intImm(0)));
                    Expr hi = analyzer.simplify(minExpr(
                        read.region[d].min + read.region[d].extent,
                        read.buffer->shape[d]));
                    ranges.emplace_back(lo,
                                        analyzer.simplify(hi - lo));
                }
                clamped = BufferRegion(read.buffer, std::move(ranges));
                if (!arith::regionCovers(it->second, clamped,
                                         analyzer)) {
                    return VerifyResult::fail(
                        "producers of " + read.buffer->name +
                        " do not cover a consumer's read region");
                }
            }
        }
        return VerifyResult::pass();
    }
};

} // namespace

VerifyResult
verifyRegionCover(const PrimFunc& func)
{
    TIR_CHECK(func->body->kind == StmtKind::kBlockRealize)
        << "verifyRegionCover expects a root-block function";
    CoverChecker checker;
    return checker.check(func);
}

} // namespace tir
