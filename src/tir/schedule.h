/**
 * @file
 * Schedule: the paper's §3.2 transformation primitives. Each primitive is
 * a standalone PrimFunc -> PrimFunc rewrite; the schedule also records the
 * random decisions taken by sampling primitives so the evolutionary search
 * (§4.4) can mutate and replay them.
 */
#ifndef TENSORIR_TIR_SCHEDULE_H
#define TENSORIR_TIR_SCHEDULE_H

#include <optional>

#include "arith/analyzer.h"
#include "ir/stmt.h"
#include "support/rng.h"

namespace tir {

class TensorIntrin;

/** A recorded random decision made by a sampling primitive. */
struct Decision
{
    enum class Kind { kPerfectTile, kCategorical };
    Kind kind;
    /** kPerfectTile: loop extent factored. */
    int64_t extent = 0;
    /** kPerfectTile: number of factors; also max innermost factor. */
    int number = 0;
    int max_innermost = 0;
    /** Chosen factorization (kPerfectTile) or {index} (kCategorical). */
    std::vector<int64_t> values;
    /** kCategorical: number of candidates. */
    int num_candidates = 0;
};

/**
 * A scheduling handle over one PrimFunc.
 *
 * Blocks are addressed by name (kept unique), loops by their loop
 * variable, whose identity is stable across rewrites.
 */
class Schedule
{
  public:
    explicit Schedule(PrimFunc func, uint64_t seed = 42);

    /** The current state of the scheduled function. */
    const PrimFunc& func() const { return func_; }

    // --- Queries -------------------------------------------------------

    /** Does a block with this name exist? */
    bool hasBlock(const std::string& block) const;
    /** The block node (fatal if absent). */
    BlockPtr getBlock(const std::string& block) const;
    /** Loops above the block, outermost first, within its parent block. */
    std::vector<Var> getLoops(const std::string& block) const;
    /** Constant extent of a loop. */
    int64_t loopExtent(const Var& loop) const;
    /** Names of all blocks except the root, in pre-order. */
    std::vector<std::string> blockNames() const;

    // --- Loop transformations (Figure 6) --------------------------------

    /**
     * Split a loop into nested loops with the given factors (product must
     * be >= extent; over-approximation guarded by block predicates).
     * A single -1 entry is inferred. Returns the new loop vars.
     */
    std::vector<Var> split(const Var& loop,
                           const std::vector<int64_t>& factors);
    /** Fuse perfectly nested adjacent loops into one. */
    Var fuse(const std::vector<Var>& loops);
    /** Reorder loops within a perfect single-chain nest. */
    void reorder(const std::vector<Var>& loops);

    /** Move producer block under `loop`, shrinking to the needed region. */
    void computeAt(const std::string& block, const Var& loop);
    /** Move consumer block under `loop` (e.g. fuse an epilogue). */
    void reverseComputeAt(const std::string& block, const Var& loop);
    /** Inline a spatial producer block into its consumers. */
    void computeInline(const std::string& block);
    /** Inline a spatial consumer block into its producer. */
    void reverseComputeInline(const std::string& block);

    // --- Block transformations (Figure 7, §3.2) --------------------------

    /**
     * Isolate the subtree under `loop` into a new sub-block (Figure 7).
     * Returns the new outer block's name.
     */
    std::string blockize(const Var& loop);
    /** Replace a blockized computation with a tensor intrinsic (§4.1). */
    void tensorize(const std::string& block, const std::string& intrin);
    /** Split a reduction block into init block + update block. */
    std::string decomposeReduction(const std::string& block,
                                   const Var& loop);
    /**
     * Inverse of decomposeReduction: fold a separate init block back
     * into its update block (the paper's "back and forth
     * transformations between a single reduction block and the
     * corresponding init- and update-blocks").
     */
    void mergeReduction(const std::string& init_block,
                        const std::string& update_block);

    /** Stage reads of `block` through a new buffer in `scope`. */
    std::string cacheRead(const std::string& block, int read_index,
                          const std::string& scope);
    /** Stage the write of `block` through a new buffer in `scope`. */
    std::string cacheWrite(const std::string& block,
                           const std::string& scope);

    /**
     * The paper's ReIndex + layout-rewrite step (§4.2): materialize one
     * operand of an einsum block into a buffer laid out by fused iterator
     * groups (padding group extents up to `padded_extents`).
     * `operand` is a read index or -1 for the write operand.
     * Returns the name of the inserted copy block.
     */
    std::string reindexFused(const std::string& block, int operand,
                             const std::vector<std::vector<int>>& groups,
                             const std::vector<int64_t>& padded_extents,
                             const std::vector<int>& operand_groups = {});
    /**
     * Rewrite the block iterator space to the fused groups (each group is
     * a list of old iterator positions); loops binding the old iterators
     * are replaced by one loop per group.
     */
    void transformBlockLayout(const std::string& block,
                              const std::vector<std::vector<int>>& groups,
                              const std::vector<int64_t>& padded_extents);

    // --- Annotations & thread binding ------------------------------------

    /** Bind a loop to a GPU thread axis ("blockIdx.x", "threadIdx.x"...). */
    void bind(const Var& loop, const std::string& thread_tag);
    void parallel(const Var& loop);
    void vectorize(const Var& loop);
    void unroll(const Var& loop);
    /** Attach a key=value annotation to a block. */
    void annotateBlock(const std::string& block, const std::string& key,
                       Expr value);
    /** Attach a key=value annotation to a loop. */
    void annotateLoop(const Var& loop, const std::string& key, Expr value);

    // --- Sampling primitives (recorded into the decision trace) ----------

    /** Sample a perfect tiling of `loop` into n factors. */
    std::vector<int64_t> samplePerfectTile(const Var& loop, int n,
                                           int max_innermost = 64);
    /** Sample an index into `candidates` with the given weights. */
    int64_t sampleCategorical(const std::vector<int64_t>& candidates,
                              const std::vector<double>& probs);

    /** All decisions made so far. */
    const std::vector<Decision>& decisions() const { return decisions_; }
    /** Pre-seed decisions to replay/mutate a schedule. */
    void setDecisionOverrides(std::vector<Decision> overrides);
    /** RNG used by sampling (exposed for search). */
    Rng& rng() { return rng_; }

    // --- Validation -------------------------------------------------------

    /**
     * Run loop-nest validation (§3.3) over the whole function; fatal with
     * a diagnostic when some binding is not quasi-affine or a domain is
     * not covered.
     */
    void validateAffineBindings() const;

    /**
     * Run the static memory analysis (tir/analysis) over the lowered
     * form of the current function; fatal with the full diagnostic list
     * (offending buffer, thread axis, loop nest, regions) when it finds
     * a provable cross-thread race or out-of-bounds access. Warnings do
     * not throw.
     */
    void validateMemoryAnalysis() const;

    /** Diagnostics of the static memory analysis on the current
     *  function, rendered one per line; empty when clean. Non-fatal
     *  companion to validateMemoryAnalysis for inspection flows. */
    std::string analysisDiagnostics() const;

    /** Location of a block: its realize, enclosing loops, parent block. */
    struct BlockSite
    {
        Stmt realize;                 // the BlockRealize
        std::vector<Stmt> loops;      // enclosing Fors, outer-to-inner
        const BlockNode* parent = nullptr; // enclosing block
    };

    /** Locate a block by name (fatal if absent). */
    BlockSite findSite(const std::string& block) const;

  private:
    const ForNode* findLoop(const Var& loop) const;
    /** Replace the subtree rooted at `target` (by pointer) in func_. */
    void replaceNode(const StmtNode* target, Stmt replacement);
    /** Delete the subtree rooted at `target` (must sit inside a Seq). */
    void eraseNode(const StmtNode* target);
    /** Register a buffer in the root block's allocations. */
    void addRootAlloc(const Buffer& buffer);
    /** Remove a buffer from the root block's allocations. */
    void removeRootAlloc(const Buffer& buffer);
    /** Make a block name unique within the function. */
    std::string uniqueName(const std::string& base) const;
    /** Domains of all loops enclosing a statement. */
    arith::Analyzer analyzerAt(const BlockSite& site) const;

    PrimFunc func_;
    Rng rng_;
    std::vector<Decision> decisions_;
    std::vector<Decision> overrides_;
    size_t override_pos_ = 0;
};

} // namespace tir

#endif // TENSORIR_TIR_SCHEDULE_H
