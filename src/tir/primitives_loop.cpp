/**
 * @file
 * Loop transformation primitives: split, fuse, reorder (Figure 6). These
 * mutate loop nests outside blocks and never change block bodies; the
 * quasi-affine validator re-checks bindings after each rewrite.
 */
#include "arith/iter_map.h"
#include "ir/functor.h"
#include "ir/transform.h"
#include "tir/schedule.h"

namespace tir {

namespace {

/** AND a guard onto the predicate of every realize in a subtree. */
class GuardAdder : public StmtExprMutator
{
  public:
    explicit GuardAdder(Expr guard) : guard_(std::move(guard)) {}

  protected:
    Stmt
    mutateBlockRealize(const Stmt& s) override
    {
        const auto& n = static_cast<const BlockRealizeNode&>(*s);
        arith::Analyzer analyzer;
        Expr pred = analyzer.simplify(land(n.predicate, guard_));
        // Do not descend: nested blocks are already covered by the outer
        // block instance being skipped.
        return blockRealize(n.iter_values, pred, n.block);
    }

  private:
    Expr guard_;
};

} // namespace

std::vector<Var>
Schedule::split(const Var& loop, const std::vector<int64_t>& factors_in)
{
    const ForNode* node = findLoop(loop);
    TIR_CHECK(node->for_kind == ForKind::kSerial)
        << "can only split serial loops (" << loop->name << ")";
    int64_t extent = loopExtent(loop);

    std::vector<int64_t> factors = factors_in;
    int64_t known = 1;
    int infer_at = -1;
    for (size_t i = 0; i < factors.size(); ++i) {
        if (factors[i] == -1) {
            TIR_CHECK(infer_at < 0) << "only one factor may be -1";
            infer_at = static_cast<int>(i);
        } else {
            TIR_CHECK(factors[i] > 0) << "factors must be positive";
            known *= factors[i];
        }
    }
    if (infer_at >= 0) factors[infer_at] = (extent + known - 1) / known;
    int64_t product = 1;
    for (int64_t f : factors) product *= f;
    TIR_CHECK(product >= extent)
        << "split factors cover only " << product << " of " << extent;

    std::vector<Var> new_vars;
    for (size_t i = 0; i < factors.size(); ++i) {
        new_vars.push_back(
            var(loop->name + "_" + std::to_string(i), loop->dtype));
    }
    // old = sum_i v_i * stride_i
    Expr binding = nullptr;
    int64_t stride = 1;
    for (size_t i = factors.size(); i > 0; --i) {
        Expr piece = stride == 1
                         ? Expr(new_vars[i - 1])
                         : Expr(new_vars[i - 1]) * stride;
        binding = binding ? binding + piece : piece;
        stride *= factors[i - 1];
    }
    arith::Analyzer analyzer;
    for (size_t i = 0; i < factors.size(); ++i) {
        analyzer.bind(new_vars[i], Range::fromExtent(factors[i]));
    }
    binding = analyzer.simplify(binding);

    VarMap vmap;
    vmap[loop.get()] = binding;
    Stmt body = substitute(node->body, vmap);
    if (product > extent) {
        GuardAdder guard(
            analyzer.simplify(lt(binding, intImm(extent, loop->dtype))));
        body = guard.mutateStmt(body);
    }
    for (size_t i = factors.size(); i > 0; --i) {
        body = makeFor(new_vars[i - 1], intImm(0),
                       intImm(factors[i - 1]), body);
    }
    replaceNode(node, body);
    return new_vars;
}

Var
Schedule::fuse(const std::vector<Var>& loops)
{
    TIR_CHECK(loops.size() >= 1) << "fuse needs at least one loop";
    if (loops.size() == 1) return loops[0];
    // Verify perfect nesting outer-to-inner.
    std::vector<const ForNode*> nodes;
    nodes.push_back(findLoop(loops[0]));
    std::string fused_name = loops[0]->name;
    for (size_t i = 1; i < loops.size(); ++i) {
        const Stmt& body = nodes.back()->body;
        TIR_CHECK(body->kind == StmtKind::kFor)
            << "fuse: loops are not perfectly nested";
        const auto* inner = static_cast<const ForNode*>(body.get());
        TIR_CHECK(inner->loop_var == loops[i])
            << "fuse: loop " << loops[i]->name
            << " is not directly inside " << loops[i - 1]->name;
        nodes.push_back(inner);
        fused_name += "_" + loops[i]->name;
    }
    for (const ForNode* n : nodes) {
        TIR_CHECK(n->for_kind == ForKind::kSerial)
            << "can only fuse serial loops";
        TIR_CHECK(constIntOr(n->min, -1) == 0)
            << "fuse expects loops starting at 0";
    }

    int64_t product = 1;
    std::vector<int64_t> extents;
    for (const ForNode* n : nodes) {
        int64_t e = constIntOr(n->extent, -1);
        TIR_CHECK(e > 0) << "fuse expects constant extents";
        extents.push_back(e);
        product *= e;
    }
    Var fused = var(fused_name + "_fused", loops[0]->dtype);
    VarMap vmap;
    int64_t stride = 1;
    arith::Analyzer analyzer;
    analyzer.bind(fused, Range::fromExtent(product));
    for (size_t i = loops.size(); i > 0; --i) {
        Expr value = stride == 1 ? Expr(fused)
                                 : floordiv(Expr(fused), stride);
        if (i != 1) value = floormod(value, extents[i - 1]);
        vmap[loops[i - 1].get()] = analyzer.simplify(value);
        stride *= extents[i - 1];
    }
    Stmt body = substitute(nodes.back()->body, vmap);
    replaceNode(nodes.front(), makeFor(fused, intImm(0), intImm(product),
                                       body));
    return fused;
}

void
Schedule::reorder(const std::vector<Var>& order)
{
    TIR_CHECK(order.size() >= 2) << "reorder needs at least two loops";
    // Find the outermost of the given loops: the one whose subtree
    // contains all the others.
    const ForNode* top = nullptr;
    for (const Var& v : order) {
        const ForNode* candidate = findLoop(v);
        bool contains_all = true;
        for (const Var& other : order) {
            if (other == v) continue;
            bool found = false;
            preOrderVisit(candidate->body, [&](const StmtNode* node) {
                if (node->kind == StmtKind::kFor &&
                    static_cast<const ForNode*>(node)->loop_var == other) {
                    found = true;
                }
            });
            contains_all &= found;
        }
        if (contains_all) {
            top = candidate;
            break;
        }
    }
    TIR_CHECK(top) << "reorder: loops do not form a single nest";

    // Collect the single-child For chain from `top` down to the innermost
    // requested loop.
    std::vector<const ForNode*> chain;
    std::set<const VarNode*> wanted;
    for (const Var& v : order) wanted.insert(v.get());
    size_t seen = 0;
    const ForNode* cursor = top;
    while (true) {
        chain.push_back(cursor);
        if (wanted.count(cursor->loop_var.get())) ++seen;
        if (seen == order.size()) break;
        TIR_CHECK(cursor->body->kind == StmtKind::kFor)
            << "reorder: loops are separated by non-loop statements";
        cursor = static_cast<const ForNode*>(cursor->body.get());
    }

    // Rebuild inside-out, substituting requested loops in the new order.
    size_t next_ordered = order.size();
    Stmt body = chain.back()->body;
    for (size_t i = chain.size(); i > 0; --i) {
        const ForNode* slot = chain[i - 1];
        const ForNode* placed = slot;
        if (wanted.count(slot->loop_var.get())) {
            placed = findLoop(order[--next_ordered]);
        }
        body = makeFor(placed->loop_var, placed->min, placed->extent, body,
                       placed->for_kind, placed->thread_tag,
                       placed->annotations);
    }
    replaceNode(top, body);
}

} // namespace tir
