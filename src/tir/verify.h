/**
 * @file
 * Whole-program validators (§3.3) beyond the per-block quasi-affine
 * binding check: threading validation (binding consistency, launch
 * constraints, execution scopes) and producer-consumer region cover.
 * These are the checks that filter false positives out of the search.
 */
#ifndef TENSORIR_TIR_VERIFY_H
#define TENSORIR_TIR_VERIFY_H

#include <string>
#include <vector>

#include "ir/stmt.h"
#include "tir/analysis/analysis.h"

namespace tir {

/** Result of a verification pass: structured diagnostics sharing the
 *  stable-code scheme of the static analyses (TIR-V001 thread-binding
 *  violations, TIR-V002 region-cover violations), so tools can match
 *  on codes rather than message text. `message()` is the shim for the
 *  former single-string `error` field. */
struct VerifyResult
{
    bool ok = true;
    std::vector<analysis::Diagnostic> diagnostics;

    static VerifyResult pass() { return {true, {}}; }
    static VerifyResult
    fail(analysis::DiagKind kind, std::string detail,
         std::string buffer = "")
    {
        analysis::Diagnostic diag;
        diag.kind = kind;
        diag.severity = analysis::Severity::kError;
        diag.buffer = std::move(buffer);
        diag.detail = std::move(detail);
        return {false, {std::move(diag)}};
    }

    /** All diagnostic details joined one per line (empty when ok).
     *  Kept source-compatible with the former `error` string: the
     *  detail text, not the code-prefixed rendering, so existing
     *  substring matches keep working. */
    std::string
    message() const
    {
        std::string text;
        for (const analysis::Diagnostic& diag : diagnostics) {
            if (!text.empty()) text += "\n";
            text += diag.detail;
        }
        return text;
    }
};

/**
 * Threading validation:
 *  - within one kernel launch, every thread tag is bound at most once
 *    and blockIdx.* loops enclose threadIdx.* loops;
 *  - the threadIdx product respects `max_threads_per_block`;
 *  - warp-scope tensor intrinsics ("tensor_intrin" blocks whose
 *    intrinsic declares warp execution scope) only appear inside
 *    GPU-threaded launches.
 */
VerifyResult verifyThreadBindings(const PrimFunc& func,
                                  int64_t max_threads_per_block = 1024);

/**
 * Producer-consumer cover validation: for every intermediate buffer,
 * the regions written before a consumer must cover the region that
 * consumer reads. Coverage is checked per access piece (the symbolic
 * footprints of the tir/analysis region extractor, stitched into
 * rectangles when producers split a buffer) whenever all footprints are
 * exact; guarded, opaque, or non-affine accesses fall back to the old
 * conservative per-buffer union-hull check.
 */
VerifyResult verifyRegionCover(const PrimFunc& func);

} // namespace tir

#endif // TENSORIR_TIR_VERIFY_H
