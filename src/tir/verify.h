/**
 * @file
 * Whole-program validators (§3.3) beyond the per-block quasi-affine
 * binding check: threading validation (binding consistency, launch
 * constraints, execution scopes) and producer-consumer region cover.
 * These are the checks that filter false positives out of the search.
 */
#ifndef TENSORIR_TIR_VERIFY_H
#define TENSORIR_TIR_VERIFY_H

#include <string>

#include "ir/stmt.h"

namespace tir {

/** Result of a verification pass. */
struct VerifyResult
{
    bool ok = true;
    std::string error;

    static VerifyResult pass() { return {true, ""}; }
    static VerifyResult
    fail(std::string message)
    {
        return {false, std::move(message)};
    }
};

/**
 * Threading validation:
 *  - within one kernel launch, every thread tag is bound at most once
 *    and blockIdx.* loops enclose threadIdx.* loops;
 *  - the threadIdx product respects `max_threads_per_block`;
 *  - warp-scope tensor intrinsics ("tensor_intrin" blocks whose
 *    intrinsic declares warp execution scope) only appear inside
 *    GPU-threaded launches.
 */
VerifyResult verifyThreadBindings(const PrimFunc& func,
                                  int64_t max_threads_per_block = 1024);

/**
 * Producer-consumer cover validation: for every intermediate buffer,
 * the regions written before a consumer must cover the region that
 * consumer reads. Coverage is checked per access piece (the symbolic
 * footprints of the tir/analysis region extractor, stitched into
 * rectangles when producers split a buffer) whenever all footprints are
 * exact; guarded, opaque, or non-affine accesses fall back to the old
 * conservative per-buffer union-hull check.
 */
VerifyResult verifyRegionCover(const PrimFunc& func);

} // namespace tir

#endif // TENSORIR_TIR_VERIFY_H
