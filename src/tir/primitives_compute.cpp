/**
 * @file
 * Compute-location primitives: compute_at, reverse_compute_at,
 * compute_inline, reverse_compute_inline and decompose_reduction. All of
 * them reason purely about block signatures (iterator domains and access
 * regions) per the paper's isolation principle.
 */
#include "arith/iter_map.h"
#include "arith/region.h"
#include "ir/functor.h"
#include "ir/transform.h"
#include "tir/schedule.h"

namespace tir {

namespace {

/** Recompute a block's signature regions from its body and init. */
BlockPtr
refreshSignature(const BlockNode& block)
{
    Stmt probe = block.init ? seq({block.init, block.body}) : block.body;
    arith::AccessRegions regions = arith::detectRegions(probe, {});
    std::vector<BufferRegion> reads;
    for (const BufferRegion& br : regions.reads) {
        if (block.init) {
            bool self = false;
            for (const BufferRegion& w : regions.writes) {
                self |= (w.buffer == br.buffer);
            }
            if (self) continue;
        }
        reads.push_back(br);
    }
    return makeBlock(block.name, block.iter_vars, std::move(reads),
                     regions.writes, block.body, block.init,
                     block.alloc_buffers, block.annotations);
}

/** True when the region is the identity over the given iter vars. */
bool
isIdentityRegion(const std::vector<Range>& region,
                 const std::vector<IterVar>& iters,
                 std::vector<size_t>* iter_index_per_dim)
{
    std::vector<size_t> mapping;
    for (const Range& r : region) {
        if (constIntOr(r.extent, -1) != 1) return false;
        if (r.min->kind != ExprKind::kVar) return false;
        const auto* v = static_cast<const VarNode*>(r.min.get());
        bool found = false;
        for (size_t i = 0; i < iters.size(); ++i) {
            if (iters[i].var.get() == v) {
                mapping.push_back(i);
                found = true;
                break;
            }
        }
        if (!found) return false;
    }
    if (iter_index_per_dim) *iter_index_per_dim = mapping;
    return true;
}

/** The subtree root of a block: its own private loop chain (or realize). */
Stmt
privateSubtree(const Schedule::BlockSite& site)
{
    Stmt subtree = site.realize;
    for (size_t i = site.loops.size(); i > 0; --i) {
        const auto& loop = static_cast<const ForNode&>(*site.loops[i - 1]);
        if (loop.body == subtree) {
            subtree = site.loops[i - 1];
        } else {
            break;
        }
    }
    return subtree;
}

/** Find region of `buffer` in detected regions; null when absent. */
const BufferRegion*
findRegion(const std::vector<BufferRegion>& regions, const Buffer& buffer)
{
    for (const BufferRegion& br : regions) {
        if (br.buffer == buffer) return &br;
    }
    return nullptr;
}

} // namespace

void
Schedule::computeAt(const std::string& block, const Var& loop)
{
    BlockSite site = findSite(block);
    const BlockNode* b = asBlockRealize(site.realize);
    TIR_CHECK(b->writes.size() == 1)
        << "compute_at expects a single-output block";
    const Buffer out = b->writes[0].buffer;
    std::vector<size_t> dim_to_iter;
    TIR_CHECK(isIdentityRegion(b->writes[0].region, b->iter_vars,
                               &dim_to_iter))
        << "compute_at: block " << block
        << " does not write an identity region";

    // Remove the producer's private subtree, then locate the target loop.
    Stmt subtree = privateSubtree(site);
    eraseNode(subtree.get());
    const ForNode* target = findLoop(loop);

    // Required region of `out` per iteration of `loop`.
    arith::AccessRegions needed = arith::detectRegions(target->body, {});
    const BufferRegion* required = findRegion(needed.reads, out);
    TIR_CHECK(required) << "compute_at: no consumer of " << out->name
                        << " under loop " << loop->name;

    // Build fresh loops: spatial iters over the required region, reduce
    // iters over their full domain.
    arith::Analyzer analyzer;
    {
        // Bind domains of loops enclosing the insertion point.
        BlockSite dummy;
        preOrderVisit(func_->body, [&](const StmtNode* node) {
            if (node->kind == StmtKind::kFor) {
                const auto* f = static_cast<const ForNode*>(node);
                analyzer.bind(f->loop_var, Range(f->min, f->extent));
            }
        });
        (void)dummy;
    }

    std::vector<Expr> bindings(b->iter_vars.size());
    std::vector<std::pair<Var, Expr>> new_loops; // (var, extent)
    Expr guard = intImm(1, DataType::boolean());
    // Map: which region dim corresponds to each spatial iter.
    std::vector<int> iter_to_dim(b->iter_vars.size(), -1);
    for (size_t d = 0; d < dim_to_iter.size(); ++d) {
        iter_to_dim[dim_to_iter[d]] = static_cast<int>(d);
    }
    for (size_t i = 0; i < b->iter_vars.size(); ++i) {
        const IterVar& iv = b->iter_vars[i];
        Var nv = var(iv.var->name + "_c", iv.var->dtype);
        Expr extent;
        Expr base;
        if (iv.type == IterType::kSpatial && iter_to_dim[i] >= 0) {
            const Range& r = required->region[iter_to_dim[i]];
            extent = r.extent;
            base = r.min;
        } else {
            extent = iv.dom.extent;
            base = iv.dom.min;
        }
        analyzer.bind(nv, Range(intImm(0), extent));
        bindings[i] = analyzer.simplify(base + nv);
        new_loops.emplace_back(nv, extent);
        // Guard if the shifted instance may leave the iterator domain.
        Expr upper = analyzer.simplify(
            lt(bindings[i], iv.dom.min + iv.dom.extent));
        Expr lower = analyzer.simplify(ge(bindings[i], iv.dom.min));
        if (!constIntOr(upper, 0)) guard = land(guard, upper);
        if (!constIntOr(lower, 0)) guard = land(guard, lower);
    }
    Stmt realize = blockRealize(bindings, analyzer.simplify(guard),
                                static_cast<const BlockRealizeNode&>(
                                    *site.realize)
                                    .block);
    Stmt body = realize;
    for (size_t i = new_loops.size(); i > 0; --i) {
        body = makeFor(new_loops[i - 1].first, intImm(0),
                       new_loops[i - 1].second, body);
    }
    // Re-locate the target (tree was rebuilt by eraseNode).
    target = findLoop(loop);
    Stmt new_body = seq({body, target->body});
    replaceNode(target, makeFor(target->loop_var, target->min,
                                target->extent, new_body,
                                target->for_kind, target->thread_tag,
                                target->annotations));
}

void
Schedule::reverseComputeAt(const std::string& block, const Var& loop)
{
    BlockSite site = findSite(block);
    const BlockNode* b = asBlockRealize(site.realize);
    for (const IterVar& iv : b->iter_vars) {
        TIR_CHECK(iv.type == IterType::kSpatial)
            << "reverse_compute_at expects a spatial consumer block";
    }

    // The producer buffer: a buffer read by `block` and written under
    // `loop`.
    Stmt subtree = privateSubtree(site);
    eraseNode(subtree.get());
    const ForNode* target = findLoop(loop);
    arith::AccessRegions produced_regions =
        arith::detectRegions(target->body, {});

    const BufferRegion* provided = nullptr;
    const BufferRegion* consumer_read = nullptr;
    for (const BufferRegion& r : b->reads) {
        if (const BufferRegion* w =
                findRegion(produced_regions.writes, r.buffer)) {
            provided = w;
            consumer_read = &r;
            break;
        }
    }
    TIR_CHECK(provided)
        << "reverse_compute_at: block " << block
        << " consumes nothing produced under loop " << loop->name;
    std::vector<size_t> dim_to_iter;
    TIR_CHECK(isIdentityRegion(consumer_read->region, b->iter_vars,
                               &dim_to_iter))
        << "reverse_compute_at: consumer read is not an identity region";

    arith::Analyzer analyzer;
    preOrderVisit(func_->body, [&](const StmtNode* node) {
        if (node->kind == StmtKind::kFor) {
            const auto* f = static_cast<const ForNode*>(node);
            analyzer.bind(f->loop_var, Range(f->min, f->extent));
        }
    });

    std::vector<Expr> bindings(b->iter_vars.size());
    std::vector<std::pair<Var, Expr>> new_loops;
    Expr guard = intImm(1, DataType::boolean());
    std::vector<int> iter_to_dim(b->iter_vars.size(), -1);
    for (size_t d = 0; d < dim_to_iter.size(); ++d) {
        iter_to_dim[dim_to_iter[d]] = static_cast<int>(d);
    }
    for (size_t i = 0; i < b->iter_vars.size(); ++i) {
        const IterVar& iv = b->iter_vars[i];
        Var nv = var(iv.var->name + "_rc", iv.var->dtype);
        Expr extent = iv.dom.extent;
        Expr base = iv.dom.min;
        if (iter_to_dim[i] >= 0) {
            const Range& r = provided->region[iter_to_dim[i]];
            extent = r.extent;
            base = r.min;
        }
        analyzer.bind(nv, Range(intImm(0), extent));
        bindings[i] = analyzer.simplify(base + nv);
        new_loops.emplace_back(nv, extent);
        Expr upper = analyzer.simplify(
            lt(bindings[i], iv.dom.min + iv.dom.extent));
        Expr lower = analyzer.simplify(ge(bindings[i], iv.dom.min));
        if (!constIntOr(upper, 0)) guard = land(guard, upper);
        if (!constIntOr(lower, 0)) guard = land(guard, lower);
    }
    Stmt realize = blockRealize(bindings, analyzer.simplify(guard),
                                static_cast<const BlockRealizeNode&>(
                                    *site.realize)
                                    .block);
    Stmt body = realize;
    for (size_t i = new_loops.size(); i > 0; --i) {
        body = makeFor(new_loops[i - 1].first, intImm(0),
                       new_loops[i - 1].second, body);
    }
    target = findLoop(loop);
    Stmt new_body = seq({target->body, body});
    replaceNode(target, makeFor(target->loop_var, target->min,
                                target->extent, new_body,
                                target->for_kind, target->thread_tag,
                                target->annotations));
}

namespace {

/** Replaces loads of one buffer with an inlined expression. */
class LoadInliner : public StmtExprMutator
{
  public:
    LoadInliner(const Buffer& buffer, const std::vector<IterVar>& iters,
                Expr value)
        : buffer_(buffer), iters_(iters), value_(std::move(value))
    {}

    bool changedAnything() const { return changed_; }

  protected:
    Expr
    mutateBufferLoad(const Expr& e) override
    {
        Expr base = StmtExprMutator::mutateBufferLoad(e);
        const auto& n = static_cast<const BufferLoadNode&>(*base);
        if (n.buffer != buffer_) return base;
        VarMap vmap;
        for (size_t i = 0; i < iters_.size(); ++i) {
            vmap[iters_[i].var.get()] = n.indices[i];
        }
        changed_ = true;
        return substitute(value_, vmap);
    }

    BlockPtr
    mutateBlockNode(const BlockPtr& block) override
    {
        BlockPtr result = StmtExprMutator::mutateBlockNode(block);
        if (result != block) {
            // Body changed: recompute the signature regions.
            return refreshSignature(*result);
        }
        return result;
    }

  private:
    const Buffer& buffer_;
    const std::vector<IterVar>& iters_;
    Expr value_;
    bool changed_ = false;
};

} // namespace

void
Schedule::computeInline(const std::string& block)
{
    BlockSite site = findSite(block);
    const BlockNode* b = asBlockRealize(site.realize);
    TIR_CHECK(!b->init) << "cannot inline a reduction block";
    for (const IterVar& iv : b->iter_vars) {
        TIR_CHECK(iv.type == IterType::kSpatial)
            << "cannot inline a block with reduce iterators";
    }
    TIR_CHECK(b->body->kind == StmtKind::kBufferStore)
        << "compute_inline expects a single-store block body";
    const auto& store = static_cast<const BufferStoreNode&>(*b->body);
    std::vector<size_t> mapping;
    std::vector<Range> store_region;
    for (const Expr& idx : store.indices) {
        store_region.emplace_back(idx, intImm(1));
    }
    TIR_CHECK(isIdentityRegion(store_region, b->iter_vars, &mapping))
        << "compute_inline: store indices must be the block iterators";
    const Buffer out = store.buffer;
    const BlockNode* root = asBlockRealize(func_->body);
    bool is_intermediate = false;
    for (const Buffer& alloc : root->alloc_buffers) {
        is_intermediate |= (alloc == out);
    }
    TIR_CHECK(is_intermediate)
        << "cannot inline block writing output parameter " << out->name;

    // Reorder value iterators to store order.
    std::vector<IterVar> iters_in_store_order;
    for (size_t m : mapping) iters_in_store_order.push_back(b->iter_vars[m]);

    Stmt subtree = privateSubtree(site);
    eraseNode(subtree.get());

    LoadInliner inliner(out, iters_in_store_order, store.value);
    Stmt new_body = inliner.mutateStmt(func_->body);
    TIR_CHECK(inliner.changedAnything())
        << "compute_inline: no consumer reads " << out->name;
    func_ = makeFunc(func_->name, func_->params, new_body, func_->attrs);
    removeRootAlloc(out);
}

void
Schedule::reverseComputeInline(const std::string& block)
{
    BlockSite site = findSite(block);
    const BlockNode* b = asBlockRealize(site.realize);
    TIR_CHECK(!b->init && b->body->kind == StmtKind::kBufferStore)
        << "reverse_compute_inline expects a simple spatial block";
    const auto& store = static_cast<const BufferStoreNode&>(*b->body);
    const Buffer out = store.buffer;
    TIR_CHECK(b->reads.size() == 1)
        << "reverse_compute_inline expects exactly one input";
    const Buffer in = b->reads[0].buffer;
    std::vector<size_t> mapping;
    TIR_CHECK(isIdentityRegion(b->reads[0].region, b->iter_vars, &mapping))
        << "reverse_compute_inline: consumer read must be identity";

    // Find the unique producer block of `in`.
    std::string producer_name;
    for (const BlockPtr& candidate : collectBlocks(func_->body)) {
        if (candidate->name == b->name) continue;
        for (const BufferRegion& w : candidate->writes) {
            if (w.buffer == in) {
                TIR_CHECK(producer_name.empty())
                    << "multiple producers write " << in->name;
                producer_name = candidate->name;
            }
        }
    }
    TIR_CHECK(!producer_name.empty()) << "no producer for " << in->name;
    BlockSite producer_site = findSite(producer_name);
    const BlockNode* p = asBlockRealize(producer_site.realize);
    TIR_CHECK(!p->init) << "cannot reverse-inline into a reduction block";

    // Rewrite the producer body: every store in[idx] = g becomes
    // out[idx] = f(g) where f is the consumer computation.
    struct StoreRewriter : public StmtExprMutator
    {
        const Buffer* in;
        const Buffer* out;
        const BlockNode* consumer;
        const std::vector<size_t>* mapping;

        Stmt
        mutateBufferStore(const Stmt& s) override
        {
            Stmt base = StmtExprMutator::mutateBufferStore(s);
            const auto& n = static_cast<const BufferStoreNode&>(*base);
            if (n.buffer != *in) return base;
            const auto& cstore =
                static_cast<const BufferStoreNode&>(*consumer->body);
            // Map consumer iterators to the producer's store indices.
            VarMap vmap;
            for (size_t d = 0; d < n.indices.size(); ++d) {
                vmap[consumer->iter_vars[(*mapping)[d]].var.get()] =
                    n.indices[d];
            }
            Expr f = substitute(cstore.value, vmap);
            // Replace the load of `in` inside f with the produced value.
            struct Replace : public ExprMutator
            {
                const Buffer* in;
                Expr g;
                Expr
                mutateBufferLoad(const Expr& e) override
                {
                    const auto& ln =
                        static_cast<const BufferLoadNode&>(*e);
                    if (ln.buffer == *in) return g;
                    return ExprMutator::mutateBufferLoad(e);
                }
            } replace;
            replace.in = in;
            replace.g = n.value;
            f = replace.mutateExpr(f);
            std::vector<Expr> out_indices;
            const auto& cidx =
                static_cast<const BufferStoreNode&>(*consumer->body)
                    .indices;
            VarMap vmap2 = vmap;
            for (const Expr& idx : cidx) {
                out_indices.push_back(substitute(idx, vmap2));
            }
            return bufferStore(*out, f, out_indices);
        }
    } rewriter;
    rewriter.in = &in;
    rewriter.out = &out;
    rewriter.consumer = b;
    rewriter.mapping = &mapping;

    Stmt new_producer_body = rewriter.mutateStmt(p->body);
    BlockPtr new_producer = refreshSignature(
        *makeBlock(p->name, p->iter_vars, {}, {}, new_producer_body,
                   p->init, p->alloc_buffers, p->annotations));
    const auto& prealize =
        static_cast<const BlockRealizeNode&>(*producer_site.realize);
    replaceNode(producer_site.realize.get(),
                blockRealize(prealize.iter_values, prealize.predicate,
                             new_producer));

    // Remove the consumer and the intermediate buffer.
    BlockSite consumer_site = findSite(block);
    eraseNode(privateSubtree(consumer_site).get());
    removeRootAlloc(in);
}

std::string
Schedule::decomposeReduction(const std::string& block, const Var& loop)
{
    BlockSite site = findSite(block);
    const BlockNode* b = asBlockRealize(site.realize);
    TIR_CHECK(b->init) << "block " << block << " has no init statement";
    const auto& realize =
        static_cast<const BlockRealizeNode&>(*site.realize);

    // Locate `loop` among the enclosing loops.
    int loop_pos = -1;
    for (size_t i = 0; i < site.loops.size(); ++i) {
        if (static_cast<const ForNode&>(*site.loops[i]).loop_var == loop) {
            loop_pos = static_cast<int>(i);
        }
    }
    TIR_CHECK(loop_pos >= 0)
        << "loop " << loop->name << " does not enclose block " << block;

    // Reduce bindings must not reference loops above the split point.
    std::set<const VarNode*> outer_vars;
    for (int i = 0; i < loop_pos; ++i) {
        outer_vars.insert(
            static_cast<const ForNode&>(*site.loops[i]).loop_var.get());
    }
    for (size_t i = 0; i < b->iter_vars.size(); ++i) {
        if (b->iter_vars[i].type != IterType::kReduce) continue;
        for (const VarNode* v : collectVars(realize.iter_values[i])) {
            TIR_CHECK(!outer_vars.count(v))
                << "reduction iterator bound above the decompose point";
        }
    }

    // Spatial bindings referencing loops at/below the split point need
    // replicated loops for the init block.
    std::vector<const ForNode*> inner_loops;
    for (size_t i = loop_pos; i < site.loops.size(); ++i) {
        inner_loops.push_back(
            static_cast<const ForNode*>(site.loops[i].get()));
    }
    std::set<const VarNode*> used;
    std::vector<Expr> init_bindings;
    std::vector<IterVar> init_iters;
    VarMap iter_remap;   // reduction block iter var -> init block iter var
    VarMap loop_remap;   // inner loop var -> replicated loop var
    std::vector<std::pair<Var, const ForNode*>> replicated;
    for (size_t i = 0; i < b->iter_vars.size(); ++i) {
        if (b->iter_vars[i].type != IterType::kSpatial) continue;
        for (const VarNode* v : collectVars(realize.iter_values[i])) {
            used.insert(v);
        }
    }
    for (const ForNode* f : inner_loops) {
        if (used.count(f->loop_var.get())) {
            Var fresh = var(f->loop_var->name + "_i", f->loop_var->dtype);
            loop_remap[f->loop_var.get()] = fresh;
            replicated.emplace_back(fresh, f);
        }
    }
    for (size_t i = 0; i < b->iter_vars.size(); ++i) {
        const IterVar& iv = b->iter_vars[i];
        if (iv.type != IterType::kSpatial) continue;
        Var fresh = var(iv.var->name + "_i", iv.var->dtype);
        iter_remap[iv.var.get()] = fresh;
        init_iters.emplace_back(fresh, iv.dom, IterType::kSpatial);
        init_bindings.push_back(
            substitute(realize.iter_values[i], loop_remap));
    }

    // Keep predicate conjuncts whose inner-loop vars were replicated;
    // drop conjuncts over reduction-only loops (vacuous for the init).
    std::set<const VarNode*> inner_vars;
    for (const ForNode* f : inner_loops) inner_vars.insert(
        f->loop_var.get());
    Expr init_pred = intImm(1, DataType::boolean());
    for (const Expr& conj : arith::splitConjunction(realize.predicate)) {
        bool ok = true;
        for (const VarNode* v : collectVars(conj)) {
            if (inner_vars.count(v) && !loop_remap.count(v)) ok = false;
        }
        if (ok) init_pred = land(init_pred, substitute(conj, loop_remap));
    }
    arith::Analyzer simplifier;
    init_pred = simplifier.simplify(init_pred);

    Stmt init_body = substitute(b->init, iter_remap);
    arith::AccessRegions init_regions =
        arith::detectRegions(init_body, {});
    BlockPtr init_block = makeBlock(
        uniqueName(block + "_init"), init_iters, init_regions.reads,
        init_regions.writes, init_body, nullptr, {}, b->annotations);
    Stmt init_realize = blockRealize(init_bindings, init_pred, init_block);
    Stmt init_nest = init_realize;
    for (size_t i = replicated.size(); i > 0; --i) {
        const ForNode* proto = replicated[i - 1].second;
        init_nest = makeFor(replicated[i - 1].first, proto->min,
                            proto->extent, init_nest);
    }

    // Update block: drop the init; it now reads its own output.
    BlockPtr update_block = refreshSignature(
        *makeBlock(b->name, b->iter_vars, {}, {}, b->body, nullptr,
                   b->alloc_buffers, b->annotations));
    replaceNode(site.realize.get(),
                blockRealize(realize.iter_values, realize.predicate,
                             update_block));

    // Insert the init nest right before `loop`.
    const ForNode* split_loop = findLoop(loop);
    Stmt loop_copy =
        makeFor(split_loop->loop_var, split_loop->min, split_loop->extent,
                split_loop->body, split_loop->for_kind,
                split_loop->thread_tag, split_loop->annotations);
    replaceNode(split_loop, seq({init_nest, loop_copy}));
    return init_block->name;
}

} // namespace tir

namespace tir {

void
Schedule::mergeReduction(const std::string& init_block,
                         const std::string& update_block)
{
    BlockSite init_site = findSite(init_block);
    const BlockNode* init = asBlockRealize(init_site.realize);
    BlockSite update_site = findSite(update_block);
    const BlockNode* update = asBlockRealize(update_site.realize);
    TIR_CHECK(!update->init)
        << "update block already carries an init statement";
    TIR_CHECK(!init->init && init->body->kind == StmtKind::kBufferStore)
        << "init block must be a plain store block";
    for (const IterVar& iv : init->iter_vars) {
        TIR_CHECK(iv.type == IterType::kSpatial)
            << "init block must be spatial";
    }
    const auto& init_store =
        static_cast<const BufferStoreNode&>(*init->body);
    TIR_CHECK(update->writes.size() == 1 &&
              update->writes[0].buffer == init_store.buffer)
        << "init and update blocks must write the same buffer";

    // Map the init block's iterators onto the update block's spatial
    // iterators through the shared store indices.
    TIR_CHECK(update->body->kind == StmtKind::kBufferStore)
        << "update block must be a single-store einsum";
    const auto& update_store =
        static_cast<const BufferStoreNode&>(*update->body);
    TIR_CHECK(update_store.indices.size() == init_store.indices.size());
    VarMap remap;
    for (size_t d = 0; d < init_store.indices.size(); ++d) {
        TIR_CHECK(init_store.indices[d]->kind == ExprKind::kVar &&
                  update_store.indices[d]->kind == ExprKind::kVar)
            << "mergeReduction expects identity store indices";
        remap[static_cast<const VarNode*>(
            init_store.indices[d].get())] = update_store.indices[d];
    }
    Stmt new_init = substitute(init->body, remap);

    // Rebuild the update block with the init attached; its signature no
    // longer self-reads the output.
    BlockPtr merged = refreshSignature(
        *makeBlock(update->name, update->iter_vars, {}, {}, update->body,
                   new_init, update->alloc_buffers,
                   update->annotations));
    const auto& realize =
        static_cast<const BlockRealizeNode&>(*update_site.realize);
    replaceNode(update_site.realize.get(),
                blockRealize(realize.iter_values, realize.predicate,
                             merged));

    // Remove the init block's private nest.
    BlockSite stale = findSite(init_block);
    eraseNode(privateSubtree(stale).get());
}

} // namespace tir
