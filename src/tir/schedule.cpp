#include "tir/schedule.h"

#include <algorithm>

#include "arith/iter_map.h"
#include "ir/functor.h"
#include "ir/printer.h"
#include "ir/transform.h"
#include "tir/analysis/analysis.h"

namespace tir {

Schedule::Schedule(PrimFunc func, uint64_t seed)
    : func_(std::move(func)), rng_(seed)
{
    TIR_CHECK(func_) << "null function";
}

namespace {

/** Recursive site search tracking enclosing loops and parent block. */
struct SiteFinder
{
    static bool
    find(const Stmt& stmt, const std::string& name,
         std::vector<Stmt>& loop_stack, const BlockNode* parent,
         Schedule::BlockSite* out)
    {
        switch (stmt->kind) {
          case StmtKind::kSeq: {
            for (const Stmt& s :
                 static_cast<const SeqStmtNode&>(*stmt).seq) {
                size_t depth = loop_stack.size();
                if (find(s, name, loop_stack, parent, out)) return true;
                loop_stack.resize(depth);
            }
            return false;
          }
          case StmtKind::kFor: {
            const auto& n = static_cast<const ForNode&>(*stmt);
            loop_stack.push_back(stmt);
            if (find(n.body, name, loop_stack, parent, out)) return true;
            loop_stack.pop_back();
            return false;
          }
          case StmtKind::kIfThenElse: {
            const auto& n = static_cast<const IfThenElseNode&>(*stmt);
            size_t depth = loop_stack.size();
            if (find(n.then_case, name, loop_stack, parent, out)) {
                return true;
            }
            loop_stack.resize(depth);
            if (n.else_case &&
                find(n.else_case, name, loop_stack, parent, out)) {
                return true;
            }
            loop_stack.resize(depth);
            return false;
          }
          case StmtKind::kBlockRealize: {
            const auto& n = static_cast<const BlockRealizeNode&>(*stmt);
            if (n.block->name == name) {
                out->realize = stmt;
                out->loops = loop_stack;
                out->parent = parent;
                return true;
            }
            std::vector<Stmt> inner_stack;
            if (n.block->init &&
                find(n.block->init, name, inner_stack, n.block.get(),
                     out)) {
                return true;
            }
            inner_stack.clear();
            return find(n.block->body, name, inner_stack, n.block.get(),
                        out);
          }
          default:
            return false;
        }
    }
};

} // namespace

Schedule::BlockSite
Schedule::findSite(const std::string& block) const
{
    BlockSite site;
    std::vector<Stmt> stack;
    TIR_CHECK(SiteFinder::find(func_->body, block, stack, nullptr,
                                    &site))
        << "no block named '" << block << "' in " << func_->name;
    return site;
}

bool
Schedule::hasBlock(const std::string& block) const
{
    BlockSite site;
    std::vector<Stmt> stack;
    return SiteFinder::find(func_->body, block, stack, nullptr,
                                 &site);
}

BlockPtr
Schedule::getBlock(const std::string& block) const
{
    BlockSite site = findSite(block);
    return static_cast<const BlockRealizeNode&>(*site.realize).block;
}

std::vector<Var>
Schedule::getLoops(const std::string& block) const
{
    BlockSite site = findSite(block);
    std::vector<Var> result;
    result.reserve(site.loops.size());
    for (const Stmt& loop : site.loops) {
        result.push_back(static_cast<const ForNode&>(*loop).loop_var);
    }
    return result;
}

int64_t
Schedule::loopExtent(const Var& loop) const
{
    const ForNode* node = findLoop(loop);
    int64_t extent = constIntOr(node->extent, -1);
    TIR_CHECK(extent >= 0) << "loop " << loop->name
                           << " has symbolic extent";
    return extent;
}

std::vector<std::string>
Schedule::blockNames() const
{
    std::vector<std::string> names;
    for (const BlockPtr& block : collectBlocks(func_->body)) {
        if (block->name != "root") names.push_back(block->name);
    }
    return names;
}

const ForNode*
Schedule::findLoop(const Var& loop) const
{
    const ForNode* found = nullptr;
    preOrderVisit(func_->body, [&](const StmtNode* node) {
        if (node->kind == StmtKind::kFor) {
            const auto* f = static_cast<const ForNode*>(node);
            if (f->loop_var == loop) found = f;
        }
    });
    TIR_CHECK(found) << "no loop with var '" << loop->name << "'";
    return found;
}

namespace {

/** Replaces (or erases, when replacement is null) one subtree. */
class NodeReplacer : public StmtExprMutator
{
  public:
    NodeReplacer(const StmtNode* target, Stmt replacement)
        : target_(target), replacement_(std::move(replacement))
    {}

    bool hit() const { return hit_; }

    Stmt
    mutateStmt(const Stmt& s) override
    {
        if (s.get() == target_) {
            hit_ = true;
            return replacement_;
        }
        return StmtExprMutator::mutateStmt(s);
    }

  protected:
    Stmt
    mutateFor(const Stmt& s) override
    {
        const auto& n = static_cast<const ForNode&>(*s);
        Stmt body = mutateStmt(n.body);
        if (!body) return nullptr; // erased subtree swallows the loop
        if (body == n.body) return s;
        return makeFor(n.loop_var, n.min, n.extent, body, n.for_kind,
                       n.thread_tag, n.annotations);
    }

  private:
    const StmtNode* target_;
    Stmt replacement_;
    bool hit_ = false;
};

} // namespace

void
Schedule::replaceNode(const StmtNode* target, Stmt replacement)
{
    NodeReplacer replacer(target, std::move(replacement));
    Stmt body = replacer.mutateStmt(func_->body);
    TIR_ICHECK(replacer.hit()) << "replace target not found in tree";
    TIR_ICHECK(body) << "replacement erased the whole function body";
    func_ = makeFunc(func_->name, func_->params, body, func_->attrs);
}

void
Schedule::eraseNode(const StmtNode* target)
{
    replaceNode(target, nullptr);
}

namespace {

/** Rebuild the function with new root-block allocations. */
PrimFunc
withRootAllocs(const PrimFunc& func, std::vector<Buffer> allocs)
{
    const auto& realize =
        static_cast<const BlockRealizeNode&>(*func->body);
    const BlockNode* root = realize.block.get();
    BlockPtr new_root =
        makeBlock(root->name, root->iter_vars, root->reads, root->writes,
                  root->body, root->init, std::move(allocs),
                  root->annotations);
    Stmt new_body = blockRealize(realize.iter_values, realize.predicate,
                                 new_root);
    return makeFunc(func->name, func->params, new_body, func->attrs);
}

} // namespace

void
Schedule::addRootAlloc(const Buffer& buffer)
{
    const BlockNode* root = asBlockRealize(func_->body);
    std::vector<Buffer> allocs = root->alloc_buffers;
    allocs.push_back(buffer);
    func_ = withRootAllocs(func_, std::move(allocs));
}

void
Schedule::removeRootAlloc(const Buffer& buffer)
{
    const BlockNode* root = asBlockRealize(func_->body);
    std::vector<Buffer> allocs;
    for (const Buffer& b : root->alloc_buffers) {
        if (b != buffer) allocs.push_back(b);
    }
    func_ = withRootAllocs(func_, std::move(allocs));
}

std::string
Schedule::uniqueName(const std::string& base) const
{
    if (!hasBlock(base)) return base;
    for (int i = 1;; ++i) {
        std::string candidate = base + "_" + std::to_string(i);
        if (!hasBlock(candidate)) return candidate;
    }
}

arith::Analyzer
Schedule::analyzerAt(const BlockSite& site) const
{
    arith::Analyzer analyzer;
    for (const Stmt& loop : site.loops) {
        const auto& n = static_cast<const ForNode&>(*loop);
        analyzer.bind(n.loop_var, Range(n.min, n.extent));
    }
    return analyzer;
}

// --- Sampling ---------------------------------------------------------

namespace {

std::vector<int64_t>
divisorsOf(int64_t n)
{
    std::vector<int64_t> result;
    for (int64_t d = 1; d * d <= n; ++d) {
        if (n % d == 0) {
            result.push_back(d);
            if (d != n / d) result.push_back(n / d);
        }
    }
    std::sort(result.begin(), result.end());
    return result;
}

} // namespace

std::vector<int64_t>
Schedule::samplePerfectTile(const Var& loop, int n, int max_innermost)
{
    int64_t extent = loopExtent(loop);
    Decision decision;
    decision.kind = Decision::Kind::kPerfectTile;
    decision.extent = extent;
    decision.number = n;
    decision.max_innermost = max_innermost;

    // Use an override when it matches this sampling site.
    if (override_pos_ < overrides_.size()) {
        const Decision& o = overrides_[override_pos_];
        if (o.kind == decision.kind && o.extent == extent &&
            o.number == n) {
            ++override_pos_;
            decision.values = o.values;
            decisions_.push_back(decision);
            return o.values;
        }
        ++override_pos_; // mismatched trace: fall through to sampling
    }

    std::vector<int64_t> factors(n, 1);
    int64_t remaining = extent;
    // Sample inner factors first, then the outermost takes the rest.
    for (int i = n - 1; i >= 1; --i) {
        std::vector<int64_t> divisors = divisorsOf(remaining);
        if (i == n - 1) {
            std::vector<int64_t> limited;
            for (int64_t d : divisors) {
                if (d <= max_innermost) limited.push_back(d);
            }
            divisors = limited;
        }
        int64_t pick =
            divisors[rng_.randInt(static_cast<int64_t>(divisors.size()))];
        factors[i] = pick;
        remaining /= pick;
    }
    factors[0] = remaining;
    decision.values = factors;
    decisions_.push_back(decision);
    return factors;
}

int64_t
Schedule::sampleCategorical(const std::vector<int64_t>& candidates,
                            const std::vector<double>& probs)
{
    TIR_CHECK(!candidates.empty());
    Decision decision;
    decision.kind = Decision::Kind::kCategorical;
    decision.num_candidates = static_cast<int>(candidates.size());

    if (override_pos_ < overrides_.size()) {
        const Decision& o = overrides_[override_pos_];
        if (o.kind == decision.kind &&
            o.num_candidates == decision.num_candidates &&
            !o.values.empty() &&
            o.values[0] < static_cast<int64_t>(candidates.size())) {
            ++override_pos_;
            decision.values = o.values;
            decisions_.push_back(decision);
            return candidates[static_cast<size_t>(o.values[0])];
        }
        ++override_pos_;
    }

    size_t index = probs.empty()
                       ? static_cast<size_t>(rng_.randInt(
                             static_cast<int64_t>(candidates.size())))
                       : rng_.weightedChoice(probs);
    decision.values = {static_cast<int64_t>(index)};
    decisions_.push_back(decision);
    return candidates[index];
}

void
Schedule::setDecisionOverrides(std::vector<Decision> overrides)
{
    overrides_ = std::move(overrides);
    override_pos_ = 0;
}

// --- Validation -------------------------------------------------------

namespace {

void
validateRec(const Stmt& stmt, arith::DomMap doms)
{
    switch (stmt->kind) {
      case StmtKind::kSeq:
        for (const Stmt& s : static_cast<const SeqStmtNode&>(*stmt).seq) {
            validateRec(s, doms);
        }
        return;
      case StmtKind::kFor: {
        const auto& n = static_cast<const ForNode&>(*stmt);
        doms[n.loop_var.get()] = Range(n.min, n.extent);
        validateRec(n.body, doms);
        return;
      }
      case StmtKind::kIfThenElse: {
        const auto& n = static_cast<const IfThenElseNode&>(*stmt);
        validateRec(n.then_case, doms);
        if (n.else_case) validateRec(n.else_case, doms);
        return;
      }
      case StmtKind::kBlockRealize: {
        const auto& n = static_cast<const BlockRealizeNode&>(*stmt);
        if (!n.block->iter_vars.empty()) {
            arith::BindingValidation result =
                arith::validateBlockBindings(n, doms);
            TIR_CHECK(result.affine)
                << "block '" << n.block->name
                << "' fails loop nest validation: " << result.error;
        }
        // Block iterators join the domain context for nested blocks.
        for (const IterVar& iv : n.block->iter_vars) {
            doms[iv.var.get()] = iv.dom;
        }
        if (n.block->init) validateRec(n.block->init, doms);
        validateRec(n.block->body, doms);
        return;
      }
      default:
        return;
    }
}

} // namespace

void
Schedule::validateAffineBindings() const
{
    validateRec(func_->body, {});
}

void
Schedule::validateMemoryAnalysis() const
{
    analysis::AnalysisReport report = analysis::analyzeFunc(func_);
    TIR_CHECK(report.ok())
        << "schedule of " << func_->name
        << " fails static memory analysis:\n"
        << report.summary();
}

std::string
Schedule::analysisDiagnostics() const
{
    return analysis::analyzeFunc(func_).summary();
}

// --- Annotations & loop kinds -------------------------------------------

namespace {

Stmt
withForKind(const ForNode& n, ForKind kind, const std::string& tag)
{
    return makeFor(n.loop_var, n.min, n.extent, n.body, kind, tag,
                   n.annotations);
}

} // namespace

void
Schedule::bind(const Var& loop, const std::string& thread_tag)
{
    const ForNode* node = findLoop(loop);
    replaceNode(node, withForKind(*node, ForKind::kThreadBinding,
                                  thread_tag));
}

void
Schedule::parallel(const Var& loop)
{
    const ForNode* node = findLoop(loop);
    replaceNode(node, withForKind(*node, ForKind::kParallel, ""));
}

void
Schedule::vectorize(const Var& loop)
{
    const ForNode* node = findLoop(loop);
    replaceNode(node, withForKind(*node, ForKind::kVectorized, ""));
}

void
Schedule::unroll(const Var& loop)
{
    const ForNode* node = findLoop(loop);
    replaceNode(node, withForKind(*node, ForKind::kUnrolled, ""));
}

void
Schedule::annotateBlock(const std::string& block, const std::string& key,
                        Expr value)
{
    BlockSite site = findSite(block);
    const BlockNode* b = asBlockRealize(site.realize);
    std::map<std::string, Expr> annotations = b->annotations;
    annotations[key] = std::move(value);
    BlockPtr updated =
        makeBlock(b->name, b->iter_vars, b->reads, b->writes, b->body,
                  b->init, b->alloc_buffers, std::move(annotations));
    const auto& realize =
        static_cast<const BlockRealizeNode&>(*site.realize);
    replaceNode(site.realize.get(),
                blockRealize(realize.iter_values, realize.predicate,
                             updated));
}

void
Schedule::annotateLoop(const Var& loop, const std::string& key, Expr value)
{
    const ForNode* node = findLoop(loop);
    std::map<std::string, Expr> annotations = node->annotations;
    annotations[key] = std::move(value);
    replaceNode(node,
                makeFor(node->loop_var, node->min, node->extent,
                        node->body, node->for_kind, node->thread_tag,
                        std::move(annotations)));
}

} // namespace tir
