#include "workloads/workloads.h"

#include <cmath>

#include "te/te.h"

namespace tir {
namespace workloads {

namespace {

/** Zero value of the given dtype. */
Expr
zero(DataType dtype)
{
    return dtype.isFloat() ? floatImm(0.0, dtype) : intImm(0, dtype);
}

/** Multiply two loads, casting to the accumulator dtype when needed. */
Expr
mac(Expr a, Expr b, DataType acc)
{
    if (a->dtype != acc) a = cast(acc, a);
    if (b->dtype != acc) b = cast(acc, b);
    return a * b;
}

} // namespace

OpSpec
gmm(int64_t n, int64_t m, int64_t k, DataType in_dtype, DataType acc)
{
    te::Builder builder;
    Buffer a = builder.placeholder("A", {n, k}, in_dtype);
    Buffer b = builder.placeholder("B", {k, m}, in_dtype);
    Buffer c = builder.sumReduce(
        "C", {n, m}, {k},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return mac(bufferLoad(a, {s[0], r[0]}),
                       bufferLoad(b, {r[0], s[1]}), acc);
        },
        acc);
    return {"GMM", builder.build("gmm", {c}), "C",
            static_cast<double>(n * m * k)};
}

OpSpec
batchMatmul(int64_t bsz, int64_t n, int64_t m, int64_t k,
            DataType in_dtype, DataType acc)
{
    te::Builder builder;
    Buffer a = builder.placeholder("A", {bsz, n, k}, in_dtype);
    Buffer b = builder.placeholder("B", {bsz, k, m}, in_dtype);
    Buffer c = builder.sumReduce(
        "C", {bsz, n, m}, {k},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return mac(bufferLoad(a, {s[0], s[1], r[0]}),
                       bufferLoad(b, {s[0], r[0], s[2]}), acc);
        },
        acc);
    return {"BMM", builder.build("batch_matmul", {c}), "C",
            static_cast<double>(bsz * n * m * k)};
}

OpSpec
conv1d(int64_t n, int64_t l, int64_t ci, int64_t co, int64_t k,
       int64_t stride, int64_t pad, DataType in_dtype, DataType acc)
{
    te::Builder builder;
    Buffer a = builder.placeholder("A", {n, l, ci}, in_dtype);
    Buffer w = builder.placeholder("W", {k, ci, co}, in_dtype);
    int64_t lp = l + 2 * pad;
    Buffer apad = builder.compute(
        "Apad", {n, lp, ci},
        [&](const std::vector<Var>& v) {
            Expr in_bounds = land(ge(v[1], intImm(pad)),
                                  lt(v[1], intImm(l + pad)));
            return select(in_bounds,
                          bufferLoad(a, {v[0], v[1] - pad, v[2]}),
                          zero(in_dtype));
        },
        in_dtype);
    int64_t lo = (lp - k) / stride + 1;
    Buffer c = builder.sumReduce(
        "C", {n, lo, co}, {k, ci},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return mac(bufferLoad(apad, {s[0], Expr(s[1]) * stride + r[0],
                                         r[1]}),
                       bufferLoad(w, {r[0], r[1], s[2]}), acc);
        },
        acc);
    return {"C1D", builder.build("conv1d", {c}), "C",
            static_cast<double>(n * lo * co * k * ci)};
}

OpSpec
conv2d(int64_t n, int64_t h, int64_t w_, int64_t ci, int64_t co,
       int64_t k, int64_t stride, int64_t pad, int64_t dilation,
       DataType in_dtype, DataType acc)
{
    te::Builder builder;
    Buffer a = builder.placeholder("A", {n, h, w_, ci}, in_dtype);
    Buffer w = builder.placeholder("W", {k, k, ci, co}, in_dtype);
    int64_t hp = h + 2 * pad;
    int64_t wp = w_ + 2 * pad;
    Buffer apad = builder.compute(
        "Apad", {n, hp, wp, ci},
        [&](const std::vector<Var>& v) {
            Expr in_bounds =
                land(land(ge(v[1], intImm(pad)),
                          lt(v[1], intImm(h + pad))),
                     land(ge(v[2], intImm(pad)),
                          lt(v[2], intImm(w_ + pad))));
            return select(in_bounds,
                          bufferLoad(a, {v[0], v[1] - pad, v[2] - pad,
                                         v[3]}),
                          zero(in_dtype));
        },
        in_dtype);
    int64_t keff = (k - 1) * dilation + 1;
    int64_t ho = (hp - keff) / stride + 1;
    int64_t wo = (wp - keff) / stride + 1;
    Buffer c = builder.sumReduce(
        "C", {n, ho, wo, co}, {k, k, ci},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return mac(
                bufferLoad(apad,
                           {s[0], Expr(s[1]) * stride + Expr(r[0]) *
                                                            dilation,
                            Expr(s[2]) * stride + Expr(r[1]) * dilation,
                            r[2]}),
                bufferLoad(w, {r[0], r[1], r[2], s[3]}), acc);
        },
        acc);
    const char* name = dilation > 1 ? "DIL" : "C2D";
    return {name, builder.build("conv2d", {c}), "C",
            static_cast<double>(n * ho * wo * co * k * k * ci)};
}

OpSpec
conv3d(int64_t n, int64_t d, int64_t h, int64_t w_, int64_t ci,
       int64_t co, int64_t k, int64_t stride, int64_t pad,
       DataType in_dtype, DataType acc)
{
    te::Builder builder;
    Buffer a = builder.placeholder("A", {n, d, h, w_, ci}, in_dtype);
    Buffer w = builder.placeholder("W", {k, k, k, ci, co}, in_dtype);
    int64_t dp = d + 2 * pad;
    int64_t hp = h + 2 * pad;
    int64_t wp = w_ + 2 * pad;
    Buffer apad = builder.compute(
        "Apad", {n, dp, hp, wp, ci},
        [&](const std::vector<Var>& v) {
            auto within = [&](const Var& x, int64_t extent) {
                return land(ge(x, intImm(pad)),
                            lt(x, intImm(extent + pad)));
            };
            Expr in_bounds = land(within(v[1], d),
                                  land(within(v[2], h), within(v[3], w_)));
            return select(in_bounds,
                          bufferLoad(a, {v[0], v[1] - pad, v[2] - pad,
                                         v[3] - pad, v[4]}),
                          zero(in_dtype));
        },
        in_dtype);
    int64_t do_ = (dp - k) / stride + 1;
    int64_t ho = (hp - k) / stride + 1;
    int64_t wo = (wp - k) / stride + 1;
    Buffer c = builder.sumReduce(
        "C", {n, do_, ho, wo, co}, {k, k, k, ci},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return mac(
                bufferLoad(apad, {s[0], Expr(s[1]) * stride + r[0],
                                  Expr(s[2]) * stride + r[1],
                                  Expr(s[3]) * stride + r[2], r[3]}),
                bufferLoad(w, {r[0], r[1], r[2], r[3], s[4]}), acc);
        },
        acc);
    return {"C3D", builder.build("conv3d", {c}), "C",
            static_cast<double>(n * do_ * ho * wo * co * k * k * k * ci)};
}

OpSpec
depthwiseConv2d(int64_t n, int64_t h, int64_t w_, int64_t c, int64_t k,
                int64_t stride, int64_t pad, DataType in_dtype,
                DataType acc)
{
    te::Builder builder;
    Buffer a = builder.placeholder("A", {n, h, w_, c}, in_dtype);
    Buffer w = builder.placeholder("W", {k, k, c}, in_dtype);
    int64_t hp = h + 2 * pad;
    int64_t wp = w_ + 2 * pad;
    Buffer apad = builder.compute(
        "Apad", {n, hp, wp, c},
        [&](const std::vector<Var>& v) {
            Expr in_bounds =
                land(land(ge(v[1], intImm(pad)),
                          lt(v[1], intImm(h + pad))),
                     land(ge(v[2], intImm(pad)),
                          lt(v[2], intImm(w_ + pad))));
            return select(in_bounds,
                          bufferLoad(a, {v[0], v[1] - pad, v[2] - pad,
                                         v[3]}),
                          zero(in_dtype));
        },
        in_dtype);
    int64_t ho = (hp - k) / stride + 1;
    int64_t wo = (wp - k) / stride + 1;
    Buffer out = builder.sumReduce(
        "C", {n, ho, wo, c}, {k, k},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return mac(bufferLoad(apad, {s[0], Expr(s[1]) * stride + r[0],
                                         Expr(s[2]) * stride + r[1],
                                         s[3]}),
                       bufferLoad(w, {r[0], r[1], s[3]}), acc);
        },
        acc);
    return {"DEP", builder.build("depthwise_conv2d", {out}), "C",
            static_cast<double>(n * ho * wo * c * k * k)};
}

OpSpec
groupConv2d(int64_t n, int64_t h, int64_t w_, int64_t ci, int64_t co,
            int64_t groups, int64_t k, int64_t stride, int64_t pad,
            DataType in_dtype, DataType acc)
{
    TIR_CHECK(ci % groups == 0 && co % groups == 0);
    int64_t cig = ci / groups;
    int64_t cog = co / groups;
    te::Builder builder;
    Buffer a = builder.placeholder("A", {n, h, w_, groups, cig},
                                   in_dtype);
    Buffer w = builder.placeholder("W", {k, k, groups, cig, cog},
                                   in_dtype);
    int64_t hp = h + 2 * pad;
    int64_t wp = w_ + 2 * pad;
    Buffer apad = builder.compute(
        "Apad", {n, hp, wp, groups, cig},
        [&](const std::vector<Var>& v) {
            Expr in_bounds =
                land(land(ge(v[1], intImm(pad)),
                          lt(v[1], intImm(h + pad))),
                     land(ge(v[2], intImm(pad)),
                          lt(v[2], intImm(w_ + pad))));
            return select(in_bounds,
                          bufferLoad(a, {v[0], v[1] - pad, v[2] - pad,
                                         v[3], v[4]}),
                          zero(in_dtype));
        },
        in_dtype);
    int64_t ho = (hp - k) / stride + 1;
    int64_t wo = (wp - k) / stride + 1;
    Buffer c = builder.sumReduce(
        "C", {n, ho, wo, groups, cog}, {k, k, cig},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return mac(
                bufferLoad(apad, {s[0], Expr(s[1]) * stride + r[0],
                                  Expr(s[2]) * stride + r[1], s[3],
                                  r[2]}),
                bufferLoad(w, {r[0], r[1], s[3], r[2], s[4]}), acc);
        },
        acc);
    return {"GRP", builder.build("group_conv2d", {c}), "C",
            static_cast<double>(n * ho * wo * co * k * k * cig)};
}

OpSpec
transposedConv2d(int64_t n, int64_t h, int64_t w_, int64_t ci,
                 int64_t co, int64_t k, int64_t stride,
                 DataType in_dtype, DataType acc)
{
    te::Builder builder;
    Buffer a = builder.placeholder("A", {n, h, w_, ci}, in_dtype);
    Buffer w = builder.placeholder("W", {k, k, ci, co}, in_dtype);
    // Zero-insertion dilation + (k-1) halo padding.
    int64_t hd = (h - 1) * stride + 1 + 2 * (k - 1);
    int64_t wd = (w_ - 1) * stride + 1 + 2 * (k - 1);
    int64_t off = k - 1;
    Buffer adil = builder.compute(
        "Adil", {n, hd, wd, ci},
        [&](const std::vector<Var>& v) {
            Expr hh = v[1] - off;
            Expr ww = v[2] - off;
            Expr in_bounds = land(
                land(land(ge(hh, intImm(0)),
                          lt(hh, intImm((h - 1) * stride + 1))),
                     land(ge(ww, intImm(0)),
                          lt(ww, intImm((w_ - 1) * stride + 1)))),
                land(eq(floormod(hh, stride), intImm(0)),
                     eq(floormod(ww, stride), intImm(0))));
            return select(
                in_bounds,
                bufferLoad(a, {v[0],
                               floordiv(maxExpr(hh, intImm(0)), stride),
                               floordiv(maxExpr(ww, intImm(0)), stride),
                               v[3]}),
                zero(in_dtype));
        },
        in_dtype);
    int64_t ho = hd - k + 1;
    int64_t wo = wd - k + 1;
    Buffer c = builder.sumReduce(
        "C", {n, ho, wo, co}, {k, k, ci},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return mac(bufferLoad(adil, {s[0], s[1] + r[0], s[2] + r[1],
                                         r[2]}),
                       bufferLoad(w, {r[0], r[1], r[2], s[3]}), acc);
        },
        acc);
    return {"T2D", builder.build("transposed_conv2d", {c}), "C",
            static_cast<double>(n * ho * wo * co * k * k * ci)};
}

OpSpec
matmulRelu(int64_t n, int64_t m, int64_t k, DataType dtype)
{
    te::Builder builder;
    Buffer a = builder.placeholder("A", {n, k}, dtype);
    Buffer b = builder.placeholder("B", {k, m}, dtype);
    Buffer c = builder.sumReduce(
        "C", {n, m}, {k},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return bufferLoad(a, {s[0], r[0]}) *
                   bufferLoad(b, {r[0], s[1]});
        },
        dtype);
    Buffer d = builder.compute(
        "D", {n, m},
        [&](const std::vector<Var>& v) {
            return maxExpr(bufferLoad(c, {v[0], v[1]}), zero(dtype));
        },
        dtype);
    return {"GEMM+ReLU", builder.build("matmul_relu", {d}), "C",
            static_cast<double>(n * m * k)};
}

OpSpec
softmax(int64_t rows, int64_t cols, DataType dtype)
{
    te::Builder builder;
    Buffer x = builder.placeholder("X", {rows, cols}, dtype);
    Buffer rowmax = builder.maxReduce(
        "RowMax", {rows}, {cols},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return bufferLoad(x, {s[0], r[0]});
        },
        dtype);
    Buffer exps = builder.compute(
        "Exp", {rows, cols},
        [&](const std::vector<Var>& v) {
            return call(dtype, "exp",
                        {bufferLoad(x, {v[0], v[1]}) -
                         bufferLoad(rowmax, {v[0]})});
        },
        dtype);
    Buffer rowsum = builder.sumReduce(
        "RowSum", {rows}, {cols},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return bufferLoad(exps, {s[0], r[0]});
        },
        dtype);
    Buffer out = builder.compute(
        "Softmax", {rows, cols},
        [&](const std::vector<Var>& v) {
            return div(bufferLoad(exps, {v[0], v[1]}),
                       bufferLoad(rowsum, {v[0]}));
        },
        dtype);
    return {"SOFTMAX", builder.build("softmax", {out}), "RowSum",
            static_cast<double>(rows * cols)};
}

OpSpec
attention(int64_t seq, int64_t dim, DataType dtype)
{
    te::Builder builder;
    Buffer q = builder.placeholder("Q", {seq, dim}, dtype);
    Buffer k = builder.placeholder("K", {seq, dim}, dtype);
    Buffer v = builder.placeholder("V", {seq, dim}, dtype);
    double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(dim));
    Buffer scores = builder.sumReduce(
        "Scores", {seq, seq}, {dim},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return bufferLoad(q, {s[0], r[0]}) *
                   bufferLoad(k, {s[1], r[0]});
        },
        dtype);
    Buffer rowmax = builder.maxReduce(
        "RowMax", {seq}, {seq},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return bufferLoad(scores, {s[0], r[0]}) *
                   floatImm(inv_sqrt_d, dtype);
        },
        dtype);
    Buffer exps = builder.compute(
        "Exp", {seq, seq},
        [&](const std::vector<Var>& vv) {
            return call(dtype, "exp",
                        {bufferLoad(scores, {vv[0], vv[1]}) *
                             floatImm(inv_sqrt_d, dtype) -
                         bufferLoad(rowmax, {vv[0]})});
        },
        dtype);
    Buffer rowsum = builder.sumReduce(
        "RowSum", {seq}, {seq},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return bufferLoad(exps, {s[0], r[0]});
        },
        dtype);
    Buffer out = builder.sumReduce(
        "Out", {seq, dim}, {seq},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return div(bufferLoad(exps, {s[0], r[0]}),
                       bufferLoad(rowsum, {s[0]})) *
                   bufferLoad(v, {r[0], s[1]});
        },
        dtype);
    return {"ATTN", builder.build("attention", {out}), "Out",
            static_cast<double>(2 * seq * seq * dim)};
}

std::vector<OpSpec>
gpuSuite()
{
    DataType f16 = DataType::f16();
    return {
        conv1d(8, 256, 64, 128, 3, 2, 1, f16, f16),
        conv2d(8, 28, 28, 128, 128, 3, 1, 1, 1, f16, f16),
        conv3d(2, 16, 16, 16, 64, 64, 3, 1, 1, f16, f16),
        depthwiseConv2d(8, 28, 28, 128, 3, 1, 1, f16, f16),
        conv2d(8, 28, 28, 128, 128, 3, 1, 2, 2, f16, f16),
        gmm(1024, 1024, 1024, f16, f16),
        groupConv2d(8, 28, 28, 128, 128, 4, 3, 1, 1, f16, f16),
        transposedConv2d(8, 14, 14, 256, 128, 4, 2, f16, f16),
    };
}

std::vector<OpSpec>
gpuSuiteSmall()
{
    DataType f16 = DataType::f16();
    return {
        conv1d(1, 32, 8, 16, 3, 2, 1, f16, f16),
        conv2d(1, 8, 8, 16, 16, 3, 1, 1, 1, f16, f16),
        conv3d(1, 4, 4, 4, 8, 16, 3, 1, 1, f16, f16),
        depthwiseConv2d(1, 8, 8, 16, 3, 1, 1, f16, f16),
        conv2d(1, 8, 8, 16, 16, 3, 1, 2, 2, f16, f16),
        gmm(32, 32, 32, f16, f16),
        groupConv2d(1, 8, 8, 16, 16, 2, 3, 1, 1, f16, f16),
        transposedConv2d(1, 6, 6, 16, 16, 4, 2, f16, f16),
    };
}

std::vector<OpSpec>
armSuite()
{
    DataType i8 = DataType::i8();
    DataType i32 = DataType::i32();
    return {
        conv2d(1, 28, 28, 128, 128, 3, 1, 1, 1, i8, i32),
        gmm(512, 512, 512, i8, i32),
    };
}

} // namespace workloads
} // namespace tir
