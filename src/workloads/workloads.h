/**
 * @file
 * The paper's operator benchmark suite (§5.1): C1D, C2D, C3D, DEP, DIL,
 * GMM, GRP, T2D, plus elementwise epilogues. Convolutions are NHWC with
 * explicit padding stages; the transposed convolution is expressed via
 * zero-insertion dilation followed by a stride-1 convolution, which is
 * the standard einsum-isable formulation.
 */
#ifndef TENSORIR_WORKLOADS_WORKLOADS_H
#define TENSORIR_WORKLOADS_WORKLOADS_H

#include <string>
#include <vector>

#include "ir/stmt.h"

namespace tir {
namespace workloads {

/** A named benchmark workload. */
struct OpSpec
{
    std::string name;
    PrimFunc func;
    /** Name of the einsum (reduction) block to tensorize. */
    std::string einsum_block;
    /** Useful multiply-accumulate count (for GFLOPS reporting). */
    double macs = 0;
};

/** Dense matmul C[n,m] = A[n,k] x B[k,m]. */
OpSpec gmm(int64_t n, int64_t m, int64_t k,
           DataType in_dtype = DataType::f16(),
           DataType acc_dtype = DataType::f16());

/** Batched matmul C[b,n,m] = A[b,n,k] x B[b,k,m]. */
OpSpec batchMatmul(int64_t b, int64_t n, int64_t m, int64_t k,
                   DataType in_dtype = DataType::f16(),
                   DataType acc_dtype = DataType::f16());

/** 1D convolution, NWC layout. */
OpSpec conv1d(int64_t n, int64_t l, int64_t ci, int64_t co, int64_t k,
              int64_t stride, int64_t pad,
              DataType in_dtype = DataType::f16(),
              DataType acc_dtype = DataType::f16());

/** 2D convolution, NHWC layout (dilation > 1 gives the DIL workload). */
OpSpec conv2d(int64_t n, int64_t h, int64_t w, int64_t ci, int64_t co,
              int64_t k, int64_t stride, int64_t pad,
              int64_t dilation = 1,
              DataType in_dtype = DataType::f16(),
              DataType acc_dtype = DataType::f16());

/** 3D convolution, NDHWC layout. */
OpSpec conv3d(int64_t n, int64_t d, int64_t h, int64_t w, int64_t ci,
              int64_t co, int64_t k, int64_t stride, int64_t pad,
              DataType in_dtype = DataType::f16(),
              DataType acc_dtype = DataType::f16());

/** Depthwise 2D convolution, NHWC layout. */
OpSpec depthwiseConv2d(int64_t n, int64_t h, int64_t w, int64_t c,
                       int64_t k, int64_t stride, int64_t pad,
                       DataType in_dtype = DataType::f16(),
                       DataType acc_dtype = DataType::f16());

/** Grouped 2D convolution, NHWC layout with [G, C/G] channel split. */
OpSpec groupConv2d(int64_t n, int64_t h, int64_t w, int64_t ci,
                   int64_t co, int64_t groups, int64_t k, int64_t stride,
                   int64_t pad, DataType in_dtype = DataType::f16(),
                   DataType acc_dtype = DataType::f16());

/** Transposed 2D convolution via zero-insertion + stride-1 conv. */
OpSpec transposedConv2d(int64_t n, int64_t h, int64_t w, int64_t ci,
                        int64_t co, int64_t k, int64_t stride,
                        DataType in_dtype = DataType::f16(),
                        DataType acc_dtype = DataType::f16());

/** Matmul followed by ReLU (the Figure 8 workload). */
OpSpec matmulRelu(int64_t n, int64_t m, int64_t k,
                  DataType dtype = DataType::f32());

/**
 * Numerically-stable row softmax: rowmax -> exp(x - max) -> rowsum ->
 * normalize. A four-stage mixed pipeline (max-reduction, elementwise
 * transcendental, sum-reduction, division) exercising the "mixture of
 * irregular computations" the abstraction supports beyond einsums.
 */
OpSpec softmax(int64_t rows, int64_t cols,
               DataType dtype = DataType::f32());

/**
 * Single-head scaled dot-product attention, one function:
 * scores = (Q x K^T) / sqrt(d); P = softmax(scores); Out = P x V.
 * The attention core of BERT/ViT as a mixed einsum + irregular
 * pipeline.
 */
OpSpec attention(int64_t seq, int64_t dim,
                 DataType dtype = DataType::f32());

/**
 * The paper's GPU single-operator suite at representative shapes
 * (fp16 in/accum as in §5.1). Names: C1D, C2D, C3D, DEP, DIL, GMM,
 * GRP, T2D.
 */
std::vector<OpSpec> gpuSuite();

/** Small-shape version of the suite for correctness tests. */
std::vector<OpSpec> gpuSuiteSmall();

/** The ARM CPU suite (§5.3): int8 C2D and GMM. */
std::vector<OpSpec> armSuite();

} // namespace workloads
} // namespace tir

#endif // TENSORIR_WORKLOADS_WORKLOADS_H
