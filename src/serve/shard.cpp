#include "serve/shard.h"

#include "support/logging.h"

namespace tir {
namespace serve {

namespace {

size_t
roundUpPow2(size_t n)
{
    size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

} // namespace

HotCache::HotCache(size_t slots)
    : slots_(roundUpPow2(slots < kWays ? kWays : slots)),
      arena_(std::make_shared<Arena>())
{
}

size_t
HotCache::slotIndex(uint64_t hash) const
{
    // Structural hashes are avalanche-mixed; the low bits index well.
    return static_cast<size_t>(hash) & (slots_.size() - 1);
}

std::shared_ptr<const meta::TuneRecord>
HotCache::get(uint64_t hash) const
{
    const size_t mask = slots_.size() - 1;
    size_t base = slotIndex(hash);
    for (size_t w = 0; w < kWays; ++w) {
        const Slot& slot = slots_[(base + w) & mask];
        // Wait-free: the pointee is arena-pinned, so a pointer that was
        // ever published stays dereferenceable even if a racing put()
        // displaces it between our load and the hash compare.
        const meta::TuneRecord* record =
            slot.record.load(std::memory_order_acquire);
        if (record && record->workload_hash == hash) {
            // Touch for LRU. Relaxed and racy on purpose: a lost or
            // reordered touch only perturbs eviction order, never
            // correctness.
            const_cast<Slot&>(slot).stamp.store(
                clock_.fetch_add(1, std::memory_order_relaxed),
                std::memory_order_relaxed);
            // Alias the arena anchor: the hit keeps the arena (and so
            // the record) alive, without per-record refcount traffic
            // on the read path.
            return std::shared_ptr<const meta::TuneRecord>(arena_,
                                                           record);
        }
    }
    return nullptr;
}

void
HotCache::put(std::shared_ptr<const meta::TuneRecord> record)
{
    TIR_ICHECK(record) << "HotCache::put requires a record";
    const uint64_t hash = record->workload_hash;
    const size_t mask = slots_.size() - 1;
    size_t base = slotIndex(hash);
    std::lock_guard<std::mutex> lock(insert_mutex_);
    // Victim preference: (1) the slot already holding this hash, so
    // one key never occupies two slots; (2) any empty slot; (3) the
    // least-recently-touched occupied slot — that displacement is the
    // only case counted as an eviction.
    Slot* victim = nullptr;
    Slot* empty = nullptr;
    Slot* oldest = nullptr;
    uint64_t oldest_stamp = ~uint64_t{0};
    for (size_t w = 0; w < kWays; ++w) {
        Slot& slot = slots_[(base + w) & mask];
        const meta::TuneRecord* existing =
            slot.record.load(std::memory_order_relaxed);
        if (existing && existing->workload_hash == hash) {
            victim = &slot;
            break;
        }
        if (!existing) {
            if (!empty) empty = &slot;
        } else if (slot.stamp.load(std::memory_order_relaxed) <
                   oldest_stamp) {
            oldest = &slot;
            oldest_stamp = slot.stamp.load(std::memory_order_relaxed);
        }
    }
    if (!victim) victim = empty;
    if (!victim) {
        victim = oldest;
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    TIR_ICHECK(victim);
    // Retire into the arena first (ownership), publish second
    // (visibility): a reader that wins the race to the new pointer must
    // find it pinned. Displaced records stay in the arena — see the
    // ownership note in the header.
    const meta::TuneRecord* raw = record.get();
    arena_->push_back(std::move(record));
    victim->stamp.store(clock_.fetch_add(1, std::memory_order_relaxed),
                        std::memory_order_relaxed);
    victim->record.store(raw, std::memory_order_release);
}

TargetShard::TargetShard(int db_shards, size_t hot_slots,
                         std::unique_ptr<hwsim::DeviceModel> device)
    : device_(std::move(device)), database_(db_shards), hot_(hot_slots)
{
    TIR_ICHECK(device_) << "TargetShard requires a device model";
}

std::optional<TargetShard::Hit>
TargetShard::lookup(uint64_t workload_hash)
{
    if (auto cached = hot_.get(workload_hash)) {
        return Hit{std::move(cached), /*from_hot_cache=*/true};
    }
    std::optional<meta::TuneRecord> record =
        database_.lookup(workload_hash);
    if (!record) return std::nullopt;
    auto shared =
        std::make_shared<const meta::TuneRecord>(std::move(*record));
    hot_.put(shared); // promote: next lookup takes the fast path
    return Hit{std::move(shared), /*from_hot_cache=*/false};
}

void
TargetShard::commit(meta::TuneRecord record)
{
    const uint64_t hash = record.workload_hash;
    database_.commit(std::move(record));
    // Refresh the cache from the database's winner, not from the
    // record we were handed: under racing commits ours may have lost
    // the improve-only comparison, and caching the loser would serve a
    // slower schedule from the fast path until the next eviction.
    std::optional<meta::TuneRecord> best = database_.lookup(hash);
    TIR_ICHECK(best.has_value());
    hot_.put(std::make_shared<const meta::TuneRecord>(std::move(*best)));
}

} // namespace serve
} // namespace tir
