/**
 * @file
 * Per-target serving state: the authoritative sharded tuning database
 * plus a mutex-free hot cache in front of it.
 *
 * The hot cache is the read-side fast path of the schedule server: a
 * fixed, power-of-two array of set-associative slots whose payloads are
 * published as plain std::atomic<const TuneRecord*> loads, so a hit is
 * one wait-free atomic load, a hash compare, and a reference-count bump
 * on the shared ownership anchor — no mutex, no reader-writer lock, no
 * contention with concurrent inserts. (std::atomic<std::shared_ptr> was
 * deliberately avoided: libstdc++'s _Sp_atomic takes a packed-bit
 * spinlock on every load, so it is not actually lock-free, and TSan
 * cannot model that lock protocol.) Recency is tracked with a relaxed
 * global touch clock; inserts and evictions (the cold path) serialize
 * on a small mutex and evict the least-recently-touched slot of the
 * probe set.
 *
 * Ownership: every record ever published is retired into an append-only
 * arena rather than freed on displacement, so a raw slot pointer read
 * by a racing get() stays valid without readers touching per-record
 * reference counts. The arena is reclaimed when the cache (and the last
 * outstanding hit) goes away. Puts are low-rate — database promotions
 * and tuning improvements, not queries — so retaining O(#puts) small
 * records is the price of a wait-free read path.
 */
#ifndef TENSORIR_SERVE_SHARD_H
#define TENSORIR_SERVE_SHARD_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "hwsim/device.h"
#include "meta/database.h"

namespace tir {
namespace serve {

/**
 * Lossy, bounded, mutex-free-on-read cache of TuneRecords keyed by
 * workload structural hash. A miss here is not authoritative — the
 * sharded database behind it is; the cache only keeps popular records
 * one atomic load away.
 */
class HotCache
{
  public:
    /** `slots` is rounded up to a power of two (minimum one probe
     *  set of kWays slots). */
    explicit HotCache(size_t slots = 256);

    HotCache(const HotCache&) = delete;
    HotCache& operator=(const HotCache&) = delete;

    /** Hit: the cached record (shared, immutable; aliases the arena
     *  anchor, so it stays valid after eviction or cache teardown).
     *  Miss: nullptr. Wait-free — safe against concurrent put() at
     *  full speed. */
    std::shared_ptr<const meta::TuneRecord> get(uint64_t hash) const;

    /** Insert or replace the record for its workload hash, evicting the
     *  least-recently-touched slot of the probe set when full. Callers
     *  must only put records that improve on (or match) the database's
     *  best for that hash — the cache itself is last-writer-wins. */
    void put(std::shared_ptr<const meta::TuneRecord> record);

    size_t capacity() const { return slots_.size(); }

    /** Records displaced to make room (monotonic; for tests/stats). */
    uint64_t evictions() const
    {
        return evictions_.load(std::memory_order_relaxed);
    }

  private:
    struct Slot
    {
        /** Payload, atomically published; points into the arena, which
         *  never frees a record while the cache lives. The workload
         *  hash lives inside the record itself, so one load yields a
         *  consistent (key, value) pair — no torn key/payload mix. */
        std::atomic<const meta::TuneRecord*> record{nullptr};
        /** Touch stamp from the global clock (relaxed; approximate
         *  recency is all eviction needs). */
        std::atomic<uint64_t> stamp{0};
    };

    /** Owns every record ever published through a slot (append-only
     *  under insert_mutex_). Hits alias its shared anchor, so a
     *  record outlives both its eviction and the cache itself for as
     *  long as any client still holds it. */
    using Arena = std::vector<std::shared_ptr<const meta::TuneRecord>>;

    /** Probe-set width: a record for hash H may live in any of the
     *  kWays consecutive slots starting at H & mask. */
    static constexpr size_t kWays = 4;

    size_t slotIndex(uint64_t hash) const;

    std::vector<Slot> slots_;
    /** Never reassigned after construction, so readers may copy it
     *  (the aliasing-anchor refcount bump) without synchronization. */
    std::shared_ptr<Arena> arena_;
    /** Global touch clock (relaxed increments; ordering between two
     *  touches of different slots is irrelevant). */
    mutable std::atomic<uint64_t> clock_{1};
    std::atomic<uint64_t> evictions_{0};
    /** Serializes put() only; get() never takes it. */
    std::mutex insert_mutex_;
};

/**
 * Everything the server keeps per target ("gpu", "cpu"): the device
 * model tunes run against, the sharded authoritative database, and the
 * hot cache. Lookup checks the hot cache first and promotes database
 * hits into it; commit writes the database first (improve-only), then
 * refreshes the cache with the database's winner so a slower record can
 * never shadow a faster one in the fast path.
 */
class TargetShard
{
  public:
    TargetShard(int db_shards, size_t hot_slots,
                std::unique_ptr<hwsim::DeviceModel> device);

    struct Hit
    {
        std::shared_ptr<const meta::TuneRecord> record;
        /** Whether the fast path served it (vs. a database read). */
        bool from_hot_cache = false;
    };

    /** Best known record for the workload hash, or nullopt. */
    std::optional<Hit> lookup(uint64_t workload_hash);

    /** Improve-only insert into the database, then hot-cache refresh. */
    void commit(meta::TuneRecord record);

    const hwsim::DeviceModel& device() const { return *device_; }
    meta::ShardedTuningDatabase& database() { return database_; }
    const meta::ShardedTuningDatabase& database() const
    {
        return database_;
    }
    HotCache& hotCache() { return hot_; }

  private:
    std::unique_ptr<hwsim::DeviceModel> device_;
    meta::ShardedTuningDatabase database_;
    HotCache hot_;
};

} // namespace serve
} // namespace tir

#endif // TENSORIR_SERVE_SHARD_H
