/**
 * @file
 * The schedule-serving layer: a long-lived `ScheduleServer` that
 * answers "best schedule for (workload, shape, target)" requests from
 * the persisted tuning database (§5.2's record caching, turned into a
 * service) and tunes what it does not know in the background.
 *
 * Read path: per-target state (serve/shard.h) — a mutex-free hot cache
 * in front of a sharded, reader-writer-locked `ShardedTuningDatabase`.
 * A hit is one atomic load on the hot path; concurrent lookups on
 * different workloads never contend.
 *
 * Miss path: misses coalesce single-flight per (target, workload hash)
 * onto one background `autoTune` job on the shared `ThreadPool`
 * (support/thread_pool.h). Every client that missed gets the same
 * `PendingTune` handle (serve/request.h); the job streams its
 * best-so-far schedule into the handle — and commits it to the
 * database — after every search checkpoint via
 * `TuneOptions::progress`, so waiting clients receive a usable (if
 * improving) schedule long before the search finishes.
 *
 * Shutdown contract: `shutdown()` (also run by the destructor) stops
 * accepting queries, drains the pool (every submitted tune finishes),
 * asserts that no tasks leaked and no tune is still registered
 * in-flight, then optionally publishes one atomic database snapshot
 * per target. Call it after client threads have stopped querying.
 */
#ifndef TENSORIR_SERVE_SERVER_H
#define TENSORIR_SERVE_SERVER_H

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "meta/database.h"
#include "meta/search.h"
#include "serve/request.h"
#include "serve/shard.h"
#include "support/thread_pool.h"

namespace tir {
namespace serve {

/** Server configuration. */
struct ServeOptions
{
    /** Background tuning workers. The server's pool is created with
     *  tune_workers + 1 threads (the pool counts its owner), so this
     *  many tunes run concurrently. Must be >= 1. */
    int tune_workers = 2;
    /** Lock shards per target database (contention granularity of the
     *  authoritative store). */
    int db_shards_per_target = 8;
    /** Hot-cache slots per target (rounded up to a power of two). */
    size_t hot_cache_slots = 256;
    /** Search budget for each background tune. Its `progress` callback
     *  slot is owned by the server (overwritten per job); everything
     *  else passes through to autoTune. Keep parallelism = 1 unless
     *  tune_workers is small: each job may spawn its own nested pool. */
    meta::TuneOptions tune;
    /** Tuner persona for background tunes. */
    meta::TunerStyle style = meta::TunerStyle::kTensorIR;
    /**
     * When non-empty: warm-start and persistence. At first use of a
     * target, records are loaded (tolerantly) from
     * "<prefix>.<target>.db" if that file exists; at shutdown every
     * target's database is atomically snapshotted back to the same
     * path.
     */
    std::string snapshot_prefix;
};

/** Monotonic counters describing server activity (one consistent
 *  snapshot via ScheduleServer::stats). */
struct ServerStats
{
    uint64_t queries = 0;
    /** Queries served by the mutex-free hot cache. */
    uint64_t hot_hits = 0;
    /** Queries served by the sharded database (then promoted). */
    uint64_t shard_hits = 0;
    /** Queries with no schedule available at query time. */
    uint64_t misses = 0;
    /** Misses that joined an already-running tune instead of starting
     *  one (the single-flight collapse). */
    uint64_t coalesced = 0;
    uint64_t tunes_started = 0;
    uint64_t tunes_completed = 0;
    /** Tunes that threw or ended without any valid schedule. */
    uint64_t tunes_failed = 0;
    /** Checkpoint records streamed to clients across all tunes. */
    uint64_t records_streamed = 0;
};

/** Answers schedule queries from the database; tunes misses in the
 *  background. All public methods are thread-safe. */
class ScheduleServer
{
  public:
    explicit ScheduleServer(ServeOptions options = {});
    ~ScheduleServer();

    ScheduleServer(const ScheduleServer&) = delete;
    ScheduleServer& operator=(const ScheduleServer&) = delete;

    /** What a query learned. */
    struct Response
    {
        /** Best schedule known right now; nullptr on a cold miss. */
        std::shared_ptr<const meta::TuneRecord> record;
        /** True when `record` is authoritative: present and no tune for
         *  this workload is in flight. False means a background tune is
         *  (or just started) running — `pending` is set and may stream
         *  something better. */
        bool final = false;
        /** Whether the hot cache served `record` (fast path). */
        bool from_hot_cache = false;
        /** Handle on the in-flight tune; nullptr when none. */
        std::shared_ptr<PendingTune> pending;
    };

    /**
     * Non-blocking query: look up the best known schedule for
     * task.func on task.target. On a miss, starts (or joins — single
     * flight) a background tune and returns its PendingTune handle
     * immediately.
     */
    Response query(const meta::TuneTask& task);

    /**
     * Blocking convenience: query, and on a miss wait up to `timeout`
     * for the first streamed schedule. Returns the best record
     * available within the deadline, or nullopt.
     */
    std::optional<meta::TuneRecord>
    getBest(const meta::TuneTask& task, std::chrono::milliseconds timeout);

    /** Drain background tunes, assert nothing leaked, snapshot each
     *  target database if configured. Idempotent; queries after
     *  shutdown raise FatalError. */
    void shutdown();

    /** One consistent snapshot of the activity counters. */
    ServerStats stats() const;

    /** Tunes currently registered in flight. */
    size_t pendingTunes() const;

    /** Pool tasks not yet finished (0 after shutdown — the "no leaked
     *  pool tasks" assertion the CI smoke job checks). */
    size_t pendingPoolTasks() const { return pool_.pendingTasks(); }

    /** Per-target state, created on first use (exposed for tests and
     *  for pre-seeding a database by hand). */
    TargetShard& target(const std::string& name);

  private:
    using FlightKey = std::pair<std::string, uint64_t>;

    void runTune(std::string target_name, TargetShard* shard,
                 meta::TuneTask task, uint64_t workload_hash,
                 std::shared_ptr<PendingTune> pending);

    ServeOptions options_;

    mutable std::mutex targets_mutex_;
    std::map<std::string, std::unique_ptr<TargetShard>> targets_;

    mutable std::mutex inflight_mutex_;
    std::map<FlightKey, std::shared_ptr<PendingTune>> inflight_;

    std::atomic<bool> accepting_{true};
    std::mutex shutdown_mutex_;
    bool shut_down_ = false;

    // Counters are individually relaxed-atomic; stats() copies them
    // into one ServerStats (each value exact, the set approximately
    // simultaneous — fine for monitoring and test assertions made
    // after drain()).
    std::atomic<uint64_t> queries_{0};
    std::atomic<uint64_t> hot_hits_{0};
    std::atomic<uint64_t> shard_hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> coalesced_{0};
    std::atomic<uint64_t> tunes_started_{0};
    std::atomic<uint64_t> tunes_completed_{0};
    std::atomic<uint64_t> tunes_failed_{0};
    std::atomic<uint64_t> records_streamed_{0};

    /** Last member: workers die before the state they touch. */
    support::ThreadPool pool_;
};

} // namespace serve
} // namespace tir

#endif // TENSORIR_SERVE_SERVER_H
