#include "serve/server.h"

#include <cmath>
#include <fstream>

#include "ir/structural_hash.h"
#include "support/trace.h"

namespace tir {
namespace serve {

namespace {

std::string
snapshotPath(const std::string& prefix, const std::string& target)
{
    return prefix + "." + target + ".db";
}

std::unique_ptr<hwsim::DeviceModel>
deviceFor(const std::string& target)
{
    if (target == "gpu") return std::make_unique<hwsim::GpuDevice>();
    return std::make_unique<hwsim::CpuDevice>();
}

} // namespace

ScheduleServer::ScheduleServer(ServeOptions options)
    : options_(std::move(options)),
      // +1: the pool counts its owning thread, which serves queries
      // instead of tuning, so tune_workers jobs really run in
      // background. submit() requires at least one worker.
      pool_(options_.tune_workers + 1)
{
    TIR_CHECK(options_.tune_workers >= 1)
        << "ScheduleServer needs tune_workers >= 1, got "
        << options_.tune_workers;
}

ScheduleServer::~ScheduleServer()
{
    try {
        shutdown();
    } catch (...) {
        // A destructor must not throw; shutdown() called explicitly
        // reports snapshot/drain failures, the implicit one cannot.
    }
}

TargetShard&
ScheduleServer::target(const std::string& name)
{
    std::lock_guard<std::mutex> lock(targets_mutex_);
    auto it = targets_.find(name);
    if (it != targets_.end()) return *it->second;
    auto shard = std::make_unique<TargetShard>(
        options_.db_shards_per_target, options_.hot_cache_slots,
        deviceFor(name));
    if (!options_.snapshot_prefix.empty()) {
        // Warm start from the previous run's snapshot, if any. Load is
        // tolerant: a torn snapshot cannot exist (saveSnapshot renames
        // atomically), but an old-format or hand-edited file should
        // cost its damaged records, not the whole server.
        std::string path = snapshotPath(options_.snapshot_prefix, name);
        if (std::ifstream(path).good()) {
            meta::LoadReport report;
            shard->database().absorb(
                meta::TuningDatabase::load(path, &report));
        }
    }
    TargetShard& ref = *shard;
    targets_.emplace(name, std::move(shard));
    return ref;
}

ScheduleServer::Response
ScheduleServer::query(const meta::TuneTask& task)
{
    TIR_CHECK(accepting_.load(std::memory_order_acquire))
        << "query on a shut-down ScheduleServer";
    const uint64_t hash = structuralHash(task.func);
    TargetShard& shard = target(task.target);
    queries_.fetch_add(1, std::memory_order_relaxed);

    Response resp;
    std::optional<TargetShard::Hit> hit = shard.lookup(hash);
    if (hit) {
        resp.record = hit->record;
        resp.from_hot_cache = hit->from_hot_cache;
        (hit->from_hot_cache ? hot_hits_ : shard_hits_)
            .fetch_add(1, std::memory_order_relaxed);
    } else {
        misses_.fetch_add(1, std::memory_order_relaxed);
        trace::counterAdd("serve.misses", 1);
    }

    const FlightKey key{task.target, hash};
    std::shared_ptr<PendingTune> started;
    {
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            // Single flight: join the running tune instead of starting
            // another.
            resp.pending = it->second;
            if (!hit) {
                coalesced_.fetch_add(1, std::memory_order_relaxed);
            }
            return resp;
        }
        if (hit) {
            // Known record and no tune in flight: authoritative.
            resp.final = true;
            return resp;
        }
        // Re-check the database under the in-flight lock: a tune may
        // have committed its final record and unregistered itself
        // between our lookup above and here. The job commits *before*
        // erasing its in-flight entry (runTune), so "not in flight"
        // implies "result visible" — without this re-check, the race
        // would start a second tune for an already-tuned workload and
        // break the exactly-once contract.
        if (std::optional<TargetShard::Hit> late = shard.lookup(hash)) {
            resp.record = late->record;
            resp.from_hot_cache = late->from_hot_cache;
            resp.final = true;
            return resp;
        }
        started = std::make_shared<PendingTune>();
        inflight_.emplace(key, started);
    }

    tunes_started_.fetch_add(1, std::memory_order_relaxed);
    trace::counterAdd("serve.tunes_started", 1);
    resp.pending = started;
    pool_.submit([this, target_name = task.target, shard_ptr = &shard,
                  task, hash, started]() mutable {
        runTune(std::move(target_name), shard_ptr, std::move(task),
                hash, std::move(started));
    });
    return resp;
}

std::optional<meta::TuneRecord>
ScheduleServer::getBest(const meta::TuneTask& task,
                        std::chrono::milliseconds timeout)
{
    Response resp = query(task);
    // Any record in hand answers the request, even if a tune is still
    // improving it in the background.
    if (resp.record) return *resp.record;
    if (resp.pending) return resp.pending->waitFirst(timeout);
    return std::nullopt;
}

void
ScheduleServer::runTune(std::string target_name, TargetShard* shard,
                        meta::TuneTask task, uint64_t workload_hash,
                        std::shared_ptr<PendingTune> pending)
{
    auto makeRecord = [&](double latency, std::vector<Decision> decisions,
                          std::string sketch) {
        meta::TuneRecord record;
        record.workload_hash = workload_hash;
        record.workload_name = task.func->name;
        record.latency_us = latency;
        record.decisions = std::move(decisions);
        record.sketch = std::move(sketch);
        return record;
    };

    meta::TuneOptions opts = options_.tune;
    opts.progress = [&](const meta::TuneProgress& p) {
        // Stream only checkpoints that found something runnable.
        if (!std::isfinite(p.best_latency_us)) return;
        meta::TuneRecord record =
            makeRecord(p.best_latency_us, p.best_decisions, p.sketch);
        shard->commit(record);
        records_streamed_.fetch_add(1, std::memory_order_relaxed);
        pending->publish(record);
    };

    bool ok = false;
    try {
        meta::TuneResult result = meta::autoTune(
            task, shard->device(), opts, options_.style,
            /*database=*/nullptr);
        if (std::isfinite(result.best_latency_us)) {
            meta::TuneRecord record =
                makeRecord(result.best_latency_us,
                           std::move(result.best_decisions),
                           std::move(result.best_sketch));
            shard->commit(record);
            records_streamed_.fetch_add(1, std::memory_order_relaxed);
            pending->publish(record);
            ok = true;
        }
    } catch (...) {
        // Contained: a failed tune must not take the server down. The
        // failure is visible through stats and PendingTune::failed.
    }
    if (!ok) tunes_failed_.fetch_add(1, std::memory_order_relaxed);

    // Commit-then-unregister ordering matters: query()'s re-check
    // relies on "no in-flight entry" implying "final record visible".
    {
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        inflight_.erase(FlightKey{target_name, workload_hash});
    }
    pending->finish(ok);
    tunes_completed_.fetch_add(1, std::memory_order_relaxed);
}

void
ScheduleServer::shutdown()
{
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shut_down_) return;
    accepting_.store(false, std::memory_order_release);
    pool_.drain();
    TIR_ICHECK(pool_.pendingTasks() == 0)
        << "pool tasks leaked across shutdown";
    {
        std::lock_guard<std::mutex> ilock(inflight_mutex_);
        TIR_ICHECK(inflight_.empty())
            << "tunes still registered in flight after drain";
    }
    if (!options_.snapshot_prefix.empty()) {
        std::lock_guard<std::mutex> tlock(targets_mutex_);
        for (const auto& [name, shard] : targets_) {
            shard->database().saveSnapshot(
                snapshotPath(options_.snapshot_prefix, name));
        }
    }
    shut_down_ = true;
}

ServerStats
ScheduleServer::stats() const
{
    ServerStats s;
    s.queries = queries_.load(std::memory_order_relaxed);
    s.hot_hits = hot_hits_.load(std::memory_order_relaxed);
    s.shard_hits = shard_hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.coalesced = coalesced_.load(std::memory_order_relaxed);
    s.tunes_started = tunes_started_.load(std::memory_order_relaxed);
    s.tunes_completed = tunes_completed_.load(std::memory_order_relaxed);
    s.tunes_failed = tunes_failed_.load(std::memory_order_relaxed);
    s.records_streamed =
        records_streamed_.load(std::memory_order_relaxed);
    return s;
}

size_t
ScheduleServer::pendingTunes() const
{
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    return inflight_.size();
}

} // namespace serve
} // namespace tir
