/**
 * @file
 * Client-visible handle for an in-flight background tune. The schedule
 * server (serve/server.h) coalesces every cache miss for one
 * (target, workload-hash) pair onto a single `PendingTune` — the
 * single-flight rendezvous — and streams improving records into it as
 * the search completes checkpoints (TuneOptions::progress). Clients
 * hold the handle through a shared_ptr and can block for the first
 * usable schedule (waitFirst), for the final one (waitFinal), or poll
 * (best/done) while doing other work.
 */
#ifndef TENSORIR_SERVE_REQUEST_H
#define TENSORIR_SERVE_REQUEST_H

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>

#include "meta/database.h"

namespace tir {
namespace serve {

/**
 * Rendezvous between one background tuning job and any number of
 * waiting clients. The server publishes the best-so-far record after
 * every search checkpoint and finishes the handle exactly once when the
 * job ends; clients only read. All methods are thread-safe.
 */
class PendingTune
{
  public:
    /** Latest streamed record, or nullopt before the first checkpoint
     *  with a finite latency. */
    std::optional<meta::TuneRecord>
    best() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return best_;
    }

    /**
     * Block until at least one record has been streamed (typically
     * after the initial random population — the miss-to-first-schedule
     * latency the load generator reports), the job finishes, or
     * `timeout` elapses. Returns the best record seen so far; nullopt
     * on timeout-before-first-record or when the job failed without
     * producing any schedule.
     */
    std::optional<meta::TuneRecord>
    waitFirst(std::chrono::milliseconds timeout) const
    {
        std::unique_lock<std::mutex> lock(mutex_);
        updated_.wait_for(lock, timeout,
                          [&] { return best_.has_value() || done_; });
        return best_;
    }

    /** Block until the job finishes (or `timeout` elapses) and return
     *  its final best record. */
    std::optional<meta::TuneRecord>
    waitFinal(std::chrono::milliseconds timeout) const
    {
        std::unique_lock<std::mutex> lock(mutex_);
        updated_.wait_for(lock, timeout, [&] { return done_; });
        return done_ ? best_ : std::nullopt;
    }

    /** Whether the background job has terminated (success or failure). */
    bool
    done() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return done_;
    }

    /** Whether the job terminated without producing a final schedule
     *  (search threw, or every candidate was invalid). Meaningful only
     *  once done(). */
    bool
    failed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return done_ && failed_;
    }

    /** How many records have been streamed so far (monotonic). */
    int
    updates() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return updates_;
    }

    // --- server side -----------------------------------------------

    /** Stream an improving record (latest wins). Server only. */
    void
    publish(const meta::TuneRecord& record)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            best_ = record;
            ++updates_;
        }
        updated_.notify_all();
    }

    /** Mark the job terminated. Server only; called exactly once. */
    void
    finish(bool ok)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            done_ = true;
            failed_ = !ok;
        }
        updated_.notify_all();
    }

  private:
    mutable std::mutex mutex_;
    mutable std::condition_variable updated_;
    std::optional<meta::TuneRecord> best_;
    bool done_ = false;
    bool failed_ = false;
    int updates_ = 0;
};

} // namespace serve
} // namespace tir

#endif // TENSORIR_SERVE_REQUEST_H
