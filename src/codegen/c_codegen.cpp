#include "codegen/c_codegen.h"

#include <set>
#include <sstream>

#include "intrin/tensor_intrin.h"
#include "ir/functor.h"
#include "lower/lower.h"
#include "support/logging.h"

namespace tir {
namespace codegen {

namespace {

std::string
cType(DataType dtype)
{
    if (dtype == DataType::f64()) return "double";
    if (dtype.isFloat()) return "float"; // f16 widened to float
    if (dtype == DataType::i8()) return "int8_t";
    if (dtype == DataType::u8()) return "uint8_t";
    if (dtype == DataType::i64()) return "int64_t";
    if (dtype.isBool()) return "int";
    return "int32_t";
}

/** Find the TensorIntrin whose implementation call uses `op`. */
const TensorIntrin*
intrinForCall(const std::string& op)
{
    for (const std::string& name : TensorIntrin::list()) {
        const TensorIntrin& ti = TensorIntrin::get(name);
        if (ti.impl->kind != StmtKind::kEvaluate) continue;
        const auto& eval = static_cast<const EvaluateNode&>(*ti.impl);
        if (eval.value->kind != ExprKind::kCall) continue;
        if (static_cast<const CallNode&>(*eval.value).op == op) {
            return &ti;
        }
    }
    return nullptr;
}

/** Collects every buffer a function touches. */
class BufferCollector : public StmtExprVisitor
{
  public:
    std::vector<Buffer> buffers;

    void
    add(const Buffer& buffer)
    {
        for (const Buffer& b : buffers) {
            if (b == buffer) return;
        }
        buffers.push_back(buffer);
    }

  protected:
    void
    visitBufferLoad(const BufferLoadNode& node) override
    {
        add(node.buffer);
        StmtExprVisitor::visitBufferLoad(node);
    }
    void
    visitBufferPtr(const BufferPtrNode& node) override
    {
        add(node.buffer);
        StmtExprVisitor::visitBufferPtr(node);
    }
    void
    visitBufferStore(const BufferStoreNode& node) override
    {
        add(node.buffer);
        StmtExprVisitor::visitBufferStore(node);
    }
};

class CEmitter
{
  public:
    std::string
    emitFunction(const PrimFunc& func)
    {
        PrimFunc lowered = lowerToLoops(func);
        TIR_CHECK(isBlockFree(lowered->body))
            << "codegen requires a fully lowered function";

        std::ostringstream body;
        emitStmt(body, lowered->body, 1);

        std::ostringstream out;
        out << "#include <math.h>\n#include <stdint.h>\n\n";
        out << "static inline int64_t tir_floordiv(int64_t a, int64_t "
               "b) {\n    int64_t q = a / b;\n    if ((a % b != 0) && "
               "((a < 0) != (b < 0))) --q;\n    return q;\n}\n";
        out << "static inline int64_t tir_floormod(int64_t a, int64_t "
               "b) {\n    return a - tir_floordiv(a, b) * b;\n}\n\n";
        for (const std::string& helper : mma_helpers_) {
            out << helper << "\n";
        }
        out << "void " << lowered->name << "(";
        for (size_t i = 0; i < lowered->params.size(); ++i) {
            if (i) out << ", ";
            const Buffer& p = lowered->params[i];
            out << cType(p->dtype) << "* restrict " << p->name;
        }
        out << ")\n{\n";
        // Local (intermediate) buffers.
        BufferCollector collector;
        collector.visitStmt(lowered->body);
        std::set<const BufferNode*> params;
        for (const Buffer& p : lowered->params) params.insert(p.get());
        for (const Buffer& b : collector.buffers) {
            if (params.count(b.get())) continue;
            out << "    static " << cType(b->dtype) << " "
                << sanitize(b->name) << "[" << b->numel() << "];\n";
        }
        out << body.str();
        out << "}\n";
        return out.str();
    }

  private:
    static std::string
    sanitize(const std::string& name)
    {
        std::string result = name;
        for (char& c : result) {
            if (!isalnum(static_cast<unsigned char>(c))) c = '_';
        }
        return result;
    }

    std::string
    linearIndex(const Buffer& buffer, const std::vector<Expr>& indices)
    {
        std::string result;
        for (size_t d = 0; d < indices.size(); ++d) {
            std::string idx = emitExpr(indices[d]);
            if (d == 0) {
                result = idx;
            } else {
                result = "(" + result + ") * " +
                         std::to_string(buffer->shapeInt(d)) + " + " +
                         idx;
            }
        }
        return result.empty() ? "0" : result;
    }

    std::string
    emitExpr(const Expr& e)
    {
        switch (e->kind) {
          case ExprKind::kIntImm:
            return std::to_string(
                static_cast<const IntImmNode&>(*e).value);
          case ExprKind::kFloatImm: {
            std::ostringstream os;
            os << static_cast<const FloatImmNode&>(*e).value;
            std::string text = os.str();
            if (text.find('.') == std::string::npos &&
                text.find('e') == std::string::npos) {
                text += ".0";
            }
            return text + "f";
          }
          case ExprKind::kVar:
            return sanitize(static_cast<const VarNode&>(*e).name);
          case ExprKind::kNot:
            return "(!" + emitExpr(static_cast<const NotNode&>(*e).a) +
                   ")";
          case ExprKind::kSelect: {
            const auto& n = static_cast<const SelectNode&>(*e);
            return "(" + emitExpr(n.cond) + " ? " + emitExpr(n.tval) +
                   " : " + emitExpr(n.fval) + ")";
          }
          case ExprKind::kCast: {
            const auto& n = static_cast<const CastNode&>(*e);
            return "((" + cType(n.dtype) + ")" + emitExpr(n.value) +
                   ")";
          }
          case ExprKind::kBufferLoad: {
            const auto& n = static_cast<const BufferLoadNode&>(*e);
            return sanitize(n.buffer->name) + "[" +
                   linearIndex(n.buffer, n.indices) + "]";
          }
          case ExprKind::kBufferPtr: {
            const auto& n = static_cast<const BufferPtrNode&>(*e);
            return "&" + sanitize(n.buffer->name) + "[" +
                   linearIndex(n.buffer, n.indices) + "]";
          }
          case ExprKind::kCall:
            return emitCall(static_cast<const CallNode&>(*e));
          default:
            return emitBinary(static_cast<const BinaryNode&>(*e));
        }
    }

    std::string
    emitBinary(const BinaryNode& n)
    {
        const char* op = nullptr;
        switch (n.kind) {
          case ExprKind::kAdd: op = "+"; break;
          case ExprKind::kSub: op = "-"; break;
          case ExprKind::kMul: op = "*"; break;
          case ExprKind::kDiv: op = "/"; break;
          case ExprKind::kEQ: op = "=="; break;
          case ExprKind::kNE: op = "!="; break;
          case ExprKind::kLT: op = "<"; break;
          case ExprKind::kLE: op = "<="; break;
          case ExprKind::kGT: op = ">"; break;
          case ExprKind::kGE: op = ">="; break;
          case ExprKind::kAnd: op = "&&"; break;
          case ExprKind::kOr: op = "||"; break;
          default: break;
        }
        std::string a = emitExpr(n.a);
        std::string b = emitExpr(n.b);
        if (op) return "(" + a + " " + op + " " + b + ")";
        switch (n.kind) {
          case ExprKind::kFloorDiv:
            return "tir_floordiv(" + a + ", " + b + ")";
          case ExprKind::kFloorMod:
            return "tir_floormod(" + a + ", " + b + ")";
          case ExprKind::kMin:
            if (n.dtype.isFloat()) {
                return "fminf(" + a + ", " + b + ")";
            }
            return "(" + a + " < " + b + " ? " + a + " : " + b + ")";
          case ExprKind::kMax:
            if (n.dtype.isFloat()) {
                return "fmaxf(" + a + ", " + b + ")";
            }
            return "(" + a + " > " + b + " ? " + a + " : " + b + ")";
          default:
            TIR_PANIC << "unsupported binary op in codegen";
        }
    }

    std::string
    emitCall(const CallNode& n)
    {
        static const std::map<std::string, std::string> pure = {
            {"exp", "expf"},   {"sqrt", "sqrtf"}, {"tanh", "tanhf"},
            {"erf", "erff"},   {"log", "logf"},   {"abs", "fabsf"},
        };
        auto it = pure.find(n.op);
        if (it != pure.end()) {
            return it->second + "(" + emitExpr(n.args[0]) + ")";
        }
        if (n.op == "sigmoid") {
            return "(1.0f / (1.0f + expf(-" + emitExpr(n.args[0]) +
                   ")))";
        }
        // Opaque tensor intrinsic: route to a generic tile-MMA helper.
        const TensorIntrin* ti = intrinForCall(n.op);
        TIR_CHECK(ti) << "no codegen rule for call " << n.op;
        TIR_CHECK(n.args.size() == 3 &&
                  n.args[0]->kind == ExprKind::kBufferPtr)
            << "unsupported intrinsic call shape for codegen";
        const auto& c_ptr = static_cast<const BufferPtrNode&>(*n.args[0]);
        const auto& a_ptr = static_cast<const BufferPtrNode&>(*n.args[1]);
        const auto& b_ptr = static_cast<const BufferPtrNode&>(*n.args[2]);
        std::string helper = ensureMmaHelper(*ti);
        auto stride = [](const BufferPtrNode& ptr) {
            return std::to_string(
                ptr.buffer->shapeInt(ptr.buffer->ndim() - 1));
        };
        return helper + "(" + emitExpr(n.args[0]) + ", " +
               stride(c_ptr) + ", " + emitExpr(n.args[1]) + ", " +
               stride(a_ptr) + ", " + emitExpr(n.args[2]) + ", " +
               stride(b_ptr) + ")";
    }

    std::string
    ensureMmaHelper(const TensorIntrin& ti)
    {
        std::string name = "tir_mma_" + std::to_string(ti.tile_m) + "x" +
                           std::to_string(ti.tile_n) + "x" +
                           std::to_string(ti.tile_k) + "_" +
                           cType(ti.in_dtype) + "_" + cType(ti.acc_dtype);
        for (char& c : name) {
            if (!isalnum(static_cast<unsigned char>(c))) c = '_';
        }
        if (emitted_helpers_.insert(name).second) {
            std::ostringstream os;
            os << "static inline void " << name << "("
               << cType(ti.acc_dtype) << "* restrict c, int64_t ldc, "
               << "const " << cType(ti.in_dtype)
               << "* restrict a, int64_t lda, const "
               << cType(ti.in_dtype) << "* restrict b, int64_t ldb)\n"
               << "{\n"
               << "    for (int64_t i = 0; i < " << ti.tile_m
               << "; ++i)\n"
               << "        for (int64_t j = 0; j < " << ti.tile_n
               << "; ++j)\n"
               << "            for (int64_t k = 0; k < " << ti.tile_k
               << "; ++k)\n"
               << "                c[i * ldc + j] += (("
               << cType(ti.acc_dtype) << ")a[i * lda + k]) * (("
               << cType(ti.acc_dtype) << ")b[k * ldb + j]);\n"
               << "}\n";
            mma_helpers_.push_back(os.str());
        }
        return name;
    }

    void
    indent(std::ostringstream& os, int level)
    {
        for (int i = 0; i < level; ++i) os << "    ";
    }

    void
    emitStmt(std::ostringstream& os, const Stmt& s, int level)
    {
        switch (s->kind) {
          case StmtKind::kBufferStore: {
            const auto& n = static_cast<const BufferStoreNode&>(*s);
            indent(os, level);
            os << sanitize(n.buffer->name) << "["
               << linearIndex(n.buffer, n.indices)
               << "] = " << emitExpr(n.value) << ";\n";
            return;
          }
          case StmtKind::kEvaluate: {
            // Storage barriers order GPU threads; the emitted C runs
            // thread loops sequentially, so they compile away.
            if (asStorageSync(*s)) {
                indent(os, level);
                os << "/* storage_sync */;\n";
                return;
            }
            const auto& n = static_cast<const EvaluateNode&>(*s);
            indent(os, level);
            os << emitExpr(n.value) << ";\n";
            return;
          }
          case StmtKind::kSeq: {
            for (const Stmt& sub :
                 static_cast<const SeqStmtNode&>(*s).seq) {
                emitStmt(os, sub, level);
            }
            return;
          }
          case StmtKind::kIfThenElse: {
            const auto& n = static_cast<const IfThenElseNode&>(*s);
            indent(os, level);
            os << "if (" << emitExpr(n.cond) << ") {\n";
            emitStmt(os, n.then_case, level + 1);
            if (n.else_case) {
                indent(os, level);
                os << "} else {\n";
                emitStmt(os, n.else_case, level + 1);
            }
            indent(os, level);
            os << "}\n";
            return;
          }
          case StmtKind::kFor: {
            const auto& n = static_cast<const ForNode&>(*s);
            TIR_CHECK(n.for_kind != ForKind::kThreadBinding)
                << "the C backend targets CPU functions only";
            indent(os, level);
            if (n.for_kind == ForKind::kParallel) {
                os << "/* parallel */ ";
            } else if (n.for_kind == ForKind::kVectorized) {
                os << "/* vectorize */ ";
            } else if (n.for_kind == ForKind::kUnrolled) {
                os << "/* unroll */ ";
            }
            std::string v = sanitize(n.loop_var->name);
            os << "for (int64_t " << v << " = " << emitExpr(n.min)
               << "; " << v << " < " << emitExpr(n.min) << " + "
               << emitExpr(n.extent) << "; ++" << v << ") {\n";
            emitStmt(os, n.body, level + 1);
            indent(os, level);
            os << "}\n";
            return;
          }
          default:
            TIR_PANIC << "block encountered after lowering";
        }
    }

    std::set<std::string> emitted_helpers_;
    std::vector<std::string> mma_helpers_;
};

} // namespace

std::string
emitC(const PrimFunc& func)
{
    CEmitter emitter;
    return emitter.emitFunction(func);
}

std::string
emitStandaloneC(const PrimFunc& func, int num_outputs)
{
    std::ostringstream os;
    os << emitC(func);
    os << "\n#include <stdio.h>\n\nint main(void)\n{\n";
    for (const Buffer& p : func->params) {
        os << "    static " << cType(p->dtype) << " " << p->name << "["
           << p->numel() << "];\n";
    }
    size_t first_output =
        func->params.size() - static_cast<size_t>(num_outputs);
    for (size_t i = 0; i < first_output; ++i) {
        const Buffer& p = func->params[i];
        os << "    for (int64_t i = 0; i < " << p->numel()
           << "; ++i) " << p->name << "[i] = (" << cType(p->dtype)
           << ")((i % 7) - 3);\n";
    }
    os << "    " << func->name << "(";
    for (size_t i = 0; i < func->params.size(); ++i) {
        if (i) os << ", ";
        os << func->params[i]->name;
    }
    os << ");\n";
    for (size_t i = first_output; i < func->params.size(); ++i) {
        const Buffer& p = func->params[i];
        os << "    { double sum = 0; for (int64_t i = 0; i < "
           << p->numel() << "; ++i) sum += (double)" << p->name
           << "[i]; printf(\"%.6e\\n\", sum); }\n";
    }
    os << "    return 0;\n}\n";
    return os.str();
}

} // namespace codegen
} // namespace tir
