#include "codegen/c_codegen.h"

#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "intrin/tensor_intrin.h"
#include "ir/functor.h"
#include "lower/lower.h"
#include "support/logging.h"

namespace tir {
namespace codegen {

namespace {

std::string
cType(DataType dtype)
{
    if (dtype == DataType::f64()) return "double";
    if (dtype.isFloat()) return "float"; // f16 widened to float
    if (dtype == DataType::i8()) return "int8_t";
    if (dtype == DataType::u8()) return "uint8_t";
    if (dtype == DataType::i64()) return "int64_t";
    if (dtype.isBool()) return "int";
    return "int32_t";
}

/** Find the TensorIntrin whose implementation call uses `op`. */
const TensorIntrin*
intrinForCall(const std::string& op)
{
    for (const std::string& name : TensorIntrin::list()) {
        const TensorIntrin& ti = TensorIntrin::get(name);
        if (ti.impl->kind != StmtKind::kEvaluate) continue;
        const auto& eval = static_cast<const EvaluateNode&>(*ti.impl);
        if (eval.value->kind != ExprKind::kCall) continue;
        if (static_cast<const CallNode&>(*eval.value).op == op) {
            return &ti;
        }
    }
    return nullptr;
}

/** Collects every buffer a function touches. */
class BufferCollector : public StmtExprVisitor
{
  public:
    std::vector<Buffer> buffers;

    void
    add(const Buffer& buffer)
    {
        for (const Buffer& b : buffers) {
            if (b == buffer) return;
        }
        buffers.push_back(buffer);
    }

  protected:
    void
    visitBufferLoad(const BufferLoadNode& node) override
    {
        add(node.buffer);
        StmtExprVisitor::visitBufferLoad(node);
    }
    void
    visitBufferPtr(const BufferPtrNode& node) override
    {
        add(node.buffer);
        StmtExprVisitor::visitBufferPtr(node);
    }
    void
    visitBufferStore(const BufferStoreNode& node) override
    {
        add(node.buffer);
        StmtExprVisitor::visitBufferStore(node);
    }
};

class CEmitter
{
  public:
    std::string
    emitFunction(const PrimFunc& func)
    {
        PrimFunc lowered = lowerToLoops(func);
        TIR_CHECK(isBlockFree(lowered->body))
            << "codegen requires a fully lowered function";

        std::ostringstream body;
        emitStmt(body, lowered->body, 1);

        std::ostringstream out;
        out << "#include <math.h>\n#include <stdint.h>\n\n";
        out << "static inline int64_t tir_floordiv(int64_t a, int64_t "
               "b) {\n    int64_t q = a / b;\n    if ((a % b != 0) && "
               "((a < 0) != (b < 0))) --q;\n    return q;\n}\n";
        out << "static inline int64_t tir_floormod(int64_t a, int64_t "
               "b) {\n    return a - tir_floordiv(a, b) * b;\n}\n\n";
        for (const std::string& helper : mma_helpers_) {
            out << helper << "\n";
        }
        out << "void " << lowered->name << "(";
        for (size_t i = 0; i < lowered->params.size(); ++i) {
            if (i) out << ", ";
            const Buffer& p = lowered->params[i];
            out << cType(p->dtype) << "* restrict " << p->name;
        }
        out << ")\n{\n";
        // Local (intermediate) buffers.
        BufferCollector collector;
        collector.visitStmt(lowered->body);
        std::set<const BufferNode*> params;
        for (const Buffer& p : lowered->params) params.insert(p.get());
        for (const Buffer& b : collector.buffers) {
            if (params.count(b.get())) continue;
            out << "    static " << cType(b->dtype) << " "
                << sanitize(b->name) << "[" << b->numel() << "];\n";
        }
        out << body.str();
        out << "}\n";
        return out.str();
    }

  private:
    static std::string
    sanitize(const std::string& name)
    {
        std::string result = name;
        for (char& c : result) {
            if (!isalnum(static_cast<unsigned char>(c))) c = '_';
        }
        return result;
    }

    std::string
    linearIndex(const Buffer& buffer, const std::vector<Expr>& indices)
    {
        std::string result;
        for (size_t d = 0; d < indices.size(); ++d) {
            std::string idx = emitExpr(indices[d]);
            if (d == 0) {
                result = idx;
            } else {
                result = "(" + result + ") * " +
                         std::to_string(buffer->shapeInt(d)) + " + " +
                         idx;
            }
        }
        return result.empty() ? "0" : result;
    }

    std::string
    emitExpr(const Expr& e)
    {
        switch (e->kind) {
          case ExprKind::kIntImm:
            return std::to_string(
                static_cast<const IntImmNode&>(*e).value);
          case ExprKind::kFloatImm: {
            std::ostringstream os;
            os << static_cast<const FloatImmNode&>(*e).value;
            std::string text = os.str();
            if (text.find('.') == std::string::npos &&
                text.find('e') == std::string::npos) {
                text += ".0";
            }
            return text + "f";
          }
          case ExprKind::kVar:
            return sanitize(static_cast<const VarNode&>(*e).name);
          case ExprKind::kNot:
            return "(!" + emitExpr(static_cast<const NotNode&>(*e).a) +
                   ")";
          case ExprKind::kSelect: {
            const auto& n = static_cast<const SelectNode&>(*e);
            return "(" + emitExpr(n.cond) + " ? " + emitExpr(n.tval) +
                   " : " + emitExpr(n.fval) + ")";
          }
          case ExprKind::kCast: {
            const auto& n = static_cast<const CastNode&>(*e);
            return "((" + cType(n.dtype) + ")" + emitExpr(n.value) +
                   ")";
          }
          case ExprKind::kBufferLoad: {
            const auto& n = static_cast<const BufferLoadNode&>(*e);
            return sanitize(n.buffer->name) + "[" +
                   linearIndex(n.buffer, n.indices) + "]";
          }
          case ExprKind::kBufferPtr: {
            const auto& n = static_cast<const BufferPtrNode&>(*e);
            return "&" + sanitize(n.buffer->name) + "[" +
                   linearIndex(n.buffer, n.indices) + "]";
          }
          case ExprKind::kCall:
            return emitCall(static_cast<const CallNode&>(*e));
          default:
            return emitBinary(static_cast<const BinaryNode&>(*e));
        }
    }

    std::string
    emitBinary(const BinaryNode& n)
    {
        const char* op = nullptr;
        switch (n.kind) {
          case ExprKind::kAdd: op = "+"; break;
          case ExprKind::kSub: op = "-"; break;
          case ExprKind::kMul: op = "*"; break;
          case ExprKind::kDiv: op = "/"; break;
          case ExprKind::kEQ: op = "=="; break;
          case ExprKind::kNE: op = "!="; break;
          case ExprKind::kLT: op = "<"; break;
          case ExprKind::kLE: op = "<="; break;
          case ExprKind::kGT: op = ">"; break;
          case ExprKind::kGE: op = ">="; break;
          case ExprKind::kAnd: op = "&&"; break;
          case ExprKind::kOr: op = "||"; break;
          default: break;
        }
        std::string a = emitExpr(n.a);
        std::string b = emitExpr(n.b);
        if (op) return "(" + a + " " + op + " " + b + ")";
        switch (n.kind) {
          case ExprKind::kFloorDiv:
            return "tir_floordiv(" + a + ", " + b + ")";
          case ExprKind::kFloorMod:
            return "tir_floormod(" + a + ", " + b + ")";
          case ExprKind::kMin:
            if (n.dtype.isFloat()) {
                return "fminf(" + a + ", " + b + ")";
            }
            return "(" + a + " < " + b + " ? " + a + " : " + b + ")";
          case ExprKind::kMax:
            if (n.dtype.isFloat()) {
                return "fmaxf(" + a + ", " + b + ")";
            }
            return "(" + a + " > " + b + " ? " + a + " : " + b + ")";
          default:
            TIR_PANIC << "unsupported binary op in codegen";
        }
    }

    std::string
    emitCall(const CallNode& n)
    {
        static const std::map<std::string, std::string> pure = {
            {"exp", "expf"},   {"sqrt", "sqrtf"}, {"tanh", "tanhf"},
            {"erf", "erff"},   {"log", "logf"},   {"abs", "fabsf"},
        };
        auto it = pure.find(n.op);
        if (it != pure.end()) {
            return it->second + "(" + emitExpr(n.args[0]) + ")";
        }
        if (n.op == "sigmoid") {
            return "(1.0f / (1.0f + expf(-" + emitExpr(n.args[0]) +
                   ")))";
        }
        // Opaque tensor intrinsic: route to a generic tile-MMA helper.
        const TensorIntrin* ti = intrinForCall(n.op);
        TIR_CHECK(ti) << "no codegen rule for call " << n.op;
        TIR_CHECK(n.args.size() == 3 &&
                  n.args[0]->kind == ExprKind::kBufferPtr)
            << "unsupported intrinsic call shape for codegen";
        const auto& c_ptr = static_cast<const BufferPtrNode&>(*n.args[0]);
        const auto& a_ptr = static_cast<const BufferPtrNode&>(*n.args[1]);
        const auto& b_ptr = static_cast<const BufferPtrNode&>(*n.args[2]);
        std::string helper = ensureMmaHelper(*ti);
        auto stride = [](const BufferPtrNode& ptr) {
            return std::to_string(
                ptr.buffer->shapeInt(ptr.buffer->ndim() - 1));
        };
        return helper + "(" + emitExpr(n.args[0]) + ", " +
               stride(c_ptr) + ", " + emitExpr(n.args[1]) + ", " +
               stride(a_ptr) + ", " + emitExpr(n.args[2]) + ", " +
               stride(b_ptr) + ")";
    }

    std::string
    ensureMmaHelper(const TensorIntrin& ti)
    {
        std::string name = "tir_mma_" + std::to_string(ti.tile_m) + "x" +
                           std::to_string(ti.tile_n) + "x" +
                           std::to_string(ti.tile_k) + "_" +
                           cType(ti.in_dtype) + "_" + cType(ti.acc_dtype);
        for (char& c : name) {
            if (!isalnum(static_cast<unsigned char>(c))) c = '_';
        }
        if (emitted_helpers_.insert(name).second) {
            std::ostringstream os;
            os << "static inline void " << name << "("
               << cType(ti.acc_dtype) << "* restrict c, int64_t ldc, "
               << "const " << cType(ti.in_dtype)
               << "* restrict a, int64_t lda, const "
               << cType(ti.in_dtype) << "* restrict b, int64_t ldb)\n"
               << "{\n"
               << "    for (int64_t i = 0; i < " << ti.tile_m
               << "; ++i)\n"
               << "        for (int64_t j = 0; j < " << ti.tile_n
               << "; ++j)\n"
               << "            for (int64_t k = 0; k < " << ti.tile_k
               << "; ++k)\n"
               << "                c[i * ldc + j] += (("
               << cType(ti.acc_dtype) << ")a[i * lda + k]) * (("
               << cType(ti.acc_dtype) << ")b[k * ldb + j]);\n"
               << "}\n";
            mma_helpers_.push_back(os.str());
        }
        return name;
    }

    void
    indent(std::ostringstream& os, int level)
    {
        for (int i = 0; i < level; ++i) os << "    ";
    }

    void
    emitStmt(std::ostringstream& os, const Stmt& s, int level)
    {
        switch (s->kind) {
          case StmtKind::kBufferStore: {
            const auto& n = static_cast<const BufferStoreNode&>(*s);
            indent(os, level);
            os << sanitize(n.buffer->name) << "["
               << linearIndex(n.buffer, n.indices)
               << "] = " << emitExpr(n.value) << ";\n";
            return;
          }
          case StmtKind::kEvaluate: {
            // Storage barriers order GPU threads; the emitted C runs
            // thread loops sequentially, so they compile away.
            if (asStorageSync(*s)) {
                indent(os, level);
                os << "/* storage_sync */;\n";
                return;
            }
            const auto& n = static_cast<const EvaluateNode&>(*s);
            indent(os, level);
            os << emitExpr(n.value) << ";\n";
            return;
          }
          case StmtKind::kSeq: {
            for (const Stmt& sub :
                 static_cast<const SeqStmtNode&>(*s).seq) {
                emitStmt(os, sub, level);
            }
            return;
          }
          case StmtKind::kIfThenElse: {
            const auto& n = static_cast<const IfThenElseNode&>(*s);
            indent(os, level);
            os << "if (" << emitExpr(n.cond) << ") {\n";
            emitStmt(os, n.then_case, level + 1);
            if (n.else_case) {
                indent(os, level);
                os << "} else {\n";
                emitStmt(os, n.else_case, level + 1);
            }
            indent(os, level);
            os << "}\n";
            return;
          }
          case StmtKind::kFor: {
            const auto& n = static_cast<const ForNode&>(*s);
            TIR_CHECK(n.for_kind != ForKind::kThreadBinding)
                << "the C backend targets CPU functions only";
            indent(os, level);
            if (n.for_kind == ForKind::kParallel) {
                os << "/* parallel */ ";
            } else if (n.for_kind == ForKind::kVectorized) {
                os << "/* vectorize */ ";
            } else if (n.for_kind == ForKind::kUnrolled) {
                os << "/* unroll */ ";
            }
            std::string v = sanitize(n.loop_var->name);
            os << "for (int64_t " << v << " = " << emitExpr(n.min)
               << "; " << v << " < " << emitExpr(n.min) << " + "
               << emitExpr(n.extent) << "; ++" << v << ") {\n";
            emitStmt(os, n.body, level + 1);
            indent(os, level);
            os << "}\n";
            return;
          }
          default:
            TIR_PANIC << "block encountered after lowering";
        }
    }

    std::set<std::string> emitted_helpers_;
    std::vector<std::string> mma_helpers_;
};

/**
 * Emitter for the native execution tier (runtime/jit.h). Unlike
 * CEmitter, which produces portable typed C, this one is a *semantic
 * clone* of the interpreter/VM: every buffer is the runtime's raw
 * `double*` storage, index/predicate arithmetic happens in int64 with
 * floor division semantics, value arithmetic happens in double, and
 * domain crossings (loads in int context, casts, stores of int values)
 * use exactly the conversions `Interpreter::evalInt` / `evalValue`
 * apply. Fuel is charged at every statement head — the same accounting
 * points as `Interpreter::exec` and the VM's kStep — except that the
 * native tier executes the *lowered* statement stream, so absolute
 * step counts differ from the other engines (documented in
 * docs/EXECUTION.md).
 */
class JitEmitter
{
  public:
    JitSource
    emit(const PrimFunc& func)
    {
        PrimFunc lowered = lowerToLoops(func);
        TIR_CHECK(isBlockFree(lowered->body))
            << "the native tier requires a fully lowered function";

        for (const Buffer& p : lowered->params) slotOf(p);
        out_.num_params = lowered->params.size();

        std::ostringstream body;
        emitStmt(body, lowered->body, 1);

        std::ostringstream os;
        os << "/* TensorIR native-tier kernel: " << lowered->name
           << " (emitted by codegen::emitJitC) */\n";
        os << "#include <math.h>\n#include <stdint.h>\n\n";
        os << "static inline int64_t tir_floordiv(int64_t a, int64_t "
              "b) {\n    int64_t q = a / b;\n    if ((a % b != 0) && "
              "((a < 0) != (b < 0))) --q;\n    return q;\n}\n";
        os << "static inline int64_t tir_floormod(int64_t a, int64_t "
              "b) {\n    return a - tir_floordiv(a, b) * b;\n}\n";
        // Min/max mirror std::min/std::max operand selection exactly
        // (returns the first operand on ties and on unordered NaN
        // comparisons), so the native tier picks the same NaN payloads
        // the other engines do.
        os << "static inline int64_t tir_imin(int64_t a, int64_t b) "
              "{ return b < a ? b : a; }\n";
        os << "static inline int64_t tir_imax(int64_t a, int64_t b) "
              "{ return a < b ? b : a; }\n";
        os << "static inline double tir_fmin(double a, double b) "
              "{ return b < a ? b : a; }\n";
        os << "static inline double tir_fmax(double a, double b) "
              "{ return a < b ? b : a; }\n";
        os << "static inline int64_t tir_f2i(double v) "
              "{ return (int64_t)trunc(v); }\n\n";
        for (const std::string& helper : mma_helpers_) {
            os << helper << "\n";
        }
        os << "#define TIR_STEP() do { if (tir_limit && ++tir_steps > "
              "tir_limit) return 1; } while (0)\n\n";
        os << "int64_t\n"
           << kEntrySymbol
           << "(double** tir_bufs, int64_t tir_limit)\n{\n"
           << "    int64_t tir_steps = 0;\n"
           << "    (void)tir_steps;\n";
        for (size_t s = 0; s < out_.buffers.size(); ++s) {
            os << "    double* tir_b" << s << " = tir_bufs[" << s
               << "];\n";
        }
        os << "\n" << body.str();
        os << "    return 0;\n}\n";
        out_.code = os.str();
        out_.entry_symbol = kEntrySymbol;
        return std::move(out_);
    }

  private:
    static constexpr const char* kEntrySymbol = "tir_entry";

    /** Stable, collision-free C name for a VarNode (two distinct loop
     *  variables may share a source name after scheduling). */
    std::string
    nameOf(const VarNode* v)
    {
        auto it = var_names_.find(v);
        if (it != var_names_.end()) return it->second;
        std::string base = v->name;
        for (char& c : base) {
            if (!isalnum(static_cast<unsigned char>(c))) c = '_';
        }
        std::string name =
            "v" + std::to_string(var_names_.size()) + "_" + base;
        var_names_[v] = name;
        return name;
    }

    size_t
    slotOf(const Buffer& buffer)
    {
        auto it = slot_of_.find(buffer.get());
        if (it != slot_of_.end()) return it->second;
        size_t slot = out_.buffers.size();
        out_.buffers.push_back(buffer);
        slot_of_[buffer.get()] = slot;
        return slot;
    }

    std::string
    bufName(const Buffer& buffer)
    {
        return "tir_b" + std::to_string(slotOf(buffer));
    }

    /** Row-major Horner offset, the image of Interpreter::linearOffset. */
    std::string
    offsetExpr(const Buffer& buffer, const std::vector<Expr>& indices)
    {
        TIR_ICHECK(indices.size() == buffer->ndim())
            << "buffer " << buffer->name << " has rank "
            << buffer->ndim() << " but the access supplies "
            << indices.size() << " indices";
        std::string result;
        for (size_t d = 0; d < indices.size(); ++d) {
            std::string idx = emitInt(indices[d]);
            if (d == 0) {
                result = idx;
            } else {
                result = "(" + result + ") * INT64_C(" +
                         std::to_string(buffer->shapeInt(d)) + ") + " +
                         idx;
            }
        }
        return result.empty() ? "0" : result;
    }

    /** Exact double literal (C99 hexadecimal float). */
    static std::string
    floatLiteral(double v)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%a", v);
        return buf;
    }

    /** Mirrors Interpreter::evalInt; the result is an int64 C rvalue. */
    std::string
    emitInt(const Expr& expr)
    {
        switch (expr->kind) {
          case ExprKind::kIntImm:
            return "INT64_C(" +
                   std::to_string(
                       static_cast<const IntImmNode&>(*expr).value) +
                   ")";
          case ExprKind::kFloatImm:
            // evalInt truncates a float immediate at evaluation time;
            // fold the same truncation at emission time.
            return "INT64_C(" +
                   std::to_string(static_cast<int64_t>(
                       static_cast<const FloatImmNode&>(*expr).value)) +
                   ")";
          case ExprKind::kVar:
            return nameOf(static_cast<const VarNode*>(expr.get()));
          case ExprKind::kCast: {
            const Expr& inner =
                static_cast<const CastNode&>(*expr).value;
            if (inner->dtype.isFloat()) {
                return "tir_f2i(" + emitValue(inner) + ")";
            }
            return emitInt(inner);
          }
          case ExprKind::kBufferLoad: {
            const auto& n = static_cast<const BufferLoadNode&>(*expr);
            // Truncating double -> int64 cast, as evalInt's load does.
            return "(int64_t)" + bufName(n.buffer) + "[" +
                   offsetExpr(n.buffer, n.indices) + "]";
          }
          case ExprKind::kNot:
            return "((" +
                   emitInt(static_cast<const NotNode&>(*expr).a) +
                   ") ? INT64_C(0) : INT64_C(1))";
          case ExprKind::kSelect: {
            const auto& n = static_cast<const SelectNode&>(*expr);
            return "((" + emitInt(n.cond) + ") ? (" +
                   emitInt(n.tval) + ") : (" + emitInt(n.fval) + "))";
          }
          default: {
            const auto& n = static_cast<const BinaryNode&>(*expr);
            std::string a = emitInt(n.a);
            std::string b = emitInt(n.b);
            switch (expr->kind) {
              case ExprKind::kAdd: return "(" + a + " + " + b + ")";
              case ExprKind::kSub: return "(" + a + " - " + b + ")";
              case ExprKind::kMul: return "(" + a + " * " + b + ")";
              case ExprKind::kFloorDiv:
                return "tir_floordiv(" + a + ", " + b + ")";
              case ExprKind::kFloorMod:
                return "tir_floormod(" + a + ", " + b + ")";
              case ExprKind::kMin:
                return "tir_imin(" + a + ", " + b + ")";
              case ExprKind::kMax:
                return "tir_imax(" + a + ", " + b + ")";
              case ExprKind::kEQ:
                return "(int64_t)(" + a + " == " + b + ")";
              case ExprKind::kNE:
                return "(int64_t)(" + a + " != " + b + ")";
              case ExprKind::kLT:
                return "(int64_t)(" + a + " < " + b + ")";
              case ExprKind::kLE:
                return "(int64_t)(" + a + " <= " + b + ")";
              case ExprKind::kGT:
                return "(int64_t)(" + a + " > " + b + ")";
              case ExprKind::kGE:
                return "(int64_t)(" + a + " >= " + b + ")";
              case ExprKind::kAnd:
                return "(int64_t)(" + a + " && " + b + ")";
              case ExprKind::kOr:
                return "(int64_t)(" + a + " || " + b + ")";
              default:
                TIR_PANIC
                    << "cannot integer-evaluate expression kind";
            }
          }
        }
    }

    /** Mirrors Interpreter::evalValue; the result is a double rvalue. */
    std::string
    emitValue(const Expr& expr)
    {
        switch (expr->kind) {
          case ExprKind::kIntImm:
            return floatLiteral(static_cast<double>(
                static_cast<const IntImmNode&>(*expr).value));
          case ExprKind::kFloatImm:
            return floatLiteral(
                static_cast<const FloatImmNode&>(*expr).value);
          case ExprKind::kVar:
            return "(double)" +
                   nameOf(static_cast<const VarNode*>(expr.get()));
          case ExprKind::kCast: {
            const auto& n = static_cast<const CastNode&>(*expr);
            std::string v = emitValue(n.value);
            if (n.dtype.isInt() || n.dtype.isBool()) {
                return "trunc(" + v + ")";
            }
            return v;
          }
          case ExprKind::kNot:
            return "((" +
                   emitValue(static_cast<const NotNode&>(*expr).a) +
                   ") == 0.0 ? 1.0 : 0.0)";
          case ExprKind::kSelect: {
            const auto& n = static_cast<const SelectNode&>(*expr);
            return "((" + emitValue(n.cond) + ") != 0.0 ? (" +
                   emitValue(n.tval) + ") : (" + emitValue(n.fval) +
                   "))";
          }
          case ExprKind::kBufferLoad: {
            const auto& n = static_cast<const BufferLoadNode&>(*expr);
            return bufName(n.buffer) + "[" +
                   offsetExpr(n.buffer, n.indices) + "]";
          }
          case ExprKind::kBufferPtr:
            TIR_PANIC << "BufferPtr evaluated as a value";
          case ExprKind::kCall: {
            const auto& n = static_cast<const CallNode&>(*expr);
            // Double-precision libm, the same calls the interpreter
            // and the VM make (not the float variants emitC uses).
            static const std::map<std::string, std::string> pure = {
                {"exp", "exp"},   {"sqrt", "sqrt"}, {"tanh", "tanh"},
                {"erf", "erf"},   {"log", "log"},   {"abs", "fabs"},
            };
            auto it = pure.find(n.op);
            if (it != pure.end()) {
                return it->second + "(" + emitValue(n.args[0]) + ")";
            }
            if (n.op == "sigmoid") {
                return "(1.0 / (1.0 + exp(-(" + emitValue(n.args[0]) +
                       "))))";
            }
            TIR_FATAL << "unknown pure call in value position: "
                      << n.op;
          }
          default: {
            if (!expr->dtype.isFloat()) {
                return "(double)(" + emitInt(expr) + ")";
            }
            const auto& n = static_cast<const BinaryNode&>(*expr);
            std::string a = emitValue(n.a);
            std::string b = emitValue(n.b);
            switch (expr->kind) {
              case ExprKind::kAdd: return "(" + a + " + " + b + ")";
              case ExprKind::kSub: return "(" + a + " - " + b + ")";
              case ExprKind::kMul: return "(" + a + " * " + b + ")";
              case ExprKind::kDiv: return "(" + a + " / " + b + ")";
              case ExprKind::kMin:
                return "tir_fmin(" + a + ", " + b + ")";
              case ExprKind::kMax:
                return "tir_fmax(" + a + ", " + b + ")";
              default:
                TIR_PANIC << "cannot value-evaluate expression kind";
            }
          }
        }
    }

    /** Tile-MMA helper in the double domain, accumulation order
     *  identical to the registered tileMma runtime semantics (a local
     *  accumulator per output cell, added to C once). */
    std::string
    ensureMmaHelper(const TensorIntrin& ti)
    {
        std::string name = "tir_mma_" + std::to_string(ti.tile_m) +
                           "x" + std::to_string(ti.tile_n) + "x" +
                           std::to_string(ti.tile_k);
        if (emitted_helpers_.insert(name).second) {
            std::ostringstream os;
            os << "static void " << name
               << "(double* c, int64_t ldc, const double* a, "
                  "int64_t lda, const double* b, int64_t ldb)\n"
               << "{\n"
               << "    for (int64_t i = 0; i < " << ti.tile_m
               << "; ++i) {\n"
               << "        for (int64_t j = 0; j < " << ti.tile_n
               << "; ++j) {\n"
               << "            double acc = 0;\n"
               << "            for (int64_t k = 0; k < " << ti.tile_k
               << "; ++k) {\n"
               << "                acc += a[i * lda + k] * "
                  "b[k * ldb + j];\n"
               << "            }\n"
               << "            c[i * ldc + j] += acc;\n"
               << "        }\n"
               << "    }\n"
               << "}\n";
            mma_helpers_.push_back(os.str());
        }
        return name;
    }

    void
    emitIntrin(std::ostringstream& os, const CallNode& call, int level)
    {
        const TensorIntrin* ti = intrinForCall(call.op);
        TIR_CHECK(ti) << "no native-tier rule for intrinsic call "
                      << call.op;
        TIR_CHECK(call.args.size() == 3 &&
                  call.args[0]->kind == ExprKind::kBufferPtr &&
                  call.args[1]->kind == ExprKind::kBufferPtr &&
                  call.args[2]->kind == ExprKind::kBufferPtr)
            << "unsupported intrinsic call shape for the native tier";
        std::string helper = ensureMmaHelper(*ti);
        indent(os, level);
        os << helper << "(";
        for (size_t i = 0; i < 3; ++i) {
            const auto& ptr =
                static_cast<const BufferPtrNode&>(*call.args[i]);
            // Row stride = innermost extent of the backing buffer,
            // matching the runtime semantics' rowStride().
            int64_t ld = ptr.buffer->shapeInt(ptr.buffer->ndim() - 1);
            if (i) os << ", ";
            os << bufName(ptr.buffer) << " + ("
               << offsetExpr(ptr.buffer, ptr.indices) << "), INT64_C("
               << ld << ")";
        }
        os << ");\n";
    }

    void
    indent(std::ostringstream& os, int level)
    {
        for (int i = 0; i < level; ++i) os << "    ";
    }

    /** Mirrors Interpreter::exec on the lowered statement stream,
     *  charging fuel at every statement head. */
    void
    emitStmt(std::ostringstream& os, const Stmt& s, int level)
    {
        indent(os, level);
        os << "TIR_STEP();\n";
        switch (s->kind) {
          case StmtKind::kBufferStore: {
            const auto& n = static_cast<const BufferStoreNode&>(*s);
            // Int-typed values are computed in the integer domain and
            // widened on store, exactly like the VM's ItoF-then-StoreF.
            std::string value =
                n.value->dtype.isFloat()
                    ? emitValue(n.value)
                    : "(double)(" + emitInt(n.value) + ")";
            indent(os, level);
            os << bufName(n.buffer) << "["
               << offsetExpr(n.buffer, n.indices) << "] = " << value
               << ";\n";
            return;
          }
          case StmtKind::kEvaluate: {
            // Storage barriers order GPU threads; the native tier runs
            // thread loops sequentially, so the statement is fuel-only.
            if (asStorageSync(*s)) {
                indent(os, level);
                os << "/* storage_sync */;\n";
                return;
            }
            const auto& n = static_cast<const EvaluateNode&>(*s);
            TIR_ICHECK(n.value->kind == ExprKind::kCall)
                << "Evaluate expects an intrinsic call";
            emitIntrin(os, static_cast<const CallNode&>(*n.value),
                       level);
            return;
          }
          case StmtKind::kSeq: {
            for (const Stmt& sub :
                 static_cast<const SeqStmtNode&>(*s).seq) {
                emitStmt(os, sub, level);
            }
            return;
          }
          case StmtKind::kIfThenElse: {
            const auto& n = static_cast<const IfThenElseNode&>(*s);
            indent(os, level);
            os << "if (" << emitInt(n.cond) << ") {\n";
            emitStmt(os, n.then_case, level + 1);
            if (n.else_case) {
                indent(os, level);
                os << "} else {\n";
                emitStmt(os, n.else_case, level + 1);
            }
            indent(os, level);
            os << "}\n";
            return;
          }
          case StmtKind::kFor: {
            const auto& n = static_cast<const ForNode&>(*s);
            TIR_CHECK(n.for_kind != ForKind::kThreadBinding)
                << "the native tier targets CPU functions only";
            // Bounds are evaluated once, before the loop, as the
            // interpreter does (they are pure, but keep the shape).
            std::string min_name =
                "tir_min" + std::to_string(temp_counter_);
            std::string end_name =
                "tir_end" + std::to_string(temp_counter_++);
            std::string v = nameOf(n.loop_var.get());
            indent(os, level);
            os << "{\n";
            indent(os, level + 1);
            os << "const int64_t " << min_name << " = "
               << emitInt(n.min) << ";\n";
            indent(os, level + 1);
            os << "const int64_t " << end_name << " = " << min_name
               << " + " << emitInt(n.extent) << ";\n";
            indent(os, level + 1);
            os << "for (int64_t " << v << " = " << min_name << "; "
               << v << " < " << end_name << "; ++" << v << ") {\n";
            emitStmt(os, n.body, level + 2);
            indent(os, level + 1);
            os << "}\n";
            indent(os, level);
            os << "}\n";
            return;
          }
          default:
            TIR_PANIC << "block encountered after lowering";
        }
    }

    JitSource out_;
    std::unordered_map<const BufferNode*, size_t> slot_of_;
    std::unordered_map<const VarNode*, std::string> var_names_;
    std::set<std::string> emitted_helpers_;
    std::vector<std::string> mma_helpers_;
    int temp_counter_ = 0;
};

} // namespace

std::string
emitC(const PrimFunc& func)
{
    CEmitter emitter;
    return emitter.emitFunction(func);
}

std::string
emitStandaloneC(const PrimFunc& func, int num_outputs)
{
    std::ostringstream os;
    os << emitC(func);
    os << "\n#include <stdio.h>\n\nint main(void)\n{\n";
    for (const Buffer& p : func->params) {
        os << "    static " << cType(p->dtype) << " " << p->name << "["
           << p->numel() << "];\n";
    }
    size_t first_output =
        func->params.size() - static_cast<size_t>(num_outputs);
    for (size_t i = 0; i < first_output; ++i) {
        const Buffer& p = func->params[i];
        os << "    for (int64_t i = 0; i < " << p->numel()
           << "; ++i) " << p->name << "[i] = (" << cType(p->dtype)
           << ")((i % 7) - 3);\n";
    }
    os << "    " << func->name << "(";
    for (size_t i = 0; i < func->params.size(); ++i) {
        if (i) os << ", ";
        os << func->params[i]->name;
    }
    os << ");\n";
    for (size_t i = first_output; i < func->params.size(); ++i) {
        const Buffer& p = func->params[i];
        os << "    { double sum = 0; for (int64_t i = 0; i < "
           << p->numel() << "; ++i) sum += (double)" << p->name
           << "[i]; printf(\"%.6e\\n\", sum); }\n";
    }
    os << "    return 0;\n}\n";
    return os.str();
}

JitSource
emitJitC(const PrimFunc& func)
{
    JitEmitter emitter;
    return emitter.emit(func);
}

} // namespace codegen
} // namespace tir
