/**
 * @file
 * C source backend for lowered (block-free) CPU functions. Emits a
 * self-contained C translation unit: buffer parameters become pointer
 * arguments, loops become for statements (parallel loops carry an
 * OpenMP pragma), and tensor-intrinsic calls are routed to generic
 * tile-MMA helper functions emitted in the preamble. This closes the
 * paper's pipeline — schedule, validate, lower, generate code — for the
 * CPU target.
 */
#ifndef TENSORIR_CODEGEN_C_CODEGEN_H
#define TENSORIR_CODEGEN_C_CODEGEN_H

#include <string>

#include "ir/stmt.h"

namespace tir {
namespace codegen {

/**
 * Emit a C function (plus required helpers) for a lowered CPU function.
 * Fatal on GPU thread bindings or remaining blocks.
 */
std::string emitC(const PrimFunc& func);

/**
 * Emit a standalone C program: the function, a main() that fills every
 * input deterministically, runs the function, and prints a checksum of
 * the outputs (one value per output buffer, `%.6e` format). Used by the
 * compile-and-run example and the codegen tests.
 */
std::string emitStandaloneC(const PrimFunc& func, int num_outputs);

} // namespace codegen
} // namespace tir

#endif // TENSORIR_CODEGEN_C_CODEGEN_H
