/**
 * @file
 * C source backend for lowered (block-free) CPU functions.
 *
 * Two emission modes share the lowering front end:
 *
 *  - **Portable mode** (`emitC` / `emitStandaloneC`): buffer parameters
 *    become typed pointer arguments (`float*`, `int8_t*`, ...), loops
 *    become for statements, and tensor-intrinsic calls are routed to
 *    generic tile-MMA helper functions emitted in the preamble. This is
 *    the human-readable export path — code you hand to another build
 *    system.
 *  - **JIT mode** (`emitJitC`): the translation unit behind the native
 *    execution tier (runtime/jit.h). Every buffer is a `double*` over
 *    the runtime's NDArray storage and all arithmetic happens in the
 *    interpreter's two evaluation domains (int64 indices, double
 *    values), so a compiled kernel reproduces the tree-walker/VM
 *    results on the same inputs (see docs/EXECUTION.md for the exact
 *    parity contract). The emitted entry point also carries the
 *    engines' fuel accounting.
 *
 * Since PR 6 the codegen no longer merely closes the paper's pipeline
 * (schedule, validate, lower, generate code) as a pretty-printer: it
 * feeds the compile-load-run JIT engine that `runtime::execute` can
 * select at runtime.
 */
#ifndef TENSORIR_CODEGEN_C_CODEGEN_H
#define TENSORIR_CODEGEN_C_CODEGEN_H

#include <string>
#include <vector>

#include "ir/stmt.h"

namespace tir {
namespace codegen {

/**
 * Emit a C function (plus required helpers) for a lowered CPU function.
 * Fatal on GPU thread bindings or remaining blocks.
 */
std::string emitC(const PrimFunc& func);

/**
 * Emit a standalone C program: the function, a main() that fills every
 * input deterministically, runs the function, and prints a checksum of
 * the outputs (one value per output buffer, `%.6e` format). Used by the
 * compile-and-run example and the codegen tests.
 */
std::string emitStandaloneC(const PrimFunc& func, int num_outputs);

/**
 * A JIT translation unit plus the metadata the runtime needs to call
 * into it (see runtime/jit.h for the consumer).
 */
struct JitSource
{
    /** Complete C11 translation unit. */
    std::string code;
    /** Exported entry symbol to dlsym after compilation. Signature:
     *  `int64_t entry(double** bufs, int64_t step_limit)` — `bufs[i]`
     *  is the storage of `buffers[i]`; returns 0 on completion and 1
     *  when `step_limit` (> 0) statements were exceeded, leaving
     *  partial results behind exactly like the VM's fuel abort. */
    std::string entry_symbol;
    /** Buffer slot table: function parameters first (in signature
     *  order), then every intermediate buffer the lowered body
     *  references, in first-touch order. The runtime allocates the
     *  intermediates zero-filled per run, as the VM does. */
    std::vector<Buffer> buffers;
    /** Number of leading entries of `buffers` that are parameters. */
    size_t num_params = 0;
};

/**
 * Emit the native-tier translation unit for `func` (lowering it
 * first). All storage is `double` and arithmetic mirrors the
 * interpreter's evaluation domains — int64 for indices/predicates with
 * floor division semantics, double for stored values — so the compiled
 * kernel matches the tree-walker and the VM on the same inputs (bit
 * for bit in practice on one libm; docs/EXECUTION.md documents the
 * tolerance contract). Fuel is charged at every statement head, the
 * same accounting points as Interpreter::exec and the VM's kStep.
 *
 * Raises FatalError on constructs the native tier cannot execute (GPU
 * thread bindings, intrinsic calls with no TensorIntrin registration);
 * the JIT engine catches that and falls back to the VM.
 */
JitSource emitJitC(const PrimFunc& func);

} // namespace codegen
} // namespace tir

#endif // TENSORIR_CODEGEN_C_CODEGEN_H
