#include "baselines/libraries.h"

#include <algorithm>
#include <map>

namespace tir {
namespace baselines {

std::string
libraryName(Library library)
{
    switch (library) {
      case Library::kCutlass: return "CUTLASS";
      case Library::kTensorRT: return "TensorRT";
      case Library::kArmComputeLib: return "ArmComputeLib";
      case Library::kPyTorchCuda: return "PyTorch";
      case Library::kPyTorchQnnpack: return "PyTorch-QNNPACK";
    }
    return "?";
}

namespace {

/** Per-(library, op) achieved efficiency: compute fraction of the
 *  tensor-pipe peak, memory fraction of peak bandwidth, fixed per-call
 *  overhead. Calibration constants (see DESIGN.md substitution table). */
struct LibraryEff
{
    double compute = 0;
    double memory = 0;
    double overhead_us = 0;
};

const LibraryEff*
lookupGpu(Library library, const std::string& op)
{
    // NOTE: efficiencies are calibrated against the *simulated* GPU's
    // achievable envelope (not real-silicon numbers), so the relative
    // standings match the paper's Figure 11/12 qualitative results.
    static const std::map<std::string, LibraryEff> cutlass = {
        {"GMM", {0.18, 0.80, 8}},  {"C3D", {0.020, 0.70, 8}},
        {"C2D", {0.022, 0.50, 8}}, {"C1D", {0.004, 0.30, 10}},
        {"DIL", {0.012, 0.40, 8}},
    };
    static const std::map<std::string, LibraryEff> tensorrt = {
        {"GMM", {0.24, 0.85, 10}},  {"C3D", {0.017, 0.70, 15}},
        {"C2D", {0.024, 0.55, 10}}, {"C1D", {0.003, 0.20, 15}},
        {"DIL", {0.009, 0.35, 15}}, {"DEP", {0.0006, 0.035, 15}},
        {"GRP", {0.012, 0.60, 15}}, {"T2D", {0.009, 0.30, 20}},
        {"BMM", {0.22, 0.80, 10}},
    };
    static const std::map<std::string, LibraryEff> pytorch = {
        {"GMM", {0.13, 0.75, 28}},  {"C3D", {0.013, 0.60, 30}},
        {"C2D", {0.014, 0.40, 30}}, {"C1D", {0.002, 0.15, 28}},
        {"DIL", {0.007, 0.30, 30}}, {"DEP", {0.0005, 0.03, 28}},
        {"GRP", {0.008, 0.45, 30}}, {"T2D", {0.006, 0.25, 32}},
        {"BMM", {0.12, 0.70, 28}},
    };
    const std::map<std::string, LibraryEff>* table = nullptr;
    switch (library) {
      case Library::kCutlass: table = &cutlass; break;
      case Library::kTensorRT: table = &tensorrt; break;
      case Library::kPyTorchCuda: table = &pytorch; break;
      default: return nullptr;
    }
    auto it = table->find(op);
    return it == table->end() ? nullptr : &it->second;
}

const LibraryEff*
lookupCpu(Library library, const std::string& op)
{
    // Calibrated against the simulated CPU's achievable envelope.
    static const std::map<std::string, LibraryEff> acl = {
        {"GMM", {0.35, 0.85, 15}},
        {"C2D", {0.25, 0.80, 20}},
        {"DEP", {0.030, 0.50, 20}},
        {"BMM", {0.32, 0.80, 15}},
    };
    // QNNPACK predates sdot: int8 kernels run on plain NEON MACs, so
    // the compute efficiency is quoted against the *sdot* peak and is
    // correspondingly low (the paper's §5.3 observation).
    static const std::map<std::string, LibraryEff> qnnpack = {
        {"GMM", {0.055, 0.70, 25}},
        {"C2D", {0.045, 0.65, 30}},
        {"DEP", {0.010, 0.30, 25}},
        {"BMM", {0.050, 0.65, 25}},
    };
    const std::map<std::string, LibraryEff>* table = nullptr;
    switch (library) {
      case Library::kArmComputeLib: table = &acl; break;
      case Library::kPyTorchQnnpack: table = &qnnpack; break;
      default: return nullptr;
    }
    auto it = table->find(op);
    return it == table->end() ? nullptr : &it->second;
}

/** Total parameter bytes of a workload (input + output traffic). */
double
paramBytes(const workloads::OpSpec& op)
{
    double bytes = 0;
    for (const Buffer& param : op.func->params) {
        bytes += static_cast<double>(param->numel()) *
                 param->dtype.bytes();
    }
    return bytes;
}

} // namespace

std::optional<double>
libraryLatencyUs(Library library, const workloads::OpSpec& op,
                 const hwsim::GpuDevice& gpu)
{
    const LibraryEff* eff = lookupGpu(library, op.name);
    if (!eff) return std::nullopt;
    double tc_peak_macs_per_us = gpu.sms * gpu.tc_macs_per_sm_per_cycle *
                                 gpu.clock_ghz * 1e3;
    double compute_us = op.macs / (tc_peak_macs_per_us * eff->compute);
    double mem_us =
        paramBytes(op) / (gpu.global_bw_gbps * 1e3 * eff->memory);
    return std::max(compute_us, mem_us) + eff->overhead_us;
}

std::optional<double>
libraryLatencyUsCpu(Library library, const workloads::OpSpec& op,
                    const hwsim::CpuDevice& cpu)
{
    const LibraryEff* eff = lookupCpu(library, op.name);
    if (!eff) return std::nullopt;
    double sdot_peak_macs_per_us = cpu.cores *
                                   cpu.sdot_macs_per_core_per_cycle *
                                   cpu.clock_ghz * 1e3;
    double compute_us = op.macs / (sdot_peak_macs_per_us * eff->compute);
    double mem_us =
        paramBytes(op) / (cpu.mem_bw_gbps * 1e3 * eff->memory);
    return std::max(compute_us, mem_us) + eff->overhead_us;
}

} // namespace baselines
} // namespace tir
