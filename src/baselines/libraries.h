/**
 * @file
 * Vendor-library and framework baselines for the evaluation (§5).
 *
 * CUTLASS / TensorRT / ArmComputeLib / PyTorch / QNNPACK are modeled as
 * roofline-style estimators with per-(library, operator) efficiency
 * factors that encode what the paper reports qualitatively: dedicated
 * teams optimize GEMM-like kernels close to peak, generic convolutions
 * run through im2col-style paths with lower efficiency, several
 * operators are simply unsupported, and frameworks add per-operator
 * launch/dispatch overheads. The factors are calibration constants, not
 * measurements — they give the baselines the paper's qualitative shape.
 */
#ifndef TENSORIR_BASELINES_LIBRARIES_H
#define TENSORIR_BASELINES_LIBRARIES_H

#include <optional>
#include <string>

#include "hwsim/device.h"
#include "workloads/workloads.h"

namespace tir {
namespace baselines {

/** Which library persona to emulate. */
enum class Library
{
    kCutlass,
    kTensorRT,
    kArmComputeLib,
    kPyTorchCuda,
    kPyTorchQnnpack,
};

/** Printable library name. */
std::string libraryName(Library library);

/**
 * Estimated latency of a library executing `op` on `device`;
 * std::nullopt when the library does not support the operator (CUTLASS
 * has no DEP/GRP/T2D kernels; TensorRT lacks the ViT attention ops;
 * QNNPACK has no sdot path so it runs at NEON-scalar rates).
 */
std::optional<double> libraryLatencyUs(Library library,
                                       const workloads::OpSpec& op,
                                       const hwsim::GpuDevice& gpu);

/** CPU-library variant (ArmComputeLib / PyTorch+QNNPACK). */
std::optional<double> libraryLatencyUsCpu(Library library,
                                          const workloads::OpSpec& op,
                                          const hwsim::CpuDevice& cpu);

} // namespace baselines
} // namespace tir

#endif // TENSORIR_BASELINES_LIBRARIES_H
