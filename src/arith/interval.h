/**
 * @file
 * Saturating constant integer intervals used by bound analysis.
 */
#ifndef TENSORIR_ARITH_INTERVAL_H
#define TENSORIR_ARITH_INTERVAL_H

#include <algorithm>
#include <cstdint>
#include <limits>

namespace tir {
namespace arith {

/** Closed constant interval [lo, hi] with +/- infinity sentinels. */
struct Interval
{
    static constexpr int64_t kNegInf =
        std::numeric_limits<int64_t>::min() / 4;
    static constexpr int64_t kPosInf =
        std::numeric_limits<int64_t>::max() / 4;

    int64_t lo = kNegInf;
    int64_t hi = kPosInf;

    Interval() = default;
    Interval(int64_t l, int64_t h) : lo(l), hi(h) {}

    static Interval everything() { return {}; }
    static Interval point(int64_t v) { return {v, v}; }
    /** [0, extent). */
    static Interval fromExtent(int64_t extent)
    {
        return {0, extent - 1};
    }

    bool isPoint() const { return lo == hi; }
    bool
    bounded() const
    {
        return lo > kNegInf && hi < kPosInf;
    }

    Interval
    operator+(const Interval& other) const
    {
        return {satAdd(lo, other.lo), satAdd(hi, other.hi)};
    }
    Interval
    operator-(const Interval& other) const
    {
        return {satAdd(lo, -other.hi), satAdd(hi, -other.lo)};
    }
    Interval
    operator*(const Interval& other) const
    {
        int64_t candidates[4] = {satMul(lo, other.lo), satMul(lo, other.hi),
                                 satMul(hi, other.lo),
                                 satMul(hi, other.hi)};
        return {*std::min_element(candidates, candidates + 4),
                *std::max_element(candidates, candidates + 4)};
    }

    /** Union hull. */
    Interval
    unite(const Interval& other) const
    {
        return {std::min(lo, other.lo), std::max(hi, other.hi)};
    }

    static int64_t
    satAdd(int64_t a, int64_t b)
    {
        if (a <= kNegInf || b <= kNegInf) return kNegInf;
        if (a >= kPosInf || b >= kPosInf) return kPosInf;
        int64_t r = a + b;
        return std::clamp(r, kNegInf, kPosInf);
    }

    static int64_t
    satMul(int64_t a, int64_t b)
    {
        if (a == 0 || b == 0) return 0;
        double approx = static_cast<double>(a) * static_cast<double>(b);
        if (approx >= static_cast<double>(kPosInf)) return kPosInf;
        if (approx <= static_cast<double>(kNegInf)) return kNegInf;
        return a * b;
    }
};

/** Euclidean floor division (round toward negative infinity). */
inline int64_t
floorDivInt(int64_t a, int64_t b)
{
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
    return q;
}

/** Euclidean modulo paired with floorDivInt; result sign matches b. */
inline int64_t
floorModInt(int64_t a, int64_t b)
{
    return a - floorDivInt(a, b) * b;
}

} // namespace arith
} // namespace tir

#endif // TENSORIR_ARITH_INTERVAL_H
