#include "arith/analyzer.h"

#include "ir/structural_equal.h"

namespace tir {
namespace arith {

void
Analyzer::bind(const Var& v, const Range& range)
{
    int64_t min_v = 0;
    int64_t ext_v = 0;
    if (isConstInt(range.min, &min_v) && isConstInt(range.extent, &ext_v)) {
        dom_[v.get()] = Interval(min_v, min_v + ext_v - 1);
    } else {
        dom_[v.get()] = Interval::everything();
    }
}

void
Analyzer::bind(const Var& v, const Interval& interval)
{
    dom_[v.get()] = interval;
}

namespace {

int64_t
gcdInt(int64_t a, int64_t b)
{
    a = a < 0 ? -a : a;
    b = b < 0 ? -b : b;
    while (b) {
        int64_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

} // namespace

int64_t
Analyzer::stride(const Expr& expr, int64_t modulus) const
{
    // gcd of all affine coefficients of `expr` (and the modulus): the
    // value is always a multiple of this stride.
    switch (expr->kind) {
      case ExprKind::kIntImm:
        return gcdInt(static_cast<const IntImmNode&>(*expr).value,
                      modulus);
      case ExprKind::kAdd:
      case ExprKind::kSub: {
        const auto& n = static_cast<const BinaryNode&>(*expr);
        return gcdInt(stride(n.a, modulus), stride(n.b, modulus));
      }
      case ExprKind::kMul: {
        const auto& n = static_cast<const BinaryNode&>(*expr);
        int64_t c = 0;
        if (isConstInt(n.b, &c) || isConstInt(n.a, &c)) {
            return gcdInt(c, modulus);
        }
        return 1;
      }
      default:
        return 1;
    }
}

Interval
Analyzer::evalInterval(const Expr& expr) const
{
    switch (expr->kind) {
      case ExprKind::kIntImm:
        return Interval::point(
            static_cast<const IntImmNode&>(*expr).value);
      case ExprKind::kVar: {
        auto it = dom_.find(static_cast<const VarNode*>(expr.get()));
        return it == dom_.end() ? Interval::everything() : it->second;
      }
      case ExprKind::kCast:
        return evalInterval(static_cast<const CastNode&>(*expr).value);
      case ExprKind::kSelect: {
        const auto& n = static_cast<const SelectNode&>(*expr);
        return evalInterval(n.tval).unite(evalInterval(n.fval));
      }
      case ExprKind::kAdd: {
        const auto& n = static_cast<const BinaryNode&>(*expr);
        return evalInterval(n.a) + evalInterval(n.b);
      }
      case ExprKind::kSub: {
        const auto& n = static_cast<const BinaryNode&>(*expr);
        return evalInterval(n.a) - evalInterval(n.b);
      }
      case ExprKind::kMul: {
        const auto& n = static_cast<const BinaryNode&>(*expr);
        return evalInterval(n.a) * evalInterval(n.b);
      }
      case ExprKind::kFloorDiv: {
        const auto& n = static_cast<const BinaryNode&>(*expr);
        Interval a = evalInterval(n.a);
        Interval b = evalInterval(n.b);
        if (b.isPoint() && b.lo > 0 && a.bounded()) {
            return {floorDivInt(a.lo, b.lo), floorDivInt(a.hi, b.lo)};
        }
        return Interval::everything();
      }
      case ExprKind::kFloorMod: {
        const auto& n = static_cast<const BinaryNode&>(*expr);
        Interval a = evalInterval(n.a);
        Interval b = evalInterval(n.b);
        if (b.isPoint() && b.lo > 0) {
            if (a.bounded() &&
                floorDivInt(a.lo, b.lo) == floorDivInt(a.hi, b.lo)) {
                return {floorModInt(a.lo, b.lo), floorModInt(a.hi, b.lo)};
            }
            // The residue is a multiple of gcd(coefficients, modulus):
            // floormod(x*16, 512) can reach at most 496, not 511.
            int64_t g = stride(n.a, b.lo);
            return {0, b.lo - g};
        }
        return Interval::everything();
      }
      case ExprKind::kMin: {
        const auto& n = static_cast<const BinaryNode&>(*expr);
        Interval a = evalInterval(n.a);
        Interval b = evalInterval(n.b);
        return {std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
      }
      case ExprKind::kMax: {
        const auto& n = static_cast<const BinaryNode&>(*expr);
        Interval a = evalInterval(n.a);
        Interval b = evalInterval(n.b);
        return {std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
      }
      default:
        return Interval::everything();
    }
}

namespace {

/** One addend of an affine sum: expr * coeff. */
struct Term
{
    Expr expr;
    int64_t coeff;
};

/** Flatten nested Add/Sub/Mul-by-const into terms + constant base. */
void
flattenSum(const Expr& e, int64_t coeff, std::vector<Term>& terms,
           int64_t& base)
{
    int64_t value = 0;
    if (isConstInt(e, &value)) {
        base += value * coeff;
        return;
    }
    switch (e->kind) {
      case ExprKind::kAdd: {
        const auto& n = static_cast<const BinaryNode&>(*e);
        flattenSum(n.a, coeff, terms, base);
        flattenSum(n.b, coeff, terms, base);
        return;
      }
      case ExprKind::kSub: {
        const auto& n = static_cast<const BinaryNode&>(*e);
        flattenSum(n.a, coeff, terms, base);
        flattenSum(n.b, -coeff, terms, base);
        return;
      }
      case ExprKind::kMul: {
        const auto& n = static_cast<const BinaryNode&>(*e);
        int64_t c = 0;
        if (isConstInt(n.b, &c)) {
            flattenSum(n.a, coeff * c, terms, base);
            return;
        }
        if (isConstInt(n.a, &c)) {
            flattenSum(n.b, coeff * c, terms, base);
            return;
        }
        break;
      }
      default:
        break;
    }
    terms.push_back({e, coeff});
}

/** Rebuild Σ expr*coeff + base as a right-leaning sum. */
Expr
rebuildSum(const std::vector<Term>& terms, int64_t base, DataType dtype)
{
    Expr result = nullptr;
    for (const Term& t : terms) {
        if (t.coeff == 0) continue;
        Expr piece =
            t.coeff == 1 ? t.expr : t.expr * intImm(t.coeff, dtype);
        result = result ? result + piece : piece;
    }
    if (!result) return intImm(base, dtype);
    if (base != 0) result = result + intImm(base, dtype);
    return result;
}

/** Merge structurally-equal terms (x + x -> 2x). */
std::vector<Term>
mergeTerms(std::vector<Term> terms)
{
    std::vector<Term> merged;
    for (Term& t : terms) {
        bool found = false;
        for (Term& m : merged) {
            if (m.expr == t.expr || exprDeepEqual(m.expr, t.expr)) {
                m.coeff += t.coeff;
                found = true;
                break;
            }
        }
        if (!found) merged.push_back(std::move(t));
    }
    std::vector<Term> out;
    for (Term& t : merged) {
        if (t.coeff != 0) out.push_back(std::move(t));
    }
    return out;
}

} // namespace

Expr
Analyzer::simplify(const Expr& expr) const
{
    switch (expr->kind) {
      case ExprKind::kIntImm:
      case ExprKind::kFloatImm:
      case ExprKind::kStringImm:
        return expr;
      case ExprKind::kVar: {
        // A variable whose domain is a single point is that constant
        // (extent-1 loops vanish from bindings).
        auto it = dom_.find(static_cast<const VarNode*>(expr.get()));
        if (it != dom_.end() && it->second.isPoint() &&
            it->second.bounded()) {
            return intImm(it->second.lo, expr->dtype);
        }
        return expr;
      }
      case ExprKind::kNot: {
        Expr a = simplify(static_cast<const NotNode&>(*expr).a);
        int64_t v = 0;
        if (isConstInt(a, &v)) {
            return intImm(v ? 0 : 1, DataType::boolean());
        }
        return notExpr(a);
      }
      case ExprKind::kCast: {
        const auto& n = static_cast<const CastNode&>(*expr);
        Expr v = simplify(n.value);
        int64_t iv = 0;
        if (isConstInt(v, &iv)) {
            if (n.dtype.isFloat()) {
                return floatImm(static_cast<double>(iv), n.dtype);
            }
            if (n.dtype.isInt() || n.dtype.isBool()) {
                return intImm(iv, n.dtype);
            }
        }
        if (v->kind == ExprKind::kFloatImm && n.dtype.isFloat()) {
            return floatImm(static_cast<const FloatImmNode&>(*v).value,
                            n.dtype);
        }
        return cast(n.dtype, v);
      }
      case ExprKind::kSelect: {
        const auto& n = static_cast<const SelectNode&>(*expr);
        Expr c = simplify(n.cond);
        int64_t cv = 0;
        if (isConstInt(c, &cv)) {
            return cv ? simplify(n.tval) : simplify(n.fval);
        }
        return select(c, simplify(n.tval), simplify(n.fval));
      }
      case ExprKind::kBufferLoad:
      case ExprKind::kBufferPtr:
      case ExprKind::kCall: {
        // Simplify children only.
        if (expr->kind == ExprKind::kBufferLoad) {
            const auto& n = static_cast<const BufferLoadNode&>(*expr);
            std::vector<Expr> idx;
            idx.reserve(n.indices.size());
            bool changed = false;
            for (const Expr& i : n.indices) {
                Expr s = simplify(i);
                changed |= (s != i);
                idx.push_back(std::move(s));
            }
            return changed ? bufferLoad(n.buffer, std::move(idx)) : expr;
        }
        if (expr->kind == ExprKind::kBufferPtr) {
            const auto& n = static_cast<const BufferPtrNode&>(*expr);
            std::vector<Expr> idx;
            idx.reserve(n.indices.size());
            bool changed = false;
            for (const Expr& i : n.indices) {
                Expr s = simplify(i);
                changed |= (s != i);
                idx.push_back(std::move(s));
            }
            return changed ? bufferPtr(n.buffer, std::move(idx)) : expr;
        }
        const auto& n = static_cast<const CallNode&>(*expr);
        std::vector<Expr> args;
        args.reserve(n.args.size());
        bool changed = false;
        for (const Expr& a : n.args) {
            Expr s = simplify(a);
            changed |= (s != a);
            args.push_back(std::move(s));
        }
        return changed ? call(n.dtype, n.op, std::move(args)) : expr;
      }
      default:
        break;
    }

    const auto& n = static_cast<const BinaryNode&>(*expr);
    Expr a = simplify(n.a);
    Expr b = simplify(n.b);
    int64_t ca = 0;
    int64_t cb = 0;
    bool a_const = isConstInt(a, &ca);
    bool b_const = isConstInt(b, &cb);
    DataType dtype = expr->dtype;

    // Float constant folding for arithmetic on float immediates.
    if (a->kind == ExprKind::kFloatImm && b->kind == ExprKind::kFloatImm) {
        double fa = static_cast<const FloatImmNode&>(*a).value;
        double fb = static_cast<const FloatImmNode&>(*b).value;
        switch (n.kind) {
          case ExprKind::kAdd: return floatImm(fa + fb, dtype);
          case ExprKind::kSub: return floatImm(fa - fb, dtype);
          case ExprKind::kMul: return floatImm(fa * fb, dtype);
          case ExprKind::kDiv:
            if (fb != 0) return floatImm(fa / fb, dtype);
            break;
          case ExprKind::kMin:
            return floatImm(std::min(fa, fb), dtype);
          case ExprKind::kMax:
            return floatImm(std::max(fa, fb), dtype);
          default:
            break;
        }
    }

    if (a_const && b_const) {
        auto boolean = [&](bool v) {
            return intImm(v ? 1 : 0, DataType::boolean());
        };
        switch (n.kind) {
          case ExprKind::kAdd: return intImm(ca + cb, dtype);
          case ExprKind::kSub: return intImm(ca - cb, dtype);
          case ExprKind::kMul: return intImm(ca * cb, dtype);
          case ExprKind::kFloorDiv:
            TIR_CHECK(cb != 0) << "division by zero in simplify";
            return intImm(floorDivInt(ca, cb), dtype);
          case ExprKind::kFloorMod:
            TIR_CHECK(cb != 0) << "modulo by zero in simplify";
            return intImm(floorModInt(ca, cb), dtype);
          case ExprKind::kMin: return intImm(std::min(ca, cb), dtype);
          case ExprKind::kMax: return intImm(std::max(ca, cb), dtype);
          case ExprKind::kEQ: return boolean(ca == cb);
          case ExprKind::kNE: return boolean(ca != cb);
          case ExprKind::kLT: return boolean(ca < cb);
          case ExprKind::kLE: return boolean(ca <= cb);
          case ExprKind::kGT: return boolean(ca > cb);
          case ExprKind::kGE: return boolean(ca >= cb);
          case ExprKind::kAnd: return boolean(ca && cb);
          case ExprKind::kOr: return boolean(ca || cb);
          default: break;
        }
    }

    switch (n.kind) {
      case ExprKind::kAdd:
      case ExprKind::kSub: {
        std::vector<Term> terms;
        int64_t base = 0;
        flattenSum(a, 1, terms, base);
        flattenSum(b, n.kind == ExprKind::kAdd ? 1 : -1, terms, base);
        return rebuildSum(mergeTerms(std::move(terms)), base, dtype);
      }
      case ExprKind::kMul: {
        if (a_const) std::swap(a, b), std::swap(ca, cb),
            std::swap(a_const, b_const);
        if (b_const) {
            if (cb == 0) return intImm(0, dtype);
            if (cb == 1) return a;
            // Distribute over sums to expose affine structure.
            std::vector<Term> terms;
            int64_t base = 0;
            flattenSum(a, cb, terms, base);
            return rebuildSum(mergeTerms(std::move(terms)), base, dtype);
        }
        return binary(ExprKind::kMul, a, b);
      }
      case ExprKind::kFloorDiv: {
        if (b_const && cb > 0) {
            if (cb == 1) return a;
            Interval bound = evalInterval(a);
            if (bound.lo >= 0 && bound.hi < cb) return intImm(0, dtype);
            // floordiv(q*c + r, c) = q + floordiv(r, c)
            std::vector<Term> terms;
            int64_t base = 0;
            flattenSum(a, 1, terms, base);
            std::vector<Term> quotient;
            std::vector<Term> remainder;
            for (Term& t : terms) {
                if (t.coeff % cb == 0) {
                    quotient.push_back({t.expr, t.coeff / cb});
                } else {
                    remainder.push_back(std::move(t));
                }
            }
            int64_t q_base = floorDivInt(base, cb);
            int64_t r_base = floorModInt(base, cb);
            if (!quotient.empty() || q_base != 0) {
                Expr r = rebuildSum(remainder, r_base, dtype);
                Interval rest_bound = evalInterval(r);
                // Only extract the quotient when the remainder fully
                // resolves; partial extraction would destroy the fused-
                // chain structure the binding validator recognizes.
                if (remainder.empty() ||
                    (rest_bound.lo >= 0 && rest_bound.hi < cb)) {
                    Expr r_div =
                        simplify(floordiv(r, intImm(cb, dtype)));
                    Expr q = rebuildSum(quotient, q_base, dtype);
                    return simplify(q + r_div);
                }
            }
            // floordiv(floordiv(x, c1), c2) -> floordiv(x, c1*c2)
            if (a->kind == ExprKind::kFloorDiv) {
                const auto& inner = static_cast<const BinaryNode&>(*a);
                int64_t c1 = 0;
                if (isConstInt(inner.b, &c1) && c1 > 0) {
                    return simplify(
                        floordiv(inner.a, intImm(c1 * cb, dtype)));
                }
            }
            // Chain rule: floordiv(E*c1 + rest, c) = floordiv(E, c/c1)
            // when c1 | c and 0 <= rest < c1 (split-after-fuse shapes).
            // Only applicable when no quotient terms were set aside.
            if (!remainder.empty() && quotient.empty() && q_base == 0) {
                size_t best = 0;
                for (size_t i = 1; i < remainder.size(); ++i) {
                    if (remainder[i].coeff > remainder[best].coeff) {
                        best = i;
                    }
                }
                int64_t c1 = remainder[best].coeff;
                if (c1 > 1 && cb % c1 == 0) {
                    std::vector<Term> rest_terms;
                    for (size_t i = 0; i < remainder.size(); ++i) {
                        if (i != best) rest_terms.push_back(remainder[i]);
                    }
                    Expr rest = rebuildSum(rest_terms, r_base, dtype);
                    Interval rest_bound = evalInterval(rest);
                    if (rest_bound.lo >= 0 && rest_bound.hi < c1) {
                        return simplify(
                            floordiv(remainder[best].expr,
                                     intImm(cb / c1, dtype)));
                    }
                }
            }
        }
        return binary(ExprKind::kFloorDiv, a, b);
      }
      case ExprKind::kFloorMod: {
        if (b_const && cb > 0) {
            if (cb == 1) return intImm(0, dtype);
            Interval bound = evalInterval(a);
            if (bound.lo >= 0 && bound.hi < cb) return a;
            // Terms whose coefficient is a multiple of c vanish.
            std::vector<Term> terms;
            int64_t base = 0;
            flattenSum(a, 1, terms, base);
            std::vector<Term> kept;
            bool dropped = false;
            for (Term& t : terms) {
                if (t.coeff % cb == 0) {
                    dropped = true;
                } else {
                    kept.push_back(std::move(t));
                }
            }
            int64_t r_base = floorModInt(base, cb);
            if (dropped || r_base != base) {
                Expr r = rebuildSum(kept, r_base, dtype);
                return simplify(floormod(r, intImm(cb, dtype)));
            }
            // floormod(floormod(x, c1), c) -> floormod(x, c) when c | c1
            if (a->kind == ExprKind::kFloorMod) {
                const auto& inner = static_cast<const BinaryNode&>(*a);
                int64_t c1 = 0;
                if (isConstInt(inner.b, &c1) && c1 > 0 && c1 % cb == 0) {
                    return simplify(floormod(inner.a, intImm(cb, dtype)));
                }
            }
            // Chain rule: floormod(E*c1 + rest, c) =
            // floormod(E, c/c1)*c1 + rest when c1 | c, 0 <= rest < c1.
            if (!kept.empty()) {
                size_t best = 0;
                for (size_t i = 1; i < kept.size(); ++i) {
                    if (kept[i].coeff > kept[best].coeff) best = i;
                }
                int64_t c1 = kept[best].coeff;
                if (c1 > 1 && cb % c1 == 0) {
                    std::vector<Term> rest_terms;
                    for (size_t i = 0; i < kept.size(); ++i) {
                        if (i != best) rest_terms.push_back(kept[i]);
                    }
                    Expr rest = rebuildSum(rest_terms, r_base, dtype);
                    Interval rest_bound = evalInterval(rest);
                    if (rest_bound.lo >= 0 && rest_bound.hi < c1) {
                        Expr head = simplify(
                            floormod(kept[best].expr,
                                     intImm(cb / c1, dtype)));
                        return simplify(head * intImm(c1, dtype) + rest);
                    }
                }
            }
        }
        return binary(ExprKind::kFloorMod, a, b);
      }
      case ExprKind::kMin:
      case ExprKind::kMax: {
        if (a == b || exprDeepEqual(a, b)) return a;
        Interval ia = evalInterval(a);
        Interval ib = evalInterval(b);
        if (n.kind == ExprKind::kMin) {
            if (ia.hi <= ib.lo) return a;
            if (ib.hi <= ia.lo) return b;
        } else {
            if (ia.lo >= ib.hi) return a;
            if (ib.lo >= ia.hi) return b;
        }
        return binary(n.kind, a, b);
      }
      case ExprKind::kLT:
      case ExprKind::kLE:
      case ExprKind::kGT:
      case ExprKind::kGE:
      case ExprKind::kEQ:
      case ExprKind::kNE: {
        Interval ia = evalInterval(a);
        Interval ib = evalInterval(b);
        auto boolean = [&](bool v) {
            return intImm(v ? 1 : 0, DataType::boolean());
        };
        switch (n.kind) {
          case ExprKind::kLT:
            if (ia.hi < ib.lo) return boolean(true);
            if (ia.lo >= ib.hi) return boolean(false);
            break;
          case ExprKind::kLE:
            if (ia.hi <= ib.lo) return boolean(true);
            if (ia.lo > ib.hi) return boolean(false);
            break;
          case ExprKind::kGT:
            if (ia.lo > ib.hi) return boolean(true);
            if (ia.hi <= ib.lo) return boolean(false);
            break;
          case ExprKind::kGE:
            if (ia.lo >= ib.hi) return boolean(true);
            if (ia.hi < ib.lo) return boolean(false);
            break;
          case ExprKind::kEQ:
            if (ia.isPoint() && ib.isPoint() && ia.lo == ib.lo) {
                return boolean(true);
            }
            if (ia.hi < ib.lo || ib.hi < ia.lo) return boolean(false);
            break;
          case ExprKind::kNE:
            if (ia.hi < ib.lo || ib.hi < ia.lo) return boolean(true);
            break;
          default:
            break;
        }
        return binary(n.kind, a, b);
      }
      case ExprKind::kAnd: {
        if (a_const) return ca ? b : intImm(0, DataType::boolean());
        if (b_const) return cb ? a : intImm(0, DataType::boolean());
        return binary(ExprKind::kAnd, a, b);
      }
      case ExprKind::kOr: {
        if (a_const) return ca ? intImm(1, DataType::boolean()) : b;
        if (b_const) return cb ? intImm(1, DataType::boolean()) : a;
        return binary(ExprKind::kOr, a, b);
      }
      default:
        return binary(n.kind, a, b);
    }
}

bool
Analyzer::provablyEqual(const Expr& a, const Expr& b) const
{
    Expr diff = simplify(a - b);
    int64_t v = 0;
    return isConstInt(diff, &v) && v == 0;
}

bool
Analyzer::provablyGE(const Expr& expr, int64_t value) const
{
    return evalInterval(simplify(expr)).lo >= value;
}

bool
Analyzer::provablyLE(const Expr& expr, int64_t value) const
{
    return evalInterval(simplify(expr)).hi <= value;
}

} // namespace arith
} // namespace tir
