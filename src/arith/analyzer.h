/**
 * @file
 * Expression analyzer: rule-based simplification with bound information,
 * constant-interval evaluation, and simple provers. The simplifier knows
 * the floordiv/floormod-of-affine-sum rules that keep iterator bindings in
 * the quasi-affine normal form the validator (§3.3) pattern-matches.
 */
#ifndef TENSORIR_ARITH_ANALYZER_H
#define TENSORIR_ARITH_ANALYZER_H

#include <unordered_map>

#include "arith/interval.h"
#include "ir/stmt.h"

namespace tir {
namespace arith {

/** Per-scope expression analyzer; bind loop vars, then simplify/prove. */
class Analyzer
{
  public:
    /** Bind a variable to a constant-bounded range. */
    void bind(const Var& v, const Range& range);
    /** Bind a variable to a constant interval. */
    void bind(const Var& v, const Interval& interval);

    /** Conservative constant bounds of an expression. */
    Interval evalInterval(const Expr& expr) const;

    /** Simplify using constant folding, identities, and div/mod rules. */
    Expr simplify(const Expr& expr) const;

    /** True when a - b simplifies to the constant 0. */
    bool provablyEqual(const Expr& a, const Expr& b) const;
    /** True when expr provably >= value. */
    bool provablyGE(const Expr& expr, int64_t value) const;
    /** True when expr provably <= value. */
    bool provablyLE(const Expr& expr, int64_t value) const;

    /** The value of `expr` is always a multiple of this stride (gcd of
     *  its affine coefficients and `modulus`). */
    int64_t stride(const Expr& expr, int64_t modulus) const;

  private:
    std::unordered_map<const VarNode*, Interval> dom_;
};

} // namespace arith
} // namespace tir

#endif // TENSORIR_ARITH_ANALYZER_H
