#include "arith/iter_map.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "ir/functor.h"

#include "ir/printer.h"
#include "ir/structural_equal.h"

namespace tir {
namespace arith {

namespace {

/** Ceiling division for positive operands. */
int64_t
ceilDiv(int64_t a, int64_t b)
{
    return (a + b - 1) / b;
}

/** Effective extent of (src div d) mod m for a source of extent E. */
int64_t
atomExtent(int64_t source_extent, int64_t div, int64_t mod)
{
    int64_t remaining = ceilDiv(source_extent, div);
    if (mod == IterAtom::kNoMod) return remaining;
    return std::min(remaining, mod);
}

bool parseAtom(const Expr& e, const DomMap& doms, IterAtom* out,
               std::string* error);

/** Canonical identity string of a chain (high-to-low order terms). */
std::string
chainIdOf(const IterChain& chain)
{
    std::string id;
    for (const auto& [sub, scale] : chain.terms) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%p/%lld%%%lld*%lld|",
                      static_cast<const void*>(sub.source),
                      static_cast<long long>(sub.div),
                      static_cast<long long>(sub.mod),
                      static_cast<long long>(scale));
        id += sub.chain_id.empty() ? std::string(buf)
                                   : ("[" + sub.chain_id + "]" + buf);
    }
    return id;
}

/** Identity string of an atom's (pseudo-)source iterator. */
std::string
atomSourceId(const IterAtom& atom)
{
    if (!atom.chain_id.empty()) return atom.chain_id;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%p/1%%-1*1|",
                  static_cast<const void*>(atom.source));
    return buf;
}

/** Parse a sum as a fused pseudo-iterator source (complete chain). */
bool
parseChainSource(const Expr& e, const DomMap& doms, IterAtom* out,
                 std::string* error)
{
    IterChain chain = parseIterChain(e, doms);
    if (!chain.valid || chain.base != 0 || chain.terms.size() < 2) {
        *error = "expression is not a quasi-affine atom or chain: " +
                 exprToString(e);
        return false;
    }
    IterAtom atom;
    atom.source = nullptr;
    atom.source_extent = chain.extent;
    atom.div = 1;
    atom.mod = IterAtom::kNoMod;
    atom.extent = chain.extent;
    atom.chain_id = chainIdOf(chain);
    for (const auto& [sub, scale] : chain.terms) {
        for (const VarNode* v : sub.vars) atom.vars.push_back(v);
        bool plain = sub.source != nullptr && sub.div == 1 &&
                     (sub.mod == IterAtom::kNoMod ||
                      sub.mod >= sub.source_extent);
        atom.terms.emplace_back(plain ? sub.source : nullptr, scale,
                                sub.extent);
    }
    *out = atom;
    return true;
}

/** Parse an atom expression; returns false and sets error on failure. */
bool
parseAtom(const Expr& e, const DomMap& doms, IterAtom* out,
          std::string* error)
{
    switch (e->kind) {
      case ExprKind::kVar: {
        const auto* v = static_cast<const VarNode*>(e.get());
        auto it = doms.find(v);
        if (it == doms.end()) {
            *error = "unbound variable " + v->name;
            return false;
        }
        int64_t min_v = 0;
        int64_t ext_v = 0;
        if (!isConstInt(it->second.min, &min_v) || min_v != 0 ||
            !isConstInt(it->second.extent, &ext_v)) {
            *error = "loop " + v->name + " is not a constant [0, n) range";
            return false;
        }
        IterAtom atom;
        atom.source = v;
        atom.vars = {v};
        atom.source_extent = ext_v;
        atom.div = 1;
        atom.mod = IterAtom::kNoMod;
        atom.extent = ext_v;
        *out = atom;
        return true;
      }
      case ExprKind::kFloorDiv: {
        const auto& n = static_cast<const BinaryNode&>(*e);
        int64_t c = 0;
        if (!isConstInt(n.b, &c) || c <= 0) {
            *error = "non-constant divisor";
            return false;
        }
        IterAtom inner;
        if (!parseAtom(n.a, doms, &inner, error) &&
            !parseChainSource(n.a, doms, &inner, error)) {
            return false;
        }
        IterAtom atom = inner;
        atom.div = inner.div * c;
        if (inner.mod == IterAtom::kNoMod) {
            atom.mod = IterAtom::kNoMod;
        } else if (inner.mod % c == 0) {
            atom.mod = inner.mod / c;
        } else {
            *error = "floordiv factor does not divide modulus";
            return false;
        }
        atom.extent = atomExtent(inner.source_extent, atom.div, atom.mod);
        *out = atom;
        return true;
      }
      case ExprKind::kFloorMod: {
        const auto& n = static_cast<const BinaryNode&>(*e);
        int64_t c = 0;
        if (!isConstInt(n.b, &c) || c <= 0) {
            *error = "non-constant modulus";
            return false;
        }
        IterAtom inner;
        if (!parseAtom(n.a, doms, &inner, error) &&
            !parseChainSource(n.a, doms, &inner, error)) {
            return false;
        }
        IterAtom atom = inner;
        if (inner.mod == IterAtom::kNoMod) {
            atom.mod = c;
        } else if (inner.mod % c == 0) {
            atom.mod = c;
        } else if (c >= inner.mod) {
            atom.mod = inner.mod; // vacuous mod
        } else {
            *error = "floormod factor does not divide modulus";
            return false;
        }
        atom.extent = atomExtent(inner.source_extent, atom.div, atom.mod);
        *out = atom;
        return true;
      }
      default:
        *error = "expression is not a quasi-affine atom: " +
                 exprToString(e);
        return false;
    }
}

/** Flatten a binding into (atom expr, coeff) pairs + base. */
bool
flattenBinding(const Expr& e, int64_t coeff,
               std::vector<std::pair<Expr, int64_t>>& parts, int64_t* base,
               std::string* error)
{
    int64_t value = 0;
    if (isConstInt(e, &value)) {
        *base += value * coeff;
        return true;
    }
    switch (e->kind) {
      case ExprKind::kAdd: {
        const auto& n = static_cast<const BinaryNode&>(*e);
        return flattenBinding(n.a, coeff, parts, base, error) &&
               flattenBinding(n.b, coeff, parts, base, error);
      }
      case ExprKind::kSub: {
        const auto& n = static_cast<const BinaryNode&>(*e);
        return flattenBinding(n.a, coeff, parts, base, error) &&
               flattenBinding(n.b, -coeff, parts, base, error);
      }
      case ExprKind::kMul: {
        const auto& n = static_cast<const BinaryNode&>(*e);
        int64_t c = 0;
        if (isConstInt(n.b, &c)) {
            return flattenBinding(n.a, coeff * c, parts, base, error);
        }
        if (isConstInt(n.a, &c)) {
            return flattenBinding(n.b, coeff * c, parts, base, error);
        }
        *error = "non-affine product: " + exprToString(e);
        return false;
      }
      default:
        parts.emplace_back(e, coeff);
        return true;
    }
}

} // namespace

IterChain
parseIterChain(const Expr& binding, const DomMap& doms)
{
    IterChain chain;
    std::vector<std::pair<Expr, int64_t>> parts;
    if (!flattenBinding(binding, 1, parts, &chain.base, &chain.error)) {
        return chain;
    }
    for (auto& [expr, coeff] : parts) {
        if (coeff <= 0) {
            chain.error = "negative iterator scale";
            return chain;
        }
        IterAtom atom;
        if (!parseAtom(expr, doms, &atom, &chain.error)) return chain;
        if (atom.extent <= 0) {
            chain.error = "empty iterator atom";
            return chain;
        }
        if (atom.extent > 1) chain.terms.emplace_back(atom, coeff);
    }
    std::sort(chain.terms.begin(), chain.terms.end(),
              [](const auto& a, const auto& b) {
                  return a.second > b.second;
              });
    // Verify mixed-radix structure.
    if (!chain.terms.empty()) {
        if (chain.terms.back().second != 1) {
            chain.error = "lowest-order scale is not 1";
            return chain;
        }
        for (size_t k = 0; k + 1 < chain.terms.size(); ++k) {
            int64_t expect = chain.terms[k + 1].second *
                             chain.terms[k + 1].first.extent;
            if (chain.terms[k].second != expect) {
                chain.error = "scales do not form a mixed radix chain";
                return chain;
            }
        }
        chain.extent =
            chain.terms.front().second * chain.terms.front().first.extent;
    } else {
        chain.extent = 1;
    }
    chain.valid = true;
    return chain;
}

std::vector<Expr>
splitConjunction(const Expr& pred)
{
    std::vector<Expr> result;
    if (pred->kind == ExprKind::kAnd) {
        const auto& n = static_cast<const BinaryNode&>(*pred);
        auto a = splitConjunction(n.a);
        auto b = splitConjunction(n.b);
        result.insert(result.end(), a.begin(), a.end());
        result.insert(result.end(), b.begin(), b.end());
        return result;
    }
    int64_t v = 0;
    if (isConstInt(pred, &v) && v == 1) return result; // true
    result.push_back(pred);
    return result;
}

BindingValidation
validateBlockBindings(const BlockRealizeNode& realize,
                      const DomMap& loop_doms)
{
    const BlockNode& block = *realize.block;
    Analyzer analyzer;
    for (const auto& [var_node, range] : loop_doms) {
        Var alias(range.min, var_node);
        analyzer.bind(alias, range);
    }

    std::vector<IterAtom> all_atoms;
    std::vector<Expr> needed_guards;
    std::vector<std::pair<IterChain, int64_t>> needed_structured;

    std::vector<Expr> raw_present =
        splitConjunction(analyzer.simplify(realize.predicate));
    for (size_t i = 0; i < block.iter_vars.size(); ++i) {
        const IterVar& iv = block.iter_vars[i];
        Expr binding = analyzer.simplify(realize.iter_values[i]);
        int64_t dom_min = 0;
        int64_t dom_ext = 0;
        if (!isConstInt(iv.dom.min, &dom_min) ||
            !isConstInt(iv.dom.extent, &dom_ext)) {
            return {false,
                    "iterator " + iv.var->name + " has symbolic domain"};
        }
        IterChain chain = parseIterChain(binding, loop_doms);
        if (chain.valid && chain.base >= dom_min) {
            // Strict tier: mixed-radix chain. The binding may cover a
            // subset of the domain (e.g. a producer moved under a
            // consumer tile) — completeness is the region-cover
            // validator's job — but must not exceed it unguarded.
            if (chain.base + chain.extent > dom_min + dom_ext) {
                needed_guards.push_back(analyzer.simplify(lt(
                    binding,
                    intImm(dom_min + dom_ext, binding->dtype))));
                needed_structured.emplace_back(chain, dom_ext);
            }
            for (const auto& [atom, scale] : chain.terms) {
                all_atoms.push_back(atom);
            }
            continue;
        }
        // Relaxed tier: the binding is not in the chain grammar (e.g. a
        // tile-base offset plus local digits). A single-variable
        // expression that failed the chain parse (such as the paper's
        // v = i*2) is genuinely non-affine-injective: reject it.
        std::set<const VarNode*> binding_vars;
        {
            struct Collect : public ExprVisitor
            {
                std::set<const VarNode*>* out;
                void
                visitVar(const VarNode& v) override
                {
                    out->insert(&v);
                }
            } collect;
            collect.out = &binding_vars;
            collect.visitExpr(binding);
        }
        if (binding_vars.size() <= 1 && binding->kind != ExprKind::kVar &&
            !isConstInt(binding)) {
            return {false,
                    "iterator " + iv.var->name + ": " + chain.error};
        }
        // Otherwise accept when the value range provably stays inside
        // the iterator domain, or the realize predicate carries the
        // exact bound guards.
        Interval range = analyzer.evalInterval(binding);
        bool lo_ok = range.lo >= dom_min;
        bool hi_ok = range.hi < dom_min + dom_ext;
        if (!lo_ok || !hi_ok) {
            Expr need_lo = analyzer.simplify(
                ge(binding, intImm(dom_min, binding->dtype)));
            Expr need_hi = analyzer.simplify(lt(
                binding, intImm(dom_min + dom_ext, binding->dtype)));
            for (const Expr& have : raw_present) {
                lo_ok |= exprDeepEqual(need_lo, have);
                hi_ok |= exprDeepEqual(need_hi, have);
            }
        }
        if (!lo_ok || !hi_ok) {
            return {false, "iterator " + iv.var->name +
                               " may leave its domain: " + chain.error};
        }
    }

    // Independence: atoms of the same (pseudo-)source must cover
    // disjoint value ranges; atoms of different sources may not share
    // loop variables.
    for (size_t i = 0; i < all_atoms.size(); ++i) {
        for (size_t j = i + 1; j < all_atoms.size(); ++j) {
            const IterAtom& a = all_atoms[i];
            const IterAtom& b = all_atoms[j];
            auto ends_with = [](const std::string& big,
                                const std::string& small) {
                return big.size() >= small.size() &&
                       big.compare(big.size() - small.size(),
                                   small.size(), small) == 0;
            };
            // Two pseudo-chains share a coordinate space when one is a
            // low-order suffix of the other (term scales are absolute,
            // so suffix chains live in the same value range).
            bool same_source =
                (a.source != nullptr && a.source == b.source) ||
                (a.source == nullptr && b.source == nullptr &&
                 (ends_with(a.chain_id, b.chain_id) ||
                  ends_with(b.chain_id, a.chain_id)));
            if (same_source) {
                bool disjoint = a.highBit() <= b.lowBit() ||
                                b.highBit() <= a.lowBit();
                if (!disjoint) {
                    return {false,
                            "iterators share a source iterator "
                            "non-independently"};
                }
                continue;
            }
            // Leaf atom vs pseudo-chain: when the leaf variable is a
            // plain term of the chain, its coverage maps into the
            // chain's value range and can be checked there.
            const IterAtom* leaf = nullptr;
            const IterAtom* pseudo = nullptr;
            if (a.source && !b.source) {
                leaf = &a;
                pseudo = &b;
            } else if (b.source && !a.source) {
                leaf = &b;
                pseudo = &a;
            }
            bool shares_var = false;
            for (const VarNode* va : a.vars) {
                for (const VarNode* vb : b.vars) {
                    shares_var |= (va == vb);
                }
            }
            if (!shares_var) continue;
            bool resolved = false;
            if (leaf && pseudo) {
                for (const auto& [term_var, scale, extent] :
                     pseudo->terms) {
                    if (term_var != leaf->source) continue;
                    int64_t lo = scale * leaf->lowBit();
                    int64_t hi =
                        scale * std::min(leaf->highBit(), extent);
                    bool disjoint = hi <= pseudo->lowBit() ||
                                    pseudo->highBit() <= lo;
                    if (disjoint) resolved = true;
                    break;
                }
            }
            if (!resolved) {
                return {false,
                        "iterators mix loop variables across "
                        "incompatible sources"};
            }
        }
    }

    // Every needed guard must be implied by the predicate conjunction:
    // either it appears verbatim, or a conjunct `S < c` bounds the same
    // source iterator tightly enough that `(S div d) < L` follows.
    std::vector<Expr> present =
        splitConjunction(analyzer.simplify(realize.predicate));
    struct PresentBound
    {
        std::string source_id;
        int64_t bound;
    };
    std::vector<PresentBound> present_bounds;
    for (const Expr& have : present) {
        if (have->kind != ExprKind::kLT) continue;
        const auto& cmp = static_cast<const BinaryNode&>(*have);
        int64_t c = 0;
        if (!isConstInt(cmp.b, &c)) continue;
        IterChain pchain = parseIterChain(cmp.a, loop_doms);
        if (!pchain.valid || pchain.base != 0) continue;
        if (pchain.terms.size() == 1) {
            const IterAtom& atom = pchain.terms[0].first;
            if (pchain.terms[0].second == 1 && atom.div == 1 &&
                atom.mod == IterAtom::kNoMod) {
                present_bounds.push_back({atomSourceId(atom), c});
            }
        } else {
            present_bounds.push_back({chainIdOf(pchain), c});
        }
    }
    auto implied = [&](const IterChain& chain, int64_t limit) {
        // Reduce a multi-term chain to its leading atom when the limit
        // aligns with the leading scale.
        const IterAtom* atom = nullptr;
        int64_t atom_limit = limit;
        if (chain.terms.size() == 1 && chain.terms[0].second == 1) {
            atom = &chain.terms[0].first;
        } else if (!chain.terms.empty()) {
            int64_t scale = chain.terms.front().second;
            if (limit % scale == 0) {
                atom = &chain.terms.front().first;
                atom_limit = limit / scale;
            }
        }
        if (!atom || atom->mod != IterAtom::kNoMod) return false;
        std::string id = atomSourceId(*atom);
        for (const PresentBound& pb : present_bounds) {
            if (pb.source_id != id) continue;
            if (floorDivInt(pb.bound - 1, atom->div) <= atom_limit - 1) {
                return true;
            }
        }
        return false;
    };
    for (size_t g = 0; g < needed_guards.size(); ++g) {
        bool found = false;
        for (const Expr& have : present) {
            if (exprDeepEqual(needed_guards[g], have)) {
                found = true;
                break;
            }
        }
        if (!found) {
            found = implied(needed_structured[g].first,
                            needed_structured[g].second);
        }
        if (!found) {
            return {false, "missing predicate guard: " +
                               exprToString(needed_guards[g])};
        }
    }
    return {true, ""};
}

} // namespace arith
} // namespace tir
