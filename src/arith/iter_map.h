/**
 * @file
 * Quasi-affine iterator mapping analysis (§3.3 Loop Nest Validation).
 *
 * A block iterator binding is valid when it is a "chain": a sum
 *     sum_k scale_k * atom_k + base
 * where each atom is (loop_var floordiv d) floormod m, scales form a mixed
 * radix (scale_k = scale_{k+1} * extent_{k+1}, last scale 1), and atoms of
 * the same loop var never overlap across the block's bindings. This is
 * exactly the split/fuse pattern family; v1 = i, v2 = 2*i is rejected
 * while v1 = i floordiv 4, v2 = i floormod 4 is accepted, matching the
 * paper's example.
 */
#ifndef TENSORIR_ARITH_ITER_MAP_H
#define TENSORIR_ARITH_ITER_MAP_H

#include <map>
#include <string>
#include <vector>

#include "arith/analyzer.h"
#include "ir/stmt.h"

namespace tir {
namespace arith {

/** One quasi-affine atom: (source floordiv div) floormod mod. The
 *  source is either a leaf loop variable or a *fused pseudo-iterator*
 *  (a complete mixed-radix chain of loop variables), which is how
 *  re-splitting a fused loop stays analyzable. */
struct IterAtom
{
    const VarNode* source = nullptr;
    /** Canonical identity of a fused pseudo-iterator source (empty for
     *  leaf variables). */
    std::string chain_id;
    /** All loop variables feeding this atom. */
    std::vector<const VarNode*> vars;
    /** For pseudo-iterators: (plain leaf var, scale-in-chain, extent)
     *  for every *plain* chain term; non-plain terms get var=nullptr. */
    std::vector<std::tuple<const VarNode*, int64_t, int64_t>> terms;
    /** Extent of the (pseudo-)source iterator. */
    int64_t source_extent = 1;
    int64_t div = 1;
    /** Modulus; kNoMod when the mod is vacuous. */
    int64_t mod = -1;
    /** Number of distinct values the atom takes. */
    int64_t extent = 1;

    static constexpr int64_t kNoMod = -1;

    /** Coverage interval [div, div*extent) of the source's value range. */
    int64_t lowBit() const { return div; }
    int64_t highBit() const { return div * extent; }
};

/** Result of parsing a binding expression into a mixed-radix chain. */
struct IterChain
{
    bool valid = false;
    /** (atom, scale) pairs, sorted by descending scale. */
    std::vector<std::pair<IterAtom, int64_t>> terms;
    int64_t base = 0;
    /** Total number of distinct values (product of atom extents). */
    int64_t extent = 1;
    std::string error;
};

/** Loop-variable domains visible to the binding expressions. */
using DomMap = std::map<const VarNode*, Range>;

/** Parse one binding into a chain; `valid=false` with `error` on failure. */
IterChain parseIterChain(const Expr& binding, const DomMap& doms);

/** Result of validating all bindings of a block realize. */
struct BindingValidation
{
    bool affine = false;
    std::string error;
};

/**
 * Validate that a block realize's iterator bindings form independent
 * quasi-affine chains matching each iterator's domain, with any
 * over-approximation guarded by the realize predicate.
 */
BindingValidation validateBlockBindings(const BlockRealizeNode& realize,
                                        const DomMap& loop_doms);

/** Split a boolean expression into its top-level conjuncts. */
std::vector<Expr> splitConjunction(const Expr& pred);

} // namespace arith
} // namespace tir

#endif // TENSORIR_ARITH_ITER_MAP_H
