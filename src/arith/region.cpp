#include "arith/region.h"

#include "ir/functor.h"
#include "ir/structural_equal.h"
#include "ir/transform.h"

namespace tir {
namespace arith {

SymBound
evalSymBound(const Expr& index, const RangeEnv& env,
             const Analyzer& analyzer)
{
    switch (index->kind) {
      case ExprKind::kIntImm:
        return {index, index, true};
      case ExprKind::kVar: {
        auto it = env.find(static_cast<const VarNode*>(index.get()));
        if (it == env.end()) return {index, index, true};
        const Range& r = it->second;
        Expr hi = analyzer.simplify(r.min + r.extent - 1);
        return {analyzer.simplify(r.min), hi, true};
      }
      case ExprKind::kAdd: {
        const auto& n = static_cast<const BinaryNode&>(*index);
        SymBound a = evalSymBound(n.a, env, analyzer);
        SymBound b = evalSymBound(n.b, env, analyzer);
        return {analyzer.simplify(a.lo + b.lo),
                analyzer.simplify(a.hi + b.hi), a.exact && b.exact};
      }
      case ExprKind::kSub: {
        const auto& n = static_cast<const BinaryNode&>(*index);
        SymBound a = evalSymBound(n.a, env, analyzer);
        SymBound b = evalSymBound(n.b, env, analyzer);
        return {analyzer.simplify(a.lo - b.hi),
                analyzer.simplify(a.hi - b.lo), a.exact && b.exact};
      }
      case ExprKind::kMul: {
        const auto& n = static_cast<const BinaryNode&>(*index);
        int64_t c = 0;
        Expr other;
        if (isConstInt(n.b, &c)) {
            other = n.a;
        } else if (isConstInt(n.a, &c)) {
            other = n.b;
        } else {
            return {nullptr, nullptr, false};
        }
        SymBound a = evalSymBound(other, env, analyzer);
        if (!a.lo) return a;
        Expr scale = intImm(c, index->dtype);
        if (c >= 0) {
            return {analyzer.simplify(a.lo * scale),
                    analyzer.simplify(a.hi * scale), a.exact};
        }
        return {analyzer.simplify(a.hi * scale),
                analyzer.simplify(a.lo * scale), a.exact};
      }
      case ExprKind::kFloorDiv: {
        const auto& n = static_cast<const BinaryNode&>(*index);
        int64_t c = 0;
        if (!isConstInt(n.b, &c) || c <= 0) return {nullptr, nullptr, false};
        SymBound a = evalSymBound(n.a, env, analyzer);
        if (!a.lo) return a;
        Expr divisor = intImm(c, index->dtype);
        return {analyzer.simplify(floordiv(a.lo, divisor)),
                analyzer.simplify(floordiv(a.hi, divisor)), a.exact};
      }
      case ExprKind::kFloorMod: {
        const auto& n = static_cast<const BinaryNode&>(*index);
        int64_t c = 0;
        if (!isConstInt(n.b, &c) || c <= 0) return {nullptr, nullptr, false};
        SymBound a = evalSymBound(n.a, env, analyzer);
        if (a.lo && exprDeepEqual(a.lo, a.hi)) {
            Expr divisor = intImm(c, index->dtype);
            Expr point = analyzer.simplify(floormod(a.lo, divisor));
            return {point, point, a.exact};
        }
        if (a.lo) {
            // When the window [lo, hi] cannot wrap the modulus — the
            // base is stride-aligned and the span fits in the residual —
            // the mod distributes over the window.
            Expr span = analyzer.simplify(
                binary(ExprKind::kSub, a.hi, a.lo));
            int64_t span_v = constIntOr(span, -1);
            int64_t g = analyzer.stride(a.lo, c);
            if (span_v >= 0 && (c - g) + span_v < c) {
                Expr divisor = intImm(c, index->dtype);
                Expr lo = analyzer.simplify(floormod(a.lo, divisor));
                Expr hi = analyzer.simplify(lo + span_v);
                return {lo, hi, a.exact};
            }
        }
        // Conservative: a full period.
        return {intImm(0, index->dtype), intImm(c - 1, index->dtype),
                false};
      }
      case ExprKind::kMin:
      case ExprKind::kMax: {
        const auto& n = static_cast<const BinaryNode&>(*index);
        SymBound a = evalSymBound(n.a, env, analyzer);
        SymBound b = evalSymBound(n.b, env, analyzer);
        if (!a.lo || !b.lo) return {nullptr, nullptr, false};
        if (index->kind == ExprKind::kMin) {
            return {analyzer.simplify(minExpr(a.lo, b.lo)),
                    analyzer.simplify(minExpr(a.hi, b.hi)),
                    a.exact && b.exact};
        }
        return {analyzer.simplify(maxExpr(a.lo, b.lo)),
                analyzer.simplify(maxExpr(a.hi, b.hi)),
                a.exact && b.exact};
      }
      case ExprKind::kSelect: {
        const auto& n = static_cast<const SelectNode&>(*index);
        SymBound a = evalSymBound(n.tval, env, analyzer);
        SymBound b = evalSymBound(n.fval, env, analyzer);
        if (!a.lo || !b.lo) return {nullptr, nullptr, false};
        return {analyzer.simplify(minExpr(a.lo, b.lo)),
                analyzer.simplify(maxExpr(a.hi, b.hi)), false};
      }
      case ExprKind::kCast: {
        return evalSymBound(static_cast<const CastNode&>(*index).value,
                            env, analyzer);
      }
      default:
        return {nullptr, nullptr, false};
    }
}

namespace {

/** Accumulates per-buffer region hulls. */
class RegionAccumulator
{
  public:
    RegionAccumulator(const RangeEnv* env, Analyzer* analyzer)
        : env_(env), analyzer_(analyzer)
    {}

    void
    addAccess(const Buffer& buffer, const std::vector<Expr>& indices,
              bool is_write, int64_t extent_hint = 1)
    {
        std::vector<Range> region;
        region.reserve(indices.size());
        for (size_t d = 0; d < indices.size(); ++d) {
            SymBound bound = evalSymBound(indices[d], *env_, *analyzer_);
            if (!bound.lo) {
                // Unknown: whole dimension.
                region.emplace_back(intImm(0), buffer->shape[d]);
            } else {
                Expr extent =
                    analyzer_->simplify(bound.hi - bound.lo + 1);
                region.emplace_back(bound.lo, extent);
            }
        }
        (void)extent_hint;
        addRegion(BufferRegion(buffer, std::move(region)), is_write);
    }

    void
    addRegion(BufferRegion region, bool is_write)
    {
        auto& list = is_write ? writes_ : reads_;
        for (BufferRegion& existing : list) {
            if (existing.buffer == region.buffer) {
                existing = regionUnion(existing, region, *analyzer_);
                return;
            }
        }
        list.push_back(std::move(region));
    }

    AccessRegions
    take()
    {
        return {std::move(reads_), std::move(writes_)};
    }

  private:
    const RangeEnv* env_;
    Analyzer* analyzer_;
    std::vector<BufferRegion> reads_;
    std::vector<BufferRegion> writes_;
};

/** Walks a statement, widening env with loop ranges along the way. */
class RegionVisitor : public StmtExprVisitor
{
  public:
    RegionVisitor(RangeEnv env, Analyzer analyzer)
        : env_(std::move(env)), analyzer_(std::move(analyzer)),
          accum_(&env_, &analyzer_)
    {}

    AccessRegions run(const Stmt& stmt)
    {
        visitStmt(stmt);
        return accum_.take();
    }

  protected:
    void
    visitBufferLoad(const BufferLoadNode& node) override
    {
        accum_.addAccess(node.buffer, node.indices, /*is_write=*/false);
        StmtExprVisitor::visitBufferLoad(node);
    }

    void
    visitBufferPtr(const BufferPtrNode& node) override
    {
        // Opaque intrinsic pointer: conservatively the whole buffer, both
        // directions.
        accum_.addRegion(BufferRegion::full(node.buffer), false);
        accum_.addRegion(BufferRegion::full(node.buffer), true);
    }

    void
    visitBufferStore(const BufferStoreNode& node) override
    {
        accum_.addAccess(node.buffer, node.indices, /*is_write=*/true);
        visitExpr(node.value);
        for (const Expr& idx : node.indices) visitExpr(idx);
    }

    void
    visitFor(const ForNode& node) override
    {
        env_[node.loop_var.get()] = Range(node.min, node.extent);
        analyzer_.bind(node.loop_var, Range(node.min, node.extent));
        StmtExprVisitor::visitFor(node);
        env_.erase(node.loop_var.get());
    }

    void
    visitBlockRealize(const BlockRealizeNode& node) override
    {
        // Summarize the nested block by its signature, with iterator
        // values substituted, never by inspecting its body.
        const BlockNode& block = *node.block;
        VarMap vmap;
        for (size_t i = 0; i < block.iter_vars.size(); ++i) {
            vmap[block.iter_vars[i].var.get()] = node.iter_values[i];
            visitExpr(node.iter_values[i]);
        }
        auto widen = [&](const std::vector<BufferRegion>& regions,
                         bool is_write) {
            for (const BufferRegion& br : regions) {
                std::vector<Range> widened;
                widened.reserve(br.region.size());
                for (const Range& r : br.region) {
                    Expr min_sub = substitute(r.min, vmap);
                    Expr ext_sub = substitute(r.extent, vmap);
                    SymBound lo = evalSymBound(min_sub, env_, analyzer_);
                    SymBound hi = evalSymBound(
                        analyzer_.simplify(min_sub + ext_sub - 1), env_,
                        analyzer_);
                    if (!lo.lo || !hi.hi) {
                        widened.emplace_back(intImm(0),
                                             intImm(Interval::kPosInf));
                    } else {
                        widened.emplace_back(
                            lo.lo,
                            analyzer_.simplify(hi.hi - lo.lo + 1));
                    }
                }
                // Clamp unknown dims to the buffer shape.
                for (size_t d = 0; d < widened.size(); ++d) {
                    int64_t ext = constIntOr(widened[d].extent, -1);
                    if (ext < 0 || ext >= Interval::kPosInf) {
                        widened[d] = Range(intImm(0), br.buffer->shape[d]);
                    }
                }
                accum_.addRegion(BufferRegion(br.buffer, widened),
                                 is_write);
            }
        };
        widen(block.reads, false);
        widen(block.writes, true);
        // Do not descend into the block body; alloc'd buffers are local.
    }

  private:
    RangeEnv env_;
    Analyzer analyzer_;
    RegionAccumulator accum_;
};

} // namespace

AccessRegions
detectRegions(const Stmt& stmt, const RangeEnv& env)
{
    Analyzer analyzer;
    for (const auto& [var_node, range] : env) {
        int64_t min_v = 0;
        int64_t ext_v = 0;
        if (isConstInt(range.min, &min_v) &&
            isConstInt(range.extent, &ext_v)) {
            // Rebind through a temporary Var handle aliasing the node.
            Var alias(range.min, var_node); // aliasing constructor
            analyzer.bind(alias, Interval(min_v, min_v + ext_v - 1));
        }
    }
    RegionVisitor visitor(env, std::move(analyzer));
    return visitor.run(stmt);
}

bool
regionCovers(const BufferRegion& cover, const BufferRegion& target,
             const Analyzer& analyzer)
{
    if (cover.buffer != target.buffer) return false;
    TIR_ICHECK(cover.region.size() == target.region.size());
    for (size_t d = 0; d < cover.region.size(); ++d) {
        const Range& c = cover.region[d];
        const Range& t = target.region[d];
        // c.min <= t.min and c.min + c.extent >= t.min + t.extent
        Expr lower_ok = analyzer.simplify(t.min - c.min);
        Expr upper_ok = analyzer.simplify((c.min + c.extent) -
                                          (t.min + t.extent));
        if (!(analyzer.evalInterval(lower_ok).lo >= 0)) return false;
        if (!(analyzer.evalInterval(upper_ok).lo >= 0)) return false;
    }
    return true;
}

BufferRegion
regionUnion(const BufferRegion& a, const BufferRegion& b,
            const Analyzer& analyzer)
{
    TIR_ICHECK(a.buffer == b.buffer);
    TIR_ICHECK(a.region.size() == b.region.size());
    std::vector<Range> result;
    result.reserve(a.region.size());
    for (size_t d = 0; d < a.region.size(); ++d) {
        const Range& ra = a.region[d];
        const Range& rb = b.region[d];
        Expr lo = analyzer.simplify(minExpr(ra.min, rb.min));
        Expr hi = analyzer.simplify(
            maxExpr(ra.min + ra.extent, rb.min + rb.extent));
        result.emplace_back(lo, analyzer.simplify(hi - lo));
    }
    return {a.buffer, std::move(result)};
}

} // namespace arith
} // namespace tir
