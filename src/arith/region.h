/**
 * @file
 * Symbolic buffer-region analysis. Computes the rectangular read/write
 * regions a statement touches, expressed over the variables left unbound
 * by the environment. This produces the access-region part of a block
 * signature and powers the producer-consumer cover validation (§3.3).
 */
#ifndef TENSORIR_ARITH_REGION_H
#define TENSORIR_ARITH_REGION_H

#include <unordered_map>

#include "arith/analyzer.h"
#include "ir/stmt.h"

namespace tir {
namespace arith {

/** Environment mapping variables to their (possibly symbolic) ranges. */
using RangeEnv = std::unordered_map<const VarNode*, Range>;

/** Read and write regions of a statement. */
struct AccessRegions
{
    std::vector<BufferRegion> reads;
    std::vector<BufferRegion> writes;
};

/**
 * Detect the buffer regions accessed by `stmt`. Variables bound in `env`
 * are widened over their ranges; unbound variables stay symbolic. Nested
 * blocks are summarized through their signatures (never their bodies),
 * matching the paper's isolation principle.
 */
AccessRegions detectRegions(const Stmt& stmt, const RangeEnv& env);

/** Evaluate the inclusive symbolic bounds of an index expression. */
struct SymBound
{
    Expr lo;
    Expr hi;
    bool exact = true;
};
SymBound evalSymBound(const Expr& index, const RangeEnv& env,
                      const Analyzer& analyzer);

/** True when region `cover` provably contains region `target` per-dim. */
bool regionCovers(const BufferRegion& cover, const BufferRegion& target,
                  const Analyzer& analyzer);

/** Per-dimension union hull of two regions of the same buffer. */
BufferRegion regionUnion(const BufferRegion& a, const BufferRegion& b,
                         const Analyzer& analyzer);

} // namespace arith
} // namespace tir

#endif // TENSORIR_ARITH_REGION_H
