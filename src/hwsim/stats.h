/**
 * @file
 * Static program-event extraction for the hardware performance model.
 * Walks a scheduled TensorIR function and counts, per full program run:
 * scalar arithmetic, tensor-intrinsic invocations, bytes moved per
 * storage scope, loop iterations, thread-grid geometry, and annotation
 * effects (vectorized/unrolled copies). Because counts multiply loop
 * extents along the path, moving a copy block to a different tile level
 * changes the extracted traffic exactly as it would on hardware.
 */
#ifndef TENSORIR_HWSIM_STATS_H
#define TENSORIR_HWSIM_STATS_H

#include <map>
#include <string>

#include "ir/stmt.h"

namespace tir {
namespace hwsim {

/** Aggregate dynamic-event counts of one program execution. */
struct ProgramStats
{
    /** Scalar arithmetic operations executed in block bodies. */
    double scalar_ops = 0;
    /** Multiply-accumulates executed inside tensor intrinsics, keyed by
     *  compute unit ("tensor_core", "dot4", "sdot"). */
    std::map<std::string, double> intrin_macs;
    /** Intrinsic invocation counts by compute unit. */
    std::map<std::string, double> intrin_calls;
    /** Bytes read per storage scope. */
    std::map<std::string, double> bytes_read;
    /** Bytes written per storage scope. */
    std::map<std::string, double> bytes_written;
    /** Bytes accessed under vectorized loops (any scope). */
    double vector_bytes = 0;
    /** Total loop iterations executed (loop control overhead). */
    double loop_iterations = 0;
    /** Iterations of unrolled loops (overhead removed). */
    double unrolled_iterations = 0;
    /** Largest per-launch product of blockIdx.* extents. */
    double grid_blocks = 1;
    /** Largest per-launch product of threadIdx.* extents. */
    double block_threads = 1;
    /** Number of kernel launches (top-level thread-bound nests). */
    double launches = 0;
    /** Largest parallel-loop extent (CPU threading). */
    double parallel_extent = 1;
    /** Bytes of shared-scope allocations (occupancy pressure). */
    double shared_alloc_bytes = 0;
    /** Bytes of register-scope allocations per thread. */
    double local_alloc_bytes = 0;
    /** Storage-sync barrier executions (trip-count weighted); each one
     *  stalls the whole thread block. */
    double syncs = 0;
    /** True when any thread binding exists. */
    bool uses_gpu_threads = false;

    double
    totalBytes(const std::string& scope) const
    {
        double total = 0;
        auto r = bytes_read.find(scope);
        auto w = bytes_written.find(scope);
        if (r != bytes_read.end()) total += r->second;
        if (w != bytes_written.end()) total += w->second;
        return total;
    }

    double
    totalIntrinMacs() const
    {
        double total = 0;
        for (const auto& [unit, macs] : intrin_macs) total += macs;
        return total;
    }
};

/** Extract event counts from a scheduled function (static analysis). */
ProgramStats extractStats(const PrimFunc& func);

} // namespace hwsim
} // namespace tir

#endif // TENSORIR_HWSIM_STATS_H
