#include "hwsim/stats.h"

#include "intrin/tensor_intrin.h"
#include "ir/functor.h"

namespace tir {
namespace hwsim {

namespace {

/** Count arithmetic operation nodes in an expression. */
class OpCounter : public ExprVisitor
{
  public:
    double ops = 0;

    void
    visitExpr(const Expr& e) override
    {
        switch (e->kind) {
          case ExprKind::kAdd:
          case ExprKind::kSub:
          case ExprKind::kMul:
          case ExprKind::kDiv:
          case ExprKind::kMin:
          case ExprKind::kMax:
          case ExprKind::kSelect:
            ops += 1;
            break;
          case ExprKind::kCall:
            ops += 4; // transcendental-ish calls cost more
            break;
          default:
            break;
        }
        ExprVisitor::visitExpr(e);
    }
};

class StatsExtractor : public StmtExprVisitor
{
  public:
    ProgramStats stats;

    void
    run(const PrimFunc& func)
    {
        visitStmt(func->body);
        for (const auto& [buffer, footprint] : footprints_) {
            if (buffer->scope == "shared") {
                stats.shared_alloc_bytes += footprint;
            } else {
                stats.local_alloc_bytes += footprint;
            }
        }
    }

  protected:
    void
    visitFor(const ForNode& node) override
    {
        double extent =
            static_cast<double>(std::max<int64_t>(
                constIntOr(node.extent, 1), 1));
        double saved_trip = trip_;
        bool saved_vector = in_vectorized_;
        bool launch_root = false;
        trip_ *= extent;
        switch (node.for_kind) {
          case ForKind::kThreadBinding:
            stats.uses_gpu_threads = true;
            if (thread_depth_ == 0) {
                // A new kernel launch begins here.
                launch_root = true;
                cur_grid_ = 1;
                cur_threads_ = 1;
                stats.launches += 1;
            }
            ++thread_depth_;
            if (node.thread_tag.rfind("blockIdx", 0) == 0) {
                cur_grid_ *= extent;
            } else {
                cur_threads_ *= extent;
            }
            break;
          case ForKind::kParallel:
            stats.parallel_extent =
                std::max(stats.parallel_extent, extent);
            stats.loop_iterations += trip_;
            break;
          case ForKind::kVectorized:
            in_vectorized_ = true;
            break;
          case ForKind::kUnrolled:
            stats.unrolled_iterations += trip_;
            break;
          case ForKind::kSerial:
            stats.loop_iterations += trip_;
            break;
        }
        visitStmt(node.body);
        if (node.for_kind == ForKind::kThreadBinding) {
            --thread_depth_;
            if (launch_root) {
                stats.grid_blocks =
                    std::max(stats.grid_blocks, cur_grid_);
                stats.block_threads =
                    std::max(stats.block_threads, cur_threads_);
            }
        }
        trip_ = saved_trip;
        in_vectorized_ = saved_vector;
    }

    void
    visitBlock(const BlockNode& node) override
    {
        // Identity layout rewrites are folded away by real compilers
        // (the paper's inlined ReIndex stages): zero cost.
        if (node.annotations.count("layout_free")) return;
        auto it = node.annotations.find("tensor_intrin");
        std::string saved_intrin = current_intrin_;
        if (it != node.annotations.end() &&
            it->second->kind == ExprKind::kStringImm) {
            current_intrin_ =
                static_cast<const StringImmNode&>(*it->second).value;
        }
        // Cooperative fetches distribute their iterations over the
        // participating threads: divide the trip count accordingly.
        double saved_trip = trip_;
        auto coop = node.annotations.find("cooperative_fetch");
        if (coop != node.annotations.end()) {
            int64_t threads = constIntOr(coop->second, 1);
            if (threads > 1) trip_ /= static_cast<double>(threads);
        }
        double saved_entry = block_entry_trip_;
        block_entry_trip_ = trip_;
        if (node.init) {
            // The init statement runs once per output element, i.e. on
            // the first reduction iteration only.
            double reduce_extent = 1;
            for (const IterVar& iv : node.iter_vars) {
                if (iv.type == IterType::kReduce) {
                    reduce_extent *= static_cast<double>(
                        std::max<int64_t>(
                            constIntOr(iv.dom.extent, 1), 1));
                }
            }
            double saved = trip_;
            trip_ /= std::max(1.0, reduce_extent);
            visitStmt(node.init);
            trip_ = saved;
        }
        visitStmt(node.body);
        block_entry_trip_ = saved_entry;
        trip_ = saved_trip;
        current_intrin_ = saved_intrin;
    }

    void
    visitBlockRealize(const BlockRealizeNode& node) override
    {
        visitBlock(*node.block);
    }

    void
    visitBufferStore(const BufferStoreNode& node) override
    {
        double bytes =
            static_cast<double>(node.buffer->dtype.bytes()) * trip_;
        stats.bytes_written[node.buffer->scope] += bytes;
        if (node.buffer->scope != "global") {
            // Per-block-instance footprint: bytes written by one
            // instance of the staging block bound the live tile size.
            double per_instance =
                bytes / std::max(1.0, block_entry_trip_);
            double& footprint = footprints_[node.buffer.get()];
            footprint = std::max(footprint, per_instance);
        }
        if (in_vectorized_) stats.vector_bytes += bytes;
        OpCounter counter;
        counter.visitExpr(node.value);
        stats.scalar_ops += counter.ops * trip_;
        StmtExprVisitor::visitBufferStore(node);
    }

    void
    visitBufferLoad(const BufferLoadNode& node) override
    {
        double bytes =
            static_cast<double>(node.buffer->dtype.bytes()) * trip_;
        stats.bytes_read[node.buffer->scope] += bytes;
        if (in_vectorized_) stats.vector_bytes += bytes;
        StmtExprVisitor::visitBufferLoad(node);
    }

    void
    visitCall(const CallNode& node) override
    {
        if (!current_intrin_.empty() &&
            TensorIntrin::exists(current_intrin_)) {
            const TensorIntrin& ti = TensorIntrin::get(current_intrin_);
            stats.intrin_calls[ti.compute_unit] += trip_;
            stats.intrin_macs[ti.compute_unit] +=
                static_cast<double>(ti.macs) * trip_;
            // Tile traffic: args are (C, A, B) pointers for matmul-style
            // intrinsics.
            auto tile_bytes = [&](int64_t rows, int64_t cols,
                                  DataType dtype) {
                return static_cast<double>(rows * cols * dtype.bytes()) *
                       trip_;
            };
            for (size_t i = 0; i < node.args.size(); ++i) {
                if (node.args[i]->kind != ExprKind::kBufferPtr) continue;
                const auto& ptr =
                    static_cast<const BufferPtrNode&>(*node.args[i]);
                const std::string& scope = ptr.buffer->scope;
                if (i == 0) {
                    double bytes = tile_bytes(ti.tile_m, ti.tile_n,
                                              ti.acc_dtype);
                    stats.bytes_read[scope] += bytes;
                    stats.bytes_written[scope] += bytes;
                } else if (i == 1) {
                    stats.bytes_read[scope] +=
                        tile_bytes(ti.tile_m, ti.tile_k, ti.in_dtype);
                } else {
                    stats.bytes_read[scope] +=
                        tile_bytes(ti.tile_k, ti.tile_n, ti.in_dtype);
                }
            }
            return; // opaque: no scalar costs inside
        }
        StmtExprVisitor::visitCall(node);
    }

    void
    visitStmt(const Stmt& s) override
    {
        if (asStorageSync(*s)) {
            stats.syncs += trip_;
            return;
        }
        if (s->kind == StmtKind::kIfThenElse) {
            // Predicated copies (e.g. padding gathers) mostly take the
            // then-branch; attribute full cost there only.
            const auto& n = static_cast<const IfThenElseNode&>(*s);
            visitExpr(n.cond);
            visitStmt(n.then_case);
            return;
        }
        StmtExprVisitor::visitStmt(s);
    }

  private:
    double trip_ = 1;
    double block_entry_trip_ = 1;
    std::map<const BufferNode*, double> footprints_;
    bool in_vectorized_ = false;
    int thread_depth_ = 0;
    double cur_grid_ = 1;
    double cur_threads_ = 1;
    std::string current_intrin_;
};

} // namespace

ProgramStats
extractStats(const PrimFunc& func)
{
    StatsExtractor extractor;
    extractor.run(func);
    return extractor.stats;
}

} // namespace hwsim
} // namespace tir
