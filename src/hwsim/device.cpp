#include "hwsim/device.h"

#include <algorithm>
#include <cmath>

namespace tir {
namespace hwsim {

RunEstimate
DeviceModel::run(const PrimFunc& func) const
{
    return estimate(extractStats(func));
}

RunEstimate
GpuDevice::estimate(const ProgramStats& stats) const
{
    RunEstimate result;
    if (stats.block_threads > max_threads_per_block) {
        result.violation = "thread block exceeds " +
                           std::to_string(
                               static_cast<int>(max_threads_per_block)) +
                           " threads";
        result.latency_us = std::numeric_limits<double>::infinity();
        return result;
    }
    if (stats.shared_alloc_bytes > max_shared_bytes) {
        result.violation = "shared memory allocation exceeds capacity";
        result.latency_us = std::numeric_limits<double>::infinity();
        return result;
    }

    const double cycles_per_us = clock_ghz * 1e3;

    // Occupancy: how much of the machine the launch geometry can fill.
    // Warp-scope tensor intrinsics engage 32 implicit lanes per warp.
    double lane_factor =
        stats.intrin_macs.count("tensor_core") ? 32.0 : 1.0;
    double total_threads =
        stats.grid_blocks * stats.block_threads * lane_factor;
    double machine_threads = sms * threads_for_full_occupancy_per_sm;
    double occupancy = stats.uses_gpu_threads
                           ? std::min(1.0, total_threads / machine_threads)
                           : 1.0 / machine_threads;
    // Very small blocks schedule poorly.
    if (stats.uses_gpu_threads && stats.block_threads < 32) {
        occupancy *= stats.block_threads / 32.0;
    }
    occupancy = std::max(occupancy, 1e-6);

    // Compute pipes (cycles).
    double scalar_cycles =
        stats.scalar_ops / (sms * fma_per_sm_per_cycle * occupancy);
    double tc_macs = 0;
    double dot_macs = 0;
    for (const auto& [unit, macs] : stats.intrin_macs) {
        if (unit == "tensor_core") {
            tc_macs += macs;
        } else {
            dot_macs += macs;
        }
    }
    double tc_cycles =
        tc_macs / (sms * tc_macs_per_sm_per_cycle * occupancy);
    double dot_cycles =
        dot_macs / (sms * dot_macs_per_sm_per_cycle * occupancy);
    double loop_cycles = stats.loop_iterations /
                         (sms * fma_per_sm_per_cycle * occupancy);

    // Memory system. Coalescing/vectorization efficiency: fully
    // vectorized copies reach peak bandwidth, scalar ones reach half.
    double global_bytes = stats.totalBytes("global");
    double all_bytes = 1e-9;
    for (const auto& [scope, bytes] : stats.bytes_read) {
        all_bytes += bytes;
    }
    for (const auto& [scope, bytes] : stats.bytes_written) {
        all_bytes += bytes;
    }
    double vector_fraction =
        std::min(1.0, stats.vector_bytes / all_bytes);
    double bw_efficiency = 0.55 + 0.45 * vector_fraction;
    double global_us = global_bytes /
                       (global_bw_gbps * 1e3 * bw_efficiency *
                        std::min(1.0, occupancy * 4));
    double shared_bytes = stats.totalBytes("shared");
    double shared_cycles =
        shared_bytes / (sms * shared_bytes_per_sm_per_cycle * occupancy);
    // Register-file / fragment scopes are effectively free; tiny charge
    // keeps orderings stable.
    double frag_bytes = 0;
    for (const auto& [scope, bytes] : stats.bytes_read) {
        if (scope != "global" && scope != "shared") frag_bytes += bytes;
    }
    double frag_cycles =
        frag_bytes / (sms * shared_bytes_per_sm_per_cycle * 16 *
                      occupancy);

    // Barrier stalls: ProgramStats::syncs is loop-trip-weighted and
    // includes the thread extents, so it already counts per-thread
    // arrival events; each costs a fixed drain in issue slots.
    double sync_cycles = stats.syncs * sync_stall_cycles /
                         (sms * fma_per_sm_per_cycle * occupancy);
    double compute_us =
        (scalar_cycles + tc_cycles + dot_cycles + loop_cycles * 0.15 +
         sync_cycles) /
        cycles_per_us;
    double mem_us =
        global_us + (shared_cycles + frag_cycles) / cycles_per_us;
    // Compute and memory overlap; the slower side dominates, with a
    // small serialization tail from the other.
    double body_us = std::max(compute_us, mem_us) +
                     0.15 * std::min(compute_us, mem_us);
    result.latency_us =
        body_us + launch_overhead_us * std::max(1.0, stats.launches);
    return result;
}

RunEstimate
CpuDevice::estimate(const ProgramStats& stats) const
{
    RunEstimate result;
    if (stats.uses_gpu_threads) {
        result.violation = "GPU thread bindings on a CPU target";
        result.latency_us = std::numeric_limits<double>::infinity();
        return result;
    }

    const double cycles_per_us = clock_ghz * 1e3;
    double cores_used =
        std::min<double>(cores, std::max(1.0, stats.parallel_extent));

    double all_bytes = 1e-9;
    for (const auto& [scope, bytes] : stats.bytes_read) {
        all_bytes += bytes;
    }
    for (const auto& [scope, bytes] : stats.bytes_written) {
        all_bytes += bytes;
    }
    double vector_fraction =
        std::min(1.0, stats.vector_bytes / all_bytes);
    // Vectorized loops retire several scalar ops per instruction.
    double scalar_rate = scalar_ops_per_core_per_cycle +
                         (simd_ops_per_core_per_cycle -
                          scalar_ops_per_core_per_cycle) *
                             vector_fraction;
    double scalar_cycles =
        stats.scalar_ops / (cores_used * scalar_rate);
    double sdot_macs = 0;
    for (const auto& [unit, macs] : stats.intrin_macs) sdot_macs += macs;
    double sdot_cycles =
        sdot_macs / (cores_used * sdot_macs_per_core_per_cycle);
    double loop_cycles =
        stats.loop_iterations / (cores_used * 2.0);

    // Memory: global traffic through DRAM bandwidth; non-global scopes
    // model cache-resident staging buffers.
    double global_us =
        stats.totalBytes("global") / (mem_bw_gbps * 1e3);
    double cached_us = 0;
    for (const auto& [scope, bytes] : stats.bytes_read) {
        if (scope != "global") cached_us += bytes;
    }
    for (const auto& [scope, bytes] : stats.bytes_written) {
        if (scope != "global") cached_us += bytes;
    }
    cached_us /= (cached_bw_gbps_per_core * 1e3 * cores_used);

    double compute_us =
        (scalar_cycles + sdot_cycles + loop_cycles * 0.2) / cycles_per_us;
    double mem_us = global_us + cached_us;
    result.latency_us = std::max(compute_us, mem_us) +
                        0.2 * std::min(compute_us, mem_us) + 1.0;
    return result;
}

} // namespace hwsim
} // namespace tir
