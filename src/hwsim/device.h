/**
 * @file
 * Analytical device models. These substitute for the paper's RTX 3080
 * and Graviton2 testbeds: they convert extracted program-event counts
 * into an estimated latency. The models capture the effects the paper's
 * evaluation hinges on — tensor-core vs scalar throughput, per-scope
 * memory bandwidth, occupancy from thread geometry, vectorized copies —
 * so schedule-quality *orderings* carry over even though absolute
 * numbers are synthetic. Constraint checks (threads per block, shared
 * memory capacity) mirror the paper's threading validation (§3.3).
 */
#ifndef TENSORIR_HWSIM_DEVICE_H
#define TENSORIR_HWSIM_DEVICE_H

#include <memory>
#include <string>

#include "hwsim/stats.h"

namespace tir {
namespace hwsim {

/** Result of running a program on a simulated device. */
struct RunEstimate
{
    /** Estimated latency in microseconds; infinity when invalid. */
    double latency_us = 0;
    /** Empty when the program satisfies all device constraints. */
    std::string violation;

    bool valid() const { return violation.empty(); }
};

/** Base interface of all device models. */
class DeviceModel
{
  public:
    virtual ~DeviceModel() = default;
    virtual std::string name() const = 0;
    /** Estimate program latency (and check device constraints). */
    virtual RunEstimate estimate(const ProgramStats& stats) const = 0;
    /** Convenience: extract stats then estimate. */
    RunEstimate run(const PrimFunc& func) const;
};

/** An RTX 3080-class GPU with Tensor Cores. */
class GpuDevice : public DeviceModel
{
  public:
    // Architecture parameters (3080-like).
    int sms = 68;
    double clock_ghz = 1.71;
    double fma_per_sm_per_cycle = 128;      // fp32/fp16 scalar FMA lanes
    double tc_macs_per_sm_per_cycle = 2048; // fp16 tensor core MACs
    double dot_macs_per_sm_per_cycle = 512; // dp4a-style int8 dot
    double global_bw_gbps = 760;
    double shared_bytes_per_sm_per_cycle = 128;
    double launch_overhead_us = 4.0;
    /** Issue slots every thread loses at a storage_sync barrier
     *  (pipeline drain + arrival spread). Charged per dynamic barrier
     *  execution like scalar work, so redundant-barrier elision
     *  (lower/optimize.cpp) shows up as a latency delta. */
    double sync_stall_cycles = 24;
    double max_threads_per_block = 1024;
    double max_shared_bytes = 100 * 1024;
    double threads_for_full_occupancy_per_sm = 1024;

    std::string name() const override { return "sim-gpu-rtx3080"; }
    RunEstimate estimate(const ProgramStats& stats) const override;
};

/** A Graviton2-class ARM server CPU with NEON + sdot. */
class CpuDevice : public DeviceModel
{
  public:
    int cores = 64;
    double clock_ghz = 2.5;
    double scalar_ops_per_core_per_cycle = 4;  // superscalar ALUs
    double simd_ops_per_core_per_cycle = 24;   // dual-issue NEON lanes
    double sdot_macs_per_core_per_cycle = 32;  // 2x sdot issue, 16 MACs
    double mem_bw_gbps = 190;
    double cached_bw_gbps_per_core = 80;       // L1/L2-resident traffic

    std::string name() const override { return "sim-cpu-graviton2"; }
    RunEstimate estimate(const ProgramStats& stats) const override;
};

} // namespace hwsim
} // namespace tir

#endif // TENSORIR_HWSIM_DEVICE_H
