#include "meta/journal.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "support/crc32.h"
#include "support/double_bits.h"
#include "support/failpoint.h"
#include "support/logging.h"

namespace tir {
namespace meta {

namespace {

// CRC-32 lives in support/crc32.h, shared with the measurement
// runner's pipe framing so both protocols checksum identically.
using support::crc32;

// --- exact double round-trip (support/double_bits.h, shared with the
// tuning database so both formats encode latencies identically) -------

using support::doubleBitsHex;

std::string
bitsOf(double value)
{
    return doubleBitsHex(value);
}

double
doubleOf(const std::string& hex, bool* ok)
{
    // Sticky-false accumulation: callers parse several fields into one
    // `ok` flag, so a successful parse must not clear an earlier
    // failure.
    bool field_ok = false;
    double value = support::doubleFromBitsHex(hex, &field_ok);
    if (!field_ok) *ok = false;
    return value;
}

// --- decision (de)serialization, same shape as database.cpp ------------

void
writeDecision(std::ostringstream& os, const char* tag, const Decision& d)
{
    os << tag << " "
       << (d.kind == Decision::Kind::kPerfectTile ? "tile" : "cat") << " "
       << d.extent << " " << d.number << " " << d.max_innermost << " "
       << d.num_candidates;
    for (int64_t v : d.values) os << " " << v;
    os << "\n";
}

bool
readDecision(std::istringstream& ls, Decision* d)
{
    std::string kind;
    ls >> kind;
    if (kind == "tile") {
        d->kind = Decision::Kind::kPerfectTile;
    } else if (kind == "cat") {
        d->kind = Decision::Kind::kCategorical;
    } else {
        return false;
    }
    ls >> d->extent >> d->number >> d->max_innermost >> d->num_candidates;
    if (ls.fail()) return false;
    int64_t v;
    while (ls >> v) d->values.push_back(v);
    return true;
}

// --- record bodies ------------------------------------------------------

std::string
headerBody(const JournalHeader& h)
{
    std::ostringstream os;
    os << "section " << h.workload_hash << " " << h.seed << " "
       << (h.label.empty() ? "-" : h.label) << "\n";
    os << "options " << h.population << " " << h.generations << " "
       << h.children_per_generation << " " << h.measured_per_generation
       << " " << (h.use_cost_model ? 1 : 0) << " "
       << bitsOf(h.measure_overhead_us) << " " << bitsOf(h.measure_repeats)
       << " " << (h.measure_backend.empty() ? "-" : h.measure_backend)
       << " " << h.measure_warmup << " " << h.measure_repeats_real << " "
       << bitsOf(h.compile_budget_ms) << " "
       << (h.measure_pin_cpu ? 1 : 0) << "\n";
    return os.str();
}

std::string
generationBody(const JournalGeneration& g)
{
    std::ostringstream os;
    os << "gen " << g.index << " " << g.trials_measured << " "
       << g.measured_valid << " " << g.measured_invalid << " "
       << g.compile_timeout_filtered << " " << g.crash_filtered << " "
       << g.hang_filtered << " " << g.measure_fallbacks
       << " " << g.invalid_filtered << " " << g.race_filtered << " "
       << g.bounds_filtered << " " << g.runtime_filtered << " "
       << g.timeout_filtered << " " << g.numeric_filtered << " "
       << g.lint_filtered << " " << g.memo_hits << " "
       << g.memo_measure_hits << " " << g.model_fallbacks << " "
       << bitsOf(g.tuning_cost_us) << "\n";
    os << "best " << bitsOf(g.best_latency_us) << "\n";
    for (const Decision& d : g.best_decisions) writeDecision(os, "bd", d);
    os << "history";
    for (double h : g.history) os << " " << bitsOf(h);
    os << "\n";
    for (const JournalIndividual& ind : g.population) {
        os << "indiv " << bitsOf(ind.latency_us) << " "
           << ind.decisions.size() << "\n";
        for (const Decision& d : ind.decisions) writeDecision(os, "id", d);
    }
    for (const JournalSample& s : g.new_samples) {
        os << "sample " << bitsOf(s.target);
        for (double f : s.features) os << " " << bitsOf(f);
        os << "\n";
    }
    for (const JournalMemoEntry& m : g.new_memo) {
        os << "memo " << m.hash << " " << (m.measured ? 1 : 0) << " "
           << (m.eval_failed ? 1 : 0) << " "
           << (m.compile_timed_out ? 1 : 0) << " "
           << (m.crashed ? 1 : 0) << " " << (m.hanged ? 1 : 0) << " "
           << bitsOf(m.latency_us) << " "
           << bitsOf(m.measured_latency_us);
        for (double f : m.features) os << " " << bitsOf(f);
        // The violation text can hold spaces; keep it last, behind an
        // unambiguous separator, so the feature list stays parseable.
        if (!m.violation.empty()) os << " | " << m.violation;
        os << "\n";
    }
    for (const JournalMeasured& jm : g.measured) {
        os << "meas " << jm.hash << " " << bitsOf(jm.latency_us) << " "
           << (jm.compile_timed_out ? 1 : 0) << " "
           << (jm.crashed ? 1 : 0) << " " << (jm.hanged ? 1 : 0)
           << "\n";
    }
    return os.str();
}

// --- record parsing -----------------------------------------------------

/** Parse one record body into `section`/`gen`. Returns false on any
 *  malformed line (the caller treats the record as damaged). */
bool
parseRecord(const std::string& body, JournalContents* out)
{
    std::istringstream is(body);
    std::string line;
    JournalGeneration gen;
    bool is_gen = false;
    JournalIndividual* open_indiv = nullptr;
    size_t open_indiv_decisions = 0;
    while (std::getline(is, line)) {
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        bool ok = true;
        if (tag == "section") {
            JournalSection section;
            ls >> section.header.workload_hash >> section.header.seed >>
                section.header.label;
            if (ls.fail()) return false;
            if (section.header.label == "-") section.header.label.clear();
            if (!std::getline(is, line)) return false;
            std::istringstream opts(line);
            std::string opt_tag, overhead, repeats, backend, budget;
            int cost_model = 1;
            int pin = 0;
            opts >> opt_tag >> section.header.population >>
                section.header.generations >>
                section.header.children_per_generation >>
                section.header.measured_per_generation >> cost_model >>
                overhead >> repeats >> backend >>
                section.header.measure_warmup >>
                section.header.measure_repeats_real >> budget >> pin;
            if (opts.fail() || opt_tag != "options") return false;
            section.header.use_cost_model = cost_model != 0;
            section.header.measure_overhead_us = doubleOf(overhead, &ok);
            section.header.measure_repeats = doubleOf(repeats, &ok);
            if (backend != "-") section.header.measure_backend = backend;
            section.header.compile_budget_ms = doubleOf(budget, &ok);
            section.header.measure_pin_cpu = pin != 0;
            if (!ok) return false;
            out->sections.push_back(std::move(section));
        } else if (tag == "gen") {
            ls >> gen.index >> gen.trials_measured >>
                gen.measured_valid >> gen.measured_invalid >>
                gen.compile_timeout_filtered >> gen.crash_filtered >>
                gen.hang_filtered >> gen.measure_fallbacks >>
                gen.invalid_filtered >> gen.race_filtered >>
                gen.bounds_filtered >> gen.runtime_filtered >>
                gen.timeout_filtered >> gen.numeric_filtered >>
                gen.lint_filtered >> gen.memo_hits >>
                gen.memo_measure_hits >> gen.model_fallbacks;
            std::string cost;
            ls >> cost;
            if (ls.fail()) return false;
            gen.tuning_cost_us = doubleOf(cost, &ok);
            if (!ok) return false;
            is_gen = true;
        } else if (tag == "best") {
            std::string lat;
            ls >> lat;
            gen.best_latency_us = doubleOf(lat, &ok);
            if (ls.fail() || !ok) return false;
        } else if (tag == "bd") {
            Decision d;
            if (!readDecision(ls, &d)) return false;
            gen.best_decisions.push_back(std::move(d));
        } else if (tag == "history") {
            std::string h;
            while (ls >> h) {
                gen.history.push_back(doubleOf(h, &ok));
                if (!ok) return false;
            }
        } else if (tag == "indiv") {
            std::string lat;
            ls >> lat;
            JournalIndividual ind;
            ind.latency_us = doubleOf(lat, &ok);
            size_t n_decisions = 0;
            ls >> n_decisions;
            if (ls.fail() || !ok) return false;
            gen.population.push_back(std::move(ind));
            open_indiv = &gen.population.back();
            open_indiv_decisions = n_decisions;
        } else if (tag == "id") {
            if (!open_indiv ||
                open_indiv->decisions.size() >= open_indiv_decisions) {
                return false;
            }
            Decision d;
            if (!readDecision(ls, &d)) return false;
            open_indiv->decisions.push_back(std::move(d));
        } else if (tag == "sample") {
            JournalSample s;
            std::string word;
            ls >> word;
            s.target = doubleOf(word, &ok);
            if (ls.fail() || !ok) return false;
            while (ls >> word) {
                s.features.push_back(doubleOf(word, &ok));
                if (!ok) return false;
            }
            gen.new_samples.push_back(std::move(s));
        } else if (tag == "memo") {
            JournalMemoEntry m;
            int measured = 0, failed = 0, ctimeout = 0;
            int crashed = 0, hanged = 0;
            std::string word, mword;
            ls >> m.hash >> measured >> failed >> ctimeout >> crashed >>
                hanged >> word >> mword;
            if (ls.fail()) return false;
            m.measured = measured != 0;
            m.eval_failed = failed != 0;
            m.compile_timed_out = ctimeout != 0;
            m.crashed = crashed != 0;
            m.hanged = hanged != 0;
            m.latency_us = doubleOf(word, &ok);
            if (!ok) return false;
            m.measured_latency_us = doubleOf(mword, &ok);
            if (!ok) return false;
            while (ls >> word) {
                if (word == "|") {
                    std::getline(ls, m.violation);
                    if (!m.violation.empty() && m.violation.front() == ' ') {
                        m.violation.erase(0, 1);
                    }
                    break;
                }
                m.features.push_back(doubleOf(word, &ok));
                if (!ok) return false;
            }
            gen.new_memo.push_back(std::move(m));
        } else if (tag == "meas") {
            JournalMeasured jm;
            std::string lat;
            int ctimeout = 0, crashed = 0, hanged = 0;
            ls >> jm.hash >> lat >> ctimeout >> crashed >> hanged;
            if (ls.fail()) return false;
            jm.latency_us = doubleOf(lat, &ok);
            if (!ok) return false;
            jm.compile_timed_out = ctimeout != 0;
            jm.crashed = crashed != 0;
            jm.hanged = hanged != 0;
            gen.measured.push_back(jm);
        } else if (!tag.empty()) {
            return false;
        }
    }
    if (is_gen) {
        if (out->sections.empty()) return false;
        JournalSection& section = out->sections.back();
        // Checkpoints append in index order within a section; anything
        // else means frames from different runs interleaved.
        if (gen.index != static_cast<int>(section.generations.size())) {
            return false;
        }
        section.generations.push_back(std::move(gen));
    }
    return true;
}

} // namespace

bool
JournalHeader::matches(const JournalHeader& other) const
{
    return workload_hash == other.workload_hash && seed == other.seed &&
           label == other.label && population == other.population &&
           generations == other.generations &&
           children_per_generation == other.children_per_generation &&
           measured_per_generation == other.measured_per_generation &&
           use_cost_model == other.use_cost_model &&
           measure_overhead_us == other.measure_overhead_us &&
           measure_repeats == other.measure_repeats &&
           measure_backend == other.measure_backend &&
           measure_warmup == other.measure_warmup &&
           measure_repeats_real == other.measure_repeats_real &&
           compile_budget_ms == other.compile_budget_ms &&
           measure_pin_cpu == other.measure_pin_cpu;
}

const JournalSection*
JournalContents::findSection(const JournalHeader& header) const
{
    for (auto it = sections.rbegin(); it != sections.rend(); ++it) {
        if (it->header.matches(header)) return &*it;
    }
    return nullptr;
}

JournalContents
readJournal(const std::string& path)
{
    JournalContents out;
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) return out;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    // Records are framed by a trailing "crc <8 hex>" line. Walk frame
    // by frame; the first damaged frame (bad checksum, torn tail,
    // malformed body) ends recovery — everything after it may depend on
    // the lost state.
    size_t pos = 0;
    while (pos < text.size()) {
        size_t scan = pos;
        size_t frame_end = std::string::npos;
        std::string body;
        while (scan < text.size()) {
            size_t nl = text.find('\n', scan);
            if (nl == std::string::npos) break; // torn: no newline
            std::string line = text.substr(scan, nl - scan);
            if (line.rfind("crc ", 0) == 0) {
                body = text.substr(pos, scan - pos);
                frame_end = nl + 1;
                uint32_t stored =
                    static_cast<uint32_t>(std::strtoul(
                        line.c_str() + 4, nullptr, 16));
                if (line.size() != 12 || stored != crc32(body)) {
                    frame_end = std::string::npos; // damaged frame
                }
                break;
            }
            scan = nl + 1;
        }
        if (frame_end == std::string::npos) {
            ++out.records_dropped;
            break;
        }
        if (!parseRecord(body, &out)) {
            ++out.records_dropped;
            break;
        }
        pos = frame_end;
        out.valid_bytes = pos;
    }
    return out;
}

void
resetJournal(const std::string& path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    TIR_CHECK(out.good()) << "cannot open journal " << path;
}

JournalWriter::JournalWriter(const std::string& path) : path_(path)
{
    out_.open(path, std::ios::binary | std::ios::app);
    TIR_CHECK(out_.good()) << "cannot open journal " << path;
}

JournalWriter::JournalWriter(const std::string& path, uint64_t resume_at)
    : path_(path)
{
    // Drop any torn tail left by the crash before appending: the bytes
    // past the last intact record are unparseable garbage.
    std::error_code ec;
    if (std::filesystem::exists(path, ec)) {
        std::filesystem::resize_file(path, resume_at, ec);
        TIR_CHECK(!ec) << "cannot truncate journal " << path << ": "
                       << ec.message();
    }
    out_.open(path, std::ios::binary | std::ios::app);
    TIR_CHECK(out_.good()) << "cannot open journal " << path;
}

void
JournalWriter::beginSection(const JournalHeader& header)
{
    appendRecord(headerBody(header));
}

void
JournalWriter::appendGeneration(const JournalGeneration& gen)
{
    appendRecord(generationBody(gen));
}

void
JournalWriter::appendRecord(std::string body)
{
    char crc_line[16];
    std::snprintf(crc_line, sizeof(crc_line), "crc %08x\n", crc32(body));
    std::string framed = std::move(body);
    framed += crc_line;
    // Chaos hook: flip bytes of the framed record before it hits disk,
    // so recovery of a corrupted-on-disk journal is testable.
    failpoint::injectCorrupt("journal.append", framed);
    out_ << framed;
    out_.flush();
    TIR_CHECK(out_.good())
        << "journal write to " << path_
        << " failed (disk full or I/O error)";
}

} // namespace meta
} // namespace tir
