/**
 * @file
 * Process-isolated measurement runner: a fork-server worker pool that
 * executes JIT-compiled candidate kernels in child processes, so the
 * one thing an evolutionary search will eventually generate — a
 * candidate that segfaults, abort()s, or loops forever in native code —
 * kills a disposable worker instead of the tuning session (the same
 * reason AutoTVM and TVM's RPC runner measure in isolated, timeout-
 * killed processes).
 *
 * Division of labour with JitMeasurer (meta/measure.h):
 *
 *  - The **parent** keeps everything trustworthy: candidate compile
 *    (the compiler runs as a `cc` subprocess already), validity
 *    oracle, memoisation, journaling.
 *  - The **worker child** does the only dangerous step: dlopen the
 *    compiled `.so` and run the timing loop over the seeded argument
 *    tensors. Workers are pre-forked and reused across candidates
 *    (fork-server style); a worker inherits the workload and the
 *    measurement seed at fork time, so a request only carries the
 *    object path, entry symbol, and the candidate's intermediate-
 *    buffer sizes.
 *
 * Requests and responses travel over pipes as line-oriented records
 * framed by a trailing `crc <8 hex>` line — the same CRC-32 framing
 * discipline as the checkpoint journal (meta/journal.h), so a torn or
 * corrupted frame is detected, never misparsed.
 *
 * Failure classification (RunnerStatus) is the contract the search's
 * accounting builds on:
 *
 *  - a worker killed by SIGSEGV/SIGBUS/SIGFPE/SIGABRT — or exiting
 *    nonzero — while running a kernel is a **crash**: deterministic,
 *    never retried, counted in TuneResult::crash_filtered;
 *  - a worker that exceeds the wall-clock budget is SIGKILLed and
 *    classified a **hang** — the hard timeout covers native loops the
 *    cooperative StageWatchdog cannot interrupt — counted in
 *    TuneResult::hang_filtered;
 *  - a worker that dies *before* the kernel ran (startup failure,
 *    clean exit without a reply) is **transient**: respawned and
 *    retried with bounded exponential backoff;
 *  - retries exhausted (or fork unavailable on this platform) is
 *    **unavailable**: the caller degrades to the in-process timing
 *    path, preserving PR 8 behaviour.
 *
 * Fork-safety invariants (see also support/cpu_pin.h and the FileLock
 * notes in runtime/jit.cpp): workers are spawned from the measurer's
 * constructor — before the search's thread pool exists — and respawned
 * only from the sequential measurement fold, while pool workers are
 * parked on their condition variable; no ScopedCpuPin or flock is ever
 * held across the fork (the CPU pin is taken *inside* the child). The
 * child closes every inherited descriptor except its two pipe ends and
 * stdio, and leaves via _exit so no parent-owned destructor (journal
 * stream, trace session, dlopen handles) runs twice.
 *
 * Deterministic fault injection: the child evaluates the data-keyed
 * failpoint sites `runner.crash` (abort → SIGABRT), `runner.segv`
 * (raise SIGSEGV), and `runner.hang` (loop until the parent's timeout
 * kill) against the candidate's structural hash, and the parent
 * evaluates `runner.spawn` (simulated worker startup failure) per
 * spawn attempt — making every classification path testable from CI.
 */
#ifndef TENSORIR_META_RUNNER_H
#define TENSORIR_META_RUNNER_H

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "tir/schedule.h"

namespace tir {
namespace meta {

/** Classification of one isolated measurement attempt. */
enum class RunnerStatus : uint8_t
{
    /** The worker ran the kernel and returned a latency. */
    kOk,
    /** The worker ran the kernel; the kernel itself rejected (fuel
     *  exhaustion, dlopen/dlsym failure, injected interpreter fault).
     *  The candidate is invalid, the worker stays alive. */
    kReject,
    /** The worker died (signal or nonzero exit) while the kernel was
     *  running. Deterministic — never retried. */
    kCrash,
    /** The worker exceeded the wall-clock budget and was SIGKILLed.
     *  Never retried. */
    kHang,
    /** No isolated measurement could be made: fork unavailable, or
     *  every transient retry failed. The caller should fall back to
     *  the in-process path. */
    kUnavailable,
};

/** Stable lower-case name of a status ("ok", "reject", "crash",
 *  "hang", "unavailable") for traces and logs. */
const char* runnerStatusName(RunnerStatus status);

/** One isolated measurement request: where the compiled kernel lives
 *  and how to time it. The argument tensors are *not* part of the
 *  request — the worker inherited the workload at fork time and builds
 *  them from the shared seed, identically to JitMeasurer. */
struct RunnerRequest
{
    /** Cached shared object of the candidate (JitModule::objectPath). */
    std::string object_path;
    /** Exported entry symbol to dlsym (JitModule::entrySymbol). */
    std::string entry_symbol;
    /** Leading buffer-table slots bound to the workload parameters;
     *  must equal the worker's parameter count or the worker rejects. */
    size_t num_params = 0;
    /** Element counts of the intermediate buffers (buffer-table slots
     *  past the parameters), in slot order. These vary per candidate —
     *  cache stages add buffers — which is why they ride the request. */
    std::vector<int64_t> local_counts;
    /** Untimed warmup runs before the timed repeats. */
    int warmup = 2;
    /** Timed repeats; the reply carries the median. */
    int repeats = 5;
    /** Interpreter fuel budget per run (0 = unlimited), resolved by
     *  the parent so the child matches JitModule::run exactly. */
    uint64_t step_limit = 0;
    /** Pin the worker to its current CPU for this measurement. */
    bool pin_cpu = false;
    /** Candidate identity (structural hash) keying the child-side
     *  failpoints, so chaos schedules crash the *same* candidates at
     *  every parallelism setting. */
    uint64_t key = 0;
};

/** Outcome of one isolated measurement. */
struct RunnerResult
{
    RunnerStatus status = RunnerStatus::kUnavailable;
    /** Median latency in microseconds (kOk only). */
    double latency_us = std::numeric_limits<double>::infinity();
    /** Signal that terminated the worker (kCrash: the fatal signal;
     *  kHang: SIGKILL), 0 otherwise. */
    int term_signal = 0;
    /** Worker exit code when it exited rather than died by signal. */
    int exit_code = 0;
    /** Transient respawn-and-retry attempts this request consumed. */
    int retries = 0;
    /** Human-readable classification detail ("signal 11", "fuel", …). */
    std::string detail;
};

/** Runner configuration (resolved from MeasureConfig/environment by
 *  the measurement backend). */
struct RunnerConfig
{
    /** Pre-forked workers kept warm. Measurements are sequential (the
     *  search's measurement fold is single-threaded), so 1 is the
     *  default; larger pools rotate requests round-robin, which keeps
     *  spare workers warm across a crash. */
    int pool_size = 1;
    /** Hard wall-clock budget per measurement in milliseconds,
     *  enforced by SIGKILL; 0 = unlimited. */
    double timeout_ms = 10000;
    /** Transient-failure retries per request (crashes and hangs are
     *  never retried). */
    int retries = 2;
    /** Backoff before the first retry, in milliseconds; doubles per
     *  subsequent retry. */
    int backoff_ms = 50;
    /** Seed for the worker's argument tensors; must match the
     *  in-process path's MeasureConfig::seed so isolated and fallback
     *  measurements run the same inputs. */
    uint64_t seed = 1;
};

/**
 * The fork-server pool. Constructed with the workload whose parameter
 * shapes define the measurement inputs; workers fork immediately (so
 * the fork happens before the search spawns its thread pool) and are
 * reused across candidates until one crashes, hangs, or the runner is
 * destroyed. Not thread-safe: call run() from one thread (the search's
 * sequential measurement fold).
 */
class MeasureRunner
{
  public:
    MeasureRunner(PrimFunc workload, RunnerConfig config);
    ~MeasureRunner();
    MeasureRunner(const MeasureRunner&) = delete;
    MeasureRunner& operator=(const MeasureRunner&) = delete;

    /** Whether this platform supports process isolation at all
     *  (fork + pipes + waitpid). */
    static bool available();

    /** Execute one isolated measurement, classifying the outcome and
     *  transparently respawning/retrying transient worker failures. */
    RunnerResult run(const RunnerRequest& request);

  private:
    struct Worker
    {
        int pid = -1;      ///< child pid, -1 = slot empty
        int req_fd = -1;   ///< parent writes requests here
        int resp_fd = -1;  ///< parent reads responses here
        std::string buffer; ///< partial response bytes
    };

    bool spawnWorker(Worker& worker);
    void destroyWorker(Worker& worker, bool force_kill);
    /** Blocking-reap the (already dead or killed) worker; returns the
     *  waitpid status, or -1 when nothing could be reaped. */
    int reapWorker(Worker& worker);

    PrimFunc workload_;
    RunnerConfig config_;
    std::vector<Worker> workers_;
    size_t next_worker_ = 0;
    bool sigpipe_saved_ = false;
    /** Opaque storage for the saved SIGPIPE disposition (struct
     *  sigaction, kept out of the header). */
    std::vector<unsigned char> saved_sigpipe_;
};

} // namespace meta
} // namespace tir

#endif // TENSORIR_META_RUNNER_H
