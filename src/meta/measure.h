/**
 * @file
 * Measurement backends for the tuning loop's sequential measurement
 * fold (search.cpp). The paper's search is driven by *measured*
 * hardware latency; this substrate offers two ways to produce that
 * number behind one interface:
 *
 *  - **HwsimMeasurer** — the analytical device models (hwsim/device.h).
 *    Deterministic and instant: the estimate the evaluation stage
 *    already computed is repackaged as the measurement. The default,
 *    and the only backend whose results replay without a journal.
 *  - **JitMeasurer** — real host wall clock. The candidate is compiled
 *    through the native tier (runtime/jit.h) and timed on seeded
 *    inputs with steady-state discipline: configurable untimed warmup
 *    runs, then median-of-k timed repeats on std::chrono::steady_clock,
 *    optionally with the measuring thread pinned to its current CPU.
 *    A per-candidate compile budget rejects kernels whose native
 *    compile ran too long (Measurement::compile_timeout). Candidates
 *    the native tier cannot run — GPU thread bindings, a missing
 *    toolchain, TENSORIR_FORCE_TREEWALK — fall back to the analytical
 *    estimate (Measurement::fallback) instead of failing the tune.
 *
 * In both backends the device model stays the *validity* oracle: a
 * candidate whose estimate carries a constraint violation (the paper's
 * threading validation, §3.3) is rejected before any native compile.
 * The backend only decides where a valid candidate's latency number
 * comes from.
 *
 * Wall-clock numbers are inherently non-replayable; the search keeps
 * its resume contract by journaling every committed measurement (see
 * meta/journal.h and docs/EXECUTION.md, "Measurement backends").
 */
#ifndef TENSORIR_META_MEASURE_H
#define TENSORIR_META_MEASURE_H

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "hwsim/device.h"
#include "runtime/ndarray.h"

namespace tir {
namespace meta {

/** One committed measurement of a candidate program. */
struct Measurement
{
    /** Latency in microseconds (the median over the timed repeats for
     *  wall-clock backends); infinity when the candidate was rejected
     *  at measurement time (device-constraint violation or a failed
     *  native execution). */
    double latency_us = std::numeric_limits<double>::infinity();
    /** The wall-clock backend served the analytical estimate instead
     *  of timing native code (unsupported construct, no toolchain, or
     *  TENSORIR_FORCE_TREEWALK). Always false for HwsimMeasurer. */
    bool fallback = false;
    /** The native compile exceeded MeasureConfig::compile_budget_ms.
     *  The candidate was rejected before any run; latency_us is
     *  infinity and the search does not charge it as a trial. */
    bool compile_timeout = false;
    /** The isolated measurement worker died (fatal signal or nonzero
     *  exit) while this candidate's kernel was running. Deterministic
     *  generated-code death, contained to the worker process; the
     *  candidate is rejected into TuneResult::crash_filtered, not
     *  charged as a trial, and never retried. */
    bool crashed = false;
    /** The isolated measurement exceeded MeasureConfig::timeout_ms and
     *  the worker was SIGKILLed — the hard timeout that covers native
     *  hangs the cooperative stage watchdog cannot interrupt. Rejected
     *  into TuneResult::hang_filtered, not charged as a trial. */
    bool hanged = false;
    /** Real wall clock this measurement consumed (compile + warmup +
     *  timed repeats), in microseconds. Non-deterministic; 0 for the
     *  analytical backend. */
    double wall_us = 0;

    /** The measurement produced a usable latency. */
    bool valid() const { return std::isfinite(latency_us); }
};

/** Timing-discipline knobs for wall-clock backends (threaded through
 *  from the TuneOptions measure_* fields by the search). */
struct MeasureConfig
{
    /** Untimed runs per candidate before the timed repeats, so the
     *  timed window sees warm caches and a trained branch predictor. */
    int warmup = 2;
    /** Timed repeats per candidate; the reported latency is the
     *  median, which shrugs off a scheduler hiccup that would skew a
     *  mean. At least one repeat always runs. */
    int repeats = 5;
    /** Per-candidate compile budget in milliseconds; 0 = unlimited.
     *  jitCompile is synchronous, so the budget is enforced after the
     *  fact — the compile cannot be cancelled mid-flight, but the
     *  candidate is rejected so one pathological kernel cannot slow
     *  every later generation (the verdict is memoised upstream). */
    double compile_budget_ms = 0;
    /** Pin the measuring thread to its current CPU for the duration of
     *  each measurement (reduces migration noise; Linux only, silently
     *  unavailable elsewhere). */
    bool pin_cpu = false;
    /** Seed for the measurement input tensors (derived onto a stream
     *  no candidate or oracle RNG uses). */
    uint64_t seed = 1;
    /** Run each native timing loop in a forked worker process
     *  (meta/runner.h) so a segfaulting or hanging candidate kills a
     *  disposable worker, never the tune. Defaults on; makeMeasureBackend
     *  resolves TENSORIR_ISOLATE over it, and the backend degrades to
     *  the in-process path when fork is unavailable or every worker
     *  startup attempt fails. */
    bool isolate = true;
    /** Hard wall-clock budget per isolated measurement, in
     *  milliseconds, enforced by SIGKILL on the worker; 0 = unlimited.
     *  makeMeasureBackend resolves TENSORIR_MEASURE_TIMEOUT_MS over
     *  it. */
    double timeout_ms = 10000;
    /** Transient-failure retries per isolated measurement (worker
     *  startup failure, death without a reply); crashes and hangs are
     *  never retried. makeMeasureBackend resolves
     *  TENSORIR_RUNNER_RETRIES over it. */
    int retries = 2;
    /** Backoff before the first transient retry, in milliseconds
     *  (doubled per subsequent retry). */
    int backoff_ms = 50;
};

/** TENSORIR_ISOLATE resolved over `fallback` ("1"/"on" → true,
 *  "0"/"off" → false; unset/empty → fallback; anything else raises
 *  FatalError). Exposed for the env-parsing regression tests. */
bool resolveIsolate(bool fallback);

/** TENSORIR_MEASURE_TIMEOUT_MS resolved over `fallback` (strict
 *  unsigned parse, ≤ 86,400,000 ms; 0 = unlimited; garbage raises
 *  FatalError). */
double resolveMeasureTimeoutMs(double fallback);

/** TENSORIR_RUNNER_RETRIES resolved over `fallback` (strict unsigned
 *  parse, ≤ 100; garbage raises FatalError). */
int resolveRunnerRetries(int fallback);

/** Where a valid candidate's latency number comes from. Implementations
 *  are called only from the search's sequential fold (one thread). */
class MeasureBackend
{
  public:
    virtual ~MeasureBackend() = default;
    /** Stable backend name ("hwsim", "jit"). */
    virtual const char* name() const = 0;
    /** Whether identical inputs always produce identical measurements
     *  (true for the analytical model, false for wall clock). */
    virtual bool deterministic() const = 0;
    /** Measure `func`. `estimate` is the device model's verdict from
     *  the evaluation stage: its constraint violation (if any) rejects
     *  the candidate in every backend, and wall-clock backends fall
     *  back to its latency when native execution is impossible. */
    virtual Measurement measure(const PrimFunc& func,
                                const hwsim::RunEstimate& estimate) = 0;
};

/** The analytical backend: repackages the already-computed device
 *  estimate. No extra work, fully deterministic. */
class HwsimMeasurer : public MeasureBackend
{
  public:
    const char* name() const override { return "hwsim"; }
    bool deterministic() const override { return true; }
    Measurement measure(const PrimFunc& func,
                        const hwsim::RunEstimate& estimate) override;
};

class MeasureRunner;

/** The wall-clock backend: native compile + timed host execution.
 *  With MeasureConfig::isolate (the default) the timing loop runs in a
 *  forked worker process (meta/runner.h); the compile, validity
 *  oracle, and accounting stay in this process. */
class JitMeasurer : public MeasureBackend
{
  public:
    /** `workload` is the unscheduled function whose parameter shapes
     *  define the measurement input tensors (every candidate schedules
     *  the same workload, so the tensors are built once, lazily). */
    JitMeasurer(PrimFunc workload, MeasureConfig config);
    ~JitMeasurer() override;

    const char* name() const override { return "jit"; }
    bool deterministic() const override { return false; }
    Measurement measure(const PrimFunc& func,
                        const hwsim::RunEstimate& estimate) override;

    /** Whether the isolated path is currently in use (false when
     *  disabled by config/env, unsupported, or degraded after
     *  exhausted worker startup retries). Exposed for tests. */
    bool isolationActive() const;

  private:
    /** Build the seeded argument tensors on first use; false when they
     *  cannot be built (the caller falls back to the estimate). */
    bool ensureArguments();

    PrimFunc workload_;
    MeasureConfig config_;
    std::vector<runtime::NDArray> args_;
    std::vector<runtime::NDArray*> arg_ptrs_;
    int arg_state_ = 0; // 0 = unbuilt, 1 = ready, -1 = unavailable
    /** Fork-server pool (null when isolation is off or unsupported). */
    std::unique_ptr<MeasureRunner> runner_;
    /** Set after a kUnavailable outcome: every later measurement goes
     *  straight to the in-process path instead of re-paying the
     *  startup retry/backoff per candidate. */
    bool runner_degraded_ = false;
};

/** Backend factory for TuneOptions::measure_backend: "" or "hwsim" →
 *  HwsimMeasurer, "jit" → JitMeasurer. FatalError on any other name —
 *  a typo must not silently change what "measured" means. */
std::unique_ptr<MeasureBackend>
makeMeasureBackend(const std::string& name, const PrimFunc& workload,
                   const MeasureConfig& config);

} // namespace meta
} // namespace tir

#endif // TENSORIR_META_MEASURE_H
