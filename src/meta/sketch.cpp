#include "meta/sketch.h"

#include "intrin/tensor_intrin.h"

namespace tir {
namespace meta {

namespace {

/** Index of the block read touching `buffer`. */
int
readIndexOf(const Schedule& sch, const std::string& block,
            const Buffer& buffer)
{
    BlockPtr b = sch.getBlock(block);
    for (size_t i = 0; i < b->reads.size(); ++i) {
        if (b->reads[i].buffer == buffer) return static_cast<int>(i);
    }
    TIR_FATAL << "block " << block << " does not read " << buffer->name;
}

/** The block's own trailing loops (one per block iterator). */
std::vector<Var>
ownLoops(const Schedule& sch, const std::string& block)
{
    std::vector<Var> loops = sch.getLoops(block);
    size_t ndim = sch.getBlock(block)->iter_vars.size();
    TIR_CHECK(loops.size() >= ndim)
        << "block " << block << " has fewer loops than iterators";
    return {loops.end() - ndim, loops.end()};
}

/**
 * Data-movement scheduler for an AutoCopy block staged inside a kernel:
 * fuse its loops, optionally split off a vector lane, and mark it as a
 * cooperative fetch distributed over `threads` threads.
 */
void
scheduleCooperativeCopy(Schedule& sch, const std::string& block,
                        int64_t threads, bool vectorize)
{
    Var fused = sch.fuse(ownLoops(sch, block));
    if (vectorize) {
        int64_t vec = sch.sampleCategorical({1, 2, 4, 8}, {});
        if (vec > 1 && sch.loopExtent(fused) % vec == 0) {
            std::vector<Var> parts = sch.split(fused, {-1, vec});
            sch.vectorize(parts[1]);
        }
    }
    sch.annotateBlock(block, "cooperative_fetch",
                      intImm(threads, DataType::i64()));
    sch.annotateBlock(block, "auto_copy", intImm(1));
}

/** True when any loop above the block is thread-bound or parallel. */
bool
isScheduled(const Schedule& sch, const std::string& block)
{
    Schedule::BlockSite site = sch.findSite(block);
    for (const Stmt& loop : site.loops) {
        const auto& f = static_cast<const ForNode&>(*loop);
        if (f.for_kind == ForKind::kThreadBinding ||
            f.for_kind == ForKind::kParallel) {
            return true;
        }
    }
    return site.loops.empty();
}

} // namespace

size_t
selectTensorizeCandidate(const std::vector<TensorizeCandidate>& candidates)
{
    TIR_CHECK(!candidates.empty())
        << "selectTensorizeCandidate needs at least one candidate";
    // Prefer the intrinsic that amortizes the most work per call while
    // wasting the least padding.
    size_t best = 0;
    double best_score = -1;
    for (size_t i = 0; i < candidates.size(); ++i) {
        const TensorizeCandidate& c = candidates[i];
        double score = TensorIntrin::get(c.intrin).macs / c.padding_waste;
        if (score > best_score) {
            best_score = score;
            best = i;
        }
    }
    return best;
}

SketchApplier
makeTensorSketchApplier(const TensorizeCandidate& cand, bool gpu,
                        const SketchOptions& options)
{
    return [cand, gpu, options](Schedule& sch) {
        ReindexBlocks rb = applyReindexAndLayout(sch, cand);
        if (gpu) {
            applyGpuTensorSketch(sch, cand, rb, options);
        } else {
            applyCpuTensorSketch(sch, cand, rb, options);
        }
    };
}

SketchApplier
makeLoopSketchApplier(const std::string& einsum_block, bool gpu)
{
    return [einsum_block, gpu](Schedule& sch) {
        if (gpu) {
            applyGpuLoopSketch(sch, einsum_block);
        } else {
            applyCpuLoopSketch(sch, einsum_block);
        }
    };
}

void
scheduleInjectiveGpu(Schedule& sch, const std::string& block)
{
    Var fused = sch.fuse(ownLoops(sch, block));
    int64_t threads = sch.sampleCategorical({64, 128, 256}, {});
    int64_t vec = sch.sampleCategorical({1, 2, 4}, {});
    int64_t extent = sch.loopExtent(fused);
    if (extent % vec != 0) vec = 1;
    if (extent / vec < threads) threads = std::max<int64_t>(
        1, extent / vec);
    std::vector<Var> parts = sch.split(fused, {-1, threads, vec});
    sch.bind(parts[0], "blockIdx.x");
    sch.bind(parts[1], "threadIdx.x");
    if (vec > 1) sch.vectorize(parts[2]);
}

void
scheduleInjectiveCpu(Schedule& sch, const std::string& block)
{
    Var fused = sch.fuse(ownLoops(sch, block));
    int64_t vec = sch.sampleCategorical({4, 8, 16}, {});
    int64_t extent = sch.loopExtent(fused);
    if (extent % vec != 0) vec = 1;
    std::vector<Var> parts = sch.split(fused, {-1, vec});
    sch.parallel(parts[0]);
    if (vec > 1) sch.vectorize(parts[1]);
}

void
scheduleRemainingBlocks(Schedule& sch, bool gpu)
{
    for (const std::string& name : sch.blockNames()) {
        if (isScheduled(sch, name)) continue;
        // Only schedule complete top-level spatial blocks.
        BlockPtr b = sch.getBlock(name);
        bool spatial = true;
        for (const IterVar& iv : b->iter_vars) {
            spatial &= (iv.type == IterType::kSpatial);
        }
        if (!spatial || b->iter_vars.empty()) continue;
        if (gpu) {
            scheduleInjectiveGpu(sch, name);
        } else {
            scheduleInjectiveCpu(sch, name);
        }
    }
}

void
applyGpuTensorSketch(Schedule& sch, const TensorizeCandidate& cand,
                     const ReindexBlocks& rb, const SketchOptions& options)
{
    const TensorIntrin& ti = TensorIntrin::get(cand.intrin);
    std::vector<Var> loops = sch.getLoops(cand.block);
    int base = cand.has_batch ? 1 : 0;
    TIR_CHECK(loops.size() == cand.groups.size())
        << "unexpected loop structure after layout transform";

    // Split off the intrinsic tile, then sample the outer tiling.
    std::vector<Var> xs = sch.split(loops[base], {-1, ti.tile_m});
    std::vector<Var> ys = sch.split(loops[base + 1], {-1, ti.tile_n});
    std::vector<Var> ks = sch.split(loops[base + 2], {-1, ti.tile_k});
    std::vector<int64_t> xt = sch.samplePerfectTile(xs[0], 3, 8);
    std::vector<Var> x3 = sch.split(xs[0], xt);
    std::vector<int64_t> yt = sch.samplePerfectTile(ys[0], 3, 8);
    std::vector<Var> y3 = sch.split(ys[0], yt);
    std::vector<int64_t> kt = sch.samplePerfectTile(ks[0], 2, 16);
    std::vector<Var> k2 = sch.split(ks[0], kt);

    sch.reorder({x3[0], y3[0], x3[1], y3[1], k2[0], k2[1], x3[2], y3[2],
                 xs[1], ys[1], ks[1]});
    Var bx = cand.has_batch ? sch.fuse({loops[0], x3[0], y3[0]})
                            : sch.fuse({x3[0], y3[0]});
    sch.bind(bx, "blockIdx.x");
    Var ty = sch.fuse({x3[1], y3[1]});
    sch.bind(ty, "threadIdx.y");
    int64_t warps = xt[1] * yt[1];

    // Stage the accumulator tile in the tensor-core register scope.
    std::string c_frag_copy =
        sch.cacheWrite(cand.block, "wmma.accumulator");
    sch.reverseComputeAt(c_frag_copy, ty);

    // Separate the reduction init from the update.
    sch.decomposeReduction(cand.block, k2[0]);

    // AutoCopy staging: shared memory at the outer reduction level,
    // fragments at the inner one.
    std::vector<std::string> shared_copies;
    if (options.use_shared_staging) {
        std::string a_sh = sch.cacheRead(
            cand.block, readIndexOf(sch, cand.block, rb.a_fused),
            "shared");
        sch.computeAt(a_sh, k2[0]);
        std::string b_sh = sch.cacheRead(
            cand.block, readIndexOf(sch, cand.block, rb.b_fused),
            "shared");
        sch.computeAt(b_sh, k2[0]);
        shared_copies = {a_sh, b_sh};
    }
    // Whatever buffer the block reads now (fused or shared) feeds the
    // fragment copies.
    BlockPtr blk = sch.getBlock(cand.block);
    Buffer a_src = rb.a_fused;
    Buffer b_src = rb.b_fused;
    for (const BufferRegion& r : blk->reads) {
        if (r.buffer->scope == "shared") {
            if (r.buffer->name.rfind(rb.a_fused->name, 0) == 0) {
                a_src = r.buffer;
            } else {
                b_src = r.buffer;
            }
        }
    }
    std::string a_fr = sch.cacheRead(
        cand.block, readIndexOf(sch, cand.block, a_src),
        "wmma.matrix_a");
    sch.computeAt(a_fr, k2[1]);
    std::string b_fr = sch.cacheRead(
        cand.block, readIndexOf(sch, cand.block, b_src),
        "wmma.matrix_b");
    sch.computeAt(b_fr, k2[1]);

    // Isolate and tensorize the intrinsic tile (Figure 7 + §4.1).
    std::string outer = sch.blockize(xs[1]);
    sch.tensorize(outer, cand.intrin);

    // Data-movement scheduling for the shared copies. The copies sit
    // inside the warp (threadIdx.y) loop, so each distributes over the
    // 32 lanes of its warp.
    (void)warps;
    for (const std::string& copy : shared_copies) {
        scheduleCooperativeCopy(sch, copy, 32,
                                options.vectorize_copies);
    }

    // Gather/writeback and padding blocks run as separate kernels.
    scheduleRemainingBlocks(sch, /*gpu=*/true);
    sch.validateAffineBindings();
}

void
applyGpuLoopSketch(Schedule& sch, const std::string& einsum_block)
{
    BlockPtr block = sch.getBlock(einsum_block);
    std::vector<Var> loops = sch.getLoops(einsum_block);
    size_t spatial_count = 0;
    for (const IterVar& iv : block->iter_vars) {
        if (iv.type == IterType::kSpatial) ++spatial_count;
    }
    TIR_CHECK(loops.size() == block->iter_vars.size())
        << "loop sketch expects the initial one-loop-per-iterator form";

    std::vector<Var> spatial(loops.begin(), loops.begin() + spatial_count);
    std::vector<Var> reduce(loops.begin() + spatial_count, loops.end());

    // Ansor-style structure: fused spatial split into
    // [blockIdx, threadIdx, register tile].
    Var fs = sch.fuse(spatial);
    int64_t threads = sch.sampleCategorical({64, 128, 256}, {});
    int64_t reg = sch.sampleCategorical({1, 2, 4, 8}, {});
    int64_t extent = sch.loopExtent(fs);
    if (extent % (threads * reg) != 0) reg = 1;
    std::vector<Var> parts = sch.split(fs, {-1, threads, reg});
    sch.bind(parts[0], "blockIdx.x");
    sch.bind(parts[1], "threadIdx.x");

    // Accumulate the output tile in registers instead of global memory.
    std::string acc_copy = sch.cacheWrite(einsum_block, "local");
    sch.reverseComputeAt(acc_copy, parts[1]);

    if (!reduce.empty()) {
        Var rf = sch.fuse(reduce);
        std::vector<int64_t> rt = sch.samplePerfectTile(rf, 2, 16);
        std::vector<Var> r2 = sch.split(rf, rt);
        sch.reorder({r2[0], r2[1], parts[2]});
        // Shared staging of the inputs at the outer reduction loop.
        BlockPtr blk = sch.getBlock(einsum_block);
        std::vector<Buffer> inputs;
        for (const BufferRegion& r : blk->reads) {
            if (r.buffer->scope == "global") inputs.push_back(r.buffer);
        }
        for (const Buffer& input : inputs) {
            int idx = readIndexOf(sch, einsum_block, input);
            std::string copy = sch.cacheRead(einsum_block, idx, "shared");
            sch.computeAt(copy, r2[0]);
            scheduleCooperativeCopy(sch, copy, threads, true);
        }
    }
    scheduleRemainingBlocks(sch, /*gpu=*/true);
    sch.validateAffineBindings();
}

void
applyCpuTensorSketch(Schedule& sch, const TensorizeCandidate& cand,
                     const ReindexBlocks& rb, const SketchOptions& options)
{
    const TensorIntrin& ti = TensorIntrin::get(cand.intrin);
    std::vector<Var> loops = sch.getLoops(cand.block);
    int base = cand.has_batch ? 1 : 0;

    std::vector<Var> xs = sch.split(loops[base], {-1, ti.tile_m});
    std::vector<Var> ys = sch.split(loops[base + 1], {-1, ti.tile_n});
    std::vector<Var> ks = sch.split(loops[base + 2], {-1, ti.tile_k});
    std::vector<int64_t> xt = sch.samplePerfectTile(xs[0], 2, 32);
    std::vector<Var> x2 = sch.split(xs[0], xt);
    std::vector<int64_t> yt = sch.samplePerfectTile(ys[0], 2, 32);
    std::vector<Var> y2 = sch.split(ys[0], yt);
    std::vector<int64_t> kt = sch.samplePerfectTile(ks[0], 2, 32);
    std::vector<Var> k2 = sch.split(ks[0], kt);

    sch.reorder({x2[0], y2[0], k2[0], x2[1], y2[1], k2[1], xs[1], ys[1],
                 ks[1]});
    Var outer_par = cand.has_batch
                        ? sch.fuse({loops[0], x2[0], y2[0]})
                        : sch.fuse({x2[0], y2[0]});
    sch.parallel(outer_par);

    // Keep the accumulator tile register/cache resident per core.
    std::string acc_copy = sch.cacheWrite(cand.block, "local");
    sch.reverseComputeAt(acc_copy, outer_par);

    sch.decomposeReduction(cand.block, k2[0]);

    if (options.use_shared_staging) {
        // Cache-resident tiles of both operands per L2 tile.
        std::string a_l = sch.cacheRead(
            cand.block, readIndexOf(sch, cand.block, rb.a_fused),
            "local");
        sch.computeAt(a_l, k2[0]);
        std::string b_l = sch.cacheRead(
            cand.block, readIndexOf(sch, cand.block, rb.b_fused),
            "local");
        sch.computeAt(b_l, k2[0]);
        if (options.vectorize_copies) {
            for (const std::string& copy : {a_l, b_l}) {
                Var fused = sch.fuse(ownLoops(sch, copy));
                int64_t vec = sch.sampleCategorical({4, 8, 16}, {});
                if (sch.loopExtent(fused) % vec == 0) {
                    std::vector<Var> parts = sch.split(fused, {-1, vec});
                    sch.vectorize(parts[1]);
                }
            }
        }
    }

    std::string outer = sch.blockize(xs[1]);
    sch.tensorize(outer, cand.intrin);
    sch.unroll(k2[1]);

    scheduleRemainingBlocks(sch, /*gpu=*/false);
    sch.validateAffineBindings();
}

void
applyCpuLoopSketch(Schedule& sch, const std::string& einsum_block)
{
    BlockPtr block = sch.getBlock(einsum_block);
    std::vector<Var> loops = sch.getLoops(einsum_block);
    size_t spatial_count = 0;
    for (const IterVar& iv : block->iter_vars) {
        if (iv.type == IterType::kSpatial) ++spatial_count;
    }
    std::vector<Var> spatial(loops.begin(), loops.begin() + spatial_count);
    std::vector<Var> reduce(loops.begin() + spatial_count, loops.end());

    Var fs = sch.fuse(spatial);
    int64_t vec = sch.sampleCategorical({4, 8, 16}, {});
    int64_t extent = sch.loopExtent(fs);
    if (extent % vec != 0) vec = 1;
    std::vector<Var> parts = sch.split(fs, {-1, vec});
    sch.parallel(parts[0]);

    // Register-resident accumulation per parallel chunk.
    std::string acc_copy = sch.cacheWrite(einsum_block, "local");
    sch.reverseComputeAt(acc_copy, parts[0]);

    if (!reduce.empty()) {
        Var rf = sch.fuse(reduce);
        std::vector<int64_t> rt = sch.samplePerfectTile(rf, 2, 16);
        std::vector<Var> r2 = sch.split(rf, rt);
        sch.reorder({r2[0], r2[1], parts[1]});
        // Cache-resident input tiles at the outer reduction level.
        BlockPtr blk = sch.getBlock(einsum_block);
        std::vector<Buffer> inputs;
        for (const BufferRegion& r : blk->reads) {
            if (r.buffer->scope == "global") inputs.push_back(r.buffer);
        }
        for (const Buffer& input : inputs) {
            int idx = readIndexOf(sch, einsum_block, input);
            std::string copy = sch.cacheRead(einsum_block, idx, "local");
            sch.computeAt(copy, r2[0]);
        }
    }
    if (vec > 1) sch.vectorize(parts[1]);

    scheduleRemainingBlocks(sch, /*gpu=*/false);
    sch.validateAffineBindings();
}

} // namespace meta
} // namespace tir
