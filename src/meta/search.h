/**
 * @file
 * Evolutionary search over sketch decisions (§4.4) with a learned cost
 * model and validation filtering, plus the top-level auto-tuner that
 * wires together candidate generation, sketch generation, and search.
 *
 * The search runs as a parallel pipeline: per generation, candidate
 * instantiation (schedule rewrites + validation), feature extraction,
 * and simulated measurement are distributed over a std::jthread pool,
 * while all result folding (cost-model training data, best tracking,
 * population survival) happens sequentially in candidate-index order.
 *
 * Determinism contract: for a fixed `TuneOptions::seed`, tuning results
 * — `best_decisions`, `best_latency_us`, `best_sketch`, `history`,
 * `trials_measured`, memo hit counts — are byte-identical for every
 * value of `TuneOptions::parallelism` (1, 4, hardware_concurrency, …).
 * This holds because each candidate's RNG is derived from
 * (seed, generation, child_index) via Rng::derive instead of a shared
 * mutable generator, and every reduction over candidate results runs on
 * the main thread in a fixed order. Only `TuneResult::timings` (real
 * wall-clock) varies between runs.
 *
 * The contract assumes a deterministic measurement backend (the
 * default analytical model). With `measure_backend = "jit"` the
 * latencies are real host wall clock — still parallelism-invariant
 * within a run (measurements happen only in the sequential fold) but
 * not reproducible across runs; such a run is replayed exactly only
 * through its checkpoint journal, which records every committed
 * measurement (see docs/EXECUTION.md, "Measurement backends").
 */
#ifndef TENSORIR_META_SEARCH_H
#define TENSORIR_META_SEARCH_H

#include <functional>

#include "hwsim/device.h"
#include "meta/auto_tensorize.h"
#include "meta/gbdt.h"
#include "meta/sketch.h"

namespace tir {
namespace meta {

/** Feature vector of a scheduled program (input to the cost model). */
FeatureVec extractFeatures(const PrimFunc& func);
/** Same, from already-extracted program stats (avoids a second walk
 *  when the stats also feed the device model). */
FeatureVec extractFeatures(const hwsim::ProgramStats& stats);

/**
 * Streaming progress snapshot, delivered after every completed
 * checkpoint of a search: index 0 is the state after the initial
 * random population, index g+1 the state after evolution generation g
 * — the same granularity as the crash-safe journal's records.
 */
struct TuneProgress
{
    /** Checkpoint index (0 = initial population). */
    int generation = 0;
    /** Total evolution generations configured for this search. */
    int generations_total = 0;
    /** Best latency found so far (infinity before any valid
     *  measurement). */
    double best_latency_us = std::numeric_limits<double>::infinity();
    /** Decision trace of the best-so-far schedule (replayable exactly
     *  like a TuningDatabase record). */
    std::vector<Decision> best_decisions;
    /** Sketch family of best_decisions ("tensor" or "loop"). Filled by
     *  autoTune, which knows which applier it handed the search; empty
     *  from a bare evolutionarySearch. */
    std::string sketch;
    /** Simulated tuning cost spent so far. */
    double tuning_cost_us = 0;
};

/** Search configuration. */
struct TuneOptions
{
    /** Survivor population size kept between generations. Larger values
     *  preserve more diversity at the cost of more initial
     *  measurements. */
    int population = 16;
    /** Number of evolution rounds after the initial random population.
     *  `history` gets one entry per generation plus the initial one. */
    int generations = 5;
    /** Candidates generated per generation by mutating sampled parents.
     *  All of them are instantiated, validated, and feature-extracted
     *  (in parallel); only the cost-model favorites are measured. */
    int children_per_generation = 32;
    /** How many cost-model–screened children get a simulated hardware
     *  measurement per generation (the expensive step: Table 1's
     *  tuning time is dominated by it). */
    int measured_per_generation = 8;
    /** Root seed. Every candidate RNG is derived from
     *  (seed, generation, child_index), so results are reproducible for
     *  any parallelism (see the determinism contract above). */
    uint64_t seed = 1;
    /** Train a GBDT cost model on measured candidates and use it to
     *  pre-screen children. Disabled by the AMOS-like persona. */
    bool use_cost_model = true;
    /** Simulated cost charged per hardware measurement (compile + run
     *  repetitions), used for the Table 1 tuning-time accounting. */
    double measure_overhead_us = 300000.0; // ~0.3 s compile+launch
    /** Simulated run repetitions charged per measurement. */
    double measure_repeats = 100;
    /**
     * Measurement backend for the sequential measurement fold
     * (meta/measure.h). "" or "hwsim" (the default) scores candidates
     * with the analytical device model — deterministic and instant.
     * "jit" compiles each candidate through the native tier
     * (runtime/jit.h) and times it on the host CPU with warmup +
     * median-of-k repeats on std::chrono::steady_clock. The device
     * model remains the validity oracle either way; under "jit",
     * candidates the native tier cannot run (GPU thread bindings,
     * missing toolchain, TENSORIR_FORCE_TREEWALK) fall back to the
     * analytical estimate, counted in TuneResult::measure_fallbacks.
     * A malformed name raises FatalError up front.
     */
    std::string measure_backend;
    /** Wall-clock backends: untimed warmup runs per candidate before
     *  the timed repeats (steady-state discipline). */
    int measure_warmup = 2;
    /** Wall-clock backends: timed repeats per candidate; the reported
     *  latency is the median (robust to scheduler hiccups). */
    int measure_repeats_real = 5;
    /** Wall-clock backends: per-candidate native-compile budget in
     *  milliseconds. A candidate whose compile exceeds it is rejected
     *  into TuneResult::compile_timeout_filtered without being charged
     *  as a trial; duplicates reject from the memo without re-invoking
     *  the compiler. 0 = unlimited. */
    double compile_budget_ms = 0;
    /** Wall-clock backends: pin the measuring thread to its current
     *  CPU during each measurement (less migration noise; Linux only,
     *  silently unavailable elsewhere). */
    bool measure_pin_cpu = false;
    /**
     * Worker threads for the pipeline (candidate instantiation, feature
     * extraction, cost-model fit). 0 (the default) resolves to the
     * TENSORIR_PARALLELISM environment variable if set, otherwise to
     * std::thread::hardware_concurrency(). 1 disables threading
     * entirely; any value yields byte-identical tuning results.
     */
    int parallelism = 0;
    /**
     * Interpreter fuel budget per candidate evaluation: the maximum
     * number of statements a simulated measurement may execute before
     * it is aborted with a structured EvalError (rejected and counted
     * as a timeout, not process death). 0 = unlimited. The default is
     * generous — real candidates finish in well under a millionth of
     * it — so it only catches pathological programs that would
     * otherwise spin the interpreter forever.
     */
    uint64_t eval_step_limit = 1ull << 33;
    /**
     * Wall-clock watchdog per evaluation stage, in seconds. When a
     * stage overruns, workers stop picking up new candidates and the
     * unprocessed remainder is rejected as timed out (counted in
     * `timeout_filtered`, overruns in `timings.watchdog_overruns`).
     * 0 (the default) disables the watchdog: timeouts depend on real
     * wall-clock, so enabling it trades the byte-identical determinism
     * contract for bounded stage latency.
     */
    double stage_timeout_s = 0;
    /**
     * Numeric spot-check budget: when > 0, the first
     * `numeric_check_topk` candidates of each measurement set (the
     * initial population and every generation) are executed on seeded
     * inputs through runtime::execute (the bytecode VM by default) and
     * compared against a tree-walked reference run of the unscheduled
     * workload. A per-element divergence beyond
     * `numeric_check_tolerance` rejects the candidate — counted in
     * TuneResult::numeric_filtered — before it is measured or admitted
     * to the population. The check runs in the sequential measurement
     * fold, so the rejected set (and the whole TuneResult) stays
     * byte-identical for any `parallelism`. 0 (the default) disables
     * the check.
     */
    int numeric_check_topk = 0;
    /**
     * Run the dataflow lints (tir/analysis/dataflow.h) as a candidate
     * filter: candidates with an error-severity TIR-L001
     * use-before-init finding — a read of an intermediate buffer that
     * provably observes uninitialized memory — are rejected before any
     * measurement, counted in TuneResult::lint_filtered. Warnings
     * (dead stores, redundant barriers) never reject: they are
     * optimization opportunities, not correctness hazards. Off by
     * default; the race/bounds filters already gate correctness.
     */
    bool lint_filter = false;
    /** Maximum per-element |candidate - reference| the numeric
     *  spot-check tolerates. */
    double numeric_check_tolerance = 1e-4;
    /**
     * Numeric execution engine for candidate evaluation ("" inherits
     * the process-wide selection; "treewalk", "vm" or "jit" install a
     * runtime::ScopedEngine for the duration of the tune — see
     * docs/EXECUTION.md for the selection contract). "jit" makes
     * `numeric_check_topk` cheap enough to run on every measured
     * candidate: each distinct kernel compiles to native code once and
     * the per-run cost collapses to a function call. A malformed name
     * raises FatalError up front; TENSORIR_FORCE_TREEWALK still
     * overrides whatever is requested here.
     */
    std::string engine;
    /**
     * When non-empty, the search appends a crash-safe checkpoint
     * journal here (meta/journal.h): one checksummed record per
     * generation. Combined with `resume`, a killed session restarts
     * from the last completed generation instead of from scratch.
     */
    std::string journal_path;
    /**
     * Resume from `journal_path`: completed generations recorded there
     * (for a matching workload/seed/options section) are replayed from
     * the journal instead of re-run, then the search continues. The
     * final TuneResult is byte-identical to an uninterrupted run (the
     * deterministic-replay contract extends across process restarts).
     * Ignored when the journal has no matching section.
     */
    bool resume = false;
    /** Section label within the journal; autoTune sets this per sketch
     *  family. Single token (no whitespace). */
    std::string journal_label;
    /**
     * Generation-progress callback, invoked on the sequential search
     * thread at every checkpoint — after the initial population and
     * after each evolution generation — with the best-so-far decision
     * trace. This is the streaming hook the schedule server
     * (serve/server.h) uses to surface improving results to waiting
     * clients while a background tune runs. Independent of the
     * journal: it fires whether or not `journal_path` is set (when it
     * is, the callback runs just before the checkpoint record is
     * persisted). Generations restored by a journal resume are *not*
     * re-announced — only work actually performed reports progress.
     * The callback must not throw; an escaping exception aborts the
     * search. Purely observational: tuning decisions and latencies are
     * byte-identical with or without it.
     */
    std::function<void(const TuneProgress&)> progress;
    /**
     * When non-empty, autoTune opens a trace session (support/trace.h)
     * writing Chrome-trace JSON here — per-generation and per-candidate
     * spans, memo/filter counters, cost-model loss gauges — unless a
     * session is already active (e.g. started by runModelTuned for a
     * whole model, or by the TENSORIR_TRACE environment variable for
     * the whole process), in which case events join that session.
     * Tracing is observational only: tuning decisions and simulated
     * latencies are byte-identical with tracing on or off.
     */
    std::string trace_path;
};

/** Outcome of a tuning run. */
struct TuneResult
{
    PrimFunc best_func;
    double best_latency_us = std::numeric_limits<double>::infinity();
    /** Decision trace of the winner (replayable via a TuningDatabase). */
    std::vector<Decision> best_decisions;
    /** Sketch family of the winner ("tensor" or "loop"). */
    std::string best_sketch;
    int trials_measured = 0;
    /** Trials whose measurement committed a finite latency.
     *  Incremented at the same fold point as trials_measured, so
     *  `trials_measured == measured_valid + measured_invalid` holds
     *  for every backend — the regression-tested Table 1 accounting
     *  invariant (see commitMeasurement in search.cpp). */
    int measured_valid = 0;
    /** Trials rejected at measurement time: a device-constraint
     *  violation, or (wall-clock backends) a failed native execution.
     *  Each is also counted in invalid_filtered, preserving that
     *  column's historical Table 1 meaning. */
    int measured_invalid = 0;
    /** Candidates rejected because their native compile exceeded
     *  TuneOptions::compile_budget_ms (wall-clock backends only).
     *  Rejected before any run, so *not* counted as trials. */
    int compile_timeout_filtered = 0;
    /** Candidates rejected because the isolated measurement worker died
     *  of a fatal signal or nonzero exit while running their kernel
     *  (Measurement::crashed). Rejected before commit, so *not* counted
     *  as trials; structural duplicates reject here from the memo
     *  without re-running the crashing kernel. Only populated under
     *  measure_backend="jit" with isolation active. */
    int crash_filtered = 0;
    /** Candidates rejected because their isolated measurement exceeded
     *  the hard wall-clock timeout and the worker was SIGKILLed
     *  (Measurement::hanged) — the timeout that covers native hangs the
     *  cooperative stage watchdog cannot interrupt. Not counted as
     *  trials. */
    int hang_filtered = 0;
    /** Measurements the wall-clock backend served from the analytical
     *  model instead of native timing (unsupported construct, missing
     *  toolchain, or TENSORIR_FORCE_TREEWALK). */
    int measure_fallbacks = 0;
    int invalid_filtered = 0;
    /** Candidates rejected by the static race analysis (a provable
     *  cross-thread write-write or unsynchronized read-after-write
     *  hazard in the lowered program), before any measurement. Counted
     *  separately from invalid_filtered so Table 1 can report how many
     *  sketches each workload loses to memory hazards. */
    int race_filtered = 0;
    /** Candidates rejected by the static bounds analysis (an access
     *  provably outside its buffer's declared shape). */
    int bounds_filtered = 0;
    /** Candidates whose instantiation or evaluation threw a
     *  non-FatalError exception (std::bad_alloc, injected faults,
     *  interpreter fuel exhaustion, …). Contained per candidate and
     *  counted here instead of killing the process. */
    int runtime_filtered = 0;
    /** Candidates abandoned because the stage watchdog expired before
     *  they were processed (only with TuneOptions::stage_timeout_s). */
    int timeout_filtered = 0;
    /** Candidates rejected by the dataflow lint filter (an
     *  error-severity TIR-L001 use-before-init read). Only populated
     *  with TuneOptions::lint_filter. */
    int lint_filtered = 0;
    /** Candidates rejected by the numeric spot-check: their VM
     *  execution diverged from the tree-walked reference beyond
     *  TuneOptions::numeric_check_tolerance. Only populated with
     *  numeric_check_topk > 0. */
    int numeric_filtered = 0;
    /** Cost-model retrains that failed (threw, or produced a non-finite
     *  loss) and fell back to the last good model. */
    int model_fallbacks = 0;
    /** Generations restored from the checkpoint journal instead of
     *  re-run (only with TuneOptions::resume). */
    int generations_replayed = 0;
    /** Simulated wall-clock tuning cost (profiling dominates). */
    double tuning_cost_us = 0;
    /** Best latency after each generation. */
    std::vector<double> history;
    /** True when the result was replayed from a database record. */
    bool from_database = false;

    /** Candidates whose features/estimate came from the structural-hash
     *  memo instead of being recomputed (duplicate schedules). */
    int memo_hits = 0;
    /** Measurements whose estimate was served from the memo because a
     *  structurally identical candidate was already measured (nothing
     *  re-run; the simulated profiling cost is still charged so the
     *  Table 1 accounting stays comparable across personas). */
    int memo_measure_hits = 0;
    /** Threads the pipeline actually used (resolved parallelism). */
    int parallelism_used = 1;

    /** Human-readable aggregate of the trace session (span totals,
     *  counter finals) captured at the end of autoTune; empty when
     *  tracing was not active. Cumulative over the session, so with a
     *  model-level or process-level session it covers everything traced
     *  so far, not just this task. */
    std::string trace_summary;

    /** Real wall-clock spent per pipeline stage, in seconds, recorded
     *  by trace::AccumSpan scopes around each stage (the same scopes
     *  that emit trace spans when a session is active). Unlike
     *  everything above, these are *not* deterministic — they time this
     *  process, not the simulated hardware. */
    struct StageTimings
    {
        /** Candidate instantiation: schedule rewrites + validation. */
        double generate_s = 0;
        /** Stats/feature extraction + device-model estimates. */
        double evaluate_s = 0;
        /** Cost-model fitting and child ranking. */
        double model_s = 0;
        /** Sequential folds: measurement commits, survival, bookkeeping. */
        double reduce_s = 0;
        /** Real measurement time (wall-clock backends: compile +
         *  warmup + timed repeats; 0 for the analytical backend). */
        double measure_s = 0;
        /** Whole search. */
        double total_s = 0;
        /** Configured per-stage watchdog budget (0 = disabled). */
        double watchdog_timeout_s = 0;
        /** Stages the watchdog cut short. */
        int watchdog_overruns = 0;
    };
    StageTimings timings;
};

/**
 * Resolve TuneOptions::parallelism (explicit > environment >
 * hardware_concurrency). A set-but-non-empty TENSORIR_PARALLELISM
 * must be a positive integer in range — garbage, zero, a sign
 * character, or overflow raise FatalError instead of being silently
 * ignored (the std::atoi behaviour this replaced). An empty value
 * counts as unset. Exposed for the env-parsing regression tests.
 */
int resolveParallelism(const TuneOptions& options);

/** Evolutionary search over the decisions of one sketch family. */
TuneResult evolutionarySearch(const PrimFunc& workload,
                              const SketchApplier& sketch,
                              const hwsim::DeviceModel& device,
                              const TuneOptions& options);

/** Which tuner persona to emulate (for the paper's baselines). */
enum class TunerStyle
{
    /** Full system: auto-tensorization + AutoCopy data movement. */
    kTensorIR,
    /** Loop-nest-only search (TVM/Ansor-like baseline). */
    kLoopOnly,
    /** Tensorizes but with fixed data-movement policy (AMOS-like). */
    kAmosLike,
};

/** A workload to tune. */
struct TuneTask
{
    PrimFunc func;
    std::string einsum_block;
    /** "gpu" or "cpu". */
    std::string target = "gpu";
    /** Intrinsics available on the target. */
    std::vector<std::string> intrins;
};

class TuningDatabase;

/**
 * Tune one task end to end with the requested persona. When `database`
 * is given, a hit replays the stored decisions (one measurement, no
 * search — the paper's §5.2 record caching) and a miss commits the new
 * winner.
 */
TuneResult autoTune(const TuneTask& task,
                    const hwsim::DeviceModel& device,
                    const TuneOptions& options,
                    TunerStyle style = TunerStyle::kTensorIR,
                    TuningDatabase* database = nullptr);

} // namespace meta
} // namespace tir

#endif // TENSORIR_META_SEARCH_H
