/**
 * @file
 * Evolutionary search over sketch decisions (§4.4) with a learned cost
 * model and validation filtering, plus the top-level auto-tuner that
 * wires together candidate generation, sketch generation, and search.
 */
#ifndef TENSORIR_META_SEARCH_H
#define TENSORIR_META_SEARCH_H

#include <functional>

#include "hwsim/device.h"
#include "meta/auto_tensorize.h"
#include "meta/gbdt.h"
#include "meta/sketch.h"

namespace tir {
namespace meta {

/** Feature vector of a scheduled program (input to the cost model). */
FeatureVec extractFeatures(const PrimFunc& func);

/** Applies a full sketch to a fresh schedule; throws on invalid. */
using SketchApplier = std::function<void(Schedule&)>;

/** Search configuration. */
struct TuneOptions
{
    int population = 16;
    int generations = 5;
    /** Candidates generated per generation (cost-model pre-screened). */
    int children_per_generation = 32;
    /** How many pre-screened children get a simulated measurement. */
    int measured_per_generation = 8;
    uint64_t seed = 1;
    bool use_cost_model = true;
    /** Simulated cost charged per hardware measurement (compile + run
     *  repetitions), used for the Table 1 tuning-time accounting. */
    double measure_overhead_us = 300000.0; // ~0.3 s compile+launch
    double measure_repeats = 100;
};

/** Outcome of a tuning run. */
struct TuneResult
{
    PrimFunc best_func;
    double best_latency_us = std::numeric_limits<double>::infinity();
    /** Decision trace of the winner (replayable via a TuningDatabase). */
    std::vector<Decision> best_decisions;
    /** Sketch family of the winner ("tensor" or "loop"). */
    std::string best_sketch;
    int trials_measured = 0;
    int invalid_filtered = 0;
    /** Simulated wall-clock tuning cost (profiling dominates). */
    double tuning_cost_us = 0;
    /** Best latency after each generation. */
    std::vector<double> history;
    /** True when the result was replayed from a database record. */
    bool from_database = false;
};

/** Evolutionary search over the decisions of one sketch family. */
TuneResult evolutionarySearch(const PrimFunc& workload,
                              const SketchApplier& sketch,
                              const hwsim::DeviceModel& device,
                              const TuneOptions& options);

/** Which tuner persona to emulate (for the paper's baselines). */
enum class TunerStyle
{
    /** Full system: auto-tensorization + AutoCopy data movement. */
    kTensorIR,
    /** Loop-nest-only search (TVM/Ansor-like baseline). */
    kLoopOnly,
    /** Tensorizes but with fixed data-movement policy (AMOS-like). */
    kAmosLike,
};

/** A workload to tune. */
struct TuneTask
{
    PrimFunc func;
    std::string einsum_block;
    /** "gpu" or "cpu". */
    std::string target = "gpu";
    /** Intrinsics available on the target. */
    std::vector<std::string> intrins;
};

class TuningDatabase;

/**
 * Tune one task end to end with the requested persona. When `database`
 * is given, a hit replays the stored decisions (one measurement, no
 * search — the paper's §5.2 record caching) and a miss commits the new
 * winner.
 */
TuneResult autoTune(const TuneTask& task,
                    const hwsim::DeviceModel& device,
                    const TuneOptions& options,
                    TunerStyle style = TunerStyle::kTensorIR,
                    TuningDatabase* database = nullptr);

} // namespace meta
} // namespace tir

#endif // TENSORIR_META_SEARCH_H
