/**
 * @file
 * Structural-hash–keyed memo cache for the tuning pipeline. The
 * evolutionary search re-derives the same candidate schedule
 * surprisingly often — mutation moves a tile factor back, two parents
 * produce the same child, the loop-sketch family revisits a prior
 * configuration — and each duplicate used to pay full feature
 * extraction plus a simulated hardware measurement. The memo keys every
 * evaluated candidate by structuralHash(func): a hit returns the cached
 * feature vector and device estimate, so a candidate whose hash has
 * already been evaluated skips the stats walk, feature extraction, and
 * device-model run entirely — the real wall-clock cost of a
 * "measurement" in this substrate. The *simulated* Table 1 accounting
 * still charges duplicates (the paper's tuners re-profile them; see
 * commitMeasurement in search.cpp), so the cache changes how fast the
 * pipeline runs, never what it reports.
 *
 * Thread-safety: the cache is only read and written from the search's
 * sequential fold phase (the main thread), never from pool workers, so
 * it needs no locking — and hit counts stay deterministic for any
 * `parallelism` setting.
 */
#ifndef TENSORIR_META_MEMO_H
#define TENSORIR_META_MEMO_H

#include <limits>
#include <unordered_map>

#include "hwsim/device.h"
#include "meta/gbdt.h"

namespace tir {
namespace meta {

/** Cached evaluation of one structurally-distinct candidate. */
struct MemoEntry
{
    FeatureVec features;
    /** Device-model estimate (latency or constraint violation). */
    hwsim::RunEstimate estimate;
    /** Whether this candidate was already charged as a measurement. */
    bool measured = false;
    /** The latency the measurement backend committed for this
     *  candidate, in microseconds (infinity = rejected at measurement
     *  time); NaN until `measured`. For a wall-clock backend this
     *  cached number is what keeps structural duplicates — and journal
     *  replay — deterministic: a kernel is timed at most once per
     *  search, and every duplicate reuses the committed value. */
    double measured_latency_us =
        std::numeric_limits<double>::quiet_NaN();
    /** The native compile exceeded TuneOptions::compile_budget_ms.
     *  Cached so duplicates reject into compile_timeout_filtered
     *  without re-invoking the compiler. */
    bool compile_timed_out = false;
    /** The isolated measurement worker died running this candidate's
     *  kernel (Measurement::crashed). Cached so structural duplicates
     *  reject into crash_filtered without re-running code that is
     *  known to kill its process — the "never retry a deterministic
     *  crash" rule applied across duplicates. */
    bool crashed = false;
    /** The isolated measurement hit the hard wall-clock timeout and
     *  the worker was SIGKILLed (Measurement::hanged). Cached so
     *  duplicates reject into hang_filtered without hanging another
     *  worker for timeout_ms. */
    bool hanged = false;
    /** Evaluation threw (contained as RejectKind::kRuntime). Cached so
     *  structural duplicates of a failing candidate reject identically
     *  without re-running the failing evaluation. */
    bool eval_failed = false;
};

/** Per-search memo of candidate evaluations, keyed by structural hash. */
class MemoCache
{
  public:
    /** Entry for a hash, or nullptr when unseen. */
    MemoEntry*
    find(uint64_t hash)
    {
        auto it = entries_.find(hash);
        return it == entries_.end() ? nullptr : &it->second;
    }

    /** Insert an entry (first writer wins); returns the stored entry. */
    MemoEntry&
    insert(uint64_t hash, MemoEntry entry)
    {
        return entries_.emplace(hash, std::move(entry)).first->second;
    }

    /** Number of structurally-distinct candidates evaluated. */
    size_t size() const { return entries_.size(); }

  private:
    std::unordered_map<uint64_t, MemoEntry> entries_;
};

} // namespace meta
} // namespace tir

#endif // TENSORIR_META_MEMO_H
