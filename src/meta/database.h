/**
 * @file
 * Tuning database (§5.2: "TensorIR can eliminate search time further by
 * caching historical cost models and search records. So no search is
 * needed to build a model for an operator already tuned."). Records map
 * a workload's structural hash to the best decision trace found; the
 * tuner replays a hit instead of searching. Records round-trip through
 * a plain-text format for persistence.
 */
#ifndef TENSORIR_META_DATABASE_H
#define TENSORIR_META_DATABASE_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "tir/schedule.h"

namespace tir {
namespace meta {

/** One tuning record: the winning decisions for a workload. */
struct TuneRecord
{
    uint64_t workload_hash = 0;
    std::string workload_name;
    std::vector<Decision> decisions;
    double latency_us = 0;
    /** Which sketch family produced it ("tensor" or "loop"). */
    std::string sketch;
};

/** In-memory store of tuning records keyed by workload hash. */
class TuningDatabase
{
  public:
    /** Insert (or improve) the record for a workload. */
    void commit(TuneRecord record);

    /** Best known record, or nullopt when the workload is unseen. */
    std::optional<TuneRecord> lookup(const PrimFunc& workload) const;
    std::optional<TuneRecord> lookup(uint64_t workload_hash) const;

    size_t size() const { return records_.size(); }

    /** Serialize all records to a line-oriented text format. */
    std::string serialize() const;
    /** Parse records produced by serialize(); replaces the contents. */
    static TuningDatabase deserialize(const std::string& text);

    /** Save to / load from a file. */
    void save(const std::string& path) const;
    static TuningDatabase load(const std::string& path);

  private:
    std::map<uint64_t, TuneRecord> records_;
};

} // namespace meta
} // namespace tir

#endif // TENSORIR_META_DATABASE_H
