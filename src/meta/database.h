/**
 * @file
 * Tuning database (§5.2: "TensorIR can eliminate search time further by
 * caching historical cost models and search records. So no search is
 * needed to build a model for an operator already tuned."). Records map
 * a workload's structural hash to the best decision trace found; the
 * tuner replays a hit instead of searching. Records round-trip through
 * a plain-text format for persistence.
 */
#ifndef TENSORIR_META_DATABASE_H
#define TENSORIR_META_DATABASE_H

#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "tir/schedule.h"

namespace tir {
namespace meta {

/** One tuning record: the winning decisions for a workload. */
struct TuneRecord
{
    uint64_t workload_hash = 0;
    std::string workload_name;
    std::vector<Decision> decisions;
    double latency_us = 0;
    /** Which sketch family produced it ("tensor" or "loop"). */
    std::string sketch;
};

/** Outcome of a tolerant parse: how much survived, how much did not. */
struct LoadReport
{
    /** Records recovered intact. */
    int loaded = 0;
    /** Records dropped because they were malformed or truncated (the
     *  crash-mid-write case: a torn trailing record loses itself, never
     *  the complete records before it). */
    int dropped = 0;
};

/** In-memory store of tuning records keyed by workload hash. */
class TuningDatabase
{
  public:
    /** Insert (or improve) the record for a workload. */
    void commit(TuneRecord record);

    /** Best known record, or nullopt when the workload is unseen. */
    std::optional<TuneRecord> lookup(const PrimFunc& workload) const;
    std::optional<TuneRecord> lookup(uint64_t workload_hash) const;

    size_t size() const { return records_.size(); }

    /** All records, keyed by workload hash (read-only iteration; used
     *  by the sharded database to absorb offline snapshots). */
    const std::map<uint64_t, TuneRecord>&
    records() const
    {
        return records_;
    }

    /**
     * Serialize all records to a line-oriented text format. Latencies
     * are written as their IEEE-754 bit pattern (the journal's `meas`
     * convention, support/double_bits.h) with a human-readable decimal
     * alongside, so a save/load round-trip is byte-identical and never
     * perturbs the `commit()` improve-comparison; workload names sit at
     * end-of-line, so names containing spaces round-trip too.
     */
    std::string serialize() const;
    /**
     * Parse records produced by serialize(). Without a report this is
     * strict: any malformed line aborts with FatalError (an in-memory
     * round-trip that fails is a bug, not damage). With a report the
     * parse is tolerant — corrupt or truncated records are skipped and
     * counted, and parsing resyncs at the next `record` line — which is
     * the mode for data that crossed a crash or a disk.
     */
    static TuningDatabase deserialize(const std::string& text,
                                      LoadReport* report = nullptr);

    /** Save to / load from a file. load() parses tolerantly (a crash
     *  mid-save leaves a truncated trailing record; the session keeps
     *  every intact record instead of aborting), filling `report` with
     *  the recovered/dropped counts when given. */
    void save(const std::string& path) const;
    static TuningDatabase load(const std::string& path,
                               LoadReport* report = nullptr);

  private:
    std::map<uint64_t, TuneRecord> records_;
};

/**
 * Thread-safe, sharded tuning database: records are partitioned over N
 * independent shards by workload hash, each guarded by its own
 * reader-writer lock, so concurrent lookups on different workloads
 * never contend and a commit only blocks readers of its own shard.
 * This is the authoritative store behind the schedule-serving layer
 * (serve/server.h); the single-threaded TuningDatabase remains the
 * offline format owner (serialize/deserialize) and the two exchange
 * records via snapshot()/absorb().
 *
 * Consistency contract: every individual operation is atomic, and
 * commit keeps the per-workload improve-only invariant under any
 * interleaving (a worse record never overwrites a better one).
 * snapshot() and saveSnapshot() are per-shard consistent — a snapshot
 * taken while commits race may mix shard states from slightly
 * different instants, but every record it contains was committed and
 * intact.
 */
class ShardedTuningDatabase
{
  public:
    explicit ShardedTuningDatabase(int shards = 16);

    ShardedTuningDatabase(const ShardedTuningDatabase&) = delete;
    ShardedTuningDatabase& operator=(const ShardedTuningDatabase&) =
        delete;

    /** Insert (or improve) the record for a workload. Thread-safe. */
    void commit(TuneRecord record);

    /** Best known record, or nullopt. Takes a shared (reader) lock on
     *  one shard only. Thread-safe. */
    std::optional<TuneRecord> lookup(uint64_t workload_hash) const;
    std::optional<TuneRecord> lookup(const PrimFunc& workload) const;

    /** Total records across all shards (per-shard consistent). */
    size_t size() const;

    int shardCount() const { return static_cast<int>(shards_.size()); }

    /** Copy every record into a plain TuningDatabase. */
    TuningDatabase snapshot() const;

    /** Merge every record of `db` (improve-only per workload). */
    void absorb(const TuningDatabase& db);

    /**
     * Atomically publish a snapshot to `path`: the records are
     * serialized to a temporary file in the same directory, flushed and
     * checked, then renamed over `path`. A reader (or a crash) never
     * observes a torn file — it sees either the previous snapshot or
     * the new one, complete. Safe to call while commits and lookups
     * race.
     */
    void saveSnapshot(const std::string& path) const;

  private:
    struct Shard
    {
        mutable std::shared_mutex mutex;
        std::map<uint64_t, TuneRecord> records;
    };

    Shard& shardFor(uint64_t hash) const;

    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace meta
} // namespace tir

#endif // TENSORIR_META_DATABASE_H
