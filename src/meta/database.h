/**
 * @file
 * Tuning database (§5.2: "TensorIR can eliminate search time further by
 * caching historical cost models and search records. So no search is
 * needed to build a model for an operator already tuned."). Records map
 * a workload's structural hash to the best decision trace found; the
 * tuner replays a hit instead of searching. Records round-trip through
 * a plain-text format for persistence.
 */
#ifndef TENSORIR_META_DATABASE_H
#define TENSORIR_META_DATABASE_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "tir/schedule.h"

namespace tir {
namespace meta {

/** One tuning record: the winning decisions for a workload. */
struct TuneRecord
{
    uint64_t workload_hash = 0;
    std::string workload_name;
    std::vector<Decision> decisions;
    double latency_us = 0;
    /** Which sketch family produced it ("tensor" or "loop"). */
    std::string sketch;
};

/** Outcome of a tolerant parse: how much survived, how much did not. */
struct LoadReport
{
    /** Records recovered intact. */
    int loaded = 0;
    /** Records dropped because they were malformed or truncated (the
     *  crash-mid-write case: a torn trailing record loses itself, never
     *  the complete records before it). */
    int dropped = 0;
};

/** In-memory store of tuning records keyed by workload hash. */
class TuningDatabase
{
  public:
    /** Insert (or improve) the record for a workload. */
    void commit(TuneRecord record);

    /** Best known record, or nullopt when the workload is unseen. */
    std::optional<TuneRecord> lookup(const PrimFunc& workload) const;
    std::optional<TuneRecord> lookup(uint64_t workload_hash) const;

    size_t size() const { return records_.size(); }

    /** Serialize all records to a line-oriented text format. */
    std::string serialize() const;
    /**
     * Parse records produced by serialize(). Without a report this is
     * strict: any malformed line aborts with FatalError (an in-memory
     * round-trip that fails is a bug, not damage). With a report the
     * parse is tolerant — corrupt or truncated records are skipped and
     * counted, and parsing resyncs at the next `record` line — which is
     * the mode for data that crossed a crash or a disk.
     */
    static TuningDatabase deserialize(const std::string& text,
                                      LoadReport* report = nullptr);

    /** Save to / load from a file. load() parses tolerantly (a crash
     *  mid-save leaves a truncated trailing record; the session keeps
     *  every intact record instead of aborting), filling `report` with
     *  the recovered/dropped counts when given. */
    void save(const std::string& path) const;
    static TuningDatabase load(const std::string& path,
                               LoadReport* report = nullptr);

  private:
    std::map<uint64_t, TuneRecord> records_;
};

} // namespace meta
} // namespace tir

#endif // TENSORIR_META_DATABASE_H
