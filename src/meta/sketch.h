/**
 * @file
 * Tensorized program sketch generation (§4.3). A sketch fixes program
 * structure (tiling levels, staging points, AutoCopy blocks) while
 * leaving tile sizes and vector widths as sampled decisions. Data
 * movement is first-class: AutoCopy blocks are inserted by the sketch
 * and scheduled separately by the data-movement scheduler
 * (cooperative fetching, vectorization).
 */
#ifndef TENSORIR_META_SKETCH_H
#define TENSORIR_META_SKETCH_H

#include "meta/auto_tensorize.h"

namespace tir {
namespace meta {

/** Data-movement policy knobs (TensorIR vs the AMOS-like baseline). */
struct SketchOptions
{
    /** Stage operands through shared memory (GPU). */
    bool use_shared_staging = true;
    /** Let the data-movement scheduler vectorize copies. */
    bool vectorize_copies = true;
};

/**
 * GPU sketch with tensor-core style tensorization: multi-level tiling,
 * blockIdx/threadIdx binding, accumulator staging, shared-memory +
 * fragment AutoCopy blocks, blockize + tensorize, and injective
 * scheduling of all remaining blocks. Throws FatalError when sampled
 * decisions produce an invalid program (the search filters these).
 */
void applyGpuTensorSketch(Schedule& sch, const TensorizeCandidate& cand,
                          const ReindexBlocks& rb,
                          const SketchOptions& options);

/** Ansor-style GPU sketch without tensorization (the TVM baseline). */
void applyGpuLoopSketch(Schedule& sch, const std::string& einsum_block);

/** CPU sketch with sdot-style tensorization (ARM backend, §5.3). */
void applyCpuTensorSketch(Schedule& sch, const TensorizeCandidate& cand,
                          const ReindexBlocks& rb,
                          const SketchOptions& options);

/** CPU loop-nest sketch without tensorization. */
void applyCpuLoopSketch(Schedule& sch, const std::string& einsum_block);

/** Schedule one elementwise/copy block for the GPU (fuse/bind/vector). */
void scheduleInjectiveGpu(Schedule& sch, const std::string& block);

/** Schedule one elementwise/copy block for the CPU (parallel/vector). */
void scheduleInjectiveCpu(Schedule& sch, const std::string& block);

/** Schedule every block not yet bound/parallelized as injective. */
void scheduleRemainingBlocks(Schedule& sch, bool gpu);

} // namespace meta
} // namespace tir

#endif // TENSORIR_META_SKETCH_H
