/**
 * @file
 * Tensorized program sketch generation (§4.3). A sketch fixes program
 * structure (tiling levels, staging points, AutoCopy blocks) while
 * leaving tile sizes and vector widths as sampled decisions. Data
 * movement is first-class: AutoCopy blocks are inserted by the sketch
 * and scheduled separately by the data-movement scheduler
 * (cooperative fetching, vectorization).
 */
#ifndef TENSORIR_META_SKETCH_H
#define TENSORIR_META_SKETCH_H

#include <functional>

#include "meta/auto_tensorize.h"

namespace tir {
namespace meta {

/** Data-movement policy knobs (TensorIR vs the AMOS-like baseline). */
struct SketchOptions
{
    /** Stage operands through shared memory (GPU). */
    bool use_shared_staging = true;
    /** Let the data-movement scheduler vectorize copies. */
    bool vectorize_copies = true;
};

/**
 * Applies a full sketch to a fresh schedule; throws FatalError on
 * invalid sampled decisions (the search filters these out).
 *
 * Thread-safety: appliers returned by the factories below capture only
 * immutable state (candidate descriptors, option structs, block names),
 * so one applier may be invoked concurrently from many threads, each on
 * its own Schedule. This is what lets the parallel tuning pipeline
 * instantiate a whole generation of candidates at once.
 */
using SketchApplier = std::function<void(Schedule&)>;

/**
 * Rank tensorize candidates by amortized work per intrinsic call
 * (intrinsic MACs divided by padding waste) and return the index of the
 * best one. Requires a non-empty candidate list.
 */
size_t selectTensorizeCandidate(
    const std::vector<TensorizeCandidate>& candidates);

/** Applier for the tensorized sketch family (ReIndex + layout + tile +
 *  tensorize), targeting the GPU or CPU variant. */
SketchApplier makeTensorSketchApplier(const TensorizeCandidate& cand,
                                      bool gpu,
                                      const SketchOptions& options);

/** Applier for the non-tensorized loop-nest family (Ansor-style). */
SketchApplier makeLoopSketchApplier(const std::string& einsum_block,
                                    bool gpu);

/**
 * GPU sketch with tensor-core style tensorization: multi-level tiling,
 * blockIdx/threadIdx binding, accumulator staging, shared-memory +
 * fragment AutoCopy blocks, blockize + tensorize, and injective
 * scheduling of all remaining blocks. Throws FatalError when sampled
 * decisions produce an invalid program (the search filters these).
 */
void applyGpuTensorSketch(Schedule& sch, const TensorizeCandidate& cand,
                          const ReindexBlocks& rb,
                          const SketchOptions& options);

/** Ansor-style GPU sketch without tensorization (the TVM baseline). */
void applyGpuLoopSketch(Schedule& sch, const std::string& einsum_block);

/** CPU sketch with sdot-style tensorization (ARM backend, §5.3). */
void applyCpuTensorSketch(Schedule& sch, const TensorizeCandidate& cand,
                          const ReindexBlocks& rb,
                          const SketchOptions& options);

/** CPU loop-nest sketch without tensorization. */
void applyCpuLoopSketch(Schedule& sch, const std::string& einsum_block);

/** Schedule one elementwise/copy block for the GPU (fuse/bind/vector). */
void scheduleInjectiveGpu(Schedule& sch, const std::string& block);

/** Schedule one elementwise/copy block for the CPU (parallel/vector). */
void scheduleInjectiveCpu(Schedule& sch, const std::string& block);

/** Schedule every block not yet bound/parallelized as injective. */
void scheduleRemainingBlocks(Schedule& sch, bool gpu);

} // namespace meta
} // namespace tir

#endif // TENSORIR_META_SKETCH_H
