/**
 * @file
 * Crash-safe tuning-session journal: an append-only, checksummed,
 * line-oriented log of search state written at generation granularity,
 * so a crash mid-search loses at most the generation in flight.
 *
 * A journal file holds a sequence of *sections*, one per
 * `evolutionarySearch` run, each identified by a header (workload
 * hash, seed, label, search options). A section's records are state
 * checkpoints: record index 0 is the state after the initial random
 * population, index g+1 the state after evolution generation g. Each
 * record is framed by a trailing `crc <hex>` line (CRC-32 over the
 * record body), so a record torn by a crash mid-write — or corrupted
 * on disk — is detected and dropped on load rather than poisoning the
 * session.
 *
 * Recovery semantics: `readJournal` recovers every intact record up to
 * the first damaged one and reports how many record frames it dropped.
 * `JournalContents::valid_bytes` is the byte offset where appending
 * must resume; `JournalWriter` truncates any torn tail away before
 * reopening in append mode, which is what makes resume-after-crash
 * produce a well-formed file again.
 *
 * Checkpoints capture exactly the cross-generation state of the
 * search — counters, best, history, the survivor population's decision
 * traces, and per-generation deltas of the training set and the
 * structural-hash memo. Because the search is deterministic for a
 * fixed seed (PR 1's replay contract), restoring that state and
 * re-running the remaining generations yields a `TuneResult`
 * byte-identical to an uninterrupted run; programs are re-derived from
 * decision traces instead of being serialized.
 *
 * Doubles are stored as 16-hex-digit IEEE-754 bit patterns so values
 * round-trip exactly (latency comparisons and cost-model targets must
 * not drift by a ULP across a resume).
 */
#ifndef TENSORIR_META_JOURNAL_H
#define TENSORIR_META_JOURNAL_H

#include <cstdint>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "meta/gbdt.h"
#include "tir/schedule.h"

namespace tir {
namespace meta {

/** Identity of one search within a journal file. Resume only replays a
 *  section whose header matches exactly — a changed option or seed
 *  would make the journaled trajectory meaningless. */
struct JournalHeader
{
    uint64_t workload_hash = 0;
    uint64_t seed = 0;
    /** Distinguishes multiple searches over the same workload in one
     *  file (autoTune labels its sketch families). Single token, no
     *  whitespace. */
    std::string label;
    int population = 0;
    int generations = 0;
    int children_per_generation = 0;
    int measured_per_generation = 0;
    bool use_cost_model = true;
    double measure_overhead_us = 0;
    double measure_repeats = 0;
    /** Measurement backend ("" = analytical) and its timing-discipline
     *  knobs. Part of the identity: a journaled wall-clock trajectory
     *  is only meaningful to a resume configured identically. */
    std::string measure_backend;
    int measure_warmup = 0;
    int measure_repeats_real = 0;
    double compile_budget_ms = 0;
    bool measure_pin_cpu = false;

    bool matches(const JournalHeader& other) const;
};

/** One survivor: decision trace + measured latency. The program itself
 *  is re-derived from the decisions on restore. */
struct JournalIndividual
{
    double latency_us = 0;
    std::vector<Decision> decisions;
};

/** One cost-model training sample committed during a generation. */
struct JournalSample
{
    FeatureVec features;
    double target = 0;
};

/** One structural-hash memo entry added during a generation. */
struct JournalMemoEntry
{
    uint64_t hash = 0;
    bool measured = false;
    /** Evaluation threw — duplicates reject identically (kRuntime). */
    bool eval_failed = false;
    FeatureVec features;
    double latency_us = 0;
    /** Committed measurement (NaN until `measured`). For a wall-clock
     *  backend the journal is the only durable copy of this number —
     *  replaying it is what makes resume byte-identical despite the
     *  clock being non-replayable. */
    double measured_latency_us = 0;
    /** The native compile exceeded the per-candidate budget. */
    bool compile_timed_out = false;
    /** The isolated measurement worker crashed on this candidate.
     *  Journaled so a resume rejects the duplicate identically instead
     *  of re-running code known to kill its process. */
    bool crashed = false;
    /** The isolated measurement was timeout-killed on this candidate. */
    bool hanged = false;
    /** Device-constraint violation text; empty = valid estimate. */
    std::string violation;
};

/** One measured-flag flip committed during a generation: the memo hash
 *  plus the latency (and compile-budget verdict) it committed. An
 *  entry added in an earlier generation can be measured later, so the
 *  flip must replay with its value for both memo_measure_hits and the
 *  measured trajectory to stay byte-identical across a resume. */
struct JournalMeasured
{
    uint64_t hash = 0;
    double latency_us = 0;
    bool compile_timed_out = false;
    /** Crash/hang classification committed with the measurement (see
     *  JournalMemoEntry::crashed/hanged). */
    bool crashed = false;
    bool hanged = false;
};

/** State checkpoint after one completed generation. Counters are
 *  absolute (the search state at the end of the generation); samples,
 *  memo entries, and measured-flag flips are per-generation deltas. */
struct JournalGeneration
{
    /** 0 = after the initial population; g+1 = after generation g. */
    int index = 0;
    int trials_measured = 0;
    int measured_valid = 0;
    int measured_invalid = 0;
    int compile_timeout_filtered = 0;
    int crash_filtered = 0;
    int hang_filtered = 0;
    int measure_fallbacks = 0;
    int invalid_filtered = 0;
    int race_filtered = 0;
    int bounds_filtered = 0;
    int runtime_filtered = 0;
    int timeout_filtered = 0;
    int numeric_filtered = 0;
    int lint_filtered = 0;
    int memo_hits = 0;
    int memo_measure_hits = 0;
    int model_fallbacks = 0;
    double tuning_cost_us = 0;
    double best_latency_us = std::numeric_limits<double>::infinity();
    std::vector<Decision> best_decisions;
    std::vector<double> history;
    std::vector<JournalIndividual> population;
    std::vector<JournalSample> new_samples;
    std::vector<JournalMemoEntry> new_memo;
    /** Measurements first committed this generation (see
     *  JournalMeasured). */
    std::vector<JournalMeasured> measured;
};

/** One search's records, in append order. */
struct JournalSection
{
    JournalHeader header;
    std::vector<JournalGeneration> generations;

    /** All checkpoints present: initial population + every evolution
     *  generation. A complete section replays to a final TuneResult
     *  without re-running anything. */
    bool
    complete() const
    {
        return static_cast<int>(generations.size()) ==
               header.generations + 1;
    }
};

/** Parsed journal file plus recovery metadata. */
struct JournalContents
{
    std::vector<JournalSection> sections;
    /** End of the last intact record; appending resumes here (any torn
     *  trailing bytes are truncated away by JournalWriter). */
    uint64_t valid_bytes = 0;
    /** Record frames dropped (checksum mismatch or truncation). */
    int records_dropped = 0;

    /** Last section matching `header` (appends win), or nullptr. */
    const JournalSection* findSection(const JournalHeader& header) const;
};

/** Read `path` tolerantly; a missing file yields empty contents. */
JournalContents readJournal(const std::string& path);

/** Truncate `path` to an empty journal (fresh, non-resumed session). */
void resetJournal(const std::string& path);

/** Append-only record writer. Every record is flushed and checked, so
 *  a record either lands intact or is detectably torn. */
class JournalWriter
{
  public:
    /** Append at the current end of file (creating it if missing). */
    explicit JournalWriter(const std::string& path);
    /** Truncate to `resume_at` (= JournalContents::valid_bytes, to
     *  drop a torn tail), then open for appending. */
    JournalWriter(const std::string& path, uint64_t resume_at);

    /** Start a new section. */
    void beginSection(const JournalHeader& header);
    /** Append one generation checkpoint to the open section. */
    void appendGeneration(const JournalGeneration& gen);

  private:
    void appendRecord(std::string body);

    std::string path_;
    std::ofstream out_;
};

} // namespace meta
} // namespace tir

#endif // TENSORIR_META_JOURNAL_H
