/**
 * @file
 * Gradient-boosted regression trees: the learned cost model backing the
 * evolutionary search (§4.4), standing in for the paper's XGBoost
 * ensemble. Squared-loss boosting with exact greedy splits; small and
 * deterministic.
 */
#ifndef TENSORIR_META_GBDT_H
#define TENSORIR_META_GBDT_H

#include <cstdint>
#include <vector>

namespace tir {

namespace support {
class ThreadPool;
}

namespace meta {

/** One feature vector. */
using FeatureVec = std::vector<double>;

/** Hyper-parameters of the boosted ensemble. */
struct GbdtParams
{
    int num_trees = 50;
    int max_depth = 3;
    double learning_rate = 0.3;
    int min_samples_leaf = 3;
};

/** Gradient-boosted regression-tree ensemble (squared loss). */
class Gbdt
{
  public:
    explicit Gbdt(GbdtParams params = {}) : params_(params) {}

    /**
     * Fit to (features, targets); replaces any previous model. When a
     * pool is given, the exact-greedy split search is distributed over
     * features; the chosen splits are identical to the serial ones
     * (ties resolve in feature order), so the fitted model does not
     * depend on the pool size.
     */
    void fit(const std::vector<FeatureVec>& features,
             const std::vector<double>& targets,
             support::ThreadPool* pool = nullptr);

    /** Predict one sample (returns the target mean before fitting). */
    double predict(const FeatureVec& features) const;

    /** Predict a batch, optionally distributed over a pool. Prediction
     *  is read-only, so concurrent calls are safe. */
    std::vector<double>
    predictBatch(const std::vector<FeatureVec>& features,
                 support::ThreadPool* pool = nullptr) const;

    /** Whether fit() has been called with enough data. */
    bool trained() const { return trained_; }

    /** Mean absolute residual at the last boosting round of the most
     *  recent fit (0 before any fit). The tuner checks this is finite
     *  before adopting a retrained model; a NaN target slipping into
     *  the training set would otherwise poison every prediction. */
    double lastFitLoss() const { return last_loss_; }

  private:
    struct Node
    {
        int feature = -1;      // -1: leaf
        double threshold = 0;
        double value = 0;      // leaf prediction
        int left = -1;
        int right = -1;
    };
    struct Tree
    {
        std::vector<Node> nodes;
    };

    int buildNode(Tree& tree, const std::vector<FeatureVec>& features,
                  const std::vector<double>& residuals,
                  std::vector<int>& indices, int depth);
    static double treePredict(const Tree& tree, const FeatureVec& x);

    GbdtParams params_;
    std::vector<Tree> trees_;
    double base_ = 0;
    bool trained_ = false;
    double last_loss_ = 0;
    /** Pool for the current fit() call only (not owned). */
    support::ThreadPool* pool_ = nullptr;
};

} // namespace meta
} // namespace tir

#endif // TENSORIR_META_GBDT_H
