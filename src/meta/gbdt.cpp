#include "meta/gbdt.h"

#include <algorithm>
#include <cmath>

#include "support/failpoint.h"
#include "support/logging.h"
#include "support/thread_pool.h"
#include "support/trace.h"

namespace tir {
namespace meta {

namespace {

double
mean(const std::vector<double>& values, const std::vector<int>& indices)
{
    double sum = 0;
    for (int i : indices) sum += values[static_cast<size_t>(i)];
    return indices.empty() ? 0 : sum / static_cast<double>(indices.size());
}

} // namespace

int
Gbdt::buildNode(Tree& tree, const std::vector<FeatureVec>& features,
                const std::vector<double>& residuals,
                std::vector<int>& indices, int depth)
{
    int node_id = static_cast<int>(tree.nodes.size());
    tree.nodes.push_back({});
    double node_mean = mean(residuals, indices);
    tree.nodes[node_id].value = node_mean;
    if (depth >= params_.max_depth ||
        static_cast<int>(indices.size()) < 2 * params_.min_samples_leaf) {
        return node_id;
    }

    // Exact greedy split: minimize total squared error.
    double base_err = 0;
    for (int i : indices) {
        double d = residuals[static_cast<size_t>(i)] - node_mean;
        base_err += d * d;
    }
    // Per-feature exact scans are independent, so they distribute over
    // the pool; the final argmax runs in feature order, which makes the
    // chosen split identical to the serial scan (ties keep the earliest
    // feature/position, as `>` did there).
    size_t num_features = features[0].size();
    struct FeatureSplit
    {
        double gain = 1e-12;
        double threshold = 0;
        bool found = false;
    };
    std::vector<FeatureSplit> splits(num_features);
    auto scanFeature = [&](size_t f) {
        std::vector<int> sorted = indices;
        std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
            return features[static_cast<size_t>(a)][f] <
                   features[static_cast<size_t>(b)][f];
        });
        double left_sum = 0;
        double left_sq = 0;
        double total_sum = 0;
        double total_sq = 0;
        for (int i : sorted) {
            double v = residuals[static_cast<size_t>(i)];
            total_sum += v;
            total_sq += v * v;
        }
        FeatureSplit& best = splits[f];
        for (size_t pos = 0; pos + 1 < sorted.size(); ++pos) {
            double v = residuals[static_cast<size_t>(sorted[pos])];
            left_sum += v;
            left_sq += v * v;
            double x_here =
                features[static_cast<size_t>(sorted[pos])][f];
            double x_next =
                features[static_cast<size_t>(sorted[pos + 1])][f];
            if (x_here == x_next) continue;
            size_t n_left = pos + 1;
            size_t n_right = sorted.size() - n_left;
            if (static_cast<int>(n_left) < params_.min_samples_leaf ||
                static_cast<int>(n_right) < params_.min_samples_leaf) {
                continue;
            }
            double right_sum = total_sum - left_sum;
            double right_sq = total_sq - left_sq;
            double err = (left_sq - left_sum * left_sum / n_left) +
                         (right_sq - right_sum * right_sum / n_right);
            double gain = base_err - err;
            if (gain > best.gain) {
                best.gain = gain;
                best.threshold = 0.5 * (x_here + x_next);
                best.found = true;
            }
        }
    };
    if (pool_ && indices.size() >= 64) {
        pool_->parallelFor(num_features, scanFeature);
    } else {
        for (size_t f = 0; f < num_features; ++f) scanFeature(f);
    }
    int best_feature = -1;
    double best_threshold = 0;
    double best_gain = 1e-12;
    for (size_t f = 0; f < num_features; ++f) {
        if (splits[f].found && splits[f].gain > best_gain) {
            best_gain = splits[f].gain;
            best_feature = static_cast<int>(f);
            best_threshold = splits[f].threshold;
        }
    }
    if (best_feature < 0) return node_id;

    std::vector<int> left;
    std::vector<int> right;
    for (int i : indices) {
        if (features[static_cast<size_t>(i)][
                static_cast<size_t>(best_feature)] <= best_threshold) {
            left.push_back(i);
        } else {
            right.push_back(i);
        }
    }
    tree.nodes[node_id].feature = best_feature;
    tree.nodes[node_id].threshold = best_threshold;
    int left_id = buildNode(tree, features, residuals, left, depth + 1);
    int right_id = buildNode(tree, features, residuals, right, depth + 1);
    tree.nodes[node_id].left = left_id;
    tree.nodes[node_id].right = right_id;
    return node_id;
}

double
Gbdt::treePredict(const Tree& tree, const FeatureVec& x)
{
    int node = 0;
    while (tree.nodes[static_cast<size_t>(node)].feature >= 0) {
        const Node& n = tree.nodes[static_cast<size_t>(node)];
        double v = x[static_cast<size_t>(n.feature)];
        node = v <= n.threshold ? n.left : n.right;
    }
    return tree.nodes[static_cast<size_t>(node)].value;
}

void
Gbdt::fit(const std::vector<FeatureVec>& features,
          const std::vector<double>& targets,
          support::ThreadPool* pool)
{
    TIR_CHECK(features.size() == targets.size());
    if (failpoint::inject("gbdt.fit")) {
        throw failpoint::InjectedFault("failpoint 'gbdt.fit' fired");
    }
    trace::Span span(
        "gbdt.fit",
        trace::arg("samples", static_cast<int64_t>(features.size())));
    trace::counterAdd("gbdt.retrains", 1);
    trees_.clear();
    trained_ = false;
    last_loss_ = 0;
    if (features.size() < 4) return;
    pool_ = pool;

    base_ = 0;
    for (double t : targets) base_ += t;
    base_ /= static_cast<double>(targets.size());

    std::vector<double> predictions(targets.size(), base_);
    std::vector<int> all_indices(targets.size());
    for (size_t i = 0; i < targets.size(); ++i) {
        all_indices[i] = static_cast<int>(i);
    }
    for (int t = 0; t < params_.num_trees; ++t) {
        std::vector<double> residuals(targets.size());
        double total_abs = 0;
        for (size_t i = 0; i < targets.size(); ++i) {
            residuals[i] = targets[i] - predictions[i];
            total_abs += std::fabs(residuals[i]);
        }
        double mean_abs_residual =
            total_abs / static_cast<double>(targets.size());
        // Training-loss trajectory of the retrain (one sample per
        // boosting round), visible as a gauge track in the trace.
        trace::gauge("gbdt.mean_abs_residual", mean_abs_residual);
        last_loss_ = mean_abs_residual;
        if (mean_abs_residual < 1e-9) break;
        Tree tree;
        std::vector<int> indices = all_indices;
        buildNode(tree, features, residuals, indices, 0);
        for (size_t i = 0; i < targets.size(); ++i) {
            predictions[i] += params_.learning_rate *
                              treePredict(tree, features[i]);
        }
        trees_.push_back(std::move(tree));
    }
    trained_ = true;
    pool_ = nullptr;
}

double
Gbdt::predict(const FeatureVec& features) const
{
    double result = base_;
    for (const Tree& tree : trees_) {
        result += params_.learning_rate * treePredict(tree, features);
    }
    return result;
}

std::vector<double>
Gbdt::predictBatch(const std::vector<FeatureVec>& features,
                   support::ThreadPool* pool) const
{
    trace::Span span(
        "gbdt.predict_batch",
        trace::arg("samples", static_cast<int64_t>(features.size())));
    std::vector<double> predictions(features.size());
    auto one = [&](size_t i) { predictions[i] = predict(features[i]); };
    if (pool && features.size() > 1) {
        pool->parallelFor(features.size(), one);
    } else {
        for (size_t i = 0; i < features.size(); ++i) one(i);
    }
    return predictions;
}

} // namespace meta
} // namespace tir
