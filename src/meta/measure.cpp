#include "meta/measure.h"

#include <algorithm>
#include <chrono>

#include "ir/structural_hash.h"
#include "meta/runner.h"
#include "runtime/interpreter.h"
#include "runtime/jit.h"
#include "runtime/vm.h"
#include "support/cpu_pin.h"
#include "support/env.h"
#include "support/logging.h"
#include "support/rng.h"
#include "support/trace.h"

namespace tir {
namespace meta {

namespace {

double
elapsedUs(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - since)
        .count();
}

} // namespace

Measurement
HwsimMeasurer::measure(const PrimFunc& func,
                       const hwsim::RunEstimate& estimate)
{
    (void)func;
    Measurement m;
    if (estimate.valid()) m.latency_us = estimate.latency_us;
    return m;
}

bool
resolveIsolate(bool fallback)
{
    return support::envFlag("TENSORIR_ISOLATE", fallback);
}

double
resolveMeasureTimeoutMs(double fallback)
{
    // Bounded at one day: a larger "timeout" is a typo, not a budget.
    return static_cast<double>(support::envUint(
        "TENSORIR_MEASURE_TIMEOUT_MS",
        static_cast<uint64_t>(fallback), 0, 86400000));
}

int
resolveRunnerRetries(int fallback)
{
    return static_cast<int>(support::envUint(
        "TENSORIR_RUNNER_RETRIES", static_cast<uint64_t>(fallback), 0,
        100));
}

JitMeasurer::JitMeasurer(PrimFunc workload, MeasureConfig config)
    : workload_(std::move(workload)), config_(std::move(config))
{
    if (config_.isolate && MeasureRunner::available()) {
        RunnerConfig rc;
        rc.timeout_ms = config_.timeout_ms;
        rc.retries = config_.retries;
        rc.backoff_ms = config_.backoff_ms;
        rc.seed = config_.seed;
        // Pre-forks here, in the measurer's constructor — before the
        // search builds its thread pool (search.cpp constructs the
        // backend first), so the initial forks see a single-threaded
        // process.
        runner_ =
            std::make_unique<MeasureRunner>(workload_, std::move(rc));
    }
}

JitMeasurer::~JitMeasurer() = default;

bool
JitMeasurer::isolationActive() const
{
    return runner_ != nullptr && !runner_degraded_;
}

bool
JitMeasurer::ensureArguments()
{
    if (arg_state_ != 0) return arg_state_ > 0;
    try {
        // A derivation stream disjoint from every candidate stream
        // (generation + 1 indices) and from the numeric oracle's
        // (0, ~0), so measurement inputs never correlate with schedule
        // sampling or the spot-check data.
        Rng rng = Rng::derive(config_.seed, ~uint64_t{0}, 1);
        for (const Buffer& param : workload_->params) {
            std::vector<int64_t> shape;
            for (size_t d = 0; d < param->ndim(); ++d) {
                shape.push_back(param->shapeInt(d));
            }
            runtime::NDArray array(param->dtype, shape);
            if (param->dtype.isInt()) {
                array.fillRandom(rng, -4, 4);
            } else {
                array.fillRandom(rng);
            }
            args_.push_back(std::move(array));
        }
        for (runtime::NDArray& a : args_) arg_ptrs_.push_back(&a);
        arg_state_ = 1;
    } catch (const std::exception&) {
        args_.clear();
        arg_ptrs_.clear();
        arg_state_ = -1;
    }
    return arg_state_ > 0;
}

Measurement
JitMeasurer::measure(const PrimFunc& func,
                     const hwsim::RunEstimate& estimate)
{
    trace::Span span("measure.jit", trace::arg("func", func->name));
    Measurement m;
    auto wall_start = std::chrono::steady_clock::now();
    // The device model stays the validity oracle: a candidate that
    // violates device constraints (threading validation, §3.3) is
    // rejected before any native compile is attempted.
    if (!estimate.valid()) {
        span.addArg(trace::arg("valid", int64_t{0}));
        return m;
    }
    std::shared_ptr<const runtime::JitModule> module;
    double compile_ms = 0;
    // The CI escape hatch disables native code everywhere, including
    // measurement: under TENSORIR_FORCE_TREEWALK this backend degrades
    // to the analytical estimate like a missing toolchain would.
    if (!runtime::forceTreeWalk()) {
        auto compile_start = std::chrono::steady_clock::now();
        module = runtime::jitCompile(func);
        compile_ms = elapsedUs(compile_start) / 1000.0;
    }
    if (!module) {
        // Native execution impossible (no toolchain, GPU thread
        // bindings, compiler failure): serve the analytical estimate
        // so the tune proceeds instead of rejecting every candidate.
        m.latency_us = estimate.latency_us;
        m.fallback = true;
        trace::counterAdd("measure.jit_fallbacks", 1);
        span.addArg(trace::arg("fallback", int64_t{1}));
        m.wall_us = elapsedUs(wall_start);
        return m;
    }
    if (config_.compile_budget_ms > 0 &&
        compile_ms > config_.compile_budget_ms) {
        m.compile_timeout = true;
        trace::counterAdd("measure.compile_timeouts", 1);
        span.addArg(trace::arg("compile_ms", compile_ms));
        m.wall_us = elapsedUs(wall_start);
        return m;
    }
    if (runner_ && !runner_degraded_) {
        // Isolated path: ship the compiled object to a forked worker
        // and let *it* dlopen and run the kernel — generated-code
        // death (SIGSEGV, abort, a native infinite loop) is contained
        // to the worker and comes back as a classification instead of
        // taking this process down.
        RunnerRequest req;
        req.object_path = module->objectPath();
        req.entry_symbol = module->entrySymbol();
        req.num_params = module->numParams();
        const std::vector<Buffer>& slots = module->buffers();
        for (size_t s = module->numParams(); s < slots.size(); ++s) {
            int64_t count = 1;
            for (size_t d = 0; d < slots[s]->ndim(); ++d) {
                count *= slots[s]->shapeInt(d);
            }
            req.local_counts.push_back(count);
        }
        req.warmup = config_.warmup;
        req.repeats = std::max(1, config_.repeats);
        req.step_limit = runtime::Interpreter::defaultStepLimit();
        req.pin_cpu = config_.pin_cpu;
        req.key = structuralHash(func);
        RunnerResult outcome = runner_->run(req);
        switch (outcome.status) {
          case RunnerStatus::kOk:
            m.latency_us = outcome.latency_us;
            span.addArg(trace::arg("latency_us", m.latency_us));
            m.wall_us = elapsedUs(wall_start);
            return m;
          case RunnerStatus::kReject:
            // The kernel ran and rejected itself (fuel exhaustion,
            // injected fault): same verdict as the in-process catch
            // block — latency stays infinity.
            span.addArg(trace::arg("valid", int64_t{0}));
            m.wall_us = elapsedUs(wall_start);
            return m;
          case RunnerStatus::kCrash:
            m.crashed = true;
            trace::counterAdd("measure.crashes", 1);
            span.addArg(trace::arg("crashed", int64_t{1}));
            m.wall_us = elapsedUs(wall_start);
            return m;
          case RunnerStatus::kHang:
            m.hanged = true;
            trace::counterAdd("measure.hangs", 1);
            span.addArg(trace::arg("hanged", int64_t{1}));
            m.wall_us = elapsedUs(wall_start);
            return m;
          case RunnerStatus::kUnavailable:
            // Every transient retry failed (or fork is impossible):
            // degrade to the in-process path for the rest of this
            // tune instead of re-paying the startup backoff per
            // candidate. PR 8 behaviour, minus the isolation.
            runner_degraded_ = true;
            trace::counterAdd("measure.isolation_degraded", 1);
            break;
        }
    }
    if (!ensureArguments()) {
        m.latency_us = estimate.latency_us;
        m.fallback = true;
        trace::counterAdd("measure.jit_fallbacks", 1);
        m.wall_us = elapsedUs(wall_start);
        return m;
    }
    support::ScopedCpuPin pin(config_.pin_cpu);
    try {
        for (int i = 0; i < config_.warmup; ++i) {
            module->run(arg_ptrs_);
        }
        int repeats = std::max(1, config_.repeats);
        std::vector<double> samples(static_cast<size_t>(repeats));
        for (int i = 0; i < repeats; ++i) {
            auto run_start = std::chrono::steady_clock::now();
            module->run(arg_ptrs_);
            samples[static_cast<size_t>(i)] = elapsedUs(run_start);
        }
        auto mid = samples.begin() +
                   static_cast<std::ptrdiff_t>(samples.size() / 2);
        std::nth_element(samples.begin(), mid, samples.end());
        // Clamp to a nanosecond: a kernel faster than the clock's
        // resolution must still report a positive latency (zero would
        // poison the fitness weights and the log1p training target).
        m.latency_us = std::max(*mid, 1e-3);
        span.addArg(trace::arg("latency_us", m.latency_us));
    } catch (const std::exception&) {
        // A failed native execution (fuel exhaustion, injected fault)
        // rejects the candidate like a device-invalid one; latency
        // stays infinity. Contained per candidate, never process death.
        m.latency_us = std::numeric_limits<double>::infinity();
        span.addArg(trace::arg("valid", int64_t{0}));
    }
    m.wall_us = elapsedUs(wall_start);
    return m;
}

std::unique_ptr<MeasureBackend>
makeMeasureBackend(const std::string& name, const PrimFunc& workload,
                   const MeasureConfig& config)
{
    if (name.empty() || name == "hwsim") {
        return std::make_unique<HwsimMeasurer>();
    }
    TIR_CHECK(name == "jit")
        << "TuneOptions::measure_backend \"" << name
        << "\" is not a backend name (expected hwsim or jit)";
    // Isolation knobs resolve environment-over-config here (strictly:
    // a malformed value fails the tune up front), so TuneOptions and
    // the journal header stay unchanged — a journaled trajectory
    // replays identically whether its measurements ran isolated or
    // in-process, because every committed latency and classification
    // is journaled.
    MeasureConfig resolved = config;
    resolved.isolate = resolveIsolate(resolved.isolate);
    resolved.timeout_ms = resolveMeasureTimeoutMs(resolved.timeout_ms);
    resolved.retries = resolveRunnerRetries(resolved.retries);
    return std::make_unique<JitMeasurer>(workload, resolved);
}

} // namespace meta
} // namespace tir
