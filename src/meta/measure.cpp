#include "meta/measure.h"

#include <algorithm>
#include <chrono>

#if defined(__linux__)
#include <sched.h>
#endif

#include "runtime/jit.h"
#include "runtime/vm.h"
#include "support/logging.h"
#include "support/rng.h"
#include "support/trace.h"

namespace tir {
namespace meta {

namespace {

/** Pin the calling thread to the CPU it is currently on, restoring the
 *  previous affinity mask on destruction. Best effort: any syscall
 *  failure (or a non-Linux host) leaves affinity untouched — noisier
 *  measurements, never a failed one. */
class ScopedCpuPin
{
  public:
    explicit ScopedCpuPin(bool enable)
    {
#if defined(__linux__)
        if (!enable) return;
        if (sched_getaffinity(0, sizeof(saved_), &saved_) != 0) return;
        int cpu = sched_getcpu();
        if (cpu < 0) return;
        cpu_set_t one;
        CPU_ZERO(&one);
        CPU_SET(cpu, &one);
        active_ = sched_setaffinity(0, sizeof(one), &one) == 0;
#else
        (void)enable;
#endif
    }

    ~ScopedCpuPin()
    {
#if defined(__linux__)
        if (active_) sched_setaffinity(0, sizeof(saved_), &saved_);
#endif
    }

    ScopedCpuPin(const ScopedCpuPin&) = delete;
    ScopedCpuPin& operator=(const ScopedCpuPin&) = delete;

  private:
#if defined(__linux__)
    cpu_set_t saved_{};
    bool active_ = false;
#endif
};

double
elapsedUs(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - since)
        .count();
}

} // namespace

Measurement
HwsimMeasurer::measure(const PrimFunc& func,
                       const hwsim::RunEstimate& estimate)
{
    (void)func;
    Measurement m;
    if (estimate.valid()) m.latency_us = estimate.latency_us;
    return m;
}

JitMeasurer::JitMeasurer(PrimFunc workload, MeasureConfig config)
    : workload_(std::move(workload)), config_(std::move(config))
{
}

bool
JitMeasurer::ensureArguments()
{
    if (arg_state_ != 0) return arg_state_ > 0;
    try {
        // A derivation stream disjoint from every candidate stream
        // (generation + 1 indices) and from the numeric oracle's
        // (0, ~0), so measurement inputs never correlate with schedule
        // sampling or the spot-check data.
        Rng rng = Rng::derive(config_.seed, ~uint64_t{0}, 1);
        for (const Buffer& param : workload_->params) {
            std::vector<int64_t> shape;
            for (size_t d = 0; d < param->ndim(); ++d) {
                shape.push_back(param->shapeInt(d));
            }
            runtime::NDArray array(param->dtype, shape);
            if (param->dtype.isInt()) {
                array.fillRandom(rng, -4, 4);
            } else {
                array.fillRandom(rng);
            }
            args_.push_back(std::move(array));
        }
        for (runtime::NDArray& a : args_) arg_ptrs_.push_back(&a);
        arg_state_ = 1;
    } catch (const std::exception&) {
        args_.clear();
        arg_ptrs_.clear();
        arg_state_ = -1;
    }
    return arg_state_ > 0;
}

Measurement
JitMeasurer::measure(const PrimFunc& func,
                     const hwsim::RunEstimate& estimate)
{
    trace::Span span("measure.jit", trace::arg("func", func->name));
    Measurement m;
    auto wall_start = std::chrono::steady_clock::now();
    // The device model stays the validity oracle: a candidate that
    // violates device constraints (threading validation, §3.3) is
    // rejected before any native compile is attempted.
    if (!estimate.valid()) {
        span.addArg(trace::arg("valid", int64_t{0}));
        return m;
    }
    std::shared_ptr<const runtime::JitModule> module;
    double compile_ms = 0;
    // The CI escape hatch disables native code everywhere, including
    // measurement: under TENSORIR_FORCE_TREEWALK this backend degrades
    // to the analytical estimate like a missing toolchain would.
    if (!runtime::forceTreeWalk()) {
        auto compile_start = std::chrono::steady_clock::now();
        module = runtime::jitCompile(func);
        compile_ms = elapsedUs(compile_start) / 1000.0;
    }
    if (!module) {
        // Native execution impossible (no toolchain, GPU thread
        // bindings, compiler failure): serve the analytical estimate
        // so the tune proceeds instead of rejecting every candidate.
        m.latency_us = estimate.latency_us;
        m.fallback = true;
        trace::counterAdd("measure.jit_fallbacks", 1);
        span.addArg(trace::arg("fallback", int64_t{1}));
        m.wall_us = elapsedUs(wall_start);
        return m;
    }
    if (config_.compile_budget_ms > 0 &&
        compile_ms > config_.compile_budget_ms) {
        m.compile_timeout = true;
        trace::counterAdd("measure.compile_timeouts", 1);
        span.addArg(trace::arg("compile_ms", compile_ms));
        m.wall_us = elapsedUs(wall_start);
        return m;
    }
    if (!ensureArguments()) {
        m.latency_us = estimate.latency_us;
        m.fallback = true;
        trace::counterAdd("measure.jit_fallbacks", 1);
        m.wall_us = elapsedUs(wall_start);
        return m;
    }
    ScopedCpuPin pin(config_.pin_cpu);
    try {
        for (int i = 0; i < config_.warmup; ++i) {
            module->run(arg_ptrs_);
        }
        int repeats = std::max(1, config_.repeats);
        std::vector<double> samples(static_cast<size_t>(repeats));
        for (int i = 0; i < repeats; ++i) {
            auto run_start = std::chrono::steady_clock::now();
            module->run(arg_ptrs_);
            samples[static_cast<size_t>(i)] = elapsedUs(run_start);
        }
        auto mid = samples.begin() +
                   static_cast<std::ptrdiff_t>(samples.size() / 2);
        std::nth_element(samples.begin(), mid, samples.end());
        // Clamp to a nanosecond: a kernel faster than the clock's
        // resolution must still report a positive latency (zero would
        // poison the fitness weights and the log1p training target).
        m.latency_us = std::max(*mid, 1e-3);
        span.addArg(trace::arg("latency_us", m.latency_us));
    } catch (const std::exception&) {
        // A failed native execution (fuel exhaustion, injected fault)
        // rejects the candidate like a device-invalid one; latency
        // stays infinity. Contained per candidate, never process death.
        m.latency_us = std::numeric_limits<double>::infinity();
        span.addArg(trace::arg("valid", int64_t{0}));
    }
    m.wall_us = elapsedUs(wall_start);
    return m;
}

std::unique_ptr<MeasureBackend>
makeMeasureBackend(const std::string& name, const PrimFunc& workload,
                   const MeasureConfig& config)
{
    if (name.empty() || name == "hwsim") {
        return std::make_unique<HwsimMeasurer>();
    }
    TIR_CHECK(name == "jit")
        << "TuneOptions::measure_backend \"" << name
        << "\" is not a backend name (expected hwsim or jit)";
    return std::make_unique<JitMeasurer>(workload, config);
}

} // namespace meta
} // namespace tir
