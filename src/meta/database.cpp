#include "meta/database.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>

#include "ir/structural_hash.h"
#include "support/double_bits.h"
#include "support/failpoint.h"
#include "support/trace.h"

namespace tir {
namespace meta {

void
TuningDatabase::commit(TuneRecord record)
{
    auto it = records_.find(record.workload_hash);
    if (it == records_.end() || record.latency_us < it->second.latency_us) {
        records_[record.workload_hash] = std::move(record);
    }
}

std::optional<TuneRecord>
TuningDatabase::lookup(const PrimFunc& workload) const
{
    return lookup(structuralHash(workload));
}

std::optional<TuneRecord>
TuningDatabase::lookup(uint64_t workload_hash) const
{
    auto it = records_.find(workload_hash);
    if (it == records_.end()) return std::nullopt;
    return it->second;
}

namespace {

const char*
decisionKindName(Decision::Kind kind)
{
    return kind == Decision::Kind::kPerfectTile ? "tile" : "cat";
}

} // namespace

std::string
TuningDatabase::serialize() const
{
    std::ostringstream os;
    for (const auto& [hash, record] : records_) {
        // The latency's IEEE-754 bit pattern is the authoritative
        // value (the journal's convention, support/double_bits.h); the
        // decimal next to it is for human readers only. A default-
        // precision decimal alone used to lose low bits on every
        // save/load cycle, which could flip the commit() improve-
        // comparison against a freshly tuned result.
        TIR_CHECK(record.workload_name.find('\n') == std::string::npos)
            << "workload name contains a newline: "
            << record.workload_name;
        os << "record " << hash << " "
           << support::doubleBitsHex(record.latency_us) << " "
           << support::doubleReadable(record.latency_us) << " "
           << (record.sketch.empty() ? "-" : record.sketch);
        // The name is the last field and runs to end-of-line, so names
        // containing spaces round-trip intact.
        if (!record.workload_name.empty()) {
            os << " " << record.workload_name;
        }
        os << "\n";
        for (const Decision& d : record.decisions) {
            os << "  " << decisionKindName(d.kind) << " " << d.extent
               << " " << d.number << " " << d.max_innermost << " "
               << d.num_candidates;
            for (int64_t v : d.values) os << " " << v;
            os << "\n";
        }
        os << "end\n";
    }
    return os.str();
}

TuningDatabase
TuningDatabase::deserialize(const std::string& text, LoadReport* report)
{
    const bool strict = report == nullptr;
    TuningDatabase db;
    std::istringstream is(text);
    std::string line;
    TuneRecord current;
    bool in_record = false;
    // Tolerant mode: after damage, discard lines until the next
    // `record` header — the only resync point the format offers.
    bool skipping = false;
    // A drop is counted only when a record actually existed: either a
    // header was open (the record loses its tail) or a header line
    // itself was damaged (the record loses everything). Stray garbage
    // when no record is open — leading junk, debris between records —
    // resyncs without counting, so LoadReport::dropped means "records
    // lost", not "lines skipped".
    auto dropOpen = [&] {
        if (in_record) ++report->dropped;
        in_record = false;
        skipping = true;
    };
    while (std::getline(is, line)) {
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "record") {
            if (in_record) {
                TIR_CHECK(!strict) << "malformed database: nested record";
                ++report->dropped; // the open record never saw its end
                in_record = false;
            }
            skipping = false;
            current = TuneRecord();
            std::string latency_bits;
            std::string latency_decimal; // display only, never parsed
            ls >> current.workload_hash >> latency_bits >>
                latency_decimal >> current.sketch;
            bool ok = !ls.fail();
            if (ok) {
                current.latency_us =
                    support::doubleFromBitsHex(latency_bits, &ok);
            }
            if (!ok) {
                TIR_CHECK(!strict)
                    << "malformed database record header: " << line;
                ++report->dropped; // a header existed; its record is lost
                skipping = true;
                continue;
            }
            if (current.sketch == "-") current.sketch.clear();
            // Everything after the sketch token (minus the separating
            // space) is the workload name, spaces and all.
            std::string name;
            std::getline(ls, name);
            if (!name.empty() && name.front() == ' ') name.erase(0, 1);
            current.workload_name = std::move(name);
            in_record = true;
        } else if (tag == "tile" || tag == "cat") {
            if (!in_record) {
                TIR_CHECK(!strict) << "malformed database: stray decision";
                skipping = true;
                continue;
            }
            Decision d;
            d.kind = tag == "tile" ? Decision::Kind::kPerfectTile
                                   : Decision::Kind::kCategorical;
            ls >> d.extent >> d.number >> d.max_innermost >>
                d.num_candidates;
            if (ls.fail()) {
                TIR_CHECK(!strict)
                    << "malformed database decision: " << line;
                dropOpen();
                continue;
            }
            int64_t v;
            while (ls >> v) d.values.push_back(v);
            current.decisions.push_back(std::move(d));
        } else if (tag == "end") {
            if (!in_record) {
                TIR_CHECK(!strict) << "malformed database: stray end";
                skipping = true;
                continue;
            }
            db.commit(std::move(current));
            if (report) ++report->loaded;
            in_record = false;
        } else if (!tag.empty()) {
            TIR_CHECK(!strict) << "malformed database line: " << line;
            if (in_record || !skipping) dropOpen();
        }
    }
    if (in_record) {
        TIR_CHECK(!strict) << "malformed database: unterminated record";
        // The crash-mid-write case: the trailing record lost its `end`
        // (and possibly part of its last line). Everything before it
        // was committed already.
        ++report->dropped;
    }
    return db;
}

void
TuningDatabase::save(const std::string& path) const
{
    std::ofstream out(path);
    TIR_CHECK(out.good()) << "cannot open " << path << " for writing";
    std::string text = serialize();
    // Chaos hook: corrupt the serialized bytes before they hit disk so
    // the tolerant load path is testable end to end.
    failpoint::injectCorrupt("db.save", text);
    out << text;
    // A disk-full or I/O error surfaces on the stream only once the
    // buffered bytes actually hit the file; checking before the write
    // alone would report success for a truncated database.
    out.flush();
    TIR_CHECK(out.good())
        << "write to " << path
        << " failed (disk full or I/O error); database not saved";
}

TuningDatabase
TuningDatabase::load(const std::string& path, LoadReport* report)
{
    std::ifstream in(path);
    TIR_CHECK(in.good() && !failpoint::inject("db.load"))
        << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    // Always tolerant: a file that crossed a crash or a disk can hold a
    // truncated trailing record, and dropping it beats aborting the
    // session that wanted to reuse the intact ones.
    LoadReport local;
    TuningDatabase db = deserialize(buffer.str(), &local);
    if (local.dropped > 0) {
        trace::counterAdd("database.records_dropped", local.dropped);
    }
    if (report) *report = local;
    return db;
}

// --- ShardedTuningDatabase ---------------------------------------------

ShardedTuningDatabase::ShardedTuningDatabase(int shards)
{
    TIR_CHECK(shards > 0) << "shard count must be positive, got "
                          << shards;
    shards_.reserve(static_cast<size_t>(shards));
    for (int s = 0; s < shards; ++s) {
        shards_.push_back(std::make_unique<Shard>());
    }
}

ShardedTuningDatabase::Shard&
ShardedTuningDatabase::shardFor(uint64_t hash) const
{
    // Structural hashes are already avalanche-mixed, so the low bits
    // distribute well over any shard count.
    return *shards_[hash % shards_.size()];
}

void
ShardedTuningDatabase::commit(TuneRecord record)
{
    Shard& shard = shardFor(record.workload_hash);
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    auto it = shard.records.find(record.workload_hash);
    if (it == shard.records.end() ||
        record.latency_us < it->second.latency_us) {
        shard.records[record.workload_hash] = std::move(record);
    }
}

std::optional<TuneRecord>
ShardedTuningDatabase::lookup(uint64_t workload_hash) const
{
    const Shard& shard = shardFor(workload_hash);
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    auto it = shard.records.find(workload_hash);
    if (it == shard.records.end()) return std::nullopt;
    return it->second;
}

std::optional<TuneRecord>
ShardedTuningDatabase::lookup(const PrimFunc& workload) const
{
    return lookup(structuralHash(workload));
}

size_t
ShardedTuningDatabase::size() const
{
    size_t total = 0;
    for (const auto& shard : shards_) {
        std::shared_lock<std::shared_mutex> lock(shard->mutex);
        total += shard->records.size();
    }
    return total;
}

TuningDatabase
ShardedTuningDatabase::snapshot() const
{
    TuningDatabase db;
    for (const auto& shard : shards_) {
        std::shared_lock<std::shared_mutex> lock(shard->mutex);
        for (const auto& [hash, record] : shard->records) {
            db.commit(record);
        }
    }
    return db;
}

void
ShardedTuningDatabase::absorb(const TuningDatabase& db)
{
    for (const auto& [hash, record] : db.records()) {
        commit(record);
    }
}

void
ShardedTuningDatabase::saveSnapshot(const std::string& path) const
{
    std::string text = snapshot().serialize();
    // Unique temporary in the same directory (rename is only atomic
    // within a filesystem); a counter disambiguates concurrent savers.
    static std::atomic<uint64_t> tmp_counter{0};
    std::string tmp = path + ".tmp." +
                      std::to_string(tmp_counter.fetch_add(1));
    {
        std::ofstream out(tmp);
        TIR_CHECK(out.good())
            << "cannot open " << tmp << " for writing";
        out << text;
        out.flush();
        if (!out.good()) {
            std::remove(tmp.c_str());
            TIR_CHECK(false)
                << "write to " << tmp
                << " failed (disk full or I/O error); snapshot not "
                   "saved";
        }
    }
    // Atomic publish: readers see the old snapshot or the new one,
    // never a torn mix.
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        TIR_CHECK(false) << "cannot rename " << tmp << " over " << path;
    }
    trace::counterAdd("database.snapshots_saved", 1);
}

} // namespace meta
} // namespace tir
