#include "meta/database.h"

#include <fstream>
#include <sstream>

#include "ir/structural_hash.h"

namespace tir {
namespace meta {

void
TuningDatabase::commit(TuneRecord record)
{
    auto it = records_.find(record.workload_hash);
    if (it == records_.end() || record.latency_us < it->second.latency_us) {
        records_[record.workload_hash] = std::move(record);
    }
}

std::optional<TuneRecord>
TuningDatabase::lookup(const PrimFunc& workload) const
{
    return lookup(structuralHash(workload));
}

std::optional<TuneRecord>
TuningDatabase::lookup(uint64_t workload_hash) const
{
    auto it = records_.find(workload_hash);
    if (it == records_.end()) return std::nullopt;
    return it->second;
}

namespace {

const char*
decisionKindName(Decision::Kind kind)
{
    return kind == Decision::Kind::kPerfectTile ? "tile" : "cat";
}

} // namespace

std::string
TuningDatabase::serialize() const
{
    std::ostringstream os;
    for (const auto& [hash, record] : records_) {
        os << "record " << hash << " " << record.latency_us << " "
           << (record.sketch.empty() ? "-" : record.sketch) << " "
           << (record.workload_name.empty() ? "-"
                                            : record.workload_name)
           << "\n";
        for (const Decision& d : record.decisions) {
            os << "  " << decisionKindName(d.kind) << " " << d.extent
               << " " << d.number << " " << d.max_innermost << " "
               << d.num_candidates;
            for (int64_t v : d.values) os << " " << v;
            os << "\n";
        }
        os << "end\n";
    }
    return os.str();
}

TuningDatabase
TuningDatabase::deserialize(const std::string& text)
{
    TuningDatabase db;
    std::istringstream is(text);
    std::string line;
    TuneRecord current;
    bool in_record = false;
    while (std::getline(is, line)) {
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "record") {
            TIR_CHECK(!in_record) << "malformed database: nested record";
            current = TuneRecord();
            ls >> current.workload_hash >> current.latency_us >>
                current.sketch >> current.workload_name;
            if (current.sketch == "-") current.sketch.clear();
            if (current.workload_name == "-") {
                current.workload_name.clear();
            }
            in_record = true;
        } else if (tag == "tile" || tag == "cat") {
            TIR_CHECK(in_record) << "malformed database: stray decision";
            Decision d;
            d.kind = tag == "tile" ? Decision::Kind::kPerfectTile
                                   : Decision::Kind::kCategorical;
            ls >> d.extent >> d.number >> d.max_innermost >>
                d.num_candidates;
            int64_t v;
            while (ls >> v) d.values.push_back(v);
            current.decisions.push_back(std::move(d));
        } else if (tag == "end") {
            TIR_CHECK(in_record) << "malformed database: stray end";
            db.commit(std::move(current));
            in_record = false;
        } else if (!tag.empty()) {
            TIR_FATAL << "malformed database line: " << line;
        }
    }
    TIR_CHECK(!in_record) << "malformed database: unterminated record";
    return db;
}

void
TuningDatabase::save(const std::string& path) const
{
    std::ofstream out(path);
    TIR_CHECK(out.good()) << "cannot open " << path << " for writing";
    out << serialize();
    // A disk-full or I/O error surfaces on the stream only once the
    // buffered bytes actually hit the file; checking before the write
    // alone would report success for a truncated database.
    out.flush();
    TIR_CHECK(out.good())
        << "write to " << path
        << " failed (disk full or I/O error); database not saved";
}

TuningDatabase
TuningDatabase::load(const std::string& path)
{
    std::ifstream in(path);
    TIR_CHECK(in.good()) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return deserialize(buffer.str());
}

} // namespace meta
} // namespace tir
