#include "meta/database.h"

#include <fstream>
#include <sstream>

#include "ir/structural_hash.h"
#include "support/failpoint.h"
#include "support/trace.h"

namespace tir {
namespace meta {

void
TuningDatabase::commit(TuneRecord record)
{
    auto it = records_.find(record.workload_hash);
    if (it == records_.end() || record.latency_us < it->second.latency_us) {
        records_[record.workload_hash] = std::move(record);
    }
}

std::optional<TuneRecord>
TuningDatabase::lookup(const PrimFunc& workload) const
{
    return lookup(structuralHash(workload));
}

std::optional<TuneRecord>
TuningDatabase::lookup(uint64_t workload_hash) const
{
    auto it = records_.find(workload_hash);
    if (it == records_.end()) return std::nullopt;
    return it->second;
}

namespace {

const char*
decisionKindName(Decision::Kind kind)
{
    return kind == Decision::Kind::kPerfectTile ? "tile" : "cat";
}

} // namespace

std::string
TuningDatabase::serialize() const
{
    std::ostringstream os;
    for (const auto& [hash, record] : records_) {
        os << "record " << hash << " " << record.latency_us << " "
           << (record.sketch.empty() ? "-" : record.sketch) << " "
           << (record.workload_name.empty() ? "-"
                                            : record.workload_name)
           << "\n";
        for (const Decision& d : record.decisions) {
            os << "  " << decisionKindName(d.kind) << " " << d.extent
               << " " << d.number << " " << d.max_innermost << " "
               << d.num_candidates;
            for (int64_t v : d.values) os << " " << v;
            os << "\n";
        }
        os << "end\n";
    }
    return os.str();
}

TuningDatabase
TuningDatabase::deserialize(const std::string& text, LoadReport* report)
{
    const bool strict = report == nullptr;
    TuningDatabase db;
    std::istringstream is(text);
    std::string line;
    TuneRecord current;
    bool in_record = false;
    // Tolerant mode: after damage, discard lines until the next
    // `record` header — the only resync point the format offers.
    bool skipping = false;
    auto drop = [&] {
        ++report->dropped;
        in_record = false;
        skipping = true;
    };
    while (std::getline(is, line)) {
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "record") {
            if (in_record) {
                TIR_CHECK(!strict) << "malformed database: nested record";
                ++report->dropped; // the open record never saw its end
            }
            skipping = false;
            current = TuneRecord();
            ls >> current.workload_hash >> current.latency_us >>
                current.sketch >> current.workload_name;
            if (!strict && ls.fail()) {
                drop();
                continue;
            }
            if (current.sketch == "-") current.sketch.clear();
            if (current.workload_name == "-") {
                current.workload_name.clear();
            }
            in_record = true;
        } else if (tag == "tile" || tag == "cat") {
            if (!in_record) {
                TIR_CHECK(!strict) << "malformed database: stray decision";
                if (!skipping) drop();
                continue;
            }
            Decision d;
            d.kind = tag == "tile" ? Decision::Kind::kPerfectTile
                                   : Decision::Kind::kCategorical;
            ls >> d.extent >> d.number >> d.max_innermost >>
                d.num_candidates;
            if (!strict && ls.fail()) {
                drop();
                continue;
            }
            int64_t v;
            while (ls >> v) d.values.push_back(v);
            current.decisions.push_back(std::move(d));
        } else if (tag == "end") {
            if (!in_record) {
                TIR_CHECK(!strict) << "malformed database: stray end";
                if (!skipping) drop();
                continue;
            }
            db.commit(std::move(current));
            if (report) ++report->loaded;
            in_record = false;
        } else if (!tag.empty()) {
            TIR_CHECK(!strict) << "malformed database line: " << line;
            if (in_record || !skipping) drop();
        }
    }
    if (in_record) {
        TIR_CHECK(!strict) << "malformed database: unterminated record";
        // The crash-mid-write case: the trailing record lost its `end`
        // (and possibly part of its last line). Everything before it
        // was committed already.
        ++report->dropped;
    }
    return db;
}

void
TuningDatabase::save(const std::string& path) const
{
    std::ofstream out(path);
    TIR_CHECK(out.good()) << "cannot open " << path << " for writing";
    std::string text = serialize();
    // Chaos hook: corrupt the serialized bytes before they hit disk so
    // the tolerant load path is testable end to end.
    failpoint::injectCorrupt("db.save", text);
    out << text;
    // A disk-full or I/O error surfaces on the stream only once the
    // buffered bytes actually hit the file; checking before the write
    // alone would report success for a truncated database.
    out.flush();
    TIR_CHECK(out.good())
        << "write to " << path
        << " failed (disk full or I/O error); database not saved";
}

TuningDatabase
TuningDatabase::load(const std::string& path, LoadReport* report)
{
    std::ifstream in(path);
    TIR_CHECK(in.good() && !failpoint::inject("db.load"))
        << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    // Always tolerant: a file that crossed a crash or a disk can hold a
    // truncated trailing record, and dropping it beats aborting the
    // session that wanted to reuse the intact ones.
    LoadReport local;
    TuningDatabase db = deserialize(buffer.str(), &local);
    if (local.dropped > 0) {
        trace::counterAdd("database.records_dropped", local.dropped);
    }
    if (report) *report = local;
    return db;
}

} // namespace meta
} // namespace tir
