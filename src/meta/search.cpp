#include "meta/search.h"

#include "intrin/tensor_intrin.h"
#include "ir/structural_hash.h"
#include "meta/database.h"
#include "meta/journal.h"
#include "meta/measure.h"
#include "meta/memo.h"
#include "runtime/jit.h"
#include "runtime/vm.h"
#include "support/env.h"
#include "support/failpoint.h"
#include "support/thread_pool.h"
#include "support/trace.h"
#include "tir/analysis/analysis.h"
#include "tir/analysis/dataflow.h"
#include "tir/verify.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>

namespace tir {
namespace meta {

FeatureVec
extractFeatures(const hwsim::ProgramStats& stats)
{
    auto lg = [](double v) { return std::log1p(std::max(0.0, v)); };
    double tc = 0;
    double dot = 0;
    for (const auto& [unit, macs] : stats.intrin_macs) {
        if (unit == "tensor_core") {
            tc += macs;
        } else {
            dot += macs;
        }
    }
    double other_read = 0;
    double other_write = 0;
    for (const auto& [scope, bytes] : stats.bytes_read) {
        if (scope != "global" && scope != "shared") other_read += bytes;
    }
    for (const auto& [scope, bytes] : stats.bytes_written) {
        if (scope != "global" && scope != "shared") other_write += bytes;
    }
    auto scope_bytes = [&](const std::map<std::string, double>& m,
                           const char* scope) {
        auto it = m.find(scope);
        return it == m.end() ? 0.0 : it->second;
    };
    return {
        lg(stats.scalar_ops),
        lg(tc),
        lg(dot),
        lg(scope_bytes(stats.bytes_read, "global")),
        lg(scope_bytes(stats.bytes_written, "global")),
        lg(scope_bytes(stats.bytes_read, "shared")),
        lg(scope_bytes(stats.bytes_written, "shared")),
        lg(other_read),
        lg(other_write),
        lg(stats.vector_bytes),
        lg(stats.loop_iterations),
        lg(stats.unrolled_iterations),
        lg(stats.grid_blocks),
        lg(stats.block_threads),
        lg(stats.parallel_extent),
        lg(stats.shared_alloc_bytes),
        stats.uses_gpu_threads ? 1.0 : 0.0,
    };
}

FeatureVec
extractFeatures(const PrimFunc& func)
{
    return extractFeatures(hwsim::extractStats(func));
}

int
resolveParallelism(const TuneOptions& options)
{
    if (options.parallelism > 0) return options.parallelism;
    // Strict parse (support/env.h): garbage ("abc", "8x"), overflow,
    // and 0 all fail loudly instead of silently falling through to
    // hardware_concurrency — a typo'd setting must not quietly change
    // the thread count. Unset/empty means "pick for me".
    const uint64_t v = support::envUint(
        "TENSORIR_PARALLELISM", 0, 1,
        static_cast<uint64_t>(std::numeric_limits<int>::max()));
    if (v > 0) return static_cast<int>(v);
    return support::ThreadPool::hardwareParallelism();
}

namespace {

/** Why an invalid candidate was rejected (for the filter counters). */
enum class RejectKind : uint8_t
{
    kNone,
    /** Sketch application threw or threading validation failed. */
    kStructure,
    /** Static race analysis found a provable memory hazard. */
    kRace,
    /** Static bounds analysis found a provable out-of-bounds access. */
    kBounds,
    /** Instantiation or evaluation threw a non-FatalError exception
     *  (std::bad_alloc, interpreter fuel exhaustion, injected fault).
     *  Contained per candidate — never process death. */
    kRuntime,
    /** Abandoned because the stage watchdog expired first. */
    kTimeout,
    /** Dataflow lint found an error-severity use-before-init read
     *  (only with TuneOptions::lint_filter). */
    kLint,
};

/** One candidate flowing through the per-generation pipeline. */
struct Candidate
{
    // Inputs, filled on the main thread from the candidate's derived RNG.
    uint64_t schedule_seed = 0;
    std::vector<Decision> overrides;
    // Instantiation outputs, filled by pool workers.
    bool valid = false;
    RejectKind reject = RejectKind::kNone;
    std::vector<Decision> decisions;
    PrimFunc func;
    uint64_t hash = 0;
    // Evaluation, attached in the sequential fold.
    MemoEntry* memo = nullptr;
};

/**
 * Instantiate a sketch with decision overrides. Pure function of the
 * candidate (the workload IR is immutable and the sketch applier
 * captures only read-only state), so it runs on any pool thread.
 */
/** Reject-kind label for trace args. */
const char*
rejectName(RejectKind reject)
{
    switch (reject) {
      case RejectKind::kStructure: return "structure";
      case RejectKind::kRace: return "race";
      case RejectKind::kBounds: return "bounds";
      case RejectKind::kRuntime: return "runtime";
      case RejectKind::kTimeout: return "timeout";
      case RejectKind::kLint: return "lint";
      default: return "none";
    }
}

void
instantiateCandidate(const PrimFunc& workload, const SketchApplier& sketch,
                     bool lint_filter, Candidate& cand)
{
    trace::Span span("candidate.instantiate");
    Schedule sch(workload, cand.schedule_seed);
    sch.setDecisionOverrides(std::move(cand.overrides));
    // Search-generated programs are adversarial by construction, and
    // this runs under a pool worker: *any* escaping exception would
    // reach the batch drain and abort the whole search, so the entire
    // instantiation is contained per candidate. FatalError keeps its
    // structural meaning (an illegal schedule combination the sketch
    // reports); everything else — bad_alloc, logic_error, injected
    // faults — is a runtime reject.
    try {
        // Keyed by the candidate's own schedule seed, so a chaos
        // schedule fails the *same candidates* at every parallelism
        // setting (the determinism contract survives injection).
        if (failpoint::inject("search.instantiate", cand.schedule_seed)) {
            cand.reject = RejectKind::kRuntime;
            span.addArg(trace::arg("reject", std::string("runtime")));
            return;
        }
        sketch(sch);
        // Threading validation (§3.3) filters false positives before
        // they reach a measurement.
        VerifyResult threads = verifyThreadBindings(sch.func());
        if (!threads.ok) {
            cand.reject = RejectKind::kStructure;
            span.addArg(trace::arg("reject", std::string("structure")));
            return;
        }
        // Static memory analysis on the lowered program: candidates
        // with a *provable* cross-thread hazard or out-of-bounds access
        // never reach a measurement. Only error-severity findings
        // reject — a correct-but-unprovable schedule survives as a
        // warning, so the population cannot be emptied by analysis
        // incompleteness. The concrete-enumeration fallback stays off
        // here (it is quadratic in thread extents; the symbolic proofs
        // are the cheap path).
        analysis::AnalysisOptions analysis_opts;
        analysis_opts.exhaustive_pair_limit = 0;
        analysis_opts.max_diagnostics = 4;
        analysis::AnalysisReport report;
        {
            // Per-candidate analysis latency gets its own span: the
            // filter runs on every candidate, so this is where an
            // analysis slowdown would hide. Duplicate decision traces
            // produce structurally identical functions, so the report
            // comes from the structural-hash cache after the first
            // sighting (hit/miss visible as analysis.cache_* counters).
            trace::Span analysis_span("candidate.analysis");
            report = analysis::analyzeFuncCached(sch.func(),
                                                 analysis_opts);
            analysis_span.addArg(trace::arg(
                "diagnostics",
                static_cast<int64_t>(report.diagnostics.size())));
        }
        if (!report.ok()) {
            cand.reject =
                report.hasError(analysis::DiagKind::kOutOfBounds)
                    ? RejectKind::kBounds
                    : RejectKind::kRace;
            span.addArg(trace::arg("reject",
                                   std::string(rejectName(cand.reject))));
            return;
        }
        // Dataflow lint gate (opt-in): only the error-severity
        // use-before-init finding rejects — it means a read provably
        // observes uninitialized memory on every execution. Dead-store
        // and redundant-barrier findings are warnings (performance,
        // not correctness) and never empty the population.
        if (lint_filter) {
            trace::Span lint_span("candidate.lint");
            analysis::AnalysisReport lint =
                analysis::lintFuncCached(sch.func(), analysis_opts);
            lint_span.addArg(trace::arg(
                "diagnostics",
                static_cast<int64_t>(lint.diagnostics.size())));
            if (lint.hasError(analysis::DiagKind::kUseBeforeInit)) {
                cand.reject = RejectKind::kLint;
                span.addArg(trace::arg("reject",
                                       std::string("lint")));
                return;
            }
        }
        cand.decisions = sch.decisions();
        cand.func = sch.func();
        cand.hash = structuralHash(cand.func);
        cand.valid = true;
    } catch (const FatalError&) {
        cand.reject = RejectKind::kStructure;
        span.addArg(trace::arg("reject", std::string("structure")));
    } catch (const std::exception&) {
        cand.reject = RejectKind::kRuntime;
        span.addArg(trace::arg("reject", std::string("runtime")));
    }
}

/** Mutate one decision in place (resample it legally). */
std::vector<Decision>
mutate(const std::vector<Decision>& decisions, Rng& rng)
{
    if (decisions.empty()) return decisions;
    std::vector<Decision> result = decisions;
    size_t index = static_cast<size_t>(
        rng.randInt(static_cast<int64_t>(result.size())));
    Decision& d = result[index];
    if (d.kind == Decision::Kind::kPerfectTile) {
        // Move a factor between two positions (re-balance the tile).
        if (d.values.size() >= 2) {
            for (int attempt = 0; attempt < 8; ++attempt) {
                size_t from = static_cast<size_t>(
                    rng.randInt(static_cast<int64_t>(d.values.size())));
                size_t to = static_cast<size_t>(
                    rng.randInt(static_cast<int64_t>(d.values.size())));
                if (from == to || d.values[from] == 1) continue;
                // Move a prime-ish factor.
                int64_t f = 2;
                while (d.values[from] % f != 0) ++f;
                d.values[from] /= f;
                d.values[to] *= f;
                break;
            }
        }
    } else {
        if (d.num_candidates > 1) {
            int64_t next = rng.randInt(d.num_candidates);
            d.values = {next};
        }
    }
    return result;
}

/** Fold one rejected candidate into the filter counters. */
void
countReject(TuneResult& result, RejectKind reject)
{
    switch (reject) {
      case RejectKind::kRace:
        ++result.race_filtered;
        trace::counterAdd("search.race_filtered", 1);
        break;
      case RejectKind::kBounds:
        ++result.bounds_filtered;
        trace::counterAdd("search.bounds_filtered", 1);
        break;
      case RejectKind::kRuntime:
        ++result.runtime_filtered;
        trace::counterAdd("search.runtime_filtered", 1);
        break;
      case RejectKind::kTimeout:
        ++result.timeout_filtered;
        trace::counterAdd("search.timeout_filtered", 1);
        break;
      case RejectKind::kLint:
        ++result.lint_filtered;
        trace::counterAdd("search.lint_filtered", 1);
        break;
      default:
        ++result.invalid_filtered;
        trace::counterAdd("search.invalid_filtered", 1);
        break;
    }
}

/** A measured survivor in the population. */
struct Individual
{
    std::vector<Decision> decisions;
    PrimFunc func;
    double latency_us = std::numeric_limits<double>::infinity();
};

/**
 * Wall-clock watchdog for one pipeline stage. Expiry is cooperative:
 * threads cannot be killed safely, so workers poll expired() before
 * picking up each candidate and the unprocessed remainder is rejected
 * as timed out. A zero budget disables the watchdog entirely (no
 * thread, no polling cost beyond one relaxed load per candidate) —
 * the default, because wall-clock expiry is inherently
 * non-deterministic and would void the byte-identical replay contract.
 */
class StageWatchdog
{
  public:
    StageWatchdog(double timeout_s, int& overruns) : overruns_(overruns)
    {
        if (timeout_s <= 0) return;
        auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(timeout_s));
        thread_ = std::jthread([this, deadline] {
            std::unique_lock<std::mutex> lock(mutex_);
            if (!cv_.wait_until(lock, deadline, [&] { return done_; })) {
                expired_.store(true, std::memory_order_relaxed);
            }
        });
    }

    ~StageWatchdog()
    {
        if (thread_.joinable()) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                done_ = true;
            }
            cv_.notify_all();
            thread_.join();
        }
        if (expired()) {
            ++overruns_;
            trace::counterAdd("search.watchdog_overruns", 1);
            trace::instant("search.watchdog_expired");
        }
    }

    StageWatchdog(const StageWatchdog&) = delete;
    StageWatchdog& operator=(const StageWatchdog&) = delete;

    bool
    expired() const
    {
        return expired_.load(std::memory_order_relaxed);
    }

  private:
    int& overruns_;
    std::atomic<bool> expired_{false};
    bool done_ = false;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::jthread thread_;
};

/** Resolve TuneOptions::engine into the override ScopedEngine installs
 *  for the duration of a tune: the ambient override when the option is
 *  empty, otherwise the named engine (FatalError on a name that is not
 *  treewalk/vm/jit — a typo must not silently change engines). */
std::optional<runtime::Engine>
resolveEngineOption(const TuneOptions& options)
{
    if (options.engine.empty()) return runtime::engineOverride();
    std::optional<runtime::Engine> parsed =
        runtime::parseEngineName(options.engine);
    TIR_CHECK(parsed.has_value())
        << "TuneOptions::engine \"" << options.engine
        << "\" is not an engine name (expected treewalk, vm or jit)";
    return parsed;
}

} // namespace

TuneResult
evolutionarySearch(const PrimFunc& workload, const SketchApplier& sketch,
                   const hwsim::DeviceModel& device,
                   const TuneOptions& options)
{
    TuneResult result;
    // The trace span bracketing every per-generation and per-candidate
    // event below; timings.total_s is assigned explicitly before
    // return (an AccumSpan on `result` would race named-return-value
    // optimization).
    trace::Span search_span(
        "search.run",
        trace::arg("population",
                   static_cast<int64_t>(options.population)) +
            "," +
            trace::arg("generations",
                       static_cast<int64_t>(options.generations)));
    double search_start = trace::nowSeconds();
    // Numeric engine for every runtime::execute under this search
    // (the numeric spot-checks); "" inherits the ambient selection.
    runtime::ScopedEngine engine_scope(resolveEngineOption(options));
    // Measurement backend for the sequential fold (meta/measure.h);
    // a malformed name fails here, before any work is done.
    MeasureConfig measure_config;
    measure_config.warmup = options.measure_warmup;
    measure_config.repeats = options.measure_repeats_real;
    measure_config.compile_budget_ms = options.compile_budget_ms;
    measure_config.pin_cpu = options.measure_pin_cpu;
    measure_config.seed = options.seed;
    std::unique_ptr<MeasureBackend> measurer = makeMeasureBackend(
        options.measure_backend, workload, measure_config);
    result.parallelism_used = resolveParallelism(options);
    // Touch the intrinsic registry before spawning workers: its lazy
    // builtin registration is the one piece of mutable global state the
    // sketch appliers read.
    TensorIntrin::list();
    std::optional<support::ThreadPool> pool_storage;
    support::ThreadPool* pool = nullptr;
    if (result.parallelism_used > 1) {
        pool_storage.emplace(result.parallelism_used);
        pool = &*pool_storage;
    }

    Gbdt cost_model;
    std::vector<FeatureVec> train_x;
    std::vector<double> train_y;
    MemoCache memo;
    std::vector<Individual> population;
    result.timings.watchdog_timeout_s = options.stage_timeout_s;

    // Checkpoint-journal bookkeeping: what changed since the last
    // checkpoint (per-generation deltas keep the records small).
    size_t journal_samples_flushed = 0;
    std::vector<uint64_t> journal_new_memo;
    std::vector<JournalMeasured> journal_measured;

    auto forEach = [&](size_t n, const std::function<void(size_t)>& fn) {
        if (pool) {
            pool->parallelFor(n, fn);
        } else {
            for (size_t i = 0; i < n; ++i) fn(i);
        }
    };

    // Pipeline step shared by the initial population and every
    // generation: instantiate all candidates concurrently, then
    // stats/feature-extract and device-estimate the structurally-new
    // ones concurrently, folding into the memo in index order.
    auto processBatch = [&](std::vector<Candidate>& batch) {
        {
            trace::AccumSpan stage("search.instantiate_batch",
                                   result.timings.generate_s);
            StageWatchdog watchdog(options.stage_timeout_s,
                                   result.timings.watchdog_overruns);
            forEach(batch.size(), [&](size_t i) {
                // Cooperative expiry: candidates not yet picked up when
                // the stage budget runs out are rejected as timeouts
                // instead of being worked on indefinitely.
                if (watchdog.expired()) {
                    batch[i].reject = RejectKind::kTimeout;
                    return;
                }
                instantiateCandidate(workload, sketch,
                                     options.lint_filter, batch[i]);
            });
        }

        std::vector<size_t> fresh; // batch indices with unseen hashes
        {
            trace::AccumSpan stage("search.memo_scan",
                                   result.timings.reduce_s);
            std::unordered_map<uint64_t, bool> pending;
            for (size_t i = 0; i < batch.size(); ++i) {
                const Candidate& c = batch[i];
                if (!c.valid) continue;
                if (memo.find(c.hash) || pending.count(c.hash)) {
                    ++result.memo_hits;
                    trace::counterAdd("search.memo_hits", 1);
                } else {
                    pending.emplace(c.hash, true);
                    fresh.push_back(i);
                }
            }
        }

        std::vector<MemoEntry> fresh_entries(fresh.size());
        std::vector<char> timed_out(fresh.size(), 0);
        {
            trace::AccumSpan stage("search.evaluate_batch",
                                   result.timings.evaluate_s);
            StageWatchdog watchdog(options.stage_timeout_s,
                                   result.timings.watchdog_overruns);
            forEach(fresh.size(), [&](size_t j) {
                if (watchdog.expired()) {
                    timed_out[j] = 1;
                    return;
                }
                trace::Span span("candidate.evaluate");
                const Candidate& c = batch[fresh[j]];
                // Contained per candidate: an evaluation that throws
                // (bad_alloc, interpreter fuel exhaustion, injected
                // fault) becomes a structured reject, never process
                // death. The failure is cached in the memo entry so
                // structural duplicates reject identically without
                // re-running the failing evaluation.
                try {
                    // Keyed by structural hash: a chaos schedule fails
                    // the same candidates at every parallelism setting.
                    if (failpoint::inject("search.evaluate", c.hash)) {
                        fresh_entries[j].eval_failed = true;
                        return;
                    }
                    hwsim::ProgramStats stats =
                        hwsim::extractStats(c.func);
                    fresh_entries[j].features = extractFeatures(stats);
                    fresh_entries[j].estimate = device.estimate(stats);
                } catch (const std::exception&) {
                    fresh_entries[j] = MemoEntry();
                    fresh_entries[j].eval_failed = true;
                }
            });
        }

        {
            trace::AccumSpan stage("search.memo_commit",
                                   result.timings.reduce_s);
            for (size_t j = 0; j < fresh.size(); ++j) {
                // A timed-out evaluation is *not* cached: whether the
                // watchdog cut it off is a property of this run's
                // wall-clock, not of the candidate.
                if (timed_out[j]) continue;
                uint64_t hash = batch[fresh[j]].hash;
                memo.insert(hash, std::move(fresh_entries[j]));
                journal_new_memo.push_back(hash);
            }
            for (Candidate& c : batch) {
                if (!c.valid) continue;
                c.memo = memo.find(c.hash);
                if (!c.memo) {
                    // No entry was committed: the watchdog expired
                    // before this candidate's evaluation ran.
                    c.valid = false;
                    c.reject = RejectKind::kTimeout;
                } else if (c.memo->eval_failed) {
                    c.valid = false;
                    c.reject = RejectKind::kRuntime;
                    c.memo = nullptr;
                }
            }
        }
    };

    // Charge one hardware measurement for a candidate. The memo serves
    // a structurally-duplicate candidate from cache — for the
    // analytical backend that is exactly what re-measuring would
    // produce; for a wall-clock backend it is also what keeps
    // duplicate trials (and journal replay) deterministic, since a
    // kernel is timed at most once per search — but the *simulated*
    // Table 1 accounting still charges the full profiling cost: the
    // paper's tuners re-profile duplicates, and crediting a dedup
    // cache only to our personas would skew the TVM-vs-TensorIR
    // comparison. Returns the measured latency (infinity when the
    // measurement rejects the program).
    auto commitMeasurement = [&](const Candidate& cand) -> double {
        MemoEntry* entry = cand.memo;
        if (entry->measured) {
            ++result.memo_measure_hits;
            trace::counterAdd("search.memo_measure_hits", 1);
        } else {
            Measurement m;
            {
                trace::AccumSpan measure_span(
                    "search.measure_real", result.timings.measure_s);
                m = measurer->measure(cand.func, entry->estimate);
            }
            if (m.fallback) {
                ++result.measure_fallbacks;
                trace::counterAdd("search.measure_fallbacks", 1);
            }
            entry->measured = true;
            entry->compile_timed_out = m.compile_timeout;
            entry->crashed = m.crashed;
            entry->hanged = m.hanged;
            entry->measured_latency_us = m.latency_us;
            // The flip can land generations after the entry was
            // journaled, and for a wall-clock backend the committed
            // latency exists nowhere but here; recording both keeps
            // memo_measure_hits *and* the measured trajectory exact
            // across a checkpoint resume.
            journal_measured.push_back(
                {cand.hash, entry->measured_latency_us,
                 entry->compile_timed_out, entry->crashed,
                 entry->hanged});
        }
        if (entry->compile_timed_out) {
            // Over the per-candidate compile budget: rejected before
            // any run happened, so this is *not* a trial — no
            // measurement was performed to charge. Duplicates reject
            // identically from the memo without re-compiling.
            ++result.compile_timeout_filtered;
            trace::counterAdd("search.compile_timeout_filtered", 1);
            return std::numeric_limits<double>::infinity();
        }
        if (entry->crashed) {
            // The isolated worker died running this kernel. No usable
            // measurement exists to charge as a trial; duplicates
            // reject from the memo without re-running code known to
            // kill its process (never retry a deterministic crash).
            ++result.crash_filtered;
            trace::counterAdd("search.crash_filtered", 1);
            return std::numeric_limits<double>::infinity();
        }
        if (entry->hanged) {
            // Timeout-killed: the kernel never produced a latency, so
            // this is not a trial either; duplicates reject without
            // hanging another worker for the full timeout.
            ++result.hang_filtered;
            trace::counterAdd("search.hang_filtered", 1);
            return std::numeric_limits<double>::infinity();
        }
        ++result.trials_measured;
        trace::counterAdd("search.trials_measured", 1);
        // Charge compile+launch always; run repetitions only for
        // programs the measurement accepts (a rejected one has latency
        // infinity, which would poison the simulated total).
        result.tuning_cost_us += options.measure_overhead_us;
        double latency = entry->measured_latency_us;
        if (!std::isfinite(latency)) {
            // Intended Table 1 accounting, pinned by a regression test
            // (trials_measured == measured_valid + measured_invalid):
            // a program rejected at measurement time still consumed a
            // trial and the compile+launch overhead — the paper's
            // tuners discover invalidity only by *attempting* the
            // measurement — so it counts in trials_measured and is
            // charged measure_overhead_us, just no run repetitions.
            // The reject is also counted in invalid_filtered so that
            // Table 1 column keeps its historical meaning.
            ++result.measured_invalid;
            ++result.invalid_filtered;
            trace::counterAdd("search.invalid_filtered", 1);
            trace::instant("search.measure",
                           trace::arg("valid", int64_t{0}));
            return std::numeric_limits<double>::infinity();
        }
        ++result.measured_valid;
        result.tuning_cost_us += latency * options.measure_repeats;
        trace::instant("search.measure",
                       trace::arg("latency_us", latency));
        train_x.push_back(entry->features);
        train_y.push_back(std::log1p(latency));
        if (latency < result.best_latency_us) {
            result.best_latency_us = latency;
            result.best_func = cand.func;
            result.best_decisions = cand.decisions;
            trace::gauge("search.best_latency_us", latency);
        }
        return latency;
    };

    // --- Numeric spot-check oracle (runtime/vm.h) --------------------
    // Lazily built on first use: seeded inputs plus the unscheduled
    // workload's outputs from the tree-walking reference interpreter.
    // Checked candidates re-run on copies of the same inputs through
    // runtime::execute (the bytecode VM unless TENSORIR_FORCE_TREEWALK
    // overrides) and must agree within numeric_check_tolerance.
    std::vector<runtime::NDArray> oracle_inputs;
    std::vector<runtime::NDArray> oracle_outputs;
    int oracle_state = 0; // 0 = unbuilt, 1 = ready, -1 = unavailable
    auto ensureOracle = [&]() -> bool {
        if (oracle_state != 0) return oracle_state > 0;
        trace::Span span("search.numeric_oracle_build");
        try {
            // A derivation index no candidate stream uses, so the
            // oracle inputs never correlate with schedule sampling.
            Rng rng = Rng::derive(options.seed, 0,
                                  ~uint64_t{0});
            for (const Buffer& param : workload->params) {
                std::vector<int64_t> shape;
                for (size_t d = 0; d < param->ndim(); ++d) {
                    shape.push_back(param->shapeInt(d));
                }
                runtime::NDArray array(param->dtype, shape);
                if (param->dtype.isInt()) {
                    array.fillRandom(rng, -4, 4);
                } else {
                    array.fillRandom(rng);
                }
                oracle_inputs.push_back(std::move(array));
            }
            oracle_outputs = oracle_inputs;
            std::vector<runtime::NDArray*> out_ptrs;
            for (runtime::NDArray& a : oracle_outputs) {
                out_ptrs.push_back(&a);
            }
            runtime::Interpreter interp;
            interp.run(workload, out_ptrs);
            oracle_state = 1;
        } catch (const std::exception&) {
            // A workload the reference itself cannot execute (fuel
            // exhaustion, unregistered intrinsic) disables the check
            // instead of rejecting every candidate against garbage.
            oracle_inputs.clear();
            oracle_outputs.clear();
            oracle_state = -1;
            trace::instant("search.numeric_oracle_unavailable");
        }
        return oracle_state > 0;
    };

    enum class NumericVerdict : uint8_t { kOk, kMismatch, kError };
    auto numericCheck = [&](const Candidate& cand) -> NumericVerdict {
        trace::Span span("candidate.numeric_check");
        try {
            // Keyed by structural hash: an injected mismatch hits the
            // same candidates at every parallelism setting.
            if (failpoint::inject("search.numeric_check", cand.hash)) {
                span.addArg(trace::arg("injected", int64_t{1}));
                return NumericVerdict::kMismatch;
            }
            if (!ensureOracle()) return NumericVerdict::kOk;
            std::vector<runtime::NDArray> args = oracle_inputs;
            std::vector<runtime::NDArray*> arg_ptrs;
            for (runtime::NDArray& a : args) arg_ptrs.push_back(&a);
            runtime::execute(cand.func, arg_ptrs);
            for (size_t i = 0; i < args.size(); ++i) {
                double diff = args[i].maxAbsDiff(oracle_outputs[i]);
                // NaN-propagating comparison: a NaN diff is a mismatch.
                if (!(diff <= options.numeric_check_tolerance)) {
                    span.addArg(trace::arg("max_abs_diff", diff));
                    return NumericVerdict::kMismatch;
                }
            }
            return NumericVerdict::kOk;
        } catch (const std::exception&) {
            // Contained like every per-candidate failure: an execution
            // that throws (fuel, bounds, injected fault) is a runtime
            // reject, never process death.
            return NumericVerdict::kError;
        }
    };

    // Shared by the init fold and every generation's measure fold;
    // returns true when the candidate may proceed to measurement.
    // Runs only on the sequential main thread.
    auto numericGate = [&](const Candidate& cand,
                           int& checked) -> bool {
        if (checked >= options.numeric_check_topk) return true;
        ++checked;
        NumericVerdict verdict = numericCheck(cand);
        if (verdict == NumericVerdict::kMismatch) {
            ++result.numeric_filtered;
            trace::counterAdd("search.numeric_filtered", 1);
            return false;
        }
        if (verdict == NumericVerdict::kError) {
            ++result.runtime_filtered;
            trace::counterAdd("search.runtime_filtered", 1);
            return false;
        }
        return true;
    };

    // --- Crash-safe checkpointing (meta/journal.h) -------------------
    std::optional<JournalWriter> journal;
    bool restored = false;
    int start_gen = 0;
    if (!options.journal_path.empty()) {
        JournalHeader header;
        header.workload_hash = structuralHash(workload);
        header.seed = options.seed;
        header.label = options.journal_label;
        header.population = options.population;
        header.generations = options.generations;
        header.children_per_generation =
            options.children_per_generation;
        header.measured_per_generation =
            options.measured_per_generation;
        header.use_cost_model = options.use_cost_model;
        header.measure_overhead_us = options.measure_overhead_us;
        header.measure_repeats = options.measure_repeats;
        // The measurement configuration is part of the identity: a
        // journaled wall-clock trajectory must not be replayed into a
        // run configured for a different backend or discipline.
        header.measure_backend = options.measure_backend;
        header.measure_warmup = options.measure_warmup;
        header.measure_repeats_real = options.measure_repeats_real;
        header.compile_budget_ms = options.compile_budget_ms;
        header.measure_pin_cpu = options.measure_pin_cpu;

        JournalContents contents = readJournal(options.journal_path);
        // Reopen past the last intact record: a torn trailing frame
        // left by a crash is truncated away before appending.
        journal.emplace(options.journal_path, contents.valid_bytes);
        const JournalSection* section =
            options.resume ? contents.findSection(header) : nullptr;
        if (section && !section->generations.empty()) {
            // Restore the cross-generation search state as of the last
            // completed checkpoint. Because the search is deterministic
            // for a fixed seed, re-running the remaining generations
            // from this state reproduces the uninterrupted run exactly.
            const JournalGeneration& last = section->generations.back();
            result.trials_measured = last.trials_measured;
            result.measured_valid = last.measured_valid;
            result.measured_invalid = last.measured_invalid;
            result.compile_timeout_filtered =
                last.compile_timeout_filtered;
            result.crash_filtered = last.crash_filtered;
            result.hang_filtered = last.hang_filtered;
            result.measure_fallbacks = last.measure_fallbacks;
            result.invalid_filtered = last.invalid_filtered;
            result.race_filtered = last.race_filtered;
            result.bounds_filtered = last.bounds_filtered;
            result.runtime_filtered = last.runtime_filtered;
            result.timeout_filtered = last.timeout_filtered;
            result.numeric_filtered = last.numeric_filtered;
            result.lint_filtered = last.lint_filtered;
            result.memo_hits = last.memo_hits;
            result.memo_measure_hits = last.memo_measure_hits;
            result.model_fallbacks = last.model_fallbacks;
            result.tuning_cost_us = last.tuning_cost_us;
            result.best_latency_us = last.best_latency_us;
            result.best_decisions = last.best_decisions;
            result.history = last.history;
            result.generations_replayed =
                static_cast<int>(section->generations.size());
            for (const JournalIndividual& ind : last.population) {
                // The program itself is never read from a survivor —
                // only its decisions (for mutation) and latency (for
                // survival) — so it is not re-derived here.
                population.push_back(
                    {ind.decisions, PrimFunc(), ind.latency_us});
            }
            for (const JournalGeneration& g : section->generations) {
                for (const JournalSample& s : g.new_samples) {
                    train_x.push_back(s.features);
                    train_y.push_back(s.target);
                }
                for (const JournalMemoEntry& m : g.new_memo) {
                    MemoEntry e;
                    e.features = m.features;
                    e.estimate.latency_us = m.latency_us;
                    e.estimate.violation = m.violation;
                    e.measured = m.measured;
                    e.measured_latency_us = m.measured_latency_us;
                    e.compile_timed_out = m.compile_timed_out;
                    e.crashed = m.crashed;
                    e.hanged = m.hanged;
                    e.eval_failed = m.eval_failed;
                    memo.insert(m.hash, std::move(e));
                }
                // Replay measurements committed after the entry was
                // journaled. For a wall-clock backend these recorded
                // latencies are the ground truth a resume runs on —
                // the kernel is never re-timed.
                for (const JournalMeasured& jm : g.measured) {
                    if (MemoEntry* e = memo.find(jm.hash)) {
                        e->measured = true;
                        e->measured_latency_us = jm.latency_us;
                        e->compile_timed_out = jm.compile_timed_out;
                        e->crashed = jm.crashed;
                        e->hanged = jm.hanged;
                    }
                }
            }
            journal_samples_flushed = train_x.size();
            // The winner is re-derived from its decision trace (the
            // same mechanism as database replay, §5.2) instead of
            // serializing programs into the journal.
            if (std::isfinite(result.best_latency_us)) {
                Schedule sch(workload, options.seed);
                sch.setDecisionOverrides(result.best_decisions);
                sketch(sch);
                result.best_func = sch.func();
            }
            restored = true;
            start_gen = last.index;
            // Re-write the restored section: later records must follow
            // their own header for the file to stay parseable, and
            // another section may have been appended since the crash.
            journal->beginSection(header);
            for (const JournalGeneration& g : section->generations) {
                journal->appendGeneration(g);
            }
            trace::instant(
                "search.journal_resume",
                trace::arg("generations_replayed",
                           static_cast<int64_t>(
                               result.generations_replayed)));
        } else {
            journal->beginSection(header);
        }
    }

    auto appendCheckpoint = [&](int index) {
        // Streaming hook (TuneOptions::progress): announce the
        // best-so-far state at checkpoint granularity, journal or not.
        // Runs on the sequential fold thread, before the record is
        // persisted, so a client acting on the announcement can rely
        // on at-least-this-good results even if the process dies
        // mid-write.
        if (options.progress) {
            TuneProgress p;
            p.generation = index;
            p.generations_total = options.generations;
            p.best_latency_us = result.best_latency_us;
            p.best_decisions = result.best_decisions;
            p.tuning_cost_us = result.tuning_cost_us;
            options.progress(p);
            trace::instant(
                "search.progress",
                trace::arg("gen", static_cast<int64_t>(index)));
        }
        if (!journal) return;
        // The kill-mid-generation site: a `throw` schedule here
        // crashes the search after a generation finished but before it
        // was persisted — the worst-case data-loss window the resume
        // test exercises.
        failpoint::inject("search.checkpoint");
        JournalGeneration g;
        g.index = index;
        g.trials_measured = result.trials_measured;
        g.measured_valid = result.measured_valid;
        g.measured_invalid = result.measured_invalid;
        g.compile_timeout_filtered = result.compile_timeout_filtered;
        g.crash_filtered = result.crash_filtered;
        g.hang_filtered = result.hang_filtered;
        g.measure_fallbacks = result.measure_fallbacks;
        g.invalid_filtered = result.invalid_filtered;
        g.race_filtered = result.race_filtered;
        g.bounds_filtered = result.bounds_filtered;
        g.runtime_filtered = result.runtime_filtered;
        g.timeout_filtered = result.timeout_filtered;
        g.numeric_filtered = result.numeric_filtered;
        g.lint_filtered = result.lint_filtered;
        g.memo_hits = result.memo_hits;
        g.memo_measure_hits = result.memo_measure_hits;
        g.model_fallbacks = result.model_fallbacks;
        g.tuning_cost_us = result.tuning_cost_us;
        g.best_latency_us = result.best_latency_us;
        g.best_decisions = result.best_decisions;
        g.history = result.history;
        for (const Individual& ind : population) {
            g.population.push_back({ind.latency_us, ind.decisions});
        }
        for (size_t i = journal_samples_flushed; i < train_x.size();
             ++i) {
            g.new_samples.push_back({train_x[i], train_y[i]});
        }
        journal_samples_flushed = train_x.size();
        for (uint64_t h : journal_new_memo) {
            MemoEntry* e = memo.find(h);
            JournalMemoEntry m;
            m.hash = h;
            m.measured = e->measured;
            m.eval_failed = e->eval_failed;
            m.features = e->features;
            m.latency_us = e->estimate.latency_us;
            m.measured_latency_us = e->measured_latency_us;
            m.compile_timed_out = e->compile_timed_out;
            m.crashed = e->crashed;
            m.hanged = e->hanged;
            m.violation = e->estimate.violation;
            g.new_memo.push_back(std::move(m));
        }
        g.measured = std::move(journal_measured);
        journal_new_memo.clear();
        journal_measured.clear();
        journal->appendGeneration(g);
        trace::instant("search.checkpoint",
                       trace::arg("gen", static_cast<int64_t>(index)));
    };

    // Initial random population, measured directly. Attempts run in
    // rounds of `population` so a mostly-valid sketch space does not
    // over-generate; the cap of 8 rounds matches the serial budget of
    // population * 8 attempts. Skipped entirely on a journal resume —
    // the restored checkpoint already contains its outcome.
    uint64_t attempt_index = 0;
    int init_checked = 0; // numeric-check budget spans all init rounds
    for (int round = 0;
         !restored && round < 8 &&
         static_cast<int>(population.size()) < options.population;
         ++round) {
        trace::Span round_span(
            "search.init_round",
            trace::arg("round", static_cast<int64_t>(round)));
        // Later rounds only cover the remaining deficit (times a slack
        // factor for the invalid rate) instead of instantiating and
        // device-estimating a full population-sized batch for one or
        // two missing survivors.
        int needed = options.population -
                     static_cast<int>(population.size());
        int round_size = round == 0
                             ? options.population
                             : std::min(options.population, needed * 2);
        std::vector<Candidate> batch(static_cast<size_t>(round_size));
        for (Candidate& c : batch) {
            Rng rng = Rng::derive(options.seed, 0, attempt_index++);
            c.schedule_seed = rng.next();
        }
        processBatch(batch);
        trace::AccumSpan fold("search.init_fold",
                              result.timings.reduce_s);
        for (Candidate& c : batch) {
            // Every generated attempt is accounted for — even once the
            // population is full — so the filter counters keep the
            // serial meaning of "attempts that failed validation".
            if (!c.valid) {
                countReject(result, c.reject);
                continue;
            }
            if (static_cast<int>(population.size()) >=
                options.population) {
                continue;
            }
            if (!numericGate(c, init_checked)) continue;
            double latency = commitMeasurement(c);
            if (std::isfinite(latency)) {
                population.push_back({std::move(c.decisions),
                                      std::move(c.func), latency});
            }
        }
    }
    TIR_CHECK(!population.empty())
        << "search could not instantiate any valid schedule";
    if (!restored) {
        result.history.push_back(result.best_latency_us);
        appendCheckpoint(0);
    }

    for (int gen = start_gen; gen < options.generations; ++gen) {
        trace::Span gen_span(
            "search.generation",
            trace::arg("gen", static_cast<int64_t>(gen)));
        if (options.use_cost_model && train_x.size() >= 8) {
            trace::AccumSpan fit("search.model_fit",
                                 result.timings.model_s);
            // Graceful degradation: fit into a fresh model and adopt it
            // only on success. An in-place refit that throws halfway
            // would leave the live model half-built; a non-finite loss
            // means a poisoned training set whose predictions would be
            // garbage. Either way the search keeps ranking children
            // with the last good model instead of dying.
            Gbdt refit;
            bool fit_ok = true;
            try {
                refit.fit(train_x, train_y, pool);
                fit_ok = std::isfinite(refit.lastFitLoss());
            } catch (const std::exception&) {
                fit_ok = false;
            }
            if (fit_ok) {
                cost_model = std::move(refit);
            } else {
                ++result.model_fallbacks;
                trace::counterAdd("search.model_fallbacks", 1);
                trace::instant(
                    "search.model_fallback",
                    trace::arg("gen", static_cast<int64_t>(gen)));
            }
        }
        // Parents weighted by fitness (inverse latency).
        std::vector<double> weights;
        for (const Individual& ind : population) {
            weights.push_back(1.0 / (1e-6 + ind.latency_us));
        }
        // Children by mutation. Each child's RNG derives from
        // (seed, generation, child_index), so parent choice and
        // mutation are reproducible regardless of thread count.
        std::vector<Candidate> batch(
            static_cast<size_t>(options.children_per_generation));
        for (int c = 0; c < options.children_per_generation; ++c) {
            Rng rng = Rng::derive(options.seed,
                                  static_cast<uint64_t>(gen) + 1,
                                  static_cast<uint64_t>(c));
            const Individual& parent =
                population[rng.weightedChoice(weights)];
            Candidate& child = batch[static_cast<size_t>(c)];
            child.overrides = mutate(parent.decisions, rng);
            child.schedule_seed = rng.next();
        }
        processBatch(batch);

        std::vector<size_t> children; // valid candidates, batch order
        {
            trace::AccumSpan fold("search.validity_fold",
                                  result.timings.reduce_s);
            for (size_t i = 0; i < batch.size(); ++i) {
                if (batch[i].valid) {
                    children.push_back(i);
                } else {
                    countReject(result, batch[i].reject);
                }
            }
        }

        // Rank by predicted latency, measure the most promising.
        if (cost_model.trained()) {
            trace::AccumSpan rank("search.model_rank",
                                  result.timings.model_s);
            std::vector<FeatureVec> child_features;
            child_features.reserve(children.size());
            for (size_t i : children) {
                child_features.push_back(batch[i].memo->features);
            }
            std::vector<double> predicted =
                cost_model.predictBatch(child_features, pool);
            std::vector<size_t> order(children.size());
            for (size_t i = 0; i < order.size(); ++i) order[i] = i;
            std::stable_sort(order.begin(), order.end(),
                             [&](size_t a, size_t b) {
                                 return predicted[a] < predicted[b];
                             });
            std::vector<size_t> ranked;
            ranked.reserve(children.size());
            for (size_t i : order) ranked.push_back(children[i]);
            children = std::move(ranked);
        }
        trace::AccumSpan fold("search.measure_fold",
                              result.timings.reduce_s);
        int to_measure = std::min<int>(
            options.measured_per_generation,
            static_cast<int>(children.size()));
        // Epsilon-greedy exploration (Ansor-style): when the model
        // ranked the children, reserve part of the measurement budget
        // for uniform picks from the unranked tail. A model trained
        // only on bad candidates ranks *every* unfamiliar (often
        // genuinely good) child last and the search locks into a local
        // optimum; the exploration slots are the escape hatch. The
        // picks draw from a stream derived per generation, disjoint
        // from the child streams, so results stay parallelism-
        // invariant.
        if (cost_model.trained() &&
            to_measure < static_cast<int>(children.size())) {
            int explore = std::max(1, to_measure / 4);
            size_t tail_size =
                children.size() - static_cast<size_t>(to_measure);
            Rng pick_rng = Rng::derive(
                options.seed, static_cast<uint64_t>(gen) + 1,
                static_cast<uint64_t>(options.children_per_generation));
            // Sample without replacement: each pick first moves to the
            // end of a shrinking window, and the ranked candidate it
            // evicts lands outside that window, so a later pick can
            // neither repeat a tail candidate nor pull an evicted one
            // back into the measured set.
            for (int k = 0; k < explore && k < to_measure &&
                            static_cast<size_t>(k) < tail_size;
                 ++k) {
                size_t window = tail_size - static_cast<size_t>(k);
                size_t last =
                    static_cast<size_t>(to_measure) + window - 1;
                size_t j = static_cast<size_t>(to_measure) +
                           static_cast<size_t>(pick_rng.randInt(
                               static_cast<int64_t>(window)));
                std::swap(children[j], children[last]);
                size_t slot = static_cast<size_t>(to_measure - 1 - k);
                std::swap(children[slot], children[last]);
                trace::instant(
                    "search.epsilon_pick",
                    trace::arg("slot", static_cast<int64_t>(slot)) +
                        "," +
                        trace::arg("tail_index",
                                   static_cast<int64_t>(j)));
            }
        }
        int gen_checked = 0;
        for (int c = 0; c < to_measure; ++c) {
            Candidate& cand = batch[children[static_cast<size_t>(c)]];
            if (!numericGate(cand, gen_checked)) continue;
            double latency = commitMeasurement(cand);
            if (std::isfinite(latency)) {
                population.push_back({std::move(cand.decisions),
                                      std::move(cand.func), latency});
            }
        }
        // Keep the fittest individuals.
        std::stable_sort(population.begin(), population.end(),
                         [](const Individual& a, const Individual& b) {
                             return a.latency_us < b.latency_us;
                         });
        if (static_cast<int>(population.size()) > options.population) {
            population.resize(static_cast<size_t>(options.population));
        }
        result.history.push_back(result.best_latency_us);
        appendCheckpoint(gen + 1);
    }
    result.timings.total_s = trace::nowSeconds() - search_start;
    return result;
}

namespace {

/** Accumulate counters and timings of a secondary search. */
void
accumulate(TuneResult& into, const TuneResult& from)
{
    into.trials_measured += from.trials_measured;
    into.measured_valid += from.measured_valid;
    into.measured_invalid += from.measured_invalid;
    into.compile_timeout_filtered += from.compile_timeout_filtered;
    into.crash_filtered += from.crash_filtered;
    into.hang_filtered += from.hang_filtered;
    into.measure_fallbacks += from.measure_fallbacks;
    into.invalid_filtered += from.invalid_filtered;
    into.race_filtered += from.race_filtered;
    into.bounds_filtered += from.bounds_filtered;
    into.runtime_filtered += from.runtime_filtered;
    into.timeout_filtered += from.timeout_filtered;
    into.numeric_filtered += from.numeric_filtered;
    into.lint_filtered += from.lint_filtered;
    into.model_fallbacks += from.model_fallbacks;
    into.generations_replayed += from.generations_replayed;
    into.tuning_cost_us += from.tuning_cost_us;
    into.memo_hits += from.memo_hits;
    into.memo_measure_hits += from.memo_measure_hits;
    into.timings.generate_s += from.timings.generate_s;
    into.timings.evaluate_s += from.timings.evaluate_s;
    into.timings.model_s += from.timings.model_s;
    into.timings.reduce_s += from.timings.reduce_s;
    into.timings.measure_s += from.timings.measure_s;
    into.timings.total_s += from.timings.total_s;
    into.timings.watchdog_overruns += from.timings.watchdog_overruns;
}

} // namespace

TuneResult
autoTune(const TuneTask& task, const hwsim::DeviceModel& device,
         const TuneOptions& options, TunerStyle style,
         TuningDatabase* database)
{
    // Opens a trace session for TuneOptions::trace_path unless one is
    // already active (model-level guard in runModelTuned, or the
    // TENSORIR_TRACE env session); the file is written when the
    // owning guard goes out of scope.
    trace::SessionGuard trace_session(options.trace_path);
    trace::Span tune_span("meta.auto_tune",
                          trace::arg("workload", task.func->name));
    // Interpreter fuel for every evaluation under this tune: a
    // pathological candidate aborts with a structured EvalError (a
    // contained runtime reject) instead of hanging the session.
    runtime::ScopedStepLimit step_limit(options.eval_step_limit);
    // Numeric engine for candidate evaluation under this tune (see
    // TuneOptions::engine); evolutionarySearch re-installs the same
    // override, which is harmless.
    runtime::ScopedEngine engine_scope(resolveEngineOption(options));
    // A fresh (non-resumed) session starts its journal from scratch;
    // a resumed one must keep the records it is about to replay.
    if (!options.journal_path.empty() && !options.resume) {
        resetJournal(options.journal_path);
    }
    bool gpu = (task.target == "gpu");
    std::vector<TensorizeCandidate> candidates;
    if (style != TunerStyle::kLoopOnly) {
        candidates = generateTensorizeCandidates(
            task.func, task.einsum_block, task.intrins);
    }

    SketchOptions sketch_options;
    if (style == TunerStyle::kAmosLike) {
        // AMOS maps to intrinsics but schedules data movement with a
        // fixed policy (no shared staging, no vectorized copies).
        sketch_options.use_shared_staging = false;
        sketch_options.vectorize_copies = false;
    }

    SketchApplier applier;
    if (!candidates.empty()) {
        const TensorizeCandidate& cand =
            candidates[selectTensorizeCandidate(candidates)];
        applier = makeTensorSketchApplier(cand, gpu, sketch_options);
    } else {
        applier = makeLoopSketchApplier(task.einsum_block, gpu);
    }
    TuneOptions opts = options;
    // autoTune runs up to two searches over the same workload and seed
    // options; distinct labels keep their journal sections apart.
    opts.journal_label = "primary";
    // Tag streamed progress with the sketch family the search is
    // exploring: a client replaying the announced decisions needs to
    // know which applier to replay them through (the same reason
    // TuneRecord carries `sketch`).
    const std::string primary_sketch =
        candidates.empty() ? "loop" : "tensor";
    if (options.progress) {
        opts.progress = [cb = options.progress,
                         primary_sketch](const TuneProgress& p0) {
            TuneProgress p = p0;
            p.sketch = primary_sketch;
            cb(p);
        };
    }
    if (style == TunerStyle::kAmosLike) {
        // AMOS explores intrinsic mappings without a transferable cost
        // model over tensorized programs.
        opts.use_cost_model = false;
    }
    // Database replay (§5.2): a stored record skips the search.
    if (database) {
        std::optional<TuneRecord> record = database->lookup(task.func);
        if (record) {
            Schedule sch(task.func, opts.seed);
            sch.setDecisionOverrides(record->decisions);
            SketchApplier replay =
                record->sketch == "loop"
                    ? makeLoopSketchApplier(task.einsum_block, gpu)
                    : applier;
            replay(sch);
            hwsim::RunEstimate estimate = device.run(sch.func());
            TIR_CHECK(estimate.valid())
                << "database record replays to an invalid program";
            TuneResult replayed;
            replayed.best_func = sch.func();
            replayed.best_latency_us = estimate.latency_us;
            replayed.best_decisions = sch.decisions();
            replayed.best_sketch = record->sketch;
            replayed.trials_measured = 1;
            replayed.measured_valid = 1;
            replayed.tuning_cost_us =
                options.measure_overhead_us +
                estimate.latency_us * options.measure_repeats;
            replayed.from_database = true;
            trace::instant("meta.database_replay",
                           trace::arg("workload", task.func->name));
            if (trace::enabled()) {
                replayed.trace_summary = trace::summaryText();
            }
            return replayed;
        }
    }

    TuneResult result = evolutionarySearch(task.func, applier, device,
                                           opts);
    result.best_sketch = primary_sketch;
    if (style == TunerStyle::kTensorIR && !candidates.empty()) {
        // The full system's search space also contains non-tensorized
        // sketches; on tiny or layout-bound operators the plain SIMT
        // schedule can win (no gather kernels, no padding waste).
        SketchApplier loop_applier =
            makeLoopSketchApplier(task.einsum_block, gpu);
        TuneOptions loop_opts = opts;
        loop_opts.population = std::max(4, opts.population / 2);
        loop_opts.generations = std::max(1, opts.generations / 2);
        loop_opts.seed = opts.seed + 7777;
        loop_opts.journal_label = "secondary";
        if (options.progress) {
            // The secondary search streams under its own family tag;
            // its announcements may be worse than the primary's best —
            // consumers that only want improvements (the schedule
            // server's improve-only commit) filter by latency.
            loop_opts.progress =
                [cb = options.progress](const TuneProgress& p0) {
                    TuneProgress p = p0;
                    p.sketch = "loop";
                    cb(p);
                };
        }
        TuneResult loop_result = evolutionarySearch(
            task.func, loop_applier, device, loop_opts);
        accumulate(result, loop_result);
        if (loop_result.best_latency_us < result.best_latency_us) {
            result.best_latency_us = loop_result.best_latency_us;
            result.best_func = loop_result.best_func;
            result.best_decisions = loop_result.best_decisions;
            result.best_sketch = "loop";
        }
    }
    if (database && result.best_func) {
        TuneRecord record;
        record.workload_hash = structuralHash(task.func);
        record.workload_name = task.func->name;
        record.decisions = result.best_decisions;
        record.latency_us = result.best_latency_us;
        record.sketch = result.best_sketch;
        database->commit(std::move(record));
    }
    if (result.best_func) {
        trace::Span verify_span("meta.verify_winner");
        VerifyResult cover = verifyRegionCover(result.best_func);
        TIR_CHECK(cover.ok)
            << "tuned program failed producer-consumer validation: "
            << cover.message();
        // The winner already passed the per-candidate filter; this
        // re-check runs the full-budget analysis (enumeration enabled)
        // on the single program that actually ships.
        analysis::AnalysisReport report =
            analysis::analyzeFunc(result.best_func);
        TIR_CHECK(report.ok())
            << "tuned program failed static memory analysis:\n"
            << report.summary();
    }
    // Captured before the session guard closes (and resets) the
    // session, so callers get the human-readable roll-up even when
    // this autoTune owned the session.
    if (trace::enabled()) result.trace_summary = trace::summaryText();
    return result;
}

} // namespace meta
} // namespace tir
