#include "meta/search.h"

#include "intrin/tensor_intrin.h"
#include "ir/structural_hash.h"
#include "meta/database.h"
#include "tir/verify.h"

#include <algorithm>
#include <cmath>

namespace tir {
namespace meta {

FeatureVec
extractFeatures(const PrimFunc& func)
{
    hwsim::ProgramStats stats = hwsim::extractStats(func);
    auto lg = [](double v) { return std::log1p(std::max(0.0, v)); };
    double tc = 0;
    double dot = 0;
    for (const auto& [unit, macs] : stats.intrin_macs) {
        if (unit == "tensor_core") {
            tc += macs;
        } else {
            dot += macs;
        }
    }
    double other_read = 0;
    double other_write = 0;
    for (const auto& [scope, bytes] : stats.bytes_read) {
        if (scope != "global" && scope != "shared") other_read += bytes;
    }
    for (const auto& [scope, bytes] : stats.bytes_written) {
        if (scope != "global" && scope != "shared") other_write += bytes;
    }
    auto scope_bytes = [&](const std::map<std::string, double>& m,
                           const char* scope) {
        auto it = m.find(scope);
        return it == m.end() ? 0.0 : it->second;
    };
    return {
        lg(stats.scalar_ops),
        lg(tc),
        lg(dot),
        lg(scope_bytes(stats.bytes_read, "global")),
        lg(scope_bytes(stats.bytes_written, "global")),
        lg(scope_bytes(stats.bytes_read, "shared")),
        lg(scope_bytes(stats.bytes_written, "shared")),
        lg(other_read),
        lg(other_write),
        lg(stats.vector_bytes),
        lg(stats.loop_iterations),
        lg(stats.unrolled_iterations),
        lg(stats.grid_blocks),
        lg(stats.block_threads),
        lg(stats.parallel_extent),
        lg(stats.shared_alloc_bytes),
        stats.uses_gpu_threads ? 1.0 : 0.0,
    };
}

namespace {

/** One candidate schedule during search. */
struct Individual
{
    std::vector<Decision> decisions;
    PrimFunc func;
    FeatureVec features;
    double latency_us = std::numeric_limits<double>::infinity();
    bool measured = false;
};

/** Instantiate a sketch with decision overrides; nullopt when invalid. */
bool
instantiate(const PrimFunc& workload, const SketchApplier& sketch,
            uint64_t seed, std::vector<Decision> overrides,
            Individual* out, int* invalid_count)
{
    Schedule sch(workload, seed);
    sch.setDecisionOverrides(std::move(overrides));
    try {
        sketch(sch);
    } catch (const FatalError&) {
        ++*invalid_count;
        return false;
    }
    // Threading validation (§3.3) filters false positives before they
    // reach a measurement.
    VerifyResult threads = verifyThreadBindings(sch.func());
    if (!threads.ok) {
        ++*invalid_count;
        return false;
    }
    out->decisions = sch.decisions();
    out->func = sch.func();
    out->features = extractFeatures(out->func);
    return true;
}

/** Mutate one decision in place (resample it legally). */
std::vector<Decision>
mutate(const std::vector<Decision>& decisions, Rng& rng)
{
    if (decisions.empty()) return decisions;
    std::vector<Decision> result = decisions;
    size_t index = static_cast<size_t>(
        rng.randInt(static_cast<int64_t>(result.size())));
    Decision& d = result[index];
    if (d.kind == Decision::Kind::kPerfectTile) {
        // Move a factor between two positions (re-balance the tile).
        if (d.values.size() >= 2) {
            for (int attempt = 0; attempt < 8; ++attempt) {
                size_t from = static_cast<size_t>(
                    rng.randInt(static_cast<int64_t>(d.values.size())));
                size_t to = static_cast<size_t>(
                    rng.randInt(static_cast<int64_t>(d.values.size())));
                if (from == to || d.values[from] == 1) continue;
                // Move a prime-ish factor.
                int64_t f = 2;
                while (d.values[from] % f != 0) ++f;
                d.values[from] /= f;
                d.values[to] *= f;
                break;
            }
        }
    } else {
        if (d.num_candidates > 1) {
            int64_t next = rng.randInt(d.num_candidates);
            d.values = {next};
        }
    }
    return result;
}

} // namespace

TuneResult
evolutionarySearch(const PrimFunc& workload, const SketchApplier& sketch,
                   const hwsim::DeviceModel& device,
                   const TuneOptions& options)
{
    TuneResult result;
    Rng rng(options.seed);
    Gbdt cost_model;
    std::vector<FeatureVec> train_x;
    std::vector<double> train_y;

    auto measure = [&](Individual& ind) {
        hwsim::RunEstimate estimate = device.run(ind.func);
        ind.measured = true;
        ++result.trials_measured;
        result.tuning_cost_us += options.measure_overhead_us +
                                 estimate.latency_us *
                                     options.measure_repeats;
        if (!estimate.valid()) {
            ++result.invalid_filtered;
            ind.latency_us = std::numeric_limits<double>::infinity();
            return;
        }
        ind.latency_us = estimate.latency_us;
        train_x.push_back(ind.features);
        train_y.push_back(std::log1p(estimate.latency_us));
        if (estimate.latency_us < result.best_latency_us) {
            result.best_latency_us = estimate.latency_us;
            result.best_func = ind.func;
            result.best_decisions = ind.decisions;
        }
    };

    // Initial random population, measured directly.
    std::vector<Individual> population;
    int attempts = 0;
    while (static_cast<int>(population.size()) < options.population &&
           attempts < options.population * 8) {
        ++attempts;
        Individual ind;
        if (instantiate(workload, sketch, rng.next(), {}, &ind,
                        &result.invalid_filtered)) {
            measure(ind);
            if (std::isfinite(ind.latency_us)) {
                population.push_back(std::move(ind));
            }
        }
    }
    TIR_CHECK(!population.empty())
        << "search could not instantiate any valid schedule";
    result.history.push_back(result.best_latency_us);

    for (int gen = 0; gen < options.generations; ++gen) {
        if (options.use_cost_model && train_x.size() >= 8) {
            cost_model.fit(train_x, train_y);
        }
        // Parents weighted by fitness (inverse latency).
        std::vector<double> weights;
        for (const Individual& ind : population) {
            weights.push_back(1.0 / (1e-6 + ind.latency_us));
        }
        // Generate children by mutation; screen with the cost model.
        std::vector<Individual> children;
        for (int c = 0; c < options.children_per_generation; ++c) {
            const Individual& parent =
                population[rng.weightedChoice(weights)];
            Individual child;
            if (!instantiate(workload, sketch, rng.next(),
                             mutate(parent.decisions, rng), &child,
                             &result.invalid_filtered)) {
                continue;
            }
            children.push_back(std::move(child));
        }
        // Rank by predicted latency, measure the most promising.
        if (cost_model.trained()) {
            std::stable_sort(children.begin(), children.end(),
                             [&](const Individual& a,
                                 const Individual& b) {
                                 return cost_model.predict(a.features) <
                                        cost_model.predict(b.features);
                             });
        }
        int to_measure = std::min<int>(
            options.measured_per_generation,
            static_cast<int>(children.size()));
        for (int c = 0; c < to_measure; ++c) {
            measure(children[static_cast<size_t>(c)]);
            if (std::isfinite(children[static_cast<size_t>(c)]
                                  .latency_us)) {
                population.push_back(
                    std::move(children[static_cast<size_t>(c)]));
            }
        }
        // Keep the fittest individuals.
        std::stable_sort(population.begin(), population.end(),
                         [](const Individual& a, const Individual& b) {
                             return a.latency_us < b.latency_us;
                         });
        if (static_cast<int>(population.size()) > options.population) {
            population.resize(static_cast<size_t>(options.population));
        }
        result.history.push_back(result.best_latency_us);
    }
    return result;
}

TuneResult
autoTune(const TuneTask& task, const hwsim::DeviceModel& device,
         const TuneOptions& options, TunerStyle style,
         TuningDatabase* database)
{
    bool gpu = (task.target == "gpu");
    std::vector<TensorizeCandidate> candidates;
    if (style != TunerStyle::kLoopOnly) {
        candidates = generateTensorizeCandidates(
            task.func, task.einsum_block, task.intrins);
    }

    SketchOptions sketch_options;
    if (style == TunerStyle::kAmosLike) {
        // AMOS maps to intrinsics but schedules data movement with a
        // fixed policy (no shared staging, no vectorized copies).
        sketch_options.use_shared_staging = false;
        sketch_options.vectorize_copies = false;
    }

    SketchApplier applier;
    if (!candidates.empty()) {
        // Prefer the intrinsic that amortizes the most work per call
        // while wasting the least padding.
        std::stable_sort(
            candidates.begin(), candidates.end(),
            [](const TensorizeCandidate& a, const TensorizeCandidate& b) {
                double score_a = TensorIntrin::get(a.intrin).macs /
                                 a.padding_waste;
                double score_b = TensorIntrin::get(b.intrin).macs /
                                 b.padding_waste;
                return score_a > score_b;
            });
        TensorizeCandidate cand = candidates.front();
        applier = [cand, gpu, sketch_options](Schedule& sch) {
            ReindexBlocks rb = applyReindexAndLayout(sch, cand);
            if (gpu) {
                applyGpuTensorSketch(sch, cand, rb, sketch_options);
            } else {
                applyCpuTensorSketch(sch, cand, rb, sketch_options);
            }
        };
    } else {
        std::string block = task.einsum_block;
        applier = [block, gpu](Schedule& sch) {
            if (gpu) {
                applyGpuLoopSketch(sch, block);
            } else {
                applyCpuLoopSketch(sch, block);
            }
        };
    }
    TuneOptions opts = options;
    if (style == TunerStyle::kAmosLike) {
        // AMOS explores intrinsic mappings without a transferable cost
        // model over tensorized programs.
        opts.use_cost_model = false;
    }
    // Database replay (§5.2): a stored record skips the search.
    if (database) {
        std::optional<TuneRecord> record = database->lookup(task.func);
        if (record) {
            Schedule sch(task.func, opts.seed);
            sch.setDecisionOverrides(record->decisions);
            SketchApplier replay = applier;
            if (record->sketch == "loop") {
                std::string block = task.einsum_block;
                replay = [block, gpu](Schedule& s) {
                    if (gpu) {
                        applyGpuLoopSketch(s, block);
                    } else {
                        applyCpuLoopSketch(s, block);
                    }
                };
            }
            replay(sch);
            hwsim::RunEstimate estimate = device.run(sch.func());
            TIR_CHECK(estimate.valid())
                << "database record replays to an invalid program";
            TuneResult replayed;
            replayed.best_func = sch.func();
            replayed.best_latency_us = estimate.latency_us;
            replayed.best_decisions = sch.decisions();
            replayed.best_sketch = record->sketch;
            replayed.trials_measured = 1;
            replayed.tuning_cost_us =
                options.measure_overhead_us +
                estimate.latency_us * options.measure_repeats;
            replayed.from_database = true;
            return replayed;
        }
    }

    TuneResult result = evolutionarySearch(task.func, applier, device,
                                           opts);
    result.best_sketch = candidates.empty() ? "loop" : "tensor";
    if (style == TunerStyle::kTensorIR && !candidates.empty()) {
        // The full system's search space also contains non-tensorized
        // sketches; on tiny or layout-bound operators the plain SIMT
        // schedule can win (no gather kernels, no padding waste).
        std::string block = task.einsum_block;
        SketchApplier loop_applier = [block, gpu](Schedule& sch) {
            if (gpu) {
                applyGpuLoopSketch(sch, block);
            } else {
                applyCpuLoopSketch(sch, block);
            }
        };
        TuneOptions loop_opts = opts;
        loop_opts.population = std::max(4, opts.population / 2);
        loop_opts.generations = std::max(1, opts.generations / 2);
        loop_opts.seed = opts.seed + 7777;
        TuneResult loop_result = evolutionarySearch(
            task.func, loop_applier, device, loop_opts);
        result.trials_measured += loop_result.trials_measured;
        result.invalid_filtered += loop_result.invalid_filtered;
        result.tuning_cost_us += loop_result.tuning_cost_us;
        if (loop_result.best_latency_us < result.best_latency_us) {
            result.best_latency_us = loop_result.best_latency_us;
            result.best_func = loop_result.best_func;
            result.best_decisions = loop_result.best_decisions;
            result.best_sketch = "loop";
        }
    }
    if (database && result.best_func) {
        TuneRecord record;
        record.workload_hash = structuralHash(task.func);
        record.workload_name = task.func->name;
        record.decisions = result.best_decisions;
        record.latency_us = result.best_latency_us;
        record.sketch = result.best_sketch;
        database->commit(std::move(record));
    }
    if (result.best_func) {
        VerifyResult cover = verifyRegionCover(result.best_func);
        TIR_CHECK(cover.ok)
            << "tuned program failed producer-consumer validation: "
            << cover.error;
    }
    return result;
}

} // namespace meta
} // namespace tir
